// CNF formula container (paper §7).
//
// The paper stresses that representing CNF "as one-dimensional vectors of
// integers" (DIMACS-style, zero-terminated clauses) instead of a vector of
// vectors was key to conversion performance: it avoids mallocing "too many
// small objects".  CnfFormula follows that layout: all clauses live in one
// flat std::vector<int32_t>, each clause terminated by 0.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace monocle::sat {

/// A DIMACS-style literal: +v asserts variable v, -v asserts its negation.
/// Variables are 1-based.
using Lit = std::int32_t;
using Var = std::int32_t;

/// Flat CNF formula builder.
class CnfFormula {
 public:
  /// Allocates a fresh variable and returns its (positive) index.
  Var new_var() { return ++num_vars_; }

  /// Ensures variables 1..n exist.
  void reserve_vars(Var n) {
    if (n > num_vars_) num_vars_ = n;
  }

  /// Appends a clause.  An empty clause makes the formula trivially UNSAT.
  /// Literals referencing unallocated variables extend the variable count.
  void add_clause(std::span<const Lit> lits);
  void add_clause(std::initializer_list<Lit> lits) {
    add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }
  void add_unit(Lit l) { add_clause({l}); }
  void add_binary(Lit a, Lit b) { add_clause({a, b}); }

  /// Begins building a clause in place; push literals with `push_lit` and
  /// seal with `end_clause`.  This is the zero-allocation hot path used by
  /// the probe encoder.
  void begin_clause() { build_start_ = data_.size(); }
  void push_lit(Lit l) {
    data_.push_back(l);
    track_var(l);
  }
  /// Seals the clause opened by begin_clause.
  void end_clause() {
    data_.push_back(0);
    ++num_clauses_;
    build_start_ = SIZE_MAX;
  }
  /// Abandons the clause opened by begin_clause (e.g. it became trivially
  /// satisfied during construction).
  void abort_clause() {
    data_.resize(build_start_);
    build_start_ = SIZE_MAX;
  }

  [[nodiscard]] Var num_vars() const { return num_vars_; }
  [[nodiscard]] std::size_t num_clauses() const { return num_clauses_; }

  /// The flat clause store: literals with 0 terminators.
  [[nodiscard]] std::span<const Lit> raw() const { return data_; }

  /// Renders the formula in DIMACS cnf format.
  [[nodiscard]] std::string to_dimacs() const;

  void clear() {
    data_.clear();
    num_vars_ = 0;
    num_clauses_ = 0;
  }

 private:
  void track_var(Lit l) {
    const Var v = l > 0 ? l : -l;
    if (v > num_vars_) num_vars_ = v;
  }

  std::vector<Lit> data_;
  Var num_vars_ = 0;
  std::size_t num_clauses_ = 0;
  std::size_t build_start_ = SIZE_MAX;
};

/// Parses DIMACS cnf text.  Throws std::runtime_error on malformed input.
CnfFormula parse_dimacs(const std::string& text);

}  // namespace monocle::sat
