// CDCL SAT solver (PicoSAT substitute, paper §7).
//
// A conflict-driven clause-learning solver with the standard modern
// machinery: two-watched-literal propagation with blockers, VSIDS branching
// with phase saving, first-UIP conflict analysis with clause minimization,
// Luby restarts and activity-based learned-clause deletion.  Probe-generation
// instances are small (hundreds of variables), but the solver is general and
// also powers the NP-hardness cross-check tests on random 3-SAT.
#pragma once

#include <cstdint>
#include <vector>

#include "sat/cnf.hpp"

namespace monocle::sat {

/// Outcome of a solve() call.
enum class SolveResult : std::uint8_t {
  kSat,
  kUnsat,
  kUnknown,  ///< conflict budget exhausted
};

/// Aggregate solver statistics, exposed for the micro benchmarks.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
};

/// CDCL solver.  Construct, add clauses (or load a CnfFormula), call solve(),
/// then read the model.  The solver is single-shot per formula but solve()
/// may be re-invoked with a larger budget after kUnknown.
class Solver {
 public:
  Solver();
  explicit Solver(const CnfFormula& formula);

  /// Ensures variables 1..n exist.
  void reserve_vars(Var n);

  /// Adds a clause; tautologies are dropped, duplicates within the clause are
  /// merged.  Returns false if the clause is empty (formula trivially UNSAT).
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// Loads every clause of `formula`.
  void load(const CnfFormula& formula);

  /// Runs CDCL search.  `conflict_budget` < 0 means unbounded.
  SolveResult solve(std::int64_t conflict_budget = -1);

  /// Value of variable `v` in the model; valid only after kSat.
  [[nodiscard]] bool model_value(Var v) const;

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] Var num_vars() const { return static_cast<Var>(num_vars_); }

 private:
  // Internal literal encoding: variable v (1-based) -> 2*(v-1) + (sign?1:0).
  using ILit = std::uint32_t;
  static constexpr ILit ilit(Lit l) {
    const Var v = l > 0 ? l : -l;
    return static_cast<ILit>(2 * (v - 1) + (l < 0 ? 1 : 0));
  }
  static constexpr ILit neg(ILit l) { return l ^ 1; }
  static constexpr std::uint32_t var_of(ILit l) { return l >> 1; }

  enum : std::uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

  struct Watcher {
    std::uint32_t clause_ref;  // offset into arena_
    ILit blocker;
  };

  struct VarState {
    std::uint8_t assign = kUndef;   // current assignment of the literal 2v
    std::uint8_t saved_phase = 1;   // 1 = last assigned false (default)
    std::uint8_t seen = 0;          // scratch for conflict analysis
    std::uint32_t level = 0;
    std::uint32_t reason = UINT32_MAX;  // clause ref, or UINT32_MAX for decision
    double activity = 0.0;
  };

  // Clause arena entry: [header][lit0][lit1]...  header = (size<<2)|flags.
  static constexpr std::uint32_t kLearnedFlag = 1;
  std::uint32_t alloc_clause(std::span<const ILit> lits, bool learned);
  std::uint32_t clause_size(std::uint32_t ref) const {
    return arena_[ref] >> 2;
  }
  bool clause_learned(std::uint32_t ref) const {
    return (arena_[ref] & kLearnedFlag) != 0;
  }
  ILit* clause_lits(std::uint32_t ref) { return &arena_[ref + 1]; }
  const ILit* clause_lits(std::uint32_t ref) const { return &arena_[ref + 1]; }

  std::uint8_t value(ILit l) const {
    const std::uint8_t a = vars_[var_of(l)].assign;
    if (a == kUndef) return kUndef;
    return static_cast<std::uint8_t>(a ^ (l & 1));
  }

  void enqueue(ILit l, std::uint32_t reason);
  std::uint32_t propagate();  // returns conflicting clause ref or UINT32_MAX
  void analyze(std::uint32_t conflict, std::vector<ILit>& learned,
               std::uint32_t& backjump_level);
  bool literal_redundant(ILit l, std::uint32_t abstract_levels);
  void backtrack(std::uint32_t level);
  void bump_var(std::uint32_t v);
  void decay_var_activity() { var_inc_ /= 0.95; }
  void bump_clause(std::uint32_t ref);
  ILit pick_branch();
  void reduce_learned_db();
  void rebuild_heap();

  // Indexed max-heap keyed by variable activity.
  void heap_insert(std::uint32_t v);
  std::uint32_t heap_pop();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  bool heap_less(std::uint32_t a, std::uint32_t b) const {
    return vars_[a].activity < vars_[b].activity;
  }

  static std::uint64_t luby(std::uint64_t i);

  std::size_t num_vars_ = 0;
  std::vector<std::uint32_t> arena_;  // clause storage
  std::vector<std::uint32_t> clause_refs_;          // original clauses
  std::vector<std::uint32_t> learned_refs_;         // learned clauses
  std::vector<double> clause_activity_;             // parallel to learned_refs_
  std::vector<std::vector<Watcher>> watches_;       // per internal literal
  std::vector<VarState> vars_;
  std::vector<ILit> trail_;
  std::vector<std::size_t> trail_lim_;  // decision level -> trail index
  std::size_t propagate_head_ = 0;
  std::vector<std::uint32_t> heap_;       // variable heap
  std::vector<std::int32_t> heap_index_;  // var -> heap position or -1
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  bool unsat_ = false;
  SolverStats stats_;
  std::vector<ILit> unit_queue_;  // top-level units added before solving
};

/// Convenience one-shot: solve `formula`, returning the result and (if SAT)
/// the model as a vector indexed by variable (index 0 unused).
struct SolveOutcome {
  SolveResult result;
  std::vector<bool> model;
};
SolveOutcome solve_formula(const CnfFormula& formula,
                           std::int64_t conflict_budget = -1);

}  // namespace monocle::sat
