// CDCL SAT solver (PicoSAT substitute, paper §7).
//
// A conflict-driven clause-learning solver with the standard modern
// machinery: two-watched-literal propagation with blockers, VSIDS branching
// with phase saving, first-UIP conflict analysis with clause minimization,
// Luby restarts and activity-based learned-clause deletion.  Probe-generation
// instances are small (hundreds of variables), but the solver is general and
// also powers the NP-hardness cross-check tests on random 3-SAT.
//
// The solver is *incremental* in the MiniSat sense: solve() may be called
// repeatedly, clauses may be added between calls, and each call may pass a
// set of assumption literals that hold for that call only.  Learned clauses,
// variable activities and saved phases persist across calls, which is what
// makes the table-session probe generation (probe_batch.hpp) amortize SAT
// work across the rules of one flow table.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "sat/cnf.hpp"

namespace monocle::sat {

/// Outcome of a solve() call.
enum class SolveResult : std::uint8_t {
  kSat,
  kUnsat,
  kUnknown,  ///< conflict budget exhausted
};

/// Aggregate solver statistics, exposed for the micro benchmarks.
struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t learned_literals = 0;
  std::uint64_t solve_calls = 0;
  // Endurance observability: how much retired (level-0-satisfied) clause
  // mass simplify() has reclaimed over the solver's lifetime.  Incremental
  // sessions retire a guard literal per query, so over long churn runs the
  // cumulative retired mass growing far past the live arena is the signal
  // that the session has churned through many generations of query-local
  // state — the Monitor's session-rebuild trigger reads exactly this ratio.
  std::uint64_t simplify_sweeps = 0;       ///< simplify() arena sweeps run
  std::uint64_t retired_clauses = 0;       ///< clauses dropped by sweeps
  std::uint64_t retired_arena_words = 0;   ///< arena words reclaimed by sweeps
};

/// Incremental CDCL solver.  Construct, add clauses (or load a CnfFormula),
/// call solve() — possibly with assumptions — then read the model.  More
/// clauses may be added after a solve() returns, and solve() may be invoked
/// again; learned clauses and branching heuristics carry over.
class Solver {
 public:
  Solver();
  explicit Solver(const CnfFormula& formula);

  /// Ensures variables 1..n exist.
  void reserve_vars(Var n) {
    if (static_cast<std::size_t>(n) > num_vars_) grow_vars(n);
  }

  /// Allocates a fresh variable and returns its (positive) index.
  Var new_var() {
    reserve_vars(static_cast<Var>(num_vars_) + 1);
    return static_cast<Var>(num_vars_);
  }

  /// Adds a clause; tautologies are dropped, duplicates within the clause are
  /// merged, and literals already falsified at the top level are removed.
  /// Returns false if the clause reduces to the empty clause (the formula is
  /// then permanently UNSAT).  Must not be called while a solve is running.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
  }

  /// add_clause without the duplicate/tautology normalization pass, for
  /// callers whose clauses are safe by construction (duplicates and
  /// tautologies would be harmless, not wrong: a tautological clause is
  /// simply never falsified).  Top-level-falsified literals are still
  /// removed — watching one would silently miss propagations.
  bool add_clause_trusted(std::span<const Lit> lits);

  /// Bulk one-directional Tseitin definition: adds the binaries
  /// (¬v ∨ l) for every l in `cube` in one pass.  Equivalent to |cube|
  /// add_clause calls but without the per-call dispatch — incremental
  /// sessions add these by the thousand per query.  `v` must be undefined at
  /// the top level and `cube` duplicate-free (callers build cubes from match
  /// bit positions, which guarantees both).
  void add_implies_cube(Lit v, std::span<const Lit> cube);

  /// Loads every clause of `formula`.
  void load(const CnfFormula& formula);

  /// Top-level simplification (MiniSat's `simplify`): propagates pending
  /// units, then drops every clause satisfied at level 0 — in particular the
  /// retired guard-literal clauses of incremental sessions — removes
  /// top-level-falsified literals from the survivors, and rebuilds the watch
  /// lists compactly.  Without this, dead clauses accumulate on the watch
  /// lists and propagation cost grows with every retired query.  Returns
  /// false if unit propagation finds the formula UNSAT.
  bool simplify();

  /// Runs CDCL search.  `conflict_budget` < 0 means unbounded.
  SolveResult solve(std::int64_t conflict_budget = -1) {
    return solve(std::span<const Lit>{}, conflict_budget);
  }

  /// Runs CDCL search under `assumptions`: every assumption literal holds for
  /// this call only.  kUnsat means "unsatisfiable under these assumptions";
  /// the solver remains usable afterwards unless the formula itself became
  /// UNSAT (observable as solve({}) == kUnsat).
  SolveResult solve(std::span<const Lit> assumptions,
                    std::int64_t conflict_budget = -1);
  SolveResult solve(std::initializer_list<Lit> assumptions,
                    std::int64_t conflict_budget = -1) {
    return solve(std::span<const Lit>(assumptions.begin(), assumptions.size()),
                 conflict_budget);
  }

  /// Value of variable `v` in the model; valid only after kSat (snapshotted,
  /// so it stays readable after the search state is reset).
  [[nodiscard]] bool model_value(Var v) const;

  /// Caps the model snapshot at variables 1..n (0 = snapshot everything,
  /// the default).  Incremental sessions only ever read the header-bit
  /// variables back; snapshotting every session variable would make each
  /// SAT query pay O(total variables ever created).
  void set_model_limit(Var n) { model_limit_ = static_cast<std::size_t>(n); }

  [[nodiscard]] const SolverStats& stats() const { return stats_; }
  [[nodiscard]] Var num_vars() const { return static_cast<Var>(num_vars_); }
  /// Live clause-storage size in words — the denominator of the
  /// retired-mass-dominates rebuild trigger (see SolverStats).
  [[nodiscard]] std::size_t arena_words() const { return arena_.size(); }
  /// Variables permanently assigned at level 0.  Incremental sessions retire
  /// every query-local variable with a top-level unit, so for them this is
  /// the retired-variable mass: binary-dominated formulas never touch the
  /// clause arena (implicit watcher storage), and their aging is visible
  /// only here — vars_, watches_ and the trail grow with every query even
  /// though arena_words() stays flat.
  [[nodiscard]] std::size_t fixed_vars() const {
    return trail_lim_.empty() ? trail_.size() : trail_lim_[0];
  }

 private:
  // Internal literal encoding: variable v (1-based) -> 2*(v-1) + (sign?1:0).
  using ILit = std::uint32_t;
  static constexpr ILit ilit(Lit l) {
    const Var v = l > 0 ? l : -l;
    return static_cast<ILit>(2 * (v - 1) + (l < 0 ? 1 : 0));
  }
  static constexpr ILit neg(ILit l) { return l ^ 1; }
  static constexpr std::uint32_t var_of(ILit l) { return l >> 1; }

  enum : std::uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

  void grow_vars(Var n);

  // Binary clauses are *implicit*: they live only in the watch lists (the
  // watcher stores the other literal instead of an arena reference), so they
  // cost no arena storage, propagate without a clause-memory cache miss and
  // never need sweeping.  The flag bit distinguishes the two watcher kinds;
  // the same bit marks binary reasons (reason = kBinaryFlag | implying
  // literal).  UINT32_MAX ("decision / no reason") also has the bit set,
  // which makes "not an arena reference" a single-bit test.
  static constexpr std::uint32_t kBinaryFlag = 0x80000000u;
  /// Sentinel conflict ref for a falsified implicit binary; the two literals
  /// are stashed in binary_conflict_.
  static constexpr std::uint32_t kBinaryConflict = 0xFFFFFFFEu;

  struct Watcher {
    std::uint32_t clause_ref;  // offset into arena_, or kBinaryFlag|other
    ILit blocker;
  };

  struct VarState {
    std::uint8_t assign = kUndef;   // current assignment of the literal 2v
    std::uint8_t saved_phase = 1;   // 1 = last assigned false (default)
    std::uint8_t seen = 0;          // scratch for conflict analysis
    std::uint32_t level = 0;
    std::uint32_t reason = UINT32_MAX;  // clause ref, or UINT32_MAX for decision
    double activity = 0.0;
  };

  // Clause arena entry: [header][activity?][lit0][lit1]...
  // header = (size<<2)|flags.  Learned clauses carry one extra word right
  // after the header holding their activity as a float bit pattern — the
  // "activity slot in the arena header region" that lets bump_clause run in
  // O(1) instead of a binary search over learned_refs_.
  static constexpr std::uint32_t kLearnedFlag = 1;
  std::uint32_t alloc_clause(std::span<const ILit> lits, bool learned);
  std::uint32_t clause_size(std::uint32_t ref) const {
    return arena_[ref] >> 2;
  }
  bool clause_learned(std::uint32_t ref) const {
    return (arena_[ref] & kLearnedFlag) != 0;
  }
  std::uint32_t clause_words(std::uint32_t ref) const {
    return 1 + (clause_learned(ref) ? 1 : 0) + clause_size(ref);
  }
  ILit* clause_lits(std::uint32_t ref) {
    return &arena_[ref + 1 + (clause_learned(ref) ? 1 : 0)];
  }
  const ILit* clause_lits(std::uint32_t ref) const {
    return &arena_[ref + 1 + (clause_learned(ref) ? 1 : 0)];
  }
  float clause_activity(std::uint32_t ref) const;
  void set_clause_activity(std::uint32_t ref, float activity);

  std::uint8_t value(ILit l) const {
    const std::uint8_t a = vars_[var_of(l)].assign;
    if (a == kUndef) return kUndef;
    return static_cast<std::uint8_t>(a ^ (l & 1));
  }

  void enqueue(ILit l, std::uint32_t reason);
  /// Marks `v` (0-based) as occurring in some clause; only occurring
  /// variables enter the branching heap.  A model never needs to assign a
  /// variable no clause mentions (probe headers have whole fields — MACs,
  /// TOS — that no flow-table rule constrains), and skipping them removes
  /// their decision levels from every solve.
  void mark_occurs(std::uint32_t v) {
    if (occurs_[v]) return;
    occurs_[v] = 1;
    if (vars_[v].assign == kUndef && heap_index_[v] < 0) heap_insert(v);
  }
  void add_binary_implicit(ILit a, ILit b) {
    mark_occurs(var_of(a));
    mark_occurs(var_of(b));
    watches_[neg(a)].push_back({kBinaryFlag | b, b});
    watches_[neg(b)].push_back({kBinaryFlag | a, a});
  }
  std::uint32_t propagate();  // returns conflicting clause ref or UINT32_MAX
  /// Removes stale (non-binary, or dead binary) watchers from the lists of
  /// the clauses in `refs`, at most once per list per epoch.
  void compact_watchlists_for(const std::vector<std::uint32_t>& refs);
  void analyze(std::uint32_t conflict, std::vector<ILit>& learned,
               std::uint32_t& backjump_level);
  bool literal_redundant(ILit l, std::uint32_t abstract_levels);
  void backtrack(std::uint32_t level);
  void bump_var(std::uint32_t v);
  void decay_var_activity() { var_inc_ /= 0.95; }
  void bump_clause(std::uint32_t ref);
  ILit pick_branch();
  void snapshot_model();
  void reduce_learned_db();
  void rebuild_heap();

  // Indexed max-heap keyed by variable activity.
  void heap_insert(std::uint32_t v);
  std::uint32_t heap_pop();
  void heap_sift_up(std::size_t i);
  void heap_sift_down(std::size_t i);
  bool heap_less(std::uint32_t a, std::uint32_t b) const {
    return vars_[a].activity < vars_[b].activity;
  }

  static std::uint64_t luby(std::uint64_t i);

  std::size_t num_vars_ = 0;
  std::vector<std::uint32_t> arena_;  // clause storage
  std::vector<std::uint32_t> clause_refs_;          // original clauses
  std::vector<std::uint32_t> learned_refs_;         // learned clauses
  std::vector<std::vector<Watcher>> watches_;       // per internal literal
  std::vector<VarState> vars_;
  std::vector<ILit> trail_;
  std::vector<std::size_t> trail_lim_;  // decision level -> trail index
  std::size_t propagate_head_ = 0;
  std::vector<std::uint32_t> heap_;       // variable heap
  std::vector<std::int32_t> heap_index_;  // var -> heap position or -1
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  bool unsat_ = false;
  SolverStats stats_;
  std::vector<ILit> unit_queue_;  // top-level units added between solves
  std::vector<std::uint8_t> model_;  // snapshot of the last SAT assignment
  std::size_t reduce_threshold_ = 4000;
  std::vector<std::uint32_t> lit_stamp_;  // add_clause dedupe scratch
  std::uint32_t stamp_epoch_ = 0;
  std::uint32_t next_epoch() {
    if (++stamp_epoch_ == 0) {  // wrapped: invalidate every stale stamp
      std::fill(lit_stamp_.begin(), lit_stamp_.end(), 0u);
      stamp_epoch_ = 1;
    }
    return stamp_epoch_;
  }
  std::vector<ILit> add_scratch_;  // add_clause normalization scratch
  std::size_t model_limit_ = 0;    // 0 = snapshot all variables
  ILit binary_conflict_[2] = {0, 0};  // literals of a kBinaryConflict
  std::size_t dead_var_sweep_pos_ = 0;  // trail watermark for simplify()
  std::vector<std::uint8_t> occurs_;  // var appears in some clause
};

/// Convenience one-shot: solve `formula`, returning the result and (if SAT)
/// the model as a vector indexed by variable (index 0 unused).
struct SolveOutcome {
  SolveResult result;
  std::vector<bool> model;
};
SolveOutcome solve_formula(const CnfFormula& formula,
                           std::int64_t conflict_budget = -1);

}  // namespace monocle::sat
