#include "sat/cnf.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace monocle::sat {

void CnfFormula::add_clause(std::span<const Lit> lits) {
  begin_clause();
  for (const Lit l : lits) push_lit(l);
  end_clause();
}

std::string CnfFormula::to_dimacs() const {
  std::string out;
  out += "p cnf " + std::to_string(num_vars_) + " " +
         std::to_string(num_clauses_) + "\n";
  char buf[16];
  for (const Lit l : data_) {
    if (l == 0) {
      out += "0\n";
    } else {
      std::snprintf(buf, sizeof(buf), "%d ", l);
      out += buf;
    }
  }
  return out;
}

CnfFormula parse_dimacs(const std::string& text) {
  CnfFormula f;
  std::istringstream in(text);
  std::string tok;
  bool have_header = false;
  std::vector<Lit> clause;
  while (in >> tok) {
    if (tok == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (tok == "p") {
      std::string fmt;
      long vars = 0, clauses = 0;
      if (!(in >> fmt >> vars >> clauses) || fmt != "cnf") {
        throw std::runtime_error("dimacs: malformed problem line");
      }
      f.reserve_vars(static_cast<Var>(vars));
      have_header = true;
      continue;
    }
    Lit l = 0;
    try {
      l = static_cast<Lit>(std::stol(tok));
    } catch (const std::exception&) {
      throw std::runtime_error("dimacs: bad token '" + tok + "'");
    }
    if (!have_header) throw std::runtime_error("dimacs: literal before header");
    if (l == 0) {
      f.add_clause(clause);
      clause.clear();
    } else {
      clause.push_back(l);
    }
  }
  if (!clause.empty()) throw std::runtime_error("dimacs: unterminated clause");
  return f;
}

}  // namespace monocle::sat
