#include "sat/encoder.hpp"

namespace monocle::sat {

void add_implies_cube(CnfFormula& f, Lit v, std::span<const Lit> cube) {
  for (const Lit l : cube) {
    f.add_binary(-v, l);
  }
}

void add_implies_clause(CnfFormula& f, Lit v, std::span<const Lit> lits) {
  f.begin_clause();
  f.push_lit(-v);
  for (const Lit l : lits) f.push_lit(l);
  f.end_clause();
}

void add_one_of_values(CnfFormula& f, Var first_var, int width,
                       std::span<const std::uint64_t> values) {
  // selector_i -> bits spell values[i]; at least one selector true.
  std::vector<Lit> selectors;
  selectors.reserve(values.size());
  for (const std::uint64_t value : values) {
    const Var sel = f.new_var();
    selectors.push_back(sel);
    for (int bit = 0; bit < width; ++bit) {
      const Var bit_var = first_var + bit;
      const bool is_one = (value >> (width - 1 - bit)) & 1;
      f.add_binary(-sel, is_one ? bit_var : -bit_var);
    }
  }
  f.add_clause(selectors);
}

std::uint64_t decode_value(const std::vector<bool>& model, Var first_var,
                           int width) {
  std::uint64_t out = 0;
  for (int bit = 0; bit < width; ++bit) {
    out = (out << 1) |
          (model[static_cast<std::size_t>(first_var + bit)] ? 1u : 0u);
  }
  return out;
}

}  // namespace monocle::sat
