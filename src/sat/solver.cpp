#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>

namespace monocle::sat {

Solver::Solver() = default;

Solver::Solver(const CnfFormula& formula) { load(formula); }

void Solver::reserve_vars(Var n) {
  if (static_cast<std::size_t>(n) <= num_vars_) return;
  num_vars_ = static_cast<std::size_t>(n);
  vars_.resize(num_vars_);
  watches_.resize(2 * num_vars_);
  heap_index_.resize(num_vars_, -1);
  for (std::uint32_t v = 0; v < num_vars_; ++v) {
    if (heap_index_[v] < 0 && vars_[v].assign == kUndef) heap_insert(v);
  }
}

void Solver::load(const CnfFormula& formula) {
  reserve_vars(formula.num_vars());
  std::vector<Lit> clause;
  for (const Lit l : formula.raw()) {
    if (l == 0) {
      add_clause(clause);
      clause.clear();
    } else {
      clause.push_back(l);
    }
  }
}

bool Solver::add_clause(std::span<const Lit> lits) {
  // Normalize: dedupe, drop tautologies.
  std::vector<ILit> ils;
  ils.reserve(lits.size());
  Var max_var = 0;
  for (const Lit l : lits) {
    max_var = std::max(max_var, l > 0 ? l : -l);
  }
  reserve_vars(max_var);
  for (const Lit l : lits) {
    ils.push_back(ilit(l));
  }
  std::sort(ils.begin(), ils.end());
  ils.erase(std::unique(ils.begin(), ils.end()), ils.end());
  for (std::size_t i = 0; i + 1 < ils.size(); ++i) {
    if (ils[i] == neg(ils[i + 1])) return true;  // tautology
  }
  if (ils.empty()) {
    unsat_ = true;
    return false;
  }
  if (ils.size() == 1) {
    unit_queue_.push_back(ils[0]);
    return true;
  }
  const std::uint32_t ref = alloc_clause(ils, /*learned=*/false);
  clause_refs_.push_back(ref);
  return true;
}

std::uint32_t Solver::alloc_clause(std::span<const ILit> lits, bool learned) {
  const std::uint32_t ref = static_cast<std::uint32_t>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                   (learned ? kLearnedFlag : 0));
  for (const ILit l : lits) arena_.push_back(l);
  // Watch the first two literals.
  watches_[neg(lits[0])].push_back({ref, lits[1]});
  watches_[neg(lits[1])].push_back({ref, lits[0]});
  return ref;
}

void Solver::enqueue(ILit l, std::uint32_t reason) {
  VarState& vs = vars_[var_of(l)];
  assert(vs.assign == kUndef);
  vs.assign = static_cast<std::uint8_t>(l & 1);  // literal 2v+1 => var false
  vs.level = static_cast<std::uint32_t>(trail_lim_.size());
  vs.reason = reason;
  trail_.push_back(l);
}

std::uint32_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const ILit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& ws = watches_[p];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == kTrue) {
        ws[keep++] = w;
        continue;
      }
      const std::uint32_t ref = w.clause_ref;
      const std::uint32_t size = clause_size(ref);
      ILit* lits = clause_lits(ref);
      // Ensure the falsified literal is in slot 1.
      const ILit not_p = neg(p);
      if (lits[0] == not_p) std::swap(lits[0], lits[1]);
      if (value(lits[0]) == kTrue) {
        ws[keep++] = {ref, lits[0]};
        continue;
      }
      // Find a new watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[neg(lits[1])].push_back({ref, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      ws[keep++] = {ref, lits[0]};
      if (value(lits[0]) == kFalse) {
        // Conflict: keep the remaining watchers and bail out.
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        propagate_head_ = trail_.size();
        return ref;
      }
      enqueue(lits[0], ref);
    }
    ws.resize(keep);
  }
  return UINT32_MAX;
}

void Solver::bump_var(std::uint32_t v) {
  vars_[v].activity += var_inc_;
  if (vars_[v].activity > 1e100) {
    for (auto& vs : vars_) vs.activity *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_index_[v] >= 0) heap_sift_up(static_cast<std::size_t>(heap_index_[v]));
}

void Solver::bump_clause(std::uint32_t ref) {
  // Find index in learned_refs_ lazily is too slow; store activity via map
  // from ref. We instead bump by scanning only when reducing; keep a simple
  // per-ref activity in a hash-free way: learned clause activity lives in
  // clause_activity_ parallel to learned_refs_, located by binary search
  // (learned_refs_ is append-only and sorted by construction).
  const auto it = std::lower_bound(learned_refs_.begin(), learned_refs_.end(), ref);
  if (it != learned_refs_.end() && *it == ref) {
    const std::size_t idx = static_cast<std::size_t>(it - learned_refs_.begin());
    clause_activity_[idx] += clause_inc_;
    if (clause_activity_[idx] > 1e20) {
      for (auto& a : clause_activity_) a *= 1e-20;
      clause_inc_ *= 1e-20;
    }
  }
}

bool Solver::literal_redundant(ILit l, std::uint32_t abstract_levels) {
  // Iterative self-subsumption check (simplified MiniSat minimization).
  std::vector<ILit> stack{l};
  std::vector<std::uint32_t> to_clear;
  while (!stack.empty()) {
    const ILit q = stack.back();
    stack.pop_back();
    const VarState& vs = vars_[var_of(q)];
    if (vs.reason == UINT32_MAX) {
      for (const std::uint32_t v : to_clear) vars_[v].seen = 0;
      return false;
    }
    const std::uint32_t size = clause_size(vs.reason);
    const ILit* lits = clause_lits(vs.reason);
    for (std::uint32_t i = 0; i < size; ++i) {
      const ILit r = lits[i];
      const std::uint32_t v = var_of(r);
      if (v == var_of(q) || vars_[v].seen || vars_[v].level == 0) continue;
      if (vars_[v].reason == UINT32_MAX ||
          ((1u << (vars_[v].level & 31)) & abstract_levels) == 0) {
        for (const std::uint32_t w : to_clear) vars_[w].seen = 0;
        return false;
      }
      vars_[v].seen = 1;
      to_clear.push_back(v);
      stack.push_back(r);
    }
  }
  // Clear the marks set during this check; analyze() owns the others.
  for (const std::uint32_t v : to_clear) vars_[v].seen = 0;
  return true;
}

void Solver::analyze(std::uint32_t conflict, std::vector<ILit>& learned,
                     std::uint32_t& backjump_level) {
  learned.clear();
  learned.push_back(0);  // slot for the asserting literal
  const std::uint32_t current_level =
      static_cast<std::uint32_t>(trail_lim_.size());
  std::uint32_t counter = 0;
  ILit p = UINT32_MAX;
  std::uint32_t reason = conflict;
  std::size_t index = trail_.size();
  std::vector<std::uint32_t> seen_vars;

  for (;;) {
    const std::uint32_t size = clause_size(reason);
    const ILit* lits = clause_lits(reason);
    if (clause_learned(reason)) bump_clause(reason);
    const std::uint32_t start = (p == UINT32_MAX) ? 0 : 1;
    for (std::uint32_t i = start; i < size; ++i) {
      const ILit q = lits[i];
      const std::uint32_t v = var_of(q);
      if (vars_[v].seen || vars_[v].level == 0) continue;
      vars_[v].seen = 1;
      seen_vars.push_back(v);
      bump_var(v);
      if (vars_[v].level == current_level) {
        ++counter;
      } else {
        learned.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    do {
      --index;
    } while (!vars_[var_of(trail_[index])].seen);
    p = trail_[index];
    vars_[var_of(p)].seen = 0;
    reason = vars_[var_of(p)].reason;
    if (--counter == 0) break;
  }
  learned[0] = neg(p);

  // Clause minimization: drop literals implied by the rest of the clause.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    abstract_levels |= 1u << (vars_[var_of(learned[i])].level & 31);
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    const std::uint32_t v = var_of(learned[i]);
    if (vars_[v].reason == UINT32_MAX ||
        !literal_redundant(learned[i], abstract_levels)) {
      learned[kept++] = learned[i];
    }
  }
  learned.resize(kept);

  for (const std::uint32_t v : seen_vars) vars_[v].seen = 0;

  // Backjump level: highest level among non-asserting literals.
  backjump_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    const std::uint32_t lvl = vars_[var_of(learned[i])].level;
    if (lvl > backjump_level) {
      backjump_level = lvl;
      max_i = i;
    }
  }
  if (learned.size() > 1) {
    std::swap(learned[1], learned[max_i]);  // second watch at backjump level
  }
  ++stats_.learned_clauses;
  stats_.learned_literals += learned.size();
}

void Solver::backtrack(std::uint32_t level) {
  if (trail_lim_.size() <= level) return;
  const std::size_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const std::uint32_t v = var_of(trail_[i]);
    vars_[v].saved_phase = vars_[v].assign;
    vars_[v].assign = kUndef;
    vars_[v].reason = UINT32_MAX;
    if (heap_index_[v] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  propagate_head_ = trail_.size();
}

Solver::ILit Solver::pick_branch() {
  while (!heap_.empty()) {
    const std::uint32_t v = heap_pop();
    if (vars_[v].assign == kUndef) {
      ++stats_.decisions;
      return static_cast<ILit>(2 * v + vars_[v].saved_phase);
    }
  }
  return UINT32_MAX;
}

void Solver::reduce_learned_db() {
  if (learned_refs_.size() < 2) return;
  // Keep the most active half.  Binary reasons cannot be removed safely if
  // they are reasons of current assignments; with level-0 backtrack before
  // reduce (we only reduce right after a restart) nothing is locked except
  // level-0 implications whose reasons we clear.
  std::vector<std::size_t> order(learned_refs_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return clause_activity_[a] > clause_activity_[b];
  });
  const std::size_t keep_count = learned_refs_.size() / 2;
  std::vector<bool> keep(learned_refs_.size(), false);
  for (std::size_t i = 0; i < keep_count; ++i) keep[order[i]] = true;
  // Clauses that are reasons for level-0 assignments must stay.
  for (const ILit l : trail_) {
    const std::uint32_t reason = vars_[var_of(l)].reason;
    if (reason == UINT32_MAX) continue;
    const auto it =
        std::lower_bound(learned_refs_.begin(), learned_refs_.end(), reason);
    if (it != learned_refs_.end() && *it == reason) {
      keep[static_cast<std::size_t>(it - learned_refs_.begin())] = true;
    }
  }

  // Rebuild arena and watches.
  std::vector<std::uint32_t> new_arena;
  new_arena.reserve(arena_.size());
  std::vector<std::uint32_t> remap(arena_.size(), UINT32_MAX);
  auto copy_clause = [&](std::uint32_t ref) {
    const std::uint32_t new_ref = static_cast<std::uint32_t>(new_arena.size());
    const std::uint32_t size = clause_size(ref);
    new_arena.push_back(arena_[ref]);
    for (std::uint32_t i = 0; i < size; ++i) {
      new_arena.push_back(arena_[ref + 1 + i]);
    }
    remap[ref] = new_ref;
    return new_ref;
  };
  for (auto& ref : clause_refs_) ref = copy_clause(ref);
  std::vector<std::uint32_t> new_learned;
  std::vector<double> new_activity;
  for (std::size_t i = 0; i < learned_refs_.size(); ++i) {
    if (keep[i]) {
      new_learned.push_back(copy_clause(learned_refs_[i]));
      new_activity.push_back(clause_activity_[i]);
    }
  }
  learned_refs_ = std::move(new_learned);
  clause_activity_ = std::move(new_activity);
  arena_ = std::move(new_arena);
  // Remap reasons.
  for (auto& vs : vars_) {
    if (vs.reason != UINT32_MAX) {
      assert(remap[vs.reason] != UINT32_MAX);
      vs.reason = remap[vs.reason];
    }
  }
  // Rebuild watch lists.
  for (auto& w : watches_) w.clear();
  auto rewatch = [&](std::uint32_t ref) {
    const ILit* lits = clause_lits(ref);
    watches_[neg(lits[0])].push_back({ref, lits[1]});
    watches_[neg(lits[1])].push_back({ref, lits[0]});
  };
  for (const auto ref : clause_refs_) rewatch(ref);
  for (const auto ref : learned_refs_) rewatch(ref);
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (0-based index)
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ull << seq;
}

SolveResult Solver::solve(std::int64_t conflict_budget) {
  if (unsat_) return SolveResult::kUnsat;
  // Top-level units.
  for (const ILit l : unit_queue_) {
    if (value(l) == kFalse) {
      unsat_ = true;
      return SolveResult::kUnsat;
    }
    if (value(l) == kUndef) enqueue(l, UINT32_MAX);
  }
  unit_queue_.clear();
  if (propagate() != UINT32_MAX) {
    unsat_ = true;
    return SolveResult::kUnsat;
  }

  std::vector<ILit> learned;
  std::uint64_t restart_number = 0;
  std::uint64_t conflicts_until_restart = 32 * luby(restart_number);
  std::uint64_t conflicts_in_run = 0;
  std::int64_t remaining = conflict_budget;
  std::size_t reduce_threshold = 4000;

  for (;;) {
    const std::uint32_t conflict = propagate();
    if (conflict != UINT32_MAX) {
      ++stats_.conflicts;
      ++conflicts_in_run;
      if (remaining >= 0 && --remaining < 0) {
        backtrack(0);
        return SolveResult::kUnknown;
      }
      if (trail_lim_.empty()) return SolveResult::kUnsat;
      std::uint32_t backjump_level = 0;
      analyze(conflict, learned, backjump_level);
      backtrack(backjump_level);
      if (learned.size() == 1) {
        enqueue(learned[0], UINT32_MAX);
      } else {
        const std::uint32_t ref = alloc_clause(learned, /*learned=*/true);
        learned_refs_.push_back(ref);
        clause_activity_.push_back(clause_inc_);
        enqueue(learned[0], ref);
      }
      decay_var_activity();
      clause_inc_ /= 0.999;
    } else {
      if (conflicts_in_run >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_number;
        conflicts_in_run = 0;
        conflicts_until_restart = 32 * luby(restart_number);
        backtrack(0);
        if (learned_refs_.size() > reduce_threshold) {
          reduce_learned_db();
          reduce_threshold = reduce_threshold * 3 / 2;
        }
        continue;
      }
      const ILit next = pick_branch();
      if (next == UINT32_MAX) return SolveResult::kSat;  // all assigned
      trail_lim_.push_back(trail_.size());
      enqueue(next, UINT32_MAX);
    }
  }
}

bool Solver::model_value(Var v) const {
  assert(v >= 1 && static_cast<std::size_t>(v) <= num_vars_);
  return vars_[static_cast<std::size_t>(v - 1)].assign == kTrue;
}

// ---- indexed heap ----------------------------------------------------------

void Solver::heap_insert(std::uint32_t v) {
  heap_index_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

std::uint32_t Solver::heap_pop() {
  const std::uint32_t top = heap_[0];
  heap_index_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_index_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(std::size_t i) {
  const std::uint32_t v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_index_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const std::uint32_t v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() && heap_less(heap_[child], heap_[child + 1])) {
      ++child;
    }
    if (!heap_less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_index_[v] = static_cast<std::int32_t>(i);
}

void Solver::rebuild_heap() {
  heap_.clear();
  for (std::uint32_t v = 0; v < num_vars_; ++v) {
    heap_index_[v] = -1;
    if (vars_[v].assign == kUndef) heap_insert(v);
  }
}

SolveOutcome solve_formula(const CnfFormula& formula,
                           std::int64_t conflict_budget) {
  Solver solver(formula);
  const SolveResult r = solver.solve(conflict_budget);
  SolveOutcome out{r, {}};
  if (r == SolveResult::kSat) {
    out.model.resize(static_cast<std::size_t>(formula.num_vars()) + 1, false);
    for (Var v = 1; v <= formula.num_vars(); ++v) {
      out.model[static_cast<std::size_t>(v)] = solver.model_value(v);
    }
  }
  return out;
}

}  // namespace monocle::sat
