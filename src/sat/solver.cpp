#include "sat/solver.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace monocle::sat {

Solver::Solver() = default;

Solver::Solver(const CnfFormula& formula) { load(formula); }

void Solver::grow_vars(Var n) {
  num_vars_ = static_cast<std::size_t>(n);
  vars_.resize(num_vars_);
  watches_.resize(2 * num_vars_);
  lit_stamp_.resize(2 * num_vars_, 0);
  heap_index_.resize(num_vars_, -1);
  // New variables enter the heap on their first clause occurrence.
  occurs_.resize(num_vars_, 0);
}

void Solver::load(const CnfFormula& formula) {
  reserve_vars(formula.num_vars());
  std::vector<Lit> clause;
  for (const Lit l : formula.raw()) {
    if (l == 0) {
      add_clause(clause);
      clause.clear();
    } else {
      clause.push_back(l);
    }
  }
}

bool Solver::add_clause(std::span<const Lit> lits) {
  assert(trail_lim_.empty() && "clauses may only be added between solves");
  if (unsat_) return false;
  Var max_var = 0;
  for (const Lit l : lits) {
    max_var = std::max(max_var, l > 0 ? l : -l);
  }
  reserve_vars(max_var);
  // Fast paths for the unit/binary clauses incremental sessions add in bulk
  // (guard retirements and one-directional Tseitin definitions): no scratch
  // vector, no epoch stamping.
  if (lits.size() == 1) {
    const ILit a = ilit(lits[0]);
    const std::uint8_t va = value(a);
    if (va == kTrue) return true;
    if (va == kFalse) {
      unsat_ = true;
      return false;
    }
    unit_queue_.push_back(a);
    return true;
  }
  if (lits.size() == 2) {
    const ILit a = ilit(lits[0]);
    const ILit b = ilit(lits[1]);
    if (a == neg(b)) return true;  // tautology
    const std::uint8_t va = value(a);
    const std::uint8_t vb = value(b);
    if (va == kTrue || vb == kTrue) return true;  // satisfied at top level
    if (a == b || vb == kFalse) return add_clause({lits[0]});
    if (va == kFalse) return add_clause({lits[1]});
    add_binary_implicit(a, b);
    return true;
  }
  // Normalize in ONE pass that preserves the caller's literal order: dedupe
  // and tautology-check via an epoch-stamped mark per literal, and drop
  // literals already falsified at the top level (between solves the trail
  // holds only level-0 assignments; a clause watched on an already-propagated
  // literal would miss its implication).  Preserving order matters for the
  // incremental sessions: they put guard/selector literals first so those
  // become the watched literals, keeping retired and inactive clauses off
  // the hot header-bit watch lists.
  next_epoch();
  std::vector<ILit>& ils = add_scratch_;
  ils.clear();
  ils.reserve(lits.size());
  for (const Lit l : lits) {
    const ILit il = ilit(l);
    if (lit_stamp_[il] == stamp_epoch_) continue;          // duplicate
    if (lit_stamp_[neg(il)] == stamp_epoch_) return true;  // tautology
    lit_stamp_[il] = stamp_epoch_;
    const std::uint8_t v = value(il);
    if (v == kTrue) return true;  // satisfied at the top level forever
    if (v == kUndef) ils.push_back(il);
  }
  if (ils.empty()) {
    unsat_ = true;
    return false;
  }
  if (ils.size() == 1) {
    unit_queue_.push_back(ils[0]);
    return true;
  }
  if (ils.size() == 2) {
    add_binary_implicit(ils[0], ils[1]);
    return true;
  }
  const std::uint32_t ref = alloc_clause(ils, /*learned=*/false);
  clause_refs_.push_back(ref);
  return true;
}

bool Solver::add_clause_trusted(std::span<const Lit> lits) {
  assert(trail_lim_.empty());
  if (unsat_) return false;
  Var max_var = 0;
  for (const Lit l : lits) {
    max_var = std::max(max_var, l > 0 ? l : -l);
  }
  reserve_vars(max_var);
  std::vector<ILit>& ils = add_scratch_;
  ils.clear();
  ils.reserve(lits.size());
  for (const Lit l : lits) {
    const ILit il = ilit(l);
    const std::uint8_t v = value(il);
    if (v == kTrue) return true;  // satisfied at the top level forever
    if (v == kUndef) ils.push_back(il);
  }
  if (ils.empty()) {
    unsat_ = true;
    return false;
  }
  if (ils.size() == 1) {
    unit_queue_.push_back(ils[0]);
    return true;
  }
  if (ils.size() == 2) {
    // A trusted clause may still be a duplicated-literal tautology shape;
    // both literals are distinct undefined ones here, so implicit storage
    // is safe (an (l, l) pair cannot reach this point: duplicates only
    // arise across cube/diff parts of clauses longer than two).
    add_binary_implicit(ils[0], ils[1]);
    return true;
  }
  clause_refs_.push_back(alloc_clause(ils, /*learned=*/false));
  return true;
}

void Solver::add_implies_cube(Lit v, std::span<const Lit> cube) {
  assert(trail_lim_.empty());
  if (unsat_) return;
  Var max_var = v > 0 ? v : -v;
  for (const Lit l : cube) {
    max_var = std::max(max_var, l > 0 ? l : -l);
  }
  reserve_vars(max_var);
  const ILit nv = neg(ilit(v));
  assert(value(nv) == kUndef);
  std::vector<ILit>& ils = add_scratch_;
  ils.clear();
  for (const Lit l : cube) {
    const ILit il = ilit(l);
    const std::uint8_t vl = value(il);
    if (vl == kTrue) continue;  // that implication holds at the top level
    if (vl == kFalse) {         // (¬v ∨ l) reduces to unit ¬v
      unit_queue_.push_back(nv);
      return;
    }
    ils.push_back(il);
  }
  for (const ILit il : ils) {
    add_binary_implicit(nv, il);
  }
}

std::uint32_t Solver::alloc_clause(std::span<const ILit> lits, bool learned) {
  const std::uint32_t ref = static_cast<std::uint32_t>(arena_.size());
  assert(ref < kBinaryFlag && "arena outgrew the watcher tag space");
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << 2) |
                   (learned ? kLearnedFlag : 0));
  if (learned) arena_.push_back(std::bit_cast<std::uint32_t>(0.0f));
  for (const ILit l : lits) {
    mark_occurs(var_of(l));
    arena_.push_back(l);
  }
  // Watch the first two literals.
  watches_[neg(lits[0])].push_back({ref, lits[1]});
  watches_[neg(lits[1])].push_back({ref, lits[0]});
  return ref;
}

float Solver::clause_activity(std::uint32_t ref) const {
  assert(clause_learned(ref));
  return std::bit_cast<float>(arena_[ref + 1]);
}

void Solver::set_clause_activity(std::uint32_t ref, float activity) {
  assert(clause_learned(ref));
  arena_[ref + 1] = std::bit_cast<std::uint32_t>(activity);
}

void Solver::enqueue(ILit l, std::uint32_t reason) {
  VarState& vs = vars_[var_of(l)];
  assert(vs.assign == kUndef);
  vs.assign = static_cast<std::uint8_t>(l & 1);  // literal 2v+1 => var false
  vs.level = static_cast<std::uint32_t>(trail_lim_.size());
  vs.reason = reason;
  trail_.push_back(l);
}

std::uint32_t Solver::propagate() {
  while (propagate_head_ < trail_.size()) {
    const ILit p = trail_[propagate_head_++];
    ++stats_.propagations;
    auto& ws = watches_[p];
    std::size_t keep = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const Watcher w = ws[i];
      if (value(w.blocker) == kTrue) {
        // Satisfied at level 0 means satisfied forever (retired session
        // clauses in particular): drop the watcher instead of re-walking it
        // on every future propagation of this literal.
        if (vars_[var_of(w.blocker)].level != 0) ws[keep++] = w;
        continue;
      }
      if (w.clause_ref & kBinaryFlag) {
        // Implicit binary (¬p ∨ blocker): blocker is not true here.
        if (value(w.blocker) == kFalse) {
          binary_conflict_[0] = w.blocker;
          binary_conflict_[1] = neg(p);
          for (std::size_t j = i; j < ws.size(); ++j) ws[keep++] = ws[j];
          ws.resize(keep);
          propagate_head_ = trail_.size();
          return kBinaryConflict;
        }
        enqueue(w.blocker, kBinaryFlag | neg(p));
        ws[keep++] = w;
        continue;
      }
      const std::uint32_t ref = w.clause_ref;
      const std::uint32_t size = clause_size(ref);
      ILit* lits = clause_lits(ref);
      // Ensure the falsified literal is in slot 1.
      const ILit not_p = neg(p);
      if (lits[0] == not_p) std::swap(lits[0], lits[1]);
      if (value(lits[0]) == kTrue) {
        if (vars_[var_of(lits[0])].level != 0) ws[keep++] = {ref, lits[0]};
        continue;
      }
      // Find a new watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        if (value(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[neg(lits[1])].push_back({ref, lits[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      ws[keep++] = {ref, lits[0]};
      if (value(lits[0]) == kFalse) {
        // Conflict: keep the remaining watchers and bail out.
        for (std::size_t j = i + 1; j < ws.size(); ++j) ws[keep++] = ws[j];
        ws.resize(keep);
        propagate_head_ = trail_.size();
        return ref;
      }
      enqueue(lits[0], ref);
    }
    ws.resize(keep);
  }
  return UINT32_MAX;
}

void Solver::bump_var(std::uint32_t v) {
  vars_[v].activity += var_inc_;
  if (vars_[v].activity > 1e100) {
    for (auto& vs : vars_) vs.activity *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_index_[v] >= 0) heap_sift_up(static_cast<std::size_t>(heap_index_[v]));
}

void Solver::bump_clause(std::uint32_t ref) {
  const float bumped =
      clause_activity(ref) + static_cast<float>(clause_inc_);
  set_clause_activity(ref, bumped);
  if (bumped > 1e20f) {
    for (const std::uint32_t r : learned_refs_) {
      set_clause_activity(r, clause_activity(r) * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

bool Solver::literal_redundant(ILit l, std::uint32_t abstract_levels) {
  // Iterative self-subsumption check (simplified MiniSat minimization).
  std::vector<ILit> stack{l};
  std::vector<std::uint32_t> to_clear;
  while (!stack.empty()) {
    const ILit q = stack.back();
    stack.pop_back();
    const VarState& vs = vars_[var_of(q)];
    if (vs.reason == UINT32_MAX) {
      for (const std::uint32_t v : to_clear) vars_[v].seen = 0;
      return false;
    }
    ILit bin[2];
    const ILit* lits;
    std::uint32_t size;
    if (vs.reason & kBinaryFlag) {
      bin[0] = q;  // skipped via the var_of(q) test below
      bin[1] = vs.reason & ~kBinaryFlag;
      lits = bin;
      size = 2;
    } else {
      size = clause_size(vs.reason);
      lits = clause_lits(vs.reason);
    }
    for (std::uint32_t i = 0; i < size; ++i) {
      const ILit r = lits[i];
      const std::uint32_t v = var_of(r);
      if (v == var_of(q) || vars_[v].seen || vars_[v].level == 0) continue;
      if (vars_[v].reason == UINT32_MAX ||
          ((1u << (vars_[v].level & 31)) & abstract_levels) == 0) {
        for (const std::uint32_t w : to_clear) vars_[w].seen = 0;
        return false;
      }
      vars_[v].seen = 1;
      to_clear.push_back(v);
      stack.push_back(r);
    }
  }
  // Clear the marks set during this check; analyze() owns the others.
  for (const std::uint32_t v : to_clear) vars_[v].seen = 0;
  return true;
}

void Solver::analyze(std::uint32_t conflict, std::vector<ILit>& learned,
                     std::uint32_t& backjump_level) {
  learned.clear();
  learned.push_back(0);  // slot for the asserting literal
  const std::uint32_t current_level =
      static_cast<std::uint32_t>(trail_lim_.size());
  std::uint32_t counter = 0;
  ILit p = UINT32_MAX;
  std::uint32_t reason = conflict;
  std::size_t index = trail_.size();
  std::vector<std::uint32_t> seen_vars;

  ILit bin[2] = {0, 0};
  for (;;) {
    const ILit* lits;
    std::uint32_t size;
    if (reason == kBinaryConflict) {
      lits = binary_conflict_;
      size = 2;
    } else if (reason & kBinaryFlag) {
      // Implicit binary reason (p ∨ other): slot 0 is the propagated
      // literal, skipped below via start == 1.
      bin[1] = reason & ~kBinaryFlag;
      lits = bin;
      size = 2;
    } else {
      size = clause_size(reason);
      lits = clause_lits(reason);
      if (clause_learned(reason)) bump_clause(reason);
    }
    const std::uint32_t start = (p == UINT32_MAX) ? 0 : 1;
    for (std::uint32_t i = start; i < size; ++i) {
      const ILit q = lits[i];
      const std::uint32_t v = var_of(q);
      if (vars_[v].seen || vars_[v].level == 0) continue;
      vars_[v].seen = 1;
      seen_vars.push_back(v);
      bump_var(v);
      if (vars_[v].level == current_level) {
        ++counter;
      } else {
        learned.push_back(q);
      }
    }
    // Walk the trail backwards to the next marked literal.
    do {
      --index;
    } while (!vars_[var_of(trail_[index])].seen);
    p = trail_[index];
    vars_[var_of(p)].seen = 0;
    reason = vars_[var_of(p)].reason;
    if (--counter == 0) break;
  }
  learned[0] = neg(p);

  // Clause minimization: drop literals implied by the rest of the clause.
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    abstract_levels |= 1u << (vars_[var_of(learned[i])].level & 31);
  }
  std::size_t kept = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    const std::uint32_t v = var_of(learned[i]);
    if (vars_[v].reason == UINT32_MAX ||
        !literal_redundant(learned[i], abstract_levels)) {
      learned[kept++] = learned[i];
    }
  }
  learned.resize(kept);

  for (const std::uint32_t v : seen_vars) vars_[v].seen = 0;

  // Backjump level: highest level among non-asserting literals.
  backjump_level = 0;
  std::size_t max_i = 1;
  for (std::size_t i = 1; i < learned.size(); ++i) {
    const std::uint32_t lvl = vars_[var_of(learned[i])].level;
    if (lvl > backjump_level) {
      backjump_level = lvl;
      max_i = i;
    }
  }
  if (learned.size() > 1) {
    std::swap(learned[1], learned[max_i]);  // second watch at backjump level
  }
  ++stats_.learned_clauses;
  stats_.learned_literals += learned.size();
}

void Solver::backtrack(std::uint32_t level) {
  if (trail_lim_.size() <= level) return;
  const std::size_t bound = trail_lim_[level];
  for (std::size_t i = trail_.size(); i-- > bound;) {
    const std::uint32_t v = var_of(trail_[i]);
    vars_[v].saved_phase = vars_[v].assign;
    vars_[v].assign = kUndef;
    vars_[v].reason = UINT32_MAX;
    if (occurs_[v] && heap_index_[v] < 0) heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(level);
  propagate_head_ = trail_.size();
}

Solver::ILit Solver::pick_branch() {
  while (!heap_.empty()) {
    const std::uint32_t v = heap_pop();
    if (vars_[v].assign == kUndef) {
      ++stats_.decisions;
      return static_cast<ILit>(2 * v + vars_[v].saved_phase);
    }
  }
  return UINT32_MAX;
}

void Solver::snapshot_model() {
  const std::size_t limit =
      model_limit_ == 0 ? num_vars_ : std::min(model_limit_, num_vars_);
  model_.resize(limit);
  for (std::size_t v = 0; v < limit; ++v) {
    model_[v] = vars_[v].assign == kTrue ? 1 : 0;
  }
}

void Solver::compact_watchlists_for(const std::vector<std::uint32_t>& refs) {
  // Remove every arena-backed watcher (and dead binaries) from the lists of
  // the given clauses' watched literals, visiting each list at most once.
  // Implicit live binaries are preserved — unlike a blanket clear, this
  // keeps them valid across arena rebuilds.
  next_epoch();
  for (const std::uint32_t ref : refs) {
    const ILit* lits = clause_lits(ref);
    for (int side = 0; side < 2; ++side) {
      const ILit w = neg(lits[side]);
      if (lit_stamp_[w] == stamp_epoch_) continue;
      lit_stamp_[w] = stamp_epoch_;
      std::erase_if(watches_[w], [&](const Watcher& entry) {
        if (!(entry.clause_ref & kBinaryFlag)) return true;  // arena-backed
        return value(entry.blocker) == kTrue &&
               vars_[var_of(entry.blocker)].level == 0;  // dead binary
      });
    }
  }
}

void Solver::reduce_learned_db() {
  if (learned_refs_.size() < 2) return;
  // Keep the most active half.  Binary reasons cannot be removed safely if
  // they are reasons of current assignments; with level-0 backtrack before
  // reduce (we only reduce right after a restart) nothing is locked except
  // level-0 implications whose reasons we keep below.
  std::vector<std::size_t> order(learned_refs_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return clause_activity(learned_refs_[a]) > clause_activity(learned_refs_[b]);
  });
  const std::size_t keep_count = learned_refs_.size() / 2;
  std::vector<bool> keep(learned_refs_.size(), false);
  for (std::size_t i = 0; i < keep_count; ++i) keep[order[i]] = true;
  // Clauses that are reasons for level-0 assignments must stay.
  for (const ILit l : trail_) {
    const std::uint32_t reason = vars_[var_of(l)].reason;
    if (reason & kBinaryFlag) continue;  // implicit binary or no reason
    const auto it =
        std::lower_bound(learned_refs_.begin(), learned_refs_.end(), reason);
    if (it != learned_refs_.end() && *it == reason) {
      keep[static_cast<std::size_t>(it - learned_refs_.begin())] = true;
    }
  }

  // Drop every stale arena-backed watcher while the old refs and arena are
  // still intact; live implicit-binary watchers are preserved in place.
  compact_watchlists_for(clause_refs_);
  compact_watchlists_for(learned_refs_);

  // Rebuild the arena.
  std::vector<std::uint32_t> new_arena;
  new_arena.reserve(arena_.size());
  std::vector<std::uint32_t> remap(arena_.size(), UINT32_MAX);
  auto copy_clause = [&](std::uint32_t ref) {
    const std::uint32_t new_ref = static_cast<std::uint32_t>(new_arena.size());
    const std::uint32_t words = clause_words(ref);
    for (std::uint32_t i = 0; i < words; ++i) {
      new_arena.push_back(arena_[ref + i]);
    }
    remap[ref] = new_ref;
    return new_ref;
  };
  for (auto& ref : clause_refs_) ref = copy_clause(ref);
  std::vector<std::uint32_t> new_learned;
  for (std::size_t i = 0; i < learned_refs_.size(); ++i) {
    if (keep[i]) new_learned.push_back(copy_clause(learned_refs_[i]));
  }
  learned_refs_ = std::move(new_learned);
  arena_ = std::move(new_arena);
  // Remap reasons.  Binary reasons and UINT32_MAX both carry kBinaryFlag and
  // reference no arena clause.
  for (auto& vs : vars_) {
    if (!(vs.reason & kBinaryFlag)) {
      assert(remap[vs.reason] != UINT32_MAX);
      vs.reason = remap[vs.reason];
    }
  }
  // Re-register the surviving clauses' watches.
  auto rewatch = [&](std::uint32_t ref) {
    const ILit* lits = clause_lits(ref);
    watches_[neg(lits[0])].push_back({ref, lits[1]});
    watches_[neg(lits[1])].push_back({ref, lits[0]});
  };
  for (const auto ref : clause_refs_) rewatch(ref);
  for (const auto ref : learned_refs_) rewatch(ref);
}

bool Solver::simplify() {
  assert(trail_lim_.empty());
  if (unsat_) return false;
  // Flush pending top-level units so retirement units take effect now.
  for (const ILit l : unit_queue_) {
    if (value(l) == kFalse) {
      unsat_ = true;
      return false;
    }
    if (value(l) == kUndef) enqueue(l, UINT32_MAX);
  }
  unit_queue_.clear();
  if (propagate() != UINT32_MAX) {
    unsat_ = true;
    return false;
  }
  // Level-0 assignments are permanent; conflict analysis never walks their
  // reasons, so the reasons can be cleared before clauses move around.
  for (const ILit l : trail_) vars_[var_of(l)].reason = UINT32_MAX;

  ++stats_.simplify_sweeps;
  const std::size_t arena_before = arena_.size();
  std::size_t clauses_before = clause_refs_.size() + learned_refs_.size();

  std::vector<std::uint32_t> new_arena;
  new_arena.reserve(arena_.size());
  auto sweep = [&](std::vector<std::uint32_t>& refs) {
    std::size_t kept_clauses = 0;
    for (const std::uint32_t ref : refs) {
      const std::uint32_t size = clause_size(ref);
      ILit* lits = clause_lits(ref);
      std::uint32_t kept = 0;
      bool satisfied = false;
      for (std::uint32_t i = 0; i < size && !satisfied; ++i) {
        const std::uint8_t v = value(lits[i]);
        if (v == kTrue) {
          satisfied = true;
        } else if (v == kUndef) {
          lits[kept++] = lits[i];
        }
        // kFalse at level 0: drop the literal.
      }
      if (satisfied) continue;
      assert(kept >= 2 && "units/conflicts are found by propagate above");
      const std::uint32_t new_ref =
          static_cast<std::uint32_t>(new_arena.size());
      new_arena.push_back((kept << 2) | (arena_[ref] & kLearnedFlag));
      if (clause_learned(ref)) new_arena.push_back(arena_[ref + 1]);
      for (std::uint32_t i = 0; i < kept; ++i) new_arena.push_back(lits[i]);
      refs[kept_clauses++] = new_ref;
    }
    refs.resize(kept_clauses);
  };
  // Free the watch lists of variables assigned at level 0 since the last
  // sweep (retired session variables): those variables never propagate
  // again, so their lists — holding the parked watchers of dead clauses —
  // are unreachable, and live clauses cannot watch a top-level-assigned
  // literal (add_clause filters them, the sweep below removes them).
  for (std::size_t i = dead_var_sweep_pos_; i < trail_.size(); ++i) {
    const std::uint32_t v = var_of(trail_[i]);
    std::vector<Watcher>().swap(watches_[2 * v]);
    std::vector<Watcher>().swap(watches_[2 * v + 1]);
  }
  dead_var_sweep_pos_ = trail_.size();

  // Drop stale arena-backed watchers from the remaining touched lists (at
  // most once per list); live implicit binaries stay in place — the watched
  // literals are always lits[0] and lits[1], an invariant propagate
  // maintains, so only those lists need visiting.
  compact_watchlists_for(clause_refs_);
  compact_watchlists_for(learned_refs_);

  sweep(clause_refs_);
  sweep(learned_refs_);
  stats_.retired_clauses +=
      clauses_before - (clause_refs_.size() + learned_refs_.size());
  if (arena_before > new_arena.size()) {
    stats_.retired_arena_words += arena_before - new_arena.size();
  }
  arena_ = std::move(new_arena);

  auto rewatch = [&](std::uint32_t ref) {
    const ILit* lits = clause_lits(ref);
    watches_[neg(lits[0])].push_back({ref, lits[1]});
    watches_[neg(lits[1])].push_back({ref, lits[0]});
  };
  for (const auto ref : clause_refs_) rewatch(ref);
  for (const auto ref : learned_refs_) rewatch(ref);
  return true;
}

std::uint64_t Solver::luby(std::uint64_t i) {
  // Luby sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (0-based index)
  std::uint64_t size = 1;
  std::uint64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ull << seq;
}

SolveResult Solver::solve(std::span<const Lit> assumptions,
                          std::int64_t conflict_budget) {
  if (unsat_) return SolveResult::kUnsat;
  assert(trail_lim_.empty());
  ++stats_.solve_calls;
  for (const Lit a : assumptions) {
    assert(a != 0);
    reserve_vars(a > 0 ? a : -a);
  }
  // Top-level units queued since the last call.
  for (const ILit l : unit_queue_) {
    if (value(l) == kFalse) {
      unsat_ = true;
      return SolveResult::kUnsat;
    }
    if (value(l) == kUndef) enqueue(l, UINT32_MAX);
  }
  unit_queue_.clear();
  if (propagate() != UINT32_MAX) {
    unsat_ = true;
    return SolveResult::kUnsat;
  }

  std::vector<ILit> learned;
  std::uint64_t restart_number = 0;
  std::uint64_t conflicts_until_restart = 32 * luby(restart_number);
  std::uint64_t conflicts_in_run = 0;
  std::int64_t remaining = conflict_budget;

  for (;;) {
    const std::uint32_t conflict = propagate();
    if (conflict != UINT32_MAX) {
      ++stats_.conflicts;
      ++conflicts_in_run;
      if (remaining >= 0 && --remaining < 0) {
        backtrack(0);
        return SolveResult::kUnknown;
      }
      if (trail_lim_.empty()) {
        // Conflict with no decisions at all: the formula itself is UNSAT
        // (assumptions sit at decision levels >= 1 and have been undone).
        unsat_ = true;
        return SolveResult::kUnsat;
      }
      std::uint32_t backjump_level = 0;
      analyze(conflict, learned, backjump_level);
      backtrack(backjump_level);
      if (learned.size() == 1) {
        enqueue(learned[0], UINT32_MAX);
      } else if (learned.size() == 2) {
        // Learned binaries are implicit too; they are kept forever (never
        // part of the learned-DB reduction), the standard treatment.
        add_binary_implicit(learned[0], learned[1]);
        enqueue(learned[0], kBinaryFlag | learned[1]);
      } else {
        const std::uint32_t ref = alloc_clause(learned, /*learned=*/true);
        set_clause_activity(ref, static_cast<float>(clause_inc_));
        learned_refs_.push_back(ref);
        enqueue(learned[0], ref);
      }
      decay_var_activity();
      clause_inc_ /= 0.999;
    } else {
      if (conflicts_in_run >= conflicts_until_restart) {
        ++stats_.restarts;
        ++restart_number;
        conflicts_in_run = 0;
        conflicts_until_restart = 32 * luby(restart_number);
        backtrack(0);
        if (learned_refs_.size() > reduce_threshold_) {
          reduce_learned_db();
          reduce_threshold_ = reduce_threshold_ * 3 / 2;
        }
        continue;
      }
      // Re-assert any assumptions not currently on the trail (a backjump or
      // restart may have undone them).  Each gets its own decision level so
      // conflict analysis treats it as a regular decision.
      ILit next = UINT32_MAX;
      while (trail_lim_.size() < assumptions.size()) {
        const ILit a = ilit(assumptions[trail_lim_.size()]);
        const std::uint8_t v = value(a);
        if (v == kTrue) {
          trail_lim_.push_back(trail_.size());  // already implied: empty level
        } else if (v == kFalse) {
          // The formula forces the negation of this assumption: UNSAT under
          // assumptions, but the solver stays usable.
          backtrack(0);
          return SolveResult::kUnsat;
        } else {
          next = a;
          ++stats_.decisions;
          break;
        }
      }
      if (next == UINT32_MAX) {
        next = pick_branch();
        if (next == UINT32_MAX) {  // all variables assigned
          snapshot_model();
          backtrack(0);
          return SolveResult::kSat;
        }
      }
      trail_lim_.push_back(trail_.size());
      enqueue(next, UINT32_MAX);
    }
  }
}

bool Solver::model_value(Var v) const {
  assert(v >= 1 && static_cast<std::size_t>(v) <= model_.size());
  return model_[static_cast<std::size_t>(v - 1)] != 0;
}

// ---- indexed heap ----------------------------------------------------------

void Solver::heap_insert(std::uint32_t v) {
  heap_index_[v] = static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_sift_up(heap_.size() - 1);
}

std::uint32_t Solver::heap_pop() {
  const std::uint32_t top = heap_[0];
  heap_index_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_index_[heap_[0]] = 0;
    heap_sift_down(0);
  }
  return top;
}

void Solver::heap_sift_up(std::size_t i) {
  const std::uint32_t v = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!heap_less(heap_[parent], v)) break;
    heap_[i] = heap_[parent];
    heap_index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = parent;
  }
  heap_[i] = v;
  heap_index_[v] = static_cast<std::int32_t>(i);
}

void Solver::heap_sift_down(std::size_t i) {
  const std::uint32_t v = heap_[i];
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= heap_.size()) break;
    if (child + 1 < heap_.size() && heap_less(heap_[child], heap_[child + 1])) {
      ++child;
    }
    if (!heap_less(v, heap_[child])) break;
    heap_[i] = heap_[child];
    heap_index_[heap_[i]] = static_cast<std::int32_t>(i);
    i = child;
  }
  heap_[i] = v;
  heap_index_[v] = static_cast<std::int32_t>(i);
}

void Solver::rebuild_heap() {
  heap_.clear();
  for (std::uint32_t v = 0; v < num_vars_; ++v) {
    heap_index_[v] = -1;
    if (occurs_[v] && vars_[v].assign == kUndef) heap_insert(v);
  }
}

SolveOutcome solve_formula(const CnfFormula& formula,
                           std::int64_t conflict_budget) {
  Solver solver(formula);
  const SolveResult r = solver.solve(conflict_budget);
  SolveOutcome out{r, {}};
  if (r == SolveResult::kSat) {
    out.model.resize(static_cast<std::size_t>(formula.num_vars()) + 1, false);
    for (Var v = 1; v <= formula.num_vars(); ++v) {
      out.model[static_cast<std::size_t>(v)] = solver.model_value(v);
    }
  }
  return out;
}

}  // namespace monocle::sat
