// Generic CNF encoding helpers (paper §5.3 and Appendix B).
//
// The probe generator needs three encoding gadgets beyond plain clauses:
//   - one-directional Tseitin definitions for cubes (v -> l1 & l2 & ...),
//     sufficient for variables that occur only positively downstream;
//   - "field equals one of these values" constraints (limited domains that
//     are small enough to encode directly, e.g. the input port);
//   - the Velev if-then-else chain used for the Distinguish constraint.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sat/cnf.hpp"

namespace monocle::sat {

/// A cube: conjunction of literals.
using Cube = std::vector<Lit>;

/// Adds clauses encoding `v -> (l1 & l2 & ... & ln)` — the one-directional
/// Tseitin definition.  Sound and complete when `v` occurs only positively in
/// the rest of the formula (see DESIGN.md §4.2): any model of the original
/// formula extends to the encoded one by setting v := value of the cube.
void add_implies_cube(CnfFormula& f, Lit v, std::span<const Lit> cube);

/// Adds clauses encoding `v -> (l1 | l2 | ... | ln)`: the single clause
/// (¬v ∨ l1 ∨ ... ∨ ln).
void add_implies_clause(CnfFormula& f, Lit v, std::span<const Lit> lits);

/// Constrains the `width` consecutive variables starting at `first_var`
/// (MSB first) to spell one of `values`.  Uses a fresh selector variable per
/// value plus an at-least-one clause; size O(|values| * width).
void add_one_of_values(CnfFormula& f, Var first_var, int width,
                       std::span<const std::uint64_t> values);

/// Extracts the `width`-bit value spelled by variables
/// [first_var, first_var+width) in `model` (MSB first).  The model vector is
/// indexed by variable (index 0 unused), as returned by solve_formula.
std::uint64_t decode_value(const std::vector<bool>& model, Var first_var,
                           int width);

}  // namespace monocle::sat
