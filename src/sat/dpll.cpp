#include "sat/dpll.hpp"

#include <algorithm>
#include <vector>

namespace monocle::sat {

namespace {

enum : std::int8_t { kUnset = 0, kTrue = 1, kFalse = -1 };

struct DpllState {
  // Clauses as literal vectors (no watched literals: this is the reference
  // implementation, clarity over speed).
  std::vector<std::vector<Lit>> clauses;
  std::vector<std::int8_t> assign;  // 1-based by variable
  std::uint64_t decisions = 0;
  std::uint64_t max_decisions = 0;
  bool exhausted = false;

  [[nodiscard]] std::int8_t value(Lit l) const {
    const std::int8_t v = assign[static_cast<std::size_t>(l > 0 ? l : -l)];
    return l > 0 ? v : static_cast<std::int8_t>(-v);
  }

  enum class Propagation { kOk, kConflict };

  /// Runs unit propagation over all clauses to a fixed point; records the
  /// assignments made in `trail` so the caller can undo them.
  Propagation propagate(std::vector<Var>& trail) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& clause : clauses) {
        Lit unit = 0;
        bool satisfied = false;
        int unassigned = 0;
        for (const Lit l : clause) {
          const std::int8_t v = value(l);
          if (v == kTrue) {
            satisfied = true;
            break;
          }
          if (v == kUnset) {
            ++unassigned;
            unit = l;
          }
        }
        if (satisfied) continue;
        if (unassigned == 0) return Propagation::kConflict;
        if (unassigned == 1) {
          const Var var = unit > 0 ? unit : -unit;
          assign[static_cast<std::size_t>(var)] =
              unit > 0 ? kTrue : kFalse;
          trail.push_back(var);
          changed = true;
        }
      }
    }
    return Propagation::kOk;
  }

  /// Picks the first unassigned variable appearing in an unsatisfied clause.
  [[nodiscard]] Var pick() const {
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (const Lit l : clause) {
        if (value(l) == kTrue) {
          satisfied = true;
          break;
        }
      }
      if (satisfied) continue;
      for (const Lit l : clause) {
        if (value(l) == kUnset) return l > 0 ? l : -l;
      }
    }
    return 0;  // everything satisfied
  }

  bool search() {
    if (exhausted) return false;
    std::vector<Var> trail;
    if (propagate(trail) == Propagation::kConflict) {
      for (const Var v : trail) assign[static_cast<std::size_t>(v)] = kUnset;
      return false;
    }
    const Var branch = pick();
    if (branch == 0) return true;  // all clauses satisfied
    if (++decisions > max_decisions) {
      exhausted = true;
      for (const Var v : trail) assign[static_cast<std::size_t>(v)] = kUnset;
      return false;
    }
    for (const std::int8_t phase : {kTrue, kFalse}) {
      assign[static_cast<std::size_t>(branch)] = phase;
      if (search()) return true;
      assign[static_cast<std::size_t>(branch)] = kUnset;
      if (exhausted) break;
    }
    for (const Var v : trail) assign[static_cast<std::size_t>(v)] = kUnset;
    return false;
  }
};

}  // namespace

SolveOutcome solve_dpll(const CnfFormula& formula,
                        std::uint64_t max_decisions) {
  DpllState state;
  state.max_decisions = max_decisions;
  state.assign.assign(static_cast<std::size_t>(formula.num_vars()) + 1, kUnset);

  std::vector<Lit> clause;
  for (const Lit l : formula.raw()) {
    if (l == 0) {
      if (clause.empty()) return {SolveResult::kUnsat, {}};
      // Dedupe and drop tautologies (sort by |lit| so x and ¬x are adjacent).
      std::sort(clause.begin(), clause.end(), [](Lit a, Lit b) {
        const Var va = a > 0 ? a : -a;
        const Var vb = b > 0 ? b : -b;
        return va != vb ? va < vb : a < b;
      });
      clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
      bool tautology = false;
      for (std::size_t i = 0; i + 1 < clause.size(); ++i) {
        if (clause[i] == -clause[i + 1]) tautology = true;
      }
      if (!tautology) state.clauses.push_back(clause);
      clause.clear();
    } else {
      clause.push_back(l);
    }
  }

  const bool sat = state.search();
  if (state.exhausted) return {SolveResult::kUnknown, {}};
  if (!sat) return {SolveResult::kUnsat, {}};
  SolveOutcome out{SolveResult::kSat, {}};
  out.model.resize(static_cast<std::size_t>(formula.num_vars()) + 1, false);
  for (Var v = 1; v <= formula.num_vars(); ++v) {
    out.model[static_cast<std::size_t>(v)] =
        state.assign[static_cast<std::size_t>(v)] == kTrue;
  }
  return out;
}

}  // namespace monocle::sat
