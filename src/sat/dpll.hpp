// Reference DPLL solver (alternative backend).
//
// The paper evaluates off-the-shelf SMT solvers (Z3, STP) against its
// custom PicoSAT path and finds them 3–5x slower for probe-sized instances
// (§7).  This module plays the "alternative backend" role here: a simple,
// obviously-correct DPLL solver with unit propagation and pure-literal
// elimination but no clause learning.  It cross-checks the CDCL solver in
// the test suite and quantifies the backend gap in the micro benchmarks.
#pragma once

#include <cstdint>

#include "sat/cnf.hpp"
#include "sat/solver.hpp"

namespace monocle::sat {

/// Solves `formula` by recursive DPLL.  Intended for verification and
/// comparison only — exponential on hard instances.  `max_decisions`
/// bounds the search (kUnknown on exhaustion).
SolveOutcome solve_dpll(const CnfFormula& formula,
                        std::uint64_t max_decisions = 50'000'000);

}  // namespace monocle::sat
