#include "workloads/scenarios.hpp"

#include <cmath>
#include <utility>

namespace monocle::workloads {

Scenario ScenarioLibrary::hard_link_failure(SwitchId sw, std::uint16_t port) {
  Scenario s;
  s.name = "hard_link_failure";
  s.truth.links.push_back({sw, port});
  s.install = [sw, port](switchsim::Network& net, switchsim::FaultPlan&,
                         netbase::SimTime) { net.fail_link(sw, port); };
  return s;
}

Scenario ScenarioLibrary::gray_port(SwitchId sw, std::uint16_t port,
                                    double drop_probability) {
  Scenario s;
  s.name = "gray_port";
  s.truth.links.push_back({sw, port});
  s.install = [sw, port, drop_probability](switchsim::Network&,
                                           switchsim::FaultPlan& plan,
                                           netbase::SimTime) {
    plan.port_fault(sw, port).drop_probability = drop_probability;
  };
  return s;
}

Scenario ScenarioLibrary::flapping_link(SwitchId sw, std::uint16_t port,
                                        netbase::SimTime period,
                                        netbase::SimTime down) {
  Scenario s;
  s.name = "flapping_link";
  s.truth.links.push_back({sw, port});
  s.install = [sw, port, period, down](switchsim::Network&,
                                       switchsim::FaultPlan& plan,
                                       netbase::SimTime at) {
    auto& fault = plan.port_fault(sw, port);
    fault.flap_period = period;
    fault.flap_down = down;
    // Phase-lock the first down window to the activation time.
    fault.flap_phase = period - (at % period);
  };
  return s;
}

Scenario ScenarioLibrary::congestion(SwitchId sw, double loss,
                                     netbase::SimTime duration) {
  Scenario s;
  s.name = "congestion";
  s.truth.expect_clean = true;
  s.install = [sw, loss, duration](switchsim::Network&,
                                   switchsim::FaultPlan& plan,
                                   netbase::SimTime at) {
    auto& fault = plan.switch_fault(sw);
    fault.congestion_loss = loss;
    fault.congestion_start = at;
    fault.congestion_end = duration == 0 ? 0 : at + duration;
  };
  return s;
}

Scenario ScenarioLibrary::delayed_packet_ins(SwitchId sw,
                                             netbase::SimTime min_delay,
                                             netbase::SimTime max_delay) {
  Scenario s;
  s.name = "delayed_packet_ins";
  s.truth.expect_clean = true;
  s.install = [sw, min_delay, max_delay](switchsim::Network&,
                                         switchsim::FaultPlan& plan,
                                         netbase::SimTime) {
    auto& fault = plan.switch_fault(sw);
    fault.packetin_delay_min = min_delay;
    fault.packetin_delay_max = max_delay;
  };
  return s;
}

Scenario ScenarioLibrary::brain_death(SwitchId sw, bool drops_dataplane) {
  Scenario s;
  s.name = drops_dataplane ? "brain_death" : "brain_death_commits_only";
  if (drops_dataplane) {
    s.truth.switches.push_back(sw);
  } else {
    s.truth.expect_clean = true;
  }
  s.install = [sw, drops_dataplane](switchsim::Network&,
                                    switchsim::FaultPlan& plan,
                                    netbase::SimTime at) {
    auto& fault = plan.switch_fault(sw);
    fault.brain_death_at = at;
    fault.brain_death_drops_dataplane = drops_dataplane;
  };
  return s;
}

Scenario ScenarioLibrary::line_card(SwitchId sw,
                                    std::vector<std::uint16_t> ports) {
  Scenario s;
  s.name = "line_card";
  for (const std::uint16_t port : ports) s.truth.links.push_back({sw, port});
  s.install = [sw, ports = std::move(ports)](switchsim::Network&,
                                             switchsim::FaultPlan& plan,
                                             netbase::SimTime) {
    for (const std::uint16_t port : ports) {
      plan.port_fault(sw, port).drop_probability = 1.0;
    }
  };
  return s;
}

void ScenarioLibrary::ambient_loss(switchsim::Network& net,
                                   switchsim::FaultPlan& plan,
                                   std::span<const SwitchId> switches,
                                   double rate) {
  if (rate <= 0.0) return;
  // should_drop consults both endpoints of a traversal; solve
  // 1 - (1 - p)^2 = rate for the per-endpoint probability.
  const double p = 1.0 - std::sqrt(1.0 - rate);
  for (const SwitchId sw : switches) {
    for (const std::uint16_t port : net.ports(sw)) {
      if (!net.peer(sw, port).has_value()) continue;  // host edges stay clean
      auto& fault = plan.port_fault(sw, port);
      if (fault.drop_probability < p) fault.drop_probability = p;
    }
  }
}

}  // namespace monocle::workloads
