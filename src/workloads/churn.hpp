// Reproducible FlowMod churn streams (paper §4: rules are added, modified
// and deleted continuously while probing runs).
//
// A ChurnGenerator emits a deterministic, seeded sequence of FlowMods
// against an evolving rule population: adds draw fresh rules from an
// ACL-profile distribution (acl_generator.hpp), modifies and deletes always
// target a currently-installed rule (tracked internally), and the kind mix
// is biased toward growth/shrink near the configured population bounds.
// Two generators built from the same profile and initial rules emit
// byte-identical streams — the property the churn parity suite and the
// fig10 bench build on: the delta-maintained and the from-scratch pipeline
// consume the SAME update sequence.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "openflow/messages.hpp"
#include "workloads/acl_generator.hpp"

namespace monocle::workloads {

struct ChurnProfile {
  std::uint64_t seed = 1;
  /// Kind mix (normalized internally).
  double add_fraction = 0.40;
  double modify_fraction = 0.25;
  double delete_fraction = 0.35;
  /// Distribution fresh rules are drawn from (rule_count is ignored; the
  /// generator synthesizes on demand).
  AclProfile acl = {};
  /// Population bounds: at/below min the stream only grows, at/above max it
  /// only shrinks (keeps sustained churn stationary around the start size).
  std::size_t min_rules = 1;
  std::size_t max_rules = static_cast<std::size_t>(-1);
};

class ChurnGenerator {
 public:
  /// `initial` is the live population the stream starts from (the rules
  /// already installed in the table the stream will be applied to).
  ChurnGenerator(ChurnProfile profile, std::vector<openflow::Rule> initial);

  /// The next FlowMod of the stream.  Adds carry fresh monotonic cookies;
  /// modifies keep the target's cookie and match and change its actions;
  /// deletes are strict on the target's match+priority.
  openflow::FlowMod next();

  /// Rules currently installed according to the emitted stream.
  [[nodiscard]] const std::vector<openflow::Rule>& live_rules() const {
    return live_;
  }
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }

 private:
  openflow::Rule synth_rule();

  ChurnProfile profile_;
  std::mt19937_64 rng_;
  std::vector<openflow::Rule> live_;
  /// Pre-synthesized fresh-rule pool, refilled in slabs (reuses the
  /// deterministic generate_acl machinery).
  std::vector<openflow::Rule> pool_;
  std::size_t pool_pos_ = 0;
  std::uint64_t pool_slab_ = 0;
  std::uint64_t next_cookie_ = 1;
  std::uint64_t emitted_ = 0;
};

}  // namespace monocle::workloads
