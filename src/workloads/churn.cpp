#include "workloads/churn.hpp"

#include <algorithm>

namespace monocle::workloads {

using openflow::FlowMod;
using openflow::FlowModCommand;
using openflow::Rule;

ChurnGenerator::ChurnGenerator(ChurnProfile profile,
                               std::vector<Rule> initial)
    : profile_(profile), rng_(profile.seed), live_(std::move(initial)) {
  for (const Rule& r : live_) next_cookie_ = std::max(next_cookie_, r.cookie + 1);
}

Rule ChurnGenerator::synth_rule() {
  if (pool_pos_ >= pool_.size()) {
    // Refill in slabs; the slab index keys the ACL seed so the stream stays
    // deterministic regardless of slab size.
    AclProfile slab = profile_.acl;
    slab.rule_count = 256;
    slab.default_rule = false;
    slab.seed = profile_.seed * 0x9E3779B97F4A7C15ull + ++pool_slab_;
    pool_ = generate_acl(slab);
    pool_pos_ = 0;
  }
  Rule r = pool_[pool_pos_++];
  r.cookie = next_cookie_++;
  return r;
}

FlowMod ChurnGenerator::next() {
  ++emitted_;
  double add_w = profile_.add_fraction;
  double mod_w = profile_.modify_fraction;
  double del_w = profile_.delete_fraction;
  if (live_.size() <= profile_.min_rules) {
    mod_w = del_w = 0;  // only grow
  } else if (live_.size() >= profile_.max_rules) {
    add_w = 0;  // only shrink / churn in place
  }
  const double total = std::max(1e-12, add_w + mod_w + del_w);
  const double roll =
      std::uniform_real_distribution<double>(0.0, total)(rng_);

  FlowMod fm;
  if (roll < add_w || live_.empty()) {
    const Rule r = synth_rule();
    fm.command = FlowModCommand::kAdd;
    fm.match = r.match;
    fm.priority = r.priority;
    fm.cookie = r.cookie;
    fm.actions = r.actions;
    // Track replace-on-identical-slot semantics so modify/delete targets
    // always exist.
    const auto slot = std::find_if(live_.begin(), live_.end(), [&](const Rule& l) {
      return l.priority == r.priority && l.match == r.match;
    });
    if (slot != live_.end()) {
      *slot = r;
    } else {
      live_.push_back(r);
    }
    return fm;
  }

  std::uniform_int_distribution<std::size_t> pick(0, live_.size() - 1);
  Rule& target = live_[pick(rng_)];
  if (roll < add_w + mod_w) {
    // Modify in place: flip the action between drop and a (rotated) output
    // port — match and cookie stay, the outcome changes.
    if (target.actions.empty()) {
      target.actions = {openflow::Action::output(1)};
    } else {
      const std::uint16_t port = target.actions.front().port;
      const int ports = std::max(1, profile_.acl.ports);
      if (port >= static_cast<std::uint16_t>(ports)) {
        target.actions = {};  // becomes a deny
      } else {
        target.actions = {
            openflow::Action::output(static_cast<std::uint16_t>(port + 1))};
      }
    }
    fm.command = FlowModCommand::kModifyStrict;
    fm.match = target.match;
    fm.priority = target.priority;
    fm.cookie = target.cookie;
    fm.actions = target.actions;
    return fm;
  }

  fm.command = FlowModCommand::kDeleteStrict;
  fm.match = target.match;
  fm.priority = target.priority;
  fm.cookie = target.cookie;
  std::swap(target, live_.back());
  live_.pop_back();
  return fm;
}

}  // namespace monocle::workloads
