// Forwarding-table and path-update workloads (Figures 4, 5 and 8).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "openflow/rule.hpp"
#include "topo/topology.hpp"

namespace monocle::workloads {

/// `count` layer-3 host routes: nw_dst = 10.0.x.y/32 -> output one of
/// `out_ports` (round-robin), priority 10.  Cookie = 1-based index.
/// This is the Figure 4 flow table (1000 L3 forwarding rules).
std::vector<openflow::Rule> l3_host_routes(
    std::size_t count, const std::vector<std::uint16_t>& out_ports,
    std::uint64_t seed = 1);

/// Like l3_host_routes but with output ports assigned strictly round-robin
/// (rule i -> out_ports[i % size]), so every port's rule group is equally
/// sized — what link-failure localization thresholds and the fleet benches
/// need (the seeded random assignment can leave a port nearly ruleless).
std::vector<openflow::Rule> l3_host_routes_even(
    std::size_t count, const std::vector<std::uint16_t>& out_ports);

/// One hop of a path installation.
struct PathHop {
  topo::NodeId node;
  openflow::Rule rule;
};

/// A two-phase consistent path update (§8.4): install hops[1..] first
/// (egress toward ingress), confirm, then install hops[0] (the ingress
/// rule).  Flow i matches (nw_src=base_src+i, nw_dst=base_dst+i).
struct PathUpdate {
  std::uint32_t flow_id = 0;
  std::vector<PathHop> hops;  // hops[0] = ingress switch
};

/// Generates `count` random paths through `topo` between distinct random
/// nodes (BFS shortest paths; 2..diameter hops).  `port_of(a, b)` must
/// return the port on `a` facing neighbor `b`; `egress_port(n)` the
/// host-facing port used at the final hop.
std::vector<PathUpdate> random_path_updates(
    const topo::Topology& topo, std::size_t count,
    const std::function<std::uint16_t(topo::NodeId, topo::NodeId)>& port_of,
    const std::function<std::uint16_t(topo::NodeId)>& egress_port,
    std::uint64_t seed = 1, std::uint32_t base_src = 0x0A010000,
    std::uint32_t base_dst = 0x0A020000);

/// BFS shortest path (sequence of nodes) or empty when unreachable.
std::vector<topo::NodeId> shortest_path(const topo::Topology& topo,
                                        topo::NodeId from, topo::NodeId to);

}  // namespace monocle::workloads
