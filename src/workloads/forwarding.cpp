#include "workloads/forwarding.hpp"

#include <deque>
#include <random>

namespace monocle::workloads {

using netbase::Field;
using openflow::Action;
using openflow::Rule;
using topo::NodeId;

std::vector<Rule> l3_host_routes(std::size_t count,
                                 const std::vector<std::uint16_t>& out_ports,
                                 std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Rule> rules;
  rules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rule r;
    r.priority = 10;
    r.cookie = i + 1;
    r.match.set_exact(Field::EthType, netbase::kEthTypeIpv4);
    // 10.0.x.y with x.y spanning the rule index (unique hosts).
    r.match.set_prefix(Field::IpDst,
                       0x0A000000u + static_cast<std::uint32_t>(i + 1), 32);
    r.actions = {
        Action::output(out_ports[rng() % out_ports.size()])};
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<Rule> l3_host_routes_even(
    std::size_t count, const std::vector<std::uint16_t>& out_ports) {
  std::vector<Rule> rules;
  rules.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rule r;
    r.priority = 10;
    r.cookie = i + 1;
    r.match.set_exact(Field::EthType, netbase::kEthTypeIpv4);
    r.match.set_prefix(Field::IpDst,
                       0x0A000000u + static_cast<std::uint32_t>(i + 1), 32);
    r.actions = {Action::output(out_ports[i % out_ports.size()])};
    rules.push_back(std::move(r));
  }
  return rules;
}

std::vector<NodeId> shortest_path(const topo::Topology& topo, NodeId from,
                                  NodeId to) {
  if (from == to) return {from};
  std::vector<NodeId> parent(topo.node_count(), UINT32_MAX);
  std::deque<NodeId> frontier{from};
  parent[from] = from;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop_front();
    for (const NodeId m : topo.neighbors(n)) {
      if (parent[m] != UINT32_MAX) continue;
      parent[m] = n;
      if (m == to) {
        std::vector<NodeId> path{to};
        for (NodeId at = to; at != from;) {
          at = parent[at];
          path.push_back(at);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      frontier.push_back(m);
    }
  }
  return {};
}

std::vector<PathUpdate> random_path_updates(
    const topo::Topology& topo, std::size_t count,
    const std::function<std::uint16_t(NodeId, NodeId)>& port_of,
    const std::function<std::uint16_t(NodeId)>& egress_port,
    std::uint64_t seed, std::uint32_t base_src, std::uint32_t base_dst) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<NodeId> pick(
      0, static_cast<NodeId>(topo.node_count() - 1));
  std::vector<PathUpdate> updates;
  updates.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    NodeId a = pick(rng);
    NodeId b = pick(rng);
    while (b == a) b = pick(rng);
    const auto path = shortest_path(topo, a, b);
    if (path.size() < 2) continue;

    PathUpdate pu;
    pu.flow_id = i;
    for (std::size_t h = 0; h < path.size(); ++h) {
      Rule r;
      r.priority = 100;
      r.cookie = (static_cast<std::uint64_t>(i + 1) << 16) | h;
      r.match.set_exact(Field::EthType, netbase::kEthTypeIpv4);
      r.match.set_prefix(Field::IpSrc, base_src + i, 32);
      r.match.set_prefix(Field::IpDst, base_dst + i, 32);
      const std::uint16_t out = (h + 1 < path.size())
                                    ? port_of(path[h], path[h + 1])
                                    : egress_port(path[h]);
      r.actions = {Action::output(out)};
      pu.hops.push_back({path[h], std::move(r)});
    }
    updates.push_back(std::move(pu));
  }
  return updates;
}

}  // namespace monocle::workloads
