#include "workloads/acl_generator.hpp"

#include <algorithm>
#include <bit>
#include <random>

namespace monocle::workloads {

using netbase::Field;
using openflow::Action;
using openflow::Match;
using openflow::Rule;

AclProfile stanford_profile(std::uint64_t seed) {
  AclProfile p;
  p.rule_count = 2755;
  p.seed = seed;
  p.src_wildcard = 0.25;
  p.dst_wildcard = 0.05;
  p.exact_host = 0.20;   // router ACLs: mostly prefixes
  p.with_ports = 0.35;
  p.tcp_fraction = 0.55;
  p.udp_fraction = 0.25;
  p.deny_fraction = 0.30;
  p.sites = 16;
  return p;
}

AclProfile campus_profile(std::uint64_t seed) {
  AclProfile p;
  p.rule_count = 10958;
  p.seed = seed;
  p.src_wildcard = 0.12;
  p.dst_wildcard = 0.08;
  p.exact_host = 0.40;   // firewall ACLs: many host-specific entries
  p.with_ports = 0.65;
  p.tcp_fraction = 0.62;
  p.udp_fraction = 0.28;
  p.deny_fraction = 0.40;
  p.sites = 40;
  return p;
}

std::vector<Rule> generate_acl(const AclProfile& profile) {
  std::mt19937_64 rng(profile.seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_int_distribution<int> site(0, profile.sites - 1);
  std::uniform_int_distribution<int> host(1, 0xFFFE);
  std::uniform_int_distribution<int> out_port(1, profile.ports);
  // Well-known service ports dominate real ACLs.
  const std::uint16_t services[] = {80, 443, 22, 53, 25, 110, 143, 3389, 8080, 123};
  std::uniform_int_distribution<std::size_t> service(0, std::size(services) - 1);

  auto pick_prefix = [&](bool wildcard, Field f, Match& m) {
    if (wildcard) return;
    // Site base 10.{site}.0.0/16; refine to /24 or /32 (broad /16 entries
    // are rare in real ACLs).
    const std::uint32_t base =
        0x0A000000u | (static_cast<std::uint32_t>(site(rng)) << 16);
    const double r = unit(rng);
    if (r < profile.exact_host) {
      m.set_prefix(f, base | static_cast<std::uint32_t>(host(rng)), 32);
    } else if (r < profile.exact_host + 0.55) {
      m.set_prefix(f, base | (static_cast<std::uint32_t>(host(rng) & 0xFF) << 8),
                   24);
    } else {
      m.set_prefix(f, base, 16);
    }
  };

  std::vector<Rule> rules;
  rules.reserve(profile.rule_count + 1);
  const std::size_t body =
      profile.default_rule ? profile.rule_count - 1 : profile.rule_count;
  for (std::size_t i = 0; i < body; ++i) {
    Match m;
    m.set_exact(Field::EthType, netbase::kEthTypeIpv4);
    pick_prefix(unit(rng) < profile.src_wildcard, Field::IpSrc, m);
    pick_prefix(unit(rng) < profile.dst_wildcard, Field::IpDst, m);

    const double proto_roll = unit(rng);
    const bool tcp = proto_roll < profile.tcp_fraction;
    const bool udp = !tcp && proto_roll < profile.tcp_fraction + profile.udp_fraction;
    if (tcp || udp) {
      m.set_exact(Field::IpProto,
                  tcp ? netbase::kIpProtoTcp : netbase::kIpProtoUdp);
      if (unit(rng) < profile.with_ports) {
        m.set_exact(Field::TpDst, services[service(rng)]);
        if (unit(rng) < 0.2) {
          m.set_exact(Field::TpSrc, services[service(rng)]);
        }
      }
    }

    Rule r;
    r.match = m;
    if (unit(rng) < profile.deny_fraction) {
      r.actions = {};  // deny == drop
    } else {
      r.actions = {Action::output(static_cast<std::uint16_t>(out_port(rng)))};
    }
    rules.push_back(std::move(r));
  }

  // Real ACLs are first-match-wins with specific entries before broad ones;
  // order by specificity (total cared bits) so broad rules sit at low
  // priority.  This ordering is what keeps most rules probe-able (Table 2:
  // probes exist for the vast majority of rules).
  std::stable_sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    auto care_bits = [](const Rule& r) {
      int n = 0;
      for (const auto w : r.match.care().w) n += std::popcount(w);
      return n;
    };
    return care_bits(a) > care_bits(b);
  });
  for (std::size_t i = 0; i < rules.size(); ++i) {
    rules[i].priority = static_cast<std::uint16_t>(profile.rule_count - i);
    rules[i].cookie = i + 1;
  }

  if (profile.default_rule) {
    Rule def;
    def.priority = 0;
    def.cookie = profile.rule_count;
    def.match.set_exact(Field::EthType, netbase::kEthTypeIpv4);
    if (profile.default_permit) {
      def.actions = {Action::output(1)};
    } else {
      def.actions = {};
    }
    rules.push_back(std::move(def));
  }
  return rules;
}

}  // namespace monocle::workloads
