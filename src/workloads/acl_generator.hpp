// Synthetic ACL rule-set generator (ClassBench-inspired).
//
// Stand-in for the paper's Table 2 datasets: the Stanford backbone "yoza"
// ACL configuration (2755 rules) and a large campus network's ACLs (10958
// rules).  The originals are not redistributable here, so we synthesize
// rule sets with the same size and the structural properties that drive
// probe-generation cost: prefix-pair matches of mixed specificity, port and
// protocol fields that are either exact or wildcarded, permit/deny actions,
// descending priorities with a catch-all default, and realistic overlap
// density (the paper notes generation time "depends mostly on the number of
// rules" and on overlap checking — §8.2).  See DESIGN.md's substitution
// table.
#pragma once

#include <cstdint>
#include <vector>

#include "openflow/rule.hpp"

namespace monocle::workloads {

/// Tunable generator profile.
struct AclProfile {
  std::size_t rule_count = 1000;
  std::uint64_t seed = 1;

  // Field-structure mix (fractions in [0,1]).
  double src_wildcard = 0.15;  ///< fully wildcarded nw_src
  double dst_wildcard = 0.10;
  double exact_host = 0.30;    ///< /32 (vs shorter prefixes)
  double with_ports = 0.55;    ///< exact tp_src/tp_dst given proto tcp/udp
  double tcp_fraction = 0.60;
  double udp_fraction = 0.25;  ///< remainder: ip-any (no L4 match)
  double deny_fraction = 0.35; ///< drop action (ACL deny)

  /// Number of distinct /16 "sites" prefixes are drawn from (drives overlap
  /// density: fewer sites => more overlapping rules).
  int sites = 24;
  /// Output ports available for permit actions.
  int ports = 4;
  /// Append a catch-all default rule (priority 0).
  bool default_rule = true;
  bool default_permit = true;
};

/// Profile matching the Stanford backbone "yoza" dataset's scale
/// (2755 rules, router ACLs: prefix-heavy, fewer port matches).
AclProfile stanford_profile(std::uint64_t seed = 42);

/// Profile matching the large-campus dataset's scale (10958 rules,
/// firewall-style 5-tuple ACLs).
AclProfile campus_profile(std::uint64_t seed = 7);

/// Generates the rule set: priorities descend from rule_count down to 1
/// (default rule at 0), cookies are 1-based rule indices.
std::vector<openflow::Rule> generate_acl(const AclProfile& profile);

}  // namespace monocle::workloads
