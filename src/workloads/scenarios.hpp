// Failure-scenario zoo (ISSUE 6): named, reproducible fault scripts for the
// robustness benches and the soak test.
//
// A Scenario couples three things:
//   * a name (JSON/report key),
//   * ground truth — which network elements the localization stack SHOULD
//     blame (or that it should blame nothing: expect_clean scenarios inject
//     noise, not faults, and any confirmed diagnosis is a false positive),
//   * an install() script that arms the fault against a live
//     switchsim::Network + FaultPlan at a given activation time.
//
// The factories below cover the taxonomy of docs/DESIGN.md §11: hard link
// failures, gray ports, flapping links, congestion windows, delayed and
// reordered PacketIns, partial brain death and correlated line-card loss.
// ambient_loss() is the orthogonal knob the fig12 sweeps turn: uniform
// probe loss across a whole fabric, with the per-endpoint probability
// compensated so one link traversal is lost at the requested rate.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "netbase/time.hpp"
#include "switchsim/fault_plan.hpp"
#include "switchsim/network.hpp"

namespace monocle::workloads {

/// What a scenario's correct diagnosis looks like.  Links are named by one
/// endpoint (the localizer reports both; either matches).
struct ScenarioTruth {
  struct Link {
    SwitchId sw = 0;
    std::uint16_t port = 0;
  };
  std::vector<Link> links;
  std::vector<SwitchId> switches;
  /// Noise-only scenario: a robust localizer must confirm NOTHING.
  bool expect_clean = false;
};

struct Scenario {
  std::string name;
  ScenarioTruth truth;
  /// Arms the fault.  `at` is the activation time (flap phase, congestion
  /// window start, brain-death onset); pass the current sim time.
  std::function<void(switchsim::Network& net, switchsim::FaultPlan& plan,
                     netbase::SimTime at)>
      install;
};

/// Factories for the zoo.  All are pure descriptions — nothing touches the
/// network until install() runs.
class ScenarioLibrary {
 public:
  /// Hard bidirectional link failure at (`sw`, `port`) (Network::fail_link).
  static Scenario hard_link_failure(SwitchId sw, std::uint16_t port);

  /// Gray failure: packets over (`sw`, `port`) are lost with
  /// `drop_probability` in each direction (FaultPlan checks both endpoints
  /// of the traversal, so one entry suffices).
  static Scenario gray_port(SwitchId sw, std::uint16_t port,
                            double drop_probability);

  /// Flapping link: dead for `down` out of every `period`, phase-locked to
  /// the activation time.  Truth expects a confirmed link diagnosis — the
  /// evidence accumulator must integrate across flap windows.
  static Scenario flapping_link(SwitchId sw, std::uint16_t port,
                                netbase::SimTime period, netbase::SimTime down);

  /// Congestion: `sw` loses `loss` of everything it emits for `duration`
  /// after activation (0 = open-ended).  Moderate loss is noise, not a
  /// fault: truth is expect_clean.
  static Scenario congestion(SwitchId sw, double loss,
                             netbase::SimTime duration);

  /// PacketIn jitter on `sw`: every PacketIn is delayed by an extra uniform
  /// draw in [min_delay, max_delay]; unequal draws reorder.  expect_clean.
  static Scenario delayed_packet_ins(SwitchId sw, netbase::SimTime min_delay,
                                     netbase::SimTime max_delay);

  /// Partial brain death of `sw`: control channel answers, commit engine
  /// discards FlowMods; with `drops_dataplane` the forwarding path wedges
  /// too and truth expects a switch-level diagnosis.  Without it, installed
  /// rules keep forwarding and steady probing sees nothing: expect_clean
  /// (the detection limit §11 documents).
  static Scenario brain_death(SwitchId sw, bool drops_dataplane = true);

  /// Correlated multi-element failure: every port in `ports` on `sw` goes
  /// hard-gray at once (a dead line card).  Truth lists each link.
  static Scenario line_card(SwitchId sw, std::vector<std::uint16_t> ports);

  /// Uniform ambient probe loss over every inter-switch port of `switches`:
  /// the per-endpoint gray probability is set to 1 - sqrt(1 - rate) so one
  /// link traversal (checked at both endpoints) is lost with `rate`.
  /// Layered on top of a scenario by the fig12 sweeps; not a Scenario
  /// itself because it carries no truth.
  static void ambient_loss(switchsim::Network& net,
                           switchsim::FaultPlan& plan,
                           std::span<const SwitchId> switches, double rate);
};

}  // namespace monocle::workloads
