// Lock-free per-shard stats ring: the capture side of the telemetry plane
// (docs/DESIGN.md §13, CoMo's capture -> export decoupling).
//
// One StatsRing per shard, single producer / single consumer: the shard's
// OWNING worker publishes one fixed-size, epoch-stamped StatsSample per
// probing round (Monitor::publish_telemetry, called at the end of every
// externally paced burst), and the export thread drains every ring on its
// own cadence.  This is what makes every exported Monitor counter
// torn-read-free: workers never expose live MonitorStats fields across
// threads — they publish a consistent snapshot, and only ring memory is
// shared.
//
// Overwrite-oldest: the producer NEVER blocks or fails — when the consumer
// lags, the oldest unread samples are overwritten in place and the consumer
// counts them as dropped on its next drain (it detects the gap from the
// published index, and mid-overwrite slots from the per-slot sequence).
//
// Memory model: every shared word is a std::atomic<std::uint64_t> accessed
// relaxed, guarded by a per-slot seqlock (odd while the producer writes,
// even = 2*index+2 when sample `index` is complete).  The producer's release
// fence after the odd store pairs with the consumer's acquire fence after
// the payload loads, so a consumer that read any torn word is guaranteed to
// observe a changed sequence and reject the sample — no data race exists
// for ThreadSanitizer to flag, and no torn sample can ever be exported
// (tests/telemetry_test.cpp stresses byte-exact integrity).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace monocle::telemetry {

/// Confirm-latency histogram shape (fixed buckets, cumulative rendering in
/// the exporter).  Bounds are upper edges in nanoseconds; the last bucket
/// is +Inf.
inline constexpr std::size_t kConfirmLatencyBuckets = 8;
inline constexpr std::array<std::uint64_t, kConfirmLatencyBuckets - 1>
    kConfirmLatencyBoundsNs = {1'000'000,   5'000'000,   10'000'000,
                               25'000'000,  50'000'000,  100'000'000,
                               500'000'000};

/// Bucket index for one confirm latency (ns).
constexpr std::size_t confirm_latency_bucket(std::uint64_t ns) {
  for (std::size_t i = 0; i < kConfirmLatencyBoundsNs.size(); ++i) {
    if (ns <= kConfirmLatencyBoundsNs[i]) return i;
  }
  return kConfirmLatencyBuckets - 1;
}

/// Counter slots of a StatsSample.  Cumulative MonitorStats counters first,
/// then the confirm-latency histogram block, then point-in-time gauges.
/// kCounterMeta (below) names each slot for the Prometheus exporter.
enum Counter : std::size_t {
  kProbesInjected = 0,
  kProbesCaught,
  kStaleProbes,
  kProbeGenerations,
  kUpdatesConfirmed,
  kUpdatesQueued,
  kAlarms,
  kFlowModsForwarded,
  kChannelDisconnects,
  kProbeCacheHits,
  kProbeCacheMisses,
  kProbeInvalidations,
  kDeltasApplied,
  kDeltaRegens,
  kScratchRegens,
  kStaleEpochDrops,
  kProbeRetries,
  kSuspectsRaised,
  kSuspectsConfirmed,
  kFlapSuppressions,
  kGenerationTimeNs,
  kConfirmLatencyCount,
  kConfirmLatencySumNs,
  kConfirmLatencyBucket0,  // kConfirmLatencyBuckets consecutive slots
  kConfirmLatencyBucketLast = kConfirmLatencyBucket0 +
                              kConfirmLatencyBuckets - 1,
  // Solver/session endurance (PR 9): aggregated sat::SolverStats sweep
  // counters across the shard's live batch sessions, plus background
  // session rebuilds.
  kSolverSweeps,
  kSolverRetiredClauses,
  kSessionRebuilds,
  // Point-in-time gauges (not monotone).
  kFailedRules,
  kOutstandingProbes,
  kPendingUpdates,
  kRuleFloorSize,  ///< staleness-floor map size (watermark sweep keeps bounded)
  kCounterCount,
};

struct CounterMeta {
  const char* name;  ///< Prometheus family suffix (monocle_<name>[_total])
  bool gauge;        ///< false = monotone counter (rendered with _total)
};

inline constexpr std::array<CounterMeta, kCounterCount> kCounterMeta = [] {
  std::array<CounterMeta, kCounterCount> m{};
  m[kProbesInjected] = {"probes_injected", false};
  m[kProbesCaught] = {"probes_caught", false};
  m[kStaleProbes] = {"stale_probes", false};
  m[kProbeGenerations] = {"probe_generations", false};
  m[kUpdatesConfirmed] = {"updates_confirmed", false};
  m[kUpdatesQueued] = {"updates_queued", false};
  m[kAlarms] = {"alarms", false};
  m[kFlowModsForwarded] = {"flowmods_forwarded", false};
  m[kChannelDisconnects] = {"channel_disconnects", false};
  m[kProbeCacheHits] = {"probe_cache_hits", false};
  m[kProbeCacheMisses] = {"probe_cache_misses", false};
  m[kProbeInvalidations] = {"probe_invalidations", false};
  m[kDeltasApplied] = {"deltas_applied", false};
  m[kDeltaRegens] = {"delta_regens", false};
  m[kScratchRegens] = {"scratch_regens", false};
  m[kStaleEpochDrops] = {"stale_epoch_drops", false};
  m[kProbeRetries] = {"probe_retries", false};
  m[kSuspectsRaised] = {"suspects_raised", false};
  m[kSuspectsConfirmed] = {"suspects_confirmed", false};
  m[kFlapSuppressions] = {"flap_suppressions", false};
  m[kGenerationTimeNs] = {"generation_time_ns", false};
  // The histogram block is rendered as one Prometheus histogram family by
  // the exporter; these names only surface in debugging dumps.
  m[kConfirmLatencyCount] = {"confirm_latency_count", false};
  m[kConfirmLatencySumNs] = {"confirm_latency_sum_ns", false};
  for (std::size_t b = 0; b < kConfirmLatencyBuckets; ++b) {
    m[kConfirmLatencyBucket0 + b] = {"confirm_latency_bucket", false};
  }
  m[kSolverSweeps] = {"solver_sweeps", false};
  m[kSolverRetiredClauses] = {"solver_retired_clauses", false};
  m[kSessionRebuilds] = {"session_rebuilds", false};
  m[kFailedRules] = {"failed_rules", true};
  m[kOutstandingProbes] = {"outstanding_probes", true};
  m[kPendingUpdates] = {"pending_updates", true};
  m[kRuleFloorSize] = {"rule_floor_size", true};
  return m;
}();

/// One fixed-size, epoch-stamped telemetry sample.  Plain 64-bit words only
/// (the ring stores it word-by-word through atomics).
struct StatsSample {
  std::uint64_t shard = 0;    ///< switch id of the publishing Monitor
  std::uint64_t seq = 0;      ///< producer publish index (0-based, gap-free)
  std::uint64_t epoch = 0;    ///< table epoch at publish time
  std::uint64_t when_ns = 0;  ///< Runtime::now() at publish time
  std::array<std::uint64_t, kCounterCount> counters{};
};
static_assert(sizeof(StatsSample) % sizeof(std::uint64_t) == 0);

/// Single-producer single-consumer overwrite-oldest ring of StatsSamples.
class StatsRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit StatsRing(std::size_t capacity = 64) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    cap_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<Slot[]>(cap_);
  }

  StatsRing(const StatsRing&) = delete;
  StatsRing& operator=(const StatsRing&) = delete;

  /// Producer only.  Stamps s.seq with the publish index.  Never blocks;
  /// overwrites the oldest unread sample when the ring is full.
  void publish(StatsSample s) {
    const std::uint64_t n = head_;
    s.seq = n;
    Slot& slot = slots_[n & mask_];
    // Odd marker first, then a release fence: a consumer that reads any of
    // the payload words below is guaranteed (via its own acquire fence) to
    // observe seq >= odd(n) on its validation re-read.
    slot.seq.store(2 * n + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    std::uint64_t words[kSampleWords];
    std::memcpy(words, &s, sizeof(s));
    for (std::size_t i = 0; i < kSampleWords; ++i) {
      slot.words[i].store(words[i], std::memory_order_relaxed);
    }
    // Even = complete; release-publish the payload, then the index.
    slot.seq.store(2 * n + 2, std::memory_order_release);
    head_ = n + 1;
    head_pub_.store(n + 1, std::memory_order_release);
  }

  struct Drained {
    std::size_t drained = 0;   ///< samples appended to `out` this call
    std::uint64_t dropped = 0; ///< samples lost to overwrite this call
  };

  /// Consumer only.  Appends every readable sample to `out`, oldest first,
  /// in publish order; accounts samples overwritten since the last drain
  /// as dropped.
  Drained drain(std::vector<StatsSample>& out) {
    Drained result;
    const std::uint64_t head = head_pub_.load(std::memory_order_acquire);
    if (head > tail_ + cap_) {
      // Fell a full ring behind: everything below head - cap_ is gone.
      result.dropped += head - cap_ - tail_;
      tail_ = head - cap_;
    }
    while (tail_ < head) {
      const std::uint64_t n = tail_;
      Slot& slot = slots_[n & mask_];
      const std::uint64_t expect = 2 * n + 2;
      const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
      if (s1 != expect) {
        // The producer lapped us mid-scan (s1 belongs to a newer sample,
        // or is odd while one is being written over this slot).
        ++result.dropped;
        ++tail_;
        continue;
      }
      std::uint64_t words[kSampleWords];
      for (std::size_t i = 0; i < kSampleWords; ++i) {
        words[i] = slot.words[i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.seq.load(std::memory_order_relaxed) != s1) {
        ++result.dropped;  // torn: overwritten while copying
        ++tail_;
        continue;
      }
      StatsSample sample;
      std::memcpy(&sample, words, sizeof(sample));
      out.push_back(sample);
      ++result.drained;
      ++tail_;
    }
    dropped_.fetch_add(result.dropped, std::memory_order_relaxed);
    drained_.fetch_add(result.drained, std::memory_order_relaxed);
    return result;
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }
  /// Total samples published (producer index; any thread may read).
  [[nodiscard]] std::uint64_t published() const {
    return head_pub_.load(std::memory_order_acquire);
  }
  /// Cumulative overwrite-dropped samples, as accounted by the consumer.
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Cumulative samples handed to the consumer.
  [[nodiscard]] std::uint64_t drained() const {
    return drained_.load(std::memory_order_relaxed);
  }
  /// Samples currently readable (consumer-side estimate).
  [[nodiscard]] std::size_t readable() const {
    const std::uint64_t head = head_pub_.load(std::memory_order_acquire);
    const std::uint64_t lag = head - tail_;
    return lag > cap_ ? cap_ : static_cast<std::size_t>(lag);
  }

 private:
  static constexpr std::size_t kSampleWords =
      sizeof(StatsSample) / sizeof(std::uint64_t);

  struct Slot {
    /// 0 empty; 2n+1 while sample n is written; 2n+2 once complete.
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, kSampleWords> words{};
  };

  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::unique_ptr<Slot[]> slots_;
  /// Producer-private publish count (head_pub_ is its shared shadow).
  std::uint64_t head_ = 0;
  std::atomic<std::uint64_t> head_pub_{0};
  /// Consumer-private read cursor.
  std::uint64_t tail_ = 0;
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> drained_{0};
};

}  // namespace monocle::telemetry
