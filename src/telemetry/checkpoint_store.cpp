#include "telemetry/checkpoint_store.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>

#include "telemetry/journal.hpp"  // crc32

namespace monocle::telemetry {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kFrameMagic = 0x504B434Du;  // "MCKP"
constexpr char kSegmentPrefix[] = "checkpoint-";
constexpr char kSegmentSuffix[] = ".seg";

}  // namespace

// The CRC covers key, seq, len, reserved AND the payload bytes, so neither a
// torn header nor a torn payload can pass validation (the every-byte-offset
// truncation test cuts through both).
struct CheckpointStore::FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint32_t crc = 0;
  std::uint64_t key = 0;
  std::uint64_t seq = 0;
  std::uint32_t len = 0;
  std::uint32_t reserved = 0;
};
static_assert(sizeof(CheckpointStore::FrameHeader) == 32);

namespace {

std::uint32_t frame_crc(const CheckpointStore::FrameHeader& hdr,
                        std::span<const std::uint8_t> payload) {
  // Streamed over header-fields-past-the-crc-word then payload: no
  // concatenation buffer, so the per-round checkpoint append allocates
  // nothing (the fig15 steady-cycle alloc gate runs with checkpointing on).
  struct Covered {
    std::uint64_t key;
    std::uint64_t seq;
    std::uint32_t len;
    std::uint32_t reserved;
  } covered{hdr.key, hdr.seq, hdr.len, hdr.reserved};
  std::uint32_t state = crc32_seed();
  state = crc32_update(state, &covered, sizeof(covered));
  state = crc32_update(state, payload.data(), payload.size());
  return crc32_finish(state);
}

}  // namespace

CheckpointStore::CheckpointStore(Options opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty()) return;
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  std::lock_guard lock(mu_);
  recover_locked();
}

CheckpointStore::~CheckpointStore() {
  std::lock_guard lock(mu_);
  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
}

std::string CheckpointStore::segment_path(std::uint64_t index) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(index), kSegmentSuffix);
  return (fs::path(opts_.dir) / name).string();
}

std::vector<std::uint64_t> CheckpointStore::segment_indices_locked() const {
  std::vector<std::uint64_t> indices;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opts_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) != 0) continue;
    if (name.size() <=
        std::strlen(kSegmentPrefix) + std::strlen(kSegmentSuffix)) {
      continue;
    }
    const std::string digits =
        name.substr(std::strlen(kSegmentPrefix),
                    name.size() - std::strlen(kSegmentPrefix) -
                        std::strlen(kSegmentSuffix));
    indices.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

std::size_t CheckpointStore::scan_segment(
    const std::string& path,
    const std::function<void(std::uint64_t, std::uint64_t,
                             std::vector<std::uint8_t>&&)>& fn) const {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::size_t valid_end = 0;
  FrameHeader hdr;
  std::vector<std::uint8_t> payload;
  while (std::fread(&hdr, sizeof(hdr), 1, f) == 1) {
    if (hdr.magic != kFrameMagic) break;
    // A frame can never be larger than a whole segment; an absurd length is
    // corruption, not a record to allocate for.
    if (hdr.len > opts_.segment_bytes + sizeof(FrameHeader)) break;
    payload.resize(hdr.len);
    if (hdr.len > 0 && std::fread(payload.data(), 1, hdr.len, f) != hdr.len) {
      break;  // torn payload
    }
    if (frame_crc(hdr, payload) != hdr.crc) break;
    valid_end += sizeof(hdr) + hdr.len;
    if (fn) fn(hdr.key, hdr.seq, std::move(payload));
    payload.clear();
  }
  std::fclose(f);
  return valid_end;
}

void CheckpointStore::recover_locked() {
  const std::vector<std::uint64_t> indices = segment_indices_locked();
  std::uint64_t recovered = 0;
  std::uint64_t max_seq = 0;
  const auto count = [&](std::uint64_t, std::uint64_t seq,
                         std::vector<std::uint8_t>&&) {
    ++recovered;
    max_seq = std::max(max_seq, seq);
  };
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::string path = segment_path(indices[i]);
    const std::size_t valid_end = scan_segment(path, count);
    std::error_code ec;
    const auto actual = static_cast<std::size_t>(fs::file_size(path, ec));
    if (actual > valid_end) {
      // Torn/corrupt tail (crash mid-append): truncate back to the last
      // valid record; the prefix stays readable and appending resumes there
      // when this is the final segment.
      truncated_bytes_ += actual - valid_end;
      fs::resize_file(path, valid_end, ec);
    }
    if (i + 1 == indices.size()) {
      active_index_ = indices[i];
      active_ = std::fopen(path.c_str(), "ab");
      active_bytes_ = valid_end;
    }
  }
  recovered_ = recovered;
  next_seq_ = max_seq + 1;
  if (active_ == nullptr) {
    active_index_ = indices.empty() ? 1 : indices.back() + 1;
    open_next_segment_locked();
  }
}

void CheckpointStore::open_next_segment_locked() {
  if (active_ != nullptr) {
    std::fclose(active_);
    ++active_index_;
  }
  active_ = std::fopen(segment_path(active_index_).c_str(), "ab");
  active_bytes_ = 0;
  enforce_disk_bound_locked();
}

void CheckpointStore::enforce_disk_bound_locked() {
  std::vector<std::uint64_t> indices = segment_indices_locked();
  std::size_t total = 0;
  std::error_code ec;
  for (const std::uint64_t index : indices) {
    total += static_cast<std::size_t>(fs::file_size(segment_path(index), ec));
  }
  for (const std::uint64_t index : indices) {
    if (total <= opts_.max_total_bytes) break;
    if (index == active_index_) break;  // never the active segment
    const std::string path = segment_path(index);
    const auto size = static_cast<std::size_t>(fs::file_size(path, ec));
    fs::remove(path, ec);
    total -= size;
    ++segments_deleted_;
  }
}

std::uint64_t CheckpointStore::append(std::uint64_t key,
                                      std::span<const std::uint8_t> payload) {
  std::lock_guard lock(mu_);
  const std::uint64_t seq = next_seq_++;
  ++appended_;
  if (opts_.dir.empty()) {
    auto& slot = memory_[key];
    slot.first = seq;
    slot.second.assign(payload.begin(), payload.end());
    return seq;
  }
  if (active_ == nullptr) return seq;  // directory unusable: drop silently
  if (active_bytes_ >= opts_.segment_bytes) open_next_segment_locked();
  FrameHeader hdr;
  hdr.key = key;
  hdr.seq = seq;
  hdr.len = static_cast<std::uint32_t>(payload.size());
  hdr.crc = frame_crc(hdr, payload);
  if (std::fwrite(&hdr, sizeof(hdr), 1, active_) == 1) {
    bool ok = true;
    if (!payload.empty()) {
      ok = std::fwrite(payload.data(), 1, payload.size(), active_) ==
           payload.size();
    }
    if (ok) {
      active_bytes_ += sizeof(hdr) + payload.size();
      std::fflush(active_);
    }
  }
  return seq;
}

std::map<std::uint64_t, std::vector<std::uint8_t>>
CheckpointStore::load_latest() const {
  std::lock_guard lock(mu_);
  std::map<std::uint64_t, std::vector<std::uint8_t>> out;
  if (opts_.dir.empty()) {
    for (const auto& [key, slot] : memory_) out[key] = slot.second;
    return out;
  }
  if (active_ != nullptr) std::fflush(active_);
  std::map<std::uint64_t, std::uint64_t> best_seq;
  for (const std::uint64_t index : segment_indices_locked()) {
    scan_segment(segment_path(index),
                 [&](std::uint64_t key, std::uint64_t seq,
                     std::vector<std::uint8_t>&& payload) {
                   const auto it = best_seq.find(key);
                   if (it != best_seq.end() && it->second > seq) return;
                   best_seq[key] = seq;
                   out[key] = std::move(payload);
                 });
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> CheckpointStore::load(
    std::uint64_t key) const {
  auto all = load_latest();
  const auto it = all.find(key);
  if (it == all.end()) return std::nullopt;
  return std::move(it->second);
}

std::uint64_t CheckpointStore::appended() const {
  std::lock_guard lock(mu_);
  return appended_;
}

std::uint64_t CheckpointStore::segments_deleted() const {
  std::lock_guard lock(mu_);
  return segments_deleted_;
}

std::vector<std::string> CheckpointStore::segment_files() const {
  std::lock_guard lock(mu_);
  if (opts_.dir.empty()) return {};
  std::vector<std::string> out;
  for (const std::uint64_t index : segment_indices_locked()) {
    out.push_back(segment_path(index));
  }
  return out;
}

std::size_t CheckpointStore::disk_bytes() const {
  std::lock_guard lock(mu_);
  if (opts_.dir.empty()) return 0;
  std::size_t total = 0;
  std::error_code ec;
  for (const std::uint64_t index : segment_indices_locked()) {
    total += static_cast<std::size_t>(fs::file_size(segment_path(index), ec));
  }
  return total;
}

}  // namespace monocle::telemetry
