// Export plane: drains every shard's StatsRing, keeps the latest sample per
// shard, and renders the whole state as Prometheus text exposition
// (docs/DESIGN.md §13, CoMo's export.c role).
//
// Threading: poll() is the single logical consumer of every attached ring —
// one thread at a time (a mutex enforces it, and also covers render() and
// the external series setters, so a scrape can run concurrently with the
// export cadence).  The ExportThread below is the canonical driver: a
// dedicated thread polls on a fixed cadence and, when given a
// WallclockRuntime, posts a loop_task through WallclockRuntime::post — the
// one legal lane for sampling loop-thread-only state (e.g.
// ChannelBackend::Stats::queue_overflow_drops) into the exporter.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "channel/wallclock_runtime.hpp"
#include "netbase/time.hpp"
#include "telemetry/stats_ring.hpp"

namespace monocle::telemetry {

class Exporter {
 public:
  /// Registers `ring` as shard `shard`'s sample source.  The ring must
  /// outlive the exporter (or be detached by destroying the exporter
  /// first).  Cold path; thread-safe.
  void attach_ring(std::uint64_t shard, StatsRing* ring);

  /// Drains every attached ring, keeping the newest sample per shard and
  /// accumulating drain/drop accounting.  Returns samples drained.
  /// Steady-state allocation-free (scratch buffers are reused).
  std::size_t poll();

  /// Sets an externally sampled series (fleet counters, channel backend
  /// drops, multiplexer totals...).  `labels` is the rendered label body
  /// without braces (e.g. `switch="7"`), empty for none.  Thread-safe.
  void set_counter(const std::string& name, const std::string& labels,
                   std::uint64_t value);
  void set_gauge(const std::string& name, const std::string& labels,
                 double value);

  /// Renders the Prometheus text exposition (version 0.0.4): per-shard
  /// counter/gauge families from the latest samples, per-shard epochs and
  /// cache-hit ratios, one aggregated confirm-latency histogram, ring
  /// drain/drop accounting, and every external series.
  [[nodiscard]] std::string render() const;

  /// Latest sample per shard (copy; for tests/parity checks).
  [[nodiscard]] std::vector<StatsSample> latest_samples() const;

  [[nodiscard]] std::uint64_t total_drained() const;
  [[nodiscard]] std::uint64_t total_dropped() const;

 private:
  struct ShardState {
    StatsRing* ring = nullptr;
    StatsSample last;
    bool have_sample = false;
  };
  struct Series {
    bool gauge = false;
    double value = 0;
  };

  mutable std::mutex mu_;
  std::map<std::uint64_t, ShardState> shards_;
  /// External series keyed by (family name, label body).
  std::map<std::string, std::map<std::string, Series>> external_;
  std::vector<StatsSample> scratch_;  // drain buffer, reused across polls
};

/// Dedicated export thread: polls `exporter` every `interval`, and posts
/// `loop_task` (when set) to the runtime's loop thread each cycle.
class ExportThread {
 public:
  struct Options {
    netbase::SimTime interval = 50 * netbase::kMillisecond;
    /// Runs ON the runtime's loop thread once per cycle (via post()) —
    /// sample loop-thread-only state into the exporter here.  Requires
    /// `runtime`.
    std::function<void()> loop_task;
  };

  ExportThread(Exporter& exporter, channel::WallclockRuntime* runtime)
      : ExportThread(exporter, runtime, Options{}) {}
  ExportThread(Exporter& exporter, channel::WallclockRuntime* runtime,
               Options opts);
  ~ExportThread();

  ExportThread(const ExportThread&) = delete;
  ExportThread& operator=(const ExportThread&) = delete;

  void start();
  /// Stops and joins; one final poll runs before the thread exits.
  void stop();

  [[nodiscard]] std::uint64_t cycles() const {
    return cycles_.load(std::memory_order_relaxed);
  }

 private:
  void run();

  Exporter& exporter_;
  channel::WallclockRuntime* runtime_;
  Options opts_;
  std::thread thread_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<std::uint64_t> cycles_{0};
};

}  // namespace monocle::telemetry
