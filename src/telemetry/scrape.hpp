// Prometheus scrape endpoint over the channel/ transport layer.
//
// A ScrapeServer listens on a TcpTransport port (wallclock deployments:
// the same transport the OpenFlow control channels use, pumped by the same
// WallclockRuntime loop).  Per connection it buffers bytes until the HTTP
// request-header terminator, answers one `text/plain; version=0.0.4`
// response rendered by the supplied callback, and closes — the minimal
// HTTP/1.0 exchange a Prometheus scraper (or curl) needs.  Everything runs
// on the loop thread inside Transport::pump callbacks; the render callback
// typically forwards to Exporter::render(), whose mutex makes the scrape
// safe against the concurrent export thread.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "channel/tcp_transport.hpp"

namespace monocle::telemetry {

class ScrapeServer {
 public:
  using RenderFn = std::function<std::string()>;

  /// `transport` must outlive the server (connections are owned by it).
  ScrapeServer(channel::TcpTransport& transport, RenderFn render);

  /// Starts listening (0 picks an ephemeral port; see port()).
  bool listen(std::uint16_t port, const std::string& bind_addr = "127.0.0.1");

  /// The bound port after a successful listen().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t scrapes_served() const { return served_; }

 private:
  void on_accept(channel::Connection* conn);
  void on_bytes(channel::Connection* conn,
                std::span<const std::uint8_t> bytes);

  channel::TcpTransport& transport_;
  RenderFn render_;
  std::uint16_t port_ = 0;
  std::uint64_t served_ = 0;
  /// Per-connection request buffers; erased on response or close.
  std::unordered_map<channel::Connection*, std::string> pending_;
};

}  // namespace monocle::telemetry
