// Prometheus scrape endpoint over the channel/ transport layer.
//
// A ScrapeServer listens on a TcpTransport port (wallclock deployments:
// the same transport the OpenFlow control channels use, pumped by the same
// WallclockRuntime loop).  Per connection it buffers bytes until the HTTP
// request-header terminator, answers one `text/plain; version=0.0.4`
// response rendered by the supplied callback, and closes — the minimal
// HTTP/1.0 exchange a Prometheus scraper (or curl) needs.  Everything runs
// on the loop thread inside Transport::pump callbacks; the render callback
// typically forwards to Exporter::render(), whose mutex makes the scrape
// safe against the concurrent export thread.
//
// Hardening (docs/DESIGN.md §15): the scrape port shares the control
// plane's event loop, so a misbehaving scraper must not be able to pin
// buffers or connections there.  Two caps apply per connection:
//
//  * max_request_bytes — a request whose headers exceed the cap is
//    answered `431` and dropped (a scrape request is one short GET; more
//    is a runaway or hostile peer);
//  * idle_timeout — a connection that has not completed its request
//    headers within the window (slow-loris style: connect-and-stall, or
//    trickled partial headers) is answered `408` and dropped.  Timeouts
//    are swept by poll(), which hosts call from their loop cadence (the
//    ExportThread loop task is the natural place); sweeping is also
//    piggybacked on every accept so an idle server with no traffic other
//    than new connections still expires stragglers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "channel/tcp_transport.hpp"
#include "netbase/time.hpp"

namespace monocle::telemetry {

class ScrapeServer {
 public:
  using RenderFn = std::function<std::string()>;
  /// Monotonic clock override for tests; nullptr = steady_clock.
  using ClockFn = std::function<netbase::SimTime()>;

  struct Options {
    /// Drop (431) any connection whose buffered request exceeds this.
    std::size_t max_request_bytes = 16 * 1024;
    /// Drop (408) any connection idle this long before completing its
    /// request headers.  0 disables the sweep.
    netbase::SimTime idle_timeout = 5 * netbase::kSecond;
    ClockFn clock;
  };

  /// `transport` must outlive the server (connections are owned by it).
  ScrapeServer(channel::TcpTransport& transport, RenderFn render);
  ScrapeServer(channel::TcpTransport& transport, RenderFn render,
               Options opts);

  /// Starts listening (0 picks an ephemeral port; see port()).
  bool listen(std::uint16_t port, const std::string& bind_addr = "127.0.0.1");

  /// Sweeps connections that sat idle past idle_timeout: answers 408 and
  /// closes them.  Returns the number dropped.  Call from the loop thread.
  std::size_t poll();

  /// The bound port after a successful listen().
  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint64_t scrapes_served() const { return served_; }
  [[nodiscard]] std::uint64_t idle_drops() const { return idle_drops_; }
  [[nodiscard]] std::uint64_t oversize_drops() const {
    return oversize_drops_;
  }

 private:
  struct Pending {
    std::string buffer;
    netbase::SimTime last_activity = 0;
  };

  [[nodiscard]] netbase::SimTime now() const;
  void on_accept(channel::Connection* conn);
  void on_bytes(channel::Connection* conn,
                std::span<const std::uint8_t> bytes);
  void reject(channel::Connection* conn, const char* status_line);

  channel::TcpTransport& transport_;
  RenderFn render_;
  Options opts_;
  std::uint16_t port_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t idle_drops_ = 0;
  std::uint64_t oversize_drops_ = 0;
  /// Per-connection request buffers; erased on response or close.
  std::unordered_map<channel::Connection*, Pending> pending_;
};

}  // namespace monocle::telemetry
