// Durable checkpoint segments: the crash-safety storage plane
// (docs/DESIGN.md §15).
//
// The CheckpointStore persists opaque per-shard snapshot blobs through the
// same CRC-framed, torn-tail-tolerant segment discipline as the EventJournal
// (journal.hpp): every append is one framed record
// [u32 magic][u32 crc][u64 key][u64 seq][u32 len][u32 reserved][payload],
// segments rotate at segment_bytes and the oldest whole segments are deleted
// past max_total_bytes.  A crash mid-append leaves a torn tail that load
// simply stops at — the previous complete snapshot of every shard survives
// by construction, because records are only ever appended.
//
// The store is content-agnostic (payloads are bytes; the monocle layer owns
// the Checkpoint encoding in monocle/checkpoint.hpp) so the dependency
// arrow stays telemetry <- monocle, matching the journal.  Load resolves
// "latest valid snapshot per key": the record with the highest seq wins,
// and seq is assigned monotonically by the store itself, so readers never
// have to trust writer-provided ordering.
//
// Without a directory the store keeps the latest blob per key in memory —
// the simulation harnesses' mode, where "durability" means surviving the
// Fleet object, not the process.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace monocle::telemetry {

class CheckpointStore {
 public:
  struct Options {
    /// Segment directory; empty = in-memory store (latest blob per key).
    /// Created (one level) if missing.
    std::string dir;
    /// Rotate to a new segment once the active one reaches this size.
    std::size_t segment_bytes = 256 * 1024;
    /// Delete oldest whole segments once the directory exceeds this.  Keep
    /// it several full-fleet checkpoint sweeps wide: a deleted segment takes
    /// every snapshot it holds with it.
    std::size_t max_total_bytes = 8 * 1024 * 1024;
  };

  // Two overloads instead of `Options opts = {}` (same GCC 12 NSDMI
  // workaround as EventJournal).
  CheckpointStore() : CheckpointStore(Options{}) {}
  explicit CheckpointStore(Options opts);
  ~CheckpointStore();

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  /// Appends one snapshot blob for `key` (shard id, or a reserved key for
  /// fleet-level state).  Assigns and returns the record's sequence number.
  /// Thread-safe; on-disk appends are flushed per record.
  std::uint64_t append(std::uint64_t key, std::span<const std::uint8_t> payload);

  /// The latest valid snapshot per key, scanning every segment oldest-first
  /// (highest seq wins).  Thread-safe.
  [[nodiscard]] std::map<std::uint64_t, std::vector<std::uint8_t>> load_latest()
      const;

  /// The latest valid snapshot for one key; nullopt when none survives.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> load(
      std::uint64_t key) const;

  /// Records appended through THIS instance.
  [[nodiscard]] std::uint64_t appended() const;
  /// Valid records found on disk at construction (disk mode).
  [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
  /// Trailing bytes discarded by crash recovery at construction.
  [[nodiscard]] std::uint64_t truncated_bytes() const {
    return truncated_bytes_;
  }
  /// Whole segments deleted by the disk bound so far.
  [[nodiscard]] std::uint64_t segments_deleted() const;
  /// Current segment files, oldest first (empty in memory mode).
  [[nodiscard]] std::vector<std::string> segment_files() const;
  /// Total bytes across current segment files (0 in memory mode).
  [[nodiscard]] std::size_t disk_bytes() const;

  [[nodiscard]] const Options& options() const { return opts_; }

  /// On-disk frame header, defined in the .cpp (public so file-local frame
  /// helpers there can name it).
  struct FrameHeader;

 private:

  void open_next_segment_locked();
  void enforce_disk_bound_locked();
  void recover_locked();
  /// Scans `path`, forwarding each valid (key, seq, payload) to `fn`.
  /// Returns the byte offset just past the last valid record.
  std::size_t scan_segment(
      const std::string& path,
      const std::function<void(std::uint64_t key, std::uint64_t seq,
                               std::vector<std::uint8_t>&& payload)>& fn) const;
  [[nodiscard]] std::string segment_path(std::uint64_t index) const;
  [[nodiscard]] std::vector<std::uint64_t> segment_indices_locked() const;

  Options opts_;
  mutable std::mutex mu_;
  // Disk mode.
  std::FILE* active_ = nullptr;
  std::uint64_t active_index_ = 0;
  std::size_t active_bytes_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  std::uint64_t segments_deleted_ = 0;
  std::uint64_t next_seq_ = 1;
  // Memory mode: latest (seq, blob) per key.
  std::map<std::uint64_t, std::pair<std::uint64_t, std::vector<std::uint8_t>>>
      memory_;
};

}  // namespace monocle::telemetry
