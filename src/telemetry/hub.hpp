// TelemetryHub: one handle tying the telemetry plane together — per-shard
// StatsRings (capture), the EventJournal (storage), the Exporter (export)
// and the on-demand query API (docs/DESIGN.md §13).
//
// Hosts hand a hub to Fleet::Config::telemetry: the Fleet then attaches a
// ring to every shard (Monitor::publish_telemetry publishes a sample per
// round burst on the owning worker) and journals every confirmation,
// verdict transition, channel state change, applied TableDelta and
// published diagnosis.  An ExportThread (exporter.hpp) drains the rings;
// a ScrapeServer (scrape.hpp) serves exporter().render() over TCP.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/exporter.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/stats_ring.hpp"

namespace monocle::telemetry {

class TelemetryHub {
 public:
  struct Options {
    /// Per-shard ring capacity (samples; rounded up to a power of two).
    std::size_t ring_capacity = 64;
    /// Journal placement/bounds (Options::dir empty = in-memory journal).
    EventJournal::Options journal;
  };

  TelemetryHub() : TelemetryHub(Options{}) {}
  explicit TelemetryHub(Options opts) : opts_(opts), journal_(opts.journal) {}

  /// The stats ring for `shard`, created (and attached to the exporter) on
  /// first use.  Pointers are stable for the hub's lifetime.  Thread-safe.
  StatsRing* ring(std::uint64_t shard) {
    std::lock_guard lock(mu_);
    auto& slot = rings_[shard];
    if (slot == nullptr) {
      slot = std::make_unique<StatsRing>(opts_.ring_capacity);
      exporter_.attach_ring(shard, slot.get());
    }
    return slot.get();
  }

  [[nodiscard]] Exporter& exporter() { return exporter_; }
  [[nodiscard]] const Exporter& exporter() const { return exporter_; }
  [[nodiscard]] EventJournal& journal() { return journal_; }
  [[nodiscard]] const EventJournal& journal() const { return journal_; }

  /// Journals one event.  Thread-safe.
  void record(const EventRecord& rec) { journal_.append(rec); }

  /// "What happened to rule `cookie` between epochs E1 and E2?" — replays
  /// the journal (see EventJournal::query).
  [[nodiscard]] std::vector<EventRecord> query(std::uint64_t cookie,
                                               std::uint64_t epoch_lo,
                                               std::uint64_t epoch_hi) const {
    return journal_.query(cookie, epoch_lo, epoch_hi);
  }

  /// One export cycle: drains every ring and refreshes the hub's own
  /// journal/ring accounting series.  Returns samples drained.
  std::size_t poll() {
    const std::size_t drained = exporter_.poll();
    exporter_.set_counter("monocle_journal_records_total", "",
                          journal_.appended());
    exporter_.set_gauge("monocle_journal_disk_bytes", "",
                        static_cast<double>(journal_.disk_bytes()));
    return drained;
  }

 private:
  Options opts_;
  std::mutex mu_;
  std::map<std::uint64_t, std::unique_ptr<StatsRing>> rings_;
  Exporter exporter_;
  EventJournal journal_;
};

}  // namespace monocle::telemetry
