#include "telemetry/scrape.hpp"

#include <utility>

namespace monocle::telemetry {

ScrapeServer::ScrapeServer(channel::TcpTransport& transport, RenderFn render)
    : transport_(transport), render_(std::move(render)) {}

bool ScrapeServer::listen(std::uint16_t port, const std::string& bind_addr) {
  const bool ok = transport_.listen(
      port, [this](channel::Connection* conn) { on_accept(conn); }, bind_addr);
  if (ok) port_ = transport_.listen_port();
  return ok;
}

void ScrapeServer::on_accept(channel::Connection* conn) {
  pending_.emplace(conn, std::string());
  channel::Connection::Callbacks cbs;
  cbs.on_bytes = [this, conn](std::span<const std::uint8_t> bytes) {
    on_bytes(conn, bytes);
  };
  cbs.on_closed = [this, conn] { pending_.erase(conn); };
  conn->set_callbacks(std::move(cbs));
}

void ScrapeServer::on_bytes(channel::Connection* conn,
                            std::span<const std::uint8_t> bytes) {
  const auto it = pending_.find(conn);
  if (it == pending_.end()) return;  // already answered
  std::string& buffer = it->second;
  buffer.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  if (buffer.find("\r\n\r\n") == std::string::npos) {
    if (buffer.size() > 64 * 1024) {  // runaway header: drop the peer
      pending_.erase(it);
      conn->close();
    }
    return;
  }
  const std::string body = render_ ? render_() : std::string();
  std::string response;
  response.reserve(body.size() + 160);
  response += "HTTP/1.0 200 OK\r\n";
  response += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  conn->send(std::span(reinterpret_cast<const std::uint8_t*>(response.data()),
                       response.size()));
  ++served_;
  pending_.erase(it);
  conn->close();
}

}  // namespace monocle::telemetry
