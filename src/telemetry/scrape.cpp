#include "telemetry/scrape.hpp"

#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

namespace monocle::telemetry {

ScrapeServer::ScrapeServer(channel::TcpTransport& transport, RenderFn render)
    : ScrapeServer(transport, std::move(render), Options{}) {}

ScrapeServer::ScrapeServer(channel::TcpTransport& transport, RenderFn render,
                           Options opts)
    : transport_(transport), render_(std::move(render)), opts_(std::move(opts)) {}

netbase::SimTime ScrapeServer::now() const {
  if (opts_.clock) return opts_.clock();
  return static_cast<netbase::SimTime>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool ScrapeServer::listen(std::uint16_t port, const std::string& bind_addr) {
  const bool ok = transport_.listen(
      port, [this](channel::Connection* conn) { on_accept(conn); }, bind_addr);
  if (ok) port_ = transport_.listen_port();
  return ok;
}

void ScrapeServer::reject(channel::Connection* conn,
                          const char* status_line) {
  conn->send(std::span(reinterpret_cast<const std::uint8_t*>(status_line),
                       std::strlen(status_line)));
  pending_.erase(conn);
  conn->close();
}

std::size_t ScrapeServer::poll() {
  if (opts_.idle_timeout == 0 || pending_.empty()) return 0;
  const netbase::SimTime t = now();
  // Collect first: reject() mutates pending_ and Connection::close can
  // re-enter on_closed synchronously.
  std::vector<channel::Connection*> stale;
  for (const auto& [conn, p] : pending_) {
    if (t - p.last_activity >= opts_.idle_timeout) stale.push_back(conn);
  }
  for (channel::Connection* conn : stale) {
    ++idle_drops_;
    reject(conn, "HTTP/1.0 408 Request Timeout\r\nConnection: close\r\n\r\n");
  }
  return stale.size();
}

void ScrapeServer::on_accept(channel::Connection* conn) {
  poll();  // new traffic is a sweep point too: stragglers expire even when
           // nothing else ever calls poll()
  pending_.emplace(conn, Pending{std::string(), now()});
  channel::Connection::Callbacks cbs;
  cbs.on_bytes = [this, conn](std::span<const std::uint8_t> bytes) {
    on_bytes(conn, bytes);
  };
  cbs.on_closed = [this, conn] { pending_.erase(conn); };
  conn->set_callbacks(std::move(cbs));
}

void ScrapeServer::on_bytes(channel::Connection* conn,
                            std::span<const std::uint8_t> bytes) {
  const auto it = pending_.find(conn);
  if (it == pending_.end()) return;  // already answered
  Pending& p = it->second;
  p.last_activity = now();
  p.buffer.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  if (p.buffer.find("\r\n\r\n") == std::string::npos) {
    if (p.buffer.size() > opts_.max_request_bytes) {
      ++oversize_drops_;
      reject(conn,
             "HTTP/1.0 431 Request Header Fields Too Large\r\n"
             "Connection: close\r\n\r\n");
    }
    return;
  }
  const std::string body = render_ ? render_() : std::string();
  std::string response;
  response.reserve(body.size() + 160);
  response += "HTTP/1.0 200 OK\r\n";
  response += "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  conn->send(std::span(reinterpret_cast<const std::uint8_t*>(response.data()),
                       response.size()));
  ++served_;
  pending_.erase(it);
  conn->close();
}

}  // namespace monocle::telemetry
