#include "telemetry/exporter.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace monocle::telemetry {

namespace {

void append_line(std::string& out, const char* family, const char* labels,
                 double value) {
  char buf[256];
  if (labels != nullptr && labels[0] != '\0') {
    std::snprintf(buf, sizeof(buf), "%s{%s} %.17g\n", family, labels, value);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %.17g\n", family, value);
  }
  out += buf;
}

void append_line_u64(std::string& out, const char* family, const char* labels,
                     std::uint64_t value) {
  char buf[256];
  if (labels != nullptr && labels[0] != '\0') {
    std::snprintf(buf, sizeof(buf), "%s{%s} %" PRIu64 "\n", family, labels,
                  value);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64 "\n", family, value);
  }
  out += buf;
}

void append_type(std::string& out, const char* family, bool gauge) {
  out += "# TYPE ";
  out += family;
  out += gauge ? " gauge\n" : " counter\n";
}

}  // namespace

void Exporter::attach_ring(std::uint64_t shard, StatsRing* ring) {
  std::lock_guard lock(mu_);
  shards_[shard].ring = ring;
}

std::size_t Exporter::poll() {
  std::lock_guard lock(mu_);
  std::size_t drained = 0;
  for (auto& [shard, state] : shards_) {
    if (state.ring == nullptr) continue;
    scratch_.clear();
    state.ring->drain(scratch_);
    if (!scratch_.empty()) {
      state.last = scratch_.back();  // newest wins; history went to drains
      state.have_sample = true;
      drained += scratch_.size();
    }
  }
  return drained;
}

void Exporter::set_counter(const std::string& name, const std::string& labels,
                           std::uint64_t value) {
  std::lock_guard lock(mu_);
  Series& s = external_[name][labels];
  s.gauge = false;
  s.value = static_cast<double>(value);
}

void Exporter::set_gauge(const std::string& name, const std::string& labels,
                         double value) {
  std::lock_guard lock(mu_);
  Series& s = external_[name][labels];
  s.gauge = true;
  s.value = value;
}

std::string Exporter::render() const {
  std::lock_guard lock(mu_);
  std::string out;
  out.reserve(4096 + shards_.size() * 2048);

  // Per-shard counter/gauge families from the latest samples.  The
  // histogram block is skipped here and rendered as one aggregated
  // Prometheus histogram below.
  for (std::size_t c = 0; c < kCounterCount; ++c) {
    if (c >= kConfirmLatencyCount && c <= kConfirmLatencyBucketLast) continue;
    const CounterMeta& meta = kCounterMeta[c];
    bool typed = false;
    for (const auto& [shard, state] : shards_) {
      if (!state.have_sample) continue;
      char family[128];
      std::snprintf(family, sizeof(family), "monocle_%s%s", meta.name,
                    meta.gauge ? "" : "_total");
      if (!typed) {
        append_type(out, family, meta.gauge);
        typed = true;
      }
      char labels[64];
      std::snprintf(labels, sizeof(labels), "switch=\"%" PRIu64 "\"", shard);
      append_line_u64(out, family, labels, state.last.counters[c]);
    }
  }

  // Per-shard epoch + derived cache-hit ratio gauges.
  bool typed = false;
  for (const auto& [shard, state] : shards_) {
    if (!state.have_sample) continue;
    if (!typed) {
      append_type(out, "monocle_shard_epoch", true);
      typed = true;
    }
    char labels[64];
    std::snprintf(labels, sizeof(labels), "switch=\"%" PRIu64 "\"", shard);
    append_line_u64(out, "monocle_shard_epoch", labels, state.last.epoch);
  }
  typed = false;
  for (const auto& [shard, state] : shards_) {
    if (!state.have_sample) continue;
    const double hits =
        static_cast<double>(state.last.counters[kProbeCacheHits]);
    const double misses =
        static_cast<double>(state.last.counters[kProbeCacheMisses]);
    const double total = hits + misses;
    if (!typed) {
      append_type(out, "monocle_probe_cache_hit_ratio", true);
      typed = true;
    }
    char labels[64];
    std::snprintf(labels, sizeof(labels), "switch=\"%" PRIu64 "\"", shard);
    append_line(out, "monocle_probe_cache_hit_ratio", labels,
                total > 0 ? hits / total : 0.0);
  }

  // Aggregated confirm-latency histogram (cumulative buckets, seconds).
  {
    std::uint64_t buckets[kConfirmLatencyBuckets] = {};
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    for (const auto& [shard, state] : shards_) {
      if (!state.have_sample) continue;
      for (std::size_t b = 0; b < kConfirmLatencyBuckets; ++b) {
        buckets[b] += state.last.counters[kConfirmLatencyBucket0 + b];
      }
      count += state.last.counters[kConfirmLatencyCount];
      sum_ns += state.last.counters[kConfirmLatencySumNs];
    }
    out += "# TYPE monocle_confirm_latency_seconds histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < kConfirmLatencyBuckets; ++b) {
      cumulative += buckets[b];
      char labels[64];
      if (b < kConfirmLatencyBoundsNs.size()) {
        std::snprintf(labels, sizeof(labels), "le=\"%.17g\"",
                      static_cast<double>(kConfirmLatencyBoundsNs[b]) / 1e9);
      } else {
        std::snprintf(labels, sizeof(labels), "le=\"+Inf\"");
      }
      append_line_u64(out, "monocle_confirm_latency_seconds_bucket", labels,
                      cumulative);
    }
    append_line(out, "monocle_confirm_latency_seconds_sum", "",
                static_cast<double>(sum_ns) / 1e9);
    append_line_u64(out, "monocle_confirm_latency_seconds_count", "", count);
  }

  // Ring accounting: what the export plane itself drained and lost.
  typed = false;
  for (const auto& [shard, state] : shards_) {
    if (state.ring == nullptr) continue;
    if (!typed) {
      append_type(out, "monocle_telemetry_samples_drained_total", false);
      typed = true;
    }
    char labels[64];
    std::snprintf(labels, sizeof(labels), "switch=\"%" PRIu64 "\"", shard);
    append_line_u64(out, "monocle_telemetry_samples_drained_total", labels,
                    state.ring->drained());
  }
  typed = false;
  for (const auto& [shard, state] : shards_) {
    if (state.ring == nullptr) continue;
    if (!typed) {
      append_type(out, "monocle_telemetry_samples_dropped_total", false);
      typed = true;
    }
    char labels[64];
    std::snprintf(labels, sizeof(labels), "switch=\"%" PRIu64 "\"", shard);
    append_line_u64(out, "monocle_telemetry_samples_dropped_total", labels,
                    state.ring->dropped());
  }

  // External series (fleet counters, channel drops, ...).
  for (const auto& [name, by_labels] : external_) {
    bool family_typed = false;
    for (const auto& [labels, series] : by_labels) {
      if (!family_typed) {
        append_type(out, name.c_str(), series.gauge);
        family_typed = true;
      }
      append_line(out, name.c_str(), labels.c_str(), series.value);
    }
  }
  return out;
}

std::vector<StatsSample> Exporter::latest_samples() const {
  std::lock_guard lock(mu_);
  std::vector<StatsSample> out;
  for (const auto& [shard, state] : shards_) {
    if (state.have_sample) out.push_back(state.last);
  }
  return out;
}

std::uint64_t Exporter::total_drained() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [shard, state] : shards_) {
    if (state.ring != nullptr) total += state.ring->drained();
  }
  return total;
}

std::uint64_t Exporter::total_dropped() const {
  std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [shard, state] : shards_) {
    if (state.ring != nullptr) total += state.ring->dropped();
  }
  return total;
}

// ---------------------------------------------------------------------------
// ExportThread
// ---------------------------------------------------------------------------

ExportThread::ExportThread(Exporter& exporter,
                           channel::WallclockRuntime* runtime, Options opts)
    : exporter_(exporter), runtime_(runtime), opts_(std::move(opts)) {}

ExportThread::~ExportThread() { stop(); }

void ExportThread::start() {
  if (thread_.joinable()) return;
  {
    std::lock_guard lock(mu_);
    stop_ = false;
  }
  thread_ = std::thread([this] { run(); });
}

void ExportThread::stop() {
  if (!thread_.joinable()) return;
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void ExportThread::run() {
  std::unique_lock lock(mu_);
  while (true) {
    lock.unlock();
    exporter_.poll();
    if (runtime_ != nullptr && opts_.loop_task) {
      runtime_->post(opts_.loop_task);
    }
    cycles_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
    if (stop_) return;
    cv_.wait_for(lock, std::chrono::nanoseconds(opts_.interval),
                 [this] { return stop_; });
    if (stop_) {
      // One final drain so nothing published before stop() is lost.
      lock.unlock();
      exporter_.poll();
      lock.lock();
      return;
    }
  }
}

}  // namespace monocle::telemetry
