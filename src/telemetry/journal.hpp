// Epoch-stamped event journal: the storage plane of the telemetry stack
// (docs/DESIGN.md §13, CoMo's storage.c role).
//
// Fixed-size EventRecords — diagnoses, update confirmations/failures, rule
// verdict transitions, channel state changes, applied TableDeltas — are
// appended by whichever thread observed the event (a mutex serializes; the
// rates are orders of magnitude below the probe path) and spooled either to
// bounded on-disk segment storage with rotation, or to a bounded in-memory
// buffer when no directory is configured (simulation harnesses).
//
// On-disk format: each segment is a flat array of 56-byte records
// [u32 magic][u32 crc32-of-payload][48-byte EventRecord].  Segments rotate
// at segment_bytes and the oldest are deleted once the directory exceeds
// max_total_bytes — total disk use is bounded by construction.  Reopening a
// directory recovers every valid record; a half-written or corrupted tail
// (crash mid-append) is truncated back to the last valid record and
// appending resumes there (tests/telemetry_test.cpp crash-replay).
//
// The on-demand query side — query(cookie, epoch_lo, epoch_hi) — replays
// the journal and answers "what happened to rule X between E1 and E2":
// every surviving record for that cookie whose epoch stamp falls in the
// window, in append order.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace monocle::telemetry {

/// What happened.  Values are stable on-disk identifiers.
enum class EventKind : std::uint32_t {
  kConfirm = 1,       ///< dynamic update confirmed (arg = latency ns)
  kUpdateFailed = 2,  ///< update gave up unconfirmed
  kVerdict = 3,       ///< rule verdict transition (detail = RuleState)
  kChannelState = 4,  ///< control channel transition (detail = up ? 1 : 0)
  kDelta = 5,         ///< TableDelta applied (detail = TableDelta::Kind)
  kDiagnosis = 6,     ///< published diagnosis element (detail = element kind)
};

/// kDiagnosis detail values.
inline constexpr std::uint32_t kDiagLink = 1;
inline constexpr std::uint32_t kDiagSwitch = 2;
inline constexpr std::uint32_t kDiagIsolatedRule = 3;

/// One journal entry.  Fixed-size, trivially copyable (the on-disk payload).
struct EventRecord {
  std::uint64_t when_ns = 0;  ///< Runtime::now() when the event fired
  std::uint64_t shard = 0;    ///< switch id the event concerns
  std::uint64_t cookie = 0;   ///< rule cookie (0 for link/switch events)
  std::uint64_t epoch = 0;    ///< shard table epoch when the event fired
  std::uint64_t arg = 0;      ///< kind-specific (latency ns, peer packing...)
  EventKind kind = EventKind::kConfirm;
  std::uint32_t detail = 0;   ///< kind-specific discriminator
};
static_assert(sizeof(EventRecord) == 48);

/// CRC32 (IEEE 802.3, reflected) over a byte buffer — the per-record
/// integrity check that crash recovery validates against.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size);

/// Streaming form, for records whose covered bytes are not contiguous
/// (checkpoint_store.hpp frames header fields + payload without
/// concatenating them): seed, fold chunks in order, finish.  Equal to
/// crc32() over the concatenation.
[[nodiscard]] std::uint32_t crc32_seed();
[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                         std::size_t size);
[[nodiscard]] std::uint32_t crc32_finish(std::uint32_t state);

class EventJournal {
 public:
  struct Options {
    /// Segment directory; empty = bounded in-memory journal (no disk).
    /// Created (one level) if missing.
    std::string dir;
    /// Rotate to a new segment once the active one reaches this size.
    std::size_t segment_bytes = 64 * 1024;
    /// Delete oldest whole segments once the directory exceeds this.
    std::size_t max_total_bytes = 4 * 1024 * 1024;
    /// Record cap of the in-memory mode (oldest evicted beyond it).
    std::size_t memory_capacity = 1 << 16;
  };

  // Two overloads instead of `Options opts = {}`: GCC 12 rejects a braced
  // default argument of a nested class whose NSDMIs are still pending.
  EventJournal() : EventJournal(Options{}) {}
  explicit EventJournal(Options opts);
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Appends one record.  Thread-safe; on-disk appends are flushed per
  /// record (journal rates are low; durability is the point).
  void append(const EventRecord& rec);

  /// Replays every surviving record in append order.  Thread-safe.
  void replay(const std::function<void(const EventRecord&)>& fn) const;

  /// Records for `cookie` with epoch in [epoch_lo, epoch_hi], append order.
  [[nodiscard]] std::vector<EventRecord> query(std::uint64_t cookie,
                                               std::uint64_t epoch_lo,
                                               std::uint64_t epoch_hi) const;

  /// Records appended through THIS instance (excludes recovered ones).
  [[nodiscard]] std::uint64_t appended() const;
  /// Valid records recovered from disk at construction.
  [[nodiscard]] std::uint64_t recovered() const { return recovered_; }
  /// Trailing bytes discarded by crash recovery at construction.
  [[nodiscard]] std::uint64_t truncated_bytes() const {
    return truncated_bytes_;
  }
  /// Whole segments deleted by the disk bound so far.
  [[nodiscard]] std::uint64_t segments_deleted() const;

  /// Current segment files, oldest first (empty in memory mode).
  [[nodiscard]] std::vector<std::string> segment_files() const;
  /// Total bytes across current segment files (0 in memory mode).
  [[nodiscard]] std::size_t disk_bytes() const;

  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  struct DiskRecord;  // magic + crc + EventRecord

  void open_next_segment_locked();
  void enforce_disk_bound_locked();
  void recover_locked();
  /// Scans `path`; forwards valid records to `fn`.  Returns the byte offset
  /// just past the last valid record.
  std::size_t scan_segment(const std::string& path,
                           const std::function<void(const EventRecord&)>& fn)
      const;
  [[nodiscard]] std::string segment_path(std::uint64_t index) const;
  [[nodiscard]] std::vector<std::uint64_t> segment_indices_locked() const;

  Options opts_;
  mutable std::mutex mu_;
  // Disk mode.
  std::FILE* active_ = nullptr;
  std::uint64_t active_index_ = 0;
  std::size_t active_bytes_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t recovered_ = 0;
  std::uint64_t truncated_bytes_ = 0;
  std::uint64_t segments_deleted_ = 0;
  // Memory mode.
  std::deque<EventRecord> memory_;
};

}  // namespace monocle::telemetry
