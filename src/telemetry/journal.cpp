#include "telemetry/journal.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>

namespace monocle::telemetry {

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kRecordMagic = 0x4C544A4Du;  // "MJTL"
constexpr char kSegmentPrefix[] = "journal-";
constexpr char kSegmentSuffix[] = ".seg";

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_seed() { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, const void* data,
                           std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

std::uint32_t crc32_finish(std::uint32_t state) { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32_finish(crc32_update(crc32_seed(), data, size));
}

struct EventJournal::DiskRecord {
  std::uint32_t magic = kRecordMagic;
  std::uint32_t crc = 0;
  EventRecord rec;
};

EventJournal::EventJournal(Options opts) : opts_(std::move(opts)) {
  if (opts_.dir.empty()) return;
  std::error_code ec;
  fs::create_directories(opts_.dir, ec);
  std::lock_guard lock(mu_);
  recover_locked();
}

EventJournal::~EventJournal() {
  std::lock_guard lock(mu_);
  if (active_ != nullptr) {
    std::fclose(active_);
    active_ = nullptr;
  }
}

std::string EventJournal::segment_path(std::uint64_t index) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(index), kSegmentSuffix);
  return (fs::path(opts_.dir) / name).string();
}

std::vector<std::uint64_t> EventJournal::segment_indices_locked() const {
  std::vector<std::uint64_t> indices;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(opts_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(kSegmentPrefix, 0) != 0) continue;
    if (name.size() <= std::strlen(kSegmentPrefix) + std::strlen(kSegmentSuffix))
      continue;
    const std::string digits =
        name.substr(std::strlen(kSegmentPrefix),
                    name.size() - std::strlen(kSegmentPrefix) -
                        std::strlen(kSegmentSuffix));
    indices.push_back(std::strtoull(digits.c_str(), nullptr, 10));
  }
  std::sort(indices.begin(), indices.end());
  return indices;
}

std::size_t EventJournal::scan_segment(
    const std::string& path,
    const std::function<void(const EventRecord&)>& fn) const {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::size_t valid_end = 0;
  DiskRecord disk;
  while (std::fread(&disk, sizeof(disk), 1, f) == 1) {
    if (disk.magic != kRecordMagic) break;
    if (crc32(&disk.rec, sizeof(disk.rec)) != disk.crc) break;
    valid_end += sizeof(disk);
    if (fn) fn(disk.rec);
  }
  std::fclose(f);
  return valid_end;
}

void EventJournal::recover_locked() {
  const std::vector<std::uint64_t> indices = segment_indices_locked();
  std::uint64_t recovered = 0;
  const auto count = [&recovered](const EventRecord&) { ++recovered; };
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::string path = segment_path(indices[i]);
    const std::size_t valid_end = scan_segment(path, count);
    std::error_code ec;
    const std::size_t actual = static_cast<std::size_t>(fs::file_size(path, ec));
    if (i + 1 == indices.size()) {
      // Crash recovery: drop the torn/corrupt tail of the last segment and
      // keep appending where the valid prefix ends.
      if (actual > valid_end) {
        truncated_bytes_ += actual - valid_end;
        fs::resize_file(path, valid_end, ec);
      }
      active_index_ = indices[i];
      active_ = std::fopen(path.c_str(), "ab");
      active_bytes_ = valid_end;
    } else if (actual > valid_end) {
      // A non-final segment with a torn tail (crash during rotation):
      // truncate it too; its records stay readable.
      truncated_bytes_ += actual - valid_end;
      fs::resize_file(path, valid_end, ec);
    }
  }
  recovered_ = recovered;
  if (active_ == nullptr) {
    active_index_ = indices.empty() ? 1 : indices.back() + 1;
    open_next_segment_locked();
  }
}

void EventJournal::open_next_segment_locked() {
  if (active_ != nullptr) {
    std::fclose(active_);
    ++active_index_;
  }
  active_ = std::fopen(segment_path(active_index_).c_str(), "ab");
  active_bytes_ = 0;
  enforce_disk_bound_locked();
}

void EventJournal::enforce_disk_bound_locked() {
  std::vector<std::uint64_t> indices = segment_indices_locked();
  std::size_t total = 0;
  std::error_code ec;
  for (const std::uint64_t index : indices) {
    total += static_cast<std::size_t>(fs::file_size(segment_path(index), ec));
  }
  // Delete oldest segments (never the active one) until under the bound.
  for (const std::uint64_t index : indices) {
    if (total <= opts_.max_total_bytes) break;
    if (index == active_index_) break;
    const std::string path = segment_path(index);
    const std::size_t size = static_cast<std::size_t>(fs::file_size(path, ec));
    fs::remove(path, ec);
    total -= size;
    ++segments_deleted_;
  }
}

void EventJournal::append(const EventRecord& rec) {
  static_assert(sizeof(DiskRecord) == 56);
  std::lock_guard lock(mu_);
  ++appended_;
  if (opts_.dir.empty()) {
    memory_.push_back(rec);
    while (memory_.size() > opts_.memory_capacity) memory_.pop_front();
    return;
  }
  if (active_ == nullptr) return;  // directory unusable: drop silently
  if (active_bytes_ >= opts_.segment_bytes) open_next_segment_locked();
  DiskRecord disk;
  disk.rec = rec;
  disk.crc = crc32(&disk.rec, sizeof(disk.rec));
  if (std::fwrite(&disk, sizeof(disk), 1, active_) == 1) {
    active_bytes_ += sizeof(disk);
    std::fflush(active_);
  }
}

void EventJournal::replay(
    const std::function<void(const EventRecord&)>& fn) const {
  std::lock_guard lock(mu_);
  if (opts_.dir.empty()) {
    for (const EventRecord& rec : memory_) fn(rec);
    return;
  }
  if (active_ != nullptr) std::fflush(active_);
  for (const std::uint64_t index : segment_indices_locked()) {
    scan_segment(segment_path(index), fn);
  }
}

std::vector<EventRecord> EventJournal::query(std::uint64_t cookie,
                                             std::uint64_t epoch_lo,
                                             std::uint64_t epoch_hi) const {
  std::vector<EventRecord> out;
  replay([&](const EventRecord& rec) {
    if (rec.cookie != cookie) return;
    if (rec.epoch < epoch_lo || rec.epoch > epoch_hi) return;
    out.push_back(rec);
  });
  return out;
}

std::uint64_t EventJournal::appended() const {
  std::lock_guard lock(mu_);
  return appended_;
}

std::uint64_t EventJournal::segments_deleted() const {
  std::lock_guard lock(mu_);
  return segments_deleted_;
}

std::vector<std::string> EventJournal::segment_files() const {
  std::lock_guard lock(mu_);
  if (opts_.dir.empty()) return {};
  std::vector<std::string> out;
  for (const std::uint64_t index : segment_indices_locked()) {
    out.push_back(segment_path(index));
  }
  return out;
}

std::size_t EventJournal::disk_bytes() const {
  std::lock_guard lock(mu_);
  if (opts_.dir.empty()) return 0;
  std::size_t total = 0;
  std::error_code ec;
  for (const std::uint64_t index : segment_indices_locked()) {
    total += static_cast<std::size_t>(fs::file_size(segment_path(index), ec));
  }
  return total;
}

}  // namespace monocle::telemetry
