#include "monocle/catching.hpp"

#include <cassert>

namespace monocle {

using netbase::Field;
using openflow::Action;
using openflow::FlowMod;
using openflow::FlowModCommand;
using openflow::Match;

CatchPlan CatchPlan::build(const topo::Topology& topo,
                           const std::vector<SwitchId>& switch_ids,
                           CatchStrategy strategy, Field field1, Field field2) {
  assert(switch_ids.size() == topo.node_count());
  CatchPlan plan;
  plan.strategy_ = strategy;
  plan.field1_ = field1;
  plan.field2_ = field2;
  plan.switch_ids_ = switch_ids;

  const topo::Topology squared =
      strategy == CatchStrategy::kTwoFields ? topo.square() : topo::Topology{};
  const topo::Coloring coloring =
      strategy == CatchStrategy::kTwoFields
          ? topo::exact_coloring(squared, /*node_budget=*/200'000)
          : topo::exact_coloring(topo, /*node_budget=*/200'000);
  plan.color_count_ = coloring.color_count;
  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    plan.color_[switch_ids[n]] = coloring.color[n];
  }
  plan.valid_ = topo::is_proper_coloring(
      strategy == CatchStrategy::kTwoFields ? squared : topo, coloring);
  return plan;
}

std::uint64_t CatchPlan::tag_of(SwitchId sw) const {
  const auto it = color_.find(sw);
  assert(it != color_.end());
  return kTagBase + static_cast<std::uint64_t>(it->second);
}

std::vector<FlowMod> CatchPlan::rules_for(SwitchId sw) const {
  std::vector<FlowMod> out;
  const std::uint64_t own = tag_of(sw);

  if (strategy_ == CatchStrategy::kSingleField) {
    // One catching rule per reserved value other than our own (paper §6,
    // first strategy): match(H = S_j) -> controller.
    for (int c = 0; c < color_count_; ++c) {
      const std::uint64_t tag = kTagBase + static_cast<std::uint64_t>(c);
      if (tag == own) continue;
      FlowMod fm;
      fm.command = FlowModCommand::kAdd;
      fm.priority = kCatchPriority;
      fm.match.set_exact(field1_, tag);
      fm.actions = {Action::output(openflow::kPortController)};
      fm.cookie = 0xCA7C000000000000ull | static_cast<std::uint64_t>(c);
      out.push_back(std::move(fm));
    }
  } else {
    // Strategy 2: catch rule match(H2 = own) -> controller ...
    FlowMod catch_fm;
    catch_fm.command = FlowModCommand::kAdd;
    catch_fm.priority = kCatchPriority;
    catch_fm.match.set_exact(field2_, own & netbase::field_mask(field2_));
    catch_fm.actions = {Action::output(openflow::kPortController)};
    catch_fm.cookie = 0xCA7C100000000000ull;
    out.push_back(std::move(catch_fm));
    // ... plus filter rules match(H1 = S_j) -> drop for all other values.
    for (int c = 0; c < color_count_; ++c) {
      const std::uint64_t tag = kTagBase + static_cast<std::uint64_t>(c);
      if (tag == own) continue;
      FlowMod fm;
      fm.command = FlowModCommand::kAdd;
      fm.priority = kFilterPriority;
      fm.match.set_exact(field1_, tag);
      fm.actions = {};  // drop
      fm.cookie = 0xF117000000000000ull | static_cast<std::uint64_t>(c);
      out.push_back(std::move(fm));
    }
  }

  // Drop-postponing support (§4.3): a rule that drops everything carrying
  // the reserved "to be dropped" tag, below catch/filter priority.
  FlowMod drop_tag;
  drop_tag.command = FlowModCommand::kAdd;
  drop_tag.priority = kDropTagPriority;
  drop_tag.match.set_exact(field1_, kDropTag);
  drop_tag.actions = {};  // drop
  drop_tag.cookie = 0xD209000000000000ull;
  out.push_back(std::move(drop_tag));
  return out;
}

Match CatchPlan::collect_match_for(SwitchId probed, SwitchId downstream) const {
  Match m;
  m.set_exact(field1_, tag_of(probed));
  if (strategy_ == CatchStrategy::kTwoFields) {
    m.set_exact(field2_, tag_of(downstream) & netbase::field_mask(field2_));
  }
  return m;
}

}  // namespace monocle
