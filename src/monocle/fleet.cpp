#include "monocle/fleet.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "monocle/checkpoint.hpp"
#include "telemetry/checkpoint_store.hpp"

namespace monocle {

namespace {

/// Relaxed lock-free increment of a Stats counter (see Fleet::Stats).
void bump(std::uint64_t& counter, std::uint64_t by = 1) {
  std::atomic_ref<std::uint64_t>(counter).fetch_add(by,
                                                    std::memory_order_relaxed);
}

}  // namespace

Fleet::Fleet(Config config, Runtime* runtime, const NetworkView* view,
             const CatchPlan* plan)
    : config_(std::move(config)), runtime_(runtime), view_(view), plan_(plan),
      evidence_(config_.evidence) {
  // probes_per_switch stays the single budget knob: it seeds the elastic
  // scheduler's fallback, weight base and ceiling base.
  BudgetOptions opts = config_.budget;
  opts.probes_per_switch = config_.probes_per_switch;
  budgeter_.set_options(opts);
}

Monitor* Fleet::add_shard(SwitchId sw, Monitor::Hooks hooks) {
  Monitor::Config cfg = config_.monitor;
  cfg.switch_id = sw;
  cfg.steady_probe_rate = 0;  // the Fleet paces probing via rounds
  cfg.batch_threads = 1;      // the warm-up pool parallelizes ACROSS shards
  // Pin the shard to a worker (registration order % N) and give its Monitor
  // that worker's Runtime, so every timer the shard ever arms fires on the
  // thread that owns its state.  Single-threaded mode: worker 0, the
  // orchestration Runtime — unchanged behaviour.
  const std::size_t worker = next_worker_;
  next_worker_ = (next_worker_ + 1) % worker_count();
  shard_worker_[sw] = worker;
  Runtime* shard_runtime =
      multi_worker()
          ? config_.worker_runtimes[worker % config_.worker_runtimes.size()]
          : runtime_;
  // Chain the alarm hook: the Fleet sees every alarm first (debounced
  // localization), then the caller's observer runs.  Under the multi-worker
  // engine this hook fires on the shard's worker, which must not touch the
  // orchestration Runtime's timers — the localization arm goes through the
  // mailbox instead (drained right after the engine barrier).
  auto user_alarm = std::move(hooks.on_alarm);
  hooks.on_alarm = [this, user_alarm = std::move(user_alarm)](
                       const RuleAlarm& alarm) {
    bump(stats_.alarms);
    if (multi_worker()) {
      post_mailbox({MailboxItem::Kind::kAlarm, 0, {}});
    } else {
      note_alarm();
    }
    if (user_alarm) user_alarm(alarm);
  };
  // Chain the delta hook the same way: the Fleet observes every shard's
  // delta stream (network-wide churn accounting + the churn-exclusion
  // window localization reads) before the caller's observer runs.  Same
  // worker-thread caveat: recent_deltas_ is orchestration state, so the
  // multi-worker path routes the copy through the mailbox.
  auto user_delta = std::move(hooks.on_delta);
  hooks.on_delta = [this, sw, user_delta = std::move(user_delta)](
                       const openflow::TableDelta& delta) {
    bump(stats_.deltas_observed);
    if (config_.churn_exclusion > 0) {
      if (multi_worker()) {
        post_mailbox({MailboxItem::Kind::kDelta, sw, delta});
      } else {
        note_delta(sw, delta);
      }
    }
    if (user_delta) user_delta(delta);
  };
  auto monitor = std::make_unique<Monitor>(cfg, shard_runtime, view_, plan_,
                                           std::move(hooks));
  Monitor* raw = monitor.get();
  shards_[sw] = std::move(monitor);
  budgeter_.register_shard(sw);
  if (config_.telemetry != nullptr) attach_telemetry(sw, raw);
  return raw;
}

void Fleet::attach_telemetry(SwitchId sw, Monitor* mon) {
  telemetry::TelemetryHub* hub = config_.telemetry;
  // Capture plane: the shard publishes one StatsSample per round burst into
  // its ring (on the owning worker); the export thread drains it.
  mon->set_stats_ring(hub->ring(sw));
  // Storage plane: wrap the shard's hooks — which already carry the Fleet's
  // own chain from add_shard — with journal recorders.  Safe here because
  // the Monitor was just constructed and has not probed yet, and safe at
  // runtime because each hook only ever fires on the shard's owning worker
  // (journal appends are mutexed anyway).  The shard Runtime is captured
  // for event timestamps — Runtime::now() is readable off-thread.
  Runtime* rt = multi_worker()
                    ? config_.worker_runtimes[shard_worker(sw) %
                                              config_.worker_runtimes.size()]
                    : runtime_;
  Monitor::Hooks& hooks = mon->hooks_for_test();

  auto prev_confirm = std::move(hooks.on_update_confirmed);
  hooks.on_update_confirmed = [hub, sw, mon, rt,
                               prev = std::move(prev_confirm)](
                                  std::uint64_t cookie,
                                  netbase::SimTime latency) {
    hub->record({rt->now(), sw, cookie, mon->epoch(), latency,
                 telemetry::EventKind::kConfirm, 0});
    if (prev) prev(cookie, latency);
  };

  auto prev_failed = std::move(hooks.on_update_failed);
  hooks.on_update_failed = [hub, sw, mon, rt, prev = std::move(prev_failed)](
                               std::uint64_t cookie, netbase::SimTime waited) {
    hub->record({rt->now(), sw, cookie, mon->epoch(), waited,
                 telemetry::EventKind::kUpdateFailed, 0});
    if (prev) prev(cookie, waited);
  };

  auto prev_verdict = std::move(hooks.on_verdict);
  hooks.on_verdict = [hub, sw, rt, prev = std::move(prev_verdict)](
                         std::uint64_t cookie, RuleState state,
                         openflow::Epoch epoch) {
    hub->record({rt->now(), sw, cookie, epoch, 0,
                 telemetry::EventKind::kVerdict,
                 static_cast<std::uint32_t>(state)});
    if (prev) prev(cookie, state, epoch);
  };

  auto prev_channel = std::move(hooks.on_channel_change);
  hooks.on_channel_change = [hub, sw, mon, rt,
                             prev = std::move(prev_channel)](bool up) {
    hub->record({rt->now(), sw, 0, mon->epoch(), 0,
                 telemetry::EventKind::kChannelState, up ? 1u : 0u});
    if (prev) prev(up);
  };

  auto prev_delta = std::move(hooks.on_delta);
  hooks.on_delta = [hub, sw, rt, prev = std::move(prev_delta)](
                       const openflow::TableDelta& delta) {
    hub->record({rt->now(), sw, delta.rule.cookie, delta.epoch, 0,
                 telemetry::EventKind::kDelta,
                 static_cast<std::uint32_t>(delta.kind)});
    if (prev) prev(delta);
  };
}

void Fleet::journal_diagnosis(const NetworkDiagnosis& diag) {
  telemetry::TelemetryHub* hub = config_.telemetry;
  if (hub == nullptr) return;
  const std::uint64_t now = runtime_->now();
  for (const auto& link : diag.links) {
    // arg packs the far end: [b:32][port_a:16][port_b:16].
    const std::uint64_t arg = (std::uint64_t{link.b} << 32) |
                              (std::uint64_t{link.port_a} << 16) |
                              std::uint64_t{link.port_b};
    hub->record({now, link.a, 0, shard_epoch(link.a), arg,
                 telemetry::EventKind::kDiagnosis, telemetry::kDiagLink});
  }
  for (const auto& sw : diag.switches) {
    hub->record({now, sw.sw, 0, shard_epoch(sw.sw), 0,
                 telemetry::EventKind::kDiagnosis, telemetry::kDiagSwitch});
  }
  for (const auto& fault : diag.isolated) {
    hub->record({now, fault.sw, fault.cookie, shard_epoch(fault.sw), 0,
                 telemetry::EventKind::kDiagnosis,
                 telemetry::kDiagIsolatedRule});
  }
}

void Fleet::publish_telemetry() {
  telemetry::TelemetryHub* hub = config_.telemetry;
  if (hub == nullptr) return;
  const Stats snap = stats_snapshot();
  telemetry::Exporter& exp = hub->exporter();
  exp.set_counter("monocle_fleet_rounds_started_total", "",
                  snap.rounds_started);
  exp.set_counter("monocle_fleet_probes_injected_total", "",
                  snap.probes_injected);
  exp.set_counter("monocle_fleet_alarms_total", "", snap.alarms);
  exp.set_counter("monocle_fleet_diagnoses_total", "", snap.diagnoses);
  exp.set_counter("monocle_fleet_flow_mods_routed_total", "",
                  snap.flow_mods_routed);
  exp.set_counter("monocle_fleet_deltas_observed_total", "",
                  snap.deltas_observed);
  exp.set_counter("monocle_fleet_evidence_passes_total", "",
                  snap.evidence_passes);
  exp.set_counter("monocle_fleet_session_rebuilds_total", "",
                  snap.session_rebuilds);
  if (config_.elastic_budget) {
    // Scheduler observability: the last-planned per-shard budgets and
    // backlogs, plus the fleet-wide staleness p95 across shards.  Reads go
    // through the budgeter's snapshot (mutexed), so a scrape thread may
    // call this mid-plan.
    budgeter_.snapshot(budget_views_);
    std::vector<std::uint64_t> stale;
    stale.reserve(budget_views_.size());
    char labels[32];
    for (const BudgetScheduler::ShardView& v : budget_views_) {
      std::snprintf(labels, sizeof(labels), "switch=\"%llu\"",
                    static_cast<unsigned long long>(v.sw));
      exp.set_gauge("monocle_fleet_shard_budget", labels,
                    static_cast<double>(v.budget));
      exp.set_gauge("monocle_fleet_shard_backlog", labels,
                    static_cast<double>(v.backlog));
      stale.push_back(v.staleness_ns);
    }
    if (!stale.empty()) {
      std::sort(stale.begin(), stale.end());
      const std::size_t idx =
          std::min(stale.size() - 1, (stale.size() * 95) / 100);
      exp.set_gauge("monocle_fleet_staleness_p95_ns", "",
                    static_cast<double>(stale[idx]));
    }
    exp.set_counter("monocle_fleet_budget_rounds_planned_total", "",
                    budgeter_.rounds_planned());
  }
}

Monitor* Fleet::add_shard(SwitchId sw, channel::SwitchBackend& backend,
                          Multiplexer& mux, Monitor::Hooks hooks) {
  mux_ = &mux;  // prepare() pre-resolves its routes for the concurrent phase
  hooks.to_switch = [&backend](const openflow::Message& m) { backend.send(m); };
  if (!hooks.to_controller) {
    // Live monitors often run without a controller behind them.
    hooks.to_controller = [](const openflow::Message&) {};
  }
  if (!hooks.inject) {
    // Ordinal-addressed injection: the shard's dense index is captured once
    // here, so the steady cycle's per-probe routing does no id lookup at
    // all (and the bytes travel as a borrowed span end to end).  Under the
    // multi-worker engine the hook also carries the owning worker's
    // InjectContext, keeping the Multiplexer send path read-only on shard
    // state when two workers deliver through one upstream switch.
    const SwitchOrdinal ord = mux.intern(sw);
    Multiplexer::InjectContext* ctx = nullptr;
    if (multi_worker()) {
      if (inject_ctxs_.empty()) inject_ctxs_.resize(worker_count());
      auto& slot = inject_ctxs_[next_shard_worker()];
      if (!slot) slot = std::make_unique<Multiplexer::InjectContext>();
      ctx = slot.get();
    }
    hooks.inject = [&mux, ord, ctx](std::uint16_t in_port,
                                    std::span<const std::uint8_t> bytes) {
      return mux.inject_at(ord, in_port, bytes, ctx);
    };
  }
  Monitor* mon = add_shard(sw, std::move(hooks));
  mux.register_monitor(sw, mon);
  mux.bind_backend(sw, backend, mon);
  // The registrations above capture the raw Monitor*; the Fleet owns their
  // teardown (a monitor-less rebind) so shard destruction cannot leave the
  // backend delivering into freed memory.
  shard_unbind_[sw] = [sw, &backend, &mux] {
    mux.unregister_monitor(sw);
    mux.bind_backend(sw, backend, nullptr);
  };
  return mon;
}

Fleet::~Fleet() {
  stop();
  for (auto& [sw, unbind] : shard_unbind_) unbind();
  shard_unbind_.clear();
}

bool Fleet::remove_shard(SwitchId sw) {
  const auto it = shards_.find(sw);
  if (it == shards_.end()) return false;
  // Multi-worker: the shard's timers live on its worker's Runtime, so the
  // stop must run THERE (the handoff rule).  Afterwards the Monitor is
  // inert — no future round can reach it (round_work_ is repartitioned from
  // shards_ each round) — so destroying it here is safe.
  if (engine_ != nullptr && engine_->running()) {
    Monitor* doomed = it->second.get();
    engine_->run_on(shard_worker(sw), [doomed] { doomed->stop(); });
    drain_mailbox();
  } else {
    it->second->stop();
  }
  if (const auto unbind = shard_unbind_.find(sw);
      unbind != shard_unbind_.end()) {
    unbind->second();
    shard_unbind_.erase(unbind);
  }
  shards_.erase(it);
  shard_worker_.erase(sw);
  if (config_.on_shard_removed) config_.on_shard_removed(sw);
  return true;
}

Monitor* Fleet::monitor(SwitchId sw) const {
  const auto it = shards_.find(sw);
  return it == shards_.end() ? nullptr : it->second.get();
}

void Fleet::set_schedule(RoundSchedule schedule) {
  schedule_ = std::move(schedule);
  cursor_ = 0;
}

void Fleet::warm_caches() {
  if (!config_.monitor.batch_generation) return;  // lazy path stays lazy
  std::vector<Monitor*> work;
  work.reserve(shards_.size());
  for (auto& [sw, monitor] : shards_) work.push_back(monitor.get());
  if (work.empty()) return;

  std::size_t threads = config_.warmup_threads > 0
                            ? static_cast<std::size_t>(config_.warmup_threads)
                            : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min(threads, work.size());
  if (threads <= 1) {
    for (Monitor* monitor : work) monitor->warm_probe_cache();
    return;
  }
  // Shared pool: each worker warms whole shards (a shard's batch session
  // pipeline is single-threaded, so shards are the unit of parallelism).
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < work.size();
           i = next.fetch_add(1)) {
        work[i]->warm_probe_cache();
      }
    });
  }
  for (std::thread& worker : pool) worker.join();
}

void Fleet::prepare() {
  if (prepared_) return;
  prepared_ = true;
  if (schedule_.round_count() == 0) {
    // Sequential fallback: one shard per round, ascending switch id.
    std::vector<SwitchId> ids;
    ids.reserve(shards_.size());
    for (const auto& [sw, monitor] : shards_) ids.push_back(sw);
    schedule_ = RoundSchedule::sequential(ids);
  }
  for (auto& [sw, monitor] : shards_) monitor->install_infrastructure();
  warm_caches();
  for (auto& [sw, monitor] : shards_) monitor->start_externally_paced();
  if (multi_worker()) {
    // Everything above ran single-threaded; the engine's first barrier
    // publishes it to the workers.  The round job is registered once here
    // so run_round() never constructs a callable (zero-alloc rounds).
    engine_ = std::make_unique<RoundEngine>(config_.round_workers);
    round_work_.assign(engine_->worker_count(), {});
    round_budget_.assign(engine_->worker_count(), {});
    engine_->set_round_job([this](std::size_t worker) {
      std::size_t injected = 0;
      const std::vector<Monitor*>& work = round_work_[worker];
      const std::vector<std::size_t>& budget = round_budget_[worker];
      for (std::size_t i = 0; i < work.size(); ++i) {
        injected += work[i]->steady_probe_burst(budget[i]);
      }
      return injected;
    });
    // Pre-resolve every injection route: the concurrent phase must never
    // take the lazy resolve path (it resizes the cache under readers).
    if (mux_ != nullptr) mux_->warm_routes();
  }
  drain_mailbox();  // deltas observed during install/warm-up
}

void Fleet::start() {
  if (running_) return;
  prepare();
  running_ = true;
  round_timer_ = runtime_->schedule(config_.warmup, [this] {
    round_timer_ = 0;
    if (!running_) return;
    start_round();
    schedule_next_round();
  });
}

void Fleet::schedule_next_round() {
  round_timer_ = runtime_->schedule(config_.round_interval, [this] {
    round_timer_ = 0;
    if (!running_) return;
    start_round();
    schedule_next_round();
  });
}

void Fleet::stop() {
  running_ = false;
  runtime_->cancel(round_timer_);
  round_timer_ = 0;
  runtime_->cancel(diag_timer_);
  diag_timer_ = 0;
  runtime_->cancel(evidence_timer_);
  evidence_timer_ = 0;
  // Join the workers FIRST: after stop() returns every shard is exclusively
  // ours again (thread join orders all their writes before our reads), so
  // the Monitor stops below run race-free on this thread even though the
  // shards lived on workers a moment ago.  Works mid-round too — an
  // in-flight run_round() finishes behind the engine's ops mutex before the
  // join begins.
  if (engine_ != nullptr) engine_->stop();
  for (auto& [sw, monitor] : shards_) monitor->stop();
  drain_mailbox();
}

std::size_t Fleet::start_round() {
  if (schedule_.round_count() == 0) return 0;
  const std::vector<SwitchId>& round = schedule_.round(cursor_);
  cursor_ = (cursor_ + 1) % schedule_.round_count();
  // The fault plan and checkpoint writer index rounds from 0; the counter
  // itself resumes across restarts (FleetCheckpoint), so a restored fleet's
  // crash schedule lines up with the control fleet's.
  const std::uint64_t round_index = stats_.rounds_started;
  bump(stats_.rounds_started);
  if (config_.crash_plan != nullptr) apply_crash_plan(round, round_index);
  // Elastic budgets are planned here, on the orchestration thread, BEFORE
  // the engine barrier — the previous round's barrier already ordered every
  // shard's writes before these reads (same precedent as run_evidence_pass).
  if (config_.elastic_budget) plan_budgets(round);
  std::size_t injected = 0;
  if (engine_ != nullptr && engine_->running()) {
    // Partition the round's shards by owning worker (vectors keep capacity:
    // allocation-free once warm) and run one engine barrier.  Per-worker
    // iteration order follows the schedule's switch order, so each Monitor
    // sees exactly the event sequence it would single-threaded —
    // classifications stay byte-identical for any worker count.  The budget
    // vector rides along index-parallel so the preregistered round job
    // never looks anything up.
    for (auto& work : round_work_) work.clear();
    for (auto& budget : round_budget_) budget.clear();
    for (const SwitchId sw : round) {
      const auto it = shards_.find(sw);
      if (it == shards_.end()) continue;  // scheduled but unmonitored switch
      if (shard_quarantined(sw) || crash_plan_blocks(sw, round_index)) {
        continue;  // no burst: the heartbeat stalls, the supervisor sees it
      }
      const std::size_t worker = shard_worker(sw);
      round_work_[worker].push_back(it->second.get());
      round_budget_[worker].push_back(config_.elastic_budget
                                          ? budgeter_.budget_for(sw)
                                          : config_.probes_per_switch);
    }
    injected = engine_->run_round();
    bump(stats_.probes_injected, injected);
    drain_mailbox();
  } else {
    for (const SwitchId sw : round) {
      const auto it = shards_.find(sw);
      if (it == shards_.end()) continue;  // scheduled but unmonitored switch
      if (shard_quarantined(sw) || crash_plan_blocks(sw, round_index)) {
        continue;
      }
      injected += it->second->steady_probe_burst(
          config_.elastic_budget ? budgeter_.budget_for(sw)
                                 : config_.probes_per_switch);
    }
    bump(stats_.probes_injected, injected);
  }
  // Watchdog sweep, then the incremental checkpoint — in that order, so a
  // shard quarantined THIS round is never snapshotted in its wedged state.
  if (supervisor_.enabled) supervise_round(round);
  if (config_.checkpoints != nullptr) {
    write_round_checkpoint(round, round_index);
  }
  // Endurance cadence: amortized session maintenance off the probe path.
  if (config_.maintenance_interval_rounds > 0 &&
      ++rounds_since_maintenance_ >= config_.maintenance_interval_rounds) {
    rounds_since_maintenance_ = 0;
    maintain_sessions();
  }
  return injected;
}

void Fleet::plan_budgets(const std::vector<SwitchId>& round) {
  budget_members_.clear();
  pressure_.clear();
  for (const SwitchId sw : round) {
    const auto it = shards_.find(sw);
    if (it == shards_.end()) continue;
    if (shard_quarantined(sw)) continue;  // no burst, no budget share
    const Monitor& mon = *it->second;
    ShardPressure p;
    p.backlog = mon.pending_update_count();
    p.deltas_applied = mon.stats().deltas_applied;
    p.suspects = mon.suspect_rule_count();
    p.failed = mon.failed_rule_count();
    if (config_.evidence_localization) {
      p.evidence_confidence = evidence_.switch_confidence(sw);
    }
    p.staleness = mon.steady_staleness_max();
    budget_members_.push_back(sw);
    pressure_.push_back(p);
  }
  budgeter_.plan_round(budget_members_, pressure_);
}

std::size_t Fleet::maintain_sessions() {
  // Quiesce: after the barrier (or in single-threaded mode, always) every
  // shard is exclusively ours, so the rebuilds below run race-free even
  // though they touch worker-owned solver state.
  if (engine_ != nullptr) engine_->quiesce();
  std::vector<Monitor*> due;
  for (auto& [sw, monitor] : shards_) {
    if (monitor->session_rebuild_due()) due.push_back(monitor.get());
  }
  if (due.empty()) return 0;
  std::size_t rebuilt = 0;
  if (due.size() <= 2) {
    for (Monitor* monitor : due) rebuilt += monitor->rebuild_live_sessions();
  } else {
    // warm_caches-style pool: shards are the unit of parallelism, rebuilds
    // happen against private warm-up sessions and swap atomically.
    std::size_t threads = config_.warmup_threads > 0
                              ? static_cast<std::size_t>(config_.warmup_threads)
                              : std::max(1u, std::thread::hardware_concurrency());
    threads = std::min(threads, due.size());
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> total{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < due.size();
             i = next.fetch_add(1)) {
          total.fetch_add(due[i]->rebuild_live_sessions(),
                          std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    rebuilt = total.load();
  }
  if (rebuilt > 0) bump(stats_.session_rebuilds, rebuilt);
  return rebuilt;
}

bool Fleet::route_flow_mod(SwitchId sw, const openflow::FlowMod& fm,
                           std::uint32_t xid) {
  const auto it = shards_.find(sw);
  if (it == shards_.end()) return false;
  bump(stats_.flow_mods_routed);
  const openflow::Message msg = openflow::make_message(xid, fm);
  // Delta routing under the multi-worker engine: the FlowMod mutates the
  // shard's table and timers, so it executes on the owning worker (the
  // handoff), not here.
  if (engine_ != nullptr && engine_->running()) {
    Monitor* mon = it->second.get();
    engine_->run_on(shard_worker(sw), [mon, &msg] {
      mon->on_controller_message(msg);
    });
    drain_mailbox();
    return true;
  }
  it->second->on_controller_message(msg);
  return true;
}

openflow::Epoch Fleet::shard_epoch(SwitchId sw) const {
  const Monitor* mon = monitor(sw);
  return mon == nullptr ? 0 : mon->epoch();
}

void Fleet::note_alarm() {
  if (!config_.on_diagnosis) return;
  if (config_.evidence_localization) {
    // The first alarm arms the evidence pipeline; it then self-schedules
    // until the fabric is clean again.
    if (evidence_timer_ == 0) schedule_evidence_pass(config_.localize_debounce);
    return;
  }
  if (diag_timer_ != 0) return;  // a pass is already pending
  diag_timer_ = runtime_->schedule(config_.localize_debounce, [this] {
    diag_timer_ = 0;
    bump(stats_.diagnoses);
    const NetworkDiagnosis diag = diagnose();
    journal_diagnosis(diag);
    config_.on_diagnosis(diag);
  });
}

void Fleet::note_delta(SwitchId sw, const openflow::TableDelta& delta) {
  auto& recent = recent_deltas_[sw];
  const netbase::SimTime now = runtime_->now();
  for (const std::uint64_t cookie : delta.affected_cookies()) {
    recent.emplace_back(cookie, now);
  }
  while (!recent.empty() &&
         recent.front().second + config_.churn_exclusion <= now) {
    recent.pop_front();
  }
}

void Fleet::collect_reports(
    std::vector<SwitchFailureReport>& reports,
    std::vector<std::unordered_set<std::uint64_t>>& exclusions) const {
  const netbase::SimTime now = runtime_->now();
  reports.reserve(shards_.size());
  exclusions.reserve(shards_.size());
  for (const auto& [sw, monitor] : shards_) {
    std::unordered_set<std::uint64_t> excluded;
    for (const std::uint64_t cookie : monitor->pending_update_cookies()) {
      excluded.insert(cookie);
    }
    if (const auto it = recent_deltas_.find(sw); it != recent_deltas_.end()) {
      for (const auto& [cookie, when] : it->second) {
        if (when + config_.churn_exclusion > now) excluded.insert(cookie);
      }
    }
    exclusions.push_back(std::move(excluded));
    reports.push_back({sw, &monitor->expected_table(),
                       &monitor->failed_rules(), nullptr});
  }
  // Wire the pointers only after `exclusions` stopped reallocating.
  for (std::size_t i = 0; i < reports.size(); ++i) {
    if (!exclusions[i].empty()) reports[i].excluded = &exclusions[i];
  }
}

void Fleet::schedule_evidence_pass(netbase::SimTime delay) {
  evidence_timer_ = runtime_->schedule(delay, [this] {
    evidence_timer_ = 0;
    run_evidence_pass();
  });
}

void Fleet::run_evidence_pass() {
  bump(stats_.evidence_passes);
  std::vector<SwitchFailureReport> reports;
  std::vector<std::unordered_set<std::uint64_t>> exclusions;
  collect_reports(reports, exclusions);
  evidence_.observe(reports, *view_, runtime_->now());

  const NetworkDiagnosis diag = evidence_.diagnosis();
  // Publish confirmed, CHANGED diagnoses only: a stable fault pages once.
  std::vector<std::array<std::uint64_t, 4>> sig;
  for (const auto& link : diag.links) {
    sig.push_back({1, link.a, (std::uint64_t{link.port_a} << 16) | link.port_b,
                   link.b});
  }
  for (const auto& sw : diag.switches) sig.push_back({2, sw.sw, 0, 0});
  for (const auto& fault : diag.isolated) {
    sig.push_back({3, fault.sw, fault.cookie, 0});
  }
  if (!diag.healthy() && sig != published_sig_) {
    published_sig_ = std::move(sig);
    bump(stats_.diagnoses);
    journal_diagnosis(diag);
    if (config_.on_diagnosis) config_.on_diagnosis(diag);
  } else if (diag.healthy()) {
    published_sig_.clear();
  }

  // Keep observing while anything is failed or suspicion is alive; a later
  // alarm re-arms the pipeline through note_alarm once the fabric is clean.
  if (failed_rule_count() > 0 || evidence_.suspect_count() > 0) {
    schedule_evidence_pass(config_.evidence_interval);
  }
}

NetworkDiagnosis Fleet::diagnose() const {
  std::vector<SwitchFailureReport> reports;
  std::vector<std::unordered_set<std::uint64_t>> exclusions;
  collect_reports(reports, exclusions);
  return localize_network(reports, *view_, config_.localizer);
}

std::size_t Fleet::outstanding_probes() const {
  std::size_t total = 0;
  for (const auto& [sw, monitor] : shards_) {
    total += monitor->outstanding_probe_count();
  }
  return total;
}

std::size_t Fleet::failed_rule_count() const {
  std::size_t total = 0;
  for (const auto& [sw, monitor] : shards_) {
    total += monitor->failed_rule_count();
  }
  return total;
}

std::size_t Fleet::monitorable_rule_count() const {
  std::size_t total = 0;
  for (const auto& [sw, monitor] : shards_) {
    total += monitor->monitorable_rule_count();
  }
  return total;
}

// ---------------------------------------------------------------------------
// Multi-worker driver surface
// ---------------------------------------------------------------------------

std::size_t Fleet::shard_worker(SwitchId sw) const {
  const auto it = shard_worker_.find(sw);
  return it == shard_worker_.end() ? 0 : it->second;
}

void Fleet::run_on_worker(std::size_t worker,
                          const std::function<void()>& fn) {
  if (engine_ != nullptr && engine_->running()) {
    engine_->run_on(worker, fn);
    drain_mailbox();
    return;
  }
  fn();  // single-threaded (or torn-down) mode: everything is ours already
  drain_mailbox();
}

Fleet::Stats Fleet::stats_snapshot() const {
  // Quiesce first: the engine barrier sequences every worker's relaxed
  // increments before the loads below, so the snapshot is a consistent
  // point-in-time read (the field-by-field torn-read regression).
  if (engine_ != nullptr) engine_->quiesce();
  const auto load = [](const std::uint64_t& field) {
    return std::atomic_ref<std::uint64_t>(const_cast<std::uint64_t&>(field))
        .load(std::memory_order_relaxed);
  };
  Stats out;
  out.rounds_started = load(stats_.rounds_started);
  out.probes_injected = load(stats_.probes_injected);
  out.alarms = load(stats_.alarms);
  out.diagnoses = load(stats_.diagnoses);
  out.flow_mods_routed = load(stats_.flow_mods_routed);
  out.deltas_observed = load(stats_.deltas_observed);
  out.evidence_passes = load(stats_.evidence_passes);
  out.session_rebuilds = load(stats_.session_rebuilds);
  return out;
}

void Fleet::post_mailbox(MailboxItem item) {
  std::lock_guard lock(mailbox_mu_);
  mailbox_.push_back(std::move(item));
}

void Fleet::drain_mailbox() {
  std::vector<MailboxItem> items;
  {
    std::lock_guard lock(mailbox_mu_);
    items.swap(mailbox_);  // empty steady state: two empty vectors, no alloc
  }
  for (MailboxItem& item : items) {
    switch (item.kind) {
      case MailboxItem::Kind::kAlarm:
        note_alarm();
        break;
      case MailboxItem::Kind::kDelta:
        note_delta(item.sw, item.delta);
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-safe warm restart + supervised shard recovery (docs/DESIGN.md §15)
// ---------------------------------------------------------------------------

void Fleet::collect_journal_tail(SwitchId sw, openflow::Epoch epoch,
                                 JournalTail& tail) const {
  tail.stale.clear();
  tail.verdicts.clear();
  if (config_.telemetry == nullptr) return;
  // `<`, not `<=`: a verdict fired after the snapshot in a quiet epoch (no
  // churn advancing the table version) carries the snapshot's own epoch
  // stamp, and dropping it would lose the verdict.  Keeping same-epoch
  // records instead re-seeds verdicts the snapshot already holds
  // (seed_verdict is idempotent) and conservatively invalidates a few
  // same-epoch manifest probes — one spare SAT regen, never a wrong state.
  config_.telemetry->journal().replay([&](const telemetry::EventRecord& rec) {
    if (rec.shard != sw || rec.epoch < epoch) return;
    if (rec.kind == telemetry::EventKind::kDelta) {
      tail.stale.insert(rec.cookie);
    } else if (rec.kind == telemetry::EventKind::kVerdict) {
      tail.verdicts.emplace_back(rec.cookie,
                                 static_cast<RuleState>(rec.detail));
    }
  });
}

Fleet::RestoreReport Fleet::restore() {
  RestoreReport rep;
  if (config_.checkpoints == nullptr) return rep;
  const auto latest = config_.checkpoints->load_latest();
  if (const auto it = latest.find(Checkpoint::kFleetStateKey);
      it != latest.end()) {
    if (const auto fc = FleetCheckpoint::decode(it->second)) {
      budgeter_.set_carry(fc->budget_carry);
      stats_.rounds_started = fc->rounds_started;
      rep.fleet_state_restored = true;
    }
  }
  JournalTail tail;
  for (auto& [sw, monitor] : shards_) {
    std::optional<Checkpoint> cp;
    if (const auto it = latest.find(sw); it != latest.end()) {
      cp = Checkpoint::decode(it->second);
    }
    if (!cp.has_value() || cp->shard != sw) {
      ++rep.shards_cold;  // no/invalid snapshot: this shard starts cold
      continue;
    }
    // The journal outlives the snapshot by up to a full checkpoint
    // rotation: deltas past the snapshot epoch invalidate manifest probes,
    // verdicts past it re-seed silently so nothing already published is
    // re-raised (or lost).
    collect_journal_tail(sw, cp->epoch, tail);
    const Monitor::RestoreStats rs =
        monitor->restore_checkpoint(*cp, &tail.stale);
    for (const auto& [cookie, state] : tail.verdicts) {
      monitor->seed_verdict(cookie, state);
    }
    if (cp->budget > 0) budgeter_.seed_budget(sw, cp->budget);
    ++rep.shards_restored;
    rep.verdicts_seeded += rs.verdicts;
    rep.suspects_rearmed += rs.suspects;
    rep.manifest_admitted += rs.manifest_admitted;
    rep.manifest_dropped += rs.manifest_dropped;
    rep.tail_verdicts += tail.verdicts.size();
    rep.tail_deltas += tail.stale.size();
  }
  // Diagnosis dedup across the restart: rebuild the published-signature set
  // from the journal's trailing kDiagnosis burst (one publication = one
  // journal_diagnosis call = one shared when_ns), so a stable fault the
  // dead incarnation already paged does not page again.
  if (config_.telemetry != nullptr) {
    std::uint64_t last_when = 0;
    std::vector<std::array<std::uint64_t, 4>> sig;
    config_.telemetry->journal().replay([&](const telemetry::EventRecord& rec) {
      if (rec.kind != telemetry::EventKind::kDiagnosis) return;
      if (rec.when_ns != last_when) {
        sig.clear();
        last_when = rec.when_ns;
      }
      switch (rec.detail) {
        case telemetry::kDiagLink:
          // journal_diagnosis packs arg = [b:32][port_a:16][port_b:16];
          // the signature wants {1, a, (port_a<<16)|port_b, b}.
          sig.push_back(
              {1, rec.shard, rec.arg & 0xFFFFFFFFull, rec.arg >> 32});
          break;
        case telemetry::kDiagSwitch:
          sig.push_back({2, rec.shard, 0, 0});
          break;
        case telemetry::kDiagIsolatedRule:
          sig.push_back({3, rec.shard, rec.cookie, 0});
          break;
        default:
          break;
      }
    });
    if (!sig.empty()) published_sig_ = std::move(sig);
  }
  return rep;
}

void Fleet::enable_supervision(SupervisorOptions opts) {
  supervisor_.options = opts;
  supervisor_.enabled = true;
}

bool Fleet::crash_plan_blocks(SwitchId sw, std::uint64_t round_index) const {
  const CrashPlan* plan = config_.crash_plan;
  if (plan == nullptr) return false;
  return plan->shard_dead(sw, round_index) ||
         plan->shard_wedged(sw, round_index) ||
         plan->worker_wedged(shard_worker(sw), round_index);
}

void Fleet::apply_crash_plan(const std::vector<SwitchId>& round,
                             std::uint64_t round_index) {
  CrashPlan* plan = config_.crash_plan;
  for (const SwitchId sw : round) {
    const auto it = shards_.find(sw);
    if (it == shards_.end()) continue;
    Monitor* mon = it->second.get();
    if (plan->kill_fires(sw, round_index)) {
      // The shard "process" dies: timers and steady pacing die with it, on
      // its owning worker.  The supervisor is told nothing — it must detect
      // the death from the stalled heartbeat alone.
      ++plan->stats().kills;
      run_on_worker(shard_worker(sw), [mon] { mon->stop(); });
    }
    if (plan->shard_wedged(sw, round_index) ||
        plan->worker_wedged(shard_worker(sw), round_index)) {
      ++plan->stats().wedge_rounds;
    }
    // Channel tears are edge-triggered on the window boundaries, so the
    // Monitor's own outage machinery (probe drop, suspect reset, barrier
    // epoch, reconnect re-assert) runs exactly once per transition.
    const bool torn = plan->channel_torn(sw, round_index);
    const bool was_torn = torn_channels_.contains(sw);
    if (torn != was_torn) {
      if (torn) {
        torn_channels_.insert(sw);
      } else {
        torn_channels_.erase(sw);
      }
      run_on_worker(shard_worker(sw),
                    [mon, torn] { mon->on_channel_state(!torn); });
    }
    if (torn) ++plan->stats().tear_rounds;
  }
}

void Fleet::supervise_round(const std::vector<SwitchId>& round) {
  // Heartbeat sweep: a scheduled, non-quarantined shard whose burst counter
  // did not advance this round missed a beat.
  std::vector<SwitchId> stalled;
  for (const SwitchId sw : round) {
    const auto it = shards_.find(sw);
    if (it == shards_.end()) continue;
    if (supervisor_.quarantined.contains(sw)) continue;
    const std::uint32_t burst = it->second->burst_count();
    const auto [lb, fresh] = supervisor_.last_burst.try_emplace(sw, burst);
    if (fresh) continue;  // first observation: baseline only
    if (burst != lb->second) {
      lb->second = burst;
      supervisor_.missed[sw] = 0;
      continue;
    }
    ++supervisor_.stats.heartbeats_missed;
    if (++supervisor_.missed[sw] >= supervisor_.options.missed_rounds) {
      supervisor_.missed[sw] = 0;
      supervisor_.quarantined.insert(sw);
      ++supervisor_.stats.quarantines;
      stalled.push_back(sw);
    }
  }
  if (stalled.empty() || !supervisor_.options.auto_restore) return;
  // Stuck-worker call: enough of ONE worker's shards stalling in the same
  // sweep reads as the worker being wedged, not the shards — those migrate
  // to the next worker; isolated stalls restore in place.
  std::map<std::size_t, std::size_t> per_worker;
  for (const SwitchId sw : stalled) ++per_worker[shard_worker(sw)];
  for (const SwitchId sw : stalled) {
    const std::size_t worker = shard_worker(sw);
    std::size_t target = worker;
    if (multi_worker() && worker_count() > 1 &&
        per_worker[worker] >= supervisor_.options.min_worker_shards_stuck) {
      target = (worker + 1) % worker_count();
    }
    restore_shard(sw, target);
  }
}

bool Fleet::restore_shard(SwitchId sw) {
  return restore_shard(sw, shard_worker(sw));
}

bool Fleet::restore_shard(SwitchId sw, std::size_t new_worker) {
  const auto it = shards_.find(sw);
  if (it == shards_.end()) return false;
  Monitor* mon = it->second.get();
  const std::size_t old_worker = shard_worker(sw);
  // Reset on the OLD worker — its Runtime owns whatever timers survive.
  run_on_worker(old_worker, [mon] { mon->reset_for_recovery(); });
  if (new_worker != old_worker && multi_worker()) {
    mon->rebind_runtime(
        config_.worker_runtimes[new_worker % config_.worker_runtimes.size()]);
    shard_worker_[sw] = new_worker;
    ++supervisor_.stats.worker_reassignments;
  }
  std::optional<Checkpoint> cp;
  if (config_.checkpoints != nullptr) {
    if (const auto blob = config_.checkpoints->load(sw)) {
      cp = Checkpoint::decode(*blob);
    }
  }
  // Rehydrate and resume on the (possibly new) owning worker.  A shard with
  // no surviving snapshot still goes through restore_checkpoint — with an
  // empty snapshot at the current epoch — because the generation bump and
  // the rule-state re-seed are exactly the cold-reset semantics too.
  run_on_worker(shard_worker(sw), [&] {
    JournalTail tail;
    if (cp.has_value() && cp->shard == sw) {
      collect_journal_tail(sw, cp->epoch, tail);
      mon->restore_checkpoint(*cp, &tail.stale);
      for (const auto& [cookie, state] : tail.verdicts) {
        mon->seed_verdict(cookie, state);
      }
      if (cp->budget > 0) budgeter_.seed_budget(sw, cp->budget);
      ++supervisor_.stats.restores;
    } else {
      Checkpoint cold;
      cold.shard = sw;
      cold.epoch = mon->epoch();
      mon->restore_checkpoint(cold, nullptr);
      ++supervisor_.stats.cold_restores;
    }
    mon->start_externally_paced();
  });
  // Re-admit: back into the round rotation; catch-up comes from the
  // BudgetScheduler's staleness pressure, not a special burst.
  if (supervisor_.quarantined.erase(sw) > 0) {
    ++supervisor_.stats.readmissions;
  }
  supervisor_.last_burst[sw] = mon->burst_count();
  supervisor_.missed[sw] = 0;
  if (config_.crash_plan != nullptr) config_.crash_plan->revive_shard(sw);
  return true;
}

void Fleet::write_round_checkpoint(const std::vector<SwitchId>& round,
                                   std::uint64_t round_index) {
  if (round.empty()) return;
  // One member per round — the least-recently-snapshotted one — so
  // incremental checkpointing spreads the encode cost across rounds yet
  // provably re-covers every shard within one rotation's worth of
  // appearances.
  Monitor* target = nullptr;
  SwitchId target_sw = 0;
  std::uint64_t target_age = ~std::uint64_t{0};
  for (const SwitchId sw : round) {
    const auto sit = shards_.find(sw);
    if (sit == shards_.end()) continue;
    // A quarantined shard's state is mid-wedge, and a dead/wedged process
    // could not have written a checkpoint — skip both.
    if (shard_quarantined(sw) || crash_plan_blocks(sw, round_index)) continue;
    const auto age_it = checkpoint_age_.find(sw);
    const std::uint64_t age =
        age_it == checkpoint_age_.end() ? 0 : age_it->second;
    if (age < target_age) {
      target = sit->second.get();
      target_sw = sw;
      target_age = age;
    }
  }
  if (target == nullptr) return;
  checkpoint_age_[target_sw] = round_index + 1;
  target->encode_checkpoint(
      checkpoint_buf_,
      config_.elastic_budget ? budgeter_.budget_for(target_sw) : 0);
  config_.checkpoints->append(target_sw, checkpoint_buf_);
  // The fleet-level record rides along: budget carry + the round counter
  // (so a restored fleet's crash/round indexing stays aligned).
  FleetCheckpoint fc;
  fc.budget_carry = budgeter_.carry();
  fc.rounds_started = stats_.rounds_started;
  fc.encode_into(fleet_checkpoint_buf_);
  config_.checkpoints->append(Checkpoint::kFleetStateKey,
                              fleet_checkpoint_buf_);
}

}  // namespace monocle
