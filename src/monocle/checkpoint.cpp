#include "monocle/checkpoint.hpp"

#include <bit>
#include <cstring>

#include "netbase/fields.hpp"
#include "netbase/packed_bits.hpp"

namespace monocle {

namespace {

// Payload grammar (all items native-endian u64 words):
//   header  := version shard when epoch epoch_floor budget
//   body    := section(verdict) section(floor) section(suspect)
//              section(manifest)
//   section := count entry*
//   verdict := cookie state
//   floor   := cookie epoch
//   suspect := cookie probes_left strikes backoff since
//   manifest:= cookie epoch probe
//   probe   := packet[kFieldCount] rule_cookie pred pred
//   pred    := kind n_obs (port header[kHeaderWords])*
constexpr std::size_t kHeaderWords = 6;

/// Bounds-checked word reader over a snapshot payload.
struct Reader {
  std::span<const std::uint8_t> bytes;
  std::size_t at = 0;
  bool ok = true;

  std::uint64_t get() {
    if (!ok || at + sizeof(std::uint64_t) > bytes.size()) {
      ok = false;
      return 0;
    }
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + at, sizeof(v));
    at += sizeof(v);
    return v;
  }

  /// A claimed element count: implausible values (larger than the bytes
  /// left could hold at one word per element) poison the read before any
  /// allocation sized from attacker/corruption-controlled data.
  std::uint64_t get_count() {
    const std::uint64_t n = get();
    if (ok && n > (bytes.size() - at) / sizeof(std::uint64_t)) ok = false;
    return ok ? n : 0;
  }
};

bool decode_prediction(Reader& r, OutcomePrediction& pred) {
  const std::uint64_t kind = r.get();
  if (kind > static_cast<std::uint64_t>(openflow::ForwardKind::kEcmp)) {
    r.ok = false;
  }
  pred.kind = static_cast<openflow::ForwardKind>(kind);
  const std::uint64_t n = r.get_count();
  if (!r.ok) return false;
  pred.observations.resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    Observation& obs = pred.observations[i];
    obs.output_port = static_cast<std::uint16_t>(r.get());
    for (int w = 0; w < netbase::kHeaderWords; ++w) {
      obs.header.w[static_cast<std::size_t>(w)] = r.get();
    }
  }
  return r.ok;
}

bool decode_probe(Reader& r, Probe& probe) {
  for (const netbase::Field f : netbase::kAllFields) {
    probe.packet.set(f, r.get());
  }
  probe.rule_cookie = r.get();
  if (!decode_prediction(r, probe.if_present)) return false;
  return decode_prediction(r, probe.if_absent);
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckpointWriter
// ---------------------------------------------------------------------------

CheckpointWriter::CheckpointWriter(std::vector<std::uint8_t>& out,
                                   SwitchId shard, netbase::SimTime when,
                                   openflow::Epoch epoch,
                                   openflow::Epoch epoch_floor,
                                   std::uint64_t budget)
    : out_(out) {
  out_.clear();  // capacity retained: steady-state writes allocate nothing
  put(Checkpoint::kFormatVersion);
  put(shard);
  put(static_cast<std::uint64_t>(when));
  put(epoch);
  put(epoch_floor);
  put(budget);
}

void CheckpointWriter::put(std::uint64_t word) {
  const std::size_t at = out_.size();
  out_.resize(at + sizeof(word));
  std::memcpy(out_.data() + at, &word, sizeof(word));
}

void CheckpointWriter::open_section() {
  count_at_ = out_.size();
  count_ = 0;
  put(0);  // patched by close_section
}

void CheckpointWriter::close_section() {
  std::memcpy(out_.data() + count_at_, &count_, sizeof(count_));
}

void CheckpointWriter::begin_verdicts() { open_section(); }

void CheckpointWriter::add_verdict(std::uint64_t cookie, RuleState state) {
  put(cookie);
  put(static_cast<std::uint64_t>(state));
  ++count_;
}

void CheckpointWriter::begin_floors() {
  close_section();
  open_section();
}

void CheckpointWriter::add_floor(std::uint64_t cookie, openflow::Epoch epoch) {
  put(cookie);
  put(epoch);
  ++count_;
}

void CheckpointWriter::begin_suspects() {
  close_section();
  open_section();
}

void CheckpointWriter::add_suspect(const Checkpoint::SuspectState& s) {
  put(s.cookie);
  put(static_cast<std::uint64_t>(s.probes_left));
  put(static_cast<std::uint64_t>(s.strikes));
  put(static_cast<std::uint64_t>(s.backoff));
  put(static_cast<std::uint64_t>(s.since));
  ++count_;
}

void CheckpointWriter::begin_manifest() {
  close_section();
  open_section();
}

void CheckpointWriter::add_manifest(std::uint64_t cookie,
                                    openflow::Epoch epoch, const Probe& probe) {
  put(cookie);
  put(epoch);
  for (const netbase::Field f : netbase::kAllFields) {
    put(probe.packet.get(f));
  }
  put(probe.rule_cookie);
  for (const OutcomePrediction* pred : {&probe.if_present, &probe.if_absent}) {
    put(static_cast<std::uint64_t>(pred->kind));
    put(pred->observations.size());
    for (const Observation& obs : pred->observations) {
      put(obs.output_port);
      for (int w = 0; w < netbase::kHeaderWords; ++w) {
        put(obs.header.w[static_cast<std::size_t>(w)]);
      }
    }
  }
  ++count_;
}

void CheckpointWriter::finish() { close_section(); }

// ---------------------------------------------------------------------------
// Checkpoint::decode
// ---------------------------------------------------------------------------

std::optional<Checkpoint> Checkpoint::decode(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.get() != kFormatVersion) return std::nullopt;
  Checkpoint cp;
  cp.shard = r.get();
  cp.when = static_cast<netbase::SimTime>(r.get());
  cp.epoch = r.get();
  cp.epoch_floor = r.get();
  cp.budget = r.get();
  if (!r.ok) return std::nullopt;

  const std::uint64_t n_verdicts = r.get_count();
  cp.verdicts.reserve(n_verdicts);
  for (std::uint64_t i = 0; r.ok && i < n_verdicts; ++i) {
    RuleVerdict v;
    v.cookie = r.get();
    const std::uint64_t state = r.get();
    if (state > static_cast<std::uint64_t>(RuleState::kSuspect)) r.ok = false;
    v.state = static_cast<RuleState>(state);
    cp.verdicts.push_back(v);
  }

  const std::uint64_t n_floors = r.get_count();
  cp.floors.reserve(n_floors);
  for (std::uint64_t i = 0; r.ok && i < n_floors; ++i) {
    RuleFloor f;
    f.cookie = r.get();
    f.epoch = r.get();
    cp.floors.push_back(f);
  }

  const std::uint64_t n_suspects = r.get_count();
  cp.suspects.reserve(n_suspects);
  for (std::uint64_t i = 0; r.ok && i < n_suspects; ++i) {
    SuspectState s;
    s.cookie = r.get();
    s.probes_left = static_cast<std::int64_t>(r.get());
    s.strikes = static_cast<std::int64_t>(r.get());
    s.backoff = static_cast<netbase::SimTime>(r.get());
    s.since = static_cast<netbase::SimTime>(r.get());
    cp.suspects.push_back(s);
  }

  const std::uint64_t n_manifest = r.get_count();
  cp.manifest.reserve(n_manifest);
  for (std::uint64_t i = 0; r.ok && i < n_manifest; ++i) {
    ManifestEntry e;
    e.cookie = r.get();
    e.epoch = r.get();
    if (!decode_probe(r, e.probe)) break;
    cp.manifest.push_back(std::move(e));
  }

  if (!r.ok || r.at != bytes.size()) return std::nullopt;
  return cp;
}

// ---------------------------------------------------------------------------
// FleetCheckpoint
// ---------------------------------------------------------------------------

void FleetCheckpoint::encode_into(std::vector<std::uint8_t>& out) const {
  out.clear();
  const std::uint64_t words[3] = {kFormatVersion,
                                  std::bit_cast<std::uint64_t>(budget_carry),
                                  rounds_started};
  out.resize(sizeof(words));
  std::memcpy(out.data(), words, sizeof(words));
}

std::optional<FleetCheckpoint> FleetCheckpoint::decode(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  if (r.get() != kFormatVersion) return std::nullopt;
  FleetCheckpoint fc;
  fc.budget_carry = std::bit_cast<double>(r.get());
  fc.rounds_started = r.get();
  if (!r.ok || r.at != bytes.size()) return std::nullopt;
  return fc;
}

}  // namespace monocle
