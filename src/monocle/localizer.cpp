#include "monocle/localizer.hpp"

#include <algorithm>
#include <map>

namespace monocle {

Diagnosis localize_failures(const openflow::FlowTable& expected,
                            const std::unordered_set<std::uint64_t>& failed,
                            const LocalizerOptions& options) {
  // Group rules by their (sole) output port; multicast/ECMP rules join every
  // port in their forwarding set — a dead link breaks them too, but they
  // alone cannot implicate a single link.
  struct PortGroup {
    std::size_t total = 0;
    std::vector<std::uint64_t> failed_cookies;
  };
  std::map<std::uint16_t, PortGroup> by_port;
  for (const openflow::Rule& r : expected.rules()) {
    const auto ports = r.outcome().forwarding_set();
    for (const std::uint16_t port : ports) {
      if (port >= openflow::kPortMax) continue;  // controller/flood pseudo-ports
      PortGroup& g = by_port[port];
      ++g.total;
      if (failed.contains(r.cookie)) g.failed_cookies.push_back(r.cookie);
    }
  }

  Diagnosis out;
  std::unordered_set<std::uint64_t> explained;
  for (const auto& [port, group] : by_port) {
    if (group.failed_cookies.size() < options.min_failed_rules) continue;
    const double fraction = static_cast<double>(group.failed_cookies.size()) /
                            static_cast<double>(group.total);
    if (fraction < options.link_threshold) continue;
    LinkSuspect suspect;
    suspect.port = port;
    suspect.failed_rules = group.failed_cookies.size();
    suspect.total_rules = group.total;
    out.failed_links.push_back(suspect);
    explained.insert(group.failed_cookies.begin(), group.failed_cookies.end());
  }
  std::sort(out.failed_links.begin(), out.failed_links.end(),
            [](const LinkSuspect& a, const LinkSuspect& b) {
              return a.fraction() > b.fraction();
            });

  for (const std::uint64_t cookie : failed) {
    if (!explained.contains(cookie)) out.isolated_rules.push_back(cookie);
  }
  std::sort(out.isolated_rules.begin(), out.isolated_rules.end());
  return out;
}

}  // namespace monocle
