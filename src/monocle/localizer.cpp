#include "monocle/localizer.hpp"

#include <algorithm>
#include <map>
#include <tuple>

namespace monocle {

Diagnosis localize_failures(const openflow::FlowTable& expected,
                            const std::unordered_set<std::uint64_t>& failed,
                            const LocalizerOptions& options,
                            const std::unordered_set<std::uint64_t>* excluded) {
  // Group rules by their (sole) output port; multicast/ECMP rules join every
  // port in their forwarding set — a dead link breaks them too, but they
  // alone cannot implicate a single link.
  struct PortGroup {
    std::size_t total = 0;
    std::vector<std::uint64_t> failed_cookies;
  };
  std::map<std::uint16_t, PortGroup> by_port;
  for (const openflow::Rule& r : expected.rules()) {
    // Mid-update/mid-churn rules carry no usable evidence either way: out
    // of the numerator AND the denominator.
    if (excluded != nullptr && excluded->contains(r.cookie)) continue;
    const auto ports = r.outcome().forwarding_set();
    for (const std::uint16_t port : ports) {
      if (port >= openflow::kPortMax) continue;  // controller/flood pseudo-ports
      PortGroup& g = by_port[port];
      ++g.total;
      if (failed.contains(r.cookie)) g.failed_cookies.push_back(r.cookie);
    }
  }

  Diagnosis out;
  std::unordered_set<std::uint64_t> explained;
  for (const auto& [port, group] : by_port) {
    if (group.failed_cookies.size() < options.min_failed_rules) continue;
    const double fraction = static_cast<double>(group.failed_cookies.size()) /
                            static_cast<double>(group.total);
    if (fraction < options.link_threshold) continue;
    LinkSuspect suspect;
    suspect.port = port;
    suspect.failed_rules = group.failed_cookies.size();
    suspect.total_rules = group.total;
    out.failed_links.push_back(suspect);
    explained.insert(group.failed_cookies.begin(), group.failed_cookies.end());
  }
  std::sort(out.failed_links.begin(), out.failed_links.end(),
            [](const LinkSuspect& a, const LinkSuspect& b) {
              return a.fraction() > b.fraction();
            });

  for (const std::uint64_t cookie : failed) {
    if (excluded != nullptr && excluded->contains(cookie)) continue;
    if (!explained.contains(cookie)) out.isolated_rules.push_back(cookie);
  }
  std::sort(out.isolated_rules.begin(), out.isolated_rules.end());
  return out;
}

NetworkDiagnosis localize_network(std::span<const SwitchFailureReport> reports,
                                  const NetworkView& view,
                                  const NetworkLocalizerOptions& options) {
  NetworkDiagnosis out;

  // Per-switch localization, then port->link translation.  A link is keyed
  // by its canonically ordered endpoints so the two endpoint monitors'
  // independent suspicions land on the same entry (= corroboration).
  using LinkKey = std::tuple<SwitchId, std::uint16_t, SwitchId, std::uint16_t>;
  std::map<LinkKey, LinkDiagnosis> links;
  std::unordered_set<SwitchId> reporting;
  for (const SwitchFailureReport& rep : reports) {
    if (rep.expected == nullptr || rep.failed == nullptr) continue;
    reporting.insert(rep.sw);
    const Diagnosis local = localize_failures(*rep.expected, *rep.failed,
                                              options.per_switch, rep.excluded);
    for (const LinkSuspect& suspect : local.failed_links) {
      SwitchId a = rep.sw;
      std::uint16_t port_a = suspect.port;
      SwitchId b = 0;
      std::uint16_t port_b = 0;
      if (const auto peer = view.peer(rep.sw, suspect.port)) {
        b = peer->sw;
        port_b = peer->port;
      }
      const bool flip = b != 0 && b < a;
      const LinkKey key = flip ? LinkKey{b, port_b, a, port_a}
                               : LinkKey{a, port_a, b, port_b};
      auto [it, inserted] = links.try_emplace(key);
      LinkDiagnosis& link = it->second;
      if (inserted) {
        link.a = std::get<0>(key);
        link.port_a = std::get<1>(key);
        link.b = std::get<2>(key);
        link.port_b = std::get<3>(key);
      } else {
        link.corroborated = true;  // the other endpoint reported it too
      }
      if (rep.sw == link.a) {
        link.reported_a = true;
      } else {
        link.reported_b = true;
      }
      link.failed_rules += suspect.failed_rules;
      link.fraction = std::max(link.fraction, suspect.fraction());
    }
    for (const std::uint64_t cookie : local.isolated_rules) {
      out.isolated.push_back({rep.sw, cookie});
    }
  }

  for (auto& [key, link] : links) {
    link.peer_monitored = link.b != 0 && reporting.contains(link.a) &&
                          reporting.contains(link.b);
  }

  // Switch promotion: a switch most of whose inter-switch links are suspect
  // has itself failed (dead switch / line card), not n independent cables.
  // Host-facing suspects (b == 0) stay out of the tally on both sides: the
  // denominator below counts only ports with a switch peer, and a bad edge
  // port says nothing about the fabric side of the switch.
  struct PerSwitch {
    std::size_t suspect_links = 0;
    std::size_t failed_rules = 0;
  };
  std::map<SwitchId, PerSwitch> by_switch;
  for (const auto& [key, link] : links) {
    if (link.b == 0) continue;
    // Ingress-contamination collateral (one-sided despite a monitored,
    // reporting peer) must not vote a healthy switch dead.
    if (options.contamination_filter && !link.corroborated &&
        link.peer_monitored) {
      continue;
    }
    by_switch[link.a].suspect_links += 1;
    by_switch[link.a].failed_rules += link.failed_rules;
    by_switch[link.b].suspect_links += 1;
    by_switch[link.b].failed_rules += link.failed_rules;
  }
  std::unordered_set<SwitchId> blamed;
  for (const auto& [sw, acc] : by_switch) {
    if (acc.suspect_links < options.min_suspect_links) continue;
    std::size_t total_links = 0;
    for (const std::uint16_t port : view.ports(sw)) {
      if (view.peer(sw, port).has_value()) ++total_links;
    }
    if (total_links == 0) continue;
    const double fraction = static_cast<double>(acc.suspect_links) /
                            static_cast<double>(total_links);
    if (fraction < options.switch_threshold) continue;
    blamed.insert(sw);
    out.switches.push_back({sw, acc.suspect_links, total_links,
                            acc.failed_rules});
  }
  std::sort(out.switches.begin(), out.switches.end(),
            [](const SwitchSuspect& x, const SwitchSuspect& y) {
              return x.suspect_links > y.suspect_links;
            });

  // Links incident to a blamed switch are subsumed by its diagnosis.
  for (const auto& [key, link] : links) {
    if (blamed.contains(link.a) || (link.b != 0 && blamed.contains(link.b))) {
      continue;
    }
    out.links.push_back(link);
  }
  std::sort(out.links.begin(), out.links.end(),
            [](const LinkDiagnosis& x, const LinkDiagnosis& y) {
              if (x.corroborated != y.corroborated) return x.corroborated;
              return x.fraction > y.fraction;
            });

  // Parsimony: a confirmed-suspect element already explains sub-threshold
  // probe loss on its endpoint switches — ingress-contaminated rules there
  // are not independent soft faults.
  if (options.contamination_filter && (!links.empty() || !blamed.empty())) {
    std::erase_if(out.isolated, [&](const IsolatedRuleFault& fault) {
      if (blamed.contains(fault.sw)) return true;
      for (const auto& [key, link] : links) {
        if (fault.sw == link.a || (link.b != 0 && fault.sw == link.b)) {
          return true;
        }
      }
      return false;
    });
  }

  std::sort(out.isolated.begin(), out.isolated.end(),
            [](const IsolatedRuleFault& x, const IsolatedRuleFault& y) {
              return x.sw != y.sw ? x.sw < y.sw : x.cookie < y.cookie;
            });
  return out;
}

}  // namespace monocle
