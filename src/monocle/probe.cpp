#include "monocle/probe.hpp"

#include <algorithm>

namespace monocle {

netbase::PackedBits strip_in_port(netbase::PackedBits header) {
  const auto& info = netbase::field_info(netbase::Field::InPort);
  for (int i = 0; i < info.width; ++i) {
    header.set(info.bit_offset + i, false);
  }
  return header;
}

namespace {
bool contains(const std::vector<Observation>& set, const Observation& obs) {
  return std::find(set.begin(), set.end(), obs) != set.end();
}
}  // namespace

std::uint32_t hash_prediction(const OutcomePrediction& prediction) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(prediction.kind));
  for (const Observation& o : prediction.observations) {
    mix(o.output_port);
    for (const auto word : o.header.w) mix(word);
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

Verdict classify_observation(const Probe& probe, const Observation& seen) {
  Observation canonical = seen;
  canonical.header = strip_in_port(canonical.header);
  const bool in_present = contains(probe.if_present.observations, canonical);
  const bool in_absent = contains(probe.if_absent.observations, canonical);
  if (in_present && !in_absent) return Verdict::kPresent;
  if (in_absent && !in_present) return Verdict::kAbsent;
  return Verdict::kInconclusive;
}

}  // namespace monocle
