// Shared SAT-encoding pieces of probe generation (paper §5.3, Appendix B).
//
// Both probe-generation front ends — the one-shot ProbeGenerator::generate
// and the table-session ProbeBatchSession — build the same Hit / Distinguish
// / Collect constraint structure; this header holds the pieces they share so
// the two paths cannot drift apart semantically:
//
//   * bit_var/bit_lit: the header-bit <-> SAT-variable correspondence;
//   * FixedBits: the tri-state map of bits pinned by unit constraints;
//   * restricted_cube: Matches(P, R) as a cube over the not-yet-fixed bits;
//   * DiffTerm / build_diff_term: the DiffOutcome term after constant
//     folding (Table 4), templated over the clause sink so it can write into
//     either a CnfFormula (one-shot path) or an incremental Solver (session
//     path);
//   * the unsupported-outcome test and the probed-slot-excluding lookup.
//
// Internal header: not part of the public monocle/ API surface.
#pragma once

#include <algorithm>
#include <cassert>
#include <vector>

#include "monocle/outcome_diff.hpp"
#include "netbase/packed_bits.hpp"
#include "openflow/flow_table.hpp"
#include "sat/cnf.hpp"

namespace monocle::probe_encoding {

using netbase::kHeaderBits;
using netbase::PackedBits;
using sat::Lit;

/// SAT variable for header bit `bit` (0-based): bit + 1.
constexpr Lit bit_var(int bit) { return bit + 1; }
constexpr Lit bit_lit(int bit, bool value) {
  return value ? bit_var(bit) : -bit_var(bit);
}

/// Tri-state map of header bits fixed by unit constraints (Hit + Collect).
/// Stored as (mask, value) PackedBits pairs so conflict tests and cube
/// restriction run word-parallel — they execute once per overlapping rule
/// per query and dominate the non-SAT share of generation time.
class FixedBits {
 public:
  /// Fixes `bit` to `value`; returns false on conflict with a prior fix.
  bool fix(int bit, bool value) {
    if (mask_.get(bit)) return value_.get(bit) == value;
    mask_.set(bit, true);
    value_.set(bit, value);
    return true;
  }

  /// Fixes every cared bit of `m`; returns false on any conflict.
  bool fix_match(const openflow::Match& m) {
    const PackedBits& care = m.care();
    const PackedBits& bits = m.bits();
    if (((care & mask_) & (bits ^ value_)).any()) return false;
    mask_ = mask_ | care;
    value_ = value_ | (bits & care);
    return true;
  }

  /// -1 unknown, else 0/1.
  [[nodiscard]] int value(int bit) const {
    if (!mask_.get(bit)) return -1;
    return value_.get(bit) ? 1 : 0;
  }

  [[nodiscard]] const PackedBits& mask() const { return mask_; }
  [[nodiscard]] const PackedBits& values() const { return value_; }

 private:
  PackedBits mask_;   // 1 = bit is fixed
  PackedBits value_;  // fixed value where mask_ is set (0 elsewhere)
};

/// Status of a match's cube relative to the fixed bits.
enum class CubeStatus {
  kImpossible,  ///< a cared bit conflicts with a fixed bit (Matches ≡ False)
  kOk,
};

/// Computes the cube of `m` restricted to bits not fixed by `fixed`.
/// `out` receives the positive cube literals (one per undetermined cared
/// bit); an empty cube means Matches is constant True given the fixed bits.
inline CubeStatus restricted_cube(const openflow::Match& m,
                                  const FixedBits& fixed,
                                  std::vector<Lit>& out) {
  out.clear();
  const PackedBits& care = m.care();
  const PackedBits& bits = m.bits();
  // Word-parallel conflict test: some cared bit is fixed to the other value.
  if (((care & fixed.mask()) & (bits ^ fixed.values())).any()) {
    return CubeStatus::kImpossible;
  }
  // Only the cared-but-unfixed bits contribute cube literals.
  netbase::for_each_set_bit(care & ~fixed.mask(), [&](int bit) {
    out.push_back(bit_lit(bit, bits.get(bit)));
  });
  return CubeStatus::kOk;
}

/// restricted_cube variant that appends the NEGATED cube — the body of a
/// "must not match m" Hit clause — to `out` without an intermediate vector.
/// Appends nothing when the cube is empty (Matches ≡ True: caller must treat
/// as shadowed) and reports kImpossible without touching `out`.
inline CubeStatus restricted_cube_negated(const openflow::Match& m,
                                          const FixedBits& fixed,
                                          std::vector<Lit>& out,
                                          bool* empty) {
  const PackedBits& care = m.care();
  const PackedBits& bits = m.bits();
  if (((care & fixed.mask()) & (bits ^ fixed.values())).any()) {
    return CubeStatus::kImpossible;
  }
  const PackedBits undetermined = care & ~fixed.mask();
  *empty = !undetermined.any();
  netbase::for_each_set_bit(undetermined, [&](int bit) {
    out.push_back(-bit_lit(bit, bits.get(bit)));
  });
  return CubeStatus::kOk;
}

/// A DiffOutcome term after constant folding.
struct DiffTerm {
  enum class Kind { kTrue, kFalse, kLits, kVar } kind = Kind::kFalse;
  std::vector<Lit> lits;  // kLits: inline disjunction
  Lit var = 0;            // kVar: Tseitin variable (∀-port DiffRewrite)
};

/// Adds clauses encoding `v -> (l1 | ... | ln)` to any sink exposing
/// new_var()/add_clause() (CnfFormula or the incremental sat::Solver).
template <typename Sink>
void sink_implies_clause(Sink& f, Lit v, const std::vector<Lit>& lits) {
  std::vector<Lit> clause;
  clause.reserve(lits.size() + 1);
  clause.push_back(-v);
  clause.insert(clause.end(), lits.begin(), lits.end());
  f.add_clause(clause);
}

/// Builds the DiffOutcome(P, probed, other) term (paper §3.4, Table 4,
/// Appendix B).  May allocate a Tseitin variable in `f` for the ∀-port case.
template <typename Sink>
DiffTerm build_diff_term(Sink& f, const openflow::Outcome& probed_out,
                         const openflow::Outcome& other_out,
                         const DiffOptions& opts) {
  const PortDiffResult pd = diff_ports(probed_out, other_out, opts);
  DiffTerm term;
  if (pd.ports_differ) {
    term.kind = DiffTerm::Kind::kTrue;
    return term;
  }
  if (pd.common_ports.empty()) {
    term.kind = DiffTerm::Kind::kFalse;  // e.g. two drop rules
    return term;
  }

  // DiffRewrite over the common ports.
  std::vector<std::vector<Lit>> port_lits;
  for (const std::uint16_t port : pd.common_ports) {
    const auto w1 = probed_out.rewrite_on_port(port);
    const auto w2 = other_out.rewrite_on_port(port);
    assert(w1 && w2);
    bool always = false;
    std::vector<Lit> lits;
    const PackedBits touched = w1->mask | w2->mask;
    netbase::for_each_set_bit(touched, [&](int bit) {
      switch (bit_rewrite_diff(*w1, *w2, bit)) {
        case BitDiffKind::kAlways:
          always = true;
          break;
        case BitDiffKind::kIfBitOne:
          lits.push_back(bit_var(bit));
          break;
        case BitDiffKind::kIfBitZero:
          lits.push_back(-bit_var(bit));
          break;
        case BitDiffKind::kNever:
          break;
      }
      return !always;
    });
    if (pd.quantifier == RewriteQuantifier::kExistsPort) {
      if (always) {
        term.kind = DiffTerm::Kind::kTrue;  // one always-differing port suffices
        return term;
      }
      // Accumulate into one big disjunction.
      port_lits.push_back(std::move(lits));
    } else {  // kForAllPort
      if (always) continue;  // this port always differs — satisfied
      if (lits.empty()) {
        term.kind = DiffTerm::Kind::kFalse;  // a port can never differ
        return term;
      }
      port_lits.push_back(std::move(lits));
    }
  }

  if (pd.quantifier == RewriteQuantifier::kExistsPort) {
    std::vector<Lit> all;
    for (auto& pl : port_lits) {
      all.insert(all.end(), pl.begin(), pl.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    if (all.empty()) {
      term.kind = DiffTerm::Kind::kFalse;
      return term;
    }
    term.kind = DiffTerm::Kind::kLits;
    term.lits = std::move(all);
    return term;
  }

  // ∀-port: conjunction of per-port disjunctions.
  if (port_lits.empty()) {
    term.kind = DiffTerm::Kind::kTrue;  // every common port always differs
    return term;
  }
  if (port_lits.size() == 1) {
    term.kind = DiffTerm::Kind::kLits;
    term.lits = std::move(port_lits.front());
    return term;
  }
  const Lit d = f.new_var();
  for (const auto& pl : port_lits) {
    sink_implies_clause(f, d, pl);  // d -> (port differs)
  }
  term.kind = DiffTerm::Kind::kVar;
  term.var = d;
  return term;
}

/// First rule in `table` matching `bits`, excluding the probed slot.
inline const openflow::Rule* lookup_excluding_slot(
    const openflow::FlowTable& table, const openflow::Rule& probed,
    const PackedBits& bits) {
  for (const openflow::Rule& r : table.rules()) {
    if (r.priority == probed.priority && r.match == probed.match) continue;
    if (r.match.matches(bits)) return &r;
  }
  return nullptr;
}

/// True if the rule's outcome uses ports the generator cannot model
/// (FLOOD/ALL expand to a switch-specific port set; TABLE re-enters lookup).
inline bool outcome_unsupported(const openflow::Outcome& oc) {
  for (const auto& [port, rewrite] : oc.emissions) {
    if (port == openflow::kPortFlood || port == openflow::kPortAll ||
        port == openflow::kPortTable) {
      return true;
    }
  }
  return false;
}

}  // namespace monocle::probe_encoding
