// Epoch-consistent per-shard monitoring snapshots (docs/DESIGN.md §15).
//
// A Checkpoint captures exactly the Monitor state a warm restart needs to
// resume monitoring without re-paying the SAT warm-up or re-raising verdicts
// the fleet already published:
//
//  * the verdict map (rule states + the failed set it implies),
//  * per-rule epoch floors and the monitor-wide channel barrier floor,
//  * the K-of-N suspect machine (probes left, strikes, backoff) so
//    in-flight suspicions resume instead of silently resetting,
//  * the probe-cache manifest — cookie, generation epoch AND the probe
//    itself (packet + both outcome predictions, all fixed-width fields), so
//    restore re-admits probes by deserialization and the only SAT work left
//    is for rules the journal tail proves changed after the snapshot,
//  * the shard's last-planned elastic budget (the BudgetScheduler's slot).
//
// Snapshots are taken at round-burst boundaries on the shard's owning
// worker, serialized through CheckpointWriter straight from live Monitor
// state into a reusable byte buffer (zero steady-state allocations — the
// hot-path contract the fig15 gate asserts), and persisted as one framed
// record in a telemetry::CheckpointStore segment.  decode() is the restore
// side: it materializes the Checkpoint struct the Monitor/Fleet rehydrate
// from; a short, torn or version-mismatched payload decodes to nullopt and
// the shard falls back to a cold start.
//
// Everything is serialized as native-endian u64 words (doubles via bit
// cast).  Checkpoints restore on the machine that wrote them — the same
// assumption the EventJournal's on-disk records already make.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "monocle/monitor.hpp"  // RuleState, SwitchId
#include "monocle/probe.hpp"
#include "netbase/time.hpp"
#include "openflow/table_version.hpp"

// NOTE: monitor.hpp must never include this header back (it forward-declares
// Checkpoint/CheckpointWriter instead) — the dependency arrow is
// checkpoint -> monitor.

namespace monocle {

struct Checkpoint {
  /// Bumped on any wire-format change; decode() rejects mismatches (a
  /// stale-format snapshot is a cold start, never a misread).
  static constexpr std::uint64_t kFormatVersion = 1;

  /// CheckpointStore key reserved for fleet-level state (budget carry,
  /// checkpoint cursor) — never a valid switch id.
  static constexpr std::uint64_t kFleetStateKey = ~std::uint64_t{0};

  SwitchId shard = 0;
  netbase::SimTime when = 0;        ///< Runtime::now() at the snapshot
  openflow::Epoch epoch = 0;        ///< table epoch the snapshot is consistent at
  openflow::Epoch epoch_floor = 0;  ///< monitor-wide channel barrier floor
  std::uint64_t budget = 0;         ///< last-planned elastic budget (0 = none)

  struct RuleVerdict {
    std::uint64_t cookie = 0;
    RuleState state = RuleState::kConfirmed;
  };
  std::vector<RuleVerdict> verdicts;

  struct RuleFloor {
    std::uint64_t cookie = 0;
    openflow::Epoch epoch = 0;
  };
  std::vector<RuleFloor> floors;

  struct SuspectState {
    std::uint64_t cookie = 0;
    std::int64_t probes_left = 0;
    std::int64_t strikes = 0;
    netbase::SimTime backoff = 0;
    netbase::SimTime since = 0;
  };
  std::vector<SuspectState> suspects;

  struct ManifestEntry {
    std::uint64_t cookie = 0;
    openflow::Epoch epoch = 0;  ///< table epoch the probe was generated at
    Probe probe;
  };
  std::vector<ManifestEntry> manifest;

  /// Decodes one snapshot payload (as produced by CheckpointWriter);
  /// nullopt on any structural violation — wrong version, truncated
  /// section, or count/length mismatch.
  static std::optional<Checkpoint> decode(std::span<const std::uint8_t> bytes);
};

/// Fleet-level state persisted under Checkpoint::kFleetStateKey.
struct FleetCheckpoint {
  static constexpr std::uint64_t kFormatVersion = 1;
  double budget_carry = 0.0;  ///< BudgetScheduler spend-conservation carry
  std::uint64_t rounds_started = 0;

  void encode_into(std::vector<std::uint8_t>& out) const;
  static std::optional<FleetCheckpoint> decode(
      std::span<const std::uint8_t> bytes);
};

/// Streams one shard snapshot into a caller-owned byte buffer, section by
/// section, straight from live Monitor state — no intermediate Checkpoint
/// object, no per-field allocation (the buffer's capacity is reused across
/// rounds).  Sections must be written in declaration order; counts are
/// back-patched by the end_*() calls so callers iterate their maps once.
class CheckpointWriter {
 public:
  /// Resets `out` (size 0, capacity kept) and writes the header.
  CheckpointWriter(std::vector<std::uint8_t>& out, SwitchId shard,
                   netbase::SimTime when, openflow::Epoch epoch,
                   openflow::Epoch epoch_floor, std::uint64_t budget);

  void begin_verdicts();
  void add_verdict(std::uint64_t cookie, RuleState state);
  void begin_floors();
  void add_floor(std::uint64_t cookie, openflow::Epoch epoch);
  void begin_suspects();
  void add_suspect(const Checkpoint::SuspectState& s);
  void begin_manifest();
  void add_manifest(std::uint64_t cookie, openflow::Epoch epoch,
                    const Probe& probe);

  /// Finishes the snapshot (back-patches the open section count).  The
  /// buffer passed at construction now holds the complete payload.
  void finish();

 private:
  void put(std::uint64_t word);
  void open_section();   // reserves the count word
  void close_section();  // back-patches it

  std::vector<std::uint8_t>& out_;
  std::size_t count_at_ = 0;  ///< byte offset of the open section's count
  std::uint64_t count_ = 0;
};

}  // namespace monocle
