// SAT-based probe generation — the paper's core contribution (§3, §5).
//
// Given the expected flow table, the rule under test and the downstream
// catching match, builds the Hit / Distinguish / Collect constraints of
// Table 1, encodes them to CNF (per §5.3 and Appendix B) and extracts a
// concrete probe packet from the SAT model.  Key implementation points:
//
//  * Overlap pre-filter (§5.4): rules that do not overlap the probed rule
//    are provably irrelevant and are dropped before encoding.
//  * Hit: unit clauses for the probed match, plus one ¬Matches clause per
//    overlapping higher-priority rule, *restricted* to bits the probed match
//    does not already fix (fixed bits cannot satisfy the clause).
//  * Distinguish: the priority chain over lower overlapping rules, encoded
//    with the asserted-true specialization of the Velev if-then-else scheme
//    (Appendix B): clause k is  (m_1 ∨ .. ∨ m_{k-1} ∨ ¬m_k ∨ d_k)  where the
//    m_j appear as one-directional Tseitin variables and d_k is the
//    DiffOutcome term (constant after DiffPorts evaluation, or a DiffRewrite
//    literal disjunction per Table 4).  Chains longer than
//    `Options::chain_split` are chunked through accumulator variables to
//    avoid the quadratic clause-size blowup the appendix warns about.
//  * Collect: unit clauses for the catching match.
//  * Limited domains (§5.2): in_port gets an explicit one-of constraint;
//    large-domain fields are fixed up afterwards via the spare-value lemma.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "monocle/outcome_diff.hpp"
#include "monocle/probe.hpp"
#include "netbase/domains.hpp"
#include "openflow/flow_table.hpp"

namespace monocle {

/// Why probe generation failed (§3.5's unmonitorable-rule taxonomy).
enum class ProbeFailure : std::uint8_t {
  kNone = 0,
  kShadowed,           ///< a higher-priority rule fully covers the probed rule
  kIndistinguishable,  ///< no lower rule / table-miss outcome can differ
  kUnsat,              ///< constraint system unsatisfiable (combination case)
  kNoSpareValue,       ///< spare-value substitution impossible (§5.2)
  kUnsupported,        ///< FLOOD/ALL outputs or rule rewrites the probe tag
  kEgress,             ///< probe would leave the network unobserved (§3.5)
  kInternalError,      ///< solution failed post-verification (a bug)
};

const char* probe_failure_name(ProbeFailure f);

/// Per-call statistics (drives Table 2 and the micro benchmarks).
struct ProbeGenStats {
  std::chrono::nanoseconds total{0};
  std::chrono::nanoseconds solve{0};
  std::size_t overlapping_higher = 0;
  std::size_t overlapping_lower = 0;
  int sat_vars = 0;
  std::size_t sat_clauses = 0;
  // Solver search effort for this call (batch mode reports per-query deltas).
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t learned_clauses = 0;
};

/// Inputs for one probe-generation call.
struct ProbeRequest {
  /// Expected switch state; MUST contain `probed` (same match & priority) and
  /// the catching rules.
  const openflow::FlowTable* table = nullptr;
  openflow::Rule probed;
  /// The Collect constraint: catch match of the downstream switches
  /// (strategy 1: probe-tag field = probed switch's color).
  openflow::Match collect;
  /// Valid ingress ports of the probed switch (small-domain constraint).
  /// Empty leaves in_port unconstrained.
  std::vector<std::uint16_t> in_ports;
  /// Table-miss behaviour (default: drop, as on most hardware).
  openflow::ActionList miss_actions;
  /// Optional precomputed §5.2 domain state for `table` (the used-EthType
  /// scan is O(table) per call otherwise); batch sessions cache one per
  /// table and pass it when delegating overlap-heavy rules.
  const netbase::DomainFixup* domains = nullptr;
};

struct ProbeGenResult {
  std::optional<Probe> probe;
  ProbeFailure failure = ProbeFailure::kNone;
  ProbeGenStats stats;

  [[nodiscard]] bool ok() const { return probe.has_value(); }
};

/// Probe generator.  Stateless between calls apart from options; safe to use
/// from multiple threads with distinct instances.
class ProbeGenerator {
 public:
  struct Options {
    bool overlap_filter = true;   ///< §5.4 optimization (ablation switch)
    int chain_split = 16;         ///< Distinguish-chain chunk size
    DiffOptions diff;             ///< taxonomy options (§3.4)
    bool verify_solutions = true; ///< re-check SAT models against the table
  };

  ProbeGenerator() = default;
  explicit ProbeGenerator(Options opts) : opts_(opts) {}

  /// Generates a probe for `req.probed`.
  [[nodiscard]] ProbeGenResult generate(const ProbeRequest& req) const;

  [[nodiscard]] const Options& options() const { return opts_; }

 private:
  Options opts_;
};

/// Builds the altered flow table used to probe a rule *modification*
/// (paper §4.1): lower-priority rules removed, the original version
/// re-inserted just below the new version.  `table` must contain the old
/// version.  Returns the altered table plus the rule to probe (the new
/// version, possibly with adjusted priority) — feed both to generate().
struct ModificationSpec {
  openflow::FlowTable altered;
  openflow::Rule probed;  // the new version
};
ModificationSpec make_modification_spec(const openflow::FlowTable& table,
                                        const openflow::Rule& old_version,
                                        const openflow::Rule& new_version);

/// Recomputes the two outcome predictions of `probe.packet` against `table`
/// and checks they are distinguishable; used as a post-solve sanity check and
/// by the property tests.  Returns false if the probe would not decide the
/// rule's presence.
bool verify_probe(const openflow::FlowTable& table, const openflow::Rule& probed,
                  const Probe& probe, const openflow::ActionList& miss_actions,
                  const DiffOptions& diff_opts = {});

/// Computes the outcome prediction of `rule` (or table-miss when nullptr)
/// applied to header `bits`; resolves IN_PORT outputs, strips ingress.
OutcomePrediction predict_outcome(const openflow::Rule* rule,
                                  const openflow::ActionList& miss_actions,
                                  const netbase::PackedBits& bits);

namespace detail {

/// Shared model→probe tail of both generation paths (one-shot and batch):
/// spare-value domain fix-up (§5.2), prediction computation and the optional
/// post-verification.  `model_bits` is the header assignment extracted from
/// the SAT model; on success `*out` is filled and kNone returned.
///
/// `overlaps` are the probed rule's overlap sets: a packet matching the
/// probed rule can only be matched by rules that overlap it, so the Hit
/// re-check and the absent-rule lookup walk the (small) overlap sets —
/// the flow table itself is not consulted, with a provably identical
/// result.
ProbeFailure finalize_probe(const openflow::Rule& probed,
                            const openflow::ActionList& miss_actions,
                            const ProbeGenerator::Options& opts,
                            const netbase::DomainFixup& domains,
                            const openflow::FlowTable::OverlapSets& overlaps,
                            const netbase::PackedBits& model_bits, Probe* out);

/// The used-EthType scan feeding finalize_probe's domain fix-up.
netbase::DomainFixup domain_fixup_for(const openflow::FlowTable& table);

}  // namespace detail

}  // namespace monocle
