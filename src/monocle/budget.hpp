// Elastic cost-aware probe budgets for fleet rounds (PR 9; fig14).
//
// The uniform scheduler spends Config::probes_per_switch on every
// co-scheduled switch, every round — so under churn the hot shards' steady
// coverage starves behind their confirmation backlog while idle shards burn
// the same budget re-verifying cold rules.  The BudgetScheduler keeps the
// GLOBAL spend conserved over a rotation (probes_per_switch × Σ round
// sizes, steered by a carry accumulator) while sizing each shard against
// the fleet-wide mean pressure, computed from observable signals:
//
//   * confirm backlog depth (pending dynamic updates),
//   * recent TableDelta rate (deltas applied since the shard's last plan),
//   * suspect/failed state, weighted up by NetworkEvidence confidence,
//   * per-rule staleness (time since the steady cycle last probed the
//     shard's stalest rule), capped so cold coverage is amortized rather
//     than allowed to monopolize the round (the max-staleness bound).
//
// Suspect shards come first, churn-heavy shards next; every scheduled shard
// keeps a floor budget and no shard exceeds the ceiling
// (probes_per_switch × ceiling_factor).  probes_per_switch is the fallback:
// a shard the scheduler has never planned gets exactly the uniform budget.
//
// The scheduler only SCALES the per-switch burst of switches the coloring
// already co-scheduled — it never adds a switch to a round, so the
// non-interference invariant of RoundSchedule is inherited unchanged
// (asserted by tests/fleet_test.cpp).  Planning runs on the Fleet's
// orchestration thread between rounds; the tiny mutex below only
// synchronizes the telemetry snapshot a scrape thread may take mid-plan.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "monocle/runtime.hpp"
#include "netbase/time.hpp"

namespace monocle {

struct BudgetOptions {
  /// Uniform per-switch budget: the fallback for unplanned shards, the
  /// per-round weight base (global budget = probes_per_switch × round size)
  /// and the ceiling base.
  std::size_t probes_per_switch = 4;
  /// Per-shard cap = probes_per_switch × ceiling_factor.
  std::size_t ceiling_factor = 4;
  /// Every scheduled shard keeps at least this much steady coverage.
  std::size_t floor_probes = 1;
  /// Weight per pending update confirmation (backlog depth).
  double backlog_weight = 1.0;
  /// Weight per TableDelta applied since the shard's previous plan.
  double churn_weight = 0.5;
  /// Weight per suspect/failed rule; NetworkEvidence switch confidence is
  /// added to the same term (suspicion is suspicion, however derived).
  double suspect_weight = 4.0;
  /// Weight per staleness quantum of the shard's stalest rule.
  double staleness_weight = 2.0;
  netbase::SimTime staleness_quantum = 150 * netbase::kMillisecond;
  /// Staleness contribution cap, in quanta: beyond this a shard's cold
  /// coverage is amortized across rounds instead of spiking the weight
  /// (the max-staleness bound of the tentpole).
  double max_staleness_quanta = 8.0;
};

/// One shard's pressure signals, sampled by the Fleet between rounds.
struct ShardPressure {
  std::size_t backlog = 0;            ///< Monitor::pending_update_count()
  std::uint64_t deltas_applied = 0;   ///< cumulative MonitorStats value
  std::size_t suspects = 0;           ///< Monitor::suspect_rule_count()
  std::size_t failed = 0;             ///< Monitor::failed_rule_count()
  double evidence_confidence = 0.0;   ///< NetworkEvidence::switch_confidence
  netbase::SimTime staleness = 0;     ///< Monitor::steady_staleness_max()
};

class BudgetScheduler {
 public:
  explicit BudgetScheduler(BudgetOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] const BudgetOptions& options() const { return opts_; }
  /// Replaces the options (before planning starts; the Fleet folds its
  /// probes_per_switch into the options here).
  void set_options(BudgetOptions opts) {
    std::lock_guard lock(mu_);
    opts_ = opts;
  }

  /// Ensures a slot for `sw` exists (idempotent).  Unplanned slots carry
  /// the uniform fallback budget.
  void register_shard(SwitchId sw);

  /// Recomputes the budgets of the round's shards from `pressure`
  /// (parallel to `round`).  Each shard's share is sized against the
  /// FLEET-WIDE mean weight (probes_per_switch × weight / mean_weight), so
  /// a pressured shard can exceed what its round-mates alone could cede —
  /// redistribution works across rounds, not just within one.  Per-round
  /// spend therefore varies, but a signed carry accumulator steers the
  /// cumulative spend back to probes_per_switch × Σ round sizes (exact
  /// over any window a few rotations long; the fig14 gate asserts ±5%).
  /// Per shard the clamp [floor_probes, probes_per_switch × ceiling_factor]
  /// still applies, and remainders go to the highest-pressure shards
  /// first.  Deterministic: equal weights tie-break on round position.
  void plan_round(const std::vector<SwitchId>& round,
                  const std::vector<ShardPressure>& pressure);

  /// The last planned budget for `sw`; probes_per_switch when the shard is
  /// unknown or was never part of a planned round.
  [[nodiscard]] std::size_t budget_for(SwitchId sw) const;

  /// --- observability (telemetry plane) ---------------------------------
  struct ShardView {
    SwitchId sw = 0;
    std::uint64_t budget = 0;        ///< last planned budget
    std::uint64_t backlog = 0;       ///< backlog depth at that plan
    std::uint64_t staleness_ns = 0;  ///< max rule staleness at that plan
  };
  /// Copies every registered shard's last-planned view (scrape-thread safe).
  void snapshot(std::vector<ShardView>& out) const;
  [[nodiscard]] std::uint64_t rounds_planned() const;
  /// Total probes assigned by the most recent plan.
  [[nodiscard]] std::uint64_t last_round_budget() const;

  /// --- warm-restart persistence (checkpoint.hpp; DESIGN.md §15) ---------
  /// The spend-conservation carry accumulator, exported into the fleet
  /// checkpoint so a restart resumes the steered cumulative spend instead
  /// of resetting the conservation window.
  [[nodiscard]] double carry() const;
  void set_carry(double carry);
  /// Seeds `sw`'s slot with a checkpointed budget (registering it if
  /// needed), so the first post-restore round spends what the pre-crash
  /// plan decided rather than snapping back to the uniform fallback.
  void seed_budget(SwitchId sw, std::uint64_t budget);

 private:
  struct Slot {
    std::uint64_t budget = 0;
    std::uint64_t backlog = 0;
    std::uint64_t staleness_ns = 0;
    std::uint64_t last_deltas = 0;  ///< deltas_applied at the previous plan
    double weight = 1.0;            ///< pressure weight at the previous plan
  };
  /// Slot for `sw`, creating it if needed.  Caller holds mu_.
  std::size_t slot_index(SwitchId sw);

  BudgetOptions opts_;
  mutable std::mutex mu_;
  std::unordered_map<SwitchId, std::size_t> index_;
  std::vector<SwitchId> ids_;  // parallel to slots_
  std::vector<Slot> slots_;
  std::vector<double> weights_;        // per-round scratch
  std::vector<std::size_t> budgets_;   // per-round scratch
  std::vector<std::size_t> rounds_;    // per-round scratch (slot indices)
  double weight_sum_all_ = 0.0;  ///< Σ slot weights (fleet-wide mean's top)
  double carry_ = 0.0;           ///< cumulative (nominal − assigned) spend
  std::uint64_t rounds_planned_ = 0;
  std::uint64_t last_round_budget_ = 0;
};

}  // namespace monocle
