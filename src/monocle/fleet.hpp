// Network-wide monitoring fleet: one Monitor shard per switch, orchestrated
// as a single system.
//
// The paper runs "one Monocle instance per switch" (§7) but leaves their
// coordination to the operator.  The Fleet closes that gap with three
// pieces:
//
//  * a coloring-driven probe scheduler (schedule.hpp): switches are
//    partitioned into non-interfering rounds via the same vertex-coloring
//    machinery that plans the catching rules (§6, §8.3.2), and the Fleet
//    rotates through the rounds on the Runtime timer service — rounds are
//    pipelined, i.e. round r+1 starts on the interval whether or not round
//    r's probes have all returned (per-probe timeouts stay per-Monitor);
//  * shared batch generation: shard warm-up runs each shard's
//    ProbeBatchSession::generate_all() pass on a fleet-wide worker pool
//    (one single-threaded session pipeline per shard at a time), so a
//    20-switch fabric warms up in parallel without oversubscribing;
//  * cross-switch failure localization (localizer.hpp): per-probe verdicts
//    accumulate in each shard's failed-rule set via the Multiplexer/
//    Catching path; on the first steady-state alarm the Fleet waits a
//    debounce interval for the failure pattern to fill in, then feeds every
//    shard's report plus NetworkView topology into localize_network() and
//    publishes a link/switch-level NetworkDiagnosis instead of raw per-rule
//    alarms.
//
// Lifecycle: add_shard() per switch, set_schedule() (or let start() fall
// back to the sequential baseline), then either start() for the
// self-scheduling pipeline or prepare() + start_round() to drive rounds
// manually (benches do this to time rounds).  stop()/remove_shard() cancel
// every pending timer — mid-round teardown leaves nothing dangling
// (tests/fleet_test.cpp).
//
// Multi-threaded rounds (Config::round_workers > 1): prepare() spins up a
// RoundEngine and start_round() fans each round's shard bursts out over N
// workers.  Shard affinity is the invariant that keeps this simple — a
// shard's Monitor, Runtime (timers) and arena are only ever touched on its
// owning worker (assignment: registration order % N), cross-worker effects
// travel through the mailbox, and stats are relaxed atomics read via
// stats_snapshot().  See docs/DESIGN.md §12 and tests/fleet_mt_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "monocle/budget.hpp"
#include "monocle/catching.hpp"
#include "monocle/crash_plan.hpp"
#include "monocle/evidence.hpp"
#include "monocle/localizer.hpp"
#include "monocle/monitor.hpp"
#include "monocle/multiplexer.hpp"
#include "monocle/round_engine.hpp"
#include "monocle/runtime.hpp"
#include "monocle/schedule.hpp"
#include "telemetry/hub.hpp"

namespace monocle {

namespace telemetry {
class CheckpointStore;  // checkpoint_store.hpp (fleet.cpp includes it)
}  // namespace telemetry

class Fleet {
 public:
  struct Config {
    /// Base per-shard configuration.  switch_id is set per shard;
    /// steady_probe_rate is forced to 0 (the Fleet paces probing) and
    /// batch_threads to 1 (the fleet-wide warm-up pool parallelizes across
    /// shards instead of within one).
    Monitor::Config monitor;
    /// Interval between successive probe rounds.
    netbase::SimTime round_interval = 10 * netbase::kMillisecond;
    /// Probes injected per co-scheduled switch per round (capped by the
    /// switch's monitorable-rule cycle).  With elastic_budget on this is
    /// the fallback/ceiling base of the BudgetScheduler instead of the
    /// uniform per-switch burst.
    std::size_t probes_per_switch = 4;
    /// Elastic cost-aware budgets (budget.hpp; docs/DESIGN.md §14): the
    /// round's global budget (probes_per_switch × round size) is re-divided
    /// across its shards each round from pressure signals — confirm
    /// backlog, delta rate, suspect/evidence state, rule staleness.  Off
    /// (default): every scheduled shard bursts exactly probes_per_switch,
    /// the uniform baseline fig14 compares against.
    bool elastic_budget = false;
    /// Weights/bounds of the elastic scheduler.  probes_per_switch above
    /// overrides BudgetOptions::probes_per_switch.
    BudgetOptions budget;
    /// Endurance maintenance cadence: every this-many rounds, start_round()
    /// checks shards for due live-session rebuilds and runs
    /// maintain_sessions() off the round path.  0 = manual only.
    std::size_t maintenance_interval_rounds = 64;
    /// Delay between prepare() and the first round of start(), so
    /// pre-installed catching rules provably reach the data plane.
    netbase::SimTime warmup = 200 * netbase::kMillisecond;
    /// Worker threads of the shared warm-up pool; 0 = hardware concurrency
    /// (capped by the shard count).
    int warmup_threads = 0;
    NetworkLocalizerOptions localizer;
    /// Settle time between the first shard alarm and the network-wide
    /// localization pass (lets a link failure fail all its rules first).
    netbase::SimTime localize_debounce = 300 * netbase::kMillisecond;
    /// Evidence-accumulated localization: instead of one boolean
    /// localize_network pass per debounce, the Fleet re-observes every
    /// evidence_interval while rules stay failed or suspicion persists,
    /// accumulates per-suspect confidence (evidence.hpp), and publishes a
    /// diagnosis only when it is confirmed — and again only when it
    /// CHANGES.  Off: the single-pass pipeline above (legacy behaviour).
    bool evidence_localization = false;
    EvidenceOptions evidence;
    netbase::SimTime evidence_interval = 100 * netbase::kMillisecond;
    /// TableDelta-driven churn exclusion: rules deltaed within this window
    /// — plus every in-flight update — are excluded from corroboration in
    /// diagnose()/evidence passes (localizer.hpp, SwitchFailureReport::
    /// excluded).  0 disables delta tracking (pending updates are still
    /// excluded).
    netbase::SimTime churn_exclusion = 500 * netbase::kMillisecond;
    /// Telemetry plane (docs/DESIGN.md §13).  When set, every shard gets a
    /// StatsRing from the hub (Monitor::publish_telemetry publishes one
    /// sample per round burst, on the owning worker) and the Fleet journals
    /// the shard event streams — confirmations, update failures, verdict
    /// transitions, channel state changes, applied TableDeltas — plus every
    /// published NetworkDiagnosis.  Must outlive the Fleet.  Null: off,
    /// zero overhead.
    telemetry::TelemetryHub* telemetry = nullptr;
    /// Crash-safety plane (checkpoint.hpp; docs/DESIGN.md §15).  When set,
    /// start_round() snapshots one round-member shard per round (round-robin
    /// cursor, so a fleet of N is fully re-covered every N scheduled
    /// appearances) plus the fleet-level record, through the reusable encode
    /// buffer — the steady cycle stays allocation-free with checkpointing
    /// on.  restore() warm-restarts from the store's latest valid snapshots.
    /// Must outlive the Fleet.  Null: off, zero overhead.
    telemetry::CheckpointStore* checkpoints = nullptr;
    /// Deterministic fault-injection schedule (crash_plan.hpp), consulted at
    /// every round boundary: kills stop the shard's Monitor, wedges skip its
    /// bursts, channel tears drive on_channel_state.  Test/bench harness
    /// only; the supervisor never reads it — faults must be DETECTED from
    /// heartbeats.  Must outlive the Fleet.  Null: no faults.
    CrashPlan* crash_plan = nullptr;
    /// Receives the NetworkDiagnosis of each (debounced) localization pass.
    std::function<void(const NetworkDiagnosis&)> on_diagnosis;
    /// Runs after remove_shard destroyed a shard, so the host can drop its
    /// own references to the dead Monitor (the Testbed unregisters it from
    /// the Multiplexer and rewires the switch's control sink).
    std::function<void(SwitchId)> on_shard_removed;
    /// Multi-threaded round driver (round_engine.hpp).  > 1 with a matching
    /// worker_runtimes vector turns on the N-worker engine: each shard is
    /// pinned to worker (registration order % round_workers), its Monitor
    /// runs on that worker's Runtime, and start_round() fans the round's
    /// bursts out across workers.  1 (default) is the single-threaded
    /// driver, byte-identical in classification behaviour — the parity and
    /// bench baseline.
    std::size_t round_workers = 1;
    /// One Runtime per worker (index = worker).  Each is driven ONLY from
    /// its worker (timer advancement via run_on_worker), which is what
    /// keeps Monitor timer state single-threaded.  Required (same size as
    /// round_workers) when round_workers > 1; ignored otherwise.
    std::vector<Runtime*> worker_runtimes;
  };

  /// Fleet-wide counters.  Plain integers, but every Fleet-side increment
  /// goes through a relaxed std::atomic_ref so shard callbacks running on
  /// the warm-up worker pool (or any future multi-threaded round driver)
  /// never take a lock — and never contend on the Multiplexer to report
  /// stats.  Readers on the orchestration thread read them plainly.
  struct Stats {
    std::uint64_t rounds_started = 0;
    std::uint64_t probes_injected = 0;
    std::uint64_t alarms = 0;     ///< shard alarms observed
    std::uint64_t diagnoses = 0;  ///< localization passes published
    std::uint64_t flow_mods_routed = 0;  ///< route_flow_mod deliveries
    std::uint64_t deltas_observed = 0;   ///< TableDeltas across all shards
    std::uint64_t evidence_passes = 0;   ///< evidence observe() passes run
    std::uint64_t session_rebuilds = 0;  ///< live sessions swapped (endurance)
  };

  Fleet(Config config, Runtime* runtime, const NetworkView* view,
        const CatchPlan* plan);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Creates and owns the Monitor shard for `sw`.  The shard's on_alarm
  /// hook is chained: the Fleet observes every alarm (for debounced
  /// localization) before forwarding to the hook given here.
  Monitor* add_shard(SwitchId sw, Monitor::Hooks hooks);

  /// Backend-aware shard creation: the shard's control-channel plumbing is
  /// wired through `backend` and `mux` (to_switch sends down the backend,
  /// probe injection goes through the Multiplexer, inbound messages and
  /// up/down transitions come back via Multiplexer::bind_backend), so the
  /// caller only supplies observer hooks (alarms, confirmations) in
  /// `hooks`.  The registrations this overload creates are torn down by
  /// the Fleet itself (remove_shard / destruction rebinds the backend
  /// monitor-less), so `backend` and `mux` must outlive the Fleet — or at
  /// least every remove_shard call for `sw`.
  Monitor* add_shard(SwitchId sw, channel::SwitchBackend& backend,
                     Multiplexer& mux, Monitor::Hooks hooks = {});

  /// Stops and destroys the shard for `sw` (cancels its timers; in-flight
  /// probes are forgotten).  Returns false when no such shard exists.
  bool remove_shard(SwitchId sw);

  [[nodiscard]] Monitor* monitor(SwitchId sw) const;
  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const std::map<SwitchId, std::unique_ptr<Monitor>>& shards()
      const {
    return shards_;
  }

  /// Installs the round schedule (see RoundSchedule::build).  Switches in
  /// the schedule without a shard are skipped at round time; shards missing
  /// from the schedule never probe.
  void set_schedule(RoundSchedule schedule);
  [[nodiscard]] const RoundSchedule& schedule() const { return schedule_; }

  /// Installs catching infrastructure on every shard, warms all probe
  /// caches through the shared worker pool, and marks shards externally
  /// paced.  Falls back to a sequential schedule when none was set.
  /// Idempotent; called by start().
  void prepare();

  /// prepare() + the self-scheduling round pipeline (first round after
  /// config.warmup, then one round per round_interval).
  void start();

  /// Cancels the round pipeline, any pending localization pass, and every
  /// shard's timers.  Terminal, like Monitor::stop().
  void stop();

  /// Manually starts the next round (cursor advances round-robin); returns
  /// the number of probes injected.  Benches use this to time rounds.
  std::size_t start_round();
  [[nodiscard]] std::size_t round_cursor() const { return cursor_; }

  /// Routes a controller FlowMod to the shard owning `sw` — the network-
  /// wide entry point of the per-switch delta streams.  Returns false when
  /// no shard owns the switch.  Every delta a shard applies (from this
  /// router or its own control channel) is observed by the Fleet (epoch
  /// tracking + deltas_observed) before the caller's on_delta hook runs.
  bool route_flow_mod(SwitchId sw, const openflow::FlowMod& fm,
                      std::uint32_t xid = 0);

  /// Current table epoch of a shard (0 when the switch is unmanaged).
  [[nodiscard]] openflow::Epoch shard_epoch(SwitchId sw) const;

  /// Runs the cross-switch localization pipeline over all shards now (one
  /// boolean pass; churn-excluded rules never enter corroboration).
  [[nodiscard]] NetworkDiagnosis diagnose() const;

  /// The evidence accumulator behind the debounced pipeline (read-only;
  /// meaningful when Config::evidence_localization is on).
  [[nodiscard]] const NetworkEvidence& evidence() const { return evidence_; }

  /// The elastic budget scheduler (read-only observability; meaningful when
  /// Config::elastic_budget is on — budget_for() returns the uniform
  /// fallback otherwise).
  [[nodiscard]] const BudgetScheduler& budgeter() const { return budgeter_; }

  /// Endurance maintenance, off the round path: rebuilds every due live
  /// batch session (Monitor::session_rebuild_due) across the fleet, fanned
  /// out over the warm-up worker pool when several shards are due.  Runs
  /// automatically every Config::maintenance_interval_rounds rounds;
  /// callable manually between rounds (orchestration thread only).
  /// Returns sessions swapped.
  std::size_t maintain_sessions();

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Consistent Stats read while a multi-worker round may be executing:
  /// quiesces the engine (every worker's relaxed increments happen-before
  /// the loads) and samples each field through an atomic_ref.  This is THE
  /// way a telemetry thread reads fleet counters — the plain stats()
  /// reference is only safe on the orchestration thread between rounds
  /// (regression: field-by-field reads under concurrent increments tore).
  [[nodiscard]] Stats stats_snapshot() const;

  // --- multi-worker driver surface (round_workers > 1) ------------------
  /// Workers the round driver runs (1 in single-threaded mode).
  [[nodiscard]] std::size_t worker_count() const {
    return multi_worker() ? config_.round_workers : 1;
  }
  /// The worker the NEXT add_shard call will pin its shard to — hosts that
  /// wire their own inject/timer plumbing read this before add_shard so
  /// their per-worker resources agree with the Fleet's assignment.
  [[nodiscard]] std::size_t next_shard_worker() const { return next_worker_; }
  /// Worker owning `sw`'s shard (0 when unmanaged or single-threaded).
  [[nodiscard]] std::size_t shard_worker(SwitchId sw) const;
  /// Runs `fn` on the given worker (blocking) — the only legal way to touch
  /// a shard's Monitor or advance its worker Runtime from outside once the
  /// engine runs.  Runs `fn` inline when the engine is absent/stopped.
  /// Cross-worker mailbox items produced by `fn` are drained before return.
  void run_on_worker(std::size_t worker, const std::function<void()>& fn);
  /// The engine, once prepare() created it (null before / single-threaded).
  /// Exposed for thread-safe mid-round teardown: RoundEngine::stop() may be
  /// called from any thread; Fleet methods themselves stay orchestration-
  /// thread-only.
  [[nodiscard]] RoundEngine* engine() const { return engine_.get(); }

  /// Pushes the fleet-wide Stats into the telemetry hub's exporter as
  /// external series (monocle_fleet_*).  No-op without Config::telemetry.
  /// Uses stats_snapshot(), so any thread may call it — ExportThread
  /// loop_tasks and scrape handlers typically do.
  void publish_telemetry();

  // --- crash-safe warm restart (docs/DESIGN.md §15) ---------------------
  /// What Fleet::restore() rehydrated.
  struct RestoreReport {
    std::size_t shards_restored = 0;  ///< shards warm-restored from snapshot
    std::size_t shards_cold = 0;      ///< no/invalid snapshot: cold start
    std::size_t verdicts_seeded = 0;
    std::size_t suspects_rearmed = 0;
    std::size_t manifest_admitted = 0;  ///< probes restored without SAT
    std::size_t manifest_dropped = 0;   ///< stale/orphaned manifest entries
    std::size_t tail_verdicts = 0;  ///< journal verdicts past the snapshots
    std::size_t tail_deltas = 0;    ///< journal deltas invalidating manifests
    bool fleet_state_restored = false;  ///< budget carry + round counter
  };

  /// Warm restart from Config::checkpoints: every shard with a valid latest
  /// snapshot is rehydrated (verdicts silently, suspects re-armed, manifest
  /// probes re-admitted so warm-up skips their SAT work), then the
  /// EventJournal tail is replayed PAST each snapshot's epoch — verdict
  /// records re-seed silently, delta records invalidate the affected
  /// manifest entries — and fleet-level state (budget carry, round counter)
  /// resumes.  The restore generation bump guarantees pre-restart in-flight
  /// probes classify as stale-epoch drops, never as failures.
  ///
  /// Call AFTER add_shard()+rule re-seeding (the expected tables must carry
  /// controller intent — the manifest is validated against them) and BEFORE
  /// prepare().  No-op report when Config::checkpoints is null.
  RestoreReport restore();

  // --- supervised shard recovery (docs/DESIGN.md §15) -------------------
  struct SupervisorOptions {
    /// Scheduled rounds a shard's burst counter may stall before it is
    /// declared wedged and quarantined.
    std::size_t missed_rounds = 3;
    /// Restore a quarantined shard from its checkpoint immediately (else
    /// the host calls restore_shard()).
    bool auto_restore = true;
    /// This many shards of ONE worker quarantined in the same sweep reads
    /// as a stuck WORKER: its shards are restored onto the next healthy
    /// worker (Monitor::rebind_runtime) instead of in place.
    std::size_t min_worker_shards_stuck = 2;
  };
  struct SupervisorStats {
    std::uint64_t heartbeats_missed = 0;  ///< shard-rounds without progress
    std::uint64_t quarantines = 0;
    std::uint64_t restores = 0;       ///< warm restores from checkpoint
    std::uint64_t cold_restores = 0;  ///< no valid snapshot: cold reset
    std::uint64_t readmissions = 0;   ///< shards back in the round rotation
    std::uint64_t worker_reassignments = 0;  ///< shards migrated off a worker
  };

  /// The per-shard watchdog: start_round() compares every scheduled shard's
  /// Monitor::burst_count() against the last round it ran — a shard that
  /// stops advancing for SupervisorOptions::missed_rounds scheduled rounds
  /// is quarantined (skipped by rounds, budget planning and checkpointing)
  /// and, with auto_restore, immediately restored from its latest
  /// checkpoint and re-admitted.  Re-admitted shards catch up through the
  /// BudgetScheduler's staleness pressure, not a special burst.
  struct Supervisor {
    SupervisorOptions options;
    SupervisorStats stats;
    bool enabled = false;
    std::map<SwitchId, std::uint32_t> last_burst;  ///< burst_count at last run
    std::map<SwitchId, std::size_t> missed;        ///< consecutive stalls
    std::unordered_set<SwitchId> quarantined;
  };

  // Two overloads instead of `SupervisorOptions opts = {}` (GCC 12 nested-
  // class NSDMI default-argument workaround, as elsewhere).
  void enable_supervision() { enable_supervision(SupervisorOptions{}); }
  void enable_supervision(SupervisorOptions opts);
  [[nodiscard]] const Supervisor& supervisor() const { return supervisor_; }
  [[nodiscard]] bool shard_quarantined(SwitchId sw) const {
    return supervisor_.quarantined.contains(sw);
  }

  /// Restores one quarantined (or wedged) shard: stop + reset on its owning
  /// worker, rehydrate from the latest checkpoint (cold reset when none
  /// survives), replay the journal tail, resume external pacing, re-admit
  /// into the round rotation.  `new_worker` (optional) migrates the shard
  /// to that worker first (stuck-worker recovery).  Returns false when the
  /// shard does not exist.  Orchestration thread, between rounds.
  bool restore_shard(SwitchId sw);
  bool restore_shard(SwitchId sw, std::size_t new_worker);

  /// Sum of outstanding (unresolved) probes across shards.
  [[nodiscard]] std::size_t outstanding_probes() const;
  /// Sum of currently-failed rules across shards.
  [[nodiscard]] std::size_t failed_rule_count() const;
  /// Sum of monitorable rules across shards.
  [[nodiscard]] std::size_t monitorable_rule_count() const;

 private:
  [[nodiscard]] bool multi_worker() const {
    return config_.round_workers > 1 && !config_.worker_runtimes.empty();
  }
  /// One cross-worker message.  Workers must not touch orchestration state
  /// (the localization timers live on the orchestration Runtime), so shard
  /// hooks that fire on a worker — alarms feeding debounced localization,
  /// deltas feeding the churn-exclusion window — enqueue here and the
  /// orchestration thread replays them in drain_mailbox() after the
  /// engine barrier.
  struct MailboxItem {
    enum class Kind : std::uint8_t { kAlarm, kDelta };
    Kind kind = Kind::kAlarm;
    SwitchId sw = 0;
    openflow::TableDelta delta;  // kDelta payload
  };
  void post_mailbox(MailboxItem item);
  /// Replays queued cross-worker messages on the orchestration thread.
  /// Called after every engine operation (rounds, run_on_worker, stop).
  void drain_mailbox();

  void warm_caches();
  /// Samples every round member's pressure signals and re-plans its budget
  /// (Config::elastic_budget).  Orchestration thread, between rounds — the
  /// engine barrier makes the shard reads race-free.
  void plan_budgets(const std::vector<SwitchId>& round);
  void schedule_next_round();
  void note_alarm();
  /// Records a shard's delta for the churn-exclusion window.
  void note_delta(SwitchId sw, const openflow::TableDelta& delta);
  /// Builds per-shard reports; `exclusions` (parallel to `reports`) owns
  /// the excluded-cookie sets for the duration of the localization call.
  void collect_reports(
      std::vector<SwitchFailureReport>& reports,
      std::vector<std::unordered_set<std::uint64_t>>& exclusions) const;
  void schedule_evidence_pass(netbase::SimTime delay);
  void run_evidence_pass();
  /// Applies Config::crash_plan's events for this round boundary: kills
  /// stop the Monitor on its worker, channel tears toggle on_channel_state.
  void apply_crash_plan(const std::vector<SwitchId>& round,
                        std::uint64_t round_index);
  /// True when the crash plan says `sw` is not executing this round.
  [[nodiscard]] bool crash_plan_blocks(SwitchId sw,
                                       std::uint64_t round_index) const;
  /// Heartbeat sweep over this round's scheduled shards; quarantines and
  /// (auto_restore) restores stalled ones.
  void supervise_round(const std::vector<SwitchId>& round);
  /// Snapshots one round member (round-robin) plus the fleet-level record
  /// into Config::checkpoints.
  void write_round_checkpoint(const std::vector<SwitchId>& round,
                              std::uint64_t round_index);
  /// What the EventJournal records about `sw` PAST a snapshot's epoch:
  /// post-snapshot deltas (their cookies invalidate manifest entries) and
  /// post-snapshot verdict transitions, in journal order.
  struct JournalTail {
    std::unordered_set<std::uint64_t> stale;
    std::vector<std::pair<std::uint64_t, RuleState>> verdicts;
  };
  void collect_journal_tail(SwitchId sw, openflow::Epoch epoch,
                            JournalTail& tail) const;
  /// Wires shard `sw` into Config::telemetry: attaches its StatsRing and
  /// wraps the (already Fleet-chained) hooks with journal recorders.  Runs
  /// once per add_shard, before any probing — the wrapped hooks then fire
  /// only on the shard's owning worker (journal appends are mutexed).
  void attach_telemetry(SwitchId sw, Monitor* mon);
  /// Journals every finding of a published diagnosis (kDiagnosis records).
  void journal_diagnosis(const NetworkDiagnosis& diag);

  Config config_;
  Runtime* runtime_;
  const NetworkView* view_;
  const CatchPlan* plan_;

  std::map<SwitchId, std::unique_ptr<Monitor>> shards_;
  /// Undoes what the backend add_shard overload registered on the
  /// Multiplexer/backend (they capture the raw Monitor*); run before the
  /// shard is destroyed so nothing dangles.
  std::map<SwitchId, std::function<void()>> shard_unbind_;
  RoundSchedule schedule_;
  std::size_t cursor_ = 0;
  bool prepared_ = false;
  bool running_ = false;
  // Zeroed on fire/cancel per the Runtime timer contract (runtime.hpp).
  std::uint64_t round_timer_ = 0;
  std::uint64_t diag_timer_ = 0;
  std::uint64_t evidence_timer_ = 0;
  NetworkEvidence evidence_;
  /// Signature of the last published evidence diagnosis — republish only on
  /// change, so a stable confirmed fault pages once, not per pass.
  std::vector<std::array<std::uint64_t, 4>> published_sig_;
  /// Per-shard recently-deltaed cookies, pruned past churn_exclusion.
  std::map<SwitchId, std::deque<std::pair<std::uint64_t, netbase::SimTime>>>
      recent_deltas_;
  Stats stats_;

  // Multi-worker driver state (round_workers > 1).
  std::unique_ptr<RoundEngine> engine_;  // created by prepare()
  /// Per-worker burst lists, repartitioned from the round's switches each
  /// start_round(); vectors keep their capacity, so the steady state
  /// allocates nothing.
  std::vector<std::vector<Monitor*>> round_work_;
  /// Per-worker budgets parallel to round_work_, filled at partition time
  /// so the preregistered round job reads them without any lookup or
  /// allocation (uniform mode fills probes_per_switch).
  std::vector<std::vector<std::size_t>> round_budget_;
  BudgetScheduler budgeter_;
  /// plan_budgets scratch (capacity kept across rounds).
  std::vector<SwitchId> budget_members_;
  std::vector<ShardPressure> pressure_;
  std::vector<BudgetScheduler::ShardView> budget_views_;  // scrape scratch
  std::size_t rounds_since_maintenance_ = 0;
  std::map<SwitchId, std::size_t> shard_worker_;  // registration order % N
  std::size_t next_worker_ = 0;
  /// Per-worker Multiplexer injection contexts for the backend add_shard
  /// overload's inject hooks (worker-local scratch/arena; multiplexer.hpp).
  std::vector<std::unique_ptr<Multiplexer::InjectContext>> inject_ctxs_;
  Multiplexer* mux_ = nullptr;  // for prepare()'s warm_routes()
  std::mutex mailbox_mu_;
  std::vector<MailboxItem> mailbox_;

  // Crash safety + supervision (docs/DESIGN.md §15).
  Supervisor supervisor_;
  /// Incremental checkpoint writer: round each shard was last snapshotted
  /// at (+1; absent = never).  Each round snapshots the least-recently
  /// covered member, which provably sweeps the whole fleet — a plain
  /// cursor mod round size can cycle over the same members when the
  /// rotation length divides the round count.  One node per shard,
  /// allocated on its first snapshot only (steady state stays alloc-free).
  std::map<SwitchId, std::uint64_t> checkpoint_age_;
  /// Reusable encode buffers (capacity kept: zero steady-state allocs).
  std::vector<std::uint8_t> checkpoint_buf_;
  std::vector<std::uint8_t> fleet_checkpoint_buf_;
  /// Shards the crash plan tore the channel of last round (edge detection).
  std::unordered_set<SwitchId> torn_channels_;
};

}  // namespace monocle
