#include "monocle/probe_generator.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "monocle/probe_encoding.hpp"
#include "netbase/packed_bits.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"

namespace monocle {

using netbase::AbstractPacket;
using netbase::Field;
using netbase::kHeaderBits;
using netbase::PackedBits;
using openflow::ActionList;
using openflow::FlowTable;
using openflow::Match;
using openflow::Outcome;
using openflow::Rule;
using sat::CnfFormula;
using sat::Lit;

using probe_encoding::bit_lit;
using probe_encoding::bit_var;
using probe_encoding::CubeStatus;
using probe_encoding::DiffTerm;
using probe_encoding::FixedBits;
using probe_encoding::restricted_cube;

const char* probe_failure_name(ProbeFailure f) {
  switch (f) {
    case ProbeFailure::kNone: return "none";
    case ProbeFailure::kShadowed: return "shadowed";
    case ProbeFailure::kIndistinguishable: return "indistinguishable";
    case ProbeFailure::kUnsat: return "unsat";
    case ProbeFailure::kNoSpareValue: return "no-spare-value";
    case ProbeFailure::kUnsupported: return "unsupported";
    case ProbeFailure::kEgress: return "egress";
    case ProbeFailure::kInternalError: return "internal-error";
  }
  return "?";
}

OutcomePrediction predict_outcome(const Rule* rule,
                                  const ActionList& miss_actions,
                                  const PackedBits& bits) {
  const Outcome oc =
      rule != nullptr ? rule->outcome() : openflow::compute_outcome(miss_actions);
  OutcomePrediction pred;
  pred.kind = oc.kind;
  const auto in_port = static_cast<std::uint16_t>(
      netbase::unpack_header(bits).get(Field::InPort));
  for (const auto& [port, rewrite] : oc.emissions) {
    Observation o;
    o.output_port = port == openflow::kPortInPort ? in_port : port;
    o.header = strip_in_port(rewrite.apply(bits));
    if (std::find(pred.observations.begin(), pred.observations.end(), o) ==
        pred.observations.end()) {
      pred.observations.push_back(std::move(o));
    }
  }
  return pred;
}

namespace {

/// Distinguishability of two *concrete* predictions — the semantic check
/// behind verify_probe; mirrors the §3.4 taxonomy with (port, header) pairs
/// as elements.
bool predictions_distinguishable(const OutcomePrediction& a,
                                 const OutcomePrediction& b,
                                 const DiffOptions& opts) {
  using openflow::ForwardKind;
  auto sorted = [](const OutcomePrediction& p) {
    auto v = p.observations;
    std::sort(v.begin(), v.end(), [](const Observation& x, const Observation& y) {
      if (x.output_port != y.output_port) return x.output_port < y.output_port;
      return x.header.w < y.header.w;
    });
    return v;
  };
  const auto sa = sorted(a);
  const auto sb = sorted(b);
  if (sa.empty() || sb.empty()) return sa.empty() != sb.empty();
  const ForwardKind ka =
      (a.kind == ForwardKind::kEcmp && sa.size() > 1) ? ForwardKind::kEcmp
                                                      : ForwardKind::kMulticast;
  const ForwardKind kb =
      (b.kind == ForwardKind::kEcmp && sb.size() > 1) ? ForwardKind::kEcmp
                                                      : ForwardKind::kMulticast;
  std::vector<Observation> inter;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter),
                        [](const Observation& x, const Observation& y) {
                          if (x.output_port != y.output_port) {
                            return x.output_port < y.output_port;
                          }
                          return x.header.w < y.header.w;
                        });
  if (ka == ForwardKind::kMulticast && kb == ForwardKind::kMulticast) {
    return sa != sb;
  }
  if (ka == ForwardKind::kEcmp && kb == ForwardKind::kEcmp) {
    return inter.empty();
  }
  const auto& mc = (ka == ForwardKind::kMulticast) ? sa : sb;
  const bool proper_subset = inter.size() == mc.size();
  if (!proper_subset) return true;  // mc \ ecmp != empty
  return opts.count_based_ecmp && mc.size() != 1;
}

}  // namespace

bool verify_probe(const FlowTable& table, const Rule& probed, const Probe& probe,
                  const ActionList& miss_actions, const DiffOptions& diff_opts) {
  const PackedBits bits = netbase::pack_header(probe.packet);
  // Hit: the probe matches the probed rule and no higher-priority rule.
  if (!probed.match.matches(bits)) return false;
  for (const Rule& r : table.rules()) {
    if (r.priority < probed.priority) break;
    if (r.priority == probed.priority && r.match == probed.match) continue;
    if (r.priority == probed.priority) {
      if (r.match.matches(bits)) return false;  // same-priority ambiguity
      continue;
    }
    if (r.match.matches(bits)) return false;
  }
  // Distinguish: present/absent predictions must be tellable apart.
  const OutcomePrediction present = predict_outcome(&probed, miss_actions, bits);
  const Rule* absent_rule =
      probe_encoding::lookup_excluding_slot(table, probed, bits);
  const OutcomePrediction absent =
      predict_outcome(absent_rule, miss_actions, bits);
  return predictions_distinguishable(present, absent, diff_opts);
}

namespace detail {

netbase::DomainFixup domain_fixup_for(const FlowTable& table) {
  netbase::DomainFixup domains = netbase::DomainFixup::openflow10_defaults();
  for (const Rule& r : table.rules()) {
    if (!r.match.is_wildcard(Field::EthType)) {
      domains.note_used(Field::EthType, r.match.value(Field::EthType));
    }
  }
  return domains;
}

namespace {

/// First rule matching `bits` among the overlap sets (descending priority,
/// table order) — equivalent to lookup_excluding_slot: any rule matching a
/// packet that matches the probed rule overlaps the probed rule, and the
/// probed slot itself is excluded from the sets by construction.
const Rule* first_overlap_match(const FlowTable::OverlapSets& overlaps,
                                const PackedBits& bits) {
  for (const Rule* r : overlaps.higher) {
    if (r->match.matches(bits)) return r;
  }
  for (const Rule* r : overlaps.lower) {
    if (r->match.matches(bits)) return r;
  }
  return nullptr;
}

}  // namespace

ProbeFailure finalize_probe(const Rule& probed, const ActionList& miss_actions,
                            const ProbeGenerator::Options& opts,
                            const netbase::DomainFixup& domains,
                            const FlowTable::OverlapSets& overlaps,
                            const PackedBits& model_bits, Probe* out) {
  // ---- Model -> abstract packet (§5.1–5.2) -----------------------------
  AbstractPacket packet = netbase::unpack_header(model_bits);

  // Limited-domain fix-up via the spare-value lemma (§5.2).  Fields fully
  // fixed by the constraints are valid by construction; only out-of-domain
  // leftovers are substituted.
  if (!domains.apply(packet)) {
    return ProbeFailure::kNoSpareValue;
  }
  packet = packet.normalized();

  // ---- Predictions + post-verification ---------------------------------
  const PackedBits final_bits = netbase::pack_header(packet);
  Probe probe;
  probe.packet = packet;
  probe.rule_cookie = probed.cookie;
  if (!probed.match.matches(final_bits)) {
    // The domain fix-up / normalization broke the Hit constraint: without a
    // probe-matches-probed guarantee the overlap-set shortcuts below do not
    // apply, and the probe is unusable anyway.
    return ProbeFailure::kInternalError;
  }
  probe.if_present = predict_outcome(&probed, miss_actions, final_bits);
  const Rule* absent_rule = first_overlap_match(overlaps, final_bits);
  probe.if_absent = predict_outcome(absent_rule, miss_actions, final_bits);

  if (opts.verify_solutions) {
    // Hit: no rule that would take precedence (higher priority, or equal
    // priority — undefined interaction) may match the probe.
    for (const Rule* r : overlaps.higher) {
      if (r->match.matches(final_bits)) return ProbeFailure::kInternalError;
    }
    // Distinguish: present/absent predictions must be tellable apart.
    if (!predictions_distinguishable(probe.if_present, probe.if_absent,
                                     opts.diff)) {
      return ProbeFailure::kInternalError;
    }
  }
  *out = std::move(probe);
  return ProbeFailure::kNone;
}

}  // namespace detail

ProbeGenResult ProbeGenerator::generate(const ProbeRequest& req) const {
  const auto t_start = std::chrono::steady_clock::now();
  ProbeGenResult result;
  auto finish = [&](ProbeFailure f) -> ProbeGenResult& {
    result.failure = f;
    result.stats.total = std::chrono::steady_clock::now() - t_start;
    return result;
  };

  assert(req.table != nullptr);
  const FlowTable& table = *req.table;
  const Rule& probed = req.probed;
  const Outcome probed_outcome = probed.outcome();

  if (probe_encoding::outcome_unsupported(probed_outcome)) {
    return finish(ProbeFailure::kUnsupported);
  }
  // The probed rule must not rewrite the probe-tag bits the Collect match
  // cares about (paper §3.2, last paragraph).
  for (const auto& [port, rewrite] : probed_outcome.emissions) {
    if ((rewrite.mask & req.collect.care()).any()) {
      return finish(ProbeFailure::kUnsupported);
    }
  }

  // ---- Overlap pre-filter (§5.4) -------------------------------------
  FlowTable::OverlapSets overlaps;
  if (opts_.overlap_filter) {
    overlaps = table.overlapping(probed);
  } else {
    // Ablation mode: consider every rule, partitioned by priority only.
    for (const Rule& r : table.rules()) {
      if (r.priority == probed.priority && r.match == probed.match) continue;
      if (r.priority >= probed.priority) {
        overlaps.higher.push_back(&r);
      } else {
        overlaps.lower.push_back(&r);
      }
    }
  }
  result.stats.overlapping_higher = overlaps.higher.size();
  result.stats.overlapping_lower = overlaps.lower.size();

  // ---- Fixed bits: Hit units + Collect units -------------------------
  CnfFormula f;
  f.reserve_vars(kHeaderBits);
  FixedBits fixed;
  {
    if (!fixed.fix_match(probed.match)) {
      return finish(ProbeFailure::kUnsat);
    }
    if (!fixed.fix_match(req.collect)) {
      // Probed rule matches inside the reserved probe-tag space.
      return finish(ProbeFailure::kUnsat);
    }
    netbase::for_each_set_bit(fixed.mask(), [&](int b) {
      f.add_unit(bit_lit(b, fixed.value(b) == 1));
    });
  }

  // ---- Hit: avoid overlapping higher-priority rules ------------------
  std::vector<Lit> cube;
  for (const Rule* r : overlaps.higher) {
    if (restricted_cube(r->match, fixed, cube) == CubeStatus::kImpossible) {
      continue;  // cannot match the probe anyway (possible w/o the pre-filter)
    }
    if (cube.empty()) {
      // Every packet hitting the probed rule also hits this higher rule.
      return finish(ProbeFailure::kShadowed);
    }
    f.begin_clause();
    for (const Lit l : cube) f.push_lit(-l);
    f.end_clause();
  }

  // ---- In-port limited domain (§5.2, small-domain remedy) -------------
  if (!req.in_ports.empty()) {
    const auto& info = netbase::field_info(Field::InPort);
    bool already_fixed = true;
    for (int i = 0; i < info.width; ++i) {
      if (fixed.value(info.bit_offset + i) == -1) already_fixed = false;
    }
    if (!already_fixed) {
      std::vector<std::uint64_t> values(req.in_ports.begin(),
                                        req.in_ports.end());
      sat::add_one_of_values(f, bit_var(info.bit_offset), info.width, values);
    }
  }

  // ---- Distinguish: priority chain over lower rules (§3.1, App. B) ----
  const openflow::ActionList& miss = req.miss_actions;
  bool chain_ended_with_const_true_match = false;
  bool any_const_false_diff = false;
  std::vector<Lit> prefix;  // "an earlier chain rule matched" literals
  auto emit_chain_clause = [&](const std::vector<Lit>& neg_cube,
                               const DiffTerm& diff) {
    // (prefix ∨ ¬m_k ∨ d_k); neg_cube holds the *positive* cube literals.
    f.begin_clause();
    for (const Lit l : prefix) f.push_lit(l);
    for (const Lit l : neg_cube) f.push_lit(-l);
    switch (diff.kind) {
      case DiffTerm::Kind::kTrue:
        f.abort_clause();  // trivially satisfied
        return;
      case DiffTerm::Kind::kFalse:
        break;
      case DiffTerm::Kind::kLits:
        for (const Lit l : diff.lits) f.push_lit(l);
        break;
      case DiffTerm::Kind::kVar:
        f.push_lit(diff.var);
        break;
    }
    f.end_clause();
  };

  for (const Rule* r : overlaps.lower) {
    if (restricted_cube(r->match, fixed, cube) == CubeStatus::kImpossible) {
      continue;  // e.g. the rule conflicts with the Collect tag bits
    }
    const DiffTerm diff = probe_encoding::build_diff_term(
        f, probed_outcome, r->outcome(), opts_.diff);
    if (diff.kind == DiffTerm::Kind::kFalse) any_const_false_diff = true;
    if (cube.empty()) {
      // m_k is constant True under Hit: this rule always matches the probe,
      // shielding everything below it (including table-miss).
      emit_chain_clause(cube, diff);
      chain_ended_with_const_true_match = true;
      break;
    }
    emit_chain_clause(cube, diff);
    // One-directional Tseitin: v_k -> Matches(P, R_k) (positive occurrences
    // only — see DESIGN.md).
    const Lit v = f.new_var();
    sat::add_implies_cube(f, v, cube);
    prefix.push_back(v);
    if (static_cast<int>(prefix.size()) >= opts_.chain_split) {
      // Chunk the prefix through an accumulator variable (Appendix B's
      // chain-splitting) to keep later clauses short.
      const Lit u = f.new_var();
      sat::add_implies_clause(f, u, prefix);
      prefix.clear();
      prefix.push_back(u);
    }
  }

  if (!chain_ended_with_const_true_match) {
    // Table-miss else-term.
    const DiffTerm diff = probe_encoding::build_diff_term(
        f, probed_outcome, openflow::compute_outcome(miss), opts_.diff);
    if (diff.kind == DiffTerm::Kind::kFalse) any_const_false_diff = true;
    if (diff.kind != DiffTerm::Kind::kTrue) {
      f.begin_clause();
      for (const Lit l : prefix) f.push_lit(l);
      if (diff.kind == DiffTerm::Kind::kLits) {
        for (const Lit l : diff.lits) f.push_lit(l);
      } else if (diff.kind == DiffTerm::Kind::kVar) {
        f.push_lit(diff.var);
      }
      if (prefix.empty() && diff.kind == DiffTerm::Kind::kFalse &&
          overlaps.lower.empty()) {
        f.abort_clause();
        return finish(ProbeFailure::kIndistinguishable);
      }
      f.end_clause();
    }
  }

  result.stats.sat_vars = f.num_vars();
  result.stats.sat_clauses = f.num_clauses();

  // ---- Solve -----------------------------------------------------------
  const auto t_solve = std::chrono::steady_clock::now();
  sat::Solver solver(f);
  const sat::SolveResult solved = solver.solve();
  result.stats.solve = std::chrono::steady_clock::now() - t_solve;
  result.stats.decisions = solver.stats().decisions;
  result.stats.propagations = solver.stats().propagations;
  result.stats.conflicts = solver.stats().conflicts;
  result.stats.learned_clauses = solver.stats().learned_clauses;
  if (solved != sat::SolveResult::kSat) {
    return finish(any_const_false_diff ? ProbeFailure::kIndistinguishable
                                       : ProbeFailure::kUnsat);
  }

  PackedBits bits;
  for (int b = 0; b < kHeaderBits; ++b) {
    bits.set(b, solver.model_value(bit_var(b)));
  }
  Probe probe;
  // Bind the caller's cached domain state by reference when provided (a
  // ternary would deep-copy it into a temporary).
  netbase::DomainFixup local_domains;
  const netbase::DomainFixup* domains = req.domains;
  if (domains == nullptr) {
    local_domains = detail::domain_fixup_for(table);
    domains = &local_domains;
  }
  const ProbeFailure tail = detail::finalize_probe(
      probed, miss, opts_, *domains, overlaps, bits, &probe);
  if (tail != ProbeFailure::kNone) {
    return finish(tail);
  }
  result.probe = std::move(probe);
  return finish(ProbeFailure::kNone);
}

ModificationSpec make_modification_spec(const FlowTable& table,
                                        const Rule& old_version,
                                        const Rule& new_version) {
  assert(old_version.match == new_version.match &&
         old_version.priority == new_version.priority);
  ModificationSpec spec;
  const std::uint16_t p = old_version.priority;
  const std::uint16_t new_p = (p == 0) ? 1 : p;
  const std::uint16_t old_p = (p == 0) ? 0 : p - 1;
  for (const Rule& r : table.rules()) {
    if (r.priority == p && r.match == old_version.match) continue;  // the slot
    if (r.priority > p || (p == 0 && r.priority > 0)) {
      spec.altered.add(r);
    } else if (r.priority == p) {
      spec.altered.add(r);  // equal-priority peers stay (conservative)
    }
    // Rules with strictly lower priority are dropped (§4.1): the probe will
    // always hit one of the two versions.
  }
  Rule probed = new_version;
  probed.priority = new_p;
  spec.altered.add(probed);
  Rule old_copy = old_version;
  old_copy.priority = old_p;
  if (old_copy.cookie == probed.cookie) {
    old_copy.cookie ^= 0x8000000000000000ull;
  }
  spec.altered.add(old_copy);
  spec.probed = probed;
  return spec;
}

}  // namespace monocle
