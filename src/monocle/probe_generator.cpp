#include "monocle/probe_generator.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

#include "netbase/packed_bits.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"

namespace monocle {

using netbase::AbstractPacket;
using netbase::Field;
using netbase::kHeaderBits;
using netbase::PackedBits;
using openflow::ActionList;
using openflow::FlowTable;
using openflow::Match;
using openflow::Outcome;
using openflow::Rule;
using sat::CnfFormula;
using sat::Lit;

namespace {

/// SAT variable for header bit `bit` (0-based): bit + 1.
constexpr Lit bit_var(int bit) { return bit + 1; }
constexpr Lit bit_lit(int bit, bool value) {
  return value ? bit_var(bit) : -bit_var(bit);
}

/// Tri-state map of header bits fixed by unit clauses (Hit + Collect).
class FixedBits {
 public:
  FixedBits() { fixed_.fill(-1); }

  /// Fixes `bit` to `value`; returns false on conflict with a prior fix.
  bool fix(int bit, bool value) {
    const std::int8_t want = value ? 1 : 0;
    if (fixed_[static_cast<std::size_t>(bit)] == -1) {
      fixed_[static_cast<std::size_t>(bit)] = want;
      return true;
    }
    return fixed_[static_cast<std::size_t>(bit)] == want;
  }

  /// -1 unknown, else 0/1.
  [[nodiscard]] int value(int bit) const {
    return fixed_[static_cast<std::size_t>(bit)];
  }

 private:
  std::array<std::int8_t, kHeaderBits> fixed_;
};

/// Status of a match's cube relative to the fixed bits.
enum class CubeStatus {
  kImpossible,  ///< a cared bit conflicts with a fixed bit (Matches ≡ False)
  kOk,
};

/// Computes the cube of `m` restricted to bits not fixed by `fixed`.
/// `out` receives the positive cube literals (one per undetermined cared
/// bit); an empty cube means Matches is constant True given the fixed bits.
CubeStatus restricted_cube(const Match& m, const FixedBits& fixed,
                           std::vector<Lit>& out) {
  out.clear();
  const PackedBits& care = m.care();
  const PackedBits& bits = m.bits();
  for (int w = 0; w < netbase::kHeaderWords; ++w) {
    std::uint64_t cw = care.w[static_cast<std::size_t>(w)];
    while (cw != 0) {
      const int lz = std::countl_zero(cw);
      const int bit = w * 64 + lz;
      cw &= ~(std::uint64_t{1} << (63 - lz));
      const bool want = bits.get(bit);
      const int fv = fixed.value(bit);
      if (fv == -1) {
        out.push_back(bit_lit(bit, want));
      } else if ((fv == 1) != want) {
        return CubeStatus::kImpossible;
      }
      // else: fixed to the same value — trivially satisfied, omit.
    }
  }
  return CubeStatus::kOk;
}

/// A DiffOutcome term after constant folding.
struct DiffTerm {
  enum class Kind { kTrue, kFalse, kLits, kVar } kind = Kind::kFalse;
  std::vector<Lit> lits;  // kLits: inline disjunction
  Lit var = 0;            // kVar: Tseitin variable (∀-port DiffRewrite)
};

/// Builds the DiffOutcome(P, probed, other) term (paper §3.4, Table 4,
/// Appendix B).  May allocate a Tseitin variable in `f` for the ∀-port case.
DiffTerm build_diff_term(CnfFormula& f, const Outcome& probed_out,
                         const Outcome& other_out, const DiffOptions& opts) {
  const PortDiffResult pd = diff_ports(probed_out, other_out, opts);
  DiffTerm term;
  if (pd.ports_differ) {
    term.kind = DiffTerm::Kind::kTrue;
    return term;
  }
  if (pd.common_ports.empty()) {
    term.kind = DiffTerm::Kind::kFalse;  // e.g. two drop rules
    return term;
  }

  // DiffRewrite over the common ports.
  std::vector<std::vector<Lit>> port_lits;
  for (const std::uint16_t port : pd.common_ports) {
    const auto w1 = probed_out.rewrite_on_port(port);
    const auto w2 = other_out.rewrite_on_port(port);
    assert(w1 && w2);
    bool always = false;
    std::vector<Lit> lits;
    const PackedBits touched = w1->mask | w2->mask;
    for (int w = 0; w < netbase::kHeaderWords; ++w) {
      std::uint64_t tw = touched.w[static_cast<std::size_t>(w)];
      while (tw != 0) {
        const int lz = std::countl_zero(tw);
        const int bit = w * 64 + lz;
        tw &= ~(std::uint64_t{1} << (63 - lz));
        switch (bit_rewrite_diff(*w1, *w2, bit)) {
          case BitDiffKind::kAlways:
            always = true;
            break;
          case BitDiffKind::kIfBitOne:
            lits.push_back(bit_var(bit));
            break;
          case BitDiffKind::kIfBitZero:
            lits.push_back(-bit_var(bit));
            break;
          case BitDiffKind::kNever:
            break;
        }
        if (always) break;
      }
      if (always) break;
    }
    if (pd.quantifier == RewriteQuantifier::kExistsPort) {
      if (always) {
        term.kind = DiffTerm::Kind::kTrue;  // one always-differing port suffices
        return term;
      }
      // Accumulate into one big disjunction.
      port_lits.push_back(std::move(lits));
    } else {  // kForAllPort
      if (always) continue;  // this port always differs — satisfied
      if (lits.empty()) {
        term.kind = DiffTerm::Kind::kFalse;  // a port can never differ
        return term;
      }
      port_lits.push_back(std::move(lits));
    }
  }

  if (pd.quantifier == RewriteQuantifier::kExistsPort) {
    std::vector<Lit> all;
    for (auto& pl : port_lits) {
      all.insert(all.end(), pl.begin(), pl.end());
    }
    std::sort(all.begin(), all.end());
    all.erase(std::unique(all.begin(), all.end()), all.end());
    if (all.empty()) {
      term.kind = DiffTerm::Kind::kFalse;
      return term;
    }
    term.kind = DiffTerm::Kind::kLits;
    term.lits = std::move(all);
    return term;
  }

  // ∀-port: conjunction of per-port disjunctions.
  if (port_lits.empty()) {
    term.kind = DiffTerm::Kind::kTrue;  // every common port always differs
    return term;
  }
  if (port_lits.size() == 1) {
    term.kind = DiffTerm::Kind::kLits;
    term.lits = std::move(port_lits.front());
    return term;
  }
  const Lit d = f.new_var();
  for (const auto& pl : port_lits) {
    sat::add_implies_clause(f, d, pl);  // d -> (port differs)
  }
  term.kind = DiffTerm::Kind::kVar;
  term.var = d;
  return term;
}

/// First rule in `table` matching `bits`, excluding the probed slot.
const Rule* lookup_excluding_slot(const FlowTable& table, const Rule& probed,
                                  const PackedBits& bits) {
  for (const Rule& r : table.rules()) {
    if (r.priority == probed.priority && r.match == probed.match) continue;
    if (r.match.matches(bits)) return &r;
  }
  return nullptr;
}

/// True if the rule's outcome uses ports the generator cannot model
/// (FLOOD/ALL expand to a switch-specific port set; TABLE re-enters lookup).
bool outcome_unsupported(const Outcome& oc) {
  for (const auto& [port, rewrite] : oc.emissions) {
    if (port == openflow::kPortFlood || port == openflow::kPortAll ||
        port == openflow::kPortTable) {
      return true;
    }
  }
  return false;
}

}  // namespace

const char* probe_failure_name(ProbeFailure f) {
  switch (f) {
    case ProbeFailure::kNone: return "none";
    case ProbeFailure::kShadowed: return "shadowed";
    case ProbeFailure::kIndistinguishable: return "indistinguishable";
    case ProbeFailure::kUnsat: return "unsat";
    case ProbeFailure::kNoSpareValue: return "no-spare-value";
    case ProbeFailure::kUnsupported: return "unsupported";
    case ProbeFailure::kEgress: return "egress";
    case ProbeFailure::kInternalError: return "internal-error";
  }
  return "?";
}

OutcomePrediction predict_outcome(const Rule* rule,
                                  const ActionList& miss_actions,
                                  const PackedBits& bits) {
  const Outcome oc =
      rule != nullptr ? rule->outcome() : openflow::compute_outcome(miss_actions);
  OutcomePrediction pred;
  pred.kind = oc.kind;
  const auto in_port = static_cast<std::uint16_t>(
      netbase::unpack_header(bits).get(Field::InPort));
  for (const auto& [port, rewrite] : oc.emissions) {
    Observation o;
    o.output_port = port == openflow::kPortInPort ? in_port : port;
    o.header = strip_in_port(rewrite.apply(bits));
    if (std::find(pred.observations.begin(), pred.observations.end(), o) ==
        pred.observations.end()) {
      pred.observations.push_back(std::move(o));
    }
  }
  return pred;
}

namespace {

/// Distinguishability of two *concrete* predictions — the semantic check
/// behind verify_probe; mirrors the §3.4 taxonomy with (port, header) pairs
/// as elements.
bool predictions_distinguishable(const OutcomePrediction& a,
                                 const OutcomePrediction& b,
                                 const DiffOptions& opts) {
  using openflow::ForwardKind;
  auto sorted = [](const OutcomePrediction& p) {
    auto v = p.observations;
    std::sort(v.begin(), v.end(), [](const Observation& x, const Observation& y) {
      if (x.output_port != y.output_port) return x.output_port < y.output_port;
      return x.header.w < y.header.w;
    });
    return v;
  };
  const auto sa = sorted(a);
  const auto sb = sorted(b);
  if (sa.empty() || sb.empty()) return sa.empty() != sb.empty();
  const ForwardKind ka =
      (a.kind == ForwardKind::kEcmp && sa.size() > 1) ? ForwardKind::kEcmp
                                                      : ForwardKind::kMulticast;
  const ForwardKind kb =
      (b.kind == ForwardKind::kEcmp && sb.size() > 1) ? ForwardKind::kEcmp
                                                      : ForwardKind::kMulticast;
  std::vector<Observation> inter;
  std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(inter),
                        [](const Observation& x, const Observation& y) {
                          if (x.output_port != y.output_port) {
                            return x.output_port < y.output_port;
                          }
                          return x.header.w < y.header.w;
                        });
  if (ka == ForwardKind::kMulticast && kb == ForwardKind::kMulticast) {
    return sa != sb;
  }
  if (ka == ForwardKind::kEcmp && kb == ForwardKind::kEcmp) {
    return inter.empty();
  }
  const auto& mc = (ka == ForwardKind::kMulticast) ? sa : sb;
  const bool proper_subset = inter.size() == mc.size();
  if (!proper_subset) return true;  // mc \ ecmp != empty
  return opts.count_based_ecmp && mc.size() != 1;
}

}  // namespace

bool verify_probe(const FlowTable& table, const Rule& probed, const Probe& probe,
                  const ActionList& miss_actions, const DiffOptions& diff_opts) {
  const PackedBits bits = netbase::pack_header(probe.packet);
  // Hit: the probe matches the probed rule and no higher-priority rule.
  if (!probed.match.matches(bits)) return false;
  for (const Rule& r : table.rules()) {
    if (r.priority < probed.priority) break;
    if (r.priority == probed.priority && r.match == probed.match) continue;
    if (r.priority == probed.priority) {
      if (r.match.matches(bits)) return false;  // same-priority ambiguity
      continue;
    }
    if (r.match.matches(bits)) return false;
  }
  // Distinguish: present/absent predictions must be tellable apart.
  const OutcomePrediction present = predict_outcome(&probed, miss_actions, bits);
  const Rule* absent_rule = lookup_excluding_slot(table, probed, bits);
  const OutcomePrediction absent =
      predict_outcome(absent_rule, miss_actions, bits);
  return predictions_distinguishable(present, absent, diff_opts);
}

ProbeGenResult ProbeGenerator::generate(const ProbeRequest& req) const {
  const auto t_start = std::chrono::steady_clock::now();
  ProbeGenResult result;
  auto finish = [&](ProbeFailure f) -> ProbeGenResult& {
    result.failure = f;
    result.stats.total = std::chrono::steady_clock::now() - t_start;
    return result;
  };

  assert(req.table != nullptr);
  const FlowTable& table = *req.table;
  const Rule& probed = req.probed;
  const Outcome probed_outcome = probed.outcome();

  if (outcome_unsupported(probed_outcome)) {
    return finish(ProbeFailure::kUnsupported);
  }
  // The probed rule must not rewrite the probe-tag bits the Collect match
  // cares about (paper §3.2, last paragraph).
  for (const auto& [port, rewrite] : probed_outcome.emissions) {
    if ((rewrite.mask & req.collect.care()).any()) {
      return finish(ProbeFailure::kUnsupported);
    }
  }

  // ---- Overlap pre-filter (§5.4) -------------------------------------
  FlowTable::OverlapSets overlaps;
  if (opts_.overlap_filter) {
    overlaps = table.overlapping(probed);
  } else {
    // Ablation mode: consider every rule, partitioned by priority only.
    for (const Rule& r : table.rules()) {
      if (r.priority == probed.priority && r.match == probed.match) continue;
      if (r.priority >= probed.priority) {
        overlaps.higher.push_back(&r);
      } else {
        overlaps.lower.push_back(&r);
      }
    }
  }
  result.stats.overlapping_higher = overlaps.higher.size();
  result.stats.overlapping_lower = overlaps.lower.size();

  // ---- Fixed bits: Hit units + Collect units -------------------------
  CnfFormula f;
  f.reserve_vars(kHeaderBits);
  FixedBits fixed;
  {
    const PackedBits& care = probed.match.care();
    const PackedBits& bits = probed.match.bits();
    for (int b = 0; b < kHeaderBits; ++b) {
      if (care.get(b) && !fixed.fix(b, bits.get(b))) {
        return finish(ProbeFailure::kUnsat);
      }
    }
    const PackedBits& ccare = req.collect.care();
    const PackedBits& cbits = req.collect.bits();
    for (int b = 0; b < kHeaderBits; ++b) {
      if (ccare.get(b) && !fixed.fix(b, cbits.get(b))) {
        // Probed rule matches inside the reserved probe-tag space.
        return finish(ProbeFailure::kUnsat);
      }
    }
    for (int b = 0; b < kHeaderBits; ++b) {
      if (fixed.value(b) != -1) f.add_unit(bit_lit(b, fixed.value(b) == 1));
    }
  }

  // ---- Hit: avoid overlapping higher-priority rules ------------------
  std::vector<Lit> cube;
  for (const Rule* r : overlaps.higher) {
    if (restricted_cube(r->match, fixed, cube) == CubeStatus::kImpossible) {
      continue;  // cannot match the probe anyway (possible w/o the pre-filter)
    }
    if (cube.empty()) {
      // Every packet hitting the probed rule also hits this higher rule.
      return finish(ProbeFailure::kShadowed);
    }
    f.begin_clause();
    for (const Lit l : cube) f.push_lit(-l);
    f.end_clause();
  }

  // ---- In-port limited domain (§5.2, small-domain remedy) -------------
  if (!req.in_ports.empty()) {
    const auto& info = netbase::field_info(Field::InPort);
    bool already_fixed = true;
    for (int i = 0; i < info.width; ++i) {
      if (fixed.value(info.bit_offset + i) == -1) already_fixed = false;
    }
    if (!already_fixed) {
      std::vector<std::uint64_t> values(req.in_ports.begin(),
                                        req.in_ports.end());
      sat::add_one_of_values(f, bit_var(info.bit_offset), info.width, values);
    }
  }

  // ---- Distinguish: priority chain over lower rules (§3.1, App. B) ----
  const openflow::ActionList& miss = req.miss_actions;
  bool chain_ended_with_const_true_match = false;
  bool any_const_false_diff = false;
  std::vector<Lit> prefix;  // "an earlier chain rule matched" literals
  auto emit_chain_clause = [&](const std::vector<Lit>& neg_cube,
                               const DiffTerm& diff) {
    // (prefix ∨ ¬m_k ∨ d_k); neg_cube holds the *positive* cube literals.
    f.begin_clause();
    for (const Lit l : prefix) f.push_lit(l);
    for (const Lit l : neg_cube) f.push_lit(-l);
    switch (diff.kind) {
      case DiffTerm::Kind::kTrue:
        f.abort_clause();  // trivially satisfied
        return;
      case DiffTerm::Kind::kFalse:
        break;
      case DiffTerm::Kind::kLits:
        for (const Lit l : diff.lits) f.push_lit(l);
        break;
      case DiffTerm::Kind::kVar:
        f.push_lit(diff.var);
        break;
    }
    f.end_clause();
  };

  for (const Rule* r : overlaps.lower) {
    if (restricted_cube(r->match, fixed, cube) == CubeStatus::kImpossible) {
      continue;  // e.g. the rule conflicts with the Collect tag bits
    }
    const DiffTerm diff = build_diff_term(f, probed_outcome, r->outcome(),
                                          opts_.diff);
    if (diff.kind == DiffTerm::Kind::kFalse) any_const_false_diff = true;
    if (cube.empty()) {
      // m_k is constant True under Hit: this rule always matches the probe,
      // shielding everything below it (including table-miss).
      emit_chain_clause(cube, diff);
      chain_ended_with_const_true_match = true;
      break;
    }
    emit_chain_clause(cube, diff);
    // One-directional Tseitin: v_k -> Matches(P, R_k) (positive occurrences
    // only — see DESIGN.md).
    const Lit v = f.new_var();
    sat::add_implies_cube(f, v, cube);
    prefix.push_back(v);
    if (static_cast<int>(prefix.size()) >= opts_.chain_split) {
      // Chunk the prefix through an accumulator variable (Appendix B's
      // chain-splitting) to keep later clauses short.
      const Lit u = f.new_var();
      sat::add_implies_clause(f, u, prefix);
      prefix.clear();
      prefix.push_back(u);
    }
  }

  if (!chain_ended_with_const_true_match) {
    // Table-miss else-term.
    const DiffTerm diff = build_diff_term(
        f, probed_outcome, openflow::compute_outcome(miss), opts_.diff);
    if (diff.kind == DiffTerm::Kind::kFalse) any_const_false_diff = true;
    if (diff.kind != DiffTerm::Kind::kTrue) {
      f.begin_clause();
      for (const Lit l : prefix) f.push_lit(l);
      if (diff.kind == DiffTerm::Kind::kLits) {
        for (const Lit l : diff.lits) f.push_lit(l);
      } else if (diff.kind == DiffTerm::Kind::kVar) {
        f.push_lit(diff.var);
      }
      if (prefix.empty() && diff.kind == DiffTerm::Kind::kFalse &&
          overlaps.lower.empty()) {
        f.abort_clause();
        return finish(ProbeFailure::kIndistinguishable);
      }
      f.end_clause();
    }
  }

  result.stats.sat_vars = f.num_vars();
  result.stats.sat_clauses = f.num_clauses();

  // ---- Solve -----------------------------------------------------------
  const auto t_solve = std::chrono::steady_clock::now();
  const sat::SolveOutcome solved = sat::solve_formula(f);
  result.stats.solve = std::chrono::steady_clock::now() - t_solve;
  if (solved.result != sat::SolveResult::kSat) {
    return finish(any_const_false_diff ? ProbeFailure::kIndistinguishable
                                       : ProbeFailure::kUnsat);
  }

  // ---- Model -> abstract packet (§5.1–5.2) -----------------------------
  PackedBits bits;
  for (int b = 0; b < kHeaderBits; ++b) {
    bits.set(b, solved.model[static_cast<std::size_t>(bit_var(b))]);
  }
  AbstractPacket packet = netbase::unpack_header(bits);

  // Limited-domain fix-up via the spare-value lemma (§5.2).  Fields fully
  // fixed by the constraints are valid by construction; only out-of-domain
  // leftovers are substituted.
  netbase::DomainFixup domains = netbase::DomainFixup::openflow10_defaults();
  for (const Rule& r : table.rules()) {
    if (!r.match.is_wildcard(Field::EthType)) {
      domains.note_used(Field::EthType, r.match.value(Field::EthType));
    }
  }
  if (!domains.apply(packet)) {
    return finish(ProbeFailure::kNoSpareValue);
  }
  packet = packet.normalized();

  // ---- Predictions + post-verification ---------------------------------
  const PackedBits final_bits = netbase::pack_header(packet);
  Probe probe;
  probe.packet = packet;
  probe.rule_cookie = probed.cookie;
  probe.if_present = predict_outcome(&probed, miss, final_bits);
  const Rule* absent_rule = lookup_excluding_slot(table, probed, final_bits);
  probe.if_absent = predict_outcome(absent_rule, miss, final_bits);

  if (opts_.verify_solutions &&
      !verify_probe(table, probed, probe, miss, opts_.diff)) {
    return finish(ProbeFailure::kInternalError);
  }

  result.probe = std::move(probe);
  return finish(ProbeFailure::kNone);
}

ModificationSpec make_modification_spec(const FlowTable& table,
                                        const Rule& old_version,
                                        const Rule& new_version) {
  assert(old_version.match == new_version.match &&
         old_version.priority == new_version.priority);
  ModificationSpec spec;
  const std::uint16_t p = old_version.priority;
  const std::uint16_t new_p = (p == 0) ? 1 : p;
  const std::uint16_t old_p = (p == 0) ? 0 : p - 1;
  for (const Rule& r : table.rules()) {
    if (r.priority == p && r.match == old_version.match) continue;  // the slot
    if (r.priority > p || (p == 0 && r.priority > 0)) {
      spec.altered.add(r);
    } else if (r.priority == p) {
      spec.altered.add(r);  // equal-priority peers stay (conservative)
    }
    // Rules with strictly lower priority are dropped (§4.1): the probe will
    // always hit one of the two versions.
  }
  Rule probed = new_version;
  probed.priority = new_p;
  spec.altered.add(probed);
  Rule old_copy = old_version;
  old_copy.priority = old_p;
  if (old_copy.cookie == probed.cookie) {
    old_copy.cookie ^= 0x8000000000000000ull;
  }
  spec.altered.add(old_copy);
  spec.probed = probed;
  return spec;
}

}  // namespace monocle
