// Host-environment abstractions for the Monitor proxy.
//
// The Monitor is event-driven and needs three services from its host: a
// clock, one-shot timers, and a view of the physical topology (which switch
// sits behind which port).  The discrete-event simulator implements these;
// a production deployment would back them with an event loop and LLDP-style
// discovery.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "netbase/time.hpp"

namespace monocle {

using SwitchId = std::uint64_t;

/// Clock + one-shot timer service.
///
/// Timer-handle contract (relied on by the Monitor and the Fleet's round
/// pipeline, tested in tests/fleet_test.cpp):
///
///  * schedule() never returns 0 — callers use 0 as the "no timer" sentinel
///    and cancel(0) must be a no-op;
///  * cancelling a handle that already fired or was already cancelled is a
///    no-op — but ONLY as long as the handle has not been reissued.
///    Implementations must therefore never reissue a handle while it is
///    still pending, and with a 64-bit counter a retired handle practically
///    never comes back (EventQueue additionally skips still-live ids if the
///    counter ever wraps);
///  * callers that CACHE handles across events (the Monitor's steady/update
///    timers, the Fleet's round and debounce timers) zero them when the
///    timer fires or is cancelled, so a stale cancel can never hit an id
///    that wrapped around and was reissued.
///
/// Threading contract: a Runtime instance is single-threaded — now()/
/// schedule()/cancel() and every callback it fires run on one thread.  The
/// multi-worker fleet driver (round_engine.hpp) keeps this contract by
/// instantiation, not locking: one Runtime per worker (Fleet::Config::
/// worker_runtimes), each driven only from its worker, plus the
/// orchestration thread's own.  Implementations that ALSO offer a
/// cross-thread lane (WallclockRuntime::post) document it themselves.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current time.
  [[nodiscard]] virtual netbase::SimTime now() const = 0;

  /// Schedules `fn` to run after `delay`; returns a non-zero cancellation
  /// handle, unique among all currently pending timers.
  virtual std::uint64_t schedule(netbase::SimTime delay,
                                 std::function<void()> fn) = 0;

  /// Cancels a pending timer; no-op for fired/cancelled handles and for 0.
  virtual void cancel(std::uint64_t timer_id) = 0;
};

/// The far end of a switch port.
struct PortPeer {
  SwitchId sw = 0;
  std::uint16_t port = 0;
};

/// Who-is-where knowledge: port-level topology of the switch fabric.
class NetworkView {
 public:
  virtual ~NetworkView() = default;

  /// The switch attached to (`sw`, `port`), or nullopt for hosts/edge ports.
  [[nodiscard]] virtual std::optional<PortPeer> peer(
      SwitchId sw, std::uint16_t port) const = 0;

  /// All (data-plane) ports of `sw`.
  [[nodiscard]] virtual std::vector<std::uint16_t> ports(SwitchId sw) const = 0;
};

}  // namespace monocle
