// Host-environment abstractions for the Monitor proxy.
//
// The Monitor is event-driven and needs three services from its host: a
// clock, one-shot timers, and a view of the physical topology (which switch
// sits behind which port).  The discrete-event simulator implements these;
// a production deployment would back them with an event loop and LLDP-style
// discovery.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "netbase/time.hpp"

namespace monocle {

using SwitchId = std::uint64_t;

/// Clock + one-shot timer service.
class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Current time.
  [[nodiscard]] virtual netbase::SimTime now() const = 0;

  /// Schedules `fn` to run after `delay`; returns a cancellation handle.
  virtual std::uint64_t schedule(netbase::SimTime delay,
                                 std::function<void()> fn) = 0;

  /// Cancels a pending timer (no-op if already fired).
  virtual void cancel(std::uint64_t timer_id) = 0;
};

/// The far end of a switch port.
struct PortPeer {
  SwitchId sw = 0;
  std::uint16_t port = 0;
};

/// Who-is-where knowledge: port-level topology of the switch fabric.
class NetworkView {
 public:
  virtual ~NetworkView() = default;

  /// The switch attached to (`sw`, `port`), or nullopt for hosts/edge ports.
  [[nodiscard]] virtual std::optional<PortPeer> peer(
      SwitchId sw, std::uint16_t port) const = 0;

  /// All (data-plane) ports of `sw`.
  [[nodiscard]] virtual std::vector<std::uint16_t> ports(SwitchId sw) const = 0;
};

}  // namespace monocle
