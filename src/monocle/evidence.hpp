// Evidence-accumulated network localization (ISSUE 6).
//
// localize_network() is a boolean pass: one snapshot of per-switch failed
// sets in, one diagnosis out.  Under probe loss, flapping links and active
// churn a single snapshot lies — a lost probe train paints a healthy rule
// failed for one pass, a flap window paints a healthy link dead for a few.
// NetworkEvidence turns the boolean pipeline into a filter over time:
//
//  * every observe() pass runs localize_network() and ADDS confidence to
//    each suspect it names (corroborated links earn more than one-sided
//    ones, switch-level patterns more than isolated rules);
//  * suspicion that stops being re-observed DECAYS exponentially (half-life
//    in options) and is forgotten below a floor — a transient blip never
//    reaches the confirmation bar;
//  * diagnosis() publishes only suspects that crossed the confidence bar,
//    were seen in at least min_sightings distinct passes, AND have
//    persisted for min_age — the debounce that keeps one flap window from
//    paging an operator, while a persistently flapping link still
//    accumulates its way to a confirmed diagnosis.
//
// The Fleet drives this from its debounced localization path when
// Config::evidence_localization is on (fleet.hpp).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <tuple>

#include "monocle/localizer.hpp"
#include "netbase/time.hpp"

namespace monocle {

/// The accumulator is the robustness path, so its localizer defaults differ
/// from the single-pass ones:
///  * the structural contamination filter is ON (localizer.hpp) —
///    collateral suspicion from probes whose ingress path crossed the real
///    fault is flagged at the source and adjudicated here;
///  * the per-pass group threshold drops to 0.5 — a gray link fought by the
///    K-of-N retry machinery keeps its egress groups hovering around half
///    failed (probes heal almost as fast as they die), which a single 0.8
///    pass never sees but repeated half-failed sightings accumulate into a
///    confirmed diagnosis.  The confidence bar, min_sightings and the
///    contamination filter absorb the extra per-pass leads this admits.
[[nodiscard]] constexpr NetworkLocalizerOptions evidence_default_localizer() {
  NetworkLocalizerOptions options;
  options.contamination_filter = true;
  options.per_switch.link_threshold = 0.5;
  return options;
}

struct EvidenceOptions {
  NetworkLocalizerOptions localizer = evidence_default_localizer();
  /// Accumulated confidence a suspect needs before diagnosis() reports it.
  double confirm_confidence = 2.0;
  /// Exponential decay half-life of unrefreshed suspicion.
  netbase::SimTime half_life = 500 * netbase::kMillisecond;
  /// Decayed suspects below this confidence are forgotten entirely.
  double forget_below = 0.05;
  /// Debounce: a suspect must be named by at least this many observe()
  /// passes...
  int min_sightings = 2;
  /// ... spanning at least this much time, before it can be confirmed.
  netbase::SimTime min_age = 200 * netbase::kMillisecond;
};

/// Accumulates localize_network() passes into per-suspect confidence.
class NetworkEvidence {
 public:
  explicit NetworkEvidence(EvidenceOptions options = {})
      : options_(options) {}

  /// Runs one localization pass over `reports` and folds it into the
  /// evidence state (confidence bump for named suspects, decay for the
  /// rest).  `now` orders passes; it must be non-decreasing.
  void observe(std::span<const SwitchFailureReport> reports,
               const NetworkView& view, netbase::SimTime now);

  /// The confirmed (debounced, confidence-bearing) suspects only.
  [[nodiscard]] NetworkDiagnosis diagnosis() const;

  /// Per-suspect bookkeeping, exposed for tests and the fig12 bench.
  struct Suspect {
    double confidence = 0.0;
    int sightings = 0;
    netbase::SimTime first_seen = 0;
    netbase::SimTime last_seen = 0;
  };

  [[nodiscard]] std::size_t suspect_count() const {
    return links_.size() + switches_.size() + isolated_.size();
  }
  /// Confidence of the link at (`sw`, `port`) (either endpoint), 0 when
  /// not under suspicion.
  [[nodiscard]] double link_confidence(SwitchId sw, std::uint16_t port) const;
  [[nodiscard]] double switch_confidence(SwitchId sw) const;
  [[nodiscard]] double rule_confidence(SwitchId sw, std::uint64_t cookie) const;

  void clear() {
    links_.clear();
    switches_.clear();
    isolated_.clear();
    last_observe_ = 0;
  }

  [[nodiscard]] const EvidenceOptions& options() const { return options_; }

 private:
  using LinkKey = std::tuple<SwitchId, std::uint16_t, SwitchId, std::uint16_t>;
  using RuleKey = std::pair<SwitchId, std::uint64_t>;

  template <typename Payload>
  struct Entry {
    Suspect meta;
    Payload payload;  // last-seen diagnosis element, republished on confirm
  };

  [[nodiscard]] bool confirmed(const Suspect& s) const;
  void decay_all(netbase::SimTime now);

  EvidenceOptions options_;
  std::map<LinkKey, Entry<LinkDiagnosis>> links_;
  std::map<SwitchId, Entry<SwitchSuspect>> switches_;
  std::map<RuleKey, Entry<IsolatedRuleFault>> isolated_;
  netbase::SimTime last_observe_ = 0;
};

}  // namespace monocle
