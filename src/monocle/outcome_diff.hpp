// DiffOutcome = DiffPorts ∨ DiffRewrite with the full multicast/ECMP
// taxonomy of paper §3.4.
//
// Drop and unicast rules are treated as multicast with |F| ∈ {0,1} (the
// paper's unification), and an ECMP rule with a single-port forwarding set is
// normalized to unicast.  DiffPorts evaluates to a constant before SAT
// encoding (paper §5.3); when it is False, the caller must encode
// DiffRewrite over the common ports, with ∃-port semantics when both rules
// are multicast and ∀-port semantics when ECMP is involved.
#pragma once

#include <cstdint>
#include <vector>

#include "openflow/actions.hpp"

namespace monocle {

/// How the rewrite-difference disjunction must quantify over common ports.
enum class RewriteQuantifier : std::uint8_t {
  kExistsPort,  ///< both multicast: a single distinguishing port suffices
  kForAllPort,  ///< ECMP involved: rewrites must differ on EVERY common port
};

/// Result of the constant (pre-SAT) part of DiffOutcome.
struct PortDiffResult {
  /// True: the forwarding sets alone distinguish the two rules; no rewrite
  /// reasoning needed (DiffOutcome == True).
  bool ports_differ = false;
  /// When !ports_differ: ports in F1 ∩ F2 over which DiffRewrite quantifies.
  std::vector<std::uint16_t> common_ports;
  RewriteQuantifier quantifier = RewriteQuantifier::kExistsPort;
};

/// Options for the taxonomy evaluation.
struct DiffOptions {
  /// §3.4 "exception": distinguish ECMP from non-unicast multicast by
  /// counting received probes.  Off by default, as in the paper.
  bool count_based_ecmp = false;
};

/// Evaluates DiffPorts(R1, R2) and prepares the DiffRewrite quantification.
/// `a` and `b` are the outcome models of the two rules (paper: Rprobed and a
/// lower-priority rule or the table-miss behaviour).
PortDiffResult diff_ports(const openflow::Outcome& a, const openflow::Outcome& b,
                          const DiffOptions& opts = {});

/// Per-bit rewrite difference term (paper Table 4) for one header bit.
enum class BitDiffKind : std::uint8_t {
  kNever,       ///< rewrites agree regardless of the packet (False)
  kAlways,      ///< rewrites write opposite constants (True)
  kIfBitOne,    ///< differ iff packet bit is 1 (term: P[i])
  kIfBitZero,   ///< differ iff packet bit is 0 (term: ¬P[i])
};

/// Computes the Table 4 term for header bit `bit` given the two rewrites.
BitDiffKind bit_rewrite_diff(const openflow::RewriteVec& r1,
                             const openflow::RewriteVec& r2, int bit);

}  // namespace monocle
