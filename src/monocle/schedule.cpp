#include "monocle/schedule.hpp"

#include <algorithm>

namespace monocle {

RoundSchedule RoundSchedule::build(const topo::Topology& topo,
                                   const std::vector<SwitchId>& switch_ids,
                                   const RoundScheduleOptions& options) {
  RoundSchedule out;
  if (switch_ids.empty()) return out;

  const topo::Topology conflict_graph =
      options.conflict_radius >= 2 ? topo.square() : topo;

  topo::Coloring coloring;
  if (conflict_graph.node_count() <= options.exact_node_limit) {
    coloring = topo::exact_coloring(conflict_graph, options.exact_node_budget);
  } else {
    coloring = topo::dsatur_coloring(conflict_graph);
  }
  out.exact_ = coloring.exact;

  out.rounds_.resize(static_cast<std::size_t>(coloring.color_count));
  for (topo::NodeId n = 0; n < conflict_graph.node_count(); ++n) {
    if (n >= switch_ids.size()) break;  // extra topology nodes unscheduled
    const SwitchId sw = switch_ids[n];
    const int c = coloring.color[n];
    out.rounds_[static_cast<std::size_t>(c)].push_back(sw);
    out.round_of_[sw] = c;
    auto& conflicts = out.conflicts_[sw];
    for (const topo::NodeId m : conflict_graph.neighbors(n)) {
      if (m < switch_ids.size()) conflicts.insert(switch_ids[m]);
    }
  }
  return out;
}

RoundSchedule RoundSchedule::sequential(
    const std::vector<SwitchId>& switch_ids) {
  RoundSchedule out;
  out.exact_ = true;  // trivially optimal for its (empty) conflict graph
  out.rounds_.reserve(switch_ids.size());
  for (const SwitchId sw : switch_ids) {
    out.round_of_[sw] = static_cast<int>(out.rounds_.size());
    out.rounds_.push_back({sw});
  }
  return out;
}

int RoundSchedule::round_of(SwitchId sw) const {
  const auto it = round_of_.find(sw);
  return it == round_of_.end() ? -1 : it->second;
}

bool RoundSchedule::conflicting(SwitchId a, SwitchId b) const {
  const auto it = conflicts_.find(a);
  return it != conflicts_.end() && it->second.contains(b);
}

bool RoundSchedule::valid() const {
  for (const auto& round : rounds_) {
    for (std::size_t i = 0; i < round.size(); ++i) {
      for (std::size_t j = i + 1; j < round.size(); ++j) {
        if (conflicting(round[i], round[j])) return false;
      }
    }
  }
  return true;
}

std::size_t RoundSchedule::max_round_size() const {
  std::size_t best = 0;
  for (const auto& round : rounds_) best = std::max(best, round.size());
  return best;
}

}  // namespace monocle
