#include "monocle/budget.hpp"

#include <algorithm>
#include <cmath>

namespace monocle {

void BudgetScheduler::register_shard(SwitchId sw) {
  std::lock_guard lock(mu_);
  slot_index(sw);
}

std::size_t BudgetScheduler::slot_index(SwitchId sw) {
  const auto [it, inserted] = index_.try_emplace(sw, slots_.size());
  if (inserted) {
    ids_.push_back(sw);
    Slot s;
    s.budget = opts_.probes_per_switch;  // uniform until first planned
    slots_.push_back(s);
    weight_sum_all_ += s.weight;  // new shards enter at the neutral weight
  }
  return it->second;
}

void BudgetScheduler::plan_round(const std::vector<SwitchId>& round,
                                 const std::vector<ShardPressure>& pressure) {
  const std::size_t n = round.size();
  if (n == 0 || pressure.size() != n) return;
  std::lock_guard lock(mu_);
  const std::size_t nominal = opts_.probes_per_switch * n;
  const std::size_t ceiling =
      std::max<std::size_t>(1, opts_.probes_per_switch * opts_.ceiling_factor);
  const std::size_t floor_probes = std::min(opts_.floor_probes, ceiling);
  const double quantum =
      static_cast<double>(std::max<netbase::SimTime>(1, opts_.staleness_quantum));

  weights_.clear();
  budgets_.clear();
  rounds_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot = slot_index(round[i]);
    Slot& s = slots_[slot];
    const ShardPressure& p = pressure[i];
    // Delta RATE, not cumulative count: what changed since this shard's
    // previous plan is the churn signal.
    const std::uint64_t delta_rate =
        p.deltas_applied > s.last_deltas ? p.deltas_applied - s.last_deltas : 0;
    s.last_deltas = p.deltas_applied;
    s.backlog = p.backlog;
    s.staleness_ns = p.staleness;
    const double stale_quanta =
        std::min(static_cast<double>(p.staleness) / quantum,
                 opts_.max_staleness_quanta);
    const double w =
        1.0 + opts_.backlog_weight * static_cast<double>(p.backlog) +
        opts_.churn_weight * static_cast<double>(delta_rate) +
        opts_.suspect_weight *
            (static_cast<double>(p.suspects + p.failed) +
             p.evidence_confidence) +
        opts_.staleness_weight * stale_quanta;
    weight_sum_all_ += w - s.weight;  // keep the fleet-wide mean current
    s.weight = w;
    weights_.push_back(w);
    rounds_.push_back(slot);
  }

  // Size each shard against the FLEET-WIDE mean pressure, not the round's
  // own sum: a round full of hot shards may overspend and a cold round
  // underspend, which is exactly how redistribution reaches across the
  // coloring's round boundaries.  The carry accumulator (nominal − actual,
  // summed over all plans) nudges each round's target back toward the
  // uniform scheduler's cumulative spend so a rotation stays budget-neutral.
  const double mean_w =
      weight_sum_all_ / static_cast<double>(std::max<std::size_t>(1, slots_.size()));
  double ideal_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    ideal_sum +=
        static_cast<double>(opts_.probes_per_switch) * weights_[i] / mean_w;
  }
  const double steer =
      std::clamp(carry_, -0.5 * static_cast<double>(nominal),
                 0.5 * static_cast<double>(nominal));
  const auto target = static_cast<std::size_t>(std::clamp(
      std::llround(ideal_sum + steer),
      static_cast<long long>(n * floor_probes),
      static_cast<long long>(n * ceiling)));

  // Proportional split of the target, clamped per shard; integer truncation
  // plus the clamps leave a remainder that goes to the highest-pressure
  // shards (suspects first by construction of the weights), or must be
  // shaved off the lowest-pressure shards when the floor over-committed.
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) weight_sum += weights_[i];
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double share = static_cast<double>(target) * weights_[i] / weight_sum;
    auto b = static_cast<std::size_t>(share);  // floor
    b = std::clamp(b, floor_probes, ceiling);
    budgets_.push_back(b);
    assigned += b;
  }
  while (assigned < target) {
    std::size_t best = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (budgets_[i] >= ceiling) continue;
      if (best == n || weights_[i] > weights_[best]) best = i;
    }
    if (best == n) break;  // every shard at ceiling: leave the rest unspent
    ++budgets_[best];
    ++assigned;
  }
  while (assigned > target) {
    std::size_t worst = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (budgets_[i] <= floor_probes) continue;
      if (worst == n || weights_[i] < weights_[worst]) worst = i;
    }
    if (worst == n) break;  // floors alone exceed the target: keep coverage
    --budgets_[worst];
    --assigned;
  }

  for (std::size_t i = 0; i < n; ++i) {
    slots_[rounds_[i]].budget = budgets_[i];
  }
  carry_ += static_cast<double>(nominal) - static_cast<double>(assigned);
  // Anti-windup: a long ceiling-bound (or floor-bound) stretch must not bank
  // unbounded debt the next quiet rotation would have to repay all at once.
  carry_ = std::clamp(carry_, -4.0 * static_cast<double>(nominal),
                      4.0 * static_cast<double>(nominal));
  ++rounds_planned_;
  last_round_budget_ = assigned;
}

std::size_t BudgetScheduler::budget_for(SwitchId sw) const {
  std::lock_guard lock(mu_);
  const auto it = index_.find(sw);
  if (it == index_.end()) return opts_.probes_per_switch;
  return static_cast<std::size_t>(slots_[it->second].budget);
}

void BudgetScheduler::snapshot(std::vector<ShardView>& out) const {
  std::lock_guard lock(mu_);
  out.clear();
  out.reserve(slots_.size());
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    out.push_back(ShardView{ids_[i], slots_[i].budget, slots_[i].backlog,
                            slots_[i].staleness_ns});
  }
}

std::uint64_t BudgetScheduler::rounds_planned() const {
  std::lock_guard lock(mu_);
  return rounds_planned_;
}

std::uint64_t BudgetScheduler::last_round_budget() const {
  std::lock_guard lock(mu_);
  return last_round_budget_;
}

double BudgetScheduler::carry() const {
  std::lock_guard lock(mu_);
  return carry_;
}

void BudgetScheduler::set_carry(double carry) {
  std::lock_guard lock(mu_);
  carry_ = carry;
}

void BudgetScheduler::seed_budget(SwitchId sw, std::uint64_t budget) {
  std::lock_guard lock(mu_);
  Slot& slot = slots_[slot_index(sw)];
  slot.budget = std::clamp<std::uint64_t>(
      budget, opts_.floor_probes,
      opts_.probes_per_switch * opts_.ceiling_factor);
}

}  // namespace monocle
