// The Multiplexer proxy (paper §7).
//
// Monocle runs one Monitor per switch; the Multiplexer connects to all of
// them and owns the PacketOut/PacketIn plumbing: it injects probes by asking
// the *upstream* switch to emit the packet toward the probed switch (Figure
// 1), and routes caught probes (PacketIns carrying probe metadata) back to
// the Monitor that owns the probed switch.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "channel/switch_backend.hpp"
#include "monocle/monitor.hpp"
#include "monocle/runtime.hpp"
#include "openflow/messages.hpp"

namespace monocle {

/// The probe-packet switchboard shared by every Monitor (paper §7).
///
/// In the paper's pipeline the Multiplexer is the one component that talks
/// to ALL switches: probe *injection* needs a PacketOut at the switch
/// UPSTREAM of the probed one (so the probe enters on a real port), and
/// probe *collection* sees PacketIns at whatever neighbor's catching rule
/// fired.  on_packet_in decodes the probe metadata and hands the
/// observation to the Monitor owning the probed switch — this is the path
/// that turns raw PacketIns into the per-probe verdicts the Localizer and
/// the Fleet's cross-switch diagnosis consume.
class Multiplexer {
 public:
  explicit Multiplexer(const NetworkView* view) : view_(view) {}

  /// Registers the Monitor responsible for `sw`.
  void register_monitor(SwitchId sw, Monitor* monitor) {
    monitors_[sw] = monitor;
  }

  /// Removes the Monitor for `sw` (shard teardown).  Probes addressed to it
  /// that are still in flight are consumed and dropped by on_packet_in.
  void unregister_monitor(SwitchId sw) { monitors_.erase(sw); }

  /// Registers the function that delivers control messages to switch `sw`
  /// (PacketOuts for probe injection).
  void set_switch_sender(SwitchId sw,
                         std::function<void(const openflow::Message&)> sender) {
    senders_[sw] = std::move(sender);
  }

  /// Wires `backend` as the full control channel of `sw` — the standard
  /// plumbing every host (Testbed, Fleet, live_monitor) used to hand-roll:
  ///
  ///  * outbound: this Multiplexer's PacketOuts for `sw` go down the backend
  ///    (set_switch_sender);
  ///  * inbound: PacketIns carrying probe metadata peel off to on_packet_in;
  ///    everything else reaches `monitor` (or `fallback` when the switch is
  ///    unproxied, i.e. `monitor` is null);
  ///  * lifecycle: channel up/down transitions re-arm the Monitor after a
  ///    reconnect (Monitor::on_channel_state).
  ///
  /// The backend must outlive this registration; rebind (e.g. with a null
  /// monitor) on shard teardown.
  void bind_backend(SwitchId sw, channel::SwitchBackend& backend,
                    Monitor* monitor,
                    std::function<void(const openflow::Message&)> fallback = {});

  /// Injects `packet` so it enters `probed` on `in_port`: sends a PacketOut
  /// to the upstream peer behind that port.  Falls back to an OFPP_TABLE
  /// self-injection at the probed switch when there is no upstream peer.
  /// Returns false when no injection path exists — including when the
  /// delivering switch's bound backend is currently down (a PacketOut
  /// parked in a reconnect queue is not an injection; counting it as one
  /// would let silence-based negative confirmation succeed during an
  /// outage).
  bool inject(SwitchId probed, std::uint16_t in_port,
              std::vector<std::uint8_t> packet);

  /// Examines a PacketIn received from switch `from`.  If it carries probe
  /// metadata it is routed to the owning Monitor and consumed (returns
  /// true); otherwise the caller should pass it to the switch's own Monitor
  /// / controller path.
  bool on_packet_in(SwitchId from, const openflow::PacketIn& pi);

  /// Routes a controller-side FlowMod to the Monitor shard owning `sw`,
  /// where it becomes a TableDelta in that shard's versioned table (the one
  /// place updates enter the system).  Returns false when the switch is
  /// unproxied — the caller must deliver the message down the switch
  /// channel itself.
  bool route_flow_mod(SwitchId sw, const openflow::FlowMod& fm,
                      std::uint32_t xid = 0);

  [[nodiscard]] std::uint64_t packet_outs_sent() const { return packet_outs_; }

 private:
  /// True when control messages for `sw` can currently reach it (always
  /// true for plain set_switch_sender wiring; the bound backend's up()
  /// state otherwise).
  [[nodiscard]] bool sender_up(SwitchId sw) const;

  const NetworkView* view_;
  std::unordered_map<SwitchId, Monitor*> monitors_;
  std::unordered_map<SwitchId, std::function<void(const openflow::Message&)>>
      senders_;
  std::unordered_map<SwitchId, channel::SwitchBackend*> backends_;  // bound
  std::uint64_t packet_outs_ = 0;
};

}  // namespace monocle
