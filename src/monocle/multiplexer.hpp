// The Multiplexer proxy (paper §7).
//
// Monocle runs one Monitor per switch; the Multiplexer connects to all of
// them and owns the PacketOut/PacketIn plumbing: it injects probes by asking
// the *upstream* switch to emit the packet toward the probed switch (Figure
// 1), and routes caught probes (PacketIns carrying probe metadata) back to
// the Monitor that owns the probed switch.
//
// Scale-out fast path (fig11): at fleet scale every probe crosses this
// class twice (PacketOut out, PacketIn back), so the per-message glue is
// flat and allocation-free.  Registration (the cold path) interns each
// SwitchId into a dense SwitchOrdinal — an index into a shard vector — and
// the hot paths run on ordinals: no unordered_map hashing per message, a
// per-shard route cache for the upstream-injection decision, a per-shard
// scratch PacketOut message whose data buffer cycles through a per-shard
// netbase::BufferArena, and zero-copy PacketIn decoding
// (parse_packet_view + ProbeMetadataView).  The legacy map-based routing
// with per-probe crafting survives behind set_compat_map_routing(true) as
// the parity/benchmark baseline (tests/scaleout_test.cpp, fig11).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "channel/switch_backend.hpp"
#include "monocle/monitor.hpp"
#include "monocle/runtime.hpp"
#include "netbase/buffer_arena.hpp"
#include "openflow/messages.hpp"

namespace monocle {

/// Dense per-Multiplexer index of a registered switch.  Assigned at first
/// registration (register_monitor / set_switch_sender / bind_backend /
/// intern) and stable for the Multiplexer's lifetime — teardown clears the
/// shard slot but keeps the ordinal reserved for the switch, so cached
/// ordinals (Monitor inject hooks, backend receivers) never dangle.
using SwitchOrdinal = std::uint32_t;
inline constexpr SwitchOrdinal kInvalidOrdinal =
    std::numeric_limits<SwitchOrdinal>::max();

/// The probe-packet switchboard shared by every Monitor (paper §7).
///
/// In the paper's pipeline the Multiplexer is the one component that talks
/// to ALL switches: probe *injection* needs a PacketOut at the switch
/// UPSTREAM of the probed one (so the probe enters on a real port), and
/// probe *collection* sees PacketIns at whatever neighbor's catching rule
/// fired.  on_packet_in decodes the probe metadata and hands the
/// observation to the Monitor owning the probed switch — this is the path
/// that turns raw PacketIns into the per-probe verdicts the Localizer and
/// the Fleet's cross-switch diagnosis consume.
///
/// Threading: registration (the cold path) is single-threaded, and so is
/// the default injection path — inject mutates the DELIVERING shard's
/// scratch message and arena (two probed switches routinely share one
/// upstream deliverer) and lazily resolves route caches.  The
/// multi-threaded round driver (round_engine.hpp) therefore runs the hot
/// paths in a concurrent-read mode: warm_routes() pre-resolves every route
/// so nothing resizes under readers, and each worker passes its own
/// InjectContext so the per-send scratch/arena state is worker-local
/// instead of per-DELIVERING-shard.  With those two in place, inject_at and
/// on_packet_in only read shard wiring (counters are relaxed atomics), and
/// any number of workers may inject concurrently — each for the shards it
/// owns.  Registration must still never overlap the concurrent phase.
class Multiplexer {
 public:
  using Sender = std::function<void(const openflow::Message&)>;

  /// Per-worker injection state for the multi-threaded round driver: the
  /// scratch PacketOut envelope and the data-buffer arena that
  /// single-threaded injection borrows from the delivering shard.  Those
  /// per-shard fields are exactly what two workers injecting through a
  /// shared upstream deliverer would race on; handing inject_at a
  /// worker-owned context makes the send path read-only on shard state.
  struct InjectContext {
    InjectContext();
    openflow::Message scratch;   ///< reusable PacketOut envelope
    netbase::BufferArena arena;  ///< recycles PacketOut data buffers
  };

  explicit Multiplexer(const NetworkView* view) : view_(view) {}

  /// Assigns (or returns) the dense ordinal of `sw` without registering
  /// anything — lets hosts capture the ordinal in inject hooks before the
  /// shard's Monitor exists.
  SwitchOrdinal intern(SwitchId sw);

  /// The ordinal of `sw`, or kInvalidOrdinal if it was never interned.
  [[nodiscard]] SwitchOrdinal ordinal_of(SwitchId sw) const;

  /// Registers the Monitor responsible for `sw`.
  SwitchOrdinal register_monitor(SwitchId sw, Monitor* monitor);

  /// Removes EVERYTHING registered for `sw` — monitor, sender and bound
  /// backend — so shard teardown can never leave a dangling backend pointer
  /// behind (regression: tests/scaleout_test.cpp).  The ordinal stays
  /// reserved; probes addressed to the switch that are still in flight are
  /// consumed and dropped by on_packet_in.
  void unregister_monitor(SwitchId sw);

  /// Registers the function that delivers control messages to switch `sw`
  /// (PacketOuts for probe injection).
  SwitchOrdinal set_switch_sender(SwitchId sw, Sender sender);

  /// Wires `backend` as the full control channel of `sw` — the standard
  /// plumbing every host (Testbed, Fleet, live_monitor) used to hand-roll:
  ///
  ///  * outbound: this Multiplexer's PacketOuts for `sw` go down the backend
  ///    (set_switch_sender);
  ///  * inbound: PacketIns carrying probe metadata peel off to on_packet_in;
  ///    everything else reaches `monitor` (or `fallback` when the switch is
  ///    unproxied, i.e. `monitor` is null);
  ///  * lifecycle: channel up/down transitions re-arm the Monitor after a
  ///    reconnect (Monitor::on_channel_state).
  ///
  /// The backend must outlive this registration; rebind (e.g. with a null
  /// monitor) or unregister_monitor on shard teardown.
  SwitchOrdinal bind_backend(SwitchId sw, channel::SwitchBackend& backend,
                             Monitor* monitor, Sender fallback = {});

  /// Injects `packet` so it enters `probed` on `in_port`: sends a PacketOut
  /// to the upstream peer behind that port.  Falls back to an OFPP_TABLE
  /// self-injection at the probed switch when there is no upstream peer.
  /// Returns false when no injection path exists — including when the
  /// delivering switch's bound backend is currently down (a PacketOut
  /// parked in a reconnect queue is not an injection; counting it as one
  /// would let silence-based negative confirmation succeed during an
  /// outage).  The packet bytes are borrowed for the duration of the call.
  bool inject(SwitchId probed, std::uint16_t in_port,
              std::span<const std::uint8_t> packet);

  /// Ordinal-addressed injection — the fleet fast path (hooks capture the
  /// ordinal at bind time; no per-probe id lookup at all).  `ctx` selects
  /// the scratch/arena the PacketOut is built in: null (single-threaded
  /// callers) borrows the delivering shard's own, a worker's InjectContext
  /// keeps the send path read-only on shard state (see the class comment).
  bool inject_at(SwitchOrdinal probed, std::uint16_t in_port,
                 std::span<const std::uint8_t> packet,
                 InjectContext* ctx = nullptr);

  /// Pre-resolves the route cache of every interned shard for every port of
  /// its switch, so the concurrent injection phase never hits the lazy
  /// resolve/resize path.  Call after registration settles (and again after
  /// any wiring change); the Fleet's prepare() does this when it runs a
  /// multi-worker engine.
  void warm_routes();

  /// Examines a PacketIn received from switch `from`.  If it carries probe
  /// metadata it is routed to the owning Monitor and consumed (returns
  /// true); otherwise the caller should pass it to the switch's own Monitor
  /// / controller path.
  bool on_packet_in(SwitchId from, const openflow::PacketIn& pi);

  /// Ordinal-addressed PacketIn examination (bound backends use this).
  bool on_packet_in_at(SwitchOrdinal from, const openflow::PacketIn& pi);

  /// Routes a controller-side FlowMod to the Monitor shard owning `sw`,
  /// where it becomes a TableDelta in that shard's versioned table (the one
  /// place updates enter the system).  Returns false when the switch is
  /// unproxied — the caller must deliver the message down the switch
  /// channel itself.
  bool route_flow_mod(SwitchId sw, const openflow::FlowMod& fm,
                      std::uint32_t xid = 0);

  /// Parity/benchmark baseline: route every message through the pre-flat
  /// path — unordered_map id lookups plus a freshly allocated PacketOut per
  /// injection.  Behaviour (bytes on the wire, routing decisions) is
  /// identical; only the cost profile differs.
  void set_compat_map_routing(bool on) { compat_map_routing_ = on; }
  [[nodiscard]] bool compat_map_routing() const { return compat_map_routing_; }

  [[nodiscard]] std::uint64_t packet_outs_sent() const {
    return packet_outs_.load(std::memory_order_relaxed);
  }
  /// Per-shard PacketOut count (0 for unknown switches).
  [[nodiscard]] std::uint64_t packet_outs_sent(SwitchId sw) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

 private:
  /// Cached upstream-injection decision for one (shard, in_port): who sends
  /// the PacketOut and with what action.  Resolved lazily from the
  /// NetworkView on first use, invalidated wholesale (generation bump) by
  /// any registration change — both cold paths.
  struct Route {
    std::uint32_t gen = 0;  ///< valid iff == routes_gen_
    SwitchOrdinal deliver = kInvalidOrdinal;
    std::uint16_t out_port = 0;  ///< upstream egress port toward the probed switch
    bool self_table = false;     ///< OFPP_TABLE self-injection fallback
    bool dead = false;           ///< no injection path exists
  };

  struct Shard {
    SwitchId sw = 0;
    Monitor* monitor = nullptr;
    Sender sender;
    channel::SwitchBackend* backend = nullptr;  // bound; null = plain sender
    /// Reusable PacketOut envelope: the variant alternative never changes,
    /// so per-send mutation touches only in_port/actions/data.
    openflow::Message scratch;
    netbase::BufferArena arena;   ///< recycles PacketOut data buffers
    std::vector<Route> routes;    ///< indexed by the probed shard's in_port
  };

  /// The hot per-shard fields, packed one cache line per shard and indexed
  /// by ordinal (parallel to shards_): everything the per-probe paths read
  /// — collection dispatch (monitor), liveness (backend), the resolved
  /// route array, and the PacketOut counter.  A 500-shard round walks this
  /// dense 64-byte-stride array instead of chasing a heap allocation per
  /// shard through the unique_ptr table, which is where the 500-shard
  /// throughput dip came from (BENCH_scaleout.json).  Cold fields (sender
  /// storage, scratch, arena, route storage) stay in Shard behind `cold`.
  struct alignas(64) HotSlot {
    Monitor* monitor = nullptr;
    channel::SwitchBackend* backend = nullptr;
    Shard* cold = nullptr;
    const Route* routes = nullptr;  ///< = cold->routes.data() (kept in sync)
    std::uint32_t route_count = 0;
    SwitchId sw = 0;
    /// Plain field bumped through relaxed std::atomic_ref: workers count
    /// without contention, readers sample tear-free.
    std::uint64_t packet_outs = 0;
  };
  static_assert(sizeof(HotSlot) == 64, "one cache line per shard");

  Shard* shard_at(SwitchOrdinal ord) {
    return ord < shards_.size() ? shards_[ord].get() : nullptr;
  }
  const Shard* shard_at(SwitchOrdinal ord) const {
    return ord < shards_.size() ? shards_[ord].get() : nullptr;
  }

  /// Registration epoch for route caches: bumped whenever shard wiring
  /// changes so every cached Route re-resolves lazily.
  void invalidate_routes() { ++routes_gen_; }

  /// Resolves the injection route for shard `ord` / `in_port`, and keeps
  /// the hot slot's route-array view in sync when the cache resized.
  Route& route_for(SwitchOrdinal ord, std::uint16_t in_port);

  /// Sends `packet` as a PacketOut through the delivering shard's sender.
  /// The envelope and data buffer come from `ctx` when given (worker-local,
  /// concurrent-safe) or the delivering shard otherwise.  `in_port`/
  /// `out_port` per the resolved route.
  bool send_packet_out(HotSlot& deliver, std::uint16_t po_in_port,
                       std::uint16_t action_port,
                       std::span<const std::uint8_t> packet,
                       InjectContext* ctx);

  /// True when control messages for the shard can currently reach it
  /// (always true for plain set_switch_sender wiring; the bound backend's
  /// up() state otherwise).
  [[nodiscard]] static bool sender_up(const Shard& s) {
    return s.backend == nullptr || s.backend->up();
  }

  // Legacy map-routed implementations (compat_map_routing_).
  bool inject_compat(SwitchId probed, std::uint16_t in_port,
                     std::span<const std::uint8_t> packet);
  bool on_packet_in_compat(SwitchId from, const openflow::PacketIn& pi);

  /// Re-syncs hot_[ord] from shards_[ord] after a registration change (cold
  /// path; the hot paths never write slot wiring).
  void sync_hot(SwitchOrdinal ord);

  const NetworkView* view_;
  std::vector<std::unique_ptr<Shard>> shards_;  // by ordinal
  std::vector<HotSlot> hot_;                    // by ordinal, parallel
  /// Dense SwitchId -> ordinal index for the id-addressed entry points
  /// (kInvalidOrdinal holes).  Ids beyond kMaxDenseId fall back to the map.
  static constexpr SwitchId kMaxDenseId = 1 << 20;
  std::vector<SwitchOrdinal> ordinal_index_;
  /// Cold-path registry (registration, compat mode, huge sparse ids).
  std::unordered_map<SwitchId, SwitchOrdinal> ordinal_map_;
  std::uint32_t routes_gen_ = 1;
  bool compat_map_routing_ = false;
  std::atomic<std::uint64_t> packet_outs_{0};
};

}  // namespace monocle
