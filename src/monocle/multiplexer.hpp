// The Multiplexer proxy (paper §7).
//
// Monocle runs one Monitor per switch; the Multiplexer connects to all of
// them and owns the PacketOut/PacketIn plumbing: it injects probes by asking
// the *upstream* switch to emit the packet toward the probed switch (Figure
// 1), and routes caught probes (PacketIns carrying probe metadata) back to
// the Monitor that owns the probed switch.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "monocle/monitor.hpp"
#include "monocle/runtime.hpp"
#include "openflow/messages.hpp"

namespace monocle {

class Multiplexer {
 public:
  explicit Multiplexer(const NetworkView* view) : view_(view) {}

  /// Registers the Monitor responsible for `sw`.
  void register_monitor(SwitchId sw, Monitor* monitor) {
    monitors_[sw] = monitor;
  }

  /// Registers the function that delivers control messages to switch `sw`
  /// (PacketOuts for probe injection).
  void set_switch_sender(SwitchId sw,
                         std::function<void(const openflow::Message&)> sender) {
    senders_[sw] = std::move(sender);
  }

  /// Injects `packet` so it enters `probed` on `in_port`: sends a PacketOut
  /// to the upstream peer behind that port.  Falls back to an OFPP_TABLE
  /// self-injection at the probed switch when there is no upstream peer.
  /// Returns false when no injection path exists.
  bool inject(SwitchId probed, std::uint16_t in_port,
              std::vector<std::uint8_t> packet);

  /// Examines a PacketIn received from switch `from`.  If it carries probe
  /// metadata it is routed to the owning Monitor and consumed (returns
  /// true); otherwise the caller should pass it to the switch's own Monitor
  /// / controller path.
  bool on_packet_in(SwitchId from, const openflow::PacketIn& pi);

  [[nodiscard]] std::uint64_t packet_outs_sent() const { return packet_outs_; }

 private:
  const NetworkView* view_;
  std::unordered_map<SwitchId, Monitor*> monitors_;
  std::unordered_map<SwitchId, std::function<void(const openflow::Message&)>>
      senders_;
  std::uint64_t packet_outs_ = 0;
};

}  // namespace monocle
