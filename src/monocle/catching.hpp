// Catching-rule planning for network-wide monitoring (paper §6).
//
// To collect probes, every switch pre-installs catching rules keyed on
// reserved values of one (strategy 1) or two (strategy 2) header fields.
// Reserved values are switch *colors*: strategy 1 needs a proper coloring of
// the topology, strategy 2 a proper coloring of its square.  The planner
// computes the colorings, assigns per-switch tag values and emits the
// FlowMods each switch must pre-install, plus the per-switch Collect match
// the probe generator needs.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "netbase/fields.hpp"
#include "openflow/messages.hpp"
#include "topo/coloring.hpp"
#include "topo/topology.hpp"

namespace monocle {

using SwitchId = std::uint64_t;  ///< datapath id; equals topo::NodeId in sims

/// Which §6 collection strategy to plan for.
enum class CatchStrategy : std::uint8_t {
  kSingleField,  ///< one reserved field; all probes return to the controller
  kTwoFields,    ///< H1/H2; mis-forwarded probes are dropped by filter rules
};

/// Priorities used by infrastructure rules (must dominate production rules).
inline constexpr std::uint16_t kCatchPriority = 0xFFFF;
inline constexpr std::uint16_t kFilterPriority = 0xFFFE;
/// Priority of the pre-installed tag-drop rule used by drop-postponing
/// (§4.3): below catch/filter, above production.
inline constexpr std::uint16_t kDropTagPriority = 0xFFFD;

/// Reserved tag values start here (VLAN ids chosen to stay clear of
/// production VLANs; kVlanNone - 1 downward).
inline constexpr std::uint64_t kTagBase = 0xF00;
/// Reserved tag value marking packets "to be dropped one hop later" (§4.3).
inline constexpr std::uint64_t kDropTag = 0xEFF;

/// The computed plan.
class CatchPlan {
 public:
  /// Plans catching rules for `topo`, mapping node i to switch id
  /// `switch_ids[i]`.  Strategy 1 reserves `field1` (default VLAN id);
  /// strategy 2 additionally reserves `field2` (default IP ToS).
  static CatchPlan build(const topo::Topology& topo,
                         const std::vector<SwitchId>& switch_ids,
                         CatchStrategy strategy = CatchStrategy::kSingleField,
                         netbase::Field field1 = netbase::Field::VlanId,
                         netbase::Field field2 = netbase::Field::IpTos);

  [[nodiscard]] CatchStrategy strategy() const { return strategy_; }

  /// Number of reserved values of the probing field (Figure 9's metric; also
  /// the per-switch catching-rule count for strategy 1).
  [[nodiscard]] int reserved_value_count() const { return color_count_; }

  /// The tag value (color-derived) assigned to `sw`.
  [[nodiscard]] std::uint64_t tag_of(SwitchId sw) const;

  /// FlowMods switch `sw` must pre-install (catching rules; plus filter and
  /// drop-tag rules for strategy 2 / drop-postponing support).
  [[nodiscard]] std::vector<openflow::FlowMod> rules_for(SwitchId sw) const;

  /// The Collect match for probing rules on switch `sw` — what the probe
  /// header must carry so downstream neighbors catch it (paper: H = S_probed,
  /// plus H2 = S_next for strategy 2).
  [[nodiscard]] openflow::Match collect_match_for(
      SwitchId probed, SwitchId downstream = 0) const;

  /// True when two neighbors of `probed` could confuse probes — never the
  /// case after proper coloring; exposed for the planner tests.
  [[nodiscard]] bool valid() const { return valid_; }

 private:
  CatchStrategy strategy_ = CatchStrategy::kSingleField;
  netbase::Field field1_ = netbase::Field::VlanId;
  netbase::Field field2_ = netbase::Field::IpTos;
  int color_count_ = 0;
  bool valid_ = false;
  std::unordered_map<SwitchId, int> color_;
  std::vector<SwitchId> switch_ids_;
};

}  // namespace monocle
