#include "monocle/evidence.hpp"

#include <algorithm>
#include <cmath>

namespace monocle {

namespace {

/// Exponential decay by elapsed time against a half-life.
double decay_factor(netbase::SimTime elapsed, netbase::SimTime half_life) {
  if (half_life == 0) return 0.0;
  return std::exp2(-static_cast<double>(elapsed) /
                   static_cast<double>(half_life));
}

template <typename Map>
void decay_map(Map& map, double factor, double forget_below) {
  for (auto it = map.begin(); it != map.end();) {
    it->second.meta.confidence *= factor;
    if (it->second.meta.confidence < forget_below) {
      it = map.erase(it);
    } else {
      ++it;
    }
  }
}

template <typename Map, typename Key, typename Payload>
void sight(Map& map, const Key& key, const Payload& payload, double weight,
           netbase::SimTime now) {
  auto [it, fresh] = map.try_emplace(key);
  auto& entry = it->second;
  if (fresh) entry.meta.first_seen = now;
  entry.meta.confidence += weight;
  entry.meta.sightings += 1;
  entry.meta.last_seen = now;
  entry.payload = payload;
}

}  // namespace

void NetworkEvidence::decay_all(netbase::SimTime now) {
  if (last_observe_ == 0 || now <= last_observe_) return;
  const double factor =
      decay_factor(now - last_observe_, options_.half_life);
  decay_map(links_, factor, options_.forget_below);
  decay_map(switches_, factor, options_.forget_below);
  decay_map(isolated_, factor, options_.forget_below);
}

void NetworkEvidence::observe(std::span<const SwitchFailureReport> reports,
                              const NetworkView& view, netbase::SimTime now) {
  decay_all(now);
  last_observe_ = now;

  const NetworkDiagnosis raw =
      localize_network(reports, view, options_.localizer);

  for (const LinkDiagnosis& link : raw.links) {
    const LinkKey key{link.a, link.port_a, link.b, link.port_b};
    // Endpoint testimony is sticky across passes: a marginal gray link
    // whose two endpoints cross the group threshold in DIFFERENT passes
    // still ends up two-sided here, while ingress-contamination collateral
    // stays one-sided forever (diagnosis() keys on that).
    bool seen_a = link.reported_a;
    bool seen_b = link.reported_b;
    bool peer_monitored = link.peer_monitored;
    if (const auto it = links_.find(key); it != links_.end()) {
      seen_a = seen_a || it->second.payload.reported_a;
      seen_b = seen_b || it->second.payload.reported_b;
      peer_monitored = peer_monitored || it->second.payload.peer_monitored;
    }
    // Two independent endpoint testimonies are worth more than one.
    sight(links_, key, link, link.corroborated ? 1.5 : 1.0, now);
    LinkDiagnosis& held = links_[key].payload;
    held.reported_a = seen_a;
    held.reported_b = seen_b;
    held.peer_monitored = peer_monitored;
    held.corroborated = held.corroborated || (seen_a && seen_b);
  }
  for (const SwitchSuspect& sw : raw.switches) {
    // A whole-switch pattern already subsumes several corroborated links.
    sight(switches_, sw.sw, sw, 1.5, now);
  }
  for (const IsolatedRuleFault& fault : raw.isolated) {
    sight(isolated_, RuleKey{fault.sw, fault.cookie}, fault, 1.0, now);
  }
}

bool NetworkEvidence::confirmed(const Suspect& s) const {
  return s.confidence >= options_.confirm_confidence &&
         s.sightings >= options_.min_sightings &&
         s.last_seen - s.first_seen >= options_.min_age;
}

NetworkDiagnosis NetworkEvidence::diagnosis() const {
  NetworkDiagnosis out;
  for (const auto& [key, entry] : links_) {
    if (!confirmed(entry.meta)) continue;
    // Contamination adjudication: a link only ever blamed from one side,
    // although the silent endpoint is monitored and reporting, is probe
    // ingress-path collateral of some other faulty element — a genuinely
    // bad link fails egress probes on BOTH endpoints eventually.
    const LinkDiagnosis& link = entry.payload;
    if (options_.localizer.contamination_filter && link.peer_monitored &&
        !(link.reported_a && link.reported_b)) {
      continue;
    }
    out.links.push_back(link);
  }
  for (const auto& [sw, entry] : switches_) {
    if (confirmed(entry.meta)) out.switches.push_back(entry.payload);
  }
  for (const auto& [key, entry] : isolated_) {
    if (confirmed(entry.meta)) out.isolated.push_back(entry.payload);
  }
  // A confirmed switch subsumes its incident links, exactly like the
  // single-pass pipeline.
  if (!out.switches.empty()) {
    std::erase_if(out.links, [&](const LinkDiagnosis& link) {
      return std::any_of(out.switches.begin(), out.switches.end(),
                         [&](const SwitchSuspect& sw) {
                           return sw.sw == link.a ||
                                  (link.b != 0 && sw.sw == link.b);
                         });
    });
  }
  // Cross-pass parsimony: isolated faults that accumulated before a link
  // or switch on the same endpoints crossed the bar are the same ingress
  // contamination the localizer suppresses within one pass.
  if (!out.links.empty() || !out.switches.empty()) {
    std::erase_if(out.isolated, [&](const IsolatedRuleFault& fault) {
      for (const LinkDiagnosis& link : out.links) {
        if (fault.sw == link.a || (link.b != 0 && fault.sw == link.b)) {
          return true;
        }
      }
      for (const SwitchSuspect& sw : out.switches) {
        if (fault.sw == sw.sw) return true;
      }
      return false;
    });
  }
  std::sort(out.links.begin(), out.links.end(),
            [](const LinkDiagnosis& x, const LinkDiagnosis& y) {
              if (x.corroborated != y.corroborated) return x.corroborated;
              return x.fraction > y.fraction;
            });
  std::sort(out.switches.begin(), out.switches.end(),
            [](const SwitchSuspect& x, const SwitchSuspect& y) {
              return x.suspect_links > y.suspect_links;
            });
  std::sort(out.isolated.begin(), out.isolated.end(),
            [](const IsolatedRuleFault& x, const IsolatedRuleFault& y) {
              return x.sw != y.sw ? x.sw < y.sw : x.cookie < y.cookie;
            });
  return out;
}

double NetworkEvidence::link_confidence(SwitchId sw,
                                        std::uint16_t port) const {
  for (const auto& [key, entry] : links_) {
    const auto& [a, pa, b, pb] = key;
    if ((a == sw && pa == port) || (b == sw && pb == port)) {
      return entry.meta.confidence;
    }
  }
  return 0.0;
}

double NetworkEvidence::switch_confidence(SwitchId sw) const {
  const auto it = switches_.find(sw);
  return it == switches_.end() ? 0.0 : it->second.meta.confidence;
}

double NetworkEvidence::rule_confidence(SwitchId sw,
                                        std::uint64_t cookie) const {
  const auto it = isolated_.find(RuleKey{sw, cookie});
  return it == isolated_.end() ? 0.0 : it->second.meta.confidence;
}

}  // namespace monocle
