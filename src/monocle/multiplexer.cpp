#include "monocle/multiplexer.hpp"

#include "netbase/packet_crafter.hpp"
#include "netbase/probe_metadata.hpp"

namespace monocle {

bool Multiplexer::inject(SwitchId probed, std::uint16_t in_port,
                         std::vector<std::uint8_t> packet) {
  openflow::PacketOut po;
  po.buffer_id = 0xFFFFFFFF;
  po.data = std::move(packet);

  const auto peer = view_->peer(probed, in_port);
  if (peer) {
    // Upstream injection (Figure 1): the upstream switch emits the probe on
    // the port facing the probed switch; PacketOut bypasses its flow table.
    const auto it = senders_.find(peer->sw);
    if (it == senders_.end()) return false;
    po.in_port = openflow::kPortNone;
    po.actions = {openflow::Action::output(peer->port)};
    ++packet_outs_;
    it->second(openflow::make_message(0, po));
    return true;
  }
  // Fallback: OFPP_TABLE self-injection at the probed switch with the
  // desired in_port (classic OpenFlow 1.0 trick).
  const auto it = senders_.find(probed);
  if (it == senders_.end()) return false;
  po.in_port = in_port;
  po.actions = {openflow::Action::output(openflow::kPortTable)};
  ++packet_outs_;
  it->second(openflow::make_message(0, po));
  return true;
}

bool Multiplexer::on_packet_in(SwitchId from, const openflow::PacketIn& pi) {
  const auto parsed = netbase::parse_packet(pi.data);
  if (!parsed) return false;
  const auto meta = netbase::decode_probe_metadata(parsed->payload);
  if (!meta) return false;  // not a probe — production PacketIn
  const auto it = monitors_.find(meta->switch_id);
  if (it == monitors_.end()) return true;  // probe for an unmanaged switch
  it->second->on_probe_caught(from, pi.in_port, *parsed, *meta);
  return true;
}

}  // namespace monocle
