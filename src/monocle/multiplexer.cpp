#include "monocle/multiplexer.hpp"

#include "netbase/packet_crafter.hpp"
#include "netbase/probe_metadata.hpp"

namespace monocle {

bool Multiplexer::sender_up(SwitchId sw) const {
  const auto it = backends_.find(sw);
  return it == backends_.end() || it->second->up();
}

bool Multiplexer::inject(SwitchId probed, std::uint16_t in_port,
                         std::vector<std::uint8_t> packet) {
  openflow::PacketOut po;
  po.buffer_id = 0xFFFFFFFF;
  po.data = std::move(packet);

  const auto peer = view_->peer(probed, in_port);
  if (peer) {
    // Upstream injection (Figure 1): the upstream switch emits the probe on
    // the port facing the probed switch; PacketOut bypasses its flow table.
    const auto it = senders_.find(peer->sw);
    if (it == senders_.end() || !sender_up(peer->sw)) return false;
    po.in_port = openflow::kPortNone;
    po.actions = {openflow::Action::output(peer->port)};
    ++packet_outs_;
    it->second(openflow::make_message(0, po));
    return true;
  }
  // Fallback: OFPP_TABLE self-injection at the probed switch with the
  // desired in_port (classic OpenFlow 1.0 trick).
  const auto it = senders_.find(probed);
  if (it == senders_.end() || !sender_up(probed)) return false;
  po.in_port = in_port;
  po.actions = {openflow::Action::output(openflow::kPortTable)};
  ++packet_outs_;
  it->second(openflow::make_message(0, po));
  return true;
}

void Multiplexer::bind_backend(
    SwitchId sw, channel::SwitchBackend& backend, Monitor* monitor,
    std::function<void(const openflow::Message&)> fallback) {
  set_switch_sender(sw,
                    [&backend](const openflow::Message& m) { backend.send(m); });
  backends_[sw] = &backend;  // inject() consults its up() state
  backend.set_receiver([this, sw, monitor, fallback = std::move(fallback)](
                           const openflow::Message& m) {
    if (m.is<openflow::PacketIn>() &&
        on_packet_in(sw, m.as<openflow::PacketIn>())) {
      return;  // consumed as a probe
    }
    if (monitor != nullptr) {
      monitor->on_switch_message(m);
    } else if (fallback) {
      fallback(m);
    }
  });
  backend.set_state_handler([monitor](bool up) {
    if (monitor != nullptr) monitor->on_channel_state(up);
  });
  // Seed the Monitor with the backend's CURRENT state: a channel backend
  // bound before its first handshake starts down, so steady probing holds
  // off instead of failing rules into a channel that was never up.
  if (monitor != nullptr) monitor->on_channel_state(backend.up());
}

bool Multiplexer::route_flow_mod(SwitchId sw, const openflow::FlowMod& fm,
                                 std::uint32_t xid) {
  const auto it = monitors_.find(sw);
  if (it == monitors_.end()) return false;
  it->second->on_controller_message(openflow::make_message(xid, fm));
  return true;
}

bool Multiplexer::on_packet_in(SwitchId from, const openflow::PacketIn& pi) {
  const auto parsed = netbase::parse_packet(pi.data);
  if (!parsed) return false;
  const auto meta = netbase::decode_probe_metadata(parsed->payload);
  if (!meta) return false;  // not a probe — production PacketIn
  const auto it = monitors_.find(meta->switch_id);
  if (it == monitors_.end()) return true;  // probe for an unmanaged switch
  it->second->on_probe_caught(from, pi.in_port, *parsed, *meta);
  return true;
}

}  // namespace monocle
