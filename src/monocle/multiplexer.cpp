#include "monocle/multiplexer.hpp"

#include <atomic>

#include "netbase/packet_crafter.hpp"
#include "netbase/probe_metadata.hpp"

namespace monocle {

Multiplexer::InjectContext::InjectContext() {
  scratch = openflow::make_message(0, openflow::PacketOut{});
  // One warm buffer so even a worker's very first probe of the concurrent
  // phase stays allocation-free (probe frames are small).
  arena.prewarm(1, 256);
}

// ---------------------------------------------------------------------------
// Registration (cold path): ordinal interning + shard wiring
// ---------------------------------------------------------------------------

SwitchOrdinal Multiplexer::intern(SwitchId sw) {
  if (const SwitchOrdinal existing = ordinal_of(sw);
      existing != kInvalidOrdinal) {
    return existing;
  }
  const auto ord = static_cast<SwitchOrdinal>(shards_.size());
  auto shard = std::make_unique<Shard>();
  shard->sw = sw;
  shard->scratch = openflow::make_message(0, openflow::PacketOut{});
  shards_.push_back(std::move(shard));
  hot_.emplace_back();
  hot_.back().sw = sw;
  hot_.back().cold = shards_.back().get();
  ordinal_map_[sw] = ord;
  if (sw < kMaxDenseId) {
    if (ordinal_index_.size() <= sw) {
      ordinal_index_.resize(sw + 1, kInvalidOrdinal);
    }
    ordinal_index_[sw] = ord;
  }
  // hot_ may have reallocated: every slot's cold pointer is still valid
  // (shards_ holds unique_ptrs), but re-sync nothing else here — slots are
  // value-copied and self-contained.
  // A new switch can turn previously-dead injection routes live.
  invalidate_routes();
  return ord;
}

SwitchOrdinal Multiplexer::ordinal_of(SwitchId sw) const {
  if (sw < ordinal_index_.size()) return ordinal_index_[sw];
  if (sw >= kMaxDenseId) {
    const auto it = ordinal_map_.find(sw);
    if (it != ordinal_map_.end()) return it->second;
  }
  return kInvalidOrdinal;
}

void Multiplexer::sync_hot(SwitchOrdinal ord) {
  if (ord >= hot_.size()) return;
  Shard& shard = *shards_[ord];
  HotSlot& hot = hot_[ord];
  hot.monitor = shard.monitor;
  hot.backend = shard.backend;
  hot.routes = shard.routes.data();
  hot.route_count = static_cast<std::uint32_t>(shard.routes.size());
  // packet_outs intentionally survives rewiring — it is a lifetime counter
  // for the ordinal, matching the pre-hot-slot per-shard atomic.
}

SwitchOrdinal Multiplexer::register_monitor(SwitchId sw, Monitor* monitor) {
  const SwitchOrdinal ord = intern(sw);
  shards_[ord]->monitor = monitor;
  sync_hot(ord);
  invalidate_routes();
  return ord;
}

void Multiplexer::unregister_monitor(SwitchId sw) {
  const SwitchOrdinal ord = ordinal_of(sw);
  Shard* shard = shard_at(ord);
  if (shard == nullptr) return;
  // Erase ALL of the shard's wiring, not just the monitor: a sender or
  // backend left behind after teardown is a dangling pointer the next
  // inject would call into (the pre-fig11 bug).  A bound backend also
  // holds receiver/state-handler closures capturing the Monitor* — reset
  // them too, so destroying the Monitor right after this call is safe;
  // messages the backend delivers before a new bind_backend are dropped.
  // The ordinal itself stays reserved so cached ordinals keep resolving to
  // this (now inert) slot.
  if (shard->backend != nullptr) {
    shard->backend->set_receiver([](const openflow::Message&) {});
    shard->backend->set_state_handler([](bool) {});
  }
  shard->monitor = nullptr;
  shard->sender = nullptr;
  shard->backend = nullptr;
  shard->routes.clear();
  sync_hot(ord);
  invalidate_routes();
}

SwitchOrdinal Multiplexer::set_switch_sender(SwitchId sw, Sender sender) {
  const SwitchOrdinal ord = intern(sw);
  shards_[ord]->sender = std::move(sender);
  sync_hot(ord);
  invalidate_routes();
  return ord;
}

SwitchOrdinal Multiplexer::bind_backend(SwitchId sw,
                                        channel::SwitchBackend& backend,
                                        Monitor* monitor, Sender fallback) {
  const SwitchOrdinal ord = set_switch_sender(
      sw, [&backend](const openflow::Message& m) { backend.send(m); });
  shards_[ord]->backend = &backend;  // inject() consults its up() state
  sync_hot(ord);
  backend.set_receiver([this, ord, monitor, fallback = std::move(fallback)](
                           const openflow::Message& m) {
    if (m.is<openflow::PacketIn>() &&
        on_packet_in_at(ord, m.as<openflow::PacketIn>())) {
      return;  // consumed as a probe
    }
    if (monitor != nullptr) {
      monitor->on_switch_message(m);
    } else if (fallback) {
      fallback(m);
    }
  });
  backend.set_state_handler([monitor](bool up) {
    if (monitor != nullptr) monitor->on_channel_state(up);
  });
  // Seed the Monitor with the backend's CURRENT state: a channel backend
  // bound before its first handshake starts down, so steady probing holds
  // off instead of failing rules into a channel that was never up.
  if (monitor != nullptr) monitor->on_channel_state(backend.up());
  return ord;
}

std::uint64_t Multiplexer::packet_outs_sent(SwitchId sw) const {
  const SwitchOrdinal ord = ordinal_of(sw);
  if (ord >= hot_.size()) return 0;
  // atomic_ref<const T> is C++26; the const_cast is sound — the referenced
  // object is never actually const.
  return std::atomic_ref<std::uint64_t>(
             const_cast<std::uint64_t&>(hot_[ord].packet_outs))
      .load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Injection fast path
// ---------------------------------------------------------------------------

Multiplexer::Route& Multiplexer::route_for(SwitchOrdinal ord,
                                           std::uint16_t in_port) {
  Shard& shard = *shards_[ord];
  if (shard.routes.size() <= in_port) {
    shard.routes.resize(in_port + 1);
    // The resize may have moved the array the hot slot points at.
    hot_[ord].routes = shard.routes.data();
    hot_[ord].route_count = static_cast<std::uint32_t>(shard.routes.size());
  }
  Route& route = shard.routes[in_port];
  if (route.gen == routes_gen_) return route;
  // (Re)resolve — cold: first use of this ingress port, or the shard wiring
  // changed since.  Mirrors the legacy decision tree exactly: the peer's
  // EXISTENCE picks the branch; a missing sender on the chosen branch means
  // no injection path (never a silent fallback to the other branch).
  route = Route{};
  route.gen = routes_gen_;
  const auto peer = view_->peer(shard.sw, in_port);
  if (peer) {
    const SwitchOrdinal up = ordinal_of(peer->sw);
    const Shard* upstream = shard_at(up);
    if (upstream == nullptr || !upstream->sender) {
      route.dead = true;
    } else {
      route.deliver = up;
      route.out_port = peer->port;
    }
  } else if (!shard.sender) {
    route.dead = true;
  } else {
    route.deliver = ord;
    route.self_table = true;
  }
  return route;
}

void Multiplexer::warm_routes() {
  for (SwitchOrdinal ord = 0; ord < shards_.size(); ++ord) {
    for (const std::uint16_t port : view_->ports(shards_[ord]->sw)) {
      route_for(ord, port);
    }
  }
}

bool Multiplexer::send_packet_out(HotSlot& deliver, std::uint16_t po_in_port,
                                  std::uint16_t action_port,
                                  std::span<const std::uint8_t> packet,
                                  InjectContext* ctx) {
  Shard& cold = *deliver.cold;
  if (!cold.sender || (deliver.backend != nullptr && !deliver.backend->up())) {
    return false;
  }
  // The envelope/arena pair: worker-local when a context is passed (two
  // workers may deliver through the same upstream shard), the delivering
  // shard's own in single-threaded mode.
  openflow::Message& scratch = ctx != nullptr ? ctx->scratch : cold.scratch;
  netbase::BufferArena& arena = ctx != nullptr ? ctx->arena : cold.arena;
  auto& po = scratch.as<openflow::PacketOut>();
  // The data buffer cycles through the arena: acquire -> fill -> send ->
  // release keeps one cache-warm allocation alive instead of a malloc/free
  // pair per probe.
  auto buf = arena.acquire(packet.size());
  buf.assign(packet.begin(), packet.end());
  po.data = std::move(buf);
  po.buffer_id = 0xFFFFFFFF;
  po.in_port = po_in_port;
  po.actions.resize(1);
  openflow::Action& action = po.actions.front();
  action.type = openflow::Action::Type::kOutput;
  action.port = action_port;
  std::atomic_ref<std::uint64_t>(deliver.packet_outs)
      .fetch_add(1, std::memory_order_relaxed);
  packet_outs_.fetch_add(1, std::memory_order_relaxed);
  cold.sender(scratch);
  arena.release(std::move(po.data));
  po.data.clear();  // moved-from: leave the scratch message well-defined
  return true;
}

bool Multiplexer::inject_at(SwitchOrdinal probed, std::uint16_t in_port,
                            std::span<const std::uint8_t> packet,
                            InjectContext* ctx) {
  if (probed >= hot_.size()) return false;
  HotSlot& hot = hot_[probed];
  if (compat_map_routing_) return inject_compat(hot.sw, in_port, packet);
  const Route* route;
  if (in_port < hot.route_count && hot.routes[in_port].gen == routes_gen_)
      [[likely]] {
    // Steady state: one dense-array read, no resize, no resolve — the only
    // path the concurrent phase takes after warm_routes().
    route = &hot.routes[in_port];
  } else {
    route = &route_for(probed, in_port);
  }
  if (route->dead) return false;
  if (route->deliver >= hot_.size()) return false;
  HotSlot& deliver = hot_[route->deliver];
  if (route->self_table) {
    // Fallback: OFPP_TABLE self-injection at the probed switch with the
    // desired in_port (classic OpenFlow 1.0 trick).
    return send_packet_out(deliver, in_port, openflow::kPortTable, packet,
                           ctx);
  }
  // Upstream injection (Figure 1): the upstream switch emits the probe on
  // the port facing the probed switch; PacketOut bypasses its flow table.
  return send_packet_out(deliver, openflow::kPortNone, route->out_port,
                         packet, ctx);
}

bool Multiplexer::inject(SwitchId probed, std::uint16_t in_port,
                         std::span<const std::uint8_t> packet) {
  if (compat_map_routing_) return inject_compat(probed, in_port, packet);
  SwitchOrdinal ord = ordinal_of(probed);
  // A probe can target a switch nothing was registered for (its upstream
  // neighbor does the PacketOut); give it a route-cache slot on first use.
  if (ord == kInvalidOrdinal) ord = intern(probed);
  return inject_at(ord, in_port, packet);
}

bool Multiplexer::inject_compat(SwitchId probed, std::uint16_t in_port,
                                std::span<const std::uint8_t> packet) {
  // The pre-flat cost profile, preserved as the parity/benchmark baseline:
  // one hash lookup per routing decision and a freshly heap-allocated
  // PacketOut per probe.
  openflow::PacketOut po;
  po.buffer_id = 0xFFFFFFFF;
  po.data.assign(packet.begin(), packet.end());

  const auto peer = view_->peer(probed, in_port);
  if (peer) {
    const auto it = ordinal_map_.find(peer->sw);
    if (it == ordinal_map_.end()) return false;
    Shard& deliver = *shards_[it->second];
    if (!deliver.sender || !sender_up(deliver)) return false;
    po.in_port = openflow::kPortNone;
    po.actions = {openflow::Action::output(peer->port)};
    std::atomic_ref<std::uint64_t>(hot_[it->second].packet_outs)
        .fetch_add(1, std::memory_order_relaxed);
    packet_outs_.fetch_add(1, std::memory_order_relaxed);
    deliver.sender(openflow::make_message(0, std::move(po)));
    return true;
  }
  const auto it = ordinal_map_.find(probed);
  if (it == ordinal_map_.end()) return false;
  Shard& deliver = *shards_[it->second];
  if (!deliver.sender || !sender_up(deliver)) return false;
  po.in_port = in_port;
  po.actions = {openflow::Action::output(openflow::kPortTable)};
  std::atomic_ref<std::uint64_t>(hot_[it->second].packet_outs)
      .fetch_add(1, std::memory_order_relaxed);
  packet_outs_.fetch_add(1, std::memory_order_relaxed);
  deliver.sender(openflow::make_message(0, std::move(po)));
  return true;
}

// ---------------------------------------------------------------------------
// Collection fast path
// ---------------------------------------------------------------------------

bool Multiplexer::on_packet_in(SwitchId from, const openflow::PacketIn& pi) {
  if (compat_map_routing_) return on_packet_in_compat(from, pi);
  // Zero-copy decode: header and payload stay views into pi.data, and the
  // metadata fields are read straight out of the payload bytes.  Checksum
  // validation is skipped — classification never consults it, and the two
  // extra passes per PacketIn are measurable at fleet scale.
  const auto view = netbase::parse_packet_view(pi.data,
                                               /*validate_checksums=*/false);
  if (!view) return false;
  const auto meta = netbase::ProbeMetadataView::parse(view->payload);
  if (!meta) return false;  // not a probe — production PacketIn
  const SwitchOrdinal ord = ordinal_of(meta->switch_id());
  if (ord >= hot_.size() || hot_[ord].monitor == nullptr) {
    return true;  // probe for an unmanaged switch: consumed and dropped
  }
  hot_[ord].monitor->on_probe_caught(from, pi.in_port, *view,
                                     meta->materialize());
  return true;
}

bool Multiplexer::on_packet_in_at(SwitchOrdinal from,
                                  const openflow::PacketIn& pi) {
  const Shard* shard = shard_at(from);
  return on_packet_in(shard == nullptr ? 0 : shard->sw, pi);
}

bool Multiplexer::on_packet_in_compat(SwitchId from,
                                      const openflow::PacketIn& pi) {
  // Pre-flat profile: owning parse (payload copy) + map-routed dispatch.
  const auto parsed = netbase::parse_packet(pi.data);
  if (!parsed) return false;
  const auto meta = netbase::decode_probe_metadata(parsed->payload);
  if (!meta) return false;
  const auto it = ordinal_map_.find(meta->switch_id);
  if (it == ordinal_map_.end() || shards_[it->second]->monitor == nullptr) {
    return true;
  }
  const netbase::PacketView view{parsed->header, parsed->payload,
                                 parsed->checksums_valid};
  shards_[it->second]->monitor->on_probe_caught(from, pi.in_port, view, *meta);
  return true;
}

// ---------------------------------------------------------------------------
// FlowMod routing
// ---------------------------------------------------------------------------

bool Multiplexer::route_flow_mod(SwitchId sw, const openflow::FlowMod& fm,
                                 std::uint32_t xid) {
  Monitor* monitor = nullptr;
  if (compat_map_routing_) {
    const auto it = ordinal_map_.find(sw);
    if (it != ordinal_map_.end()) monitor = shards_[it->second]->monitor;
  } else {
    const Shard* shard = shard_at(ordinal_of(sw));
    if (shard != nullptr) monitor = shard->monitor;
  }
  if (monitor == nullptr) return false;
  monitor->on_controller_message(openflow::make_message(xid, fm));
  return true;
}

}  // namespace monocle
