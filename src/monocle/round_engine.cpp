#include "monocle/round_engine.hpp"

#include <limits>

namespace monocle {

namespace {
thread_local std::size_t tls_worker = std::numeric_limits<std::size_t>::max();
}  // namespace

std::size_t RoundEngine::current_worker() { return tls_worker; }

RoundEngine::RoundEngine(std::size_t workers) {
  const std::size_t n = workers == 0 ? 1 : workers;
  tasks_.assign(n, nullptr);
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

RoundEngine::~RoundEngine() { stop(); }

bool RoundEngine::running() const {
  std::lock_guard lock(mu_);
  return !stop_;
}

void RoundEngine::set_round_job(
    std::function<std::size_t(std::size_t)> job) {
  std::lock_guard ops(ops_mu_);
  std::lock_guard lock(mu_);
  round_job_ = std::move(job);
}

std::size_t RoundEngine::run_round() {
  std::lock_guard ops(ops_mu_);
  std::unique_lock lock(mu_);
  if (stop_ || !round_job_) return 0;
  round_sum_ = 0;
  outstanding_ += threads_.size();
  ++round_seq_;
  cv_workers_.notify_all();
  cv_done_.wait(lock, [this] { return outstanding_ == 0; });
  return round_sum_;
}

void RoundEngine::run_on(std::size_t worker,
                         const std::function<void()>& task) {
  std::lock_guard ops(ops_mu_);
  std::unique_lock lock(mu_);
  if (stop_ || worker >= tasks_.size() || !task) return;
  tasks_[worker] = &task;
  ++outstanding_;
  cv_workers_.notify_all();
  cv_done_.wait(lock, [this] { return outstanding_ == 0; });
}

void RoundEngine::quiesce() {
  // Submissions are serialized and each blocks until its work finished, so
  // by the time this acquires ops_mu_ there is nothing outstanding; the
  // mutex handshake alone publishes every worker's prior writes.
  std::lock_guard ops(ops_mu_);
  std::unique_lock lock(mu_);
  cv_done_.wait(lock, [this] { return outstanding_ == 0; });
}

void RoundEngine::stop() {
  std::lock_guard ops(ops_mu_);
  {
    std::lock_guard lock(mu_);
    if (stop_) return;
    stop_ = true;
    cv_workers_.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void RoundEngine::worker_loop(std::size_t index) {
  tls_worker = index;
  std::unique_lock lock(mu_);
  std::uint64_t seen_seq = 0;
  for (;;) {
    cv_workers_.wait(lock, [&] {
      return stop_ || tasks_[index] != nullptr || round_seq_ != seen_seq;
    });
    if (tasks_[index] != nullptr) {
      const std::function<void()>* task = tasks_[index];
      lock.unlock();
      (*task)();
      lock.lock();
      tasks_[index] = nullptr;
      --outstanding_;
      cv_done_.notify_all();
      continue;  // re-check: a round may have been signaled meanwhile
    }
    if (round_seq_ != seen_seq) {
      seen_seq = round_seq_;
      lock.unlock();
      const std::size_t contribution = round_job_(index);
      lock.lock();
      round_sum_ += contribution;
      --outstanding_;
      cv_done_.notify_all();
      continue;
    }
    break;  // stop_ set and no pending work for this worker
  }
}

}  // namespace monocle
