// The Monitor proxy — one per monitored switch (paper §2, §3, §4, §7).
//
// The Monitor sits on the control channel between the controller and one
// switch.  It forwards messages transparently while:
//
//  * mirroring the switch's expected flow table from the FlowMods it proxies;
//  * steady-state mode (§3): cycling through installed rules at a configured
//    probe rate, injecting a probe per rule and raising alarms for rules
//    whose probes stop coming back (with retries and a detection timeout);
//  * dynamic mode (§4): generating a probe for every rule add/modify/delete
//    the controller issues, re-injecting it until the data plane provably
//    applies the update, then acknowledging — by releasing the held-back
//    BarrierReply and/or invoking the confirmation callback;
//  * queueing updates that overlap a still-unconfirmed update (§4.2);
//  * optional drop-postponing (§4.3) for reliable drop-rule confirmation.
//
// Probes are generated with the SAT machinery of probe_generator.hpp and are
// cached per rule.  Table state is an epoch-versioned core
// (openflow::TableVersion): every FlowMod becomes a typed TableDelta at the
// one place updates enter the system, and the delta — not a whole-table
// match scan — drives precise invalidation of exactly the overlapping
// rules' cached probes, keeps the live delta-maintained ProbeBatchSessions
// in sync, and stamps per-rule epoch floors so probe echoes generated
// against an older table version are classified stale, never as failures.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "monocle/catching.hpp"
#include "monocle/probe.hpp"
#include "monocle/probe_batch.hpp"
#include "monocle/probe_generator.hpp"
#include "monocle/runtime.hpp"
#include "netbase/probe_metadata.hpp"
#include "netbase/packet_crafter.hpp"
#include "netbase/probe_wire.hpp"
#include "openflow/flow_table.hpp"
#include "openflow/messages.hpp"
#include "openflow/table_version.hpp"
#include "telemetry/stats_ring.hpp"

namespace monocle {

// checkpoint.hpp (which includes this header) defines these; the Monitor's
// snapshot/restore API only needs references.
struct Checkpoint;
class CheckpointWriter;

/// Lifecycle state of a monitored rule.
enum class RuleState : std::uint8_t {
  kPending,        ///< update issued, not yet confirmed in the data plane
  kConfirmed,      ///< present and behaving per the last probe
  kFailed,         ///< probes prove the rule missing/misbehaving
  kUnmonitorable,  ///< no probe exists (§3.5) — reported, not probed
  kSuspect,        ///< timed out; K-of-N confirmation probes deciding
};

/// An alarm raised by steady-state monitoring.
struct RuleAlarm {
  std::uint64_t cookie = 0;
  netbase::SimTime when = 0;
  std::size_t failed_rule_count = 0;  ///< rules currently failed (threshold gate)
};

/// Per-rule probe cache shared across Monitor instances/trials.
struct ProbeCache {
  struct Entry {
    std::optional<Probe> probe;
    ProbeFailure failure = ProbeFailure::kNone;
    /// Table epoch the entry was generated against (observability; the
    /// churn parity suite asserts entries are never served across an
    /// invalidating delta).
    openflow::Epoch epoch = 0;
    /// Crafted wire frame, built on the first injection and re-stamped
    /// (generation/nonce + checksum refresh, zero allocations) on every
    /// later one.  Dies with the entry, so delta invalidation keeps wire
    /// bytes and probe in lockstep.
    netbase::ProbeWire wire;
  };
  std::unordered_map<std::uint64_t, Entry> entries;
};

/// Aggregate Monitor statistics.
struct MonitorStats {
  std::uint64_t probes_injected = 0;
  std::uint64_t probes_caught = 0;
  std::uint64_t stale_probes = 0;
  std::uint64_t probe_generations = 0;
  std::uint64_t updates_confirmed = 0;
  std::uint64_t updates_queued = 0;
  std::uint64_t alarms = 0;
  std::uint64_t flowmods_forwarded = 0;
  std::uint64_t channel_disconnects = 0;  ///< down transitions observed
  // Probe-cache observability (delta-driven maintenance, PR 4).
  std::uint64_t probe_cache_hits = 0;     ///< probe_for served from cache
  std::uint64_t probe_cache_misses = 0;   ///< probe_for had to generate
  std::uint64_t probe_invalidations = 0;  ///< cache entries dropped by deltas
  std::uint64_t deltas_applied = 0;       ///< TableDeltas that entered this shard
  std::uint64_t delta_regens = 0;    ///< probes (re)generated on a live session
  std::uint64_t scratch_regens = 0;  ///< ... via throwaway sessions / one-shot
  /// Echoes OR timeouts classified stale because the probe's injection
  /// epoch predates a rule/channel floor.  NOT a subset of stale_probes:
  /// stale_probes counts stale ECHO arrivals only, while a timeout of an
  /// epoch-stale probe counts here alone.
  std::uint64_t stale_epoch_drops = 0;
  // Robust verdict machine (loss/flap tolerance): steady-state suspicion.
  std::uint64_t probe_retries = 0;       ///< steady re-injections after timeout
  std::uint64_t suspects_raised = 0;     ///< timeout trains escalated to suspect
  std::uint64_t suspects_confirmed = 0;  ///< suspects K-of-N-confirmed failed
  std::uint64_t flap_suppressions = 0;   ///< suspects cleared without failing
  // Confirm-latency histogram (update issued -> data-plane confirmed),
  // fixed buckets per telemetry::kConfirmLatencyBoundsNs.  Exported through
  // the telemetry ring and rendered as a Prometheus histogram.
  std::uint64_t confirm_latency_count = 0;
  std::uint64_t confirm_latency_sum_ns = 0;
  std::array<std::uint64_t, telemetry::kConfirmLatencyBuckets>
      confirm_latency_hist{};
  std::chrono::nanoseconds generation_time{0};
  // Solver/session health (PR 9): sat::SolverStats sweep counters
  // aggregated across the shard's live batch sessions plus everything
  // absorbed from sessions retired by background rebuilds.  Refreshed by
  // refresh_solver_stats() (publish_telemetry does it per round) so benches
  // and fig10/fig14 report solver health without poking sessions directly.
  std::uint64_t solver_sweeps = 0;           ///< simplify() arena sweeps
  std::uint64_t solver_retired_clauses = 0;  ///< clauses reclaimed by sweeps
  std::uint64_t solver_retired_words = 0;    ///< arena words reclaimed
  std::uint64_t solver_live_words = 0;       ///< current live arena words
  std::uint64_t solver_retired_vars = 0;     ///< top-level-fixed session vars
  std::uint64_t solver_live_vars = 0;        ///< still-branchable vars
  std::uint64_t session_rebuilds = 0;        ///< background session rebuilds
  std::uint64_t session_parity_fails = 0;    ///< rebuilds vetoed by parity
  std::uint64_t floor_sweeps = 0;  ///< rule_floor_ watermark sweeps run
};

/// The per-switch monitoring proxy — Monocle's core actor (paper Figure 1).
///
/// One Monitor instance owns one switch: it mirrors the switch's expected
/// flow table from the FlowMods it forwards, generates SAT-derived probes
/// for each rule (probe_generator.hpp / probe_batch.hpp), injects them via
/// the Multiplexer, and classifies the echoes the Multiplexer routes back.
/// Per-rule verdicts surface as RuleState transitions and threshold-gated
/// RuleAlarms; the Localizer (localizer.hpp) and the network-wide Fleet
/// (fleet.hpp) consume them to explain failures at link/switch granularity.
/// Steady-state probing is either self-paced (start(), a probe-rate timer)
/// or externally paced in fleet rounds (start_externally_paced() +
/// steady_probe_burst()).
class Monitor {
 public:
  struct Config {
    SwitchId switch_id = 0;
    /// Steady-state probing rate (probes/second); 0 disables steady-state.
    double steady_probe_rate = 500.0;
    /// Delay before the first steady-state probe, so pre-installed catching
    /// rules have provably reached the data plane.
    netbase::SimTime steady_warmup = 200 * netbase::kMillisecond;
    /// Retries per probe before declaring failure ...
    int probe_retries = 3;
    /// ... within this total detection timeout (§8.1.1: 150 ms).
    netbase::SimTime probe_timeout = 150 * netbase::kMillisecond;
    /// Re-injection period while confirming an update (§4.1).
    netbase::SimTime update_probe_interval = 2 * netbase::kMillisecond;
    /// Simulated probe-computation latency charged before the first
    /// injection of an update probe (the paper measures 1.48–4.03 ms of
    /// real generation time; §8.2).
    netbase::SimTime generation_delay = 2 * netbase::kMillisecond;
    /// Consecutive silent injections that confirm a *negative* update
    /// (drop-rule install without drop-postponing; §3.3).
    int negative_confirm_tries = 3;
    netbase::SimTime negative_confirm_timeout = 15 * netbase::kMillisecond;
    /// K-of-N suspect confirmation (robust verdicts under probe loss): when
    /// confirm_probes > 0, a steady probe train that exhausts its retries
    /// marks the rule SUSPECT instead of failed and re-probes up to
    /// confirm_probes more times with geometric backoff.  Only
    /// confirm_failures additional absent/timed-out verdicts confirm the
    /// failure; a single present echo — or running out of confirmation
    /// probes without enough strikes — clears the suspicion (counted as a
    /// flap suppression).  0 = legacy behaviour: the first exhausted train
    /// fails the rule immediately (the Figure 4 detection-latency profile).
    int confirm_probes = 0;
    int confirm_failures = 2;
    netbase::SimTime confirm_backoff = 20 * netbase::kMillisecond;
    double confirm_backoff_factor = 2.0;
    /// Raise steady-state alarms only once this many rules are failed
    /// (Figure 4's threshold knob).
    std::size_t alarm_threshold = 1;
    /// Hold BarrierReplies until prior updates are confirmed in hardware.
    bool hold_barriers = true;
    /// §4.3 drop-postponing for reliable drop-rule confirmation.
    bool drop_postponing = false;
    /// Give up on an unconfirmed update after this long (alarm instead).
    netbase::SimTime update_give_up = 10 * netbase::kSecond;
    /// Table-miss behaviour of the switch (default: drop).
    openflow::ActionList miss_actions{};
    ProbeGenerator::Options gen;
    /// Batched probe generation through table-scoped solver sessions
    /// (probe_batch.hpp): pre-fills the probe cache at steady-state start
    /// and re-fills it (coalesced) after overlapping-probe invalidation,
    /// instead of paying a fresh SAT encoding per rule on the probing path.
    bool batch_generation = true;
    /// Worker threads for batch generation; 0 = hardware concurrency.
    int batch_threads = 0;
    /// Delta-driven probe maintenance (PR 4): keep one live
    /// ProbeBatchSession per collect group, synced to every TableDelta via
    /// apply_delta(), and regenerate invalidated probes on its warm
    /// incremental solver.  Off: every refill re-encodes through throwaway
    /// sessions (the invalidate-and-refill baseline fig10 compares against).
    bool delta_maintenance = true;
    /// Refill batches larger than this bypass the live sessions and go
    /// through the parallel generate_all() path (initial warm-up of a big
    /// table wants the worker pool; churn refills want the warm solver).
    std::size_t live_session_batch_limit = 256;
    /// Steady-state probes re-stamp one cached wire frame per rule
    /// (generation/nonce patch + checksum refresh) instead of re-crafting
    /// the packet per injection — the zero-allocation fast path.  Off:
    /// every injection encodes and crafts from scratch (the pre-fig11 cost
    /// profile, kept as the parity/benchmark baseline; bytes on the wire
    /// are identical either way, asserted by tests/scaleout_test.cpp).
    bool reuse_probe_wire = true;
    // --- endurance controls (PR 9; docs/DESIGN.md §14) -------------------
    /// Background live-session rebuild: when a batch session's cumulative
    /// retired mass dominates its live mass by session_rebuild_factor — and
    /// exceeds the absolute minimum below, so short runs never churn
    /// sessions — the session is flagged due (session_rebuild_due()) and
    /// rebuild_live_sessions() replaces it with a fresh one off the round
    /// path, parity-checked against the old session before the swap.
    /// Domination is measured on two independent axes, either suffices:
    ///  * arena words: SolverStats::retired_arena_words vs. the live clause
    ///    arena (sessions whose query-local clauses are ternary or wider);
    ///  * retired variables: top-level-fixed vars vs. live vars (binary-
    ///    dominated encodings never touch the clause arena — their aging is
    ///    the per-query variable/watch-list growth the arena cannot see).
    bool session_rebuild = true;
    double session_rebuild_factor = 8.0;
    std::size_t session_rebuild_min_words = 1u << 16;
    std::size_t session_rebuild_min_vars = 1u << 14;
    /// rule_floor_ watermark sweep trigger: sweep when the floor map grows
    /// past max(this, 2 × its post-sweep size).  Bounds the map under
    /// modify-heavy churn streams whose floors kDelete never erases.
    std::size_t floor_sweep_min = 256;
  };

  /// Host-environment callbacks.  All functions must be set before start().
  struct Hooks {
    std::function<void(const openflow::Message&)> to_switch;
    std::function<void(const openflow::Message&)> to_controller;
    /// Injects `packet` so it enters the monitored switch on `in_port`
    /// (implemented by the Multiplexer via an upstream PacketOut).  The
    /// bytes are borrowed for the duration of the call — the fast path
    /// re-stamps one cached frame per rule, so handing out ownership would
    /// force a copy per probe.  Returns false if injection is impossible.
    std::function<bool(std::uint16_t in_port,
                       std::span<const std::uint8_t> packet)>
        inject;
    /// Steady-state alarm (threshold-gated).
    std::function<void(const RuleAlarm&)> on_alarm;
    /// A dynamic update reached the data plane (cookie, confirm time).
    std::function<void(std::uint64_t, netbase::SimTime)> on_update_confirmed;
    /// A dynamic update did not confirm within update_give_up.
    std::function<void(std::uint64_t, netbase::SimTime)> on_update_failed;
    /// Observes every TableDelta this Monitor applies to its expected
    /// table, after invalidation/session sync (the Fleet chains this to
    /// route per-shard epoch streams).
    std::function<void(const openflow::TableDelta&)> on_delta;
    /// A rule's steady-state verdict changed: kSuspect when suspicion is
    /// raised, kFailed when it is confirmed, kConfirmed when a suspicion or
    /// failure clears (flap suppression / recovery).  Carries the table
    /// epoch at the transition; the Fleet journals this stream
    /// (telemetry/journal.hpp).
    std::function<void(std::uint64_t cookie, RuleState state,
                       openflow::Epoch epoch)>
        on_verdict;
    /// The control channel transitioned up/down, after the Monitor's own
    /// outage handling ran.  Fires on genuine transitions only.
    std::function<void(bool up)> on_channel_change;
  };

  Monitor(Config config, Runtime* runtime, const NetworkView* view,
          const CatchPlan* plan, Hooks hooks);

  /// Pre-installs the catching/filter rules on the switch and seeds them as
  /// confirmed in the expected table (paper §2: done before monitoring).
  void install_infrastructure();

  /// Starts the steady-state probing cycle.
  void start();

  /// Marks steady-state monitoring active WITHOUT self-scheduling probe
  /// ticks: probe pacing is driven externally (the Fleet's coloring rounds)
  /// through steady_probe_burst().  Cache warm-up/refill behaves as in
  /// start().
  void start_externally_paced();

  /// Injects up to `max_probes` steady-state probes (continuing the rule
  /// cycle); at most one probe per rule per call.  Returns the number
  /// injected.  No-op unless monitoring was started.
  std::size_t steady_probe_burst(std::size_t max_probes);

  /// Stops all monitoring activity and cancels every pending timer this
  /// Monitor scheduled (steady ticks, probe timeouts, update re-injection
  /// and give-up timers, cache refills).  Unconfirmed updates are dropped
  /// without callbacks; the expected table and rule states stay readable.
  /// Terminal: used for shard teardown, not for pause/resume.
  void stop();

  /// Batch-generates probes for every monitorable rule not yet cached (one
  /// ProbeBatchSession pass per collect group).  The Fleet calls this from
  /// its shared warm-up worker pool before starting rounds; safe to call
  /// concurrently on DIFFERENT Monitor instances.
  void warm_probe_cache();

  /// --- control-channel endpoints (wired by the host) -------------------
  void on_controller_message(const openflow::Message& msg);
  void on_switch_message(const openflow::Message& msg);

  /// The switch's control channel went down / came back up (wired by
  /// Multiplexer::bind_backend from the SwitchBackend's state handler).
  ///
  /// Down: steady probing pauses and every in-flight probe is dropped with
  /// its timer cancelled — a disconnect leaves nothing dangling and no rule
  /// is failed for probes the channel ate.  Up again: the catching
  /// infrastructure is re-asserted (the switch may have restarted), the
  /// probe generation is bumped so pre-disconnect echoes read as stale, and
  /// the steady cycle re-arms from the top.  Pending dynamic updates keep
  /// their re-injection cadence (their probes flow again once the backend's
  /// queue flushes).
  void on_channel_state(bool up);
  [[nodiscard]] bool channel_up() const { return channel_up_; }

  /// A probe for this switch was caught by `catcher` on its `catcher_in_port`
  /// (routed here by the Multiplexer).  `packet` borrows from the PacketIn
  /// being dispatched (zero-copy decode); it is consumed within the call.
  void on_probe_caught(SwitchId catcher, std::uint16_t catcher_in_port,
                       const netbase::PacketView& packet,
                       const netbase::ProbeMetadata& meta);

  /// --- test/benchmark interface ----------------------------------------
  /// Adds `rule` to the expected table as already-confirmed without touching
  /// the switch (harness seeds the switch separately).
  void seed_rule(const openflow::Rule& rule);

  /// Shares a probe cache across monitors/trials.  Clears the steady cycle:
  /// its slots cache Entry* into the outgoing cache's map.
  void set_probe_cache(std::shared_ptr<ProbeCache> cache) {
    cache_ = std::move(cache);
    steady_order_.clear();
    steady_pos_ = 0;
  }

  [[nodiscard]] const openflow::FlowTable& expected_table() const {
    return expected_.table();
  }
  /// The versioned table core (snapshots, epoch).
  [[nodiscard]] const openflow::TableVersion& table_version() const {
    return expected_;
  }
  /// Current table epoch (advances per applied delta and per reconnect).
  [[nodiscard]] openflow::Epoch epoch() const { return expected_.epoch(); }
  [[nodiscard]] RuleState rule_state(std::uint64_t cookie) const;
  [[nodiscard]] std::size_t failed_rule_count() const { return failed_.size(); }
  /// Cookies of rules currently failed (input for failure localization).
  [[nodiscard]] const std::unordered_set<std::uint64_t>& failed_rules() const {
    return failed_;
  }
  [[nodiscard]] std::size_t pending_update_count() const {
    return updates_.size();
  }
  /// Cookies with an in-flight dynamic update.  Their probe traffic is
  /// confirmation, not failure evidence — network localization excludes
  /// them from corroboration (fleet.hpp wires this through the
  /// SwitchFailureReport::excluded channel).
  [[nodiscard]] std::vector<std::uint64_t> pending_update_cookies() const {
    std::vector<std::uint64_t> out;
    out.reserve(updates_.size());
    for (const auto& [cookie, job] : updates_) out.push_back(cookie);
    return out;
  }
  /// Rules currently under K-of-N failure confirmation.
  [[nodiscard]] std::size_t suspect_rule_count() const {
    return suspects_.size();
  }
  /// Probes injected and not yet resolved (caught, timed out, or stale).
  [[nodiscard]] std::size_t outstanding_probe_count() const {
    return outstanding_.size();
  }
  /// Live staleness-floor entries (bounded by the watermark sweep; the
  /// modify-churn endurance test reads this).
  [[nodiscard]] std::size_t rule_floor_count() const {
    return rule_floor_.size();
  }
  /// Age of the shard's stalest steadily-monitorable rule: now minus the
  /// last steady injection for it (rules never probed age from 0).  The
  /// Fleet samples this between rounds as the BudgetScheduler's staleness
  /// pressure signal.  O(rules).
  [[nodiscard]] netbase::SimTime steady_staleness_max() const;
  /// Appends every steadily-monitorable rule's staleness (as defined above)
  /// to `out` — the fig14 bench builds its p95 from this.
  void collect_staleness(std::vector<netbase::SimTime>& out) const;
  /// True when any live batch session's retired-clause mass dominates (see
  /// Config::session_rebuild*).  Cheap: O(live sessions).
  [[nodiscard]] bool session_rebuild_due() const;
  /// Rebuilds every dominated live session against the current table: a
  /// fresh ProbeBatchSession is constructed, parity-checked against the
  /// retiring one on a sample rule, and swapped in (the old session's
  /// solver stats are absorbed into MonitorStats first).  A parity mismatch
  /// vetoes that swap (counted, old session kept).  Must run off the probe
  /// path — the Fleet drives it between rounds, possibly from its warm-up
  /// pool (safe: touches only this shard's sessions/stats).  Returns
  /// sessions swapped.
  std::size_t rebuild_live_sessions();
  /// Folds live-session solver stats (plus the absorbed base of retired
  /// sessions) into stats() — see MonitorStats solver fields.
  void refresh_solver_stats();
  /// Rules eligible for steady-state probing (installed, not infrastructure,
  /// not unmonitorable).
  [[nodiscard]] std::size_t monitorable_rule_count() const;
  [[nodiscard]] const MonitorStats& stats() const { return stats_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// Mutable access to the hooks, so harnesses can attach observers
  /// (alarm/confirmation callbacks) after the transport hooks are wired.
  Hooks& hooks_for_test() { return hooks_; }

  /// --- telemetry (telemetry/stats_ring.hpp; docs/DESIGN.md §13) ---------
  /// Attaches the per-shard stats ring this Monitor publishes into.  The
  /// ring must outlive the Monitor (the TelemetryHub owns it).  Set before
  /// rounds start, or from the shard's owning worker.
  void set_stats_ring(telemetry::StatsRing* ring) { stats_ring_ = ring; }
  /// Publishes one epoch-stamped StatsSample of every exported counter into
  /// the attached ring (no-op without one).  Runs automatically at the end
  /// of every externally paced burst — i.e. once per round, on the owning
  /// worker, which is what keeps every exported counter torn-read-free: the
  /// export thread only ever reads ring slots, never live MonitorStats.
  void publish_telemetry();

  /// The precise-invalidation predicate: true when the cached `entry` for
  /// rule `cookie` provably survives `delta` — probes whose packet the
  /// changed rule cannot match (it then enters neither Hit nor either
  /// outcome prediction), kUnsupported verdicts (a property of the rule's
  /// own actions alone), and kShadowed verdicts not exposed by deleting a
  /// higher rule.  Public so the churn parity suite and fig10 exercise the
  /// exact predicate the Monitor runs.
  static bool delta_survives(const ProbeCache::Entry& entry,
                             const openflow::TableDelta& delta,
                             std::uint64_t cookie);

  /// --- crash-safe warm restart (checkpoint.hpp; docs/DESIGN.md §15) ------
  /// Serializes this shard's epoch-consistent snapshot into `out` (cleared,
  /// capacity reused): verdict map, per-rule floors + channel barrier floor,
  /// suspect machine, and the probe-cache manifest (infrastructure rules
  /// excluded — install_infrastructure recreates them).  Must run with the
  /// shard quiescent w.r.t. its own worker — the Fleet calls it between
  /// rounds, after the engine barrier.  Zero allocations once the buffer's
  /// capacity is warm.  `budget` is the fleet-planned elastic budget to
  /// carry (0 when budgets are static).
  void encode_checkpoint(std::vector<std::uint8_t>& out,
                         std::uint64_t budget) const;

  struct RestoreStats {
    std::size_t verdicts = 0;          ///< rule states seeded (silently)
    std::size_t suspects = 0;          ///< suspect entries re-armed
    std::size_t floors = 0;            ///< per-rule epoch floors restored
    std::size_t manifest_admitted = 0; ///< probes re-admitted from manifest
    std::size_t manifest_dropped = 0;  ///< stale/orphaned manifest entries
  };

  /// Rehydrates this Monitor from a decoded snapshot.  Call on a Monitor
  /// whose expected table has been re-seeded to controller intent (and after
  /// reset_for_recovery() when reusing a wedged instance).  Restore is
  /// silent by contract: rule states and the failed set are seeded WITHOUT
  /// firing on_verdict/on_alarm, so a verdict the fleet published before the
  /// crash is never re-raised.  The table epoch is fast-forwarded to the
  /// snapshot's and then bumped once more past it — the generation bump that
  /// classifies every pre-restart in-flight probe as a stale-epoch drop, the
  /// same barrier-floor mechanism on_channel_state uses across outages.
  /// Manifest probes are re-admitted into the cache for rules still present
  /// in the expected table and NOT named in `stale_cookies` (cookies the
  /// journal tail proves were deltaed after the snapshot); dropped entries
  /// regenerate through the normal warm-up/lazy paths.  Suspects resume
  /// their K-of-N confirmation with their strike counts intact.
  RestoreStats restore_checkpoint(
      const Checkpoint& cp,
      const std::unordered_set<std::uint64_t>* stale_cookies = nullptr);

  /// Silently seeds one rule's verdict state — no hooks, no alarms.
  /// Fleet::restore's journal-tail replay applies the verdicts the dead
  /// incarnation published AFTER its last snapshot, so the restored fleet
  /// never re-raises (or forgets) a verdict the journal already carries.
  /// kSuspect seeds as kConfirmed-unknown: the suspect machine's counters
  /// died with the crash, so the steady cycle re-judges from scratch.
  void seed_verdict(std::uint64_t cookie, RuleState state);

  /// Returns a crashed/wedged Monitor instance to a pre-restore state:
  /// stop() plus wholesale clearing of verdicts, floors, suspects, pending
  /// updates, held barriers, probe cache, steady cycle and live sessions.
  /// The expected table is RETAINED — it mirrors durable controller intent,
  /// which a shard crash does not erase.  Cumulative stats are kept
  /// (monotone across incarnations).
  void reset_for_recovery();

  /// Monotone count of externally paced bursts this Monitor has run — the
  /// per-round heartbeat Fleet::Supervisor watches: a scheduled shard whose
  /// burst count stops advancing is wedged or dead.
  [[nodiscard]] std::uint32_t burst_count() const { return burst_seq_; }

  /// Re-binds this Monitor to a different Runtime (worker migration after a
  /// supervisor quarantine).  Legal only while fully stopped — every timer
  /// cancelled (stop()/reset_for_recovery()); timers must fire on the
  /// runtime that armed them.
  void rebind_runtime(Runtime* runtime);

 private:
  struct UpdateJob {
    enum class Kind : std::uint8_t { kAdd, kModify, kDelete };
    Kind kind = Kind::kAdd;
    openflow::Rule rule;           // new version (add/modify) or old (delete)
    std::optional<Probe> probe;
    openflow::Epoch epoch = 0;     // table epoch the job was started against
    netbase::SimTime started = 0;
    int silent_injections = 0;     // for negative confirmation
    bool negative = false;         // confirmation is silence-based
    std::uint64_t inject_timer = 0;
    std::uint64_t give_up_timer = 0;
    bool drop_postponed = false;   // §4.3 second phase pending
    openflow::Rule final_rule;     // real drop rule to install after confirm
  };

  struct OutstandingProbe {
    std::uint64_t cookie = 0;
    openflow::Epoch epoch = 0;  // table epoch at injection
    std::uint32_t nonce = 0;
    int tries_left = 0;
    std::uint64_t timer = 0;
    netbase::SimTime first_injected = 0;
  };

  struct HeldBarrier {
    std::uint32_t xid = 0;
    std::unordered_set<std::uint64_t> waiting_on;  // unconfirmed cookies
    bool reply_seen = false;
  };

  // Controller-side handling.
  void handle_flow_mod(const openflow::FlowMod& fm, std::uint32_t xid);
  void apply_and_track(const openflow::FlowMod& fm, std::uint32_t xid);
  void start_update_job(UpdateJob job);
  /// (Re)arms the give-up alarm of the pending update for `cookie`.
  void schedule_update_give_up(std::uint64_t cookie);
  void inject_update_probe(std::uint64_t cookie);
  void confirm_update(std::uint64_t cookie);
  void confirm_barriers_waiting_on(std::uint64_t cookie);
  void drain_hold_queue();
  bool overlaps_pending(const openflow::Match& match) const;
  /// Strategy-2 downstream choice for a rule's Collect match.
  [[nodiscard]] SwitchId collect_downstream(const openflow::Rule& rule) const;

  /// Re-sends the catching/filter FlowMods after a reconnect (no expected-
  /// table changes: FlowTable::add replaces identical match+priority rules,
  /// so this is idempotent on the switch too).
  void reassert_infrastructure();

  // Steady state.
  /// One slot of the steady probe cycle.  Beyond the cookie, the rebuild
  /// resolves the pointers every per-probe step used to chase through hash
  /// lookups: the Rule (table find), the rule-state entry (states map) and —
  /// once the first injection resolved it — the probe-cache Entry.  All
  /// three stay valid exactly as long as the order itself: Rule* points into
  /// the table's rule vector and RuleState*/Entry* at unordered_map nodes,
  /// so ANY table mutation (apply_table_delta) or cache swap/erase clears
  /// steady_order_ wholesale and the next tick rebuilds.  rule_states_ never
  /// erases without an accompanying table delta, and state TRANSITIONS
  /// rewrite node values in place — pointer-stable, which is what lets the
  /// cycle watch a rule turn suspect without re-hashing its cookie.
  struct SteadyEntry {
    std::uint64_t cookie = 0;
    const openflow::Rule* rule = nullptr;
    const RuleState* state = nullptr;
    ProbeCache::Entry* entry = nullptr;  ///< null until first injection
    /// Last steady injection time, resolved into last_probed_ at rebuild
    /// (node-stable) and written through per injection — the priority
    /// wheel's staleness source, surviving order rebuilds because the map
    /// outlives them.
    netbase::SimTime* last_probed = nullptr;
    /// Burst the slot was last picked in (steady_probe_burst's
    /// one-probe-per-rule-per-burst guard).
    std::uint32_t last_pick = 0;
  };
  void steady_tick();
  void schedule_steady_tick();
  /// Advances the rule cycle; returns the next probeable slot (null when
  /// none).  The slot carries the Rule/state/cache pointers the cycle
  /// already resolved so the injection path repeats no lookup per probe.
  /// Picks run through a staleness-bucketed priority wheel over
  /// steady_order_ (stalest bucket first, steady_order_ order within a
  /// bucket): O(1) amortized per pick, no allocation once the bucket
  /// vectors are warm, and — unlike the old positional rotation, which
  /// restarted at slot 0 after every delta-driven rebuild — staleness
  /// survives rebuilds, so churn can no longer starve the tail of the
  /// cycle.  One full wheel cycle still visits every probeable rule
  /// exactly once.
  SteadyEntry* next_steady_entry();
  /// Re-bins every steady_order_ slot into the staleness buckets by
  /// current age (quantum = Config::probe_timeout).  Runs at order rebuild
  /// and each time the wheel is exhausted — amortized O(1) per pick.
  void rebuild_wheel();
  /// Returns true only when a probe packet was actually handed to a live
  /// injection path; a failed injection registers no timeout (an outage
  /// must yield no verdict, not a timeout-derived one).
  bool inject_steady_probe(SteadyEntry& slot);
  void on_steady_timeout(std::uint32_t nonce);
  void mark_rule_failed(std::uint64_t cookie);
  // K-of-N suspect confirmation (Config::confirm_probes).  A rule enters
  // suspects_ when its probe train exhausts (or an absent echo arrives),
  // leaves it confirmed-failed after confirm_failures strikes, or cleared
  // (flap suppression) on one present echo / too few strikes.  Evidence is
  // dropped — no verdict — when the channel dies, the rule is deltaed, or
  // the Monitor stops.
  /// Notifies hooks_.on_verdict of a rule-state transition (telemetry).
  void note_verdict(std::uint64_t cookie, RuleState state);
  void raise_suspect(std::uint64_t cookie);
  void schedule_suspect_probe(std::uint64_t cookie);
  void inject_suspect_probe(std::uint64_t cookie);
  void suspect_strike(std::uint64_t cookie);
  /// Removes the suspect entry without a verdict (delta/outage/teardown);
  /// the rule returns to the steady cycle as kConfirmed-unknown.
  void drop_suspect(std::uint64_t cookie);
  /// Drops (and cancels the timers of) every outstanding probe of `cookie`
  /// — update confirmation/give-up resolve ALL of a rule's in-flight nonces.
  void purge_outstanding_for(std::uint64_t cookie);

  // Probe plumbing.
  const Probe* probe_for(const openflow::Rule& rule);
  /// As probe_for, but exposes the cache entry so the steady path can reach
  /// the cached wire frame without a second lookup.  Null when the rule is
  /// (or just became) unmonitorable.
  ProbeCache::Entry* probe_entry_for(const openflow::Rule& rule);
  /// The post-mutation half of every table change: syncs the live batch
  /// sessions, invalidates the delta's affected cookies' cached probes that
  /// do not provably survive (no whole-table match scan), stamps their
  /// epoch floors, purges their in-flight nonces, schedules the coalesced
  /// refill, and notifies hooks_.on_delta.  `invalidate = false` skips the
  /// cache sweep — the seed_rule harness path, which by contract trusts
  /// shared cache contents (cross-trial probe reuse).
  void apply_table_delta(const openflow::TableDelta& delta,
                         bool invalidate = true);
  /// The live delta-maintained session for `collect` (created on demand
  /// against the current table).
  ProbeBatchSession& live_session_for(const openflow::Match& collect);
  /// Epoch before which observations about `cookie` are stale.
  [[nodiscard]] openflow::Epoch rule_floor(std::uint64_t cookie) const;
  /// Batch-generates cache entries for `cookies` (rules still present and
  /// not yet cached), grouped per Collect match into solver sessions.
  void batch_generate_into_cache(const std::vector<std::uint64_t>& cookies);
  /// Commits one generation result to the probe cache and rule states —
  /// shared by the lazy (probe_for) and batch paths so their cache contents
  /// cannot diverge.  Returns the cached probe, or nullptr if the rule was
  /// marked unmonitorable.
  const Probe* commit_generation_result(const openflow::Rule& rule,
                                        ProbeGenResult gen);
  /// Warm-up: batch-generates probes for every monitorable rule.
  void refill_probe_cache();
  void schedule_batch_refill();
  /// The rule-hashed preferred ingress port (spreads injection load).
  [[nodiscard]] std::uint16_t hashed_in_port(
      const openflow::Rule& rule,
      const std::vector<std::uint16_t>& all_ports) const;
  /// Emits one probe frame.  With a cache `entry` on the fast path the
  /// frame is crafted once into entry->wire and re-stamped thereafter;
  /// without one (update-confirmation probes, reuse_probe_wire off) it is
  /// crafted per call — into the reusable scratch buffer on the fast path,
  /// into fresh vectors on the pre-fig11 baseline.
  bool inject_probe_packet(const Probe& probe, ProbeCache::Entry* entry,
                           openflow::Epoch epoch, std::uint32_t nonce);
  std::optional<Observation> translate_observation(
      SwitchId catcher, std::uint16_t catcher_in_port,
      const netbase::PacketView& packet) const;
  static bool is_infrastructure_cookie(std::uint64_t cookie);
  std::vector<std::uint16_t> injectable_ports() const;
  bool egress_unobservable(const Probe& probe) const;

  Config config_;
  Runtime* runtime_;
  const NetworkView* view_;
  const CatchPlan* plan_;
  Hooks hooks_;

  openflow::TableVersion expected_;
  std::shared_ptr<ProbeCache> cache_;
  std::unordered_map<std::uint64_t, RuleState> rule_states_;
  std::unordered_set<std::uint64_t> failed_;
  /// Per-rule staleness floors: observations carried by probes injected at
  /// an epoch below the floor are classified stale (the rule's Distinguish
  /// context changed under them).  Pruned when the rule is deleted.
  std::unordered_map<std::uint64_t, openflow::Epoch> rule_floor_;
  /// Monitor-wide floor (bumped across channel outages via a barrier epoch).
  openflow::Epoch epoch_floor_ = 0;
  /// Live delta-maintained batch sessions, one per collect group; synced to
  /// every delta by apply_table_delta, created lazily by live_session_for.
  struct LiveSession {
    openflow::Match collect;
    std::unique_ptr<ProbeBatchSession> session;
  };
  std::vector<LiveSession> live_sessions_;

  struct SuspectEntry {
    int probes_left = 0;           // confirmation probes still to send
    int strikes = 0;               // absent/timeout verdicts accumulated
    netbase::SimTime backoff = 0;  // next injection delay (geometric)
    netbase::SimTime since = 0;
    std::uint64_t timer = 0;       // pending confirmation injection
  };
  std::unordered_map<std::uint64_t, SuspectEntry> suspects_;  // by cookie

  std::unordered_map<std::uint64_t, UpdateJob> updates_;  // by cookie
  std::deque<std::pair<openflow::Message, std::uint32_t>> hold_queue_;
  std::vector<HeldBarrier> barriers_;

  std::vector<SteadyEntry> steady_order_;  // resolved cycle (see SteadyEntry)
  std::size_t steady_pos_ = 0;
  /// Priority wheel over steady_order_ (indices): bucket 0 holds the
  /// stalest rules, the last bucket the freshest; picks drain bucket 0
  /// first.  Bucket vectors keep their capacity across re-bins, so the
  /// steady cycle stays allocation-free once warm.
  static constexpr std::size_t kStalenessBuckets = 4;
  std::array<std::vector<std::uint32_t>, kStalenessBuckets> wheel_;
  std::array<std::size_t, kStalenessBuckets> wheel_pos_{};
  bool wheel_built_ = false;
  /// Per-cookie last steady injection time (node-stable; entries appear at
  /// order rebuild and die only with the Monitor — a few words per rule).
  std::unordered_map<std::uint64_t, netbase::SimTime> last_probed_;
  bool steady_running_ = false;
  bool channel_up_ = true;   // see on_channel_state
  bool channel_was_up_ = false;  // gates the disconnect stat: a backend
                                 // bound before its first handshake is not
                                 // a "disconnect"
  bool infrastructure_installed_ = false;
  // Timer handles, zeroed on fire/cancel so a stale cancel can never hit a
  // reissued id (see the Runtime contract in runtime.hpp).
  std::uint64_t warmup_timer_ = 0;
  std::uint64_t steady_timer_ = 0;
  std::uint64_t refill_timer_ = 0;
  using OutstandingMap = std::unordered_map<std::uint32_t, OutstandingProbe>;
  OutstandingMap outstanding_;  // by nonce

  /// Retired outstanding_ nodes, recycled on the next insertion so the
  /// steady cycle's per-probe bookkeeping allocates nothing: every resolve
  /// extracts the node here, every inject re-keys one from here.
  std::vector<OutstandingMap::node_type> outstanding_spares_;
  static constexpr std::size_t kMaxOutstandingSpares = 256;
  void insert_outstanding(std::uint32_t nonce, const OutstandingProbe& op);
  /// extract()s the node behind `it` into the spare pool; invalidates `it`.
  void retire_outstanding(OutstandingMap::iterator it);

  /// Watermark sweep (endurance): erases every rule_floor_ entry at or
  /// below the smallest epoch any in-flight probe still carries (such a
  /// floor can never classify another observation — future injections
  /// stamp the current epoch, which is ≥ every floor ever set), and trims
  /// the outstanding spare pool to the high-watermark of concurrent
  /// probes since the last sweep.  Triggered from apply_table_delta when
  /// the floor map outgrows its bound; amortized O(1) per delta.
  void sweep_rule_floors();
  std::size_t next_floor_sweep_ = 0;   // 0 = derive from config on first use
  std::size_t outstanding_peak_ = 0;   // high-watermark since last sweep
  /// Solver stats absorbed from sessions retired by rebuilds, so the
  /// aggregate in MonitorStats stays monotone across swaps.
  std::uint64_t retired_session_sweeps_ = 0;
  std::uint64_t retired_session_clauses_ = 0;
  std::uint64_t retired_session_words_ = 0;
  [[nodiscard]] bool session_dominated(const ProbeBatchSession& s) const;

  /// Scratch frame buffer for per-call crafting on the fast path (update
  /// probes, whose altered-table packets are not cache entries).
  std::vector<std::uint8_t> wire_scratch_;

  std::uint32_t next_nonce_ = 1;
  std::uint32_t burst_seq_ = 0;  // see SteadyEntry::last_pick
  ProbeGenerator generator_;
  MonitorStats stats_;
  telemetry::StatsRing* stats_ring_ = nullptr;  // see publish_telemetry()

  // Cookies whose cached probes were invalidated; refilled in one coalesced
  // batch-generation pass instead of per-rule on the next probing tick.
  std::unordered_set<std::uint64_t> dirty_probe_cookies_;
  bool batch_refill_scheduled_ = false;
};

}  // namespace monocle
