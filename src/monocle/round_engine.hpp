// RoundEngine: the N-worker execution core of the multi-threaded fleet
// round driver (ROADMAP "True multithreaded fleet engine").
//
// Shard affinity is the load-bearing invariant: every Monitor shard is
// pinned to exactly one worker, and ALL code that touches a shard's state —
// probe bursts, timer callbacks on its runtime, delta application, teardown
// — runs on that worker.  Monitor/SlotRuntime/BufferArena stay completely
// single-threaded; the engine moves WORK to state instead of sharing state
// between threads.  Cross-shard effects that must leave a worker
// (localization reports, fleet-routed deltas) travel through the Fleet's
// mailbox, which is drained on the orchestration thread after the engine's
// barrier (fleet.hpp).
//
// Execution model: the owner (orchestration) thread submits work and blocks
// until it completes —
//
//  * run_round(): wakes every worker, runs the preregistered round job on
//    each, returns the summed contributions.  The condvar handshake is the
//    only synchronization a round needs; the job itself is registered once,
//    so the steady state allocates nothing per round.
//  * run_on(w, task): runs one control task (advance a worker's timers,
//    stop a monitor, apply a routed FlowMod) on worker w.
//  * quiesce(): a barrier without work — on return, every effect of
//    previously submitted rounds/tasks happens-before the caller's next
//    read, which is what makes consistent stats snapshots possible.
//
// All submission entry points are serialized on an ops mutex, so a
// telemetry thread calling quiesce() while the orchestration thread drives
// rounds is safe.  Tasks must not themselves call back into the engine
// (the owner is blocked inside the submitting call).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace monocle {

class RoundEngine {
 public:
  /// Spawns `workers` threads (at least 1), idle until work is submitted.
  explicit RoundEngine(std::size_t workers);
  ~RoundEngine();

  RoundEngine(const RoundEngine&) = delete;
  RoundEngine& operator=(const RoundEngine&) = delete;

  [[nodiscard]] std::size_t worker_count() const { return threads_.size(); }

  /// Registers the per-round work of one worker (called with the worker
  /// index; returns that worker's contribution, e.g. probes injected).
  /// Registered once before the first round — the cold path — so
  /// run_round() never constructs a callable.
  void set_round_job(std::function<std::size_t(std::size_t worker)> job);

  /// Runs the round job on every worker and returns the summed
  /// contributions.  Barrier semantics: on return all workers are idle
  /// again and everything they wrote happens-before the caller's next
  /// read.  Returns 0 after stop().
  std::size_t run_round();

  /// Runs `task` on worker `worker`, blocking until it completed.  Control
  /// path: timer advancement, shard teardown, routed deltas.  No-op after
  /// stop().
  void run_on(std::size_t worker, const std::function<void()>& task);

  /// Waits until every worker is idle; the acquired handshake makes all
  /// prior worker writes visible to the caller (consistent snapshots).
  void quiesce();

  /// Joins every worker.  Idempotent; submissions afterwards are no-ops.
  void stop();
  [[nodiscard]] bool running() const;

  /// Engine-local index of the worker the calling thread is, or
  /// SIZE_MAX when called from outside any engine worker (the
  /// orchestration thread).  Lets shard-affine sinks (the loopback
  /// harness's per-worker PacketIn queues) find "my" slot without
  /// plumbing the index through every callback.
  static std::size_t current_worker();

 private:
  void worker_loop(std::size_t index);

  /// Serializes submissions (run_round / run_on / quiesce / stop) so
  /// concurrent callers — orchestration + telemetry — interleave whole
  /// operations instead of corrupting the shared round state.
  std::mutex ops_mu_;

  mutable std::mutex mu_;  // guards everything below
  std::condition_variable cv_workers_;  // owner -> workers: work available
  std::condition_variable cv_done_;     // workers -> owner: work finished
  std::function<std::size_t(std::size_t)> round_job_;
  std::vector<const std::function<void()>*> tasks_;  // per worker, borrowed
  std::uint64_t round_seq_ = 0;  // bumped per run_round; workers chase it
  std::size_t round_sum_ = 0;
  std::size_t outstanding_ = 0;  // work items signaled but not yet finished
  bool stop_ = false;

  std::vector<std::thread> threads_;
};

}  // namespace monocle
