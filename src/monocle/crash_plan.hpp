// Deterministic shard-crash fault injection for fleet rounds
// (docs/DESIGN.md §15; modeled on switchsim::FaultPlan, but round-indexed
// and schedule-explicit — recovery tests need the SAME fault sequence on
// the crashed fleet and its never-crashed control, so there is no RNG).
//
// The plan is a set of explicit events keyed on the fleet round counter:
//
//  * kill_shard(sw, round)   — the shard "process" dies at that round: its
//    Monitor is stopped (timers die with it), it stops executing bursts,
//    and its in-memory state is presumed lost — recovery must come from
//    the checkpoint store;
//  * wedge_shard(sw, round, rounds) — the shard stops making progress for
//    a window (a stuck worker loop) but its process survives;
//  * wedge_worker(worker, round, rounds) — every shard pinned to `worker`
//    wedges: the supervisor's stuck-WORKER signal, which triggers shard
//    migration to a healthy worker rather than in-place restore;
//  * tear_channel(sw, round, rounds) — the shard's control channel drops
//    mid-round and comes back after the window (drives
//    Monitor::on_channel_state, so the epoch-barrier outage machinery runs
//    under the crash scenario too).
//
// Fleet::start_round() consults the plan at every round boundary; the
// supervisor consults it never — it must DETECT these faults from
// heartbeats alone.  revive_shard() clears a kill once the supervisor has
// restored the shard (the "operator restarted the process" edge).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "monocle/runtime.hpp"

namespace monocle {

class CrashPlan {
 public:
  struct CrashStats {
    std::uint64_t kills = 0;     ///< kill events consumed by the fleet
    std::uint64_t revives = 0;   ///< kills cleared after restore
    std::uint64_t wedge_rounds = 0;  ///< shard-rounds spent wedged
    std::uint64_t tear_rounds = 0;   ///< shard-rounds spent torn
  };

  /// The shard dies at `round` (stays dead until revive_shard()).
  void kill_shard(SwitchId sw, std::uint64_t round) { kills_[sw] = round; }

  /// The shard makes no progress during [round, round + rounds).
  void wedge_shard(SwitchId sw, std::uint64_t round, std::uint64_t rounds) {
    shard_wedges_[sw].emplace_back(round, round + rounds);
  }

  /// Every shard pinned to `worker` wedges during [round, round + rounds).
  void wedge_worker(std::size_t worker, std::uint64_t round,
                    std::uint64_t rounds) {
    worker_wedges_[worker].emplace_back(round, round + rounds);
  }

  /// The shard's control channel is down during [round, round + rounds).
  void tear_channel(SwitchId sw, std::uint64_t round, std::uint64_t rounds) {
    tears_[sw].emplace_back(round, round + rounds);
  }

  /// Clears a kill (the supervisor restored the shard's "process").
  void revive_shard(SwitchId sw) {
    if (kills_.erase(sw) > 0) ++stats_.revives;
    fired_.erase(sw);
  }

  /// --- queried by Fleet::start_round ------------------------------------
  [[nodiscard]] bool shard_dead(SwitchId sw, std::uint64_t round) const {
    const auto it = kills_.find(sw);
    return it != kills_.end() && round >= it->second;
  }
  /// True ONCE, at the shard's first scheduled round at/after the kill
  /// round — the fleet only visits a shard on its rotation slot, so an
  /// exact-round match would silently miss kills whose round falls between
  /// visits.  Consuming: the fleet stops the Monitor exactly once.
  [[nodiscard]] bool kill_fires(SwitchId sw, std::uint64_t round) {
    const auto it = kills_.find(sw);
    if (it == kills_.end() || round < it->second) return false;
    return fired_.insert(sw).second;
  }
  [[nodiscard]] bool shard_wedged(SwitchId sw, std::uint64_t round) const {
    return in_window(shard_wedges_, sw, round);
  }
  [[nodiscard]] bool worker_wedged(std::size_t worker,
                                   std::uint64_t round) const {
    return in_window(worker_wedges_, worker, round);
  }
  [[nodiscard]] bool channel_torn(SwitchId sw, std::uint64_t round) const {
    return in_window(tears_, sw, round);
  }

  CrashStats& stats() { return stats_; }
  [[nodiscard]] const CrashStats& stats() const { return stats_; }

  void clear() {
    kills_.clear();
    fired_.clear();
    shard_wedges_.clear();
    worker_wedges_.clear();
    tears_.clear();
  }

 private:
  using Windows = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

  template <typename Key>
  [[nodiscard]] static bool in_window(const std::map<Key, Windows>& map,
                                      Key key, std::uint64_t round) {
    const auto it = map.find(key);
    if (it == map.end()) return false;
    for (const auto& [from, to] : it->second) {
      if (round >= from && round < to) return true;
    }
    return false;
  }

  std::map<SwitchId, std::uint64_t> kills_;  // kill round per shard
  std::set<SwitchId> fired_;                 // kills already consumed
  std::map<SwitchId, Windows> shard_wedges_;
  std::map<std::size_t, Windows> worker_wedges_;
  std::map<SwitchId, Windows> tears_;
  CrashStats stats_;
};

}  // namespace monocle
