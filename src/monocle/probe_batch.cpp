#include "monocle/probe_batch.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

namespace monocle {

using netbase::Field;
using netbase::kHeaderBits;
using netbase::PackedBits;
using openflow::FlowTable;
using openflow::Match;
using openflow::Outcome;
using openflow::Rule;
using sat::Lit;

using probe_encoding::bit_lit;
using probe_encoding::bit_var;
using probe_encoding::CubeStatus;
using probe_encoding::DiffTerm;
using probe_encoding::FixedBits;
using probe_encoding::restricted_cube;

ProbeBatchSession::ProbeBatchSession(const FlowTable& table, Match collect,
                                     openflow::ActionList miss_actions,
                                     ProbeGenerator::Options opts)
    : table_(&table),
      collect_(std::move(collect)),
      miss_(std::move(miss_actions)),
      opts_(opts),
      miss_outcome_(openflow::compute_outcome(miss_)),
      outcomes_(table.size()),
      outcome_class_(table.size(), -1) {
  // Used-EthType refcounts seed the §5.2 domain state; apply_delta keeps
  // them (and domains_) in sync per rule change afterwards.
  for (const Rule& r : table.rules()) domains_note(r, +1);
  rebuild_domains();
  table_->ensure_overlap_index();
  solver_.reserve_vars(kHeaderBits);
  solver_.set_model_limit(kHeaderBits);  // queries only read header bits back
  // Collect units are shared by every query of the session.
  const PackedBits& cbits = collect_.bits();
  netbase::for_each_set_bit(collect_.care(), [&](int bit) {
    const bool value = cbits.get(bit);
    collect_fixed_.fix(bit, value);
    add_clause({bit_lit(bit, value)});
  });
}

void ProbeBatchSession::add_clause(std::span<const Lit> lits) {
  // Session clauses are duplicate-safe by construction: guard/selector
  // literals are distinct fresh variables and cube/diff literals come from
  // header-bit positions (a ¬l/l pair across cube and diff parts yields a
  // harmless always-satisfied clause, exactly like the one-shot path's
  // CnfFormula, which does not normalize either).
  solver_.add_clause_trusted(lits);
  ++clauses_added_;
}

const Outcome& ProbeBatchSession::rule_outcome(std::size_t idx) {
  auto& slot = outcomes_[idx];
  if (!slot.has_value()) slot = table_->rules()[idx].outcome();
  return *slot;
}

std::size_t ProbeBatchSession::outcome_class(std::size_t idx) {
  std::int32_t& slot = outcome_class_[idx];
  if (slot >= 0) return static_cast<std::size_t>(slot);
  const Outcome& oc = rule_outcome(idx);
  for (std::size_t c = 0; c < class_reps_.size(); ++c) {
    if (class_reps_[c] == oc) {
      slot = static_cast<std::int32_t>(c);
      return c;
    }
  }
  class_reps_.push_back(oc);
  slot = static_cast<std::int32_t>(class_reps_.size() - 1);
  return static_cast<std::size_t>(slot);
}

void ProbeBatchSession::domains_note(const Rule& rule, int direction) {
  if (rule.match.is_wildcard(Field::EthType)) return;
  const std::uint64_t value = rule.match.value(Field::EthType);
  if (direction > 0) {
    ++ethtype_used_[value];
    return;
  }
  const auto it = ethtype_used_.find(value);
  if (it != ethtype_used_.end() && --it->second == 0) {
    ethtype_used_.erase(it);
  }
}

void ProbeBatchSession::rebuild_domains() {
  // O(distinct used values) — a handful per table.
  domains_ = netbase::DomainFixup::openflow10_defaults();
  for (const auto& [value, count] : ethtype_used_) {
    domains_.note_used(Field::EthType, value);
  }
}

void ProbeBatchSession::apply_delta(const FlowTable& now,
                                    const openflow::TableDelta& delta) {
  using Kind = openflow::TableDelta::Kind;
  table_ = &now;  // the table object may have moved (copy-on-write clone)
  const auto at = static_cast<std::ptrdiff_t>(delta.rule_index);
  const std::size_t distinct_before = ethtype_used_.size();
  switch (delta.kind) {
    case Kind::kAdd:
      if (delta.replaced.has_value()) {
        domains_note(*delta.replaced, -1);
        outcomes_[delta.rule_index].reset();
        outcome_class_[delta.rule_index] = -1;
      } else {
        outcomes_.insert(outcomes_.begin() + at, std::nullopt);
        outcome_class_.insert(outcome_class_.begin() + at, -1);
      }
      domains_note(delta.rule, +1);
      break;
    case Kind::kModify:
      // Match (and thus domain usage) unchanged; the outcome is stale.
      outcomes_[delta.rule_index].reset();
      outcome_class_[delta.rule_index] = -1;
      break;
    case Kind::kDelete:
      domains_note(delta.rule, -1);
      outcomes_.erase(outcomes_.begin() + at);
      outcome_class_.erase(outcome_class_.begin() + at);
      break;
  }
  // The spare-value state only changes when the SET of used values does
  // (counts are invisible to the lemma).
  if (ethtype_used_.size() != distinct_before) rebuild_domains();
}

Lit ProbeBatchSession::port_selector(std::uint16_t port) {
  const auto it = port_sel_.find(port);
  if (it != port_sel_.end()) return it->second;
  // sel_p -> (in_port bits spell p); shared one-directional definition, the
  // per-query at-least-one clause is guarded by the query's activation
  // literal.
  const auto& info = netbase::field_info(Field::InPort);
  const Lit sel = solver_.new_var();
  for (int bit = 0; bit < info.width; ++bit) {
    const bool is_one = (port >> (info.width - 1 - bit)) & 1;
    add_clause({-sel, bit_lit(info.bit_offset + bit, is_one)});
  }
  port_sel_.emplace(port, sel);
  return sel;
}

ProbeGenResult ProbeBatchSession::generate(
    const Rule& probed, std::span<const std::uint16_t> in_ports) {
  const auto t_start = std::chrono::steady_clock::now();
  ++queries_;
  // Materialize shared in-port selector definitions BEFORE snapshotting the
  // query-local variable range: selectors persist across queries.
  for (const std::uint16_t p : in_ports) port_selector(p);
  const sat::Var first_query_var = solver_.num_vars();
  ProbeGenResult result;
  Probe probe;
  result.failure = run_query(probed, in_ports, result.stats, &probe);
  if (result.failure == ProbeFailure::kNone) {
    result.probe = std::move(probe);
  }
  // Retire every query-local variable (the activation literal g, chain
  // Tseitin/accumulator variables, ∀-port diff variables) with a top-level
  // ¬v unit.  Each occurs only positively in this query's guarded clauses,
  // so false is always safe — and a level-0 assignment removes the variable
  // from every future solve's branching universe.
  for (sat::Var v = first_query_var + 1; v <= solver_.num_vars(); ++v) {
    solver_.add_clause({-v});
  }
  // Periodically sweep retired clauses out of the watch lists; without this
  // every past query's clauses stay on the header-bit watch lists and
  // propagation degrades linearly with session age.
  if (queries_ % kSimplifyInterval == 0) solver_.simplify();
  result.stats.total = std::chrono::steady_clock::now() - t_start;
  return result;
}

ProbeFailure ProbeBatchSession::run_query(
    const Rule& probed, std::span<const std::uint16_t> in_ports,
    ProbeGenStats& stats, Probe* out) {
  // Probed rules normally alias the session table's storage, where the
  // outcome is cached; fall back to a fresh computation for foreign copies.
  const Rule* base = table_->rules().data();
  const bool in_table = &probed >= base && &probed < base + table_->size();
  const Outcome probed_outcome_storage =
      in_table ? Outcome{} : probed.outcome();
  const Outcome& probed_outcome =
      in_table ? rule_outcome(static_cast<std::size_t>(&probed - base))
               : probed_outcome_storage;

  if (probe_encoding::outcome_unsupported(probed_outcome)) {
    return ProbeFailure::kUnsupported;
  }
  // The probed rule must not rewrite the probe-tag bits the Collect match
  // cares about (paper §3.2, last paragraph).
  for (const auto& [port, rewrite] : probed_outcome.emissions) {
    if ((rewrite.mask & collect_.care()).any()) {
      return ProbeFailure::kUnsupported;
    }
  }

  // ---- Overlap pre-filter (§5.4) -------------------------------------
  FlowTable::OverlapSets& overlaps = overlaps_scratch_;  // reuse capacity
  if (opts_.overlap_filter) {
    table_->overlapping_into(probed, overlaps);
  } else {
    overlaps.higher.clear();
    overlaps.lower.clear();
    for (const Rule& r : table_->rules()) {
      if (r.priority == probed.priority && r.match == probed.match) continue;
      if (r.priority >= probed.priority) {
        overlaps.higher.push_back(&r);
      } else {
        overlaps.lower.push_back(&r);
      }
    }
  }
  stats.overlapping_higher = overlaps.higher.size();
  stats.overlapping_lower = overlaps.lower.size();

  // Overlap-heavy rules (broad matches near the bottom of the table) gain
  // nothing from incrementality — encoding dominates, and their thousands
  // of guarded clauses would burden the session until the next sweep.  The
  // one-shot path encodes them into a throwaway flat formula instead;
  // classifications are identical between the paths by construction.
  if (overlaps.higher.size() + overlaps.lower.size() >
      kFreshFallbackOverlaps) {
    ProbeRequest req;
    req.table = table_;
    req.probed = probed;
    req.collect = collect_;
    req.in_ports.assign(in_ports.begin(), in_ports.end());
    req.miss_actions = miss_;
    req.domains = &domains_;
    ProbeGenResult fresh = ProbeGenerator(opts_).generate(req);
    stats = fresh.stats;
    if (fresh.ok()) *out = std::move(*fresh.probe);
    return fresh.failure;
  }

  // ---- Fixed bits for this query: Collect units + probed match --------
  FixedBits fixed = collect_fixed_;
  if (!fixed.fix_match(probed.match)) {
    // Probed rule matches inside the reserved probe-tag space.
    return ProbeFailure::kUnsat;
  }

  const std::size_t clauses_before = clauses_added_;
  const sat::Var vars_before = solver_.num_vars();

  // The query's activation literal: per-query clauses carry ¬g first (so the
  // guard is a watched literal) and become dead weight once ¬g is added as a
  // retirement unit by generate().
  const Lit g = solver_.new_var();

  assumptions_.clear();
  assumptions_.push_back(g);
  // Hit units for the probed match become g-implied binaries over the
  // header-bit variables (bits already pinned by Collect units are omitted —
  // a conflicting pin was caught by fix_match above).  Binaries instead of
  // per-bit assumptions: the bits all propagate at g's single decision level
  // rather than costing ~100 assumption levels per query.
  {
    const PackedBits& pbits = probed.match.bits();
    clause_.clear();
    netbase::for_each_set_bit(
        probed.match.care() & ~collect_fixed_.mask(), [&](int bit) {
          clause_.push_back(bit_lit(bit, pbits.get(bit)));
        });
    solver_.add_implies_cube(g, clause_);
    clauses_added_ += clause_.size();
  }

  // ---- Hit: avoid overlapping higher-priority rules -------------------
  std::vector<Lit>& cube = cube_;  // scratch, reused across queries
  for (const Rule* r : overlaps.higher) {
    clause_.clear();
    clause_.push_back(-g);
    bool always_matches = false;
    if (probe_encoding::restricted_cube_negated(r->match, fixed, clause_,
                                                &always_matches) ==
        CubeStatus::kImpossible) {
      continue;  // cannot match the probe anyway (possible w/o the pre-filter)
    }
    if (always_matches) {
      // Every packet hitting the probed rule also hits this higher rule.
      return ProbeFailure::kShadowed;
    }
    add_clause(clause_);
  }

  // ---- In-port limited domain (§5.2, small-domain remedy) -------------
  if (!in_ports.empty()) {
    const auto& info = netbase::field_info(Field::InPort);
    bool already_fixed = true;
    for (int i = 0; i < info.width; ++i) {
      if (fixed.value(info.bit_offset + i) == -1) already_fixed = false;
    }
    if (!already_fixed) {
      clause_.clear();
      clause_.push_back(-g);
      for (const std::uint16_t p : in_ports) {
        clause_.push_back(port_selector(p));
      }
      add_clause(clause_);
    }
  }

  // ---- Distinguish: priority chain over lower rules (§3.1, App. B) ----
  bool chain_ended_with_const_true_match = false;
  bool any_const_false_diff = false;
  std::vector<Lit>& prefix = prefix_;  // scratch, reused across queries
  prefix.clear();
  // The previous chain rule's cube, not yet materialized as a Tseitin
  // variable: a rule's m_k only occurs in LATER clauses, so the variable
  // (and its cube definition) is created lazily when the next clause is
  // about to reference it — the last rule of a query never pays for one.
  std::vector<Lit>& pending_cube = pending_cube_;  // scratch
  pending_cube.clear();
  auto materialize_pending = [&] {
    if (pending_cube.empty()) return;
    // One-directional Tseitin: v_k -> Matches(P, R_k), query-local (retired
    // after the query; the restricted cube depends on the probed match).
    const Lit v = solver_.new_var();
    solver_.add_implies_cube(v, pending_cube);
    clauses_added_ += pending_cube.size();
    prefix.push_back(v);
    pending_cube.clear();
    if (static_cast<int>(prefix.size()) >= opts_.chain_split) {
      // Chunk the prefix through an accumulator variable (Appendix B's
      // chain-splitting).  u is fresh and never assumed, so the unguarded
      // u -> prefix clause is inert outside this query.
      const Lit u = solver_.new_var();
      clause_.clear();
      clause_.push_back(-u);
      for (const Lit l : prefix) clause_.push_back(l);
      add_clause(clause_);
      prefix.clear();
      prefix.push_back(u);
    }
  };
  auto emit_chain_clause = [&](const std::vector<Lit>& neg_cube,
                               const DiffTerm& diff) {
    if (diff.kind == DiffTerm::Kind::kTrue) return;  // trivially satisfied
    materialize_pending();
    clause_.clear();
    clause_.push_back(-g);
    for (const Lit l : prefix) clause_.push_back(l);
    for (const Lit l : neg_cube) clause_.push_back(-l);
    switch (diff.kind) {
      case DiffTerm::Kind::kTrue:
      case DiffTerm::Kind::kFalse:
        break;
      case DiffTerm::Kind::kLits:
        for (const Lit l : diff.lits) clause_.push_back(l);
        break;
      case DiffTerm::Kind::kVar:
        clause_.push_back(diff.var);
        break;
    }
    add_clause(clause_);
  };

  diff_cache_.clear();  // DiffTerms depend on the probed outcome
  for (const Rule* r : overlaps.lower) {
    if (restricted_cube(r->match, fixed, cube) == CubeStatus::kImpossible) {
      continue;  // e.g. the rule conflicts with the Collect tag bits
    }
    // Memoize the DiffOutcome term per outcome class: a table has only a
    // handful of distinct outcomes, and the term (including any ∀-port
    // Tseitin variable) is identical for every rule sharing one.
    const std::size_t cls =
        outcome_class(static_cast<std::size_t>(r - base));
    if (diff_cache_.size() <= cls) diff_cache_.resize(cls + 1);
    if (!diff_cache_[cls].has_value()) {
      diff_cache_[cls] = probe_encoding::build_diff_term(
          solver_, probed_outcome,
          rule_outcome(static_cast<std::size_t>(r - base)), opts_.diff);
    }
    const DiffTerm& diff = *diff_cache_[cls];
    if (diff.kind == DiffTerm::Kind::kFalse) any_const_false_diff = true;
    if (cube.empty()) {
      // m_k is constant True under Hit: this rule always matches the probe,
      // shielding everything below it (including table-miss).
      emit_chain_clause(cube, diff);
      chain_ended_with_const_true_match = true;
      break;
    }
    emit_chain_clause(cube, diff);
    // Flush the previous rule's pending variable (no-op if the emit above
    // already did) before this rule's cube takes its place: m_{k-1} belongs
    // in every later prefix even when clause k itself was skipped.
    materialize_pending();
    pending_cube.swap(cube);  // cube is rebuilt next iteration anyway
  }

  if (!chain_ended_with_const_true_match) {
    // Table-miss else-term.
    const DiffTerm diff = probe_encoding::build_diff_term(
        solver_, probed_outcome, miss_outcome_, opts_.diff);
    if (diff.kind == DiffTerm::Kind::kFalse) any_const_false_diff = true;
    if (diff.kind != DiffTerm::Kind::kTrue) {
      materialize_pending();  // the last chain rule shields table-miss too
      if (prefix.empty() && diff.kind == DiffTerm::Kind::kFalse &&
          overlaps.lower.empty()) {
        return ProbeFailure::kIndistinguishable;
      }
      clause_.clear();
      clause_.push_back(-g);
      for (const Lit l : prefix) clause_.push_back(l);
      if (diff.kind == DiffTerm::Kind::kLits) {
        for (const Lit l : diff.lits) clause_.push_back(l);
      } else if (diff.kind == DiffTerm::Kind::kVar) {
        clause_.push_back(diff.var);
      }
      add_clause(clause_);
    }
  }

  // Report this query's formula size like the one-shot path would: the
  // header bits plus the variables this query allocated (not the session's
  // cumulative variable count).
  stats.sat_vars = kHeaderBits + (solver_.num_vars() - vars_before);
  stats.sat_clauses = clauses_added_ - clauses_before;

  // ---- Solve -----------------------------------------------------------
  const sat::SolverStats before = solver_.stats();
  const auto t_solve = std::chrono::steady_clock::now();
  const sat::SolveResult solved = solver_.solve(assumptions_);
  stats.solve = std::chrono::steady_clock::now() - t_solve;
  const sat::SolverStats& after = solver_.stats();
  stats.decisions = after.decisions - before.decisions;
  stats.propagations = after.propagations - before.propagations;
  stats.conflicts = after.conflicts - before.conflicts;
  stats.learned_clauses = after.learned_clauses - before.learned_clauses;

  if (solved != sat::SolveResult::kSat) {
    return any_const_false_diff ? ProbeFailure::kIndistinguishable
                                : ProbeFailure::kUnsat;
  }

  PackedBits bits;
  for (int b = 0; b < kHeaderBits; ++b) {
    bits.set(b, solver_.model_value(bit_var(b)));
  }
  return detail::finalize_probe(probed, miss_, opts_, domains_, overlaps, bits,
                                out);
}

// ---------------------------------------------------------------------------
// generate_all: shard a batch over a small worker pool
// ---------------------------------------------------------------------------

std::vector<ProbeGenResult> generate_all(const FlowTable& table,
                                         const Match& collect,
                                         const openflow::ActionList& miss_actions,
                                         std::span<const BatchProbeRequest> requests,
                                         const BatchOptions& opts) {
  std::vector<ProbeGenResult> results(requests.size());
  if (requests.empty()) return results;

  // Build the overlap index once, before workers share the const table.
  table.ensure_overlap_index();

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t threads = std::min<std::size_t>(
      opts.threads > 0 ? static_cast<std::size_t>(opts.threads) : hw,
      requests.size());

  auto run_shard = [&](std::size_t begin, std::size_t end) {
    ProbeBatchSession session(table, collect, miss_actions, opts.gen);
    for (std::size_t i = begin; i < end; ++i) {
      results[i] =
          session.generate(*requests[i].rule, requests[i].in_ports);
    }
  };

  if (threads <= 1) {
    run_shard(0, requests.size());
    return results;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const std::size_t chunk = (requests.size() + threads - 1) / threads;
  for (std::size_t t = 0; t < threads; ++t) {
    const std::size_t begin = t * chunk;
    const std::size_t end = std::min(requests.size(), begin + chunk);
    if (begin >= end) break;
    pool.emplace_back(run_shard, begin, end);
  }
  for (auto& th : pool) th.join();
  return results;
}

}  // namespace monocle
