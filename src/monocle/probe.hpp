// Probe packets and outcome prediction (paper §3).
//
// A Probe is a concrete packet header plus the two predicted data-plane
// outcomes: what the switch does when the probed rule IS installed
// (`if_present`) and when it is NOT (`if_absent`).  The Distinguish
// constraint guarantees the two predictions are observably different, so a
// single caught packet (or a definite absence of one) decides rule presence.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/abstract_packet.hpp"
#include "netbase/packed_bits.hpp"
#include "openflow/actions.hpp"

namespace monocle {

/// One predicted/actual catch event: the probe left the probed switch on
/// `output_port` carrying `header` (in_port bits zeroed — ingress is
/// meaningless downstream).  kPortController models rules that punt straight
/// to the controller.
struct Observation {
  std::uint16_t output_port = 0;
  netbase::PackedBits header;

  friend bool operator==(const Observation&, const Observation&) = default;
};

/// The observable result of one rule processing the probe.
struct OutcomePrediction {
  openflow::ForwardKind kind = openflow::ForwardKind::kMulticast;
  /// Multicast: ALL of these observations occur (none, for a drop rule).
  /// ECMP: exactly ONE of them occurs.
  std::vector<Observation> observations;

  [[nodiscard]] bool is_drop() const { return observations.empty(); }
};

/// A generated probe for one rule.
struct Probe {
  netbase::AbstractPacket packet;  ///< injected header (in_port = ingress port)
  std::uint64_t rule_cookie = 0;   ///< rule under test
  OutcomePrediction if_present;
  OutcomePrediction if_absent;

  /// Ingress port the probe must enter the probed switch through.
  [[nodiscard]] std::uint16_t in_port() const {
    return static_cast<std::uint16_t>(
        packet.get(netbase::Field::InPort));
  }
};

/// What a single caught observation tells us about the probed rule.
enum class Verdict : std::uint8_t {
  kPresent,       ///< consistent only with the rule being installed
  kAbsent,        ///< consistent only with the rule missing/misbehaving
  kInconclusive,  ///< consistent with both or with neither (foreign packet)
};

/// Classifies one observation against the probe's two predictions.
Verdict classify_observation(const Probe& probe, const Observation& seen);

/// Zeroes the in_port bits of `header` (canonical form for Observation).
netbase::PackedBits strip_in_port(netbase::PackedBits header);

/// Stable hash of a prediction, used as ProbeMetadata::expected so stale
/// probes (generated against an older table) are recognized and dropped.
std::uint32_t hash_prediction(const OutcomePrediction& prediction);

}  // namespace monocle
