// Table-session probe generation: incremental, batched, parallel (§5, §8.2).
//
// ProbeGenerator::generate re-encodes the whole relevant slice of the flow
// table into a fresh CnfFormula and a throwaway solver for every rule; over a
// full table that is quadratic work and discards everything the solver
// learned about the table's structure.  A ProbeBatchSession instead keeps ONE
// incremental sat::Solver alive for a whole (table, collect-match) pair:
//
//  * the Collect constraint is encoded once as permanent unit clauses, and
//    the header-bit variables, in-port selector definitions and the §5.2
//    domain state are shared by every rule of the table;
//  * per-query constraints (the probed match's bit implications, Hit
//    avoidance, the Distinguish chain) are guarded by a per-query
//    activation literal g — the selector-literal pattern of incremental
//    SAT — and the query solves under the single assumption g;
//  * after the query, g and every other query-local variable is retired with
//    a top-level ¬v unit: level-0-assigned variables leave the branching
//    universe for good, so dead queries cost later queries nothing (their
//    clauses park on the retired literals' watch lists);
//  * learned clauses over the header-bit structure and VSIDS scores persist
//    across the table's rules.
//
// Queries return identical classifications (found / shadowed /
// indistinguishable / ...) to the one-shot path; the table2 bench asserts
// this.  A session is single-threaded; generate_all() shards a batch over a
// small pool of workers, one session per worker.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "monocle/probe_encoding.hpp"
#include "monocle/probe_generator.hpp"
#include "openflow/table_version.hpp"
#include "sat/solver.hpp"

namespace monocle {

class ProbeBatchSession {
 public:
  /// `table` must outlive the session.  Between generate() calls the table
  /// may be mutated ONLY if every mutation is reported to the session via
  /// apply_delta() (in application order) before the next query — the
  /// delta-maintained live-session mode the Monitor runs under rule churn.
  /// A session that is never told about deltas has the PR 1 contract: the
  /// table must not change while the session is in use.
  ProbeBatchSession(const openflow::FlowTable& table, openflow::Match collect,
                    openflow::ActionList miss_actions,
                    ProbeGenerator::Options opts = {});

  /// Generates a probe for `probed` (a rule of the session's table) entering
  /// on one of `in_ports` (empty = unconstrained).  Semantics match
  /// ProbeGenerator::generate for the same request.
  ProbeGenResult generate(const openflow::Rule& probed,
                          std::span<const std::uint16_t> in_ports = {});

  /// Tracks one table mutation, keeping the session live instead of
  /// re-encoding the table: `now` is the post-delta table (it may be a new
  /// FlowTable object after a copy-on-write clone — the session re-points),
  /// `delta` the change.  Positional caches (per-rule outcomes, outcome
  /// classes) are patched in O(table) slot moves, the §5.2 domain state is
  /// adjusted from the changed rule alone, and the incremental solver —
  /// with every learned clause, VSIDS score, retired guard and in-port
  /// selector definition — survives untouched: old queries' guarded clauses
  /// are already dead under their retired activation literals, so nothing
  /// the solver ever derived can contradict the new table.  Only the
  /// changed rules' clauses are ever (re-)encoded, by the next generate()
  /// that needs them.
  void apply_delta(const openflow::FlowTable& now,
                   const openflow::TableDelta& delta);

  /// Cumulative solver statistics over the session's queries.
  [[nodiscard]] const sat::SolverStats& solver_stats() const {
    return solver_.stats();
  }
  /// Live solver clause-storage size (words).  With
  /// solver_stats().retired_arena_words this is the Monitor's
  /// session-rebuild trigger: when the cumulative retired mass dominates the
  /// live mass, the session has outlived generations of query-local state
  /// (dead variables, grown watch-list vectors) that only a fresh session
  /// reclaims.
  [[nodiscard]] std::size_t solver_arena_words() const {
    return solver_.arena_words();
  }
  /// Variables retired by past queries (top-level units) vs. still-live
  /// ones.  The second rebuild trigger: binary-dominated encodings never
  /// put clauses in the arena, so their only visible aging is the retired
  /// variable count.
  [[nodiscard]] std::size_t solver_retired_vars() const {
    return solver_.fixed_vars();
  }
  [[nodiscard]] std::size_t solver_live_vars() const {
    const auto total = static_cast<std::size_t>(solver_.num_vars());
    const std::size_t retired = solver_.fixed_vars();
    return total > retired ? total - retired : 0;
  }
  [[nodiscard]] std::size_t queries() const { return queries_; }

 private:
  ProbeFailure run_query(const openflow::Rule& probed,
                         std::span<const std::uint16_t> in_ports,
                         ProbeGenStats& stats, Probe* out);
  sat::Lit port_selector(std::uint16_t port);
  void add_clause(std::span<const sat::Lit> lits);
  void add_clause(std::initializer_list<sat::Lit> lits) {
    add_clause(std::span<const sat::Lit>(lits.begin(), lits.size()));
  }

  const openflow::FlowTable* table_;
  openflow::Match collect_;
  openflow::ActionList miss_;
  ProbeGenerator::Options opts_;

  /// Cached Outcome of the rule at table index `idx` (outcome computation
  /// allocates; rules are immutable for the session's lifetime).
  const openflow::Outcome& rule_outcome(std::size_t idx);

  /// Outcome-equality class of rule `idx`: tables carry only a handful of
  /// distinct outcomes (ACLs: drop + one per egress port), so DiffOutcome
  /// terms are memoized per class within a query.
  std::size_t outcome_class(std::size_t idx);

  /// §5.2 domain bookkeeping for apply_delta: used-EthType values are
  /// reference-counted so a delta adjusts the DomainFixup from the changed
  /// rule alone instead of re-scanning the table.
  void domains_note(const openflow::Rule& rule, int direction);
  void rebuild_domains();

  sat::Solver solver_;
  probe_encoding::FixedBits collect_fixed_;  // bits pinned by Collect units
  netbase::DomainFixup domains_;             // §5.2 spare-value state, shared
  std::unordered_map<std::uint64_t, std::size_t> ethtype_used_;  // refcounts
  openflow::Outcome miss_outcome_;           // table-miss behaviour, cached
  std::vector<std::optional<openflow::Outcome>> outcomes_;  // by rule index
  std::vector<std::int32_t> outcome_class_;  // by rule index; -1 = unknown
  // Class id -> representative outcome, BY VALUE: positional churn in
  // outcomes_ (apply_delta slot moves) must not invalidate the reps.  A
  // deleted rule's class lingers harmlessly — class count stays O(distinct
  // outcomes ever seen).
  std::vector<openflow::Outcome> class_reps_;
  std::vector<std::optional<probe_encoding::DiffTerm>> diff_cache_;  // /query

  // Shared in-port selector definitions (sel_p -> in_port bits spell p).
  std::unordered_map<std::uint16_t, sat::Lit> port_sel_;

  std::vector<sat::Lit> assumptions_;  // scratch, reused across queries
  std::vector<sat::Lit> clause_;       // scratch clause builder
  std::vector<sat::Lit> cube_;         // scratch restricted cube
  std::vector<sat::Lit> prefix_;       // scratch chain prefix
  std::vector<sat::Lit> pending_cube_;  // scratch deferred Tseitin cube
  openflow::FlowTable::OverlapSets overlaps_scratch_;
  std::size_t clauses_added_ = 0;
  std::size_t queries_ = 0;

  /// Queries between top-level solver sweeps of retired clauses.  Sweeps
  /// mainly reclaim arena memory — the watch lists self-clean during
  /// propagation (level-0-satisfied watchers are dropped on sight) — so the
  /// interval can be generous.
  static constexpr std::size_t kSimplifyInterval = 48;

  /// Queries whose overlap sets exceed this are delegated to the one-shot
  /// generator: encoding dominates there, and keeping their thousands of
  /// clauses out of the session keeps the common case fast.
  static constexpr std::size_t kFreshFallbackOverlaps = 1536;
};

/// One rule of a batch-generation request.
struct BatchProbeRequest {
  const openflow::Rule* rule = nullptr;
  /// Valid ingress ports for this rule's probe; empty = unconstrained.
  std::vector<std::uint16_t> in_ports;
};

struct BatchOptions {
  ProbeGenerator::Options gen;
  /// Worker threads (one ProbeBatchSession shard each); 0 = one per
  /// available hardware thread, capped by the request count.
  int threads = 0;
};

/// Generates probes for `requests` against one (table, collect) pair,
/// sharding the batch across a small pool of worker threads.  Results are
/// positionally aligned with `requests`.
std::vector<ProbeGenResult> generate_all(
    const openflow::FlowTable& table, const openflow::Match& collect,
    const openflow::ActionList& miss_actions,
    std::span<const BatchProbeRequest> requests, const BatchOptions& opts = {});

}  // namespace monocle
