#include "monocle/monitor.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "monocle/checkpoint.hpp"
#include "monocle/probe_batch.hpp"

namespace monocle {

using netbase::ProbeMetadata;
using netbase::SimTime;
using openflow::FlowMod;
using openflow::FlowModCommand;
using openflow::Match;
using openflow::Message;
using openflow::Rule;

Monitor::Monitor(Config config, Runtime* runtime, const NetworkView* view,
                 const CatchPlan* plan, Hooks hooks)
    : config_(std::move(config)),
      runtime_(runtime),
      view_(view),
      plan_(plan),
      hooks_(std::move(hooks)),
      generator_(config_.gen) {
  cache_ = std::make_shared<ProbeCache>();
}

bool Monitor::is_infrastructure_cookie(std::uint64_t cookie) {
  const std::uint64_t prefix = cookie >> 48;
  return prefix == 0xCA7C || prefix == 0xF117 || prefix == 0xD209;
}

void Monitor::install_infrastructure() {
  infrastructure_installed_ = true;
  for (const FlowMod& fm : plan_->rules_for(config_.switch_id)) {
    apply_table_delta(expected_.apply_add(fm.rule()));
    rule_states_[fm.cookie] = RuleState::kConfirmed;
    Message msg = openflow::make_message(0, fm);
    hooks_.to_switch(msg);
    ++stats_.flowmods_forwarded;
  }
}

void Monitor::reassert_infrastructure() {
  if (!infrastructure_installed_) return;
  for (const FlowMod& fm : plan_->rules_for(config_.switch_id)) {
    hooks_.to_switch(openflow::make_message(0, fm));
    ++stats_.flowmods_forwarded;
  }
}

void Monitor::on_channel_state(bool up) {
  // Record "was ever up" even when no transition happens: the bind-time
  // seeding of an already-up backend must still arm the disconnect
  // accounting for the first genuine loss.
  if (up) channel_was_up_ = true;
  if (up == channel_up_) return;
  channel_up_ = up;
  if (!up) {
    // A backend bound before its first handshake starts "down"; only a
    // genuine loss of an up channel counts as a disconnect.
    if (channel_was_up_) ++stats_.channel_disconnects;
    // A dead channel can neither carry our injections nor return echoes:
    // drop every in-flight probe WITH its timer (nothing dangles, no rule
    // is failed for probes the disconnect ate) and pause the steady cycle.
    for (auto& [nonce, op] : outstanding_) runtime_->cancel(op.timer);
    outstanding_.clear();
    // Suspicions die with the channel: their strikes may be the OUTAGE's
    // timeouts, so the K-of-N evidence is void — back to unknown, and the
    // steady cycle re-judges each rule from scratch after the reconnect.
    for (auto& [cookie, s] : suspects_) {
      runtime_->cancel(s.timer);
      const auto st = rule_states_.find(cookie);
      if (st != rule_states_.end() && st->second == RuleState::kSuspect) {
        st->second = RuleState::kConfirmed;
      }
    }
    suspects_.clear();
    // Echoes that left before the cut are stale on arrival: a barrier epoch
    // separates pre-outage injections from everything after.  (A channel
    // that was never up carried no probes, so there is nothing to stale.)
    if (channel_was_up_) epoch_floor_ = expected_.advance_epoch();
    runtime_->cancel(steady_timer_);
    steady_timer_ = 0;
    runtime_->cancel(warmup_timer_);
    warmup_timer_ = 0;
    // Pending updates must not be declared failed because the OUTAGE (not
    // the data plane) outlasted update_give_up: pause their give-up alarms;
    // the deadline restarts from the reconnect.  Their probe re-injection
    // cadence keeps running — probes travel via neighbor channels and may
    // confirm an update even while this switch's channel is down — but
    // silence accumulated while injections only queue is meaningless, so
    // negative-confirmation counters reset, and PROBELESS updates (whose
    // inject_timer is really a blind confirm-after-settle) pause entirely:
    // confirming blind during an outage would release barriers for a
    // FlowMod that may still be sitting in (or dropped from) the backend's
    // down queue.
    for (auto& [cookie, job] : updates_) {
      runtime_->cancel(job.give_up_timer);
      job.give_up_timer = 0;
      job.silent_injections = 0;
      if (!job.probe.has_value()) {
        runtime_->cancel(job.inject_timer);
        job.inject_timer = 0;
      }
    }
    if (hooks_.on_channel_change) hooks_.on_channel_change(false);
    return;
  }
  // Reconnected.  The switch may have restarted and lost its rules, so the
  // catching infrastructure goes out again (idempotent when it survived);
  // then the steady cycle re-arms from the top of the rule order.
  reassert_infrastructure();
  // FlowMods of still-unconfirmed updates may have died with the channel:
  // re-issue them (adds replace identical match+priority, deletes of absent
  // rules no-op, so this is idempotent too).  Their probes keep their
  // re-injection cadence and confirm once the data plane catches up.
  for (auto& [cookie, job] : updates_) {
    FlowMod fm;
    fm.match = job.rule.match;
    fm.priority = job.rule.priority;
    fm.cookie = job.rule.cookie;
    if (job.kind == UpdateJob::Kind::kDelete) {
      fm.command = FlowModCommand::kDeleteStrict;
    } else {
      fm.command = FlowModCommand::kAdd;
      fm.actions = job.rule.actions;
    }
    hooks_.to_switch(openflow::make_message(0, fm));
    ++stats_.flowmods_forwarded;
    if (job.give_up_timer == 0) schedule_update_give_up(cookie);
    if (!job.probe.has_value() && job.inject_timer == 0) {
      // Blind confirmation of probeless updates restarts its settle delay
      // from the reconnect (the re-issued FlowMod needs time to commit).
      job.inject_timer = runtime_->schedule(
          config_.negative_confirm_timeout,
          [this, cookie = job.rule.cookie] { confirm_update(cookie); });
    } else if (job.probe.has_value()) {
      // A flap mid-confirmation leaves the update's state UNKNOWN, not
      // failed: anything observed (or not observed) around the cut answers
      // for the channel.  Re-arm the probe cadence from the reconnect with
      // a settle head start for the re-issued FlowMod, and restart the
      // silence count — negative confirmation must be earned entirely by
      // post-reconnect injections.
      job.silent_injections = 0;
      runtime_->cancel(job.inject_timer);
      job.inject_timer = runtime_->schedule(
          config_.generation_delay,
          [this, cookie = job.rule.cookie] { inject_update_probe(cookie); });
    }
  }
  steady_pos_ = 0;
  if (steady_running_ && config_.steady_probe_rate > 0 && steady_timer_ == 0) {
    schedule_steady_tick();
  }
  if (hooks_.on_channel_change) hooks_.on_channel_change(true);
}

void Monitor::start() {
  if (config_.steady_probe_rate > 0 && !steady_running_) {
    steady_running_ = true;
    if (config_.batch_generation) {
      // Warm-up: pre-generate every rule's probe in one batched session pass
      // while the catching rules settle, so the steady cycle never pays a
      // cold per-rule generation.
      refill_probe_cache();
    }
    warmup_timer_ = runtime_->schedule(config_.steady_warmup, [this] {
      warmup_timer_ = 0;
      if (steady_running_) schedule_steady_tick();
    });
  }
}

void Monitor::start_externally_paced() {
  if (steady_running_) return;
  steady_running_ = true;  // enables coalesced cache refills on invalidation
  if (config_.batch_generation) {
    refill_probe_cache();  // no-op for rules the Fleet warm-up already cached
  }
}

void Monitor::stop() {
  steady_running_ = false;
  runtime_->cancel(warmup_timer_);
  warmup_timer_ = 0;
  runtime_->cancel(steady_timer_);
  steady_timer_ = 0;
  runtime_->cancel(refill_timer_);
  refill_timer_ = 0;
  batch_refill_scheduled_ = false;
  dirty_probe_cookies_.clear();
  for (auto& [nonce, op] : outstanding_) runtime_->cancel(op.timer);
  outstanding_.clear();
  for (auto& [cookie, s] : suspects_) runtime_->cancel(s.timer);
  suspects_.clear();
  for (auto& [cookie, job] : updates_) {
    runtime_->cancel(job.inject_timer);
    runtime_->cancel(job.give_up_timer);
  }
  updates_.clear();
}

std::size_t Monitor::steady_probe_burst(std::size_t max_probes) {
  if (!steady_running_ || !channel_up_) return 0;
  std::size_t injected = 0;
  ++burst_seq_;
  for (std::size_t i = 0; i < max_probes; ++i) {
    SteadyEntry* slot = next_steady_entry();
    if (slot == nullptr) break;
    // At most one probe per rule per burst: a slot already picked in THIS
    // burst means the wheel has come full circle through every probeable
    // rule.
    if (slot->last_pick == burst_seq_) break;
    slot->last_pick = burst_seq_;
    // Rules whose injection path is down (or that just turned
    // unmonitorable) don't count — the Fleet's probes_injected stat must
    // report packets that actually left.
    if (inject_steady_probe(*slot)) ++injected;
  }
  // Round boundary: publish this shard's telemetry sample from the owning
  // worker (the ring is the only cross-thread surface; see DESIGN.md §13).
  if (stats_ring_ != nullptr) publish_telemetry();
  return injected;
}

void Monitor::publish_telemetry() {
  if (stats_ring_ == nullptr) return;
  refresh_solver_stats();  // O(live sessions), allocation-free
  using namespace telemetry;
  StatsSample s;
  s.shard = config_.switch_id;
  s.epoch = expected_.epoch();
  s.when_ns = runtime_->now();
  auto& c = s.counters;
  c[kProbesInjected] = stats_.probes_injected;
  c[kProbesCaught] = stats_.probes_caught;
  c[kStaleProbes] = stats_.stale_probes;
  c[kProbeGenerations] = stats_.probe_generations;
  c[kUpdatesConfirmed] = stats_.updates_confirmed;
  c[kUpdatesQueued] = stats_.updates_queued;
  c[kAlarms] = stats_.alarms;
  c[kFlowModsForwarded] = stats_.flowmods_forwarded;
  c[kChannelDisconnects] = stats_.channel_disconnects;
  c[kProbeCacheHits] = stats_.probe_cache_hits;
  c[kProbeCacheMisses] = stats_.probe_cache_misses;
  c[kProbeInvalidations] = stats_.probe_invalidations;
  c[kDeltasApplied] = stats_.deltas_applied;
  c[kDeltaRegens] = stats_.delta_regens;
  c[kScratchRegens] = stats_.scratch_regens;
  c[kStaleEpochDrops] = stats_.stale_epoch_drops;
  c[kProbeRetries] = stats_.probe_retries;
  c[kSuspectsRaised] = stats_.suspects_raised;
  c[kSuspectsConfirmed] = stats_.suspects_confirmed;
  c[kFlapSuppressions] = stats_.flap_suppressions;
  c[kGenerationTimeNs] =
      static_cast<std::uint64_t>(stats_.generation_time.count());
  c[kConfirmLatencyCount] = stats_.confirm_latency_count;
  c[kConfirmLatencySumNs] = stats_.confirm_latency_sum_ns;
  for (std::size_t b = 0; b < kConfirmLatencyBuckets; ++b) {
    c[kConfirmLatencyBucket0 + b] = stats_.confirm_latency_hist[b];
  }
  c[kSolverSweeps] = stats_.solver_sweeps;
  c[kSolverRetiredClauses] = stats_.solver_retired_clauses;
  c[kSessionRebuilds] = stats_.session_rebuilds;
  c[kFailedRules] = failed_.size();
  c[kOutstandingProbes] = outstanding_.size();
  c[kPendingUpdates] = updates_.size();
  c[kRuleFloorSize] = rule_floor_.size();
  stats_ring_->publish(s);
}

void Monitor::refresh_solver_stats() {
  std::uint64_t sweeps = retired_session_sweeps_;
  std::uint64_t clauses = retired_session_clauses_;
  std::uint64_t words = retired_session_words_;
  std::uint64_t live = 0;
  std::uint64_t retired_vars = 0;
  std::uint64_t live_vars = 0;
  for (const LiveSession& ls : live_sessions_) {
    const sat::SolverStats& st = ls.session->solver_stats();
    sweeps += st.simplify_sweeps;
    clauses += st.retired_clauses;
    words += st.retired_arena_words;
    live += ls.session->solver_arena_words();
    retired_vars += ls.session->solver_retired_vars();
    live_vars += ls.session->solver_live_vars();
  }
  stats_.solver_sweeps = sweeps;
  stats_.solver_retired_clauses = clauses;
  stats_.solver_retired_words = words;
  stats_.solver_live_words = live;
  stats_.solver_retired_vars = retired_vars;
  stats_.solver_live_vars = live_vars;
}

bool Monitor::session_dominated(const ProbeBatchSession& s) const {
  if (!config_.session_rebuild) return false;
  const sat::SolverStats& st = s.solver_stats();
  if (st.retired_arena_words >= config_.session_rebuild_min_words) {
    const auto live = static_cast<double>(std::max<std::size_t>(
        s.solver_arena_words(), 1));
    if (static_cast<double>(st.retired_arena_words) >=
        config_.session_rebuild_factor * live) {
      return true;
    }
  }
  // Second axis: binary-dominated encodings keep the clause arena empty
  // (implicit watcher storage), so their only visible aging is the count of
  // variables past queries retired with top-level units.
  const std::size_t retired_vars = s.solver_retired_vars();
  if (retired_vars < config_.session_rebuild_min_vars) return false;
  const auto live_vars = static_cast<double>(std::max<std::size_t>(
      s.solver_live_vars(), 1));
  return static_cast<double>(retired_vars) >=
         config_.session_rebuild_factor * live_vars;
}

bool Monitor::session_rebuild_due() const {
  for (const LiveSession& ls : live_sessions_) {
    if (session_dominated(*ls.session)) return true;
  }
  return false;
}

std::size_t Monitor::rebuild_live_sessions() {
  std::size_t rebuilt = 0;
  const auto all_ports = injectable_ports();
  for (LiveSession& ls : live_sessions_) {
    if (!session_dominated(*ls.session)) continue;
    auto fresh = std::make_unique<ProbeBatchSession>(
        expected_.table(), ls.collect, config_.miss_actions, config_.gen);
    // Parity check before the swap: the fresh session must classify a
    // sample rule of its collect group exactly like the retiring one
    // (probes themselves may differ — SAT solutions are not unique — but
    // ok/failure-kind must agree).  A mismatch vetoes the swap: wrong
    // probes are worse than a slowly growing solver.
    const Rule* sample = nullptr;
    for (const Rule& r : expected_.table().rules()) {
      if (is_infrastructure_cookie(r.cookie)) continue;
      if (plan_->collect_match_for(config_.switch_id, collect_downstream(r)) ==
          ls.collect) {
        sample = &r;
        break;
      }
    }
    if (sample != nullptr) {
      const auto generate_on = [&](ProbeBatchSession& s) {
        ProbeGenResult gen;
        if (!all_ports.empty()) {
          const std::uint16_t preferred = hashed_in_port(*sample, all_ports);
          gen = s.generate(*sample, std::span(&preferred, 1));
        }
        if (!gen.ok()) gen = s.generate(*sample, all_ports);
        return gen;
      };
      const ProbeGenResult before = generate_on(*ls.session);
      const ProbeGenResult after = generate_on(*fresh);
      if (before.ok() != after.ok() ||
          (!before.ok() && before.failure != after.failure)) {
        ++stats_.session_parity_fails;
        continue;
      }
    }
    // Absorb the retiring session's sweep counters so the aggregate stays
    // monotone, then swap — one unique_ptr move; cached probes stay valid
    // (they depend on the table, not the session that produced them).
    const sat::SolverStats& st = ls.session->solver_stats();
    retired_session_sweeps_ += st.simplify_sweeps;
    retired_session_clauses_ += st.retired_clauses;
    retired_session_words_ += st.retired_arena_words;
    ls.session = std::move(fresh);
    ++stats_.session_rebuilds;
    ++rebuilt;
  }
  if (rebuilt > 0) refresh_solver_stats();
  return rebuilt;
}

netbase::SimTime Monitor::steady_staleness_max() const {
  const SimTime now = runtime_->now();
  SimTime worst = 0;
  for (const Rule& r : expected_.table().rules()) {
    if (is_infrastructure_cookie(r.cookie)) continue;
    const RuleState st = rule_state(r.cookie);
    if (st == RuleState::kUnmonitorable || st == RuleState::kPending) continue;
    const auto it = last_probed_.find(r.cookie);
    const SimTime last = it == last_probed_.end() ? 0 : it->second;
    worst = std::max(worst, now - std::min(now, last));
  }
  return worst;
}

void Monitor::collect_staleness(std::vector<netbase::SimTime>& out) const {
  const SimTime now = runtime_->now();
  for (const Rule& r : expected_.table().rules()) {
    if (is_infrastructure_cookie(r.cookie)) continue;
    const RuleState st = rule_state(r.cookie);
    if (st == RuleState::kUnmonitorable || st == RuleState::kPending) continue;
    const auto it = last_probed_.find(r.cookie);
    const SimTime last = it == last_probed_.end() ? 0 : it->second;
    out.push_back(now - std::min(now, last));
  }
}

void Monitor::warm_probe_cache() {
  refill_probe_cache();
  if (!config_.reuse_probe_wire) return;
  // Pre-craft every cached probe's wire frame (generation/nonce are
  // re-stamped per injection anyway): without this the first steady probe
  // of each rule crafts lazily, so a measured or allocation-gated phase
  // that starts before one full table cycle still sees one-time crafts —
  // with large tables under a round-robin fleet that tail can be thousands
  // of rounds long.  Warm-up should leave the steady cycle truly warm.
  for (auto& [cookie, entry] : cache_->entries) {
    if (!entry.probe.has_value() || entry.wire.valid()) continue;
    ProbeMetadata meta;
    meta.switch_id = config_.switch_id;
    meta.rule_cookie = entry.probe->rule_cookie;
    meta.generation = 0;
    meta.expected = hash_prediction(entry.probe->if_present);
    meta.nonce = 0;
    entry.wire = netbase::craft_probe_wire(entry.probe->packet, meta);
  }
  // Prewarm the outstanding-probe node pool (and the map's bucket array)
  // past the largest burst an elastic plan can assign: a shard whose
  // in-flight high-water first rises mid-measurement would otherwise
  // allocate map nodes on exactly the rounds a budget spike targets.
  constexpr std::size_t kPrewarmOutstanding = 32;
  while (outstanding_spares_.size() < kPrewarmOutstanding) {
    const auto nonce =
        static_cast<std::uint32_t>(0xFFFF0000u + outstanding_spares_.size());
    const auto res = outstanding_.try_emplace(nonce);
    if (!res.second) break;  // a live probe owns this nonce: don't steal it
    outstanding_spares_.push_back(outstanding_.extract(res.first));
  }
}

std::size_t Monitor::monitorable_rule_count() const {
  std::size_t count = 0;
  for (const Rule& r : expected_.table().rules()) {
    if (is_infrastructure_cookie(r.cookie)) continue;
    if (rule_state(r.cookie) == RuleState::kUnmonitorable) continue;
    ++count;
  }
  return count;
}

void Monitor::seed_rule(const Rule& rule) {
  // No invalidation sweep: seeding rebuilds a table the (possibly shared)
  // probe cache was generated against — trusting it is the documented
  // harness contract, and matches pre-versioned-core behaviour.
  apply_table_delta(expected_.apply_add(rule), /*invalidate=*/false);
  rule_states_[rule.cookie] = RuleState::kConfirmed;
  steady_order_.clear();  // force rebuild
}

RuleState Monitor::rule_state(std::uint64_t cookie) const {
  const auto it = rule_states_.find(cookie);
  return it == rule_states_.end() ? RuleState::kUnmonitorable : it->second;
}

// ---------------------------------------------------------------------------
// Controller-side path
// ---------------------------------------------------------------------------

void Monitor::on_controller_message(const Message& msg) {
  if (msg.is<FlowMod>()) {
    handle_flow_mod(msg.as<FlowMod>(), msg.xid);
    return;
  }
  if (msg.is<openflow::BarrierRequest>()) {
    if (!hold_queue_.empty()) {
      hold_queue_.emplace_back(msg, msg.xid);
      return;
    }
    if (config_.hold_barriers) {
      HeldBarrier hb;
      hb.xid = msg.xid;
      for (const auto& [cookie, job] : updates_) hb.waiting_on.insert(cookie);
      barriers_.push_back(std::move(hb));
    }
    hooks_.to_switch(msg);
    return;
  }
  // Everything else passes through untouched.
  hooks_.to_switch(msg);
}

bool Monitor::overlaps_pending(const Match& match) const {
  for (const auto& [cookie, job] : updates_) {
    if (job.rule.match.overlaps(match)) return true;
  }
  return false;
}

void Monitor::handle_flow_mod(const FlowMod& fm, std::uint32_t xid) {
  // §4.2: queue updates that overlap any yet-unconfirmed update; once a
  // queue forms, everything stays FIFO behind it to preserve ordering.
  if (!hold_queue_.empty() || overlaps_pending(fm.match)) {
    hold_queue_.emplace_back(openflow::make_message(xid, fm), xid);
    ++stats_.updates_queued;
    return;
  }
  apply_and_track(fm, xid);
}

void Monitor::apply_and_track(const FlowMod& fm, std::uint32_t xid) {
  switch (fm.command) {
    case FlowModCommand::kAdd: {
      FlowMod to_install = fm;
      UpdateJob job;
      job.kind = UpdateJob::Kind::kAdd;
      // §4.3 drop-postponing: install a tag-and-forward version first.
      if (config_.drop_postponing && fm.actions.empty()) {
        const auto ports = injectable_ports();
        if (!ports.empty()) {
          to_install.actions = {
              openflow::Action::set_field(netbase::Field::VlanId, kDropTag),
              openflow::Action::output(ports.front())};
          job.drop_postponed = true;
          job.final_rule = fm.rule();
        }
      }
      hooks_.to_switch(openflow::make_message(xid, to_install));
      ++stats_.flowmods_forwarded;
      // The one place adds enter the system: version the table, then let the
      // delta drive precise invalidation + live-session sync.
      apply_table_delta(expected_.apply_add(to_install.rule()));
      job.rule = to_install.rule();
      start_update_job(std::move(job));
      break;
    }
    case FlowModCommand::kModify:
    case FlowModCommand::kModifyStrict: {
      const Rule* old_rule = expected_.table().find_strict(fm.match, fm.priority);
      if (old_rule == nullptr) {
        // OpenFlow 1.0: a modify with no matching rule behaves as an add.
        FlowMod as_add = fm;
        as_add.command = FlowModCommand::kAdd;
        apply_and_track(as_add, xid);
        return;
      }
      hooks_.to_switch(openflow::make_message(xid, fm));
      ++stats_.flowmods_forwarded;
      UpdateJob job;
      job.kind = UpdateJob::Kind::kModify;
      // Build the altered-table probe (§4.1) against the PRE-update state.
      const ModificationSpec spec =
          make_modification_spec(expected_.table(), *old_rule, fm.rule());
      ProbeRequest req;
      req.table = &spec.altered;
      req.probed = spec.probed;
      req.collect = plan_->collect_match_for(config_.switch_id,
                                             collect_downstream(spec.probed));
      req.in_ports = injectable_ports();
      req.miss_actions = config_.miss_actions;
      const auto t0 = std::chrono::steady_clock::now();
      ProbeGenResult gen = generator_.generate(req);
      stats_.generation_time += std::chrono::steady_clock::now() - t0;
      ++stats_.probe_generations;
      ++stats_.scratch_regens;  // the altered table is ephemeral: one-shot
      if (gen.ok()) {
        gen.probe->rule_cookie = fm.cookie;
        job.probe = std::move(gen.probe);
      }
      const auto delta = expected_.apply_modify_strict(fm.rule());
      assert(delta.has_value());  // old_rule was just found
      if (delta.has_value()) apply_table_delta(*delta);
      job.rule = fm.rule();
      start_update_job(std::move(job));
      break;
    }
    case FlowModCommand::kDelete:
    case FlowModCommand::kDeleteStrict: {
      // Collect victims before forwarding (§4.1: a multi-rule delete is
      // confirmed per-rule).
      std::vector<Rule> victims;
      if (fm.command == FlowModCommand::kDeleteStrict) {
        const Rule* r = expected_.table().find_strict(fm.match, fm.priority);
        if (r != nullptr) victims.push_back(*r);
      } else {
        for (const Rule& r : expected_.table().rules()) {
          if (fm.match.subsumes(r.match) && !is_infrastructure_cookie(r.cookie)) {
            victims.push_back(r);
          }
        }
      }
      // Generate deletion probes from the PRE-delete table.
      std::vector<UpdateJob> jobs;
      for (const Rule& victim : victims) {
        UpdateJob job;
        job.kind = UpdateJob::Kind::kDelete;
        job.rule = victim;
        const Probe* p = probe_for(victim);
        if (p != nullptr) job.probe = *p;
        jobs.push_back(std::move(job));
      }
      hooks_.to_switch(openflow::make_message(xid, fm));
      ++stats_.flowmods_forwarded;
      for (const Rule& victim : victims) {
        const auto delta =
            expected_.apply_delete_strict(victim.match, victim.priority);
        if (delta.has_value()) apply_table_delta(*delta);
        rule_states_.erase(victim.cookie);
      }
      for (auto& job : jobs) start_update_job(std::move(job));
      break;
    }
  }
  steady_order_.clear();  // membership changed; rebuild lazily
}

void Monitor::start_update_job(UpdateJob job) {
  const std::uint64_t cookie = job.rule.cookie;
  job.epoch = expected_.epoch();
  job.started = runtime_->now();
  rule_states_[cookie] = RuleState::kPending;

  if (job.kind == UpdateJob::Kind::kAdd && !job.probe.has_value()) {
    const Probe* p = probe_for(job.rule);
    if (p != nullptr) job.probe = *p;
  }
  if (job.probe.has_value()) {
    if (egress_unobservable(*job.probe)) {
      job.probe.reset();
    }
  }
  if (job.probe.has_value()) {
    job.negative =
        (job.kind == UpdateJob::Kind::kDelete)
            ? job.probe->if_absent.is_drop()
            : job.probe->if_present.is_drop();
  }

  const bool has_probe = job.probe.has_value();
  updates_[cookie] = std::move(job);

  if (has_probe) {
    // First injection after the (simulated) probe-computation latency.
    updates_[cookie].inject_timer = runtime_->schedule(
        config_.generation_delay, [this, cookie] { inject_update_probe(cookie); });
  } else if (channel_up_) {
    // Unmonitorable update: best-effort blind confirmation after a settle
    // delay (documented limitation; see DESIGN.md).
    updates_[cookie].inject_timer = runtime_->schedule(
        config_.negative_confirm_timeout, [this, cookie] { confirm_update(cookie); });
  }
  // Give-up alarm.  Jobs born during an outage start with the blind-confirm
  // and give-up timers unarmed, exactly like pre-existing jobs paused by
  // on_channel_state(false); the reconnect path re-arms both — confirming
  // or failing an update whose FlowMod is still parked in a down backend's
  // queue would be a verdict about the outage, not the data plane.
  if (channel_up_) schedule_update_give_up(cookie);
}

void Monitor::schedule_update_give_up(std::uint64_t cookie) {
  updates_[cookie].give_up_timer =
      runtime_->schedule(config_.update_give_up, [this, cookie] {
        const auto it = updates_.find(cookie);
        if (it == updates_.end()) return;
        it->second.give_up_timer = 0;
        if (hooks_.on_update_failed) {
          hooks_.on_update_failed(cookie, runtime_->now());
        }
        runtime_->cancel(it->second.inject_timer);
        updates_.erase(it);
        purge_outstanding_for(cookie);
        rule_states_[cookie] = RuleState::kFailed;
        confirm_barriers_waiting_on(cookie);
        drain_hold_queue();
      });
}

void Monitor::inject_update_probe(std::uint64_t cookie) {
  const auto it = updates_.find(cookie);
  if (it == updates_.end()) return;
  UpdateJob& job = it->second;
  assert(job.probe.has_value());

  // Negative confirmation: enough consecutive silent injections confirm.
  if (job.negative && job.silent_injections >= config_.negative_confirm_tries) {
    confirm_update(cookie);
    return;
  }
  const std::uint32_t nonce = next_nonce_++;
  if (inject_probe_packet(*job.probe, nullptr, job.epoch, nonce)) {
    // Only probes that actually left enter the outstanding set (mirrors
    // inject_steady_probe): a down injection path must register nothing —
    // no silence credit, no nonce accumulating across the outage.
    OutstandingProbe op;
    op.cookie = cookie;
    op.epoch = job.epoch;
    op.nonce = nonce;
    op.tries_left = 0;  // update probes re-inject on their own cadence
    op.first_injected = runtime_->now();
    insert_outstanding(nonce, op);
    ++job.silent_injections;  // reset on any observation
  }
  job.inject_timer = runtime_->schedule(
      config_.update_probe_interval, [this, cookie] { inject_update_probe(cookie); });
}

void Monitor::purge_outstanding_for(std::uint64_t cookie) {
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (it->second.cookie == cookie) {
      runtime_->cancel(it->second.timer);
      auto victim = it++;
      retire_outstanding(victim);
    } else {
      ++it;
    }
  }
}

void Monitor::confirm_update(std::uint64_t cookie) {
  const auto it = updates_.find(cookie);
  if (it == updates_.end()) return;
  UpdateJob job = std::move(it->second);
  runtime_->cancel(job.inject_timer);
  runtime_->cancel(job.give_up_timer);
  updates_.erase(it);
  // Every nonce this update still has in flight is resolved with it —
  // update probes (negative ones especially) carry no timeout timer and
  // would otherwise accumulate forever.
  purge_outstanding_for(cookie);

  if (job.kind == UpdateJob::Kind::kDelete) {
    rule_states_.erase(cookie);
  } else {
    rule_states_[cookie] = RuleState::kConfirmed;
  }
  steady_order_.clear();  // the confirmed rule now joins the steady cycle
  ++stats_.updates_confirmed;
  const netbase::SimTime latency = runtime_->now() - job.started;
  ++stats_.confirm_latency_count;
  stats_.confirm_latency_sum_ns += latency;
  ++stats_.confirm_latency_hist[telemetry::confirm_latency_bucket(latency)];

  // §4.3 second phase: swap the tagged-forward rule for the real drop rule.
  // Probing is no longer necessary (the paper: the end-to-end behaviour of
  // production traffic does not change).
  if (job.drop_postponed) {
    FlowMod real_drop;
    real_drop.command = FlowModCommand::kModifyStrict;
    real_drop.match = job.final_rule.match;
    real_drop.priority = job.final_rule.priority;
    real_drop.cookie = job.final_rule.cookie;
    real_drop.actions = job.final_rule.actions;
    hooks_.to_switch(openflow::make_message(0, real_drop));
    ++stats_.flowmods_forwarded;
    const auto delta = expected_.apply_modify_strict(real_drop.rule());
    if (delta.has_value()) apply_table_delta(*delta);
  }

  if (hooks_.on_update_confirmed) {
    hooks_.on_update_confirmed(cookie, runtime_->now());
  }
  confirm_barriers_waiting_on(cookie);
  drain_hold_queue();
}

void Monitor::confirm_barriers_waiting_on(std::uint64_t cookie) {
  for (auto it = barriers_.begin(); it != barriers_.end();) {
    it->waiting_on.erase(cookie);
    if (it->waiting_on.empty() && it->reply_seen) {
      hooks_.to_controller(
          openflow::make_message(it->xid, openflow::BarrierReply{}));
      it = barriers_.erase(it);
    } else {
      ++it;
    }
  }
}

void Monitor::drain_hold_queue() {
  while (!hold_queue_.empty()) {
    const auto [msg, xid] = hold_queue_.front();
    if (msg.is<FlowMod>()) {
      if (overlaps_pending(msg.as<FlowMod>().match)) return;  // still blocked
      hold_queue_.pop_front();
      apply_and_track(msg.as<FlowMod>(), xid);
    } else if (msg.is<openflow::BarrierRequest>()) {
      hold_queue_.pop_front();
      if (config_.hold_barriers) {
        HeldBarrier hb;
        hb.xid = xid;
        for (const auto& [cookie, job] : updates_) hb.waiting_on.insert(cookie);
        barriers_.push_back(std::move(hb));
      }
      hooks_.to_switch(msg);
    } else {
      hold_queue_.pop_front();
      hooks_.to_switch(msg);
    }
  }
}

// ---------------------------------------------------------------------------
// Switch-side path
// ---------------------------------------------------------------------------

void Monitor::on_switch_message(const Message& msg) {
  if (msg.is<openflow::BarrierReply>() && config_.hold_barriers) {
    for (auto it = barriers_.begin(); it != barriers_.end(); ++it) {
      if (it->xid == msg.xid) {
        it->reply_seen = true;
        if (it->waiting_on.empty()) {
          hooks_.to_controller(msg);
          barriers_.erase(it);
        }
        return;  // held until the pending updates confirm
      }
    }
  }
  hooks_.to_controller(msg);
}

// ---------------------------------------------------------------------------
// Probe plumbing
// ---------------------------------------------------------------------------

std::vector<std::uint16_t> Monitor::injectable_ports() const {
  std::vector<std::uint16_t> out;
  for (const std::uint16_t p : view_->ports(config_.switch_id)) {
    if (view_->peer(config_.switch_id, p).has_value()) out.push_back(p);
  }
  return out;
}

SwitchId Monitor::collect_downstream(const Rule& rule) const {
  // Strategy 2 needs the downstream switch the probe should be caught by:
  // the peer behind the rule's first observable output port (drop rules fall
  // back to any neighbor — their probes are negative anyway).
  for (const auto& [port, rewrite] : rule.outcome().emissions) {
    const auto peer = view_->peer(config_.switch_id, port);
    if (peer) return peer->sw;
  }
  for (const std::uint16_t p : view_->ports(config_.switch_id)) {
    const auto peer = view_->peer(config_.switch_id, p);
    if (peer) return peer->sw;
  }
  return config_.switch_id;
}

bool Monitor::egress_unobservable(const Probe& probe) const {
  auto observable = [&](const OutcomePrediction& pred) {
    for (const Observation& o : pred.observations) {
      if (o.output_port == openflow::kPortController) continue;
      if (!view_->peer(config_.switch_id, o.output_port).has_value()) {
        return false;
      }
    }
    return true;
  };
  return !observable(probe.if_present) || !observable(probe.if_absent);
}

std::uint16_t Monitor::hashed_in_port(
    const Rule& rule, const std::vector<std::uint16_t>& all_ports) const {
  const std::uint64_t h =
      rule.cookie * 0x9E3779B97F4A7C15ull + config_.switch_id;
  return all_ports[h % all_ports.size()];
}

const Probe* Monitor::probe_for(const Rule& rule) {
  ProbeCache::Entry* entry = probe_entry_for(rule);
  return entry == nullptr ? nullptr : &*entry->probe;
}

ProbeCache::Entry* Monitor::probe_entry_for(const Rule& rule) {
  auto& entry = cache_->entries[rule.cookie];
  if (entry.probe.has_value()) {
    ++stats_.probe_cache_hits;
    return &entry;
  }
  if (entry.failure != ProbeFailure::kNone) {
    ++stats_.probe_cache_hits;  // resolved (unmonitorable) counts as served
    return nullptr;
  }
  ++stats_.probe_cache_misses;

  const Match collect = plan_->collect_match_for(config_.switch_id,
                                                 collect_downstream(rule));
  const auto all_ports = injectable_ports();
  const auto t0 = std::chrono::steady_clock::now();
  ProbeGenResult gen;
  // Prefer a single (rule-hashed) ingress port so injection load spreads
  // across upstream neighbors instead of hammering one of them; fall back to
  // the full port set when the constraint is unsatisfiable with that port.
  if (config_.delta_maintenance && config_.batch_generation) {
    // Lazy misses ride the warm delta-maintained session too.
    ProbeBatchSession& session = live_session_for(collect);
    if (!all_ports.empty()) {
      const std::uint16_t preferred = hashed_in_port(rule, all_ports);
      gen = session.generate(rule, std::span(&preferred, 1));
    }
    if (!gen.ok()) gen = session.generate(rule, all_ports);
    ++stats_.delta_regens;
  } else {
    ProbeRequest req;
    req.table = &expected_.table();
    req.probed = rule;
    req.collect = collect;
    req.miss_actions = config_.miss_actions;
    if (!all_ports.empty()) {
      req.in_ports = {hashed_in_port(rule, all_ports)};
      gen = generator_.generate(req);
    }
    if (!gen.ok()) {
      req.in_ports = all_ports;
      gen = generator_.generate(req);
    }
    ++stats_.scratch_regens;
  }
  stats_.generation_time += std::chrono::steady_clock::now() - t0;
  if (commit_generation_result(rule, std::move(gen)) == nullptr) return nullptr;
  return &cache_->entries[rule.cookie];
}

const Probe* Monitor::commit_generation_result(const Rule& rule,
                                               ProbeGenResult gen) {
  auto& entry = cache_->entries[rule.cookie];
  entry.epoch = expected_.epoch();
  ++stats_.probe_generations;
  if (!gen.ok()) {
    entry.failure = gen.failure;
    rule_states_[rule.cookie] = RuleState::kUnmonitorable;
    return nullptr;
  }
  if (egress_unobservable(*gen.probe)) {
    entry.failure = ProbeFailure::kEgress;
    rule_states_[rule.cookie] = RuleState::kUnmonitorable;
    return nullptr;
  }
  entry.probe = std::move(gen.probe);
  return &*entry.probe;
}

void Monitor::batch_generate_into_cache(
    const std::vector<std::uint64_t>& cookies) {
  const auto all_ports = injectable_ports();
  const auto t0 = std::chrono::steady_clock::now();

  // Group the rules by their Collect match: one solver session per
  // downstream catcher (strategy 2 gives different tag constraints per
  // downstream switch).
  struct Group {
    Match collect;
    std::vector<const Rule*> rules;
  };
  std::vector<Group> groups;
  for (const std::uint64_t cookie : cookies) {
    const Rule* rule = expected_.table().find_by_cookie(cookie);
    if (rule == nullptr || is_infrastructure_cookie(cookie)) continue;
    const auto it = cache_->entries.find(cookie);
    if (it != cache_->entries.end() &&
        (it->second.probe.has_value() ||
         it->second.failure != ProbeFailure::kNone)) {
      continue;  // already resolved (e.g. by a lazy probe_for call)
    }
    const Match collect = plan_->collect_match_for(config_.switch_id,
                                                   collect_downstream(*rule));
    auto group = std::find_if(groups.begin(), groups.end(), [&](const Group& g) {
      return g.collect == collect;
    });
    if (group == groups.end()) {
      groups.push_back({collect, {}});
      group = groups.end() - 1;
    }
    group->rules.push_back(rule);
  }

  BatchOptions opts;
  opts.gen = config_.gen;
  opts.threads = config_.batch_threads;
  for (const Group& group : groups) {
    // Small refill batches (the churn steady state) ride the live
    // delta-maintained session: its solver is warm from every previous
    // query and only the changed rules' clauses get encoded.  Big batches
    // (initial warm-up) and the non-delta baseline go through throwaway
    // generate_all sessions — that path parallelizes across workers.
    const bool live = config_.delta_maintenance && config_.batch_generation &&
                      group.rules.size() <= config_.live_session_batch_limit;
    if (live) {
      // Two-step port preference per rule, exactly like probe_for, so the
      // delta path and the lazy path produce identical cache contents.
      ProbeBatchSession& session = live_session_for(group.collect);
      for (const Rule* rule : group.rules) {
        ProbeGenResult gen;
        if (!all_ports.empty()) {
          const std::uint16_t preferred = hashed_in_port(*rule, all_ports);
          gen = session.generate(*rule, std::span(&preferred, 1));
        }
        if (!gen.ok()) gen = session.generate(*rule, all_ports);
        ++stats_.delta_regens;
        commit_generation_result(*rule, std::move(gen));
      }
      continue;
    }
    std::vector<BatchProbeRequest> requests;
    requests.reserve(group.rules.size());
    for (const Rule* rule : group.rules) {
      BatchProbeRequest req;
      req.rule = rule;
      if (!all_ports.empty()) req.in_ports = {hashed_in_port(*rule, all_ports)};
      requests.push_back(std::move(req));
    }
    std::vector<ProbeGenResult> results =
        generate_all(expected_.table(), group.collect, config_.miss_actions,
                     requests, opts);
    std::vector<BatchProbeRequest> retries;
    std::vector<std::size_t> retry_pos;
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok() && !requests[i].in_ports.empty()) {
        retries.push_back({group.rules[i], all_ports});
        retry_pos.push_back(i);
      }
    }
    if (!retries.empty()) {
      std::vector<ProbeGenResult> retried =
          generate_all(expected_.table(), group.collect, config_.miss_actions,
                       retries, opts);
      for (std::size_t i = 0; i < retried.size(); ++i) {
        results[retry_pos[i]] = std::move(retried[i]);
      }
    }
    stats_.scratch_regens += results.size();
    for (std::size_t i = 0; i < results.size(); ++i) {
      commit_generation_result(*group.rules[i], std::move(results[i]));
    }
  }
  stats_.generation_time += std::chrono::steady_clock::now() - t0;
}

void Monitor::refill_probe_cache() {
  std::vector<std::uint64_t> cookies;
  for (const Rule& r : expected_.table().rules()) {
    if (!is_infrastructure_cookie(r.cookie)) cookies.push_back(r.cookie);
  }
  batch_generate_into_cache(cookies);
}

void Monitor::schedule_batch_refill() {
  if (batch_refill_scheduled_) return;
  batch_refill_scheduled_ = true;
  // Coalesce: table-change bursts (e.g. a multi-rule delete) trigger one
  // refill pass, charged at the same latency as a fresh generation.
  refill_timer_ = runtime_->schedule(config_.generation_delay, [this] {
    refill_timer_ = 0;
    batch_refill_scheduled_ = false;
    std::vector<std::uint64_t> cookies(dirty_probe_cookies_.begin(),
                                       dirty_probe_cookies_.end());
    dirty_probe_cookies_.clear();
    batch_generate_into_cache(cookies);
  });
}

openflow::Epoch Monitor::rule_floor(std::uint64_t cookie) const {
  const auto it = rule_floor_.find(cookie);
  return it == rule_floor_.end() ? 0 : it->second;
}

bool Monitor::delta_survives(const ProbeCache::Entry& entry,
                             const openflow::TableDelta& delta,
                             std::uint64_t cookie) {
  using Kind = openflow::TableDelta::Kind;
  if (entry.probe.has_value()) {
    // A probe is ONE concrete packet: a rule whose match cannot cover it
    // can neither shadow its Hit nor enter either outcome prediction
    // (if_present is the probed rule's own outcome; if_absent the first
    // OTHER rule matching the packet).
    return !delta.rule.match.matches(entry.probe->packet);
  }
  switch (entry.failure) {
    case ProbeFailure::kUnsupported:
      // Depends only on the rule's OWN actions (FLOOD/ALL, tag rewrite);
      // a delta to another rule cannot change it (self always regenerates).
      return true;
    case ProbeFailure::kShadowed:
      // Shadowing is a property of overlapping rules' matches at priority
      // >= the shadowed rule (equal priority counts: the conservative
      // same-priority rule in run_query).  Adds only add cover; action
      // modifies and same-match replaces keep every match set; a DELETE can
      // expose the rule.  The delta's overlap split is relative to the
      // DELETED rule, which cannot tell "strictly higher" from "equal
      // priority" for cookies in overlapping_higher — and an equal-priority
      // deleted rule may itself have been the shadower — so any delete that
      // overlaps a shadowed rule regenerates it.
      return delta.kind != Kind::kDelete;
    default:
      // kIndistinguishable/kUnsat/kEgress/...: any neighboring change can
      // flip these — regenerate.
      return false;
  }
}

ProbeBatchSession& Monitor::live_session_for(const Match& collect) {
  for (auto& ls : live_sessions_) {
    if (ls.collect == collect) return *ls.session;
  }
  live_sessions_.push_back(
      {collect, std::make_unique<ProbeBatchSession>(
                    expected_.table(), collect, config_.miss_actions,
                    config_.gen)});
  return *live_sessions_.back().session;
}

void Monitor::apply_table_delta(const openflow::TableDelta& delta,
                                bool invalidate) {
  using Kind = openflow::TableDelta::Kind;
  ++stats_.deltas_applied;
  // Every table mutation funnels through here, and the steady cycle caches
  // raw Rule* into the table's rule vector (SteadyEntry) — clear it
  // unconditionally BEFORE anything else so no later step can walk stale
  // pointers.  The next tick rebuilds against the post-delta table.
  steady_order_.clear();
  steady_pos_ = 0;
  // Live sessions track every delta in application order — a cheap
  // positional cache patch; the incremental solver survives untouched.
  for (auto& ls : live_sessions_) {
    ls.session->apply_delta(expected_.table(), delta);
  }
  if (!invalidate) {
    if (hooks_.on_delta) hooks_.on_delta(delta);
    return;
  }
  // Precise invalidation.  The delta names every rule the change CAN affect
  // (its own slot, the slot it replaced, the overlap sets) — already far
  // tighter than the old whole-table match scan.  Within that set, a cached
  // probe survives unless the changed rule's match covers the probe PACKET
  // itself: a probe is one concrete packet, and a rule that cannot match it
  // can neither shadow its Hit nor enter either of its outcome predictions
  // (if_present is the probed rule's own outcome; if_absent is the first
  /// OTHER rule matching the packet).  The probe stays valid, its verdict
  // semantics stay exact, and its in-flight echoes stay meaningful — so
  // churn cost scales with what the change actually touches.
  for (const std::uint64_t cookie : delta.affected_cookies()) {
    const bool gone =
        (delta.kind == Kind::kDelete && cookie == delta.rule.cookie) ||
        (delta.replaced.has_value() && cookie == delta.replaced->cookie &&
         cookie != delta.rule.cookie);
    if (!gone && cookie != delta.rule.cookie) {
      const auto it = cache_->entries.find(cookie);
      if (it != cache_->entries.end() &&
          delta_survives(it->second, delta, cookie)) {
        continue;  // the change provably cannot touch this entry
      }
    }
    // Observations from probes injected before this epoch are about a table
    // that no longer exists: stale, not failures.
    rule_floor_[cookie] = delta.epoch;
    if (cache_->entries.erase(cookie) > 0) {
      ++stats_.probe_invalidations;
      // A deleted rule (or the displaced version of a replace) needs no
      // refill; everything else steady-state probing will want again soon.
      if (!gone && config_.batch_generation && steady_running_) {
        dirty_probe_cookies_.insert(cookie);
      }
    }
    // In-flight STEADY probes of affected rules become stale; their nonces
    // are dropped here with their timers.  A pending update's nonces are
    // exempt, like its echoes (§4.1): purging them would eat the very
    // observations that reset silence-based negative confirmation, letting
    // an overlapping-delta stream falsely confirm a drop rule.  Update
    // nonces are resolved by confirm_update/give-up, never left behind.
    if (updates_.find(cookie) == updates_.end()) {
      purge_outstanding_for(cookie);
      // An in-progress suspicion about a rule the delta touched is evidence
      // about a table that no longer exists: drop it without a verdict.
      drop_suspect(cookie);
    }
  }
  if (delta.kind == Kind::kDelete) {
    rule_floor_.erase(delta.rule.cookie);  // late echoes miss outstanding_ anyway
    dirty_probe_cookies_.erase(delta.rule.cookie);
  }
  // Endurance: kDelete only erases the deleted rule's own floor, so
  // modify-heavy streams that rotate cookies (each modify retiring the
  // replaced cookie) grow the floor map without bound.  Sweep once the map
  // outgrows twice its live size (amortized O(1) per delta).
  if (next_floor_sweep_ == 0) {
    next_floor_sweep_ = std::max<std::size_t>(config_.floor_sweep_min, 1);
  }
  if (rule_floor_.size() >= next_floor_sweep_) sweep_rule_floors();
  if (!dirty_probe_cookies_.empty()) schedule_batch_refill();
  if (hooks_.on_delta) hooks_.on_delta(delta);
}

void Monitor::sweep_rule_floors() {
  // Watermark: the smallest injection epoch still in flight.  Floors only
  // ever classify observations whose probe epoch is BELOW them, future
  // injections stamp the current epoch (>= any floor ever set), so a floor
  // at or below the watermark can never fire again — dead weight.
  openflow::Epoch watermark = expected_.epoch();
  for (const auto& [nonce, op] : outstanding_) {
    watermark = std::min(watermark, op.epoch);
  }
  for (auto it = rule_floor_.begin(); it != rule_floor_.end();) {
    if (it->second <= watermark) {
      it = rule_floor_.erase(it);
    } else {
      ++it;
    }
  }
  ++stats_.floor_sweeps;
  next_floor_sweep_ =
      std::max<std::size_t>(config_.floor_sweep_min, 2 * rule_floor_.size());
  // Spare-pool watermark: long bursts can pin kMaxOutstandingSpares
  // recycled nodes forever; trim to the high-watermark of concurrent
  // probes actually seen since the last sweep.
  const std::size_t keep = std::max<std::size_t>(outstanding_peak_, 16);
  if (outstanding_spares_.size() > keep) outstanding_spares_.resize(keep);
  outstanding_peak_ = outstanding_.size();
}

bool Monitor::inject_probe_packet(const Probe& probe, ProbeCache::Entry* entry,
                                  openflow::Epoch epoch, std::uint32_t nonce) {
  // The wire carries the low 32 epoch bits; the full epoch rides in the
  // outstanding entry, where the staleness floors compare it.
  const auto generation = static_cast<std::uint32_t>(epoch);

  if (config_.reuse_probe_wire && entry != nullptr && entry->wire.valid()) {
    // Steady fast path: re-stamp the per-injection fields of the cached
    // frame in place — no metadata encode, no expected-outcome hash (it is
    // constant per probe and already embedded), zero allocations.
    netbase::restamp_probe_wire(entry->wire, generation, nonce);
    const bool ok = hooks_.inject(probe.in_port(), entry->wire.bytes);
    if (ok) ++stats_.probes_injected;
    return ok;
  }

  ProbeMetadata meta;
  meta.switch_id = config_.switch_id;
  meta.rule_cookie = probe.rule_cookie;
  meta.generation = generation;
  meta.expected = hash_prediction(probe.if_present);
  meta.nonce = nonce;

  bool ok = false;
  if (!config_.reuse_probe_wire) {
    // Pre-fig11 baseline: encode + craft fresh buffers per injection.
    auto payload = netbase::encode_probe_metadata(meta);
    auto bytes = netbase::craft_packet(probe.packet, payload);
    ok = hooks_.inject(probe.in_port(), bytes);
  } else if (entry != nullptr) {
    // First injection of this rule: craft once into the cache entry; every
    // later injection re-stamps it above.
    entry->wire = netbase::craft_probe_wire(probe.packet, meta);
    ok = hooks_.inject(probe.in_port(), entry->wire.bytes);
  } else {
    // Update-confirmation probes: their altered-table packets live in the
    // UpdateJob, not the cache, so craft per call — but into the reusable
    // scratch buffer, with the metadata on the stack.
    std::array<std::uint8_t, ProbeMetadata::kWireSize> payload;
    netbase::encode_probe_metadata(meta, payload);
    netbase::craft_packet_into(probe.packet, payload, wire_scratch_);
    ok = hooks_.inject(probe.in_port(), wire_scratch_);
  }
  if (ok) ++stats_.probes_injected;  // count real injections only
  return ok;
}

void Monitor::insert_outstanding(std::uint32_t nonce,
                                 const OutstandingProbe& op) {
  if (outstanding_.size() >= outstanding_peak_) {
    outstanding_peak_ = outstanding_.size() + 1;  // spare-pool watermark
  }
  if (!outstanding_spares_.empty()) {
    auto node = std::move(outstanding_spares_.back());
    outstanding_spares_.pop_back();
    node.key() = nonce;
    node.mapped() = op;
    auto res = outstanding_.insert(std::move(node));
    if (!res.inserted) {
      // nonce wrapped onto a still-live entry (a long-silent update probe):
      // overwrite, exactly like the map-assignment path below — the old
      // record must not answer for the new probe's timer.
      res.position->second = op;
      outstanding_spares_.push_back(std::move(res.node));
    }
    return;
  }
  outstanding_[nonce] = op;
}

void Monitor::retire_outstanding(OutstandingMap::iterator it) {
  auto node = outstanding_.extract(it);
  if (outstanding_spares_.size() < kMaxOutstandingSpares) {
    outstanding_spares_.push_back(std::move(node));
  }
}

std::optional<Observation> Monitor::translate_observation(
    SwitchId catcher, std::uint16_t catcher_in_port,
    const netbase::PacketView& packet) const {
  Observation o;
  o.header = strip_in_port(netbase::pack_header(packet.header));
  if (catcher == config_.switch_id) {
    o.output_port = openflow::kPortController;
    return o;
  }
  const auto peer = view_->peer(catcher, catcher_in_port);
  if (!peer || peer->sw != config_.switch_id) return std::nullopt;
  o.output_port = peer->port;
  return o;
}

void Monitor::on_probe_caught(SwitchId catcher, std::uint16_t catcher_in_port,
                              const netbase::PacketView& packet,
                              const ProbeMetadata& meta) {
  ++stats_.probes_caught;
  const auto out_it = outstanding_.find(meta.nonce);
  if (out_it == outstanding_.end() ||
      static_cast<std::uint32_t>(out_it->second.epoch) != meta.generation) {
    ++stats_.stale_probes;
    return;
  }
  const std::uint64_t cookie = out_it->second.cookie;
  // Epoch-keyed staleness for STEADY probes: one injected against an older
  // table version (pre-delta, or pre-outage) proves nothing about the rule
  // NOW — classify stale, never as a failure.  (Invalidation purges such
  // nonces eagerly; this guards the race where the echo is already in
  // flight toward us.)  Update-confirmation probes are exempt: they
  // re-inject until the data plane applies THIS update and may legitimately
  // confirm across overlapping deltas and channel outages (§4.1).
  if (updates_.find(cookie) == updates_.end() &&
      (out_it->second.epoch < epoch_floor_ ||
       out_it->second.epoch < rule_floor(cookie))) {
    runtime_->cancel(out_it->second.timer);
    retire_outstanding(out_it);
    ++stats_.stale_probes;
    ++stats_.stale_epoch_drops;
    return;
  }
  const auto obs = translate_observation(catcher, catcher_in_port, packet);
  if (!obs) {
    ++stats_.stale_probes;
    return;
  }

  // Locate the probe this observation answers.
  const Probe* probe = nullptr;
  const auto job_it = updates_.find(cookie);
  if (job_it != updates_.end() && job_it->second.probe.has_value()) {
    probe = &*job_it->second.probe;
  } else {
    const auto cache_it = cache_->entries.find(cookie);
    if (cache_it != cache_->entries.end() && cache_it->second.probe) {
      probe = &*cache_it->second.probe;
    }
  }
  if (probe == nullptr) {
    ++stats_.stale_probes;
    return;
  }

  const Verdict verdict = classify_observation(*probe, *obs);

  if (job_it != updates_.end()) {
    UpdateJob& job = job_it->second;
    job.silent_injections = 0;
    const bool confirms =
        (job.kind == UpdateJob::Kind::kDelete) ? verdict == Verdict::kAbsent
                                               : verdict == Verdict::kPresent;
    // Caught is resolved either way: the nonce leaves the outstanding set
    // (confirm_update then purges any siblings still in flight).
    retire_outstanding(out_it);
    if (confirms) confirm_update(cookie);
    // Transient inconsistency (§4.1): the opposite verdict is expected while
    // the switch lags; keep probing without alarming.
    return;
  }

  // Steady-state probe.
  runtime_->cancel(out_it->second.timer);
  retire_outstanding(out_it);
  if (verdict == Verdict::kPresent) {
    if (const auto s = suspects_.find(cookie); s != suspects_.end()) {
      // One present echo acquits: the timeouts were the path flapping (or
      // eating probes), not the rule misbehaving.
      runtime_->cancel(s->second.timer);
      suspects_.erase(s);
      ++stats_.flap_suppressions;
      rule_states_[cookie] = RuleState::kConfirmed;
      note_verdict(cookie, RuleState::kConfirmed);
    }
    if (failed_.erase(cookie) > 0) {
      rule_states_[cookie] = RuleState::kConfirmed;
      note_verdict(cookie, RuleState::kConfirmed);
    }
  } else if (verdict == Verdict::kAbsent) {
    // An absent echo is direct evidence — but under churn and flaps a
    // single observation still goes through K-of-N confirmation.
    if (suspects_.contains(cookie)) {
      suspect_strike(cookie);
    } else if (config_.confirm_probes > 0) {
      raise_suspect(cookie);
    } else {
      mark_rule_failed(cookie);
    }
  }
  // kInconclusive: ignore.
}

// ---------------------------------------------------------------------------
// Steady state
// ---------------------------------------------------------------------------

void Monitor::schedule_steady_tick() {
  const auto interval =
      static_cast<SimTime>(1e9 / config_.steady_probe_rate);
  steady_timer_ = runtime_->schedule(interval, [this] {
    steady_timer_ = 0;
    if (!steady_running_) return;
    steady_tick();
    schedule_steady_tick();
  });
}

Monitor::SteadyEntry* Monitor::next_steady_entry() {
  if (steady_order_.empty()) {
    // Rebuild resolves every pointer the per-probe step would otherwise
    // re-hash: Rule* into the table, RuleState* at the states-map node and
    // the last-probed stamp at its (node-stable) map entry.  Any table
    // delta clears the order (apply_table_delta), so the Rule* never
    // outlives the rule vector it points into.
    for (const Rule& r : expected_.table().rules()) {
      if (is_infrastructure_cookie(r.cookie)) continue;
      const auto st = rule_states_.find(r.cookie);
      if (st == rule_states_.end() ||  // reads as kUnmonitorable
          st->second == RuleState::kPending ||
          st->second == RuleState::kUnmonitorable ||
          st->second == RuleState::kSuspect) {
        continue;  // suspects are probed by their own confirmation machine
      }
      const auto lp = last_probed_.try_emplace(r.cookie, 0).first;
      steady_order_.push_back(
          SteadyEntry{r.cookie, &r, &st->second, nullptr, &lp->second, 0});
    }
    steady_pos_ = 0;
    wheel_built_ = false;  // bucket indices point into the old order
    // Cookie-rotating churn leaves last-probed stamps behind for cookies
    // that left the table; prune when the map doubled past the live order
    // (amortized O(1) per delta, keeps the endurance RSS flat).  Erasure
    // never touches the entries the fresh order points at.
    if (last_probed_.size() > steady_order_.size() * 2 + 16) {
      for (auto it = last_probed_.begin(); it != last_probed_.end();) {
        const Rule* live = expected_.table().find_by_cookie(it->first);
        if (live == nullptr || is_infrastructure_cookie(it->first)) {
          it = last_probed_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (steady_order_.empty()) return nullptr;
  }
  if (!wheel_built_) rebuild_wheel();
  // Drain the stalest non-empty bucket; when every bucket is exhausted the
  // cycle is complete and the wheel re-bins by current age.  Two passes
  // bound the scan: pass 1 finishes the current cycle, pass 2 scans one
  // whole fresh cycle — if neither finds a probeable slot, nothing is.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t b = 0; b < kStalenessBuckets; ++b) {
      std::vector<std::uint32_t>& bucket = wheel_[b];
      std::size_t& pos = wheel_pos_[b];
      while (pos < bucket.size()) {
        SteadyEntry& slot = steady_order_[bucket[pos++]];
        // Skip slots that became pending/suspect/unmonitorable since the
        // rebuild — one pointer read per slot; state transitions rewrite
        // the node in place.
        const RuleState st = *slot.state;
        if (st == RuleState::kPending || st == RuleState::kUnmonitorable ||
            st == RuleState::kSuspect) {
          continue;
        }
        return &slot;
      }
    }
    rebuild_wheel();
  }
  return nullptr;
}

void Monitor::rebuild_wheel() {
  // Any bucket may hold the whole order (re-binning shifts occupancy every
  // rebuild), so reserve up front once per size change — rebuilds then never
  // touch the heap, which the fig14 steady-cycle alloc gate counts on.
  for (auto& bucket : wheel_) {
    bucket.clear();  // capacity retained
    if (bucket.capacity() < steady_order_.size()) {
      bucket.reserve(steady_order_.size());
    }
  }
  wheel_pos_.fill(0);
  const SimTime now = runtime_->now();
  // The quantum adapts to the age SPREAD, not a fixed timeout multiple: a
  // shard revisited every N rounds by the fleet has every rule older than
  // any fixed threshold, which would collapse the wheel into one bucket in
  // table order — and a churn-triggered order rebuild would then restart
  // the scan at the table head, starving the tail forever.  Binning by
  // fractions of the current maximum age keeps "stalest first" meaningful
  // at any probing cadence, and the stamps survive order rebuilds, so the
  // cycle position is effectively carried across churn.
  SimTime max_age = 0;
  for (const SteadyEntry& e : steady_order_) {
    const SimTime last = *e.last_probed;
    if (last == 0) continue;  // never probed: ranked ahead of every age
    max_age = std::max(max_age, now - std::min(now, last));
  }
  const auto quantum =
      std::max<SimTime>(std::max<SimTime>(1, config_.probe_timeout),
                        max_age / kStalenessBuckets);
  // Never-probed rules fill bucket 0 FIRST: under churn the order (and so
  // the wheel) rebuilds every round, and each rebuild promotes a fresh
  // batch of merely-aged low-index rules into bucket 0 — if those preceded
  // the never-probed tail in the pick order, a burst no larger than the
  // promotion rate would cycle the table head forever and the tail would
  // never see its first probe (observed: a frozen tail exactly as old as
  // the run).
  for (std::uint32_t i = 0; i < steady_order_.size(); ++i) {
    if (*steady_order_[i].last_probed == 0) wheel_[0].push_back(i);
  }
  for (std::uint32_t i = 0; i < steady_order_.size(); ++i) {
    const SimTime last = *steady_order_[i].last_probed;
    if (last == 0) continue;
    const SimTime age = now - std::min(now, last);
    // Stalest first: long-starved rules land in bucket 0, freshly probed
    // ones in the last bucket.  Within a bucket the pick order follows
    // steady_order_ (table order) — fully deterministic.
    std::size_t b;
    if (age >= 3 * quantum) {
      b = 0;
    } else if (age >= 2 * quantum) {
      b = 1;
    } else if (age >= quantum) {
      b = 2;
    } else {
      b = 3;
    }
    wheel_[b].push_back(i);
  }
  wheel_built_ = true;
}

void Monitor::steady_tick() {
  if (!channel_up_) return;  // started while down: skip until reconnect
  SteadyEntry* slot = next_steady_entry();
  if (slot != nullptr) inject_steady_probe(*slot);
}

bool Monitor::inject_steady_probe(SteadyEntry& slot) {
  const std::uint64_t cookie = slot.cookie;
  ProbeCache::Entry* entry = slot.entry;
  if (entry != nullptr && entry->probe.has_value()) {
    // Slot-cached fast path: the two remaining hash lookups of the steady
    // cycle (cache find + states find at probe_entry_for's hit counter) are
    // gone.  Keep the hit accounting identical to the map path.
    ++stats_.probe_cache_hits;
  } else {
    entry = probe_entry_for(*slot.rule);
    if (entry == nullptr) return false;  // became unmonitorable
    slot.entry = entry;  // node pointer: stable until the order is cleared
  }

  const openflow::Epoch epoch = expected_.epoch();
  const std::uint32_t nonce = next_nonce_++;
  if (!inject_probe_packet(*entry->probe, entry, epoch, nonce)) {
    // No live injection path (e.g. the delivering backend is reconnecting):
    // register nothing.  A timeout for a probe that never left would turn
    // the outage into a rule verdict — and for negative probes the silence
    // would even read as the GOOD outcome.
    return false;
  }
  OutstandingProbe op;
  op.cookie = cookie;
  op.epoch = epoch;
  op.nonce = nonce;
  op.tries_left = config_.probe_retries - 1;
  op.first_injected = runtime_->now();
  // Staleness stamp for the priority wheel (one pointer write per probe).
  if (slot.last_probed != nullptr) *slot.last_probed = op.first_injected;
  op.timer = runtime_->schedule(
      config_.probe_timeout / std::max(1, config_.probe_retries),
      [this, nonce] { on_steady_timeout(nonce); });
  insert_outstanding(nonce, op);
  return true;
}

void Monitor::on_steady_timeout(std::uint32_t nonce) {
  const auto it = outstanding_.find(nonce);
  if (it == outstanding_.end()) return;
  OutstandingProbe op = it->second;
  retire_outstanding(it);

  // Stale by epoch: the table (or the channel) changed under this probe; its
  // silence says nothing about the rule as it stands now.
  if (op.epoch < epoch_floor_ || op.epoch < rule_floor(op.cookie)) {
    ++stats_.stale_epoch_drops;
    return;
  }

  const auto cache_it = cache_->entries.find(op.cookie);
  ProbeCache::Entry* entry =
      (cache_it != cache_->entries.end() && cache_it->second.probe)
          ? &cache_it->second
          : nullptr;
  if (entry == nullptr) {
    // Entry vanished under an in-flight confirmation probe: the evidence is
    // gone with it — drop the suspicion rather than stall it timer-less.
    drop_suspect(op.cookie);
    return;
  }
  const Probe* probe = &*entry->probe;

  // Negative probes (present outcome = drop): silence is the GOOD outcome.
  if (probe->if_present.is_drop()) {
    if (const auto s = suspects_.find(op.cookie); s != suspects_.end()) {
      runtime_->cancel(s->second.timer);
      suspects_.erase(s);
      ++stats_.flap_suppressions;
      rule_states_[op.cookie] = RuleState::kConfirmed;
      note_verdict(op.cookie, RuleState::kConfirmed);
    }
    if (failed_.erase(op.cookie) > 0) {
      rule_states_[op.cookie] = RuleState::kConfirmed;
      note_verdict(op.cookie, RuleState::kConfirmed);
    }
    return;
  }

  // A confirmation probe of a suspect rule: its silence is one strike.
  if (suspects_.contains(op.cookie)) {
    suspect_strike(op.cookie);
    return;
  }

  if (op.tries_left > 0) {
    // Re-send the probe (paper: up to 3 times within the 150 ms window).
    const std::uint32_t nonce2 = next_nonce_++;
    if (!inject_probe_packet(*probe, entry, op.epoch, nonce2)) {
      return;  // injection path went down mid-retry: no verdict this cycle
    }
    ++stats_.probe_retries;
    OutstandingProbe op2 = op;
    op2.nonce = nonce2;
    op2.tries_left = op.tries_left - 1;
    op2.timer = runtime_->schedule(
        config_.probe_timeout / std::max(1, config_.probe_retries),
        [this, nonce2] { on_steady_timeout(nonce2); });
    insert_outstanding(nonce2, op2);
    return;
  }
  if (config_.confirm_probes > 0) {
    raise_suspect(op.cookie);
    return;
  }
  mark_rule_failed(op.cookie);
}

// ---------------------------------------------------------------------------
// K-of-N suspect confirmation (Config::confirm_probes)
// ---------------------------------------------------------------------------

void Monitor::raise_suspect(std::uint64_t cookie) {
  if (failed_.contains(cookie)) return;  // verdict already published
  const auto [it, fresh] = suspects_.try_emplace(cookie);
  if (!fresh) return;  // already under confirmation
  // Sibling nonces of the same loss episode must not double as strikes:
  // from here on only the serial confirmation probes speak for this rule.
  purge_outstanding_for(cookie);
  ++stats_.suspects_raised;
  rule_states_[cookie] = RuleState::kSuspect;  // steady cycle skips it
  note_verdict(cookie, RuleState::kSuspect);
  SuspectEntry& s = it->second;
  s.probes_left = config_.confirm_probes;
  s.strikes = 0;
  s.backoff = config_.confirm_backoff;
  s.since = runtime_->now();
  schedule_suspect_probe(cookie);
}

void Monitor::schedule_suspect_probe(std::uint64_t cookie) {
  const auto it = suspects_.find(cookie);
  if (it == suspects_.end()) return;
  SuspectEntry& s = it->second;
  s.timer = runtime_->schedule(s.backoff, [this, cookie] {
    const auto it2 = suspects_.find(cookie);
    if (it2 == suspects_.end()) return;
    it2->second.timer = 0;
    inject_suspect_probe(cookie);
  });
  s.backoff = static_cast<SimTime>(static_cast<double>(s.backoff) *
                                   config_.confirm_backoff_factor);
}

void Monitor::inject_suspect_probe(std::uint64_t cookie) {
  const auto it = suspects_.find(cookie);
  if (it == suspects_.end()) return;
  const Rule* rule = expected_.table().find_by_cookie(cookie);
  if (rule == nullptr) {  // deleted while suspect: nothing left to judge
    drop_suspect(cookie);
    return;
  }
  SuspectEntry& s = it->second;
  --s.probes_left;
  ProbeCache::Entry* entry = probe_entry_for(*rule);
  if (entry == nullptr) {  // became unmonitorable: no probe, no verdict
    drop_suspect(cookie);
    return;
  }
  const openflow::Epoch epoch = expected_.epoch();
  const std::uint32_t nonce = next_nonce_++;
  if (!inject_probe_packet(*entry->probe, entry, epoch, nonce)) {
    // Injection path down mid-confirmation: silence would be about the
    // channel, not the rule.  Retry after the (growing) backoff; a real
    // outage clears the whole suspect set via on_channel_state.
    schedule_suspect_probe(cookie);
    return;
  }
  OutstandingProbe op;
  op.cookie = cookie;
  op.epoch = epoch;
  op.nonce = nonce;
  op.tries_left = 0;  // confirmation probes carry no inner retries
  op.first_injected = runtime_->now();
  op.timer = runtime_->schedule(
      config_.probe_timeout / std::max(1, config_.probe_retries),
      [this, nonce] { on_steady_timeout(nonce); });
  insert_outstanding(nonce, op);
}

void Monitor::suspect_strike(std::uint64_t cookie) {
  const auto it = suspects_.find(cookie);
  if (it == suspects_.end()) return;
  SuspectEntry& s = it->second;
  ++s.strikes;
  if (s.strikes >= config_.confirm_failures) {
    runtime_->cancel(s.timer);
    suspects_.erase(it);
    ++stats_.suspects_confirmed;
    mark_rule_failed(cookie);
    return;
  }
  if (s.probes_left <= 0) {
    // Out of confirmation probes without K strikes: the evidence did not
    // corroborate — clear with the benefit of the doubt.
    runtime_->cancel(s.timer);
    suspects_.erase(it);
    ++stats_.flap_suppressions;
    rule_states_[cookie] = RuleState::kConfirmed;
    note_verdict(cookie, RuleState::kConfirmed);
    return;
  }
  schedule_suspect_probe(cookie);
}

void Monitor::drop_suspect(std::uint64_t cookie) {
  const auto it = suspects_.find(cookie);
  if (it == suspects_.end()) return;
  runtime_->cancel(it->second.timer);
  suspects_.erase(it);
  const auto st = rule_states_.find(cookie);
  if (st != rule_states_.end() && st->second == RuleState::kSuspect) {
    st->second = RuleState::kConfirmed;  // unknown-not-failed; cycle resumes
  }
}

void Monitor::note_verdict(std::uint64_t cookie, RuleState state) {
  if (hooks_.on_verdict) hooks_.on_verdict(cookie, state, expected_.epoch());
}

void Monitor::mark_rule_failed(std::uint64_t cookie) {
  if (!failed_.insert(cookie).second) return;  // already failed
  rule_states_[cookie] = RuleState::kFailed;
  note_verdict(cookie, RuleState::kFailed);
  if (failed_.size() >= config_.alarm_threshold && hooks_.on_alarm) {
    ++stats_.alarms;
    RuleAlarm alarm;
    alarm.cookie = cookie;
    alarm.when = runtime_->now();
    alarm.failed_rule_count = failed_.size();
    hooks_.on_alarm(alarm);
  }
}

// ---------------------------------------------------------------------------
// Crash-safe warm restart (checkpoint.hpp; docs/DESIGN.md §15)
// ---------------------------------------------------------------------------

void Monitor::encode_checkpoint(std::vector<std::uint8_t>& out,
                                std::uint64_t budget) const {
  CheckpointWriter w(out, config_.switch_id, runtime_->now(),
                     expected_.epoch(), epoch_floor_, budget);
  w.begin_verdicts();
  for (const auto& [cookie, state] : rule_states_) {
    // Infrastructure rules are reinstalled (and re-seeded kConfirmed) by
    // install_infrastructure on restore; snapshotting them would only bloat
    // every round's frame.
    if (is_infrastructure_cookie(cookie)) continue;
    w.add_verdict(cookie, state);
  }
  w.begin_floors();
  for (const auto& [cookie, floor] : rule_floor_) w.add_floor(cookie, floor);
  w.begin_suspects();
  for (const auto& [cookie, s] : suspects_) {
    w.add_suspect({cookie, s.probes_left, s.strikes, s.backoff, s.since});
  }
  w.begin_manifest();
  for (const auto& [cookie, entry] : cache_->entries) {
    if (!entry.probe.has_value()) continue;  // unmonitorable: nothing to save
    if (is_infrastructure_cookie(cookie)) continue;
    w.add_manifest(cookie, entry.epoch, *entry.probe);
  }
  w.finish();
}

Monitor::RestoreStats Monitor::restore_checkpoint(
    const Checkpoint& cp,
    const std::unordered_set<std::uint64_t>* stale_cookies) {
  RestoreStats rs;
  // Epoch fast-forward + generation bump: the restored incarnation resumes
  // the snapshot's epoch domain, then advances one barrier epoch PAST it —
  // every probe the dead incarnation left in flight carries epoch <=
  // cp.epoch < epoch_floor_ and classifies as a stale-epoch drop, never as
  // failure evidence (the same floor mechanism on_channel_state uses).
  while (expected_.epoch() < cp.epoch) expected_.advance_epoch();
  epoch_floor_ = std::max(cp.epoch_floor, expected_.advance_epoch());

  for (const Checkpoint::RuleVerdict& v : cp.verdicts) {
    switch (v.state) {
      case RuleState::kPending:
        // The update job died with the crash and its FlowMod may or may not
        // have applied: leave the seeded state; the steady cycle re-judges.
        continue;
      case RuleState::kSuspect:
        // Re-entered below only if its suspect entry also survived; a bare
        // suspect verdict without machine state restarts as unknown.
        rule_states_[v.cookie] = RuleState::kConfirmed;
        break;
      case RuleState::kFailed:
        // Silent seeding — no note_verdict, no alarm: this verdict was
        // published by the pre-crash incarnation.
        rule_states_[v.cookie] = RuleState::kFailed;
        failed_.insert(v.cookie);
        break;
      default:
        rule_states_[v.cookie] = v.state;
        break;
    }
    ++rs.verdicts;
  }

  for (const Checkpoint::RuleFloor& f : cp.floors) {
    // Dominated by the restore barrier floor for old observations, but
    // restored for fidelity: the sweep accounting and tests see the same
    // map a never-crashed monitor would carry.
    rule_floor_[f.cookie] = f.epoch;
    ++rs.floors;
  }

  for (const Checkpoint::SuspectState& s : cp.suspects) {
    if (expected_.table().find_by_cookie(s.cookie) == nullptr) continue;
    auto [it, fresh] = suspects_.try_emplace(s.cookie);
    if (!fresh) continue;
    it->second.probes_left = static_cast<int>(s.probes_left);
    it->second.strikes = static_cast<int>(s.strikes);
    it->second.backoff = std::max<SimTime>(s.backoff, config_.confirm_backoff);
    it->second.since = s.since;
    rule_states_[s.cookie] = RuleState::kSuspect;
    schedule_suspect_probe(s.cookie);
    ++rs.suspects;
  }

  for (const Checkpoint::ManifestEntry& e : cp.manifest) {
    if (stale_cookies != nullptr && stale_cookies->contains(e.cookie)) {
      ++rs.manifest_dropped;  // journal tail proves a post-snapshot delta
      continue;
    }
    const Rule* rule = expected_.table().find_by_cookie(e.cookie);
    if (rule == nullptr) {
      ++rs.manifest_dropped;  // rule gone from controller intent
      continue;
    }
    ProbeCache::Entry& entry = cache_->entries[e.cookie];
    if (entry.probe.has_value()) continue;  // shared cache already has it
    entry.probe = e.probe;
    entry.failure = ProbeFailure::kNone;
    // Re-admitted at the RESTORED epoch: injections stamp the live epoch,
    // so nothing generated pre-crash can leak past the barrier floor.
    entry.epoch = expected_.epoch();
    ++rs.manifest_admitted;
  }
  // Every table rule needs a state node (the steady cycle resolves RuleState*
  // per slot): rules present in controller intent but absent from the
  // snapshot — added after it, or restored through the in-place supervisor
  // path where reset_for_recovery cleared the map — start as
  // kConfirmed-unknown and get re-judged.
  for (const Rule& rule : expected_.table().rules()) {
    rule_states_.try_emplace(rule.cookie, RuleState::kConfirmed);
  }

  // Steady slots cache Entry*/Rule* pointers; force a rebuild against the
  // re-admitted cache.  The wire frames re-craft lazily on first injection
  // (warm_probe_cache pre-crafts them when the Fleet warms off-path).
  steady_order_.clear();
  steady_pos_ = 0;
  wheel_built_ = false;
  return rs;
}

void Monitor::seed_verdict(std::uint64_t cookie, RuleState state) {
  switch (state) {
    case RuleState::kFailed:
      rule_states_[cookie] = RuleState::kFailed;
      failed_.insert(cookie);
      break;
    case RuleState::kSuspect:
      // Counters died with the crash: unknown, re-judged by the cycle.
      rule_states_[cookie] = RuleState::kConfirmed;
      break;
    case RuleState::kPending:
      break;  // in-flight update: the re-issued FlowMod re-creates it
    default:
      rule_states_[cookie] = state;
      failed_.erase(cookie);
      break;
  }
}

void Monitor::reset_for_recovery() {
  stop();  // cancels every timer; clears outstanding/suspects/updates
  barriers_.clear();  // held replies died with the channel; nothing to release
  hold_queue_.clear();
  rule_states_.clear();
  failed_.clear();
  rule_floor_.clear();
  epoch_floor_ = 0;
  live_sessions_.clear();
  cache_->entries.clear();
  steady_order_.clear();
  steady_pos_ = 0;
  wheel_built_ = false;
  for (auto& bucket : wheel_) bucket.clear();
  wheel_pos_.fill(0);
  last_probed_.clear();
  outstanding_spares_.clear();
  dirty_probe_cookies_.clear();
  // Keep: expected_ (durable controller intent), cumulative stats_,
  // channel state, infrastructure_installed_, burst_seq_ (monotone
  // heartbeat — a restore must read as progress, not as a reset).
}

void Monitor::rebind_runtime(Runtime* runtime) {
  // Timers fire on the runtime that armed them: migration is legal only
  // with everything cancelled (stop()/reset_for_recovery() first).
  assert(!steady_running_ && outstanding_.empty() && suspects_.empty() &&
         updates_.empty() && warmup_timer_ == 0 && steady_timer_ == 0 &&
         refill_timer_ == 0);
  runtime_ = runtime;
}

}  // namespace monocle
