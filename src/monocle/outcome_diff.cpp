#include "monocle/outcome_diff.hpp"

#include <algorithm>

namespace monocle {

using openflow::ForwardKind;
using openflow::Outcome;
using openflow::RewriteVec;

namespace {

/// Effective taxonomy kind: ECMP over <= 1 port behaves as multicast.
ForwardKind effective_kind(const Outcome& o) {
  if (o.kind == ForwardKind::kEcmp && o.forwarding_set().size() <= 1) {
    return ForwardKind::kMulticast;
  }
  return o.kind;
}

std::vector<std::uint16_t> set_difference(
    const std::vector<std::uint16_t>& a, const std::vector<std::uint16_t>& b) {
  std::vector<std::uint16_t> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

std::vector<std::uint16_t> set_intersection(
    const std::vector<std::uint16_t>& a, const std::vector<std::uint16_t>& b) {
  std::vector<std::uint16_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

PortDiffResult diff_ports(const Outcome& a, const Outcome& b,
                          const DiffOptions& opts) {
  PortDiffResult out;
  const auto fa = a.forwarding_set();  // sorted, deduped
  const auto fb = b.forwarding_set();
  const ForwardKind ka = effective_kind(a);
  const ForwardKind kb = effective_kind(b);

  // Drop (F = ∅) versus anything that emits is decided by negative probing
  // (§3.3): something is observed iff the emitting rule is active.  Two drop
  // rules are never distinguishable (footnote 2: their rewrites are
  // meaningless).
  if (fa.empty() || fb.empty()) {
    out.ports_differ = (fa.empty() != fb.empty());
    out.quantifier = RewriteQuantifier::kExistsPort;
    return out;
  }

  if (ka == ForwardKind::kMulticast && kb == ForwardKind::kMulticast) {
    // Both multicast (incl. drop/unicast): a probe appears on ALL ports of
    // whichever forwarding set is active, so any set difference reveals it.
    out.ports_differ = (fa != fb);
    out.quantifier = RewriteQuantifier::kExistsPort;
  } else if (ka == ForwardKind::kEcmp && kb == ForwardKind::kEcmp) {
    // Both ECMP: a probe on a port in the intersection is ambiguous, so the
    // sets must be disjoint.
    out.ports_differ = set_intersection(fa, fb).empty();
    out.quantifier = RewriteQuantifier::kForAllPort;
  } else {
    // Exactly one multicast (M) and one ECMP (E): the probe appears on all
    // of F_M or on one unknown port of F_E; any port in F_M \ F_E decides.
    const auto& fm = (ka == ForwardKind::kMulticast) ? fa : fb;
    const auto& fe = (ka == ForwardKind::kMulticast) ? fb : fa;
    out.ports_differ = !set_difference(fm, fe).empty();
    if (!out.ports_differ && opts.count_based_ecmp && fm.size() != 1) {
      // §3.4 exception: an ECMP rule emits exactly one probe; a non-unicast
      // multicast emits |F_M| != 1 of them — counting distinguishes.
      out.ports_differ = true;
    }
    out.quantifier = RewriteQuantifier::kForAllPort;
  }

  if (!out.ports_differ) {
    out.common_ports = set_intersection(fa, fb);
  }
  return out;
}

BitDiffKind bit_rewrite_diff(const RewriteVec& r1, const RewriteVec& r2,
                             int bit) {
  const bool w1 = r1.mask.get(bit);
  const bool w2 = r2.mask.get(bit);
  if (!w1 && !w2) return BitDiffKind::kNever;  // (*,*)
  if (w1 && w2) {
    return r1.value.get(bit) != r2.value.get(bit) ? BitDiffKind::kAlways
                                                  : BitDiffKind::kNever;
  }
  // Exactly one side writes a constant `c`; the other passes the packet bit
  // through.  They differ iff the packet bit != c (paper Table 4).
  const bool written = w1 ? r1.value.get(bit) : r2.value.get(bit);
  return written ? BitDiffKind::kIfBitZero : BitDiffKind::kIfBitOne;
}

}  // namespace monocle
