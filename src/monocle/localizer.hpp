// Failure localization on top of per-rule alarms (paper §1).
//
// "This localization of misbehaving rules can then be used to build a higher
// level troubleshooting tool.  For example, link failures manifest
// themselves as multiple simultaneously failed rules."  This module is that
// tool: given Monocle's expected table and the set of currently failed
// rules, it groups failures by the output port they forward through and
// diagnoses a link (port) failure when a large fraction of that port's rules
// failed together; leftover failures are reported as isolated rule faults
// (soft errors, firmware bugs).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "openflow/flow_table.hpp"

namespace monocle {

/// A suspected link (port) failure.
struct LinkSuspect {
  std::uint16_t port = 0;
  std::size_t failed_rules = 0;  ///< failed rules forwarding via this port
  std::size_t total_rules = 0;   ///< all rules forwarding via this port
  /// failed / total — 1.0 means every rule using the port is down.
  [[nodiscard]] double fraction() const {
    return total_rules == 0
               ? 0.0
               : static_cast<double>(failed_rules) /
                     static_cast<double>(total_rules);
  }
};

/// Localization result: explained link failures + unexplained rule faults.
struct Diagnosis {
  std::vector<LinkSuspect> failed_links;     // sorted by fraction, descending
  std::vector<std::uint64_t> isolated_rules; // cookies not explained above

  [[nodiscard]] bool link_failure_suspected() const {
    return !failed_links.empty();
  }
};

/// Options for the localization heuristic.
struct LocalizerOptions {
  /// Minimum fraction of a port's rules that must have failed to blame the
  /// link rather than the individual rules.
  double link_threshold = 0.8;
  /// Minimum absolute number of failed rules on the port (avoids declaring a
  /// "link failure" from a single rule on a lightly-used port).
  std::size_t min_failed_rules = 3;
};

/// Diagnoses the failure pattern of one switch.  `expected` is the Monocle
/// expected table (its unicast rules' output ports define the per-link rule
/// groups); `failed` the cookies currently marked failed by the Monitor.
Diagnosis localize_failures(const openflow::FlowTable& expected,
                            const std::unordered_set<std::uint64_t>& failed,
                            const LocalizerOptions& options = {});

}  // namespace monocle
