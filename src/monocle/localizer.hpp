// Failure localization on top of per-rule alarms (paper §1).
//
// "This localization of misbehaving rules can then be used to build a higher
// level troubleshooting tool.  For example, link failures manifest
// themselves as multiple simultaneously failed rules."  This module is that
// tool: given Monocle's expected table and the set of currently failed
// rules, it groups failures by the output port they forward through and
// diagnoses a link (port) failure when a large fraction of that port's rules
// failed together; leftover failures are reported as isolated rule faults
// (soft errors, firmware bugs).
// Two layers:
//
//  * localize_failures — the single-switch heuristic (failed rules grouped
//    by output port; a port whose rules failed together implicates the link
//    behind it);
//  * localize_network — the fleet-level pipeline: it consumes one failure
//    report per monitored switch (expected table + failed cookies, i.e. the
//    per-probe verdicts accumulated through the Multiplexer/Catching path),
//    maps blamed ports to links through the NetworkView, corroborates
//    suspicions reported independently by both endpoints of a link, and
//    promotes a switch whose links are (almost) all suspect to a
//    whole-switch diagnosis.  The Fleet (fleet.hpp) runs this after alarms.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "monocle/runtime.hpp"
#include "openflow/flow_table.hpp"

namespace monocle {

/// A suspected link (port) failure.
struct LinkSuspect {
  std::uint16_t port = 0;
  std::size_t failed_rules = 0;  ///< failed rules forwarding via this port
  std::size_t total_rules = 0;   ///< all rules forwarding via this port
  /// failed / total — 1.0 means every rule using the port is down.
  [[nodiscard]] double fraction() const {
    return total_rules == 0
               ? 0.0
               : static_cast<double>(failed_rules) /
                     static_cast<double>(total_rules);
  }
};

/// Localization result: explained link failures + unexplained rule faults.
struct Diagnosis {
  std::vector<LinkSuspect> failed_links;     // sorted by fraction, descending
  std::vector<std::uint64_t> isolated_rules; // cookies not explained above

  [[nodiscard]] bool link_failure_suspected() const {
    return !failed_links.empty();
  }
};

/// Options for the localization heuristic.
struct LocalizerOptions {
  /// Minimum fraction of a port's rules that must have failed to blame the
  /// link rather than the individual rules.
  double link_threshold = 0.8;
  /// Minimum absolute number of failed rules on the port (avoids declaring a
  /// "link failure" from a single rule on a lightly-used port).
  std::size_t min_failed_rules = 3;
};

/// Diagnoses the failure pattern of one switch.  `expected` is the Monocle
/// expected table (its unicast rules' output ports define the per-link rule
/// groups); `failed` the cookies currently marked failed by the Monitor.
/// Rules in `excluded` (in-flight updates, recently-deltaed rules — the
/// TableDelta stream's view of active churn) are left out of BOTH the
/// failed and the total counts: their probe behaviour is confirmation
/// traffic in transition, not failure evidence.
Diagnosis localize_failures(
    const openflow::FlowTable& expected,
    const std::unordered_set<std::uint64_t>& failed,
    const LocalizerOptions& options = {},
    const std::unordered_set<std::uint64_t>* excluded = nullptr);

// ---------------------------------------------------------------------------
// Network-wide localization (fleet pipeline)
// ---------------------------------------------------------------------------

/// Per-switch input to network-wide localization: what one Monitor shard
/// knows.  Both pointers must outlive the localize_network call.
struct SwitchFailureReport {
  SwitchId sw = 0;
  const openflow::FlowTable* expected = nullptr;
  const std::unordered_set<std::uint64_t>* failed = nullptr;
  /// Optional: cookies to exclude from corroboration (rules with in-flight
  /// updates or recent deltas).  The Fleet derives this from each shard's
  /// pending updates plus its TableDelta stream, so churn never reads as a
  /// fault.  Null = nothing excluded.
  const std::unordered_set<std::uint64_t>* excluded = nullptr;
};

/// A suspected inter-switch link, named by both endpoints.
struct LinkDiagnosis {
  SwitchId a = 0;               ///< lower endpoint (a < b when both known)
  std::uint16_t port_a = 0;
  SwitchId b = 0;               ///< 0 when the port faces a host/edge
  std::uint16_t port_b = 0;
  /// Both endpoints' monitors independently blamed this link.
  bool corroborated = false;
  /// Which endpoint(s) testified.  In one localize_network pass
  /// corroborated == (reported_a && reported_b); the evidence accumulator
  /// (evidence.hpp) ORs these across passes, so a marginal gray link whose
  /// endpoints cross the group threshold in different passes still reads
  /// as two-sided testimony.
  bool reported_a = false;
  bool reported_b = false;
  /// Both endpoints known and present in the report set — a silent peer is
  /// then a monitored witness, not a blind spot.
  bool peer_monitored = false;
  std::size_t failed_rules = 0;  ///< failed rules forwarding into the link
  double fraction = 0.0;         ///< worst per-endpoint failed/total ratio
};

/// A switch whose incident links are (almost) all suspect — the failure
/// pattern of a dead switch or line card rather than one bad cable.
struct SwitchSuspect {
  SwitchId sw = 0;
  std::size_t suspect_links = 0;  ///< incident links under suspicion
  std::size_t total_links = 0;    ///< incident inter-switch links
  std::size_t failed_rules = 0;   ///< failed rules across those links
};

/// One failed rule no link/switch pattern explains (soft error, firmware
/// bug) — the paper's original per-rule alarm, now with its switch attached.
struct IsolatedRuleFault {
  SwitchId sw = 0;
  std::uint64_t cookie = 0;
};

/// Fleet-level localization result.
struct NetworkDiagnosis {
  std::vector<LinkDiagnosis> links;        ///< corroborated first, then by fraction
  std::vector<SwitchSuspect> switches;     ///< subsume their incident links
  std::vector<IsolatedRuleFault> isolated; ///< sorted by (switch, cookie)

  [[nodiscard]] bool healthy() const {
    return links.empty() && switches.empty() && isolated.empty();
  }
};

struct NetworkLocalizerOptions {
  LocalizerOptions per_switch;
  /// Fraction of a switch's inter-switch links that must be suspect before
  /// the switch itself (not its cables) is blamed.
  double switch_threshold = 0.75;
  /// ... and at least this many of them (degree-2 switches should not be
  /// declared dead on one bad link).
  std::size_t min_suspect_links = 3;
  /// Structural probe-path contamination filter.  Probes are injected at
  /// the upstream peer and enter the probed switch over a real link, so one
  /// dead element kills every probe whose INGRESS path crosses it — whole
  /// egress groups on innocent ports fail in bulk on both adjacent
  /// switches.  With the filter on:
  ///  * an uncorroborated link suspect whose peer is monitored and
  ///    reporting stays out of the switch-promotion tally (collateral
  ///    groups cannot vote a healthy switch dead) — it is still emitted,
  ///    flagged via reported_a/reported_b/peer_monitored, so the evidence
  ///    accumulator can apply cross-pass corroboration instead of a
  ///    one-shot veto;
  ///  * isolated rule faults on a switch incident to a link or switch
  ///    suspect are discarded (parsimony): that element already explains
  ///    sub-threshold probe loss on its endpoints.
  /// Off by default (the single-pass diagnose() path keeps every lead);
  /// the evidence accumulator turns it on (evidence.hpp).
  bool contamination_filter = false;
};

/// Diagnoses the whole fabric from per-switch failure reports.  `view`
/// supplies the port-level topology used to name links and to corroborate
/// the two independent per-endpoint suspicions of one link.
NetworkDiagnosis localize_network(std::span<const SwitchFailureReport> reports,
                                  const NetworkView& view,
                                  const NetworkLocalizerOptions& options = {});

}  // namespace monocle
