// Coloring-driven probe-round scheduling for network-wide monitoring.
//
// A steady-state probe for switch S is injected at one of S's neighbors and
// caught by another (paper Figure 1, §6).  When two switches within two hops
// of each other probe concurrently, their probes meet at a shared catcher:
// the catcher's PacketIn path serializes them (rate limits, §8.4) and, under
// strategy 1, a probe straying one hop can be swallowed by the wrong
// catching rule.  The fleet therefore probes in *rounds*: a proper coloring
// of the conflict graph — the topology itself (radius 1) or its square
// (radius 2, the default: co-scheduled switches share no catcher) — assigns
// every switch a round, and switches of the same round probe concurrently
// while the rest stay silent.  This reuses the exact/DSATUR machinery of
// topo/coloring.hpp that already plans the catching rules (§8.3.2, fig9).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "monocle/runtime.hpp"
#include "topo/coloring.hpp"
#include "topo/topology.hpp"

namespace monocle {

struct RoundScheduleOptions {
  /// Conflict radius in hops: 1 = adjacent switches conflict, 2 = switches
  /// sharing a potential catcher conflict (square-graph coloring).
  int conflict_radius = 2;
  /// Search-node budget for the exact coloring before falling back to the
  /// DSATUR heuristic (mirrors fig9's exact-then-greedy policy).
  std::uint64_t exact_node_budget = 50'000;
  /// Conflict graphs above this size skip the exact solver entirely.
  std::size_t exact_node_limit = 400;
};

/// A partition of the fleet's switches into non-interfering probe rounds.
///
/// Round r is the set of switches allowed to inject steady-state probes
/// while round r is active; rounds rotate round-robin.  A schedule built by
/// build() guarantees that no two switches of one round conflict (are within
/// `conflict_radius` hops); sequential() is the degenerate one-switch-per-
/// round baseline the fig8 fleet bench compares against.
///
/// Threading: a RoundSchedule is immutable after build()/sequential()
/// returns, so the multi-worker fleet driver reads it concurrently (every
/// worker consults the round partition) without synchronization — the
/// engine's setup barrier publishes it.  Do not install a new schedule
/// (Fleet::set_schedule) while rounds are executing.
class RoundSchedule {
 public:
  RoundSchedule() = default;

  /// Builds the coloring-driven schedule for `topo`, where node i is switch
  /// `switch_ids[i]` (the same node->dpid mapping CatchPlan::build uses).
  static RoundSchedule build(const topo::Topology& topo,
                             const std::vector<SwitchId>& switch_ids,
                             const RoundScheduleOptions& options = {});

  /// One switch per round, in the given order (the sequential baseline).
  static RoundSchedule sequential(const std::vector<SwitchId>& switch_ids);

  [[nodiscard]] std::size_t round_count() const { return rounds_.size(); }
  [[nodiscard]] const std::vector<SwitchId>& round(std::size_t r) const {
    return rounds_[r];
  }
  /// Round of `sw`, or -1 when the switch is not scheduled.
  [[nodiscard]] int round_of(SwitchId sw) const;
  /// True when `a` and `b` are within the conflict radius of each other
  /// (per the conflict graph the schedule was built from).
  [[nodiscard]] bool conflicting(SwitchId a, SwitchId b) const;
  /// True when no round co-schedules two conflicting switches.
  [[nodiscard]] bool valid() const;

  [[nodiscard]] std::size_t switch_count() const { return round_of_.size(); }
  /// Largest round (the schedule's peak concurrency).
  [[nodiscard]] std::size_t max_round_size() const;
  /// True when the coloring behind the schedule was proved optimal.
  [[nodiscard]] bool exact() const { return exact_; }

 private:
  std::vector<std::vector<SwitchId>> rounds_;
  std::unordered_map<SwitchId, int> round_of_;
  std::unordered_map<SwitchId, std::unordered_set<SwitchId>> conflicts_;
  bool exact_ = false;
};

}  // namespace monocle
