#include "netbase/checksum.hpp"

namespace monocle::netbase {

void ChecksumAccumulator::add(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum_ += static_cast<std::uint16_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum_ += static_cast<std::uint16_t>(data[i] << 8);
  }
}

std::uint16_t ChecksumAccumulator::finish() const {
  return finish_checksum_sum(sum_);
}

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add(data);
  return acc.finish();
}

std::uint16_t transport_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) {
  ChecksumAccumulator acc;
  acc.add_u32(src_ip);
  acc.add_u32(dst_ip);
  acc.add_u16(protocol);
  acc.add_u16(static_cast<std::uint16_t>(segment.size()));
  acc.add(segment);
  return acc.finish();
}

}  // namespace monocle::netbase
