// Big-endian (network byte order) serialization helpers.
//
// All wire formats in this library (Ethernet/IP/TCP/UDP and the OpenFlow-ish
// control protocol) are big-endian.  These helpers bounds-check via assert in
// debug builds and are branch-free in release builds.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace monocle::netbase {

/// Raw big-endian stores/loads over byte pointers — the one place the
/// byte-order packing lives.  ByteWriter/ByteReader wrap these with
/// growth/bounds handling; the in-place fast paths (probe metadata
/// encode/view, cached-wire re-stamping) use them directly.
inline void be_put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}
inline void be_put_u32(std::uint8_t* p, std::uint32_t v) {
  be_put_u16(p, static_cast<std::uint16_t>(v >> 16));
  be_put_u16(p + 2, static_cast<std::uint16_t>(v));
}
inline void be_put_u64(std::uint8_t* p, std::uint64_t v) {
  be_put_u32(p, static_cast<std::uint32_t>(v >> 32));
  be_put_u32(p + 4, static_cast<std::uint32_t>(v));
}
inline std::uint16_t be_get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}
inline std::uint32_t be_get_u32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(be_get_u16(p)) << 16) | be_get_u16(p + 2);
}
inline std::uint64_t be_get_u64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(be_get_u32(p)) << 32) | be_get_u32(p + 4);
}

/// Append-only big-endian byte writer over a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }
  /// Adopts `buf` as the backing store: cleared, but its capacity is kept.
  /// Lets hot paths reuse one allocation across frames (take() the result,
  /// hand it back on the next construction).
  explicit ByteWriter(std::vector<std::uint8_t> buf) : buf_(std::move(buf)) {
    buf_.clear();
  }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  /// Writes the low 48 bits of `v` (MAC addresses).
  void u48(std::uint64_t v) {
    u16(static_cast<std::uint16_t>(v >> 32));
    u32(static_cast<std::uint32_t>(v));
  }
  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void zeros(std::size_t n) { buf_.insert(buf_.end(), n, 0); }

  /// Patches a previously written big-endian u16 at absolute offset `at`.
  void patch_u16(std::size_t at, std::uint16_t v) {
    assert(at + 2 <= buf_.size());
    buf_[at] = static_cast<std::uint8_t>(v >> 8);
    buf_[at + 1] = static_cast<std::uint8_t>(v);
  }

  /// Read-only view of `len` already-written bytes starting at `at`
  /// (checksum computation over in-place-crafted headers).
  [[nodiscard]] std::span<const std::uint8_t> view(std::size_t at,
                                                   std::size_t len) const {
    assert(at + len <= buf_.size());
    return {buf_.data() + at, len};
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential big-endian byte reader over a borrowed buffer.
///
/// Out-of-range reads set the error flag and return zero instead of invoking
/// undefined behaviour; callers check `ok()` once at the end of parsing.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    if (!require(2)) return 0;
    const std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    const std::uint32_t hi = u16();
    const std::uint32_t lo = u16();
    return (hi << 16) | lo;
  }
  std::uint64_t u64() {
    const std::uint64_t hi = u32();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  std::uint64_t u48() {
    const std::uint64_t hi = u16();
    const std::uint64_t lo = u32();
    return (hi << 32) | lo;
  }
  /// Returns a view of the next `n` bytes and advances.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!require(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    if (require(n)) pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] std::size_t position() const { return pos_; }
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  bool require(std::size_t n) {
    if (pos_ + n > data_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace monocle::netbase
