// Simulated-time conventions shared by the monitor and the simulator.
#pragma once

#include <cstdint>

namespace monocle::netbase {

/// Simulation timestamp / duration in nanoseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Converts a duration to (fractional) seconds for reporting.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

/// Converts a duration to (fractional) milliseconds for reporting.
constexpr double to_millis(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

}  // namespace monocle::netbase
