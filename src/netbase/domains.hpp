// Limited field domains and the spare-value substitution lemma (paper §5.2).
//
// Some abstract fields cannot take arbitrary values in a *valid* wire packet
// (the paper's examples: DL_TYPE, NW_TOS, the input port).  Two remedies
// exist:
//   1. small domains — add a "must be one of these values" constraint to the
//      SAT instance (the probe generator does this for in_port);
//   2. large domains — run the solver unconstrained and, if the solution
//      contains an out-of-domain value, replace it with a *spare* value: a
//      valid value used by no rule in the flow table.  The §5.2 lemma proves
//      the substitution preserves every Matches(probe, R) test, provided the
//      field is only ever fully wildcarded or fully specified by rules.
//
// DomainFixup implements remedy 2.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netbase/abstract_packet.hpp"

namespace monocle::netbase {

/// Per-field domain knowledge plus the set of values used by installed rules;
/// applies the spare-value substitution to SAT solutions.
class DomainFixup {
 public:
  /// Declares the set of valid values for `f`.  Fields without a declared
  /// domain accept any value.  The order of `valid` determines spare-value
  /// preference.
  void set_domain(Field f, std::vector<std::uint64_t> valid);

  /// Records that some rule in the flow table exactly matches `f`=`value`
  /// (used values are never eligible as spares).
  void note_used(Field f, std::uint64_t value);

  /// Convenience: the default domains for OpenFlow 1.0 probing — DL_TYPE
  /// limited to {IPv4, ARP, experimental}; everything else unrestricted.
  static DomainFixup openflow10_defaults();

  /// Applies the substitution lemma to `p`: every field whose value lies
  /// outside its declared domain is replaced by a spare value.  Returns false
  /// (leaving `p` partially updated) if some field is out-of-domain but all
  /// valid values are used by rules — i.e. no spare exists and the probe
  /// cannot be made valid this way.
  [[nodiscard]] bool apply(AbstractPacket& p) const;

  /// True if `value` is valid for `f` under the declared domains.
  [[nodiscard]] bool is_valid(Field f, std::uint64_t value) const;

 private:
  std::unordered_map<int, std::vector<std::uint64_t>> domains_;
  std::unordered_map<int, std::unordered_set<std::uint64_t>> used_;
};

}  // namespace monocle::netbase
