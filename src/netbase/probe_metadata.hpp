// Probe payload metadata (paper §4.2).
//
// Monocle monitors many rules concurrently, so after catching a probe it must
// map the packet back to the rule under test.  The paper solves this by
// embedding metadata "such as rule under test and expected result to the
// probe packet payload that cannot be touched by the switches".  This module
// defines that payload record and its wire encoding.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace monocle::netbase {

/// Fixed-size metadata record carried in every probe packet's payload.
struct ProbeMetadata {
  /// Magic constant identifying Monocle probes ("MNCL").
  static constexpr std::uint32_t kMagic = 0x4D4E434C;
  /// Serialized size in bytes.
  static constexpr std::size_t kWireSize = 4 + 8 + 8 + 4 + 4 + 4;

  std::uint64_t switch_id = 0;    ///< datapath id of the probed switch
  std::uint64_t rule_cookie = 0;  ///< cookie of the rule under test
  std::uint32_t generation = 0;   ///< probe generation; stale probes are ignored
  std::uint32_t expected = 0;     ///< hash of the expected outcome
  std::uint32_t nonce = 0;        ///< per-injection uniquifier

  friend bool operator==(const ProbeMetadata&, const ProbeMetadata&) = default;
};

/// Serializes `meta` (big-endian, kWireSize bytes).
std::vector<std::uint8_t> encode_probe_metadata(const ProbeMetadata& meta);

/// Parses a probe payload.  Returns std::nullopt when `payload` is too short
/// or does not start with the probe magic — i.e. the packet is not (or no
/// longer recognizable as) a Monocle probe.
std::optional<ProbeMetadata> decode_probe_metadata(
    std::span<const std::uint8_t> payload);

}  // namespace monocle::netbase
