// Probe payload metadata (paper §4.2).
//
// Monocle monitors many rules concurrently, so after catching a probe it must
// map the packet back to the rule under test.  The paper solves this by
// embedding metadata "such as rule under test and expected result to the
// probe packet payload that cannot be touched by the switches".  This module
// defines that payload record and its wire encoding.
//
// The steady-state probe cycle runs this encoding/decoding once per probe on
// the fleet fast path, so both directions have allocation-free forms: an
// in-place std::span encoder and a zero-copy ProbeMetadataView that reads
// fields straight out of the caught packet's payload bytes.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/byteio.hpp"

namespace monocle::netbase {

/// Fixed-size metadata record carried in every probe packet's payload.
struct ProbeMetadata {
  /// Magic constant identifying Monocle probes ("MNCL").
  static constexpr std::uint32_t kMagic = 0x4D4E434C;
  /// Serialized size in bytes.
  static constexpr std::size_t kWireSize = 4 + 8 + 8 + 4 + 4 + 4;
  /// Field offsets within the serialized record (restamp_probe_wire patches
  /// the per-injection fields in place at these positions).
  static constexpr std::size_t kGenerationOffset = 4 + 8 + 8;
  static constexpr std::size_t kNonceOffset = 4 + 8 + 8 + 4 + 4;

  std::uint64_t switch_id = 0;    ///< datapath id of the probed switch
  std::uint64_t rule_cookie = 0;  ///< cookie of the rule under test
  std::uint32_t generation = 0;   ///< probe generation; stale probes are ignored
  std::uint32_t expected = 0;     ///< hash of the expected outcome
  std::uint32_t nonce = 0;        ///< per-injection uniquifier

  friend bool operator==(const ProbeMetadata&, const ProbeMetadata&) = default;
};

/// Serializes `meta` (big-endian, kWireSize bytes).
std::vector<std::uint8_t> encode_probe_metadata(const ProbeMetadata& meta);

/// In-place serialization into the first kWireSize bytes of `out` (which
/// must be at least that large).  The allocation-free form used by the probe
/// fast path; byte-identical to the vector overload.
void encode_probe_metadata(const ProbeMetadata& meta,
                           std::span<std::uint8_t> out);

/// Zero-copy read-only view of a serialized ProbeMetadata record.
///
/// parse() validates length and magic against the borrowed bytes; the field
/// accessors then decode big-endian values on demand without copying or
/// allocating.  The view borrows `payload` — it must not outlive the buffer
/// (the Multiplexer uses it strictly within one PacketIn dispatch).
class ProbeMetadataView {
 public:
  /// Returns a view when `payload` starts with a well-formed record.
  static std::optional<ProbeMetadataView> parse(
      std::span<const std::uint8_t> payload);

  [[nodiscard]] std::uint64_t switch_id() const { return be_get_u64(p_ + 4); }
  [[nodiscard]] std::uint64_t rule_cookie() const {
    return be_get_u64(p_ + 12);
  }
  [[nodiscard]] std::uint32_t generation() const {
    return be_get_u32(p_ + ProbeMetadata::kGenerationOffset);
  }
  [[nodiscard]] std::uint32_t expected() const { return be_get_u32(p_ + 24); }
  [[nodiscard]] std::uint32_t nonce() const {
    return be_get_u32(p_ + ProbeMetadata::kNonceOffset);
  }

  /// Copies the view out into an owned record.
  [[nodiscard]] ProbeMetadata materialize() const;

 private:
  explicit ProbeMetadataView(const std::uint8_t* p) : p_(p) {}

  const std::uint8_t* p_;
};

/// Parses a probe payload.  Returns std::nullopt when `payload` is too short
/// or does not start with the probe magic — i.e. the packet is not (or no
/// longer recognizable as) a Monocle probe.
std::optional<ProbeMetadata> decode_probe_metadata(
    std::span<const std::uint8_t> payload);

}  // namespace monocle::netbase
