// Heap-allocation counting hook for the zero-allocation fast-path checks.
//
// The counter itself lives in the core library but stays at zero unless the
// binary links tools/alloc_interposer.cpp, which replaces the global
// operator new/delete with counting forwarders.  Binaries that care about
// the "0 heap allocations per probe" invariant (tests/scaleout_test.cpp,
// bench/fig11_scaleout) link the interposer explicitly; everything else
// pays nothing.
#pragma once

#include <atomic>
#include <cstdint>

namespace monocle::netbase {

struct AllocCounter {
  std::atomic<std::uint64_t> news{0};  ///< operator new calls observed
  std::atomic<bool> armed{false};      ///< true iff the interposer is linked
};

/// The process-wide counter (function-local static: safe to touch from the
/// very first allocation).
AllocCounter& alloc_counter();

/// Number of heap allocations observed so far (0 without the interposer).
inline std::uint64_t heap_allocation_count() {
  return alloc_counter().news.load(std::memory_order_relaxed);
}

/// Whether allocation counting is live in this binary.
inline bool alloc_counting_enabled() {
  return alloc_counter().armed.load(std::memory_order_relaxed);
}

}  // namespace monocle::netbase
