// Cached wire image of a probe packet, with allocation-free re-stamping.
//
// A probe's frame is identical on every injection except for two metadata
// fields — the table-epoch generation and the per-injection nonce — plus the
// checksum covering them.  Crafting the frame from scratch per injection
// (Ethernet/IP/L4 assembly + full checksum passes + several buffers) is the
// single largest glue cost on the steady probe cycle.  ProbeWire crafts the
// frame ONCE, remembers where the metadata record and its covering checksum
// live (netbase::WireLayout), and re-stamps those fields in place on every
// subsequent injection: two 4-byte patches and one checksum refresh over the
// L4 segment, zero allocations, byte-identical to a fresh craft.
#pragma once

#include <cstdint>
#include <vector>

#include "netbase/packet_crafter.hpp"
#include "netbase/probe_metadata.hpp"

namespace monocle::netbase {

struct ProbeWire {
  std::vector<std::uint8_t> bytes;  ///< the full crafted frame
  WireLayout layout;
  /// One's-complement sum of the checksum coverage MINUS the four variable
  /// u16 words (generation/nonce) and the checksum field: re-stamping then
  /// adds just the new words and folds — bit-identical to a full recompute
  /// (the checksum is a commutative sum) at a handful of adds.
  std::uint64_t checksum_partial = 0;

  [[nodiscard]] bool valid() const { return !bytes.empty(); }
};

/// Crafts the full frame for `header` carrying `meta` as payload and
/// records the layout needed for later re-stamping.
ProbeWire craft_probe_wire(const AbstractPacket& header,
                           const ProbeMetadata& meta);

/// Patches `generation` and `nonce` into the cached frame and refreshes the
/// covering checksum.  The result is byte-identical to crafting a fresh
/// frame with the updated metadata (asserted by tests/scaleout_test.cpp).
void restamp_probe_wire(ProbeWire& wire, std::uint32_t generation,
                        std::uint32_t nonce);

}  // namespace monocle::netbase
