// Internet checksum (RFC 1071) and the TCP/UDP pseudo-header variant.
#pragma once

#include <cstdint>
#include <span>

namespace monocle::netbase {

/// One's-complement sum accumulator for incremental checksum computation.
class ChecksumAccumulator {
 public:
  /// Folds `data` into the running sum.  Handles odd lengths; an odd-length
  /// chunk must be the final chunk added (the last byte is padded with zero).
  void add(std::span<const std::uint8_t> data);

  /// Adds a single big-endian 16-bit word.
  void add_u16(std::uint16_t word) { sum_ += word; }

  /// Adds a 32-bit value as two 16-bit words (for pseudo-header addresses).
  void add_u32(std::uint32_t v) {
    add_u16(static_cast<std::uint16_t>(v >> 16));
    add_u16(static_cast<std::uint16_t>(v));
  }

  /// Returns the final folded, inverted checksum in host order.
  [[nodiscard]] std::uint16_t finish() const;

  /// The unfolded running sum.  Because the checksum is a plain commutative
  /// sum folded only at finish(), a caller can cache this for the constant
  /// part of a buffer and later add just the changed words — bit-identical
  /// to a full recompute (netbase/probe_wire.cpp's re-stamp fast path).
  [[nodiscard]] std::uint64_t raw_sum() const { return sum_; }

 private:
  std::uint64_t sum_ = 0;
};

/// Folds and inverts a raw one's-complement sum exactly as
/// ChecksumAccumulator::finish() does.
inline std::uint16_t finish_checksum_sum(std::uint64_t sum) {
  while (sum >> 16) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

/// Checksum of a single contiguous buffer (e.g. an IPv4 header with its
/// checksum field zeroed).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// TCP/UDP checksum over pseudo-header {src, dst, 0, proto, length} plus the
/// transport header and payload (`segment`, with its checksum field zeroed).
std::uint16_t transport_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

}  // namespace monocle::netbase
