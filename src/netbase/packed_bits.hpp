// Packed bit-vector view of the abstract header.
//
// Matching, overlap checks and rewrite application all operate on the header
// as a flat bit string (paper Tables 3 & 4 are per-bit).  PackedBits stores
// kHeaderBits bits in a few machine words so those operations are a handful
// of AND/XOR instructions — important because overlap checking dominates
// probe-generation time (paper §8.2).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <type_traits>

#include "netbase/abstract_packet.hpp"
#include "netbase/fields.hpp"

namespace monocle::netbase {

inline constexpr int kHeaderWords = (kHeaderBits + 63) / 64;

/// Fixed-width bit vector covering the abstract header.  Bit 0 is the MSB of
/// the first field, stored at the MSB end of word 0 for cache-friendly
/// word-parallel operations.
struct PackedBits {
  std::array<std::uint64_t, kHeaderWords> w{};

  [[nodiscard]] constexpr bool get(int bit) const {
    return (w[static_cast<std::size_t>(bit >> 6)] >>
            (63 - (bit & 63))) & 1;
  }
  constexpr void set(int bit, bool value) {
    const std::uint64_t mask = std::uint64_t{1} << (63 - (bit & 63));
    auto& word = w[static_cast<std::size_t>(bit >> 6)];
    if (value) {
      word |= mask;
    } else {
      word &= ~mask;
    }
  }

  constexpr PackedBits operator&(const PackedBits& o) const {
    PackedBits r;
    for (int i = 0; i < kHeaderWords; ++i) r.w[static_cast<std::size_t>(i)] =
        w[static_cast<std::size_t>(i)] & o.w[static_cast<std::size_t>(i)];
    return r;
  }
  constexpr PackedBits operator|(const PackedBits& o) const {
    PackedBits r;
    for (int i = 0; i < kHeaderWords; ++i) r.w[static_cast<std::size_t>(i)] =
        w[static_cast<std::size_t>(i)] | o.w[static_cast<std::size_t>(i)];
    return r;
  }
  constexpr PackedBits operator^(const PackedBits& o) const {
    PackedBits r;
    for (int i = 0; i < kHeaderWords; ++i) r.w[static_cast<std::size_t>(i)] =
        w[static_cast<std::size_t>(i)] ^ o.w[static_cast<std::size_t>(i)];
    return r;
  }
  constexpr PackedBits operator~() const {
    PackedBits r;
    for (int i = 0; i < kHeaderWords; ++i)
      r.w[static_cast<std::size_t>(i)] = ~w[static_cast<std::size_t>(i)];
    return r;
  }
  [[nodiscard]] constexpr bool any() const {
    for (const auto word : w) {
      if (word != 0) return true;
    }
    return false;
  }
  friend constexpr bool operator==(const PackedBits&, const PackedBits&) = default;
};

/// Invokes `fn(bit)` for every set bit of `bits`, in increasing bit order,
/// using countl_zero to skip over zero runs word-parallel.  `fn` may return
/// void, or bool where false stops the iteration early.  Returns false iff
/// the iteration was stopped.
template <typename Fn>
constexpr bool for_each_set_bit(const PackedBits& bits, Fn&& fn) {
  for (int w = 0; w < kHeaderWords; ++w) {
    std::uint64_t word = bits.w[static_cast<std::size_t>(w)];
    while (word != 0) {
      const int lz = std::countl_zero(word);
      word &= ~(std::uint64_t{1} << (63 - lz));
      const int bit = w * 64 + lz;
      if constexpr (std::is_void_v<std::invoke_result_t<Fn&, int>>) {
        fn(bit);
      } else {
        if (!fn(bit)) return false;
      }
    }
  }
  return true;
}

/// Packs an abstract packet's field values into header bit-string form.
/// Word-parallel: each field lands with at most two shift-or operations
/// (probe classification runs this once per caught probe, so the per-bit
/// loop it replaces was measurable at fleet scale).
inline PackedBits pack_header(const AbstractPacket& p) {
  PackedBits out;
  for (const auto& info : kFieldTable) {
    const std::uint64_t v = p.get(info.id);  // already masked to width
    const int word = info.bit_offset >> 6;
    const int bit_in_word = info.bit_offset & 63;
    const int shift = 64 - bit_in_word - info.width;
    if (shift >= 0) {
      out.w[static_cast<std::size_t>(word)] |= v << shift;
    } else {
      // Field straddles the word boundary: high bits here, low bits spill
      // into the next word's MSB end.
      out.w[static_cast<std::size_t>(word)] |= v >> -shift;
      out.w[static_cast<std::size_t>(word) + 1] |= v << (64 + shift);
    }
  }
  return out;
}

/// Unpacks a header bit string back into an abstract packet.
inline AbstractPacket unpack_header(const PackedBits& bits) {
  AbstractPacket p;
  for (const auto& info : kFieldTable) {
    std::uint64_t v = 0;
    for (int i = 0; i < info.width; ++i) {
      v = (v << 1) | (bits.get(info.bit_offset + i) ? 1 : 0);
    }
    p.set(info.id, v);
  }
  return p;
}

}  // namespace monocle::netbase
