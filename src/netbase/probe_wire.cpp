#include "netbase/probe_wire.hpp"

#include <array>
#include <cassert>

#include "netbase/byteio.hpp"
#include "netbase/checksum.hpp"

namespace monocle::netbase {

namespace {

/// The two u16 words of a big-endian u32, as checksum terms.
std::uint64_t u32_words(std::uint32_t v) {
  return (v >> 16) + (v & 0xFFFF);
}

}  // namespace

ProbeWire craft_probe_wire(const AbstractPacket& header,
                           const ProbeMetadata& meta) {
  std::array<std::uint8_t, ProbeMetadata::kWireSize> payload;
  encode_probe_metadata(meta, payload);
  ProbeWire wire;
  wire.bytes = craft_packet(header, payload, &wire.layout);

  // Cache the constant part of the covering checksum: sum everything the
  // fresh crafter sums, then back out the four variable metadata words and
  // the checksum field itself.  (All metadata words sit at even offsets
  // from the segment start — TCP/UDP/ICMP payloads begin at even L4
  // offsets and the record offsets are even — so each variable field is
  // exactly two aligned checksum words.)
  const WireLayout& l = wire.layout;
  if (l.checksum != WireLayout::Checksum::kNone) {
    assert((l.payload_offset - l.segment_offset) % 2 == 0);
    ChecksumAccumulator acc;
    if (l.checksum == WireLayout::Checksum::kTransport) {
      acc.add_u32(l.ip_src);
      acc.add_u32(l.ip_dst);
      acc.add_u16(l.ip_proto);
      acc.add_u16(static_cast<std::uint16_t>(l.segment_length));
    }
    acc.add({wire.bytes.data() + l.segment_offset, l.segment_length});
    wire.checksum_partial =
        acc.raw_sum() -
        be_get_u16(wire.bytes.data() + l.checksum_offset) -
        u32_words(meta.generation) - u32_words(meta.nonce);
  }
  return wire;
}

void restamp_probe_wire(ProbeWire& wire, std::uint32_t generation,
                        std::uint32_t nonce) {
  assert(wire.valid());
  const WireLayout& l = wire.layout;
  assert(l.payload_offset + ProbeMetadata::kWireSize <= wire.bytes.size());
  std::uint8_t* record = wire.bytes.data() + l.payload_offset;
  be_put_u32(record + ProbeMetadata::kGenerationOffset, generation);
  be_put_u32(record + ProbeMetadata::kNonceOffset, nonce);

  if (l.checksum == WireLayout::Checksum::kNone) return;
  // Constant partial sum + the new variable words, folded exactly like a
  // fresh compute (the checksum field itself counts as zero, as it does
  // during a fresh craft).
  std::uint16_t csum = finish_checksum_sum(
      wire.checksum_partial + u32_words(generation) + u32_words(nonce));
  if (l.udp_zero_means_none && csum == 0) csum = 0xFFFF;
  be_put_u16(wire.bytes.data() + l.checksum_offset, csum);
}

}  // namespace monocle::netbase
