#include "netbase/alloc_counter.hpp"

namespace monocle::netbase {

AllocCounter& alloc_counter() {
  static AllocCounter counter;
  return counter;
}

}  // namespace monocle::netbase
