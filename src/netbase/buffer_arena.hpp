// BufferArena: a small pool of reusable byte buffers for hot paths.
//
// The probe fast path builds one wire buffer per PacketOut.  Allocating a
// fresh std::vector per probe puts a malloc/free pair (and the cache misses
// of a cold buffer) on every injection; at fleet scale that glue dominates
// the per-probe cost.  A BufferArena keeps released buffers — capacity and
// all — and hands them back on the next acquire, so the steady-state cycle
// recycles the same few cache-warm allocations forever.
//
// Ownership model: acquire() transfers a buffer out of the arena (a plain
// std::vector, so it can be moved into a PacketOut or any other owner);
// release() returns it.  Buffers never released are simply freed by their
// owner — the arena is an optimization, not a tracker.  Not thread-safe:
// each shard owns its own arena (per-shard arenas are exactly the point —
// the fleet's workers never contend on a shared pool).
#pragma once

#include <cstdint>
#include <vector>

namespace monocle::netbase {

class BufferArena {
 public:
  /// At most this many buffers are retained by release(); extras are freed.
  /// The probe path needs one or two live buffers at a time, so a small cap
  /// bounds worst-case retention after a burst.
  static constexpr std::size_t kMaxPooled = 8;

  /// Returns a cleared buffer with at least `reserve` capacity: the most
  /// recently released one when available (cache-warm), else a fresh one.
  std::vector<std::uint8_t> acquire(std::size_t reserve = 0) {
    if (pool_.empty()) {
      ++fresh_buffers_;
      std::vector<std::uint8_t> buf;
      buf.reserve(reserve);
      return buf;
    }
    ++reuses_;
    std::vector<std::uint8_t> buf = std::move(pool_.back());
    pool_.pop_back();
    buf.clear();
    if (buf.capacity() < reserve) buf.reserve(reserve);
    return buf;
  }

  /// Returns `buf` to the pool (keeping its capacity) for future acquires.
  void release(std::vector<std::uint8_t> buf) {
    if (pool_.size() >= kMaxPooled || buf.capacity() == 0) return;
    pool_.push_back(std::move(buf));
  }

  /// Seeds the pool with up to `count` buffers of `capacity` bytes each
  /// (clamped to kMaxPooled), so the first acquires of a measured or
  /// allocation-asserted phase are already warm.  The multi-threaded round
  /// driver prewarms each worker's arena at setup; without this, every
  /// worker's first probe of the first round would allocate.
  void prewarm(std::size_t count, std::size_t capacity) {
    while (pool_.size() < kMaxPooled && count-- > 0) {
      std::vector<std::uint8_t> buf;
      buf.reserve(capacity > 0 ? capacity : 1);
      pool_.push_back(std::move(buf));
    }
  }

  [[nodiscard]] std::size_t pooled() const { return pool_.size(); }
  /// Buffers created because the pool was empty (steady state: stops
  /// growing once the working set is pooled).
  [[nodiscard]] std::uint64_t fresh_buffers() const { return fresh_buffers_; }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

 private:
  std::vector<std::vector<std::uint8_t>> pool_;
  std::uint64_t fresh_buffers_ = 0;
  std::uint64_t reuses_ = 0;
};

}  // namespace monocle::netbase
