// Field catalogue for the abstract packet view (paper §5.1).
//
// Monocle formulates probe-generation constraints over an *abstract* packet:
// a fixed sequence of protocol header fields, mirroring the OpenFlow 1.0
// 12-tuple.  Every field occupies a contiguous range of bits in a single
// abstract header bit-string; SAT variable (bit_offset + i + 1) corresponds to
// bit i of the field (most-significant bit first).  This file is the single
// source of truth for field ids, widths and bit offsets.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace monocle::netbase {

/// Abstract header fields, in wire-ish order.  Matches the OpenFlow 1.0
/// match 12-tuple (ofp_match).
enum class Field : std::uint8_t {
  InPort = 0,   ///< ingress port (16 bits in OF 1.0)
  EthSrc = 1,   ///< Ethernet source MAC (48 bits)
  EthDst = 2,   ///< Ethernet destination MAC (48 bits)
  EthType = 3,  ///< Ethertype (16 bits)
  VlanId = 4,   ///< 802.1Q VLAN id (12 bits); kVlanNone means "untagged"
  VlanPcp = 5,  ///< 802.1Q priority code point (3 bits)
  IpSrc = 6,    ///< IPv4 source (32 bits); ARP SPA when EthType==ARP
  IpDst = 7,    ///< IPv4 destination (32 bits); ARP TPA when EthType==ARP
  IpProto = 8,  ///< IPv4 protocol (8 bits); ARP opcode low byte when ARP
  IpTos = 9,    ///< IPv4 DSCP (6 bits, as in OF 1.0)
  TpSrc = 10,   ///< TCP/UDP source port, or ICMP type (16 bits)
  TpDst = 11,   ///< TCP/UDP destination port, or ICMP code (16 bits)
};

inline constexpr int kFieldCount = 12;

/// Sentinel VLAN id meaning "no 802.1Q tag present".  OpenFlow 1.0 uses
/// OFP_VLAN_NONE=0xffff on the wire; our abstract field is 12 bits wide so we
/// reserve the (invalid for 802.1Q) id 0xFFF instead.
inline constexpr std::uint64_t kVlanNone = 0xFFF;

/// Well-known ethertypes used throughout the library.
inline constexpr std::uint64_t kEthTypeIpv4 = 0x0800;
inline constexpr std::uint64_t kEthTypeArp = 0x0806;
inline constexpr std::uint64_t kEthTypeVlan = 0x8100;
/// IEEE 802 local experimental ethertype; used for opaque L2 payloads.
inline constexpr std::uint64_t kEthTypeExperimental = 0x88B5;

/// IP protocol numbers relevant to OpenFlow 1.0 matching.
inline constexpr std::uint64_t kIpProtoIcmp = 1;
inline constexpr std::uint64_t kIpProtoTcp = 6;
inline constexpr std::uint64_t kIpProtoUdp = 17;

/// Static description of one abstract field.
struct FieldInfo {
  Field id;
  std::string_view name;
  int width;       ///< bit width of the abstract field
  int bit_offset;  ///< offset of the field's MSB in the abstract header
};

namespace detail {
consteval std::array<FieldInfo, kFieldCount> make_field_table() {
  std::array<FieldInfo, kFieldCount> t{};
  int off = 0;
  auto add = [&](Field f, std::string_view name, int width) {
    t[static_cast<int>(f)] = FieldInfo{f, name, width, off};
    off += width;
  };
  add(Field::InPort, "in_port", 16);
  add(Field::EthSrc, "dl_src", 48);
  add(Field::EthDst, "dl_dst", 48);
  add(Field::EthType, "dl_type", 16);
  add(Field::VlanId, "dl_vlan", 12);
  add(Field::VlanPcp, "dl_vlan_pcp", 3);
  add(Field::IpSrc, "nw_src", 32);
  add(Field::IpDst, "nw_dst", 32);
  add(Field::IpProto, "nw_proto", 8);
  add(Field::IpTos, "nw_tos", 6);
  add(Field::TpSrc, "tp_src", 16);
  add(Field::TpDst, "tp_dst", 16);
  return t;
}
}  // namespace detail

inline constexpr std::array<FieldInfo, kFieldCount> kFieldTable =
    detail::make_field_table();

/// Total number of bits in the abstract header (== number of SAT variables
/// needed to describe a packet).
inline constexpr int kHeaderBits =
    kFieldTable[kFieldCount - 1].bit_offset + kFieldTable[kFieldCount - 1].width;

/// Returns the static description of `f`.
constexpr const FieldInfo& field_info(Field f) {
  return kFieldTable[static_cast<int>(f)];
}

/// Returns the bit width of `f`.
constexpr int field_width(Field f) { return field_info(f).width; }

/// Returns the offset of the MSB of `f` within the abstract header.
constexpr int field_offset(Field f) { return field_info(f).bit_offset; }

/// Returns the human-readable OpenFlow-style name of `f` ("nw_src", ...).
constexpr std::string_view field_name(Field f) { return field_info(f).name; }

/// Mask with the low `width(f)` bits set; every abstract value of `f` must
/// satisfy `value == (value & field_mask(f))`.
constexpr std::uint64_t field_mask(Field f) {
  const int w = field_width(f);
  return w >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << w) - 1);
}

/// Iteration helper: all fields in abstract-header order.
inline constexpr std::array<Field, kFieldCount> kAllFields = {
    Field::InPort, Field::EthSrc,  Field::EthDst, Field::EthType,
    Field::VlanId, Field::VlanPcp, Field::IpSrc,  Field::IpDst,
    Field::IpProto, Field::IpTos,  Field::TpSrc,  Field::TpDst,
};

}  // namespace monocle::netbase
