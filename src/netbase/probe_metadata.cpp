#include "netbase/probe_metadata.hpp"

#include <cassert>

#include "netbase/byteio.hpp"

namespace monocle::netbase {

std::vector<std::uint8_t> encode_probe_metadata(const ProbeMetadata& meta) {
  std::vector<std::uint8_t> out(ProbeMetadata::kWireSize);
  encode_probe_metadata(meta, out);
  return out;
}

void encode_probe_metadata(const ProbeMetadata& meta,
                           std::span<std::uint8_t> out) {
  assert(out.size() >= ProbeMetadata::kWireSize);
  std::uint8_t* p = out.data();
  be_put_u32(p, ProbeMetadata::kMagic);
  be_put_u64(p + 4, meta.switch_id);
  be_put_u64(p + 12, meta.rule_cookie);
  be_put_u32(p + ProbeMetadata::kGenerationOffset, meta.generation);
  be_put_u32(p + 24, meta.expected);
  be_put_u32(p + ProbeMetadata::kNonceOffset, meta.nonce);
}

std::optional<ProbeMetadataView> ProbeMetadataView::parse(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < ProbeMetadata::kWireSize) return std::nullopt;
  if (be_get_u32(payload.data()) != ProbeMetadata::kMagic) return std::nullopt;
  return ProbeMetadataView(payload.data());
}

ProbeMetadata ProbeMetadataView::materialize() const {
  ProbeMetadata meta;
  meta.switch_id = switch_id();
  meta.rule_cookie = rule_cookie();
  meta.generation = generation();
  meta.expected = expected();
  meta.nonce = nonce();
  return meta;
}

std::optional<ProbeMetadata> decode_probe_metadata(
    std::span<const std::uint8_t> payload) {
  const auto view = ProbeMetadataView::parse(payload);
  if (!view) return std::nullopt;
  return view->materialize();
}

}  // namespace monocle::netbase
