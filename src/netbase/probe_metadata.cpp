#include "netbase/probe_metadata.hpp"

#include "netbase/byteio.hpp"

namespace monocle::netbase {

std::vector<std::uint8_t> encode_probe_metadata(const ProbeMetadata& meta) {
  ByteWriter w(ProbeMetadata::kWireSize);
  w.u32(ProbeMetadata::kMagic);
  w.u64(meta.switch_id);
  w.u64(meta.rule_cookie);
  w.u32(meta.generation);
  w.u32(meta.expected);
  w.u32(meta.nonce);
  return w.take();
}

std::optional<ProbeMetadata> decode_probe_metadata(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < ProbeMetadata::kWireSize) return std::nullopt;
  ByteReader r(payload);
  if (r.u32() != ProbeMetadata::kMagic) return std::nullopt;
  ProbeMetadata meta;
  meta.switch_id = r.u64();
  meta.rule_cookie = r.u64();
  meta.generation = r.u32();
  meta.expected = r.u32();
  meta.nonce = r.u32();
  if (!r.ok()) return std::nullopt;
  return meta;
}

}  // namespace monocle::netbase
