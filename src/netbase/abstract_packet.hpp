// Abstract packet view (paper §5.1).
//
// An AbstractPacket assigns a concrete value to every abstract header field.
// Not every field is *present* in the eventual wire packet: e.g. tp_src only
// exists when the packet is IPv4 and carries TCP/UDP/ICMP.  The paper calls
// such fields "conditionally-included" and proves (§5.2, second lemma) that
// dropping conditionally-excluded fields from a SAT solution preserves the
// validity of Matches() against well-formed rules.  `normalized()` implements
// that elimination.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "netbase/fields.hpp"

namespace monocle::netbase {

/// A fully concrete abstract header: one value per field.
///
/// Values are stored masked to the field width.  Use `normalized()` before
/// crafting a wire packet so conditionally-excluded fields hold canonical
/// values (and comparisons between logically identical packets succeed).
class AbstractPacket {
 public:
  /// Constructs the canonical all-zero packet: untagged, non-IP.
  constexpr AbstractPacket() {
    values_.fill(0);
    set(Field::VlanId, kVlanNone);
  }

  /// Returns the value of field `f` (masked to the field width).
  [[nodiscard]] constexpr std::uint64_t get(Field f) const {
    return values_[static_cast<int>(f)];
  }

  /// Sets field `f` to `value` (masked to the field width).
  constexpr void set(Field f, std::uint64_t value) {
    values_[static_cast<int>(f)] = value & field_mask(f);
  }

  /// Fluent setter, convenient for building test packets.
  constexpr AbstractPacket& with(Field f, std::uint64_t value) {
    set(f, value);
    return *this;
  }

  /// Value of bit `i` of the abstract header (0 = MSB of in_port, ...).
  /// Bits index the header as laid out by `kFieldTable`.
  [[nodiscard]] bool bit(int header_bit) const;

  /// Sets bit `i` of the abstract header.
  void set_bit(int header_bit, bool value);

  /// Whether field `f` is present in the wire encoding of this packet
  /// (conditional-inclusion rules of §5.2).
  [[nodiscard]] bool present(Field f) const;

  /// Returns a copy with all conditionally-excluded fields reset to their
  /// canonical value (0).  Per the §5.2 lemma this does not change
  /// Matches(P, R) for any well-formed rule R.
  [[nodiscard]] AbstractPacket normalized() const;

  /// True if the packet carries an 802.1Q tag.
  [[nodiscard]] constexpr bool has_vlan_tag() const {
    return get(Field::VlanId) != kVlanNone;
  }

  /// True if the packet is IPv4.
  [[nodiscard]] constexpr bool is_ipv4() const {
    return get(Field::EthType) == kEthTypeIpv4;
  }

  /// True if the packet is ARP.
  [[nodiscard]] constexpr bool is_arp() const {
    return get(Field::EthType) == kEthTypeArp;
  }

  /// Human-readable rendering, e.g. "in_port=3 dl_type=0x800 nw_src=10.0.0.1 ...".
  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(const AbstractPacket&,
                                   const AbstractPacket&) = default;

 private:
  std::array<std::uint64_t, kFieldCount> values_{};
};

/// The parent relationship behind conditional inclusion: which field (and
/// which of its values) enables the presence of `f`.  Fields with no parent
/// (L2 fields) are always present.
struct InclusionRule {
  Field child;
  Field parent;
  /// Child is present iff parent's value is in this set (small, inlined).
  std::array<std::uint64_t, 3> enabling_values;
  int enabling_count;
};

/// Returns the inclusion rule governing `f`, or std::nullopt when `f` is
/// unconditionally present.
std::optional<InclusionRule> inclusion_rule(Field f);

/// Renders an IPv4 address in dotted-quad form.
std::string ipv4_to_string(std::uint32_t addr);

/// Renders a MAC address in colon-hex form.
std::string mac_to_string(std::uint64_t mac);

}  // namespace monocle::netbase
