#include "netbase/domains.hpp"

#include <algorithm>

namespace monocle::netbase {

void DomainFixup::set_domain(Field f, std::vector<std::uint64_t> valid) {
  domains_[static_cast<int>(f)] = std::move(valid);
}

void DomainFixup::note_used(Field f, std::uint64_t value) {
  used_[static_cast<int>(f)].insert(value & field_mask(f));
}

DomainFixup DomainFixup::openflow10_defaults() {
  DomainFixup d;
  d.set_domain(Field::EthType,
               {kEthTypeIpv4, kEthTypeArp, kEthTypeExperimental});
  return d;
}

bool DomainFixup::is_valid(Field f, std::uint64_t value) const {
  const auto it = domains_.find(static_cast<int>(f));
  if (it == domains_.end()) return true;
  const auto& valid = it->second;
  return std::find(valid.begin(), valid.end(), value & field_mask(f)) !=
         valid.end();
}

bool DomainFixup::apply(AbstractPacket& p) const {
  for (const auto& [field_idx, valid] : domains_) {
    const Field f = static_cast<Field>(field_idx);
    if (is_valid(f, p.get(f))) continue;
    // Out-of-domain: look for a spare — a valid value no rule matches on.
    const auto used_it = used_.find(field_idx);
    const auto* used = used_it == used_.end() ? nullptr : &used_it->second;
    bool substituted = false;
    for (const std::uint64_t candidate : valid) {
      if (used != nullptr && used->contains(candidate & field_mask(f))) {
        continue;
      }
      p.set(f, candidate);
      substituted = true;
      break;
    }
    if (!substituted) return false;
  }
  return true;
}

}  // namespace monocle::netbase
