// Raw packet crafting (paper §5.2, "Creating raw packets").
//
// Converts an abstract header (the SAT solution, in abstract field space)
// plus a payload into a fully valid wire packet: Ethernet, optional 802.1Q
// tag, then IPv4+{TCP,UDP,ICMP}, ARP, or an opaque experimental-ethertype
// frame.  All lengths and checksums are computed here, which is exactly the
// work the paper delegates to "existing packet generation libraries".
//
// The probe fast path needs two extras beyond one-shot crafting: an in-place
// form (`craft_packet_into`) that reuses the caller's buffer so steady-state
// emission allocates nothing, and a `WireLayout` report describing where the
// payload landed and which checksum covers it — enough to re-stamp the
// per-injection metadata fields of a cached frame without re-crafting it
// (netbase/probe_wire.hpp).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/abstract_packet.hpp"

namespace monocle::netbase {

/// Where the interesting bytes of a crafted frame live, and how the payload
/// is checksummed.  Produced by craft_packet/craft_packet_into; consumed by
/// restamp_probe_wire to patch payload bytes in place and refresh exactly
/// the checksum the fresh crafter would have computed.
struct WireLayout {
  enum class Checksum : std::uint8_t {
    kNone,       ///< no checksum covers the payload (ARP/opaque/raw-IP)
    kInternet,   ///< RFC 1071 over the segment (ICMP)
    kTransport,  ///< pseudo-header + segment (TCP/UDP)
  };

  std::size_t payload_offset = 0;  ///< first payload byte within the frame
  std::size_t payload_length = 0;
  Checksum checksum = Checksum::kNone;
  std::size_t checksum_offset = 0;  ///< absolute offset of the 16-bit field
  std::size_t segment_offset = 0;   ///< checksum coverage start
  std::size_t segment_length = 0;   ///< coverage length (excludes padding)
  std::uint32_t ip_src = 0;         ///< pseudo-header inputs (kTransport)
  std::uint32_t ip_dst = 0;
  std::uint8_t ip_proto = 0;
  /// RFC 768: a computed UDP checksum of 0 is transmitted as 0xFFFF.
  bool udp_zero_means_none = false;
};

/// Crafts a wire packet from `header` and `payload`.
///
/// `header` should already be normalized; the crafter normalizes defensively.
/// The payload is placed after the innermost header this packet carries
/// (L4 for TCP/UDP/ICMP, L3 for other IPv4, L2 for ARP/opaque frames — for
/// ARP the payload follows the fixed ARP body as trailer bytes, which is
/// legal on Ethernet and preserved by switches).
std::vector<std::uint8_t> craft_packet(const AbstractPacket& header,
                                       std::span<const std::uint8_t> payload,
                                       WireLayout* layout = nullptr);

/// As craft_packet, but builds the frame in `out`, reusing its capacity
/// (zero allocations once the buffer has grown to frame size).  Byte-for-
/// byte identical output to craft_packet.
void craft_packet_into(const AbstractPacket& header,
                       std::span<const std::uint8_t> payload,
                       std::vector<std::uint8_t>& out,
                       WireLayout* layout = nullptr);

/// Result of parsing a wire packet back into abstract space.
struct ParsedPacket {
  AbstractPacket header;               ///< abstract view (in_port left as 0)
  std::vector<std::uint8_t> payload;   ///< bytes after the innermost header
  bool checksums_valid = true;         ///< IPv4 + transport checksums
};

/// Zero-copy parse result: `payload` borrows from the input frame, so the
/// view must not outlive it.  The probe collection path uses this to decode
/// a PacketIn without copying the payload bytes.
struct PacketView {
  AbstractPacket header;                   ///< abstract view (in_port = 0)
  std::span<const std::uint8_t> payload;   ///< borrowed from the input
  bool checksums_valid = true;
};

/// Parses a wire packet produced by `craft_packet` (or any well-formed
/// Ethernet/IPv4 frame) without copying.  Returns std::nullopt on
/// truncated/garbled input.  `validate_checksums=false` skips the IPv4 and
/// transport checksum passes (checksums_valid then reports true): the probe
/// collection fast path never consults them — a corrupted probe fails
/// classification on its content — and the two extra passes per PacketIn
/// are measurable at fleet scale.
std::optional<PacketView> parse_packet_view(std::span<const std::uint8_t> wire,
                                            bool validate_checksums = true);

/// As parse_packet_view, but copies the payload out (owning result).
std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> wire);

/// Minimum payload the crafter always has room for.  Ethernet minimum frame
/// size is respected by padding; parse_packet strips padding only for IPv4
/// (where total_length is authoritative).
inline constexpr std::size_t kMinEthernetPayload = 46;

}  // namespace monocle::netbase
