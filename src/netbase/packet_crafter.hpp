// Raw packet crafting (paper §5.2, "Creating raw packets").
//
// Converts an abstract header (the SAT solution, in abstract field space)
// plus a payload into a fully valid wire packet: Ethernet, optional 802.1Q
// tag, then IPv4+{TCP,UDP,ICMP}, ARP, or an opaque experimental-ethertype
// frame.  All lengths and checksums are computed here, which is exactly the
// work the paper delegates to "existing packet generation libraries".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "netbase/abstract_packet.hpp"

namespace monocle::netbase {

/// Crafts a wire packet from `header` and `payload`.
///
/// `header` should already be normalized; the crafter normalizes defensively.
/// The payload is placed after the innermost header this packet carries
/// (L4 for TCP/UDP/ICMP, L3 for other IPv4, L2 for ARP/opaque frames — for
/// ARP the payload follows the fixed ARP body as trailer bytes, which is
/// legal on Ethernet and preserved by switches).
std::vector<std::uint8_t> craft_packet(const AbstractPacket& header,
                                       std::span<const std::uint8_t> payload);

/// Result of parsing a wire packet back into abstract space.
struct ParsedPacket {
  AbstractPacket header;               ///< abstract view (in_port left as 0)
  std::vector<std::uint8_t> payload;   ///< bytes after the innermost header
  bool checksums_valid = true;         ///< IPv4 + transport checksums
};

/// Parses a wire packet produced by `craft_packet` (or any well-formed
/// Ethernet/IPv4 frame).  Returns std::nullopt on truncated/garbled input.
std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> wire);

/// Minimum payload the crafter always has room for.  Ethernet minimum frame
/// size is respected by padding; parse_packet strips padding only for IPv4
/// (where total_length is authoritative).
inline constexpr std::size_t kMinEthernetPayload = 46;

}  // namespace monocle::netbase
