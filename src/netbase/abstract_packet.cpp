#include "netbase/abstract_packet.hpp"

#include <cstdio>

namespace monocle::netbase {

namespace {

// Conditional-inclusion table (§5.2).  The VLAN PCP is only meaningful on
// tagged frames; L3 fields require an IPv4 or ARP ethertype; L4 fields
// require IPv4 with a transport protocol OpenFlow knows how to parse.
//
// "Presence" of VlanId itself is special: the field always has a value, with
// kVlanNone denoting the untagged encoding, so it is treated as
// unconditionally present.
constexpr std::uint64_t kNoValue = ~std::uint64_t{0};

constexpr InclusionRule kRules[] = {
    {Field::VlanPcp, Field::VlanId, {kVlanNone, 0, 0}, -1},  // present iff != kVlanNone
    {Field::IpSrc, Field::EthType, {kEthTypeIpv4, kEthTypeArp, 0}, 2},
    {Field::IpDst, Field::EthType, {kEthTypeIpv4, kEthTypeArp, 0}, 2},
    {Field::IpProto, Field::EthType, {kEthTypeIpv4, kEthTypeArp, 0}, 2},
    {Field::IpTos, Field::EthType, {kEthTypeIpv4, 0, 0}, 1},
    {Field::TpSrc, Field::IpProto, {kIpProtoIcmp, kIpProtoTcp, kIpProtoUdp}, 3},
    {Field::TpDst, Field::IpProto, {kIpProtoIcmp, kIpProtoTcp, kIpProtoUdp}, 3},
};

}  // namespace

std::optional<InclusionRule> inclusion_rule(Field f) {
  for (const auto& r : kRules) {
    if (r.child == f) return r;
  }
  return std::nullopt;
}

bool AbstractPacket::bit(int header_bit) const {
  for (const auto& info : kFieldTable) {
    if (header_bit >= info.bit_offset && header_bit < info.bit_offset + info.width) {
      const int from_msb = header_bit - info.bit_offset;
      const int shift = info.width - 1 - from_msb;
      return (get(info.id) >> shift) & 1;
    }
  }
  return false;
}

void AbstractPacket::set_bit(int header_bit, bool value) {
  for (const auto& info : kFieldTable) {
    if (header_bit >= info.bit_offset && header_bit < info.bit_offset + info.width) {
      const int from_msb = header_bit - info.bit_offset;
      const int shift = info.width - 1 - from_msb;
      std::uint64_t v = get(info.id);
      if (value) {
        v |= (std::uint64_t{1} << shift);
      } else {
        v &= ~(std::uint64_t{1} << shift);
      }
      set(info.id, v);
      return;
    }
  }
}

bool AbstractPacket::present(Field f) const {
  const auto rule = inclusion_rule(f);
  if (!rule) return true;
  // VlanPcp uses an exclusion encoding: present iff parent != kVlanNone.
  if (rule->enabling_count == -1) {
    if (get(rule->parent) == rule->enabling_values[0]) return false;
    // A tagged frame's PCP also requires the frame itself to be "taggable";
    // VlanId has no parent so this is sufficient.
    return true;
  }
  bool parent_ok = false;
  for (int i = 0; i < rule->enabling_count; ++i) {
    if (get(rule->parent) == rule->enabling_values[i]) parent_ok = true;
  }
  if (!parent_ok) return false;
  // Presence is transitive: the parent itself must be present.  (tp_src
  // requires nw_proto present, which requires an IPv4/ARP ethertype; and ARP
  // has no transport header at all.)
  if (f == Field::TpSrc || f == Field::TpDst) {
    return get(Field::EthType) == kEthTypeIpv4 && present(Field::IpProto);
  }
  return present(rule->parent);
}

AbstractPacket AbstractPacket::normalized() const {
  AbstractPacket out = *this;
  for (Field f : kAllFields) {
    if (!out.present(f)) {
      // Canonical value for excluded fields.  VlanId keeps its kVlanNone
      // sentinel; everything else resets to zero.
      out.set(f, f == Field::VlanId ? kVlanNone : 0);
    }
  }
  return out;
}

std::string ipv4_to_string(std::uint32_t addr) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xFF,
                (addr >> 16) & 0xFF, (addr >> 8) & 0xFF, addr & 0xFF);
  return buf;
}

std::string mac_to_string(std::uint64_t mac) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((mac >> 40) & 0xFF),
                static_cast<unsigned>((mac >> 32) & 0xFF),
                static_cast<unsigned>((mac >> 24) & 0xFF),
                static_cast<unsigned>((mac >> 16) & 0xFF),
                static_cast<unsigned>((mac >> 8) & 0xFF),
                static_cast<unsigned>(mac & 0xFF));
  return buf;
}

std::string AbstractPacket::to_string() const {
  std::string out;
  char buf[96];
  for (Field f : kAllFields) {
    if (!present(f)) continue;
    const auto& info = field_info(f);
    switch (f) {
      case Field::IpSrc:
      case Field::IpDst:
        std::snprintf(buf, sizeof(buf), "%.*s=%s ",
                      static_cast<int>(info.name.size()), info.name.data(),
                      ipv4_to_string(static_cast<std::uint32_t>(get(f))).c_str());
        break;
      case Field::EthSrc:
      case Field::EthDst:
        std::snprintf(buf, sizeof(buf), "%.*s=%s ",
                      static_cast<int>(info.name.size()), info.name.data(),
                      mac_to_string(get(f)).c_str());
        break;
      case Field::EthType:
        std::snprintf(buf, sizeof(buf), "%.*s=0x%llx ",
                      static_cast<int>(info.name.size()), info.name.data(),
                      static_cast<unsigned long long>(get(f)));
        break;
      default:
        std::snprintf(buf, sizeof(buf), "%.*s=%llu ",
                      static_cast<int>(info.name.size()), info.name.data(),
                      static_cast<unsigned long long>(get(f)));
    }
    out += buf;
  }
  if (!out.empty()) out.pop_back();
  return out;
}

}  // namespace monocle::netbase
