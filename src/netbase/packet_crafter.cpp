#include "netbase/packet_crafter.hpp"

#include <algorithm>
#include <cassert>

#include "netbase/byteio.hpp"
#include "netbase/checksum.hpp"

namespace monocle::netbase {

namespace {

constexpr std::uint8_t kDefaultTtl = 64;

// Builds the IPv4 header + transport header + payload directly into `w`
// (no intermediate buffers): headers go in with zeroed length/checksum
// placeholders, then are patched in place once the segment length is known.
// Byte-identical to crafting the pieces separately.
void craft_ipv4(ByteWriter& w, const AbstractPacket& h,
                std::span<const std::uint8_t> payload, WireLayout& layout) {
  const auto proto = static_cast<std::uint8_t>(h.get(Field::IpProto));
  const auto src = static_cast<std::uint32_t>(h.get(Field::IpSrc));
  const auto dst = static_cast<std::uint32_t>(h.get(Field::IpDst));

  const std::size_t ip_start = w.size();
  w.u8(0x45);  // version 4, IHL 5
  w.u8(static_cast<std::uint8_t>(h.get(Field::IpTos) << 2));  // DSCP in high 6 bits
  w.u16(0);        // total length, patched below
  w.u16(0);        // identification
  w.u16(0x4000);   // DF, no fragmentation
  w.u8(kDefaultTtl);
  w.u8(proto);
  w.u16(0);  // header checksum, patched below
  w.u32(src);
  w.u32(dst);

  const std::size_t l4_start = w.size();
  layout.ip_src = src;
  layout.ip_dst = dst;
  layout.ip_proto = proto;
  switch (proto) {
    case kIpProtoTcp:
      w.u16(static_cast<std::uint16_t>(h.get(Field::TpSrc)));
      w.u16(static_cast<std::uint16_t>(h.get(Field::TpDst)));
      w.u32(0);           // seq
      w.u32(0);           // ack
      w.u8(5 << 4);       // data offset = 5 words, no options
      w.u8(0x02);         // SYN — a self-contained, inoffensive flag choice
      w.u16(0xFFFF);      // window
      w.u16(0);           // checksum, patched below
      w.u16(0);           // urgent pointer
      layout.payload_offset = w.size();
      w.bytes(payload);
      layout.checksum = WireLayout::Checksum::kTransport;
      layout.checksum_offset = l4_start + 16;
      break;
    case kIpProtoUdp:
      w.u16(static_cast<std::uint16_t>(h.get(Field::TpSrc)));
      w.u16(static_cast<std::uint16_t>(h.get(Field::TpDst)));
      w.u16(static_cast<std::uint16_t>(8 + payload.size()));
      w.u16(0);  // checksum, patched below
      layout.payload_offset = w.size();
      w.bytes(payload);
      layout.checksum = WireLayout::Checksum::kTransport;
      layout.checksum_offset = l4_start + 6;
      layout.udp_zero_means_none = true;
      break;
    case kIpProtoIcmp:
      // OpenFlow 1.0 maps tp_src/tp_dst to ICMP type/code.
      w.u8(static_cast<std::uint8_t>(h.get(Field::TpSrc)));
      w.u8(static_cast<std::uint8_t>(h.get(Field::TpDst)));
      w.u16(0);        // checksum, patched below
      w.u16(0x4D4E);   // identifier ("MN")
      w.u16(1);        // sequence
      layout.payload_offset = w.size();
      w.bytes(payload);
      layout.checksum = WireLayout::Checksum::kInternet;
      layout.checksum_offset = l4_start + 2;
      break;
    default:
      // Unknown transport: payload rides directly above IP, uncovered by
      // any payload checksum.
      layout.payload_offset = w.size();
      w.bytes(payload);
  }
  layout.payload_length = payload.size();
  layout.segment_offset = l4_start;
  layout.segment_length = w.size() - l4_start;

  // Patch total length and the IPv4 header checksum.
  const auto total_len = static_cast<std::uint16_t>(w.size() - ip_start);
  w.patch_u16(ip_start + 2, total_len);
  w.patch_u16(ip_start + 10, internet_checksum(w.view(ip_start, 20)));

  // Patch the transport/ICMP checksum over the finished segment.
  const auto segment = w.view(l4_start, layout.segment_length);
  switch (layout.checksum) {
    case WireLayout::Checksum::kTransport: {
      std::uint16_t csum = transport_checksum(src, dst, proto, segment);
      if (layout.udp_zero_means_none && csum == 0) {
        csum = 0xFFFF;  // RFC 768: transmitted 0 means "none"
      }
      w.patch_u16(layout.checksum_offset, csum);
      break;
    }
    case WireLayout::Checksum::kInternet:
      w.patch_u16(layout.checksum_offset, internet_checksum(segment));
      break;
    case WireLayout::Checksum::kNone:
      break;
  }
}

void craft_arp(ByteWriter& w, const AbstractPacket& h,
               std::span<const std::uint8_t> payload, WireLayout& layout) {
  w.u16(1);       // htype: Ethernet
  w.u16(0x0800);  // ptype: IPv4
  w.u8(6);        // hlen
  w.u8(4);        // plen
  // OpenFlow 1.0 matches the ARP opcode via nw_proto's low byte.
  w.u16(static_cast<std::uint16_t>(h.get(Field::IpProto) & 0xFF));
  w.u48(h.get(Field::EthSrc));                              // sender MAC
  w.u32(static_cast<std::uint32_t>(h.get(Field::IpSrc)));   // sender IP (SPA)
  w.u48(h.get(Field::EthDst));                              // target MAC
  w.u32(static_cast<std::uint32_t>(h.get(Field::IpDst)));   // target IP (TPA)
  layout.payload_offset = w.size();
  layout.payload_length = payload.size();
  w.bytes(payload);  // trailer bytes carry probe metadata
}

void craft_into_writer(ByteWriter& w, const AbstractPacket& header,
                       std::span<const std::uint8_t> payload,
                       WireLayout* layout_out) {
  const AbstractPacket h = header.normalized();
  WireLayout layout;

  w.u48(h.get(Field::EthDst));
  w.u48(h.get(Field::EthSrc));
  if (h.has_vlan_tag()) {
    w.u16(static_cast<std::uint16_t>(kEthTypeVlan));
    const auto tci = static_cast<std::uint16_t>(
        (h.get(Field::VlanPcp) << 13) | (h.get(Field::VlanId) & 0xFFF));
    w.u16(tci);
  }
  w.u16(static_cast<std::uint16_t>(h.get(Field::EthType)));

  if (h.is_ipv4()) {
    craft_ipv4(w, h, payload, layout);
  } else if (h.is_arp()) {
    craft_arp(w, h, payload, layout);
  } else {
    layout.payload_offset = w.size();
    layout.payload_length = payload.size();
    w.bytes(payload);
  }

  // Pad to the Ethernet minimum frame size (without FCS): 60 bytes.
  if (w.size() < 60) {
    w.zeros(60 - w.size());
  }
  if (layout_out != nullptr) *layout_out = layout;
}

}  // namespace

std::vector<std::uint8_t> craft_packet(const AbstractPacket& header,
                                       std::span<const std::uint8_t> payload,
                                       WireLayout* layout) {
  ByteWriter w(128 + payload.size());
  craft_into_writer(w, header, payload, layout);
  return w.take();
}

void craft_packet_into(const AbstractPacket& header,
                       std::span<const std::uint8_t> payload,
                       std::vector<std::uint8_t>& out, WireLayout* layout) {
  ByteWriter w(std::move(out));
  craft_into_writer(w, header, payload, layout);
  out = w.take();
}

std::optional<PacketView> parse_packet_view(std::span<const std::uint8_t> wire,
                                            bool validate_checksums) {
  ByteReader r(wire);
  PacketView out;
  AbstractPacket& h = out.header;

  h.set(Field::EthDst, r.u48());
  h.set(Field::EthSrc, r.u48());
  std::uint16_t ethertype = r.u16();
  if (ethertype == kEthTypeVlan) {
    const std::uint16_t tci = r.u16();
    h.set(Field::VlanId, tci & 0xFFF);
    // A TCI whose vlan id equals the kVlanNone sentinel reads as untagged;
    // its PCP bits are then conditionally excluded and stay canonical.
    h.set(Field::VlanPcp, (tci & 0xFFF) == kVlanNone ? 0 : (tci >> 13) & 0x7);
    ethertype = r.u16();
  } else {
    h.set(Field::VlanId, kVlanNone);
  }
  h.set(Field::EthType, ethertype);
  if (!r.ok()) return std::nullopt;

  if (ethertype == kEthTypeIpv4) {
    const std::size_t ip_start = r.position();
    const std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl = (ver_ihl & 0xF) * std::size_t{4};
    if (ihl < 20) return std::nullopt;
    const std::uint8_t tos = r.u8();
    h.set(Field::IpTos, tos >> 2);
    const std::uint16_t total_len = r.u16();
    r.skip(4);  // id, flags/frag
    r.skip(1);  // ttl
    const std::uint8_t proto = r.u8();
    h.set(Field::IpProto, proto);
    r.skip(2);  // checksum (validated below over the whole header)
    h.set(Field::IpSrc, r.u32());
    h.set(Field::IpDst, r.u32());
    r.skip(ihl - 20);
    if (!r.ok()) return std::nullopt;
    if (validate_checksums && ip_start + ihl <= wire.size()) {
      out.checksums_valid =
          internet_checksum(wire.subspan(ip_start, ihl)) == 0;
    }
    if (total_len < ihl || ip_start + total_len > wire.size()) {
      return std::nullopt;
    }
    const std::size_t l4_start = ip_start + ihl;
    const std::size_t l4_len = total_len - ihl;
    auto segment = wire.subspan(l4_start, l4_len);
    ByteReader l4(segment);
    switch (proto) {
      case kIpProtoTcp: {
        if (segment.size() < 20) return std::nullopt;
        h.set(Field::TpSrc, l4.u16());
        h.set(Field::TpDst, l4.u16());
        l4.skip(8);
        const std::size_t data_off = (l4.u8() >> 4) * std::size_t{4};
        if (data_off < 20 || data_off > segment.size()) return std::nullopt;
        if (validate_checksums) {
          out.checksums_valid =
              out.checksums_valid &&
              transport_checksum(
                  static_cast<std::uint32_t>(h.get(Field::IpSrc)),
                  static_cast<std::uint32_t>(h.get(Field::IpDst)), proto,
                  segment) == 0;
        }
        out.payload = segment.subspan(data_off);
        break;
      }
      case kIpProtoUdp: {
        if (segment.size() < 8) return std::nullopt;
        h.set(Field::TpSrc, l4.u16());
        h.set(Field::TpDst, l4.u16());
        const std::uint16_t udp_len = l4.u16();
        const std::uint16_t wire_csum = l4.u16();
        if (udp_len < 8 || udp_len > segment.size()) return std::nullopt;
        if (validate_checksums && wire_csum != 0) {
          out.checksums_valid =
              out.checksums_valid &&
              transport_checksum(
                  static_cast<std::uint32_t>(h.get(Field::IpSrc)),
                  static_cast<std::uint32_t>(h.get(Field::IpDst)), proto,
                  segment.subspan(0, udp_len)) == 0;
        }
        out.payload = segment.subspan(8, udp_len - std::size_t{8});
        break;
      }
      case kIpProtoIcmp: {
        if (segment.size() < 8) return std::nullopt;
        h.set(Field::TpSrc, l4.u8());
        h.set(Field::TpDst, l4.u8());
        if (validate_checksums) {
          out.checksums_valid =
              out.checksums_valid && internet_checksum(segment) == 0;
        }
        out.payload = segment.subspan(8);
        break;
      }
      default:
        out.payload = segment;
    }
  } else if (ethertype == kEthTypeArp) {
    r.skip(6);  // htype, ptype, hlen, plen
    h.set(Field::IpProto, r.u16() & 0xFF);
    r.skip(6);  // sender MAC (already in EthSrc)
    h.set(Field::IpSrc, r.u32());
    r.skip(6);  // target MAC
    h.set(Field::IpDst, r.u32());
    if (!r.ok()) return std::nullopt;
    out.payload = wire.subspan(r.position());
  } else {
    out.payload = wire.subspan(r.position());
  }

  if (!r.ok()) return std::nullopt;
  // The parser writes only fields present in the wire encoding, onto the
  // canonical all-zero packet — its output is already in normalized form,
  // so the per-packet normalization pass is skipped (checked in debug
  // builds; probe collection parses every PacketIn through here).
  assert(h == h.normalized());
  return out;
}

std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> wire) {
  const auto view = parse_packet_view(wire);
  if (!view) return std::nullopt;
  ParsedPacket out;
  out.header = view->header;
  out.payload.assign(view->payload.begin(), view->payload.end());
  out.checksums_valid = view->checksums_valid;
  return out;
}

}  // namespace monocle::netbase
