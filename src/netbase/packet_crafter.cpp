#include "netbase/packet_crafter.hpp"

#include <algorithm>

#include "netbase/byteio.hpp"
#include "netbase/checksum.hpp"

namespace monocle::netbase {

namespace {

constexpr std::uint8_t kDefaultTtl = 64;

// Builds the IPv4 header + transport header + payload into `w`, starting at
// the current write position.  Returns nothing; all checksums are patched in
// place.
void craft_ipv4(ByteWriter& w, const AbstractPacket& h,
                std::span<const std::uint8_t> payload) {
  const auto proto = static_cast<std::uint8_t>(h.get(Field::IpProto));
  const auto src = static_cast<std::uint32_t>(h.get(Field::IpSrc));
  const auto dst = static_cast<std::uint32_t>(h.get(Field::IpDst));

  // Transport segment first (so its length is known for the IP header).
  ByteWriter seg;
  switch (proto) {
    case kIpProtoTcp: {
      seg.u16(static_cast<std::uint16_t>(h.get(Field::TpSrc)));
      seg.u16(static_cast<std::uint16_t>(h.get(Field::TpDst)));
      seg.u32(0);           // seq
      seg.u32(0);           // ack
      seg.u8(5 << 4);       // data offset = 5 words, no options
      seg.u8(0x02);         // SYN — a self-contained, inoffensive flag choice
      seg.u16(0xFFFF);      // window
      seg.u16(0);           // checksum placeholder
      seg.u16(0);           // urgent pointer
      seg.bytes(payload);
      auto bytes = seg.take();
      const std::uint16_t csum = transport_checksum(src, dst, proto, bytes);
      bytes[16] = static_cast<std::uint8_t>(csum >> 8);
      bytes[17] = static_cast<std::uint8_t>(csum);
      seg = ByteWriter{};
      seg.bytes(bytes);
      break;
    }
    case kIpProtoUdp: {
      const auto len = static_cast<std::uint16_t>(8 + payload.size());
      seg.u16(static_cast<std::uint16_t>(h.get(Field::TpSrc)));
      seg.u16(static_cast<std::uint16_t>(h.get(Field::TpDst)));
      seg.u16(len);
      seg.u16(0);  // checksum placeholder
      seg.bytes(payload);
      auto bytes = seg.take();
      std::uint16_t csum = transport_checksum(src, dst, proto, bytes);
      if (csum == 0) csum = 0xFFFF;  // RFC 768: transmitted 0 means "none"
      bytes[6] = static_cast<std::uint8_t>(csum >> 8);
      bytes[7] = static_cast<std::uint8_t>(csum);
      seg = ByteWriter{};
      seg.bytes(bytes);
      break;
    }
    case kIpProtoIcmp: {
      // OpenFlow 1.0 maps tp_src/tp_dst to ICMP type/code.
      seg.u8(static_cast<std::uint8_t>(h.get(Field::TpSrc)));
      seg.u8(static_cast<std::uint8_t>(h.get(Field::TpDst)));
      seg.u16(0);      // checksum placeholder
      seg.u16(0x4D4E);  // identifier ("MN")
      seg.u16(1);      // sequence
      seg.bytes(payload);
      auto bytes = seg.take();
      const std::uint16_t csum = internet_checksum(bytes);
      bytes[2] = static_cast<std::uint8_t>(csum >> 8);
      bytes[3] = static_cast<std::uint8_t>(csum);
      seg = ByteWriter{};
      seg.bytes(bytes);
      break;
    }
    default:
      // Unknown transport: payload rides directly above IP.
      seg.bytes(payload);
  }

  const auto seg_bytes = seg.data();
  const auto total_len = static_cast<std::uint16_t>(20 + seg_bytes.size());

  ByteWriter ip;
  ip.u8(0x45);  // version 4, IHL 5
  ip.u8(static_cast<std::uint8_t>(h.get(Field::IpTos) << 2));  // DSCP in high 6 bits
  ip.u16(total_len);
  ip.u16(0);       // identification
  ip.u16(0x4000);  // DF, no fragmentation
  ip.u8(kDefaultTtl);
  ip.u8(proto);
  ip.u16(0);  // header checksum placeholder
  ip.u32(src);
  ip.u32(dst);
  auto ip_bytes = ip.take();
  const std::uint16_t csum = internet_checksum(ip_bytes);
  ip_bytes[10] = static_cast<std::uint8_t>(csum >> 8);
  ip_bytes[11] = static_cast<std::uint8_t>(csum);

  w.bytes(ip_bytes);
  w.bytes(seg_bytes);
}

void craft_arp(ByteWriter& w, const AbstractPacket& h,
               std::span<const std::uint8_t> payload) {
  w.u16(1);       // htype: Ethernet
  w.u16(0x0800);  // ptype: IPv4
  w.u8(6);        // hlen
  w.u8(4);        // plen
  // OpenFlow 1.0 matches the ARP opcode via nw_proto's low byte.
  w.u16(static_cast<std::uint16_t>(h.get(Field::IpProto) & 0xFF));
  w.u48(h.get(Field::EthSrc));                              // sender MAC
  w.u32(static_cast<std::uint32_t>(h.get(Field::IpSrc)));   // sender IP (SPA)
  w.u48(h.get(Field::EthDst));                              // target MAC
  w.u32(static_cast<std::uint32_t>(h.get(Field::IpDst)));   // target IP (TPA)
  w.bytes(payload);  // trailer bytes carry probe metadata
}

}  // namespace

std::vector<std::uint8_t> craft_packet(const AbstractPacket& header,
                                       std::span<const std::uint8_t> payload) {
  const AbstractPacket h = header.normalized();
  ByteWriter w(128 + payload.size());

  w.u48(h.get(Field::EthDst));
  w.u48(h.get(Field::EthSrc));
  if (h.has_vlan_tag()) {
    w.u16(static_cast<std::uint16_t>(kEthTypeVlan));
    const auto tci = static_cast<std::uint16_t>(
        (h.get(Field::VlanPcp) << 13) | (h.get(Field::VlanId) & 0xFFF));
    w.u16(tci);
  }
  w.u16(static_cast<std::uint16_t>(h.get(Field::EthType)));

  if (h.is_ipv4()) {
    craft_ipv4(w, h, payload);
  } else if (h.is_arp()) {
    craft_arp(w, h, payload);
  } else {
    w.bytes(payload);
  }

  // Pad to the Ethernet minimum frame size (without FCS): 60 bytes.
  if (w.size() < 60) {
    w.zeros(60 - w.size());
  }
  return w.take();
}

std::optional<ParsedPacket> parse_packet(std::span<const std::uint8_t> wire) {
  ByteReader r(wire);
  ParsedPacket out;
  AbstractPacket& h = out.header;

  h.set(Field::EthDst, r.u48());
  h.set(Field::EthSrc, r.u48());
  std::uint16_t ethertype = r.u16();
  if (ethertype == kEthTypeVlan) {
    const std::uint16_t tci = r.u16();
    h.set(Field::VlanId, tci & 0xFFF);
    h.set(Field::VlanPcp, (tci >> 13) & 0x7);
    ethertype = r.u16();
  } else {
    h.set(Field::VlanId, kVlanNone);
  }
  h.set(Field::EthType, ethertype);
  if (!r.ok()) return std::nullopt;

  if (ethertype == kEthTypeIpv4) {
    const std::size_t ip_start = r.position();
    const std::uint8_t ver_ihl = r.u8();
    if ((ver_ihl >> 4) != 4) return std::nullopt;
    const std::size_t ihl = (ver_ihl & 0xF) * std::size_t{4};
    if (ihl < 20) return std::nullopt;
    const std::uint8_t tos = r.u8();
    h.set(Field::IpTos, tos >> 2);
    const std::uint16_t total_len = r.u16();
    r.skip(4);  // id, flags/frag
    r.skip(1);  // ttl
    const std::uint8_t proto = r.u8();
    h.set(Field::IpProto, proto);
    r.skip(2);  // checksum (validated below over the whole header)
    h.set(Field::IpSrc, r.u32());
    h.set(Field::IpDst, r.u32());
    r.skip(ihl - 20);
    if (!r.ok()) return std::nullopt;
    if (ip_start + ihl <= wire.size()) {
      out.checksums_valid =
          internet_checksum(wire.subspan(ip_start, ihl)) == 0;
    }
    if (total_len < ihl || ip_start + total_len > wire.size()) {
      return std::nullopt;
    }
    const std::size_t l4_start = ip_start + ihl;
    const std::size_t l4_len = total_len - ihl;
    auto segment = wire.subspan(l4_start, l4_len);
    ByteReader l4(segment);
    switch (proto) {
      case kIpProtoTcp: {
        if (segment.size() < 20) return std::nullopt;
        h.set(Field::TpSrc, l4.u16());
        h.set(Field::TpDst, l4.u16());
        l4.skip(8);
        const std::size_t data_off = (l4.u8() >> 4) * std::size_t{4};
        if (data_off < 20 || data_off > segment.size()) return std::nullopt;
        out.checksums_valid =
            out.checksums_valid &&
            transport_checksum(static_cast<std::uint32_t>(h.get(Field::IpSrc)),
                               static_cast<std::uint32_t>(h.get(Field::IpDst)),
                               proto, segment) == 0;
        out.payload.assign(segment.begin() + static_cast<std::ptrdiff_t>(data_off),
                           segment.end());
        break;
      }
      case kIpProtoUdp: {
        if (segment.size() < 8) return std::nullopt;
        h.set(Field::TpSrc, l4.u16());
        h.set(Field::TpDst, l4.u16());
        const std::uint16_t udp_len = l4.u16();
        const std::uint16_t wire_csum = l4.u16();
        if (udp_len < 8 || udp_len > segment.size()) return std::nullopt;
        if (wire_csum != 0) {
          out.checksums_valid =
              out.checksums_valid &&
              transport_checksum(
                  static_cast<std::uint32_t>(h.get(Field::IpSrc)),
                  static_cast<std::uint32_t>(h.get(Field::IpDst)), proto,
                  segment.subspan(0, udp_len)) == 0;
        }
        out.payload.assign(segment.begin() + 8,
                           segment.begin() + udp_len);
        break;
      }
      case kIpProtoIcmp: {
        if (segment.size() < 8) return std::nullopt;
        h.set(Field::TpSrc, l4.u8());
        h.set(Field::TpDst, l4.u8());
        out.checksums_valid =
            out.checksums_valid && internet_checksum(segment) == 0;
        out.payload.assign(segment.begin() + 8, segment.end());
        break;
      }
      default:
        out.payload.assign(segment.begin(), segment.end());
    }
  } else if (ethertype == kEthTypeArp) {
    r.skip(6);  // htype, ptype, hlen, plen
    h.set(Field::IpProto, r.u16() & 0xFF);
    r.skip(6);  // sender MAC (already in EthSrc)
    h.set(Field::IpSrc, r.u32());
    r.skip(6);  // target MAC
    h.set(Field::IpDst, r.u32());
    if (!r.ok()) return std::nullopt;
    out.payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(r.position()),
                       wire.end());
  } else {
    out.payload.assign(wire.begin() + static_cast<std::ptrdiff_t>(r.position()),
                       wire.end());
  }

  if (!r.ok()) return std::nullopt;
  out.header = h.normalized();
  return out;
}

}  // namespace monocle::netbase
