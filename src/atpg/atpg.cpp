#include "atpg/atpg.hpp"

#include "netbase/domains.hpp"
#include "netbase/packed_bits.hpp"
#include "sat/encoder.hpp"
#include "sat/solver.hpp"

namespace monocle::atpg {

using netbase::Field;
using netbase::kHeaderBits;
using netbase::PackedBits;
using openflow::FlowTable;
using openflow::Match;
using openflow::Rule;
using sat::Lit;

namespace {
constexpr Lit bit_var(int bit) { return bit + 1; }
}  // namespace

AtpgResult generate_atpg_probe(const FlowTable& table, const Rule& probed,
                               const Match& collect,
                               const std::vector<std::uint16_t>& in_ports,
                               const openflow::ActionList& miss_actions) {
  const auto t0 = std::chrono::steady_clock::now();
  AtpgResult result;

  sat::CnfFormula f;
  f.reserve_vars(kHeaderBits);

  // Hit: match the probed rule...
  auto add_match_units = [&f](const Match& m) {
    for (int b = 0; b < kHeaderBits; ++b) {
      if (m.care().get(b)) {
        f.add_unit(m.bits().get(b) ? bit_var(b) : -bit_var(b));
      }
    }
  };
  add_match_units(probed.match);
  // ... and Collect: match the catching rule.
  add_match_units(collect);

  // Hit: avoid all higher-priority rules (same overlap reasoning as Monocle).
  for (const Rule& r : table.rules()) {
    if (r.priority < probed.priority) break;
    if (r.priority == probed.priority && r.match == probed.match) continue;
    if (!r.match.overlaps(probed.match)) continue;
    f.begin_clause();
    bool trivially_true = false;
    for (int b = 0; b < kHeaderBits; ++b) {
      if (!r.match.care().get(b)) continue;
      const bool want = r.match.bits().get(b);
      if (probed.match.care().get(b)) {
        if (probed.match.bits().get(b) != want) trivially_true = true;
        continue;
      }
      f.push_lit(want ? -bit_var(b) : bit_var(b));
    }
    if (trivially_true) {
      f.abort_clause();
    } else {
      f.end_clause();
    }
  }

  if (!in_ports.empty()) {
    const auto& info = netbase::field_info(Field::InPort);
    if (probed.match.is_wildcard(Field::InPort)) {
      std::vector<std::uint64_t> values(in_ports.begin(), in_ports.end());
      sat::add_one_of_values(f, bit_var(info.bit_offset), info.width, values);
    }
  }

  const sat::SolveOutcome solved = sat::solve_formula(f);
  if (solved.result != sat::SolveResult::kSat) {
    result.elapsed = std::chrono::steady_clock::now() - t0;
    return result;
  }

  PackedBits bits;
  for (int b = 0; b < kHeaderBits; ++b) {
    bits.set(b, solved.model[static_cast<std::size_t>(bit_var(b))]);
  }
  netbase::AbstractPacket packet = netbase::unpack_header(bits);
  netbase::DomainFixup domains = netbase::DomainFixup::openflow10_defaults();
  for (const Rule& r : table.rules()) {
    if (!r.match.is_wildcard(Field::EthType)) {
      domains.note_used(Field::EthType, r.match.value(Field::EthType));
    }
  }
  if (!domains.apply(packet)) {
    result.elapsed = std::chrono::steady_clock::now() - t0;
    return result;
  }
  packet = packet.normalized();

  Probe probe;
  probe.packet = packet;
  probe.rule_cookie = probed.cookie;
  const PackedBits final_bits = netbase::pack_header(packet);
  probe.if_present = predict_outcome(&probed, miss_actions, final_bits);
  const Rule* absent = nullptr;
  for (const Rule& r : table.rules()) {
    if (r.priority == probed.priority && r.match == probed.match) continue;
    if (r.match.matches(final_bits)) {
      absent = &r;
      break;
    }
  }
  probe.if_absent = predict_outcome(absent, miss_actions, final_bits);

  // The tell-tale check: would this probe actually distinguish?  (Monocle
  // guarantees yes by construction; ATPG does not.)
  result.distinguishes =
      verify_probe(table, probed, probe, miss_actions, DiffOptions{});
  result.probe = std::move(probe);
  result.elapsed = std::chrono::steady_clock::now() - t0;
  return result;
}

std::vector<AtpgResult> precompute_all(
    const FlowTable& table, const Match& collect,
    const std::vector<std::uint16_t>& in_ports,
    const openflow::ActionList& miss_actions) {
  std::vector<AtpgResult> out;
  out.reserve(table.size());
  for (const Rule& r : table.rules()) {
    out.push_back(generate_atpg_probe(table, r, collect, in_ports, miss_actions));
  }
  return out;
}

}  // namespace monocle::atpg
