// ATPG-style baseline probe generation (paper §9, Related Work).
//
// ATPG (Zeng et al., CoNEXT'12) generates test packets that exercise rules
// but — per the paper's comparison — "generates probes taking into the
// account only Hit and Collect constraints.  It never checks whether the
// probes actually can Distinguish the rule from a lower priority one."
// This module reproduces that baseline: same Hit + Collect encoding as
// Monocle, no Distinguish chain.  The benchmarks use it to quantify (i) how
// many ATPG probes cannot actually detect a missing rule and (ii) the cost
// of ATPG's precompute-everything approach versus Monocle's per-update
// incremental generation.
#pragma once

#include <chrono>
#include <optional>
#include <vector>

#include "monocle/probe.hpp"
#include "monocle/probe_generator.hpp"
#include "openflow/flow_table.hpp"

namespace monocle::atpg {

struct AtpgResult {
  std::optional<Probe> probe;
  std::chrono::nanoseconds elapsed{0};
  /// True if the probe (while hitting the rule) cannot distinguish the
  /// rule's absence — i.e. Monocle's verify_probe rejects it.
  bool distinguishes = false;
};

/// Generates a Hit+Collect-only probe for `probed` against `table`.
AtpgResult generate_atpg_probe(const openflow::FlowTable& table,
                               const openflow::Rule& probed,
                               const openflow::Match& collect,
                               const std::vector<std::uint16_t>& in_ports,
                               const openflow::ActionList& miss_actions = {});

/// ATPG's offline mode: precomputes probes for EVERY rule in the table (the
/// paper: "substantial time ... to pre-compute its data plane probes").
/// Returns per-rule results in table order.
std::vector<AtpgResult> precompute_all(
    const openflow::FlowTable& table, const openflow::Match& collect,
    const std::vector<std::uint16_t>& in_ports,
    const openflow::ActionList& miss_actions = {});

}  // namespace monocle::atpg
