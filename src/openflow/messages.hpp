// OpenFlow 1.0 control-plane messages (libfluid substitute).
//
// Typed message structs plus a std::variant envelope.  The binary wire format
// (openflow/wire.hpp) follows the OpenFlow 1.0.1 layouts: 8-byte header,
// 40-byte ofp_match with the wildcards bitfield, TLV action lists.  Monocle
// itself only needs message *semantics*, but implementing the real framing
// keeps the proxy honest (and testable against byte fixtures) — and is what
// lets the channel layer (src/channel/) drive unmodified hardware switches
// with the same Message values the simulator consumes.
//
// How Monocle uses each type is mapped message-by-message to the paper's
// mechanisms in docs/PROTOCOL.md; xid and cookie conventions live there too.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"
#include "openflow/rule.hpp"

namespace monocle::openflow {

inline constexpr std::uint8_t kOfpVersion = 0x01;

/// ofp_type values (subset we implement).
enum class MsgType : std::uint8_t {
  kHello = 0,
  kError = 1,
  kEchoRequest = 2,
  kEchoReply = 3,
  kFeaturesRequest = 5,
  kFeaturesReply = 6,
  kPacketIn = 10,
  kFlowRemoved = 11,
  kPacketOut = 13,
  kFlowMod = 14,
  kBarrierRequest = 18,
  kBarrierReply = 19,
};

/// Version negotiation opener; both ends send one on connect.
struct Hello {};
/// Keepalive probe; the peer must mirror the payload back in an EchoReply
/// with the same xid (channel::OfSession's dead-peer detection rides this).
struct EchoRequest {
  std::vector<std::uint8_t> payload;
};
struct EchoReply {
  std::vector<std::uint8_t> payload;
};
/// Asks the switch to identify itself; the FeaturesReply completes the
/// control-channel handshake.
struct FeaturesRequest {};

/// ofp_phy_port (the fields the library uses).
struct PortDesc {
  std::uint16_t port_no = 0;
  std::uint64_t hw_addr = 0;  // low 48 bits
  std::string name;
};

struct FeaturesReply {
  std::uint64_t datapath_id = 0;
  std::uint32_t n_buffers = 0;
  std::uint8_t n_tables = 1;
  std::vector<PortDesc> ports;
};

enum class FlowModCommand : std::uint16_t {
  kAdd = 0,
  kModify = 1,
  kModifyStrict = 2,
  kDelete = 3,
  kDeleteStrict = 4,
};

/// ofp_flow_mod flags.
inline constexpr std::uint16_t kFlowModFlagSendFlowRem = 1 << 0;

struct FlowMod {
  Match match;
  std::uint64_t cookie = 0;
  FlowModCommand command = FlowModCommand::kAdd;
  std::uint16_t idle_timeout = 0;
  std::uint16_t hard_timeout = 0;
  std::uint16_t priority = 0;
  std::uint32_t buffer_id = 0xFFFFFFFF;
  std::uint16_t out_port = kPortNone;
  std::uint16_t flags = 0;
  ActionList actions;

  /// The rule this FlowMod (command add/modify) would install.
  [[nodiscard]] Rule rule() const {
    return make_rule(priority, match, actions, cookie);
  }
};

struct PacketOut {
  std::uint32_t buffer_id = 0xFFFFFFFF;
  std::uint16_t in_port = kPortNone;
  ActionList actions;
  std::vector<std::uint8_t> data;
};

/// ofp_packet_in reasons.
enum class PacketInReason : std::uint8_t { kNoMatch = 0, kAction = 1 };

struct PacketIn {
  std::uint32_t buffer_id = 0xFFFFFFFF;
  std::uint16_t total_len = 0;
  std::uint16_t in_port = 0;
  PacketInReason reason = PacketInReason::kAction;
  std::vector<std::uint8_t> data;
};

struct BarrierRequest {};
struct BarrierReply {};

struct FlowRemoved {
  Match match;
  std::uint64_t cookie = 0;
  std::uint16_t priority = 0;
  std::uint8_t reason = 0;
};

struct ErrorMsg {
  std::uint16_t type = 0;
  std::uint16_t code = 0;
  std::vector<std::uint8_t> data;
};

using MessageBody =
    std::variant<Hello, EchoRequest, EchoReply, FeaturesRequest, FeaturesReply,
                 PacketIn, FlowRemoved, PacketOut, FlowMod, BarrierRequest,
                 BarrierReply, ErrorMsg>;

/// A control-plane message: transaction id + typed body.
///
/// The xid correlates requests with replies (BarrierRequest/BarrierReply,
/// EchoRequest/EchoReply, FeaturesRequest/FeaturesReply); asynchronous
/// messages (PacketIn, FlowRemoved) carry whatever xid the sender chose.
/// See docs/PROTOCOL.md for the allocation conventions used across the
/// Monitor, the session layer and probe PacketOuts.
struct Message {
  std::uint32_t xid = 0;
  MessageBody body;

  template <typename T>
  [[nodiscard]] bool is() const {
    return std::holds_alternative<T>(body);
  }
  template <typename T>
  [[nodiscard]] const T& as() const {
    return std::get<T>(body);
  }
  template <typename T>
  [[nodiscard]] T& as() {
    return std::get<T>(body);
  }
};

/// Constructs a message with the given xid and body.
template <typename T>
Message make_message(std::uint32_t xid, T body) {
  return Message{xid, MessageBody{std::move(body)}};
}

/// The MsgType tag of a message body (for logging and framing).
MsgType message_type(const MessageBody& body);

/// Short human-readable description, e.g. "FLOW_MOD(add prio=5 ...)".
std::string message_to_string(const Message& msg);

}  // namespace monocle::openflow
