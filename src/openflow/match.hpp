// OpenFlow 1.0 match (ofp_match) with wildcard semantics.
//
// A Match constrains the abstract header: every non-L3 field is either fully
// wildcarded or exactly specified; nw_src/nw_dst support CIDR prefixes, as in
// OpenFlow 1.0.  Matches expose a per-bit ternary view (care mask + value)
// that drives data-plane lookup, overlap checks, and the SAT encoding of
// Matches(P, R) (paper Table 3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "netbase/abstract_packet.hpp"
#include "netbase/packed_bits.hpp"

namespace monocle::openflow {

using netbase::AbstractPacket;
using netbase::Field;
using netbase::PackedBits;

/// Ternary match over the abstract header.
class Match {
 public:
  /// The all-wildcard match.
  Match() = default;

  /// Exactly matches field `f` = `value`.  For nw_src/nw_dst this is a /32.
  Match& set_exact(Field f, std::uint64_t value);

  /// Matches an IPv4 prefix on nw_src or nw_dst.  `prefix_len` in [0, 32];
  /// 0 reverts the field to a full wildcard.
  Match& set_prefix(Field f, std::uint32_t addr, int prefix_len);

  /// Reverts field `f` to wildcard.
  Match& set_wildcard(Field f);

  /// Arbitrary per-bit ternary match on `f`: bits set in `care_mask` must
  /// equal the corresponding bit of `value`.  This exceeds what OpenFlow 1.0
  /// can express on the wire for most fields (simulation/analysis only; used
  /// by the Appendix A NP-hardness reduction) — wire encoding of such
  /// matches is lossy.
  Match& set_ternary(Field f, std::uint64_t value, std::uint64_t care_mask);

  /// True if `f` is (fully) wildcarded.
  [[nodiscard]] bool is_wildcard(Field f) const;

  /// True if `f` is exactly specified (prefix length 32 for IP fields).
  [[nodiscard]] bool is_exact(Field f) const;

  /// The exact value for `f`; only meaningful when !is_wildcard(f).  For
  /// prefix matches, returns the (masked) prefix bits.
  [[nodiscard]] std::uint64_t value(Field f) const;

  /// Prefix length for nw_src/nw_dst in [0,32]; non-IP fields report their
  /// width when exact and 0 when wildcarded.
  [[nodiscard]] int prefix_len(Field f) const;

  /// Per-bit care mask / value view for bit-level algorithms.
  [[nodiscard]] const PackedBits& care() const { return care_; }
  [[nodiscard]] const PackedBits& bits() const { return value_; }

  /// Does `packet` match?
  [[nodiscard]] bool matches(const AbstractPacket& packet) const;
  [[nodiscard]] bool matches(const PackedBits& packet_bits) const;

  /// Do the match sets of `*this` and `other` intersect?  (paper §5.4:
  /// rules overlap iff some packet matches both.)
  [[nodiscard]] bool overlaps(const Match& other) const;

  /// Is every packet matched by `other` also matched by `*this`?
  [[nodiscard]] bool subsumes(const Match& other) const;

  /// Structural equality (same wildcards, same values) — used for the
  /// OpenFlow "strict" FlowMod variants.
  friend bool operator==(const Match&, const Match&) = default;

  /// "dl_type=0x800 nw_src=10.0.0.0/24 ..." (wildcarded fields omitted);
  /// "*" for the all-wildcard match.
  [[nodiscard]] std::string to_string() const;

 private:
  void write_field_bits(Field f, std::uint64_t value, int care_bits);

  PackedBits care_;   // bit cared about (exact-match bit)
  PackedBits value_;  // the value required where care_ is set
};

/// True if a packet exists matching both a and b.
inline bool overlap(const Match& a, const Match& b) { return a.overlaps(b); }

}  // namespace monocle::openflow
