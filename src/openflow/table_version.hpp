// Epoch-versioned flow-table core (paper §4: monitoring a *dynamic* data
// plane).
//
// A TableVersion wraps a FlowTable behind a monotonic epoch counter and turns
// every mutation into a typed TableDelta carrying everything downstream
// layers would otherwise re-derive by scanning the table: the changed rule,
// the replaced version (if any), the rule's position, its overlap sets split
// by priority, and whether it is fully shadowed.  FlowMods enter the system
// in exactly one place (Monitor::apply_and_track, or TableVersion::apply for
// harnesses); the delta stream they produce drives
//
//  * precise probe-cache invalidation in the Monitor (no whole-table
//    match-overlap scan per FlowMod),
//  * live ProbeBatchSession maintenance (ProbeBatchSession::apply_delta
//    patches the session instead of re-encoding the table),
//  * per-shard delta routing/observation in Fleet/Multiplexer,
//  * epoch-keyed staleness: probe echoes generated against an older epoch
//    are classified stale, never as rule failures.
//
// Snapshots are copy-on-write: snapshot() is O(1) and shares the current
// immutable state; the next mutation clones only if a snapshot is still
// alive.  When no snapshot is outstanding (the Monitor steady state — its
// live sessions track mutations via apply_delta instead of pinning
// snapshots) mutations happen in place and the incrementally-maintained
// overlap index survives, so per-update cost scales with the change, not
// the table.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "openflow/flow_table.hpp"
#include "openflow/messages.hpp"

namespace monocle::openflow {

/// Monotonic table version.  Epoch 0 is the empty pre-history; every applied
/// delta advances it by one (advance_epoch() inserts a barrier epoch with no
/// table change — used by the Monitor to stale out pre-disconnect echoes).
using Epoch = std::uint64_t;

/// One rule change, with the context every consumer needs precomputed once.
struct TableDelta {
  enum class Kind : std::uint8_t {
    kAdd,     ///< rule inserted (or replaced an identical match+priority slot)
    kModify,  ///< actions/cookie of an existing slot changed (match unchanged)
    kDelete,  ///< rule removed
  };

  Kind kind = Kind::kAdd;
  /// Epoch of the table AFTER this delta applied.
  Epoch epoch = 0;
  /// The new rule version (add/modify) or the removed rule (delete).
  Rule rule;
  /// The version this delta displaced: the replaced slot of an
  /// overlap-replace add, or the pre-modify version.  Empty for plain
  /// inserts and deletes.
  std::optional<Rule> replaced;
  /// Position of the changed slot — in the post-delta table for add/modify,
  /// in the pre-delta table for delete.  Lets positional caches (e.g. a
  /// ProbeBatchSession's per-rule outcome slots) patch in O(1) slots.
  std::size_t rule_index = 0;
  /// Cookies of the OTHER rules whose match overlaps rule.match, split by
  /// priority relative to it (same-priority overlaps count as higher,
  /// mirroring FlowTable::OverlapSets).  Computed against the pre-delta
  /// table, which for all three kinds equals the post-delta sets minus the
  /// changed slot itself — exactly the rules whose cached probes a change
  /// can invalidate (their Distinguish constraints may reference the
  /// changed rule).
  std::vector<std::uint64_t> overlapping_higher;
  std::vector<std::uint64_t> overlapping_lower;
  /// Priority shadowing: some higher-priority overlapping rule's match
  /// subsumes rule.match, i.e. the changed rule can never be hit and any
  /// probe for it is kShadowed.
  bool fully_shadowed = false;

  /// All cookies whose per-rule monitoring state a consumer must touch:
  /// the overlap sets plus the changed (and replaced) rule itself.
  [[nodiscard]] std::vector<std::uint64_t> affected_cookies() const;
};

/// The versioned table: FlowTable + epoch + delta production + COW snapshots.
class TableVersion {
 public:
  /// An immutable view of the table at one epoch.  Cheap to copy and to
  /// hold; the TableVersion clones before its next mutation while any
  /// snapshot of the current state is alive.
  class Snapshot {
   public:
    Snapshot() = default;
    [[nodiscard]] bool valid() const { return table_ != nullptr; }
    [[nodiscard]] const FlowTable& table() const { return *table_; }
    [[nodiscard]] Epoch epoch() const { return epoch_; }

   private:
    friend class TableVersion;
    Snapshot(std::shared_ptr<const FlowTable> table, Epoch epoch)
        : table_(std::move(table)), epoch_(epoch) {}
    std::shared_ptr<const FlowTable> table_;
    Epoch epoch_ = 0;
  };

  TableVersion() : current_(std::make_shared<FlowTable>()) {}
  explicit TableVersion(FlowTable initial)
      : current_(std::make_shared<FlowTable>(std::move(initial))) {}

  [[nodiscard]] Epoch epoch() const { return epoch_; }
  [[nodiscard]] const FlowTable& table() const { return *current_; }
  [[nodiscard]] Snapshot snapshot() const { return {current_, epoch_}; }

  /// OFPFC_ADD (replace-on-identical-match+priority semantics).
  TableDelta apply_add(const Rule& rule);

  /// OFPFC_MODIFY_STRICT; nullopt when no slot matches (callers decide
  /// whether to fall back to add, per OF 1.0).
  std::optional<TableDelta> apply_modify_strict(const Rule& rule);

  /// OFPFC_DELETE_STRICT; nullopt when absent.
  std::optional<TableDelta> apply_delete_strict(const Match& match,
                                                std::uint16_t priority);

  /// OFPFC_DELETE (non-strict): one delta per removed rule, in descending
  /// table order.
  std::vector<TableDelta> apply_delete(const Match& pattern);

  /// Full OpenFlow 1.0 FlowMod semantics (modify of an absent rule behaves
  /// as an add).  The convenience entry point for harnesses; the Monitor
  /// uses the fine-grained methods to keep its own §4 control flow.
  std::vector<TableDelta> apply(const FlowMod& fm);

  /// Advances the epoch with no table change — a barrier separating "before"
  /// from "after" for epoch-keyed staleness (e.g. across a channel outage).
  Epoch advance_epoch() { return ++epoch_; }

 private:
  /// The table, cloned first if a snapshot still shares it.
  FlowTable& mutable_table();
  /// Fills overlap sets + shadowing of `delta` from the CURRENT (pre-apply)
  /// table.
  void fill_overlap_info(TableDelta& delta) const;

  std::shared_ptr<FlowTable> current_;
  Epoch epoch_ = 0;
};

}  // namespace monocle::openflow
