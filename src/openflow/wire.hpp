// OpenFlow 1.0 binary wire format: encode/decode + stream framing.
//
// This is the byte-level half of the control channel (docs/PROTOCOL.md):
// typed messages (messages.hpp) in, OpenFlow 1.0.1 frames out — the 8-byte
// ofp_header, the 40-byte ofp_match with its wildcards bitfield, TLV action
// lists — and back.  decode_message is total: malformed input yields
// std::nullopt, never UB, so these functions can face untrusted peers.
// FrameBuffer layers TCP-stream reassembly (and hostile-length hardening)
// on top; channel::OfSession and switchsim::WireSwitchAgent are its two
// users, one per channel end.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "openflow/messages.hpp"

namespace monocle::openflow {

/// Serializes `msg` into a complete OpenFlow 1.0 frame (header + body).
std::vector<std::uint8_t> encode_message(const Message& msg);

/// Decodes one complete frame.  Returns std::nullopt on malformed input
/// (bad version, truncated body, unknown mandatory fields).
std::optional<Message> decode_message(std::span<const std::uint8_t> frame);

/// Reassembles OpenFlow frames from a byte stream (TCP-style delivery).
/// Feed arbitrary chunks; complete messages pop out in order.
///
/// Hostile-input hardening: the 16-bit length field of each frame must be at
/// least the 8-byte OFP header and at most a configurable maximum.  A frame
/// violating either bound makes stream resynchronization impossible, so the
/// buffer enters a terminal *corrupt* state (buffered bytes are discarded,
/// further feed()s are ignored) instead of stalling or over-allocating the
/// reassembly path; transports treat corrupt() as a protocol error and drop
/// the connection.  Frames with a well-formed length that merely fail to
/// decode are skipped frame-by-frame, as before.
class FrameBuffer {
 public:
  /// Default frame-length ceiling: the largest value the 16-bit length field
  /// can encode.  Sessions that never expect jumbo messages can lower it via
  /// set_max_frame_len to bound per-connection buffering.
  static constexpr std::size_t kDefaultMaxFrameLen = 0xFFFF;
  /// The fixed ofp_header size — the smallest legal frame length.
  static constexpr std::size_t kHeaderLen = 8;

  /// Appends stream bytes.  No-op once the stream is corrupt.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete, decodable message.  Skips frames that fail
  /// to decode (after consuming their advertised length).  Returns
  /// std::nullopt when no complete frame is buffered or the stream is
  /// corrupt.
  std::optional<Message> next();

  /// Caps the advertised frame length accepted from the peer (clamped to at
  /// least the 8-byte header; values above kDefaultMaxFrameLen are
  /// meaningless since the wire field is 16-bit).
  void set_max_frame_len(std::size_t max_len);

  /// True once a frame with an out-of-bounds length field was seen; the
  /// stream cannot be resynchronized and the connection should be dropped.
  [[nodiscard]] bool corrupt() const { return corrupt_; }

  /// Discards all buffered state, including the corrupt flag (reconnect
  /// reuse).  The configured max frame length is kept.
  void reset();

  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  std::size_t max_frame_len_ = kDefaultMaxFrameLen;
  bool corrupt_ = false;
};

/// Encodes `match` into the 40-byte ofp_match layout (exposed for tests).
void encode_ofp_match(const Match& match, std::vector<std::uint8_t>& out);

/// Decodes a 40-byte ofp_match.
std::optional<Match> decode_ofp_match(std::span<const std::uint8_t> bytes);

/// Encodes an action list as OpenFlow 1.0 TLVs (exposed for tests).
std::vector<std::uint8_t> encode_actions(const ActionList& actions);

/// Decodes an action TLV list.
std::optional<ActionList> decode_actions(std::span<const std::uint8_t> bytes);

}  // namespace monocle::openflow
