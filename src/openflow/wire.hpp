// OpenFlow 1.0 binary wire format: encode/decode + stream framing.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "openflow/messages.hpp"

namespace monocle::openflow {

/// Serializes `msg` into a complete OpenFlow 1.0 frame (header + body).
std::vector<std::uint8_t> encode_message(const Message& msg);

/// Decodes one complete frame.  Returns std::nullopt on malformed input
/// (bad version, truncated body, unknown mandatory fields).
std::optional<Message> decode_message(std::span<const std::uint8_t> frame);

/// Reassembles OpenFlow frames from a byte stream (TCP-style delivery).
/// Feed arbitrary chunks; complete messages pop out in order.
class FrameBuffer {
 public:
  /// Appends stream bytes.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete, decodable message.  Skips frames that fail
  /// to decode (after consuming their advertised length).  Returns
  /// std::nullopt when no complete frame is buffered.
  std::optional<Message> next();

  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  void compact();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
};

/// Encodes `match` into the 40-byte ofp_match layout (exposed for tests).
void encode_ofp_match(const Match& match, std::vector<std::uint8_t>& out);

/// Decodes a 40-byte ofp_match.
std::optional<Match> decode_ofp_match(std::span<const std::uint8_t> bytes);

/// Encodes an action list as OpenFlow 1.0 TLVs (exposed for tests).
std::vector<std::uint8_t> encode_actions(const ActionList& actions);

/// Decodes an action TLV list.
std::optional<ActionList> decode_actions(std::span<const std::uint8_t> bytes);

}  // namespace monocle::openflow
