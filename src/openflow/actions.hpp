// OpenFlow 1.0-style actions plus the ECMP group extension (paper §3.4).
//
// A rule carries an ordered action list.  OpenFlow 1.0 semantics: set-field
// actions rewrite the working copy of the packet; each output action emits
// the *current* working copy, so a list may emit differently-rewritten copies
// on different ports.  ECMP is modeled as a select-one-of-ports action (the
// OpenFlow 1.0 era realized this with vendor extensions or hashing NORMAL
// forwarding; the paper treats it abstractly as a forwarding set).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netbase/abstract_packet.hpp"
#include "netbase/packed_bits.hpp"

namespace monocle::openflow {

using netbase::AbstractPacket;
using netbase::Field;
using netbase::PackedBits;

/// Reserved OpenFlow 1.0 port numbers (subset we use).
inline constexpr std::uint16_t kPortMax = 0xFF00;
inline constexpr std::uint16_t kPortInPort = 0xFFF8;
inline constexpr std::uint16_t kPortTable = 0xFFF9;
inline constexpr std::uint16_t kPortFlood = 0xFFFB;
inline constexpr std::uint16_t kPortAll = 0xFFFC;
inline constexpr std::uint16_t kPortController = 0xFFFD;
inline constexpr std::uint16_t kPortNone = 0xFFFF;

/// One action in an action list.
struct Action {
  enum class Type : std::uint8_t {
    kOutput,    ///< emit working packet on `port`
    kSetField,  ///< rewrite `field` to `value`
    kEcmpGroup  ///< emit working packet on ONE of `ecmp_ports` (switch-chosen)
  };

  Type type = Type::kOutput;
  std::uint16_t port = 0;                  // kOutput
  Field field = Field::InPort;             // kSetField
  std::uint64_t value = 0;                 // kSetField
  std::vector<std::uint16_t> ecmp_ports;   // kEcmpGroup

  static Action output(std::uint16_t port) {
    Action a;
    a.type = Type::kOutput;
    a.port = port;
    return a;
  }
  static Action set_field(Field f, std::uint64_t v) {
    Action a;
    a.type = Type::kSetField;
    a.field = f;
    a.value = v;
    return a;
  }
  static Action ecmp(std::vector<std::uint16_t> ports) {
    Action a;
    a.type = Type::kEcmpGroup;
    a.ecmp_ports = std::move(ports);
    return a;
  }

  friend bool operator==(const Action&, const Action&) = default;
};

using ActionList = std::vector<Action>;

/// Header rewrite in per-bit ternary form: where `mask` is set the output bit
/// equals `value`; elsewhere the input bit passes through.  This is exactly
/// the BitRewrite function of paper §3.2 / Table 4.
struct RewriteVec {
  PackedBits mask;   // bits overwritten
  PackedBits value;  // value of overwritten bits

  /// Applies the rewrite to packed header bits.
  [[nodiscard]] PackedBits apply(const PackedBits& in) const {
    return (in & ~mask) | (value & mask);
  }

  /// Composes: first apply *this, then `later` (later wins on conflicts).
  [[nodiscard]] RewriteVec then(const RewriteVec& later) const {
    RewriteVec out;
    out.mask = mask | later.mask;
    out.value = (value & ~later.mask) | later.value;
    return out;
  }

  /// Adds a set-field rewrite for `f` = `v`.
  void set_field(Field f, std::uint64_t v);

  friend bool operator==(const RewriteVec&, const RewriteVec&) = default;
};

/// Forwarding taxonomy from paper §3.4: drop and unicast are special cases
/// of multicast with |F| ∈ {0, 1}; ECMP sends to one member of F.
enum class ForwardKind : std::uint8_t {
  kMulticast,  ///< packet appears on ALL ports of the forwarding set (0, 1, or more)
  kEcmp,       ///< packet appears on exactly ONE (unknown) port of the set
};

/// The observable data-plane outcome of a rule's action list: which ports can
/// emit the packet, with which rewrite applied at each, plus the taxonomy
/// kind.  `controller` is treated as a port (kPortController).
struct Outcome {
  ForwardKind kind = ForwardKind::kMulticast;
  /// Ports that (can) emit, each with its accumulated rewrite.
  std::vector<std::pair<std::uint16_t, RewriteVec>> emissions;

  [[nodiscard]] std::vector<std::uint16_t> forwarding_set() const;
  [[nodiscard]] bool is_drop() const { return emissions.empty(); }
  [[nodiscard]] bool is_unicast() const {
    return kind == ForwardKind::kMulticast && emissions.size() == 1;
  }
  /// Rewrite observed on `port`, or nullopt when `port` is not in the set.
  [[nodiscard]] std::optional<RewriteVec> rewrite_on_port(
      std::uint16_t port) const;

  /// Structural equality; flow tables carry few distinct outcomes, which
  /// the batch probe sessions exploit to memoize DiffOutcome terms.
  friend bool operator==(const Outcome&, const Outcome&) = default;
};

/// Computes the outcome model of an action list (OpenFlow 1.0 semantics:
/// sequential application, set-fields affect subsequent outputs only).
/// An action list with both plain outputs and an ECMP group is modeled as
/// ECMP over the union (conservative; validated against in tests).
Outcome compute_outcome(const ActionList& actions);

/// Renders an action list, e.g. "set(nw_tos=4),out(2)"; "drop" when empty.
std::string actions_to_string(const ActionList& actions);

}  // namespace monocle::openflow
