#include "openflow/messages.hpp"

namespace monocle::openflow {

MsgType message_type(const MessageBody& body) {
  return std::visit(
      [](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, Hello>) return MsgType::kHello;
        if constexpr (std::is_same_v<T, EchoRequest>) return MsgType::kEchoRequest;
        if constexpr (std::is_same_v<T, EchoReply>) return MsgType::kEchoReply;
        if constexpr (std::is_same_v<T, FeaturesRequest>) {
          return MsgType::kFeaturesRequest;
        }
        if constexpr (std::is_same_v<T, FeaturesReply>) {
          return MsgType::kFeaturesReply;
        }
        if constexpr (std::is_same_v<T, PacketIn>) return MsgType::kPacketIn;
        if constexpr (std::is_same_v<T, FlowRemoved>) return MsgType::kFlowRemoved;
        if constexpr (std::is_same_v<T, PacketOut>) return MsgType::kPacketOut;
        if constexpr (std::is_same_v<T, FlowMod>) return MsgType::kFlowMod;
        if constexpr (std::is_same_v<T, BarrierRequest>) {
          return MsgType::kBarrierRequest;
        }
        if constexpr (std::is_same_v<T, BarrierReply>) return MsgType::kBarrierReply;
        if constexpr (std::is_same_v<T, ErrorMsg>) return MsgType::kError;
      },
      body);
}

std::string message_to_string(const Message& msg) {
  std::string out;
  std::visit(
      [&](const auto& b) {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, Hello>) {
          out = "HELLO";
        } else if constexpr (std::is_same_v<T, EchoRequest>) {
          out = "ECHO_REQUEST";
        } else if constexpr (std::is_same_v<T, EchoReply>) {
          out = "ECHO_REPLY";
        } else if constexpr (std::is_same_v<T, FeaturesRequest>) {
          out = "FEATURES_REQUEST";
        } else if constexpr (std::is_same_v<T, FeaturesReply>) {
          out = "FEATURES_REPLY(dpid=" + std::to_string(b.datapath_id) + ")";
        } else if constexpr (std::is_same_v<T, PacketIn>) {
          out = "PACKET_IN(in_port=" + std::to_string(b.in_port) +
                " len=" + std::to_string(b.data.size()) + ")";
        } else if constexpr (std::is_same_v<T, FlowRemoved>) {
          out = "FLOW_REMOVED(" + b.match.to_string() + ")";
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          out = "PACKET_OUT(" + actions_to_string(b.actions) +
                " len=" + std::to_string(b.data.size()) + ")";
        } else if constexpr (std::is_same_v<T, FlowMod>) {
          static constexpr const char* kCmd[] = {"add", "mod", "mod_strict",
                                                 "del", "del_strict"};
          const auto idx = static_cast<std::size_t>(b.command);
          out = std::string("FLOW_MOD(") + (idx < 5 ? kCmd[idx] : "?") +
                " prio=" + std::to_string(b.priority) + " " +
                b.match.to_string() + " -> " + actions_to_string(b.actions) +
                ")";
        } else if constexpr (std::is_same_v<T, BarrierRequest>) {
          out = "BARRIER_REQUEST";
        } else if constexpr (std::is_same_v<T, BarrierReply>) {
          out = "BARRIER_REPLY";
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          out = "ERROR(type=" + std::to_string(b.type) +
                " code=" + std::to_string(b.code) + ")";
        }
      },
      msg.body);
  out += " xid=" + std::to_string(msg.xid);
  return out;
}

}  // namespace monocle::openflow
