#include "openflow/actions.hpp"

#include <algorithm>

#include "netbase/fields.hpp"

namespace monocle::openflow {

using netbase::field_info;
using netbase::field_mask;

void RewriteVec::set_field(Field f, std::uint64_t v) {
  const auto& info = field_info(f);
  const std::uint64_t masked = v & field_mask(f);
  for (int i = 0; i < info.width; ++i) {
    mask.set(info.bit_offset + i, true);
    value.set(info.bit_offset + i, (masked >> (info.width - 1 - i)) & 1);
  }
}

std::vector<std::uint16_t> Outcome::forwarding_set() const {
  std::vector<std::uint16_t> ports;
  ports.reserve(emissions.size());
  for (const auto& [port, rewrite] : emissions) ports.push_back(port);
  std::sort(ports.begin(), ports.end());
  ports.erase(std::unique(ports.begin(), ports.end()), ports.end());
  return ports;
}

std::optional<RewriteVec> Outcome::rewrite_on_port(std::uint16_t port) const {
  for (const auto& [p, rewrite] : emissions) {
    if (p == port) return rewrite;
  }
  return std::nullopt;
}

Outcome compute_outcome(const ActionList& actions) {
  Outcome out;
  RewriteVec current;
  bool has_ecmp = false;
  for (const Action& a : actions) {
    switch (a.type) {
      case Action::Type::kOutput:
        out.emissions.emplace_back(a.port, current);
        break;
      case Action::Type::kSetField:
        current.set_field(a.field, a.value);
        break;
      case Action::Type::kEcmpGroup:
        has_ecmp = true;
        for (const std::uint16_t p : a.ecmp_ports) {
          out.emissions.emplace_back(p, current);
        }
        break;
    }
  }
  out.kind = has_ecmp ? ForwardKind::kEcmp : ForwardKind::kMulticast;
  return out;
}

std::string actions_to_string(const ActionList& actions) {
  if (actions.empty()) return "drop";
  std::string out;
  for (const Action& a : actions) {
    if (!out.empty()) out.push_back(',');
    switch (a.type) {
      case Action::Type::kOutput:
        if (a.port == kPortController) {
          out += "out(ctrl)";
        } else {
          out += "out(" + std::to_string(a.port) + ")";
        }
        break;
      case Action::Type::kSetField:
        out += "set(";
        out += field_info(a.field).name;
        out += "=" + std::to_string(a.value) + ")";
        break;
      case Action::Type::kEcmpGroup: {
        out += "ecmp(";
        for (std::size_t i = 0; i < a.ecmp_ports.size(); ++i) {
          if (i != 0) out.push_back('|');
          out += std::to_string(a.ecmp_ports[i]);
        }
        out += ")";
        break;
      }
    }
  }
  return out;
}

}  // namespace monocle::openflow
