#include "openflow/table_version.hpp"

#include <algorithm>

namespace monocle::openflow {

std::vector<std::uint64_t> TableDelta::affected_cookies() const {
  std::vector<std::uint64_t> out;
  out.reserve(overlapping_higher.size() + overlapping_lower.size() + 2);
  out.push_back(rule.cookie);
  if (replaced.has_value() && replaced->cookie != rule.cookie) {
    out.push_back(replaced->cookie);
  }
  out.insert(out.end(), overlapping_higher.begin(), overlapping_higher.end());
  out.insert(out.end(), overlapping_lower.begin(), overlapping_lower.end());
  return out;
}

FlowTable& TableVersion::mutable_table() {
  // Copy-on-write: clone only while a snapshot still shares the state.  The
  // clone's overlap index starts dirty (FlowTable's copy semantics), so a
  // holder of many snapshots pays a lazy rebuild per mutated generation;
  // the snapshot-free steady state mutates in place and keeps the
  // incrementally-patched index.
  if (current_.use_count() > 1) {
    current_ = std::make_shared<FlowTable>(*current_);
  }
  return *current_;
}

void TableVersion::fill_overlap_info(TableDelta& delta) const {
  // Computed against the pre-apply table.  overlapping() excludes the
  // changed rule's own slot (identical match+priority) by construction, so
  // for add-replace/modify/delete the sets are exactly "the other rules" —
  // and for a plain insert nothing is excluded because no such slot exists.
  const FlowTable::OverlapSets sets = current_->overlapping(delta.rule);
  delta.overlapping_higher.reserve(sets.higher.size());
  for (const Rule* r : sets.higher) {
    delta.overlapping_higher.push_back(r->cookie);
    if (!delta.fully_shadowed && r->match.subsumes(delta.rule.match)) {
      delta.fully_shadowed = true;
    }
  }
  delta.overlapping_lower.reserve(sets.lower.size());
  for (const Rule* r : sets.lower) delta.overlapping_lower.push_back(r->cookie);
}

TableDelta TableVersion::apply_add(const Rule& rule) {
  TableDelta delta;
  delta.kind = TableDelta::Kind::kAdd;
  delta.rule = rule;
  fill_overlap_info(delta);
  FlowTable& table = mutable_table();
  if (const auto replaced_at = table.find_index(rule.match, rule.priority)) {
    delta.replaced = table.rules()[*replaced_at];
  }
  const FlowTable::AddResult res = table.add_indexed(rule);
  delta.rule_index = res.index;
  delta.epoch = ++epoch_;
  return delta;
}

std::optional<TableDelta> TableVersion::apply_modify_strict(const Rule& rule) {
  const auto index = current_->find_index(rule.match, rule.priority);
  if (!index) return std::nullopt;
  TableDelta delta;
  delta.kind = TableDelta::Kind::kModify;
  delta.rule = rule;
  delta.replaced = current_->rules()[*index];
  delta.rule_index = *index;
  fill_overlap_info(delta);
  mutable_table().modify_strict(rule);
  delta.epoch = ++epoch_;
  return delta;
}

std::optional<TableDelta> TableVersion::apply_delete_strict(
    const Match& match, std::uint16_t priority) {
  const auto index = current_->find_index(match, priority);
  if (!index) return std::nullopt;
  TableDelta delta;
  delta.kind = TableDelta::Kind::kDelete;
  delta.rule = current_->rules()[*index];
  delta.rule_index = *index;
  fill_overlap_info(delta);
  mutable_table().remove_strict(match, priority);
  delta.epoch = ++epoch_;
  return delta;
}

std::vector<TableDelta> TableVersion::apply_delete(const Match& pattern) {
  // Collect the victims first: each removal is its own delta (paper §4.1
  // confirms a multi-rule delete per rule) and each delta's overlap sets are
  // computed against the table as it stands when THAT rule goes.
  std::vector<std::pair<Match, std::uint16_t>> victims;
  for (const Rule& r : current_->rules()) {
    if (pattern.subsumes(r.match)) victims.emplace_back(r.match, r.priority);
  }
  std::vector<TableDelta> deltas;
  deltas.reserve(victims.size());
  for (const auto& [match, priority] : victims) {
    if (auto delta = apply_delete_strict(match, priority)) {
      deltas.push_back(std::move(*delta));
    }
  }
  return deltas;
}

std::vector<TableDelta> TableVersion::apply(const FlowMod& fm) {
  switch (fm.command) {
    case FlowModCommand::kAdd:
      return {apply_add(fm.rule())};
    case FlowModCommand::kModify:
    case FlowModCommand::kModifyStrict: {
      if (auto delta = apply_modify_strict(fm.rule())) {
        return {std::move(*delta)};
      }
      // OpenFlow 1.0: a modify with no matching rule behaves as an add.
      return {apply_add(fm.rule())};
    }
    case FlowModCommand::kDelete:
      return apply_delete(fm.match);
    case FlowModCommand::kDeleteStrict: {
      if (auto delta = apply_delete_strict(fm.match, fm.priority)) {
        return {std::move(*delta)};
      }
      return {};
    }
  }
  return {};
}

}  // namespace monocle::openflow
