// Flow rule: priority + match + action list (+ cookie for identification).
#pragma once

#include <cstdint>
#include <string>

#include "openflow/actions.hpp"
#include "openflow/match.hpp"

namespace monocle::openflow {

/// One flow-table entry.
struct Rule {
  std::uint16_t priority = 0;
  std::uint64_t cookie = 0;  ///< controller-assigned id; Monocle keys on this
  Match match;
  ActionList actions;

  /// The observable outcome model of this rule's actions.
  [[nodiscard]] Outcome outcome() const { return compute_outcome(actions); }

  /// True if this rule can match some packet that `other` also matches.
  [[nodiscard]] bool overlaps(const Rule& other) const {
    return match.overlaps(other.match);
  }

  [[nodiscard]] std::string to_string() const {
    return "prio=" + std::to_string(priority) + " " + match.to_string() +
           " -> " + actions_to_string(actions);
  }

  friend bool operator==(const Rule&, const Rule&) = default;
};

/// Convenience builder for tests and examples.
inline Rule make_rule(std::uint16_t priority, Match match, ActionList actions,
                      std::uint64_t cookie = 0) {
  Rule r;
  r.priority = priority;
  r.cookie = cookie;
  r.match = std::move(match);
  r.actions = std::move(actions);
  return r;
}

}  // namespace monocle::openflow
