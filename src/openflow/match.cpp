#include "openflow/match.hpp"

#include <cassert>

namespace monocle::openflow {

using netbase::field_info;
using netbase::field_mask;
using netbase::field_width;

void Match::write_field_bits(Field f, std::uint64_t value, int care_bits) {
  const auto& info = field_info(f);
  assert(care_bits >= 0 && care_bits <= info.width);
  for (int i = 0; i < info.width; ++i) {
    const bool cared = i < care_bits;
    care_.set(info.bit_offset + i, cared);
    const bool bit = (value >> (info.width - 1 - i)) & 1;
    value_.set(info.bit_offset + i, cared && bit);
  }
}

Match& Match::set_exact(Field f, std::uint64_t value) {
  write_field_bits(f, value & field_mask(f), field_width(f));
  return *this;
}

Match& Match::set_prefix(Field f, std::uint32_t addr, int prefix_len) {
  assert(f == Field::IpSrc || f == Field::IpDst);
  assert(prefix_len >= 0 && prefix_len <= 32);
  const std::uint64_t masked =
      prefix_len == 0
          ? 0
          : (static_cast<std::uint64_t>(addr) &
             (~std::uint64_t{0} << (32 - prefix_len)) & 0xFFFFFFFFull);
  write_field_bits(f, masked, prefix_len);
  return *this;
}

Match& Match::set_wildcard(Field f) {
  write_field_bits(f, 0, 0);
  return *this;
}

Match& Match::set_ternary(Field f, std::uint64_t value, std::uint64_t care_mask) {
  const auto& info = field_info(f);
  const std::uint64_t mv = value & field_mask(f);
  const std::uint64_t mc = care_mask & field_mask(f);
  for (int i = 0; i < info.width; ++i) {
    const std::uint64_t bit = std::uint64_t{1} << (info.width - 1 - i);
    care_.set(info.bit_offset + i, (mc & bit) != 0);
    value_.set(info.bit_offset + i, (mc & bit) != 0 && (mv & bit) != 0);
  }
  return *this;
}

bool Match::is_wildcard(Field f) const {
  const auto& info = field_info(f);
  for (int i = 0; i < info.width; ++i) {
    if (care_.get(info.bit_offset + i)) return false;
  }
  return true;
}

bool Match::is_exact(Field f) const {
  const auto& info = field_info(f);
  for (int i = 0; i < info.width; ++i) {
    if (!care_.get(info.bit_offset + i)) return false;
  }
  return true;
}

std::uint64_t Match::value(Field f) const {
  const auto& info = field_info(f);
  std::uint64_t v = 0;
  for (int i = 0; i < info.width; ++i) {
    v = (v << 1) | (value_.get(info.bit_offset + i) ? 1 : 0);
  }
  return v;
}

int Match::prefix_len(Field f) const {
  const auto& info = field_info(f);
  int n = 0;
  for (int i = 0; i < info.width; ++i) {
    if (care_.get(info.bit_offset + i)) ++n;
  }
  return n;
}

bool Match::matches(const PackedBits& packet_bits) const {
  // Mismatch iff some cared bit differs.
  return !(((packet_bits ^ value_) & care_).any());
}

bool Match::matches(const AbstractPacket& packet) const {
  return matches(netbase::pack_header(packet));
}

bool Match::overlaps(const Match& other) const {
  // A common packet exists iff no bit is cared by both with opposite values.
  return !(((value_ ^ other.value_) & care_ & other.care_).any());
}

bool Match::subsumes(const Match& other) const {
  // Every bit we care about must be cared about by `other` with equal value.
  if (((care_ & other.care_) == care_) == false) return false;
  return !(((value_ ^ other.value_) & care_).any());
}

std::string Match::to_string() const {
  std::string out;
  for (const Field f : netbase::kAllFields) {
    if (is_wildcard(f)) continue;
    const auto& info = field_info(f);
    out.append(info.name);
    out.push_back('=');
    if (f == Field::IpSrc || f == Field::IpDst) {
      out += netbase::ipv4_to_string(static_cast<std::uint32_t>(value(f)));
      const int plen = prefix_len(f);
      if (plen < 32) {
        out.push_back('/');
        out += std::to_string(plen);
      }
    } else if (f == Field::EthSrc || f == Field::EthDst) {
      out += netbase::mac_to_string(value(f));
    } else {
      out += std::to_string(value(f));
    }
    out.push_back(' ');
  }
  if (out.empty()) return "*";
  out.pop_back();
  return out;
}

}  // namespace monocle::openflow
