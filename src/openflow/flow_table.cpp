#include "openflow/flow_table.hpp"

#include <algorithm>

namespace monocle::openflow {

void FlowTable::add(const Rule& rule) { add_indexed(rule); }

FlowTable::AddResult FlowTable::add_indexed(const Rule& rule) {
  // Replace identical (match, priority) if present.
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].priority == rule.priority && rules_[i].match == rule.match) {
      rules_[i] = rule;  // same match: overlap index stays valid
      return {i, true};
    }
  }
  // Insert before the first rule with strictly lower priority, keeping the
  // vector sorted descending and ties in insertion order.
  const auto pos = std::find_if(rules_.begin(), rules_.end(), [&](const Rule& r) {
    return r.priority < rule.priority;
  });
  const std::size_t index = static_cast<std::size_t>(pos - rules_.begin());
  rules_.insert(pos, rule);
  index_note_insert(index);
  return {index, false};
}

bool FlowTable::modify_strict(const Rule& rule) {
  for (Rule& r : rules_) {
    if (r.priority == rule.priority && r.match == rule.match) {
      r.actions = rule.actions;
      r.cookie = rule.cookie;
      return true;  // match unchanged: overlap index stays valid
    }
  }
  return false;
}

bool FlowTable::remove_strict(const Match& match, std::uint16_t priority) {
  return remove_strict_indexed(match, priority).has_value();
}

std::optional<std::size_t> FlowTable::remove_strict_indexed(
    const Match& match, std::uint16_t priority) {
  const auto index = find_index(match, priority);
  if (!index) return std::nullopt;
  rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(*index));
  index_note_erase(*index);
  return index;
}

std::optional<std::size_t> FlowTable::find_index(const Match& match,
                                                 std::uint16_t priority) const {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].priority == priority && rules_[i].match == match) return i;
  }
  return std::nullopt;
}

std::size_t FlowTable::remove_matching(const Match& pattern) {
  const std::size_t before = rules_.size();
  std::erase_if(rules_, [&](const Rule& r) { return pattern.subsumes(r.match); });
  if (rules_.size() != before) index_dirty_.store(true, std::memory_order_relaxed);
  return before - rules_.size();
}

bool FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const std::size_t before = rules_.size();
  std::erase_if(rules_, [&](const Rule& r) { return r.cookie == cookie; });
  if (rules_.size() != before) {
    index_dirty_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

const Rule* FlowTable::lookup(const PackedBits& packet_bits) const {
  for (const Rule& r : rules_) {
    if (r.match.matches(packet_bits)) return &r;
  }
  return nullptr;
}

const Rule* FlowTable::lookup(const AbstractPacket& packet) const {
  return lookup(netbase::pack_header(packet));
}

const Rule* FlowTable::lookup_excluding(const PackedBits& packet_bits,
                                        std::uint64_t skip_cookie) const {
  for (const Rule& r : rules_) {
    if (r.cookie == skip_cookie) continue;
    if (r.match.matches(packet_bits)) return &r;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Overlap index
// ---------------------------------------------------------------------------

std::optional<std::uint64_t> FlowTable::index_key(const Match& m,
                                                  int bit_offset,
                                                  int key_bits) {
  const PackedBits& care = m.care();
  const PackedBits& value = m.bits();
  std::uint64_t key = 0;
  for (int i = 0; i < key_bits; ++i) {
    const int bit = bit_offset + i;
    if (!care.get(bit)) return std::nullopt;
    key = (key << 1) | (value.get(bit) ? 1u : 0u);
  }
  return key;
}

void FlowTable::rebuild_overlap_index() const {
  index_.clear();
  index_.reserve(netbase::kFieldCount);
  for (const auto& info : netbase::kFieldTable) {
    FieldIndex fi;
    // Key on the top 16 bits at most: covers exact matches on the short
    // fields and the site-level (/16) head of IP prefixes and MACs.
    fi.key_bits = std::min(info.width, 16);
    fi.bit_offset = info.bit_offset;
    index_.push_back(std::move(fi));
  }
  for (std::uint32_t idx = 0; idx < rules_.size(); ++idx) {
    const Match& m = rules_[idx].match;
    for (FieldIndex& fi : index_) {
      if (const auto key = index_key(m, fi.bit_offset, fi.key_bits)) {
        fi.buckets[*key].push_back(idx);
      } else {
        fi.loose.push_back(idx);
      }
    }
  }
}

// Incremental maintenance.  Mutators run exclusively (concurrent queries are
// not part of the FlowTable contract during mutation), so no lock is needed;
// a dirty/unbuilt index is left dirty and rebuilt lazily as before.  The
// patch walks every posting list once — O(rules × fields) trivial integer
// ops versus a full rebuild's per-rule key extraction and hashing.

void FlowTable::index_note_insert(std::size_t pos) {
  if (index_dirty_.load(std::memory_order_relaxed)) return;
  const std::uint32_t at = static_cast<std::uint32_t>(pos);
  const Match& m = rules_[pos].match;
  for (FieldIndex& fi : index_) {
    const auto shift = [at](std::vector<std::uint32_t>& v) {
      for (std::uint32_t& idx : v) {
        if (idx >= at) ++idx;
      }
    };
    for (auto& [key, bucket] : fi.buckets) shift(bucket);
    shift(fi.loose);
    // Insert the new rule's posting, keeping the list ascending.
    std::vector<std::uint32_t>* list;
    if (const auto key = index_key(m, fi.bit_offset, fi.key_bits)) {
      list = &fi.buckets[*key];
    } else {
      list = &fi.loose;
    }
    list->insert(std::lower_bound(list->begin(), list->end(), at), at);
  }
}

void FlowTable::index_note_erase(std::size_t pos) {
  if (index_dirty_.load(std::memory_order_relaxed)) return;
  const std::uint32_t at = static_cast<std::uint32_t>(pos);
  for (FieldIndex& fi : index_) {
    const auto patch = [at](std::vector<std::uint32_t>& v) {
      std::size_t out = 0;
      for (const std::uint32_t idx : v) {
        if (idx == at) continue;
        v[out++] = idx > at ? idx - 1 : idx;
      }
      v.resize(out);
    };
    for (auto& [key, bucket] : fi.buckets) patch(bucket);
    patch(fi.loose);
  }
}

void FlowTable::ensure_overlap_index() const {
  // Fast path: the common case (clean index, batch workers querying) needs
  // no lock at all.  The mutex only serializes a rebuild.
  if (!index_dirty_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (index_dirty_.load(std::memory_order_relaxed)) {
    rebuild_overlap_index();
    index_dirty_.store(false, std::memory_order_release);
  }
}

void FlowTable::overlapping_into(const Rule& rule, OverlapSets& out) const {
  out.higher.clear();
  out.lower.clear();
  ensure_overlap_index();

  // Pick the indexed field with the smallest candidate set for this query.
  const std::vector<std::uint32_t>* best_bucket = nullptr;
  const std::vector<std::uint32_t>* best_loose = nullptr;
  std::size_t best_count = rules_.size();
  static const std::vector<std::uint32_t> kEmpty;
  for (const FieldIndex& fi : index_) {
    const auto key = index_key(rule.match, fi.bit_offset, fi.key_bits);
    if (!key) continue;  // query wildcards part of the key: field can't prune
    const auto it = fi.buckets.find(*key);
    const std::vector<std::uint32_t>& bucket =
        it != fi.buckets.end() ? it->second : kEmpty;
    const std::size_t count = bucket.size() + fi.loose.size();
    if (count < best_count) {
      best_count = count;
      best_bucket = &bucket;
      best_loose = &fi.loose;
    }
  }

  auto consider = [&](const Rule& r) {
    if (r.priority == rule.priority && r.match == rule.match) {
      return;  // the rule's own slot
    }
    if (!r.match.overlaps(rule.match)) return;
    if (r.priority >= rule.priority) {
      // Same-priority overlap goes to `higher` (conservative, see header).
      out.higher.push_back(&r);
    } else {
      out.lower.push_back(&r);
    }
  };

  if (best_bucket == nullptr) {
    // Every indexed field is (partly) wildcarded by the query: full scan.
    for (const Rule& r : rules_) consider(r);
    return;
  }
  // Merge the two ascending index lists so rules are visited in table order
  // (descending priority), exactly as the linear scan would.
  std::size_t bi = 0;
  std::size_t li = 0;
  while (bi < best_bucket->size() || li < best_loose->size()) {
    std::uint32_t idx;
    if (li >= best_loose->size() ||
        (bi < best_bucket->size() && (*best_bucket)[bi] < (*best_loose)[li])) {
      idx = (*best_bucket)[bi++];
    } else {
      idx = (*best_loose)[li++];
    }
    consider(rules_[idx]);
  }
}

const Rule* FlowTable::find_by_cookie(std::uint64_t cookie) const {
  for (const Rule& r : rules_) {
    if (r.cookie == cookie) return &r;
  }
  return nullptr;
}

const Rule* FlowTable::find_strict(const Match& match,
                                   std::uint16_t priority) const {
  for (const Rule& r : rules_) {
    if (r.priority == priority && r.match == match) return &r;
  }
  return nullptr;
}

}  // namespace monocle::openflow
