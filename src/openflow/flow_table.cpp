#include "openflow/flow_table.hpp"

#include <algorithm>

namespace monocle::openflow {

void FlowTable::add(const Rule& rule) {
  // Replace identical (match, priority) if present.
  for (Rule& r : rules_) {
    if (r.priority == rule.priority && r.match == rule.match) {
      r = rule;
      return;
    }
  }
  // Insert before the first rule with strictly lower priority, keeping the
  // vector sorted descending and ties in insertion order.
  const auto pos = std::find_if(rules_.begin(), rules_.end(), [&](const Rule& r) {
    return r.priority < rule.priority;
  });
  rules_.insert(pos, rule);
}

bool FlowTable::modify_strict(const Rule& rule) {
  for (Rule& r : rules_) {
    if (r.priority == rule.priority && r.match == rule.match) {
      r.actions = rule.actions;
      r.cookie = rule.cookie;
      return true;
    }
  }
  return false;
}

bool FlowTable::remove_strict(const Match& match, std::uint16_t priority) {
  const auto pos = std::find_if(rules_.begin(), rules_.end(), [&](const Rule& r) {
    return r.priority == priority && r.match == match;
  });
  if (pos == rules_.end()) return false;
  rules_.erase(pos);
  return true;
}

std::size_t FlowTable::remove_matching(const Match& pattern) {
  const std::size_t before = rules_.size();
  std::erase_if(rules_, [&](const Rule& r) { return pattern.subsumes(r.match); });
  return before - rules_.size();
}

bool FlowTable::remove_by_cookie(std::uint64_t cookie) {
  const std::size_t before = rules_.size();
  std::erase_if(rules_, [&](const Rule& r) { return r.cookie == cookie; });
  return rules_.size() != before;
}

const Rule* FlowTable::lookup(const PackedBits& packet_bits) const {
  for (const Rule& r : rules_) {
    if (r.match.matches(packet_bits)) return &r;
  }
  return nullptr;
}

const Rule* FlowTable::lookup(const AbstractPacket& packet) const {
  return lookup(netbase::pack_header(packet));
}

const Rule* FlowTable::lookup_excluding(const PackedBits& packet_bits,
                                        std::uint64_t skip_cookie) const {
  for (const Rule& r : rules_) {
    if (r.cookie == skip_cookie) continue;
    if (r.match.matches(packet_bits)) return &r;
  }
  return nullptr;
}

FlowTable::OverlapSets FlowTable::overlapping(const Rule& rule) const {
  OverlapSets out;
  for (const Rule& r : rules_) {
    if (r.priority == rule.priority && r.match == rule.match) {
      continue;  // the rule's own slot
    }
    if (!r.match.overlaps(rule.match)) continue;
    if (r.priority >= rule.priority) {
      // Same-priority overlap goes to `higher` (conservative, see header).
      out.higher.push_back(&r);
    } else {
      out.lower.push_back(&r);
    }
  }
  return out;
}

const Rule* FlowTable::find_by_cookie(std::uint64_t cookie) const {
  for (const Rule& r : rules_) {
    if (r.cookie == cookie) return &r;
  }
  return nullptr;
}

const Rule* FlowTable::find_strict(const Match& match,
                                   std::uint16_t priority) const {
  for (const Rule& r : rules_) {
    if (r.priority == priority && r.match == match) return &r;
  }
  return nullptr;
}

}  // namespace monocle::openflow
