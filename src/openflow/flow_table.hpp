// Priority-ordered flow table with OpenFlow 1.0 FlowMod semantics.
//
// The table is both the switch's data-plane structure (lookup) and Monocle's
// expected-state mirror (paper §2: the proxy "maintains the (expected)
// contents of flow tables in each switch").
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "openflow/rule.hpp"

namespace monocle::openflow {

/// Priority-ordered rule container.
///
/// Rules are kept sorted by descending priority; insertion order breaks ties
/// (the OpenFlow spec leaves overlapping same-priority behaviour undefined —
/// paper footnote 1 — so any deterministic order is acceptable).
class FlowTable {
 public:
  FlowTable() = default;
  // The lazily built overlap index (and its guard mutex) is derived state;
  // copies and moves transfer the rules only.  The moved-from table's index
  // must be marked stale too: its cached rule positions refer to the rules
  // that just moved away.
  FlowTable(const FlowTable& o) : rules_(o.rules_) {}
  FlowTable(FlowTable&& o) noexcept : rules_(std::move(o.rules_)) {
    o.index_dirty_.store(true, std::memory_order_relaxed);
  }
  FlowTable& operator=(const FlowTable& o) {
    if (this != &o) {
      rules_ = o.rules_;
      index_dirty_.store(true, std::memory_order_relaxed);
    }
    return *this;
  }
  FlowTable& operator=(FlowTable&& o) noexcept {
    rules_ = std::move(o.rules_);
    index_dirty_.store(true, std::memory_order_relaxed);
    o.index_dirty_.store(true, std::memory_order_relaxed);
    return *this;
  }

  /// OFPFC_ADD: inserts `rule`; replaces an existing entry with identical
  /// match and priority (OpenFlow overlap-replace semantics).
  void add(const Rule& rule);

  /// add() that also reports WHERE: the slot index of the inserted/replaced
  /// rule and whether an existing slot was replaced.  TableVersion uses this
  /// to stamp positions into TableDeltas.
  struct AddResult {
    std::size_t index = 0;
    bool replaced = false;
  };
  AddResult add_indexed(const Rule& rule);

  /// OFPFC_MODIFY_STRICT: replaces actions of the entry with identical match
  /// and priority; returns false if absent (no-op then, per OF 1.0 the mod
  /// behaves as an add — callers decide).
  bool modify_strict(const Rule& rule);

  /// OFPFC_DELETE_STRICT: removes the entry with identical match & priority.
  bool remove_strict(const Match& match, std::uint16_t priority);

  /// remove_strict() that reports the removed slot's (pre-removal) index.
  std::optional<std::size_t> remove_strict_indexed(const Match& match,
                                                   std::uint16_t priority);

  /// Slot index of the entry with identical match & priority, if present.
  [[nodiscard]] std::optional<std::size_t> find_index(
      const Match& match, std::uint16_t priority) const;

  /// OFPFC_DELETE: removes every rule whose match set is a subset of
  /// `pattern` (OpenFlow non-strict delete).  Returns the removed count.
  std::size_t remove_matching(const Match& pattern);

  /// Removes the rule with this cookie; returns true if found.
  bool remove_by_cookie(std::uint64_t cookie);

  /// Highest-priority rule matching `packet`, or nullptr (table miss).
  [[nodiscard]] const Rule* lookup(const AbstractPacket& packet) const;
  [[nodiscard]] const Rule* lookup(const PackedBits& packet_bits) const;

  /// Highest-priority matching rule *excluding* the rule with `skip_cookie` —
  /// "what would happen if the probed rule were missing" (paper §3.1).
  [[nodiscard]] const Rule* lookup_excluding(const PackedBits& packet_bits,
                                             std::uint64_t skip_cookie) const;

  /// All rules overlapping `rule`, split by priority relative to it.
  /// Same-priority overlapping rules are reported in `higher` (conservative:
  /// the spec leaves their interaction undefined, so probes must avoid them).
  ///
  /// Backed by a lazily built per-field value index: candidates are drawn
  /// from the bucket of the query's most discriminating indexed field plus
  /// that field's loose rules, instead of scanning the whole table — the
  /// dominant cost of whole-table probe generation (§8.2).  Results are
  /// identical to a linear scan, in descending-priority table order.
  struct OverlapSets {
    std::vector<const Rule*> higher;  // descending priority
    std::vector<const Rule*> lower;   // descending priority
  };
  [[nodiscard]] OverlapSets overlapping(const Rule& rule) const {
    OverlapSets out;
    overlapping_into(rule, out);
    return out;
  }

  /// overlapping() into a caller-owned result, so per-query callers can
  /// reuse the vectors' capacity.
  void overlapping_into(const Rule& rule, OverlapSets& out) const;

  /// Builds the overlap index now if it is stale.  overlapping() does this
  /// on demand (thread-safely); batch probe generation calls it once up
  /// front so worker threads never contend on the build.
  void ensure_overlap_index() const;

  [[nodiscard]] const Rule* find_by_cookie(std::uint64_t cookie) const;
  [[nodiscard]] const Rule* find_strict(const Match& match,
                                        std::uint16_t priority) const;

  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

  void clear() {
    rules_.clear();
    index_dirty_.store(true, std::memory_order_relaxed);
  }

  /// Applies `fn` to every rule (descending priority).
  void for_each(const std::function<void(const Rule&)>& fn) const {
    for (const Rule& r : rules_) fn(r);
  }

 private:
  // One per-field posting structure of the overlap index.  A rule whose
  // match fully specifies the top `key_bits` of the field lands in the
  // bucket keyed by those bits; every other rule (wildcard, short prefix,
  // exotic ternary mask) is "loose" on this field.  Two rules can only
  // overlap if they share a bucket key or one of them is loose, so
  // bucket[key] ∪ loose is a complete candidate set for keyable queries.
  struct FieldIndex {
    int key_bits = 0;
    int bit_offset = 0;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
    std::vector<std::uint32_t> loose;  // rule indices, ascending (= priority order)
  };

  void rebuild_overlap_index() const;
  /// Incremental index maintenance: single-slot insert/erase patch the
  /// postings in place (shifting stored positions) instead of marking the
  /// whole index dirty — under sustained rule churn (PR 4) a full rebuild
  /// per FlowMod would dominate the delta path.  No-ops while the index is
  /// dirty/unbuilt (the next ensure_overlap_index rebuilds anyway).
  void index_note_insert(std::size_t pos);
  void index_note_erase(std::size_t pos);
  /// Extracts the index key of `m` on the field at `offset`/`key_bits`;
  /// nullopt when the match does not fully specify those bits.
  static std::optional<std::uint64_t> index_key(const Match& m, int bit_offset,
                                                int key_bits);

  // Descending priority; stable insertion order within equal priorities.
  std::vector<Rule> rules_;

  // Lazily (re)built overlap index; the dirty flag is atomic so queries on
  // a clean index (the batch workers' steady state) skip the mutex, which
  // only serializes the rebuild itself.
  mutable std::mutex index_mutex_;
  mutable std::atomic<bool> index_dirty_{true};
  mutable std::vector<FieldIndex> index_;
};

}  // namespace monocle::openflow
