// Priority-ordered flow table with OpenFlow 1.0 FlowMod semantics.
//
// The table is both the switch's data-plane structure (lookup) and Monocle's
// expected-state mirror (paper §2: the proxy "maintains the (expected)
// contents of flow tables in each switch").
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "openflow/rule.hpp"

namespace monocle::openflow {

/// Priority-ordered rule container.
///
/// Rules are kept sorted by descending priority; insertion order breaks ties
/// (the OpenFlow spec leaves overlapping same-priority behaviour undefined —
/// paper footnote 1 — so any deterministic order is acceptable).
class FlowTable {
 public:
  /// OFPFC_ADD: inserts `rule`; replaces an existing entry with identical
  /// match and priority (OpenFlow overlap-replace semantics).
  void add(const Rule& rule);

  /// OFPFC_MODIFY_STRICT: replaces actions of the entry with identical match
  /// and priority; returns false if absent (no-op then, per OF 1.0 the mod
  /// behaves as an add — callers decide).
  bool modify_strict(const Rule& rule);

  /// OFPFC_DELETE_STRICT: removes the entry with identical match & priority.
  bool remove_strict(const Match& match, std::uint16_t priority);

  /// OFPFC_DELETE: removes every rule whose match set is a subset of
  /// `pattern` (OpenFlow non-strict delete).  Returns the removed count.
  std::size_t remove_matching(const Match& pattern);

  /// Removes the rule with this cookie; returns true if found.
  bool remove_by_cookie(std::uint64_t cookie);

  /// Highest-priority rule matching `packet`, or nullptr (table miss).
  [[nodiscard]] const Rule* lookup(const AbstractPacket& packet) const;
  [[nodiscard]] const Rule* lookup(const PackedBits& packet_bits) const;

  /// Highest-priority matching rule *excluding* the rule with `skip_cookie` —
  /// "what would happen if the probed rule were missing" (paper §3.1).
  [[nodiscard]] const Rule* lookup_excluding(const PackedBits& packet_bits,
                                             std::uint64_t skip_cookie) const;

  /// All rules overlapping `rule`, split by priority relative to it.
  /// Same-priority overlapping rules are reported in `higher` (conservative:
  /// the spec leaves their interaction undefined, so probes must avoid them).
  struct OverlapSets {
    std::vector<const Rule*> higher;  // descending priority
    std::vector<const Rule*> lower;   // descending priority
  };
  [[nodiscard]] OverlapSets overlapping(const Rule& rule) const;

  [[nodiscard]] const Rule* find_by_cookie(std::uint64_t cookie) const;
  [[nodiscard]] const Rule* find_strict(const Match& match,
                                        std::uint16_t priority) const;

  [[nodiscard]] std::size_t size() const { return rules_.size(); }
  [[nodiscard]] bool empty() const { return rules_.empty(); }
  [[nodiscard]] const std::vector<Rule>& rules() const { return rules_; }

  void clear() { rules_.clear(); }

  /// Applies `fn` to every rule (descending priority).
  void for_each(const std::function<void(const Rule&)>& fn) const {
    for (const Rule& r : rules_) fn(r);
  }

 private:
  // Descending priority; stable insertion order within equal priorities.
  std::vector<Rule> rules_;
};

}  // namespace monocle::openflow
