#include "openflow/wire.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "netbase/byteio.hpp"

namespace monocle::openflow {

using netbase::ByteReader;
using netbase::ByteWriter;
using netbase::Field;

namespace {

// ofp_flow_wildcards bits.
constexpr std::uint32_t kFwInPort = 1u << 0;
constexpr std::uint32_t kFwDlVlan = 1u << 1;
constexpr std::uint32_t kFwDlSrc = 1u << 2;
constexpr std::uint32_t kFwDlDst = 1u << 3;
constexpr std::uint32_t kFwDlType = 1u << 4;
constexpr std::uint32_t kFwNwProto = 1u << 5;
constexpr std::uint32_t kFwTpSrc = 1u << 6;
constexpr std::uint32_t kFwTpDst = 1u << 7;
constexpr int kFwNwSrcShift = 8;
constexpr int kFwNwDstShift = 14;
constexpr std::uint32_t kFwDlVlanPcp = 1u << 20;
constexpr std::uint32_t kFwNwTos = 1u << 21;

// Action type codes.
constexpr std::uint16_t kActOutput = 0;
constexpr std::uint16_t kActSetVlanVid = 1;
constexpr std::uint16_t kActSetVlanPcp = 2;
constexpr std::uint16_t kActSetDlSrc = 4;
constexpr std::uint16_t kActSetDlDst = 5;
constexpr std::uint16_t kActSetNwSrc = 6;
constexpr std::uint16_t kActSetNwDst = 7;
constexpr std::uint16_t kActSetNwTos = 8;
constexpr std::uint16_t kActSetTpSrc = 9;
constexpr std::uint16_t kActSetTpDst = 10;
constexpr std::uint16_t kActVendor = 0xFFFF;

// Our vendor id + subtype for the ECMP group extension.
constexpr std::uint32_t kVendorMonocle = 0x004D4E43;  // "MNC"
constexpr std::uint16_t kVendorSubtypeEcmp = 1;

void write_header(ByteWriter& w, MsgType type, std::uint32_t xid) {
  w.u8(kOfpVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // length patched later
  w.u32(xid);
}

}  // namespace

void encode_ofp_match(const Match& match, std::vector<std::uint8_t>& out) {
  std::uint32_t wildcards = 0;
  auto wc = [&](Field f, std::uint32_t bit) {
    if (match.is_wildcard(f)) wildcards |= bit;
  };
  wc(Field::InPort, kFwInPort);
  wc(Field::VlanId, kFwDlVlan);
  wc(Field::EthSrc, kFwDlSrc);
  wc(Field::EthDst, kFwDlDst);
  wc(Field::EthType, kFwDlType);
  wc(Field::IpProto, kFwNwProto);
  wc(Field::TpSrc, kFwTpSrc);
  wc(Field::TpDst, kFwTpDst);
  wc(Field::VlanPcp, kFwDlVlanPcp);
  wc(Field::IpTos, kFwNwTos);
  const std::uint32_t src_wild =
      static_cast<std::uint32_t>(32 - match.prefix_len(Field::IpSrc));
  const std::uint32_t dst_wild =
      static_cast<std::uint32_t>(32 - match.prefix_len(Field::IpDst));
  wildcards |= src_wild << kFwNwSrcShift;
  wildcards |= dst_wild << kFwNwDstShift;

  ByteWriter w(40);
  w.u32(wildcards);
  w.u16(static_cast<std::uint16_t>(match.value(Field::InPort)));
  w.u48(match.value(Field::EthSrc));
  w.u48(match.value(Field::EthDst));
  w.u16(static_cast<std::uint16_t>(match.value(Field::VlanId)));
  w.u8(static_cast<std::uint8_t>(match.value(Field::VlanPcp)));
  w.u8(0);  // pad
  w.u16(static_cast<std::uint16_t>(match.value(Field::EthType)));
  w.u8(static_cast<std::uint8_t>(match.value(Field::IpTos)) << 2);
  w.u8(static_cast<std::uint8_t>(match.value(Field::IpProto)));
  w.zeros(2);
  w.u32(static_cast<std::uint32_t>(match.value(Field::IpSrc)));
  w.u32(static_cast<std::uint32_t>(match.value(Field::IpDst)));
  w.u16(static_cast<std::uint16_t>(match.value(Field::TpSrc)));
  w.u16(static_cast<std::uint16_t>(match.value(Field::TpDst)));
  const auto& bytes = w.data();
  out.insert(out.end(), bytes.begin(), bytes.end());
}

std::optional<Match> decode_ofp_match(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 40) return std::nullopt;
  ByteReader r(bytes);
  const std::uint32_t wildcards = r.u32();
  Match m;
  const std::uint16_t in_port = r.u16();
  const std::uint64_t dl_src = r.u48();
  const std::uint64_t dl_dst = r.u48();
  const std::uint16_t dl_vlan = r.u16();
  const std::uint8_t dl_vlan_pcp = r.u8();
  r.skip(1);
  const std::uint16_t dl_type = r.u16();
  const std::uint8_t nw_tos = r.u8();
  const std::uint8_t nw_proto = r.u8();
  r.skip(2);
  const std::uint32_t nw_src = r.u32();
  const std::uint32_t nw_dst = r.u32();
  const std::uint16_t tp_src = r.u16();
  const std::uint16_t tp_dst = r.u16();
  if (!r.ok()) return std::nullopt;

  if (!(wildcards & kFwInPort)) m.set_exact(Field::InPort, in_port);
  if (!(wildcards & kFwDlSrc)) m.set_exact(Field::EthSrc, dl_src);
  if (!(wildcards & kFwDlDst)) m.set_exact(Field::EthDst, dl_dst);
  if (!(wildcards & kFwDlVlan)) m.set_exact(Field::VlanId, dl_vlan & 0xFFF);
  if (!(wildcards & kFwDlVlanPcp)) m.set_exact(Field::VlanPcp, dl_vlan_pcp & 7);
  if (!(wildcards & kFwDlType)) m.set_exact(Field::EthType, dl_type);
  if (!(wildcards & kFwNwTos)) m.set_exact(Field::IpTos, (nw_tos >> 2) & 0x3F);
  if (!(wildcards & kFwNwProto)) m.set_exact(Field::IpProto, nw_proto);
  const int src_prefix = 32 - std::min(32, static_cast<int>((wildcards >> kFwNwSrcShift) & 0x3F));
  const int dst_prefix = 32 - std::min(32, static_cast<int>((wildcards >> kFwNwDstShift) & 0x3F));
  if (src_prefix > 0) m.set_prefix(Field::IpSrc, nw_src, src_prefix);
  if (dst_prefix > 0) m.set_prefix(Field::IpDst, nw_dst, dst_prefix);
  if (!(wildcards & kFwTpSrc)) m.set_exact(Field::TpSrc, tp_src);
  if (!(wildcards & kFwTpDst)) m.set_exact(Field::TpDst, tp_dst);
  return m;
}

std::vector<std::uint8_t> encode_actions(const ActionList& actions) {
  ByteWriter w;
  for (const Action& a : actions) {
    switch (a.type) {
      case Action::Type::kOutput:
        w.u16(kActOutput);
        w.u16(8);
        w.u16(a.port);
        w.u16(0xFFFF);  // max_len (to controller)
        break;
      case Action::Type::kSetField:
        switch (a.field) {
          case Field::VlanId:
            w.u16(kActSetVlanVid);
            w.u16(8);
            w.u16(static_cast<std::uint16_t>(a.value));
            w.zeros(2);
            break;
          case Field::VlanPcp:
            w.u16(kActSetVlanPcp);
            w.u16(8);
            w.u8(static_cast<std::uint8_t>(a.value));
            w.zeros(3);
            break;
          case Field::EthSrc:
          case Field::EthDst:
            w.u16(a.field == Field::EthSrc ? kActSetDlSrc : kActSetDlDst);
            w.u16(16);
            w.u48(a.value);
            w.zeros(6);
            break;
          case Field::IpSrc:
          case Field::IpDst:
            w.u16(a.field == Field::IpSrc ? kActSetNwSrc : kActSetNwDst);
            w.u16(8);
            w.u32(static_cast<std::uint32_t>(a.value));
            break;
          case Field::IpTos:
            w.u16(kActSetNwTos);
            w.u16(8);
            w.u8(static_cast<std::uint8_t>(a.value) << 2);
            w.zeros(3);
            break;
          case Field::TpSrc:
          case Field::TpDst:
            w.u16(a.field == Field::TpSrc ? kActSetTpSrc : kActSetTpDst);
            w.u16(8);
            w.u16(static_cast<std::uint16_t>(a.value));
            w.zeros(2);
            break;
          default:
            assert(false && "field not rewritable in OpenFlow 1.0");
        }
        break;
      case Action::Type::kEcmpGroup: {
        // Vendor TLV: header(4) + vendor(4) + subtype(2) + count(2) + ports,
        // padded to a multiple of 8.
        const std::size_t body = 4 + 4 + 2 + 2 + 2 * a.ecmp_ports.size();
        const std::size_t padded = (body + 7) & ~std::size_t{7};
        w.u16(kActVendor);
        w.u16(static_cast<std::uint16_t>(padded));
        w.u32(kVendorMonocle);
        w.u16(kVendorSubtypeEcmp);
        w.u16(static_cast<std::uint16_t>(a.ecmp_ports.size()));
        for (const std::uint16_t p : a.ecmp_ports) w.u16(p);
        w.zeros(padded - body);
        break;
      }
    }
  }
  return w.take();
}

std::optional<ActionList> decode_actions(std::span<const std::uint8_t> bytes) {
  ActionList out;
  std::size_t pos = 0;
  while (pos + 4 <= bytes.size()) {
    ByteReader r(bytes.subspan(pos));
    const std::uint16_t type = r.u16();
    const std::uint16_t len = r.u16();
    if (len < 8 || pos + len > bytes.size()) return std::nullopt;
    switch (type) {
      case kActOutput:
        out.push_back(Action::output(r.u16()));
        break;
      case kActSetVlanVid:
        out.push_back(Action::set_field(Field::VlanId, r.u16() & 0xFFF));
        break;
      case kActSetVlanPcp:
        out.push_back(Action::set_field(Field::VlanPcp, r.u8() & 7));
        break;
      case kActSetDlSrc:
        out.push_back(Action::set_field(Field::EthSrc, r.u48()));
        break;
      case kActSetDlDst:
        out.push_back(Action::set_field(Field::EthDst, r.u48()));
        break;
      case kActSetNwSrc:
        out.push_back(Action::set_field(Field::IpSrc, r.u32()));
        break;
      case kActSetNwDst:
        out.push_back(Action::set_field(Field::IpDst, r.u32()));
        break;
      case kActSetNwTos:
        out.push_back(Action::set_field(Field::IpTos, (r.u8() >> 2) & 0x3F));
        break;
      case kActSetTpSrc:
        out.push_back(Action::set_field(Field::TpSrc, r.u16()));
        break;
      case kActSetTpDst:
        out.push_back(Action::set_field(Field::TpDst, r.u16()));
        break;
      case kActVendor: {
        const std::uint32_t vendor = r.u32();
        if (vendor != kVendorMonocle) return std::nullopt;
        const std::uint16_t subtype = r.u16();
        if (subtype != kVendorSubtypeEcmp) return std::nullopt;
        const std::uint16_t count = r.u16();
        std::vector<std::uint16_t> ports;
        ports.reserve(count);
        for (std::uint16_t i = 0; i < count; ++i) ports.push_back(r.u16());
        if (!r.ok()) return std::nullopt;
        out.push_back(Action::ecmp(std::move(ports)));
        break;
      }
      default:
        return std::nullopt;
    }
    if (!r.ok()) return std::nullopt;
    pos += len;
  }
  if (pos != bytes.size()) return std::nullopt;
  return out;
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  ByteWriter w(64);
  const MsgType type = message_type(msg.body);
  write_header(w, type, msg.xid);

  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, Hello> ||
                      std::is_same_v<T, FeaturesRequest> ||
                      std::is_same_v<T, BarrierRequest> ||
                      std::is_same_v<T, BarrierReply>) {
          // header only
        } else if constexpr (std::is_same_v<T, EchoRequest> ||
                             std::is_same_v<T, EchoReply>) {
          w.bytes(body.payload);
        } else if constexpr (std::is_same_v<T, FeaturesReply>) {
          w.u64(body.datapath_id);
          w.u32(body.n_buffers);
          w.u8(body.n_tables);
          w.zeros(3);
          w.u32(0);  // capabilities
          w.u32(0);  // actions
          for (const PortDesc& p : body.ports) {
            w.u16(p.port_no);
            w.u48(p.hw_addr);
            char name[16] = {};
            std::memcpy(name, p.name.data(), std::min<std::size_t>(15, p.name.size()));
            w.bytes(std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(name), 16));
            w.zeros(24);  // config, state, curr, advertised, supported, peer
          }
        } else if constexpr (std::is_same_v<T, PacketIn>) {
          w.u32(body.buffer_id);
          w.u16(body.total_len != 0
                    ? body.total_len
                    : static_cast<std::uint16_t>(body.data.size()));
          w.u16(body.in_port);
          w.u8(static_cast<std::uint8_t>(body.reason));
          w.u8(0);
          w.bytes(body.data);
        } else if constexpr (std::is_same_v<T, FlowRemoved>) {
          std::vector<std::uint8_t> match_bytes;
          encode_ofp_match(body.match, match_bytes);
          w.bytes(match_bytes);
          w.u64(body.cookie);
          w.u16(body.priority);
          w.u8(body.reason);
          w.u8(0);
          w.u32(0);  // duration_sec
          w.u32(0);  // duration_nsec
          w.u16(0);  // idle_timeout
          w.zeros(2);
          w.u64(0);  // packet_count
          w.u64(0);  // byte_count
        } else if constexpr (std::is_same_v<T, PacketOut>) {
          const auto action_bytes = encode_actions(body.actions);
          w.u32(body.buffer_id);
          w.u16(body.in_port);
          w.u16(static_cast<std::uint16_t>(action_bytes.size()));
          w.bytes(action_bytes);
          w.bytes(body.data);
        } else if constexpr (std::is_same_v<T, FlowMod>) {
          std::vector<std::uint8_t> match_bytes;
          encode_ofp_match(body.match, match_bytes);
          w.bytes(match_bytes);
          w.u64(body.cookie);
          w.u16(static_cast<std::uint16_t>(body.command));
          w.u16(body.idle_timeout);
          w.u16(body.hard_timeout);
          w.u16(body.priority);
          w.u32(body.buffer_id);
          w.u16(body.out_port);
          w.u16(body.flags);
          w.bytes(encode_actions(body.actions));
        } else if constexpr (std::is_same_v<T, ErrorMsg>) {
          w.u16(body.type);
          w.u16(body.code);
          w.bytes(body.data);
        }
      },
      msg.body);

  auto bytes = w.take();
  bytes[2] = static_cast<std::uint8_t>(bytes.size() >> 8);
  bytes[3] = static_cast<std::uint8_t>(bytes.size());
  return bytes;
}

std::optional<Message> decode_message(std::span<const std::uint8_t> frame) {
  if (frame.size() < 8) return std::nullopt;
  ByteReader r(frame);
  const std::uint8_t version = r.u8();
  const std::uint8_t type = r.u8();
  const std::uint16_t length = r.u16();
  const std::uint32_t xid = r.u32();
  if (version != kOfpVersion || length != frame.size()) return std::nullopt;
  const auto body = frame.subspan(8);

  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello:
      return make_message(xid, Hello{});
    case MsgType::kEchoRequest:
      return make_message(xid,
                          EchoRequest{{body.begin(), body.end()}});
    case MsgType::kEchoReply:
      return make_message(xid, EchoReply{{body.begin(), body.end()}});
    case MsgType::kFeaturesRequest:
      return make_message(xid, FeaturesRequest{});
    case MsgType::kFeaturesReply: {
      if (body.size() < 24) return std::nullopt;
      ByteReader b(body);
      FeaturesReply fr;
      fr.datapath_id = b.u64();
      fr.n_buffers = b.u32();
      fr.n_tables = b.u8();
      b.skip(3);
      b.skip(8);  // capabilities + actions
      while (b.remaining() >= 48) {
        PortDesc p;
        p.port_no = b.u16();
        p.hw_addr = b.u48();
        const auto name = b.bytes(16);
        p.name.assign(reinterpret_cast<const char*>(name.data()),
                      strnlen(reinterpret_cast<const char*>(name.data()), 16));
        b.skip(24);
        fr.ports.push_back(std::move(p));
      }
      if (!b.ok()) return std::nullopt;
      return make_message(xid, std::move(fr));
    }
    case MsgType::kPacketIn: {
      if (body.size() < 10) return std::nullopt;
      ByteReader b(body);
      PacketIn pi;
      pi.buffer_id = b.u32();
      pi.total_len = b.u16();
      pi.in_port = b.u16();
      pi.reason = static_cast<PacketInReason>(b.u8());
      b.skip(1);
      const auto data = body.subspan(10);
      pi.data.assign(data.begin(), data.end());
      return make_message(xid, std::move(pi));
    }
    case MsgType::kFlowRemoved: {
      if (body.size() < 80) return std::nullopt;
      const auto match = decode_ofp_match(body.subspan(0, 40));
      if (!match) return std::nullopt;
      ByteReader b(body.subspan(40));
      FlowRemoved fr;
      fr.match = *match;
      fr.cookie = b.u64();
      fr.priority = b.u16();
      fr.reason = b.u8();
      return make_message(xid, std::move(fr));
    }
    case MsgType::kPacketOut: {
      if (body.size() < 8) return std::nullopt;
      ByteReader b(body);
      PacketOut po;
      po.buffer_id = b.u32();
      po.in_port = b.u16();
      const std::uint16_t actions_len = b.u16();
      if (8 + static_cast<std::size_t>(actions_len) > body.size()) {
        return std::nullopt;
      }
      auto actions = decode_actions(body.subspan(8, actions_len));
      if (!actions) return std::nullopt;
      po.actions = std::move(*actions);
      const auto data = body.subspan(8 + actions_len);
      po.data.assign(data.begin(), data.end());
      return make_message(xid, std::move(po));
    }
    case MsgType::kFlowMod: {
      if (body.size() < 64) return std::nullopt;
      const auto match = decode_ofp_match(body.subspan(0, 40));
      if (!match) return std::nullopt;
      ByteReader b(body.subspan(40));
      FlowMod fm;
      fm.match = *match;
      fm.cookie = b.u64();
      fm.command = static_cast<FlowModCommand>(b.u16());
      fm.idle_timeout = b.u16();
      fm.hard_timeout = b.u16();
      fm.priority = b.u16();
      fm.buffer_id = b.u32();
      fm.out_port = b.u16();
      fm.flags = b.u16();
      auto actions = decode_actions(body.subspan(64 - 40 + 40));
      if (!actions) return std::nullopt;
      fm.actions = std::move(*actions);
      return make_message(xid, std::move(fm));
    }
    case MsgType::kBarrierRequest:
      return make_message(xid, BarrierRequest{});
    case MsgType::kBarrierReply:
      return make_message(xid, BarrierReply{});
    case MsgType::kError: {
      if (body.size() < 4) return std::nullopt;
      ByteReader b(body);
      ErrorMsg e;
      e.type = b.u16();
      e.code = b.u16();
      const auto data = body.subspan(4);
      e.data.assign(data.begin(), data.end());
      return make_message(xid, std::move(e));
    }
    default:
      return std::nullopt;
  }
}

void FrameBuffer::feed(std::span<const std::uint8_t> bytes) {
  if (corrupt_) return;
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void FrameBuffer::set_max_frame_len(std::size_t max_len) {
  max_frame_len_ = std::clamp(max_len, kHeaderLen, kDefaultMaxFrameLen);
}

void FrameBuffer::reset() {
  buf_.clear();
  pos_ = 0;
  corrupt_ = false;
}

std::optional<Message> FrameBuffer::next() {
  for (;;) {
    if (corrupt_) return std::nullopt;
    if (buf_.size() - pos_ < kHeaderLen) return std::nullopt;
    const std::uint16_t length =
        static_cast<std::uint16_t>((buf_[pos_ + 2] << 8) | buf_[pos_ + 3]);
    if (length < kHeaderLen || length > max_frame_len_) {
      // Corrupt framing: resynchronization is impossible.  Drop everything
      // and refuse further input; the owner must tear the connection down.
      corrupt_ = true;
      buf_.clear();
      pos_ = 0;
      return std::nullopt;
    }
    if (buf_.size() - pos_ < length) return std::nullopt;
    auto msg = decode_message(
        std::span<const std::uint8_t>(buf_.data() + pos_, length));
    pos_ += length;
    compact();
    if (msg) return msg;
    // Undecodable frame: skip it and try the next one.
  }
}

void FrameBuffer::compact() {
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace monocle::openflow
