#include "switchsim/sim_backend.hpp"

namespace monocle::switchsim {

void SimSwitchBackend::start() {
  if (started_) return;
  started_ = true;
  // The sink lambda reads receiver_ at call time, so receivers may be
  // (re)bound after start() — the Testbed rebinds on shard teardown.
  net_->at(sw_)->set_control_sink([this](const openflow::Message& msg) {
    if (receiver_) receiver_(msg);
  });
  if (state_handler_) state_handler_(true);
}

void SimSwitchBackend::stop() {
  if (!started_) return;
  started_ = false;
  net_->at(sw_)->set_control_sink({});
}

}  // namespace monocle::switchsim
