// Simulated OpenFlow switch: control plane (per SwitchModel) + data plane.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <random>
#include <vector>

#include "monocle/runtime.hpp"
#include "netbase/abstract_packet.hpp"
#include "openflow/flow_table.hpp"
#include "openflow/messages.hpp"
#include "switchsim/event_queue.hpp"
#include "switchsim/switch_model.hpp"

namespace monocle::switchsim {

class Network;

/// A packet traveling through the simulated data plane: parsed header plus
/// the opaque payload (probe metadata or application bytes).  Wire bytes are
/// only materialized at PacketIn boundaries.
struct SimPacket {
  netbase::AbstractPacket header;
  std::vector<std::uint8_t> payload;
};

/// Per-switch counters.
struct SwitchStats {
  std::uint64_t flowmods_processed = 0;
  std::uint64_t barriers_processed = 0;
  std::uint64_t packet_outs = 0;
  std::uint64_t packet_ins_sent = 0;
  std::uint64_t packet_ins_dropped = 0;
  std::uint64_t packets_forwarded = 0;
  std::uint64_t packets_dropped = 0;  // table miss or drop rule
};

/// The simulated switch.
///
/// Control messages arrive via on_control_message (the Network applies
/// channel latency); replies/PacketIns leave via the control sink.  Data
/// plane packets arrive via receive_packet and leave through the Network.
class SimSwitch {
 public:
  SimSwitch(SwitchId id, SwitchModel model, EventQueue* clock, Network* net);

  [[nodiscard]] SwitchId id() const { return id_; }
  [[nodiscard]] const SwitchModel& model() const { return model_; }

  /// Wires the switch→controller direction.
  void set_control_sink(std::function<void(const openflow::Message&)> sink) {
    sink_ = std::move(sink);
  }

  /// Controller→switch message entry point (already past channel latency).
  void on_control_message(const openflow::Message& msg);

  /// Data-plane packet entry point.
  void receive_packet(std::uint16_t in_port, const SimPacket& packet);

  /// --- fault injection (the control plane never learns about these) ----
  /// Removes a rule from the data plane only (a "failed rule", §8.1.1).
  bool fail_rule(std::uint64_t cookie);
  /// Removes all rules forwarding (solely) to `port` — models the data-plane
  /// effect of a dead line card; use Network::fail_link for link failures.
  std::size_t fail_rules_to_port(std::uint16_t port);

  /// Direct data-plane access for tests/harnesses.
  [[nodiscard]] const openflow::FlowTable& dataplane() const { return table_; }
  openflow::FlowTable& mutable_dataplane() { return table_; }

  [[nodiscard]] const SwitchStats& stats() const { return stats_; }

  /// Time at which the update engine will have drained everything queued so
  /// far (exposed for tests of the performance model).
  [[nodiscard]] SimTime engine_free_at() const { return engine_busy_until_; }

 private:
  void process_flow_mod(const openflow::FlowMod& fm);
  void commit_flow_mod(const openflow::FlowMod& fm);
  void schedule_batch_commit();
  void execute_actions(const openflow::ActionList& actions,
                       std::uint16_t in_port, const SimPacket& packet);
  void emit_packet_in(std::uint16_t in_port, const SimPacket& packet);
  std::uint16_t pick_ecmp_port(const std::vector<std::uint16_t>& ports,
                               const SimPacket& packet) const;
  SimTime seconds(double s) const {
    return static_cast<SimTime>(s * 1e9);
  }

  SwitchId id_;
  SwitchModel model_;
  EventQueue* clock_;
  Network* net_;
  std::function<void(const openflow::Message&)> sink_;

  openflow::FlowTable table_;  // the data plane

  // Virtual-time servers.
  SimTime engine_busy_until_ = 0;     // update engine
  SimTime dataplane_busy_until_ = 0;  // kRateLimited commit engine
  SimTime msg_busy_until_ = 0;        // PacketOut messaging path
  SimTime packetin_free_at_ = 0;      // PacketIn rate limiter

  std::vector<openflow::FlowMod> pending_batch_;  // kBatched commits
  bool batch_timer_armed_ = false;
  std::mt19937_64 rng_;

  SwitchStats stats_;
};

}  // namespace monocle::switchsim
