// Fault-injection layer: the failure-scenario zoo (ISSUE 6).
//
// A FaultPlan is attached to a Network (Network::set_fault_plan) and is
// consulted on the hot paths of the simulator:
//
//   * Network::emit          — gray failures (probabilistic per-port drop),
//                              flapping links (deterministic on/off duty
//                              cycles) and congestion-induced loss windows.
//   * SimSwitch::emit_packet_in — delayed and reordered PacketIns (extra
//                              per-message jitter; unequal draws reorder
//                              deliveries naturally).
//   * SimSwitch::commit_flow_mod / receive_packet — partial brain death:
//                              the control channel keeps answering barriers
//                              and echoes but the data plane wedges (commits
//                              are accepted-then-discarded; optionally the
//                              forwarding path drops everything too).
//
// All randomness is drawn from one seeded engine owned by the plan, so a
// scenario replays identically for a given seed.  Correlated multi-element
// failures are expressed by attaching the same fault kind to several
// elements (see workloads::scenarios helpers); the plan itself is just the
// union of per-element faults plus drop accounting by cause.
#pragma once

#include <cstdint>
#include <map>
#include <random>
#include <utility>

#include "switchsim/event_queue.hpp"

namespace monocle::switchsim {

/// Why the plan dropped (or perturbed) something — keyed stats for benches.
struct FaultStats {
  std::uint64_t gray_drops = 0;        ///< probabilistic per-port loss
  std::uint64_t flap_drops = 0;        ///< link in a flap "down" window
  std::uint64_t congestion_drops = 0;  ///< switch-wide congestion loss
  std::uint64_t packetins_delayed = 0; ///< PacketIns given extra jitter
  std::uint64_t flowmods_wedged = 0;   ///< commits discarded by brain death
  std::uint64_t dataplane_wedge_drops = 0;  ///< packets eaten by brain death

  [[nodiscard]] std::uint64_t total_drops() const {
    return gray_drops + flap_drops + congestion_drops + dataplane_wedge_drops;
  }
};

/// Per-(switch, port) faults.  A port fault applies to packets *emitted* on
/// that port; attach to both endpoints for a symmetric link fault (the
/// add_* helpers on FaultPlan do this for you via the scenario library).
struct PortFault {
  /// Gray failure: each packet emitted here is dropped with this
  /// probability (0 = healthy, 1 = hard failure).
  double drop_probability = 0.0;
  /// Flapping: when flap_period > 0 the port is dead for the first
  /// `flap_down` of every `flap_period`, offset by `flap_phase` — a
  /// deterministic duty cycle, independent of the RNG.
  SimTime flap_period = 0;
  SimTime flap_down = 0;
  SimTime flap_phase = 0;
};

/// "Not scheduled" sentinel for activation times (SimTime is unsigned).
inline constexpr SimTime kFaultNever = ~SimTime{0};

/// Per-switch faults.
struct SwitchFault {
  /// Congestion: every packet emitted by this switch is lost with this
  /// probability inside [congestion_start, congestion_end) (end 0 = open).
  double congestion_loss = 0.0;
  SimTime congestion_start = 0;
  SimTime congestion_end = 0;
  /// PacketIn jitter: each PacketIn is delayed by an extra uniform draw in
  /// [packetin_delay_min, packetin_delay_max]; unequal draws reorder.
  SimTime packetin_delay_min = 0;
  SimTime packetin_delay_max = 0;
  /// Partial brain death: from `brain_death_at` on (kFaultNever = off) the
  /// data-plane commit engine silently discards FlowMods while the control
  /// channel stays responsive; if `brain_death_drops_dataplane` the
  /// forwarding path wedges too (all packets eaten).
  SimTime brain_death_at = kFaultNever;
  bool brain_death_drops_dataplane = false;
};

class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0x5CE9A210)
      : rng_(seed * 0x9E3779B97F4A7C15ull + 0xDA7A1055) {}

  /// Mutable per-element fault entries (created on first access).
  PortFault& port_fault(SwitchId sw, std::uint16_t port) {
    return ports_[{sw, port}];
  }
  SwitchFault& switch_fault(SwitchId sw) { return switches_[sw]; }

  void clear() {
    ports_.clear();
    switches_.clear();
  }

  /// --- queried by the simulator ---------------------------------------
  /// Should a packet emitted at (`from`, `port`) toward (`peer_sw`,
  /// `peer_port`) be dropped right now?  Checks gray/flap faults on BOTH
  /// link endpoints (a gray receiver loses frames just like a gray sender)
  /// plus the emitter's congestion window.  Pass peer_sw = 0 for host/edge
  /// deliveries (only the emitting endpoint is consulted).
  bool should_drop(SwitchId from, std::uint16_t port, SwitchId peer_sw,
                   std::uint16_t peer_port, SimTime now);

  /// Extra PacketIn delivery delay for `sw` (0 when no jitter configured).
  SimTime packetin_extra_delay(SwitchId sw, SimTime now);

  /// Brain death: true when `sw`'s commit engine is wedged at `now`.
  bool commits_wedged(SwitchId sw, SimTime now);
  /// Brain death with a wedged forwarding path too.
  bool dataplane_wedged(SwitchId sw, SimTime now) const;

  /// True when the flap duty cycle has (`sw`, `port`) down at `now`.
  [[nodiscard]] bool flapped_down(SwitchId sw, std::uint16_t port,
                                  SimTime now) const;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  using EndPoint = std::pair<SwitchId, std::uint16_t>;

  [[nodiscard]] bool chance(double p);

  std::map<EndPoint, PortFault> ports_;
  std::map<SwitchId, SwitchFault> switches_;
  std::mt19937_64 rng_;
  FaultStats stats_;
};

}  // namespace monocle::switchsim
