#include "switchsim/fault_plan.hpp"

namespace monocle::switchsim {

bool FaultPlan::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::uniform_real_distribution<double>(0.0, 1.0)(rng_) < p;
}

bool FaultPlan::flapped_down(SwitchId sw, std::uint16_t port,
                             SimTime now) const {
  const auto it = ports_.find({sw, port});
  if (it == ports_.end() || it->second.flap_period == 0) return false;
  const PortFault& f = it->second;
  const SimTime t = (now + f.flap_phase) % f.flap_period;
  return t < f.flap_down;
}

bool FaultPlan::should_drop(SwitchId from, std::uint16_t port,
                            SwitchId peer_sw, std::uint16_t peer_port,
                            SimTime now) {
  // Flap duty cycles on either endpoint (deterministic, checked first so a
  // flap window is attributed as a flap even on a gray port).
  if (flapped_down(from, port, now) ||
      (peer_sw != 0 && flapped_down(peer_sw, peer_port, now))) {
    ++stats_.flap_drops;
    return true;
  }
  // Gray loss on either endpoint (sender- or receiver-side frame loss).
  const auto gray = [this](SwitchId sw, std::uint16_t p) {
    const auto it = ports_.find({sw, p});
    return it != ports_.end() && chance(it->second.drop_probability);
  };
  if (gray(from, port) || (peer_sw != 0 && gray(peer_sw, peer_port))) {
    ++stats_.gray_drops;
    return true;
  }
  // Congestion window on the emitting switch.
  if (const auto it = switches_.find(from); it != switches_.end()) {
    const SwitchFault& f = it->second;
    const bool in_window =
        now >= f.congestion_start &&
        (f.congestion_end == 0 || now < f.congestion_end);
    if (in_window && chance(f.congestion_loss)) {
      ++stats_.congestion_drops;
      return true;
    }
  }
  return false;
}

SimTime FaultPlan::packetin_extra_delay(SwitchId sw, SimTime now) {
  (void)now;
  const auto it = switches_.find(sw);
  if (it == switches_.end()) return 0;
  const SwitchFault& f = it->second;
  if (f.packetin_delay_max == 0) return 0;
  ++stats_.packetins_delayed;
  if (f.packetin_delay_max <= f.packetin_delay_min) {
    return f.packetin_delay_min;
  }
  return std::uniform_int_distribution<SimTime>(
      f.packetin_delay_min, f.packetin_delay_max)(rng_);
}

bool FaultPlan::commits_wedged(SwitchId sw, SimTime now) {
  const auto it = switches_.find(sw);
  if (it == switches_.end() || now < it->second.brain_death_at) return false;
  ++stats_.flowmods_wedged;
  return true;
}

bool FaultPlan::dataplane_wedged(SwitchId sw, SimTime now) const {
  const auto it = switches_.find(sw);
  return it != switches_.end() && it->second.brain_death_drops_dataplane &&
         now >= it->second.brain_death_at;
}

}  // namespace monocle::switchsim
