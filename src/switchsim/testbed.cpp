#include "switchsim/testbed.hpp"

namespace monocle::switchsim {

Testbed::Testbed(EventQueue* clock, const topo::Topology& topo,
                 const SwitchModel& model, Options options)
    : clock_(clock), options_(std::move(options)) {
  net_ = std::make_unique<Network>(clock_);
  mux_ = std::make_unique<Multiplexer>(net_.get());

  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    dpids_.push_back(dpid_of(n));
    net_->add_switch(dpid_of(n),
                     options_.model_for ? options_.model_for(n) : model);
    next_port_[n] = 1;
  }
  const std::vector<SwitchId>& dpids = dpids_;
  // Instantiate links; port numbers assigned first-come per node.
  for (topo::NodeId a = 0; a < topo.node_count(); ++a) {
    for (const topo::NodeId b : topo.neighbors(a)) {
      if (b < a) continue;  // each undirected edge once
      const std::uint16_t pa = next_port_[a]++;
      const std::uint16_t pb = next_port_[b]++;
      ports_.port[{a, b}] = pa;
      ports_.port[{b, a}] = pb;
      net_->connect(dpid_of(a), pa, dpid_of(b), pb);
    }
  }

  plan_ = CatchPlan::build(topo, dpids, options_.strategy);

  if (!options_.with_monocle) {
    // Vanilla mode: wire switches straight to the controller handler.
    for (const SwitchId id : dpids) {
      net_->at(id)->set_control_sink([this, id](const openflow::Message& m) {
        if (controller_handler_) controller_handler_(id, m);
      });
    }
    return;
  }

  for (const SwitchId id : dpids) {
    if (options_.monocle_for && !options_.monocle_for(id - 1)) {
      // Unproxied switch (e.g. hypervisor with reliable acks) — but probes
      // caught by its catching rules must still reach the Multiplexer.
      net_->at(id)->set_control_sink([this, id](const openflow::Message& m) {
        if (m.is<openflow::PacketIn>() &&
            mux_->on_packet_in(id, m.as<openflow::PacketIn>())) {
          return;
        }
        if (controller_handler_) controller_handler_(id, m);
      });
      mux_->set_switch_sender(id, [this, id](const openflow::Message& m) {
        net_->send_to_switch(id, m);
      });
      continue;
    }
    Monitor::Config cfg = options_.monitor;
    cfg.switch_id = id;
    Monitor::Hooks hooks;
    hooks.to_switch = [this, id](const openflow::Message& m) {
      net_->send_to_switch(id, m);
    };
    hooks.to_controller = [this, id](const openflow::Message& m) {
      if (controller_handler_) controller_handler_(id, m);
    };
    hooks.inject = [this, id](std::uint16_t in_port,
                              std::vector<std::uint8_t> bytes) {
      return mux_->inject(id, in_port, std::move(bytes));
    };
    auto monitor = std::make_unique<Monitor>(cfg, clock_, net_.get(), &plan_,
                                             std::move(hooks));
    mux_->register_monitor(id, monitor.get());
    mux_->set_switch_sender(
        id, [this, id](const openflow::Message& m) { net_->send_to_switch(id, m); });
    // Switch -> Monocle: probes peel off to the Multiplexer, the rest goes
    // through the Monitor to the controller.
    Monitor* mon = monitor.get();
    net_->at(id)->set_control_sink([this, id, mon](const openflow::Message& m) {
      if (m.is<openflow::PacketIn>() &&
          mux_->on_packet_in(id, m.as<openflow::PacketIn>())) {
        return;  // consumed as a probe
      }
      mon->on_switch_message(m);
    });
    monitors_.emplace(id, std::move(monitor));
  }
}

void Testbed::start_monitoring() {
  for (auto& [id, monitor] : monitors_) {
    monitor->install_infrastructure();
    monitor->start();
  }
  // Unproxied switches still carry catching rules so probes for monitored
  // neighbors can be collected there.
  if (options_.with_monocle) {
    for (const SwitchId id : dpids_) {
      if (monitors_.contains(id)) continue;
      for (const openflow::FlowMod& fm : plan_.rules_for(id)) {
        net_->send_to_switch(id, openflow::make_message(0, fm));
      }
    }
  }
}

void Testbed::controller_send(SwitchId sw, const openflow::Message& msg) {
  const auto it = monitors_.find(sw);
  if (it != monitors_.end()) {
    it->second->on_controller_message(msg);
  } else {
    net_->send_to_switch(sw, msg);
  }
}

Monitor* Testbed::monitor(SwitchId sw) const {
  const auto it = monitors_.find(sw);
  return it == monitors_.end() ? nullptr : it->second.get();
}

std::uint16_t Testbed::host_port(topo::NodeId n) const {
  const auto it = next_port_.find(n);
  return it == next_port_.end() ? 1 : it->second;
}

}  // namespace monocle::switchsim
