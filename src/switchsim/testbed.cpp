#include "switchsim/testbed.hpp"

#include <utility>

namespace monocle::switchsim {

Testbed::Testbed(EventQueue* clock, const topo::Topology& topo,
                 const SwitchModel& model, Options options)
    : clock_(clock), options_(std::move(options)) {
  net_ = std::make_unique<Network>(clock_);
  mux_ = std::make_unique<Multiplexer>(net_.get());

  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    dpids_.push_back(dpid_of(n));
    net_->add_switch(dpid_of(n),
                     options_.model_for ? options_.model_for(n) : model);
    next_port_[n] = 1;
  }
  const std::vector<SwitchId>& dpids = dpids_;
  // Instantiate links; port numbers assigned first-come per node.
  for (topo::NodeId a = 0; a < topo.node_count(); ++a) {
    for (const topo::NodeId b : topo.neighbors(a)) {
      if (b < a) continue;  // each undirected edge once
      const std::uint16_t pa = next_port_[a]++;
      const std::uint16_t pb = next_port_[b]++;
      ports_.port[{a, b}] = pa;
      ports_.port[{b, a}] = pb;
      net_->connect(dpid_of(a), pa, dpid_of(b), pb);
    }
  }

  plan_ = CatchPlan::build(topo, dpids, options_.strategy);

  // One control-channel backend per switch; all Monitor/Multiplexer wiring
  // below goes through them (a live deployment swaps in ChannelBackends).
  for (const SwitchId id : dpids) {
    auto backend = std::make_unique<SimSwitchBackend>(net_.get(), id);
    backend->start();
    backends_.emplace(id, std::move(backend));
  }

  if (options_.use_fleet && options_.with_monocle) {
    Fleet::Config fleet_cfg = options_.fleet;
    fleet_cfg.monitor = options_.monitor;  // single source of truth
    // Shard teardown: purge every path that still points at the destroyed
    // Monitor — the Multiplexer's routing entry (in-flight probes are then
    // consumed and dropped) and the backend's receive path, which reverts
    // to the unproxied wiring (probes to the mux, the rest straight to the
    // controller).
    fleet_cfg.on_shard_removed = [this](SwitchId sw) {
      mux_->unregister_monitor(sw);
      mux_->bind_backend(sw, *backends_.at(sw), nullptr,
                         [this, sw](const openflow::Message& m) {
                           if (controller_handler_) controller_handler_(sw, m);
                         });
    };
    fleet_ = std::make_unique<Fleet>(std::move(fleet_cfg), clock_, net_.get(),
                                     &plan_);
  }

  if (!options_.with_monocle) {
    // Vanilla mode: backends deliver straight to the controller handler.
    for (const SwitchId id : dpids) {
      backends_.at(id)->set_receiver([this, id](const openflow::Message& m) {
        if (controller_handler_) controller_handler_(id, m);
      });
    }
    return;
  }

  for (const SwitchId id : dpids) {
    SimSwitchBackend& backend = *backends_.at(id);
    if (options_.monocle_for && !options_.monocle_for(id - 1)) {
      // Unproxied switch (e.g. hypervisor with reliable acks) — probes
      // caught by its catching rules still peel off to the Multiplexer.
      mux_->bind_backend(id, backend, nullptr,
                         [this, id](const openflow::Message& m) {
                           if (controller_handler_) controller_handler_(id, m);
                         });
      continue;
    }
    Monitor::Hooks hooks;
    hooks.to_controller = [this, id](const openflow::Message& m) {
      if (controller_handler_) controller_handler_(id, m);
    };
    if (fleet_) {
      fleet_->add_shard(id, backend, *mux_, std::move(hooks));
      continue;
    }
    Monitor::Config cfg = options_.monitor;
    cfg.switch_id = id;
    hooks.to_switch = [&backend](const openflow::Message& m) {
      backend.send(m);
    };
    const SwitchOrdinal ord = mux_->intern(id);
    hooks.inject = [this, ord](std::uint16_t in_port,
                               std::span<const std::uint8_t> bytes) {
      return mux_->inject_at(ord, in_port, bytes);
    };
    auto monitor = std::make_unique<Monitor>(cfg, clock_, net_.get(), &plan_,
                                             std::move(hooks));
    Monitor* mon = monitor.get();
    monitors_.emplace(id, std::move(monitor));
    mux_->register_monitor(id, mon);
    mux_->bind_backend(id, backend, mon);
  }
  if (fleet_) {
    // Coloring-driven rounds from the full topology; unmonitored nodes stay
    // in the schedule (their rounds no-op) so the conflict structure is the
    // real fabric's.
    fleet_->set_schedule(
        RoundSchedule::build(topo, dpids, options_.fleet_schedule));
  }
}

void Testbed::start_monitoring() {
  if (fleet_) {
    fleet_->start();
  } else {
    for (auto& [id, monitor] : monitors_) {
      monitor->install_infrastructure();
      monitor->start();
    }
  }
  // Unproxied switches still carry catching rules so probes for monitored
  // neighbors can be collected there.
  if (options_.with_monocle) {
    for (const SwitchId id : dpids_) {
      if (monitor(id) != nullptr) continue;
      for (const openflow::FlowMod& fm : plan_.rules_for(id)) {
        backends_.at(id)->send(openflow::make_message(0, fm));
      }
    }
  }
}

void Testbed::controller_send(SwitchId sw, const openflow::Message& msg) {
  if (Monitor* mon = monitor(sw)) {
    mon->on_controller_message(msg);
  } else {
    backends_.at(sw)->send(msg);
  }
}

void Testbed::drive_churn(SwitchId sw,
                          std::shared_ptr<workloads::ChurnGenerator> gen,
                          netbase::SimTime interval, std::size_t count) {
  if (count == 0) return;
  // Self-rescheduling tick: one FlowMod per interval, via the same
  // controller path a real update stream would take.  The generator is
  // shared so the caller can read live_rules()/emitted() as the stream
  // plays.
  clock_->schedule(interval, [this, sw, gen = std::move(gen), interval,
                              count]() mutable {
    // next() advances emitted(); sequence the two calls explicitly so the
    // xid does not depend on argument evaluation order.
    const openflow::FlowMod fm = gen->next();
    const auto xid = static_cast<std::uint32_t>(gen->emitted());
    controller_send(sw, openflow::make_message(xid, fm));
    drive_churn(sw, std::move(gen), interval, count - 1);
  });
}

Monitor* Testbed::monitor(SwitchId sw) const {
  if (fleet_) return fleet_->monitor(sw);
  const auto it = monitors_.find(sw);
  return it == monitors_.end() ? nullptr : it->second.get();
}

channel::SwitchBackend* Testbed::backend(SwitchId sw) const {
  const auto it = backends_.find(sw);
  return it == backends_.end() ? nullptr : it->second.get();
}

std::uint16_t Testbed::host_port(topo::NodeId n) const {
  const auto it = next_port_.find(n);
  return it == next_port_.end() ? 1 : it->second;
}

}  // namespace monocle::switchsim
