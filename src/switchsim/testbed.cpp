#include "switchsim/testbed.hpp"

#include <utility>

namespace monocle::switchsim {

Testbed::Testbed(EventQueue* clock, const topo::Topology& topo,
                 const SwitchModel& model, Options options)
    : clock_(clock), options_(std::move(options)) {
  net_ = std::make_unique<Network>(clock_);
  mux_ = std::make_unique<Multiplexer>(net_.get());

  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    dpids_.push_back(dpid_of(n));
    net_->add_switch(dpid_of(n),
                     options_.model_for ? options_.model_for(n) : model);
    next_port_[n] = 1;
  }
  const std::vector<SwitchId>& dpids = dpids_;
  // Instantiate links; port numbers assigned first-come per node.
  for (topo::NodeId a = 0; a < topo.node_count(); ++a) {
    for (const topo::NodeId b : topo.neighbors(a)) {
      if (b < a) continue;  // each undirected edge once
      const std::uint16_t pa = next_port_[a]++;
      const std::uint16_t pb = next_port_[b]++;
      ports_.port[{a, b}] = pa;
      ports_.port[{b, a}] = pb;
      net_->connect(dpid_of(a), pa, dpid_of(b), pb);
    }
  }

  plan_ = CatchPlan::build(topo, dpids, options_.strategy);

  if (options_.use_fleet && options_.with_monocle) {
    Fleet::Config fleet_cfg = options_.fleet;
    fleet_cfg.monitor = options_.monitor;  // single source of truth
    // Shard teardown: purge every path that still points at the destroyed
    // Monitor — the Multiplexer's routing entry (in-flight probes are then
    // consumed and dropped) and the switch's control sink, which reverts to
    // the unproxied wiring (probes to the mux, the rest to the controller).
    fleet_cfg.on_shard_removed = [this](SwitchId sw) {
      mux_->unregister_monitor(sw);
      net_->at(sw)->set_control_sink([this, sw](const openflow::Message& m) {
        if (m.is<openflow::PacketIn>() &&
            mux_->on_packet_in(sw, m.as<openflow::PacketIn>())) {
          return;
        }
        if (controller_handler_) controller_handler_(sw, m);
      });
    };
    fleet_ = std::make_unique<Fleet>(std::move(fleet_cfg), clock_, net_.get(),
                                     &plan_);
  }

  if (!options_.with_monocle) {
    // Vanilla mode: wire switches straight to the controller handler.
    for (const SwitchId id : dpids) {
      net_->at(id)->set_control_sink([this, id](const openflow::Message& m) {
        if (controller_handler_) controller_handler_(id, m);
      });
    }
    return;
  }

  for (const SwitchId id : dpids) {
    if (options_.monocle_for && !options_.monocle_for(id - 1)) {
      // Unproxied switch (e.g. hypervisor with reliable acks) — but probes
      // caught by its catching rules must still reach the Multiplexer.
      net_->at(id)->set_control_sink([this, id](const openflow::Message& m) {
        if (m.is<openflow::PacketIn>() &&
            mux_->on_packet_in(id, m.as<openflow::PacketIn>())) {
          return;
        }
        if (controller_handler_) controller_handler_(id, m);
      });
      mux_->set_switch_sender(id, [this, id](const openflow::Message& m) {
        net_->send_to_switch(id, m);
      });
      continue;
    }
    Monitor::Config cfg = options_.monitor;
    cfg.switch_id = id;
    Monitor::Hooks hooks;
    hooks.to_switch = [this, id](const openflow::Message& m) {
      net_->send_to_switch(id, m);
    };
    hooks.to_controller = [this, id](const openflow::Message& m) {
      if (controller_handler_) controller_handler_(id, m);
    };
    hooks.inject = [this, id](std::uint16_t in_port,
                              std::vector<std::uint8_t> bytes) {
      return mux_->inject(id, in_port, std::move(bytes));
    };
    Monitor* mon;
    if (fleet_) {
      mon = fleet_->add_shard(id, std::move(hooks));
    } else {
      auto monitor = std::make_unique<Monitor>(cfg, clock_, net_.get(), &plan_,
                                               std::move(hooks));
      mon = monitor.get();
      monitors_.emplace(id, std::move(monitor));
    }
    mux_->register_monitor(id, mon);
    mux_->set_switch_sender(
        id, [this, id](const openflow::Message& m) { net_->send_to_switch(id, m); });
    // Switch -> Monocle: probes peel off to the Multiplexer, the rest goes
    // through the Monitor to the controller.
    net_->at(id)->set_control_sink([this, id, mon](const openflow::Message& m) {
      if (m.is<openflow::PacketIn>() &&
          mux_->on_packet_in(id, m.as<openflow::PacketIn>())) {
        return;  // consumed as a probe
      }
      mon->on_switch_message(m);
    });
  }
  if (fleet_) {
    // Coloring-driven rounds from the full topology; unmonitored nodes stay
    // in the schedule (their rounds no-op) so the conflict structure is the
    // real fabric's.
    fleet_->set_schedule(
        RoundSchedule::build(topo, dpids, options_.fleet_schedule));
  }
}

void Testbed::start_monitoring() {
  if (fleet_) {
    fleet_->start();
  } else {
    for (auto& [id, monitor] : monitors_) {
      monitor->install_infrastructure();
      monitor->start();
    }
  }
  // Unproxied switches still carry catching rules so probes for monitored
  // neighbors can be collected there.
  if (options_.with_monocle) {
    for (const SwitchId id : dpids_) {
      if (monitor(id) != nullptr) continue;
      for (const openflow::FlowMod& fm : plan_.rules_for(id)) {
        net_->send_to_switch(id, openflow::make_message(0, fm));
      }
    }
  }
}

void Testbed::controller_send(SwitchId sw, const openflow::Message& msg) {
  if (Monitor* mon = monitor(sw)) {
    mon->on_controller_message(msg);
  } else {
    net_->send_to_switch(sw, msg);
  }
}

Monitor* Testbed::monitor(SwitchId sw) const {
  if (fleet_) return fleet_->monitor(sw);
  const auto it = monitors_.find(sw);
  return it == monitors_.end() ? nullptr : it->second.get();
}

std::uint16_t Testbed::host_port(topo::NodeId n) const {
  const auto it = next_port_.find(n);
  return it == next_port_.end() ? 1 : it->second;
}

}  // namespace monocle::switchsim
