#include "switchsim/wire_agent.hpp"

#include <string>

namespace monocle::switchsim {

using openflow::Message;

WireSwitchAgent::WireSwitchAgent(SimSwitch* sw, Network* net,
                                 channel::Connection* conn,
                                 std::size_t max_frame_len)
    : sw_(sw), net_(net), conn_(conn) {
  frames_.set_max_frame_len(max_frame_len);
  conn_->set_callbacks({
      [this](std::span<const std::uint8_t> bytes) { on_bytes(bytes); },
      [this] {
        closed_ = true;
        conn_ = nullptr;
      },
  });
  // Everything the switch says goes out as wire frames.  This replaces any
  // previous sink (e.g. an earlier agent's, after a reconnect); the alive
  // guard makes a stale sink inert once its agent is destroyed.
  sw_->set_control_sink([this, alive = alive_](const Message& msg) {
    if (*alive) send(msg);
  });
  send(openflow::make_message(0, openflow::Hello{}));
}

WireSwitchAgent::~WireSwitchAgent() {
  *alive_ = false;
  if (conn_ != nullptr) {
    conn_->set_callbacks({});
    conn_->close();
    conn_ = nullptr;
  }
}

void WireSwitchAgent::send(const Message& msg) {
  if (closed_ || conn_ == nullptr || !conn_->is_open()) return;
  conn_->send(openflow::encode_message(msg));
  ++stats_.frames_tx;
}

void WireSwitchAgent::on_bytes(std::span<const std::uint8_t> bytes) {
  frames_.feed(bytes);
  while (const auto msg = frames_.next()) {
    ++stats_.frames_rx;
    handle(*msg);
  }
  if (frames_.corrupt() && conn_ != nullptr) {
    // Hostile framing: drop the connection, as a hardware switch would.
    conn_->close();
    conn_ = nullptr;
    closed_ = true;
  }
}

void WireSwitchAgent::handle(const Message& msg) {
  if (msg.is<openflow::Hello>()) {
    return;  // our HELLO already went out at attach time
  }
  if (msg.is<openflow::EchoRequest>()) {
    ++stats_.echoes_answered;
    send(openflow::make_message(
        msg.xid, openflow::EchoReply{msg.as<openflow::EchoRequest>().payload}));
    return;
  }
  if (msg.is<openflow::EchoReply>()) {
    return;  // we never send echo requests; stray replies are ignored
  }
  if (msg.is<openflow::FeaturesRequest>()) {
    openflow::FeaturesReply fr;
    fr.datapath_id = sw_->id();
    fr.n_buffers = 256;
    fr.n_tables = 1;
    for (const std::uint16_t port : net_->ports(sw_->id())) {
      openflow::PortDesc desc;
      desc.port_no = port;
      desc.hw_addr = (sw_->id() << 16) | port;
      desc.name = "eth" + std::to_string(port);
      fr.ports.push_back(std::move(desc));
    }
    send(openflow::make_message(msg.xid, std::move(fr)));
    return;
  }
  // FlowMods, PacketOuts, BarrierRequests: straight into the switch's
  // control plane (replies re-emerge through the sink above).
  sw_->on_control_message(msg);
}

}  // namespace monocle::switchsim
