// Discrete-event simulation core.
//
// A deterministic event queue with cancellable one-shot events; doubles as
// the monocle::Runtime implementation that backs Monitor timers.  Events at
// equal timestamps run in scheduling order (FIFO), which keeps control
// message ordering faithful.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "monocle/runtime.hpp"
#include "netbase/time.hpp"

namespace monocle::switchsim {

using netbase::SimTime;

class EventQueue final : public Runtime {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }

  std::uint64_t schedule(SimTime delay, std::function<void()> fn) override {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules at an absolute time (clamped to `now`).
  std::uint64_t schedule_at(SimTime when, std::function<void()> fn);

  /// Cancels a pending event; harmless for already-fired / already-cancelled
  /// ids and for the 0 sentinel (see the Runtime contract in runtime.hpp:
  /// ids are never reissued while live, and 0 is never issued).
  void cancel(std::uint64_t timer_id) override { live_.erase(timer_id); }

  /// Test hook: forces the next issued timer id (exercises the id-wrap and
  /// live-id-skip paths of the Runtime contract without 2^64 schedules).
  void set_next_timer_id_for_test(std::uint64_t id) { next_id_ = id; }

  /// Runs the next pending event; returns false when the queue is empty.
  bool run_one();

  /// Runs events until the queue empties or simulated time would exceed
  /// `until`; simulated time ends at exactly `until` if the queue drains.
  /// Returns the number of events executed.
  std::uint64_t run_until(SimTime until);

  /// Runs to quiescence (or `max_events`, as a runaway guard).
  std::uint64_t run_all(std::uint64_t max_events = UINT64_MAX);

  [[nodiscard]] std::size_t pending() const { return live_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;  // ids not yet fired or cancelled
};

}  // namespace monocle::switchsim
