// Traffic generation and accounting for the end-to-end experiments (§8.1.2).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "netbase/abstract_packet.hpp"
#include "switchsim/event_queue.hpp"
#include "switchsim/network.hpp"

namespace monocle::switchsim {

/// Per-flow delivery accounting: who arrived, when, how many were sent.
struct FlowStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  SimTime first_delivery = 0;
  SimTime last_delivery = 0;
};

/// Sends fixed-rate traffic for a set of flows into one switch port and
/// counts deliveries at a sink (attach `deliver` as the host sink).
///
/// Flow i's packets carry nw_src = base_src + i, nw_dst = base_dst + i —
/// matching the forwarding rules the Figure 5/8 harnesses install.
class TrafficSet {
 public:
  struct Options {
    std::size_t flows = 300;
    double rate_per_flow = 300.0;  ///< packets/s per flow (§8.1.2)
    std::uint32_t base_src = 0x0A010000;  // 10.1.0.0
    std::uint32_t base_dst = 0x0A020000;  // 10.2.0.0
  };

  TrafficSet(EventQueue* clock, Network* net, SwitchId ingress_switch,
             std::uint16_t ingress_port, Options options);

  /// Starts all flows (staggered by one inter-packet gap / flows).
  void start();
  void stop() { running_ = false; }

  /// The sink to attach at the destination host port.
  void deliver(const SimPacket& packet);

  /// Header template for flow `i` (useful for installing matching rules).
  [[nodiscard]] netbase::AbstractPacket flow_header(std::size_t i) const;

  [[nodiscard]] const std::vector<FlowStats>& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t total_sent() const;
  [[nodiscard]] std::uint64_t total_delivered() const;
  /// Packets sent but never delivered (blackholed) so far.
  [[nodiscard]] std::uint64_t total_lost() const {
    return total_sent() - total_delivered();
  }

 private:
  void send_one(std::size_t flow);

  EventQueue* clock_;
  Network* net_;
  SwitchId ingress_;
  std::uint16_t port_;
  Options options_;
  bool running_ = false;
  std::vector<FlowStats> stats_;
};

}  // namespace monocle::switchsim
