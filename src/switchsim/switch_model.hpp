// Switch control-plane behaviour models.
//
// Each model captures the *observable* control/data-plane behaviour of one
// of the paper's switches, parameterized with the paper's own measurements
// (§8.3.1 rates; §8.1.2 premature acknowledgments; [16]'s Pica8 batch
// commits and rule reordering).  The processing model:
//
//   update engine   — serializes FlowMods at 1/flowmod_rate each; PacketOut
//                     and PacketIn handling steal engine time scaled by the
//                     coupling factors (calibrated so Figures 6 and 7
//                     reproduce: ≥85% throughput at 5 PacketOuts/FlowMod,
//                     only the same-priority Dell S4810 sensitive to
//                     PacketIns).
//   data plane lag  — `kInstant`: rules active when the update engine
//                     finishes (ideal switches); `kRateLimited`: a slower
//                     commit engine drains updates at dataplane_rate (HP);
//                     `kBatched`: commits accumulate and apply every
//                     batch_interval, optionally reordered (Pica8 per [16]).
//   premature_ack   — BarrierReply sent when the update engine is done,
//                     even though the data plane lags (HP, Pica8).
#pragma once

#include <cstdint>
#include <string>

#include "netbase/time.hpp"

namespace monocle::switchsim {

using netbase::SimTime;

/// How control-plane completions propagate to the data plane.
enum class DataplaneLag : std::uint8_t {
  kInstant,      ///< active as soon as the update engine finishes
  kRateLimited,  ///< separate commit engine at dataplane_rate rules/s
  kBatched,      ///< periodic batch commit every batch_interval
};

struct SwitchModel {
  std::string name = "ideal";

  // §8.3.1 measured rates.
  double flowmod_rate = 2000.0;    ///< FlowMods/s the update engine sustains
  double packetout_rate = 20000.0; ///< max PacketOut/s
  double packetin_rate = 20000.0;  ///< max PacketIn/s (beyond: drops)

  // Interference couplings (calibrated; see EXPERIMENTS.md).
  double packetout_coupling = 0.0; ///< α: engine time charged per PacketOut
  double packetin_coupling = 0.0;  ///< β: engine time charged per PacketIn

  bool premature_ack = false;      ///< barrier replies before data plane commit

  DataplaneLag lag = DataplaneLag::kInstant;
  double dataplane_rate = 0.0;         ///< kRateLimited: rules/s
  SimTime batch_interval = 0;          ///< kBatched: commit period
  bool reorder_batches = false;        ///< kBatched: shuffle within batch

  SimTime control_latency = 200 * netbase::kMicrosecond;
  SimTime link_latency = 20 * netbase::kMicrosecond;

  [[nodiscard]] double flowmod_cost_s() const { return 1.0 / flowmod_rate; }
  [[nodiscard]] double packetout_cost_s() const { return 1.0 / packetout_rate; }
  [[nodiscard]] double packetin_cost_s() const { return 1.0 / packetin_rate; }

  /// An ideal switch with reliable (data-plane-accurate) acknowledgments —
  /// the §8.4 comparison baseline and the hypervisor edge switches.
  static SwitchModel ideal();
  /// HP ProCurve 5406zl: 7006 PacketOut/s, 5531 PacketIn/s, premature acks,
  /// data plane trailing the control plane (§8.1.2, Figure 5a).
  static SwitchModel hp5406zl();
  /// Pica8 behaviour emulation (the paper's own §7 proxy): premature
  /// barriers, periodic batched data-plane commits with rule reordering.
  static SwitchModel pica8_emulated();
  /// Dell S4810, distinct-priority configuration: 850 PacketOut/s,
  /// 401 PacketIn/s.
  static SwitchModel dell_s4810();
  /// Dell S4810 with all rules at equal priority (the figures' "**"): much
  /// higher baseline FlowMod rate, strongly PacketIn-sensitive.
  static SwitchModel dell_s4810_same_priority();
  /// Dell 8132F with experimental OpenFlow: 9128 PacketOut/s, 1105 PacketIn/s.
  static SwitchModel dell_8132f();
};

}  // namespace monocle::switchsim
