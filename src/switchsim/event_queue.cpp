#include "switchsim/event_queue.hpp"

namespace monocle::switchsim {

std::uint64_t EventQueue::schedule_at(SimTime when, std::function<void()> fn) {
  // Runtime contract (runtime.hpp): never hand out 0 (the callers' "no
  // timer" sentinel) and never reissue an id that is still live — relevant
  // only once the 64-bit counter wraps, but cheap to guarantee always.
  while (next_id_ == 0 || live_.contains(next_id_)) ++next_id_;
  const std::uint64_t id = next_id_++;
  live_.insert(id);
  queue_.push(Event{when < now_ ? now_ : when, next_seq_++, id, std::move(fn)});
  return id;
}

bool EventQueue::run_one() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto it = live_.find(ev.id);
    if (it == live_.end()) continue;  // cancelled
    live_.erase(it);
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run_until(SimTime until) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    if (!live_.contains(queue_.top().id)) {
      queue_.pop();
      continue;
    }
    if (queue_.top().when > until) break;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    live_.erase(ev.id);
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::uint64_t EventQueue::run_all(std::uint64_t max_events) {
  std::uint64_t executed = 0;
  while (executed < max_events && run_one()) {
    ++executed;
  }
  return executed;
}

}  // namespace monocle::switchsim
