#include "switchsim/sim_switch.hpp"

#include <algorithm>

#include "netbase/packet_crafter.hpp"
#include "switchsim/network.hpp"

namespace monocle::switchsim {

using openflow::Action;
using openflow::ActionList;
using openflow::FlowMod;
using openflow::FlowModCommand;
using openflow::Message;

SimSwitch::SimSwitch(SwitchId id, SwitchModel model, EventQueue* clock,
                     Network* net)
    : id_(id), model_(std::move(model)), clock_(clock), net_(net),
      rng_(id * 0x9E3779B97F4A7C15ull + 1) {}

void SimSwitch::on_control_message(const Message& msg) {
  if (msg.is<openflow::FlowMod>()) {
    process_flow_mod(msg.as<openflow::FlowMod>());
    return;
  }
  if (msg.is<openflow::BarrierRequest>()) {
    ++stats_.barriers_processed;
    // Barrier semantics: reply once all previously accepted FlowMods are
    // done.  Premature-ack switches answer when the update *engine* is done;
    // honest switches wait for the data-plane commit too.
    SimTime done = engine_busy_until_;
    if (!model_.premature_ack) {
      if (model_.lag == DataplaneLag::kRateLimited) {
        done = std::max(done, dataplane_busy_until_);
      }
      // kBatched + honest ack is not a modeled combination (Pica8 is
      // premature); kInstant needs nothing extra.
    }
    done = std::max(done, clock_->now());
    const std::uint32_t xid = msg.xid;
    clock_->schedule_at(done + model_.control_latency, [this, xid] {
      if (sink_) sink_(openflow::make_message(xid, openflow::BarrierReply{}));
    });
    return;
  }
  if (msg.is<openflow::PacketOut>()) {
    ++stats_.packet_outs;
    const auto& po = msg.as<openflow::PacketOut>();
    // Messaging path serializes PacketOuts at packetout_rate...
    const SimTime cost = seconds(model_.packetout_cost_s());
    msg_busy_until_ = std::max(msg_busy_until_, clock_->now()) + cost;
    // ...and steals update-engine time per the coupling factor (Figure 6).
    engine_busy_until_ =
        std::max(engine_busy_until_, clock_->now()) +
        seconds(model_.packetout_coupling * model_.packetout_cost_s());
    const auto parsed = netbase::parse_packet(po.data);
    if (!parsed) return;
    SimPacket pkt{parsed->header, parsed->payload};
    const ActionList actions = po.actions;
    const std::uint16_t in_port = po.in_port;
    clock_->schedule_at(msg_busy_until_, [this, actions, in_port, pkt] {
      execute_actions(actions, in_port, pkt);
    });
    return;
  }
  if (msg.is<openflow::EchoRequest>()) {
    if (sink_) {
      sink_(openflow::make_message(
          msg.xid, openflow::EchoReply{msg.as<openflow::EchoRequest>().payload}));
    }
    return;
  }
  if (msg.is<openflow::FeaturesRequest>()) {
    openflow::FeaturesReply fr;
    fr.datapath_id = id_;
    fr.n_tables = 1;
    for (const std::uint16_t p : net_->ports(id_)) {
      fr.ports.push_back({p, 0x020000000000ull | (id_ << 8) | p,
                          "port" + std::to_string(p)});
    }
    if (sink_) sink_(openflow::make_message(msg.xid, std::move(fr)));
    return;
  }
  // Hello & everything else: ignored.
}

void SimSwitch::process_flow_mod(const FlowMod& fm) {
  ++stats_.flowmods_processed;
  const SimTime done = std::max(engine_busy_until_, clock_->now()) +
                       seconds(model_.flowmod_cost_s());
  engine_busy_until_ = done;
  switch (model_.lag) {
    case DataplaneLag::kInstant:
      clock_->schedule_at(done, [this, fm] { commit_flow_mod(fm); });
      break;
    case DataplaneLag::kRateLimited: {
      const SimTime committed = std::max(dataplane_busy_until_, done) +
                                seconds(1.0 / model_.dataplane_rate);
      dataplane_busy_until_ = committed;
      clock_->schedule_at(committed, [this, fm] { commit_flow_mod(fm); });
      break;
    }
    case DataplaneLag::kBatched:
      clock_->schedule_at(done, [this, fm] {
        pending_batch_.push_back(fm);
        schedule_batch_commit();
      });
      break;
  }
}

void SimSwitch::schedule_batch_commit() {
  if (batch_timer_armed_) return;
  batch_timer_armed_ = true;
  clock_->schedule(model_.batch_interval, [this] {
    batch_timer_armed_ = false;
    auto batch = std::move(pending_batch_);
    pending_batch_.clear();
    if (model_.reorder_batches) {
      std::shuffle(batch.begin(), batch.end(), rng_);  // [16]'s reordering
    }
    for (const FlowMod& fm : batch) commit_flow_mod(fm);
    if (!pending_batch_.empty()) schedule_batch_commit();
  });
}

void SimSwitch::commit_flow_mod(const FlowMod& fm) {
  // Partial brain death: the update engine accepted (and barrier-acked) the
  // FlowMod, but the wedged data plane never applies it.
  if (FaultPlan* plan = net_->fault_plan();
      plan != nullptr && plan->commits_wedged(id_, clock_->now())) {
    return;
  }
  switch (fm.command) {
    case FlowModCommand::kAdd:
      table_.add(fm.rule());
      break;
    case FlowModCommand::kModify:
    case FlowModCommand::kModifyStrict:
      if (!table_.modify_strict(fm.rule())) table_.add(fm.rule());
      break;
    case FlowModCommand::kDelete:
      table_.remove_matching(fm.match);
      break;
    case FlowModCommand::kDeleteStrict:
      table_.remove_strict(fm.match, fm.priority);
      break;
  }
}

void SimSwitch::receive_packet(std::uint16_t in_port, const SimPacket& packet) {
  if (const FaultPlan* plan = net_->fault_plan();
      plan != nullptr && plan->dataplane_wedged(id_, clock_->now())) {
    ++stats_.packets_dropped;  // fully wedged forwarding path
    return;
  }
  SimPacket pkt = packet;
  pkt.header.set(netbase::Field::InPort, in_port);
  const openflow::Rule* rule = table_.lookup(pkt.header);
  if (rule == nullptr || rule->actions.empty()) {
    ++stats_.packets_dropped;  // table miss (default drop) or drop rule
    return;
  }
  ++stats_.packets_forwarded;
  execute_actions(rule->actions, in_port, pkt);
}

std::uint16_t SimSwitch::pick_ecmp_port(const std::vector<std::uint16_t>& ports,
                                        const SimPacket& packet) const {
  // Deterministic per-flow hash over the packed header (real ECMP hashes the
  // 5-tuple; the packed header subsumes it).
  const auto bits = netbase::pack_header(packet.header);
  std::uint64_t h = 1469598103934665603ull ^ id_;
  for (const auto w : bits.w) {
    h ^= w;
    h *= 1099511628211ull;
  }
  return ports[h % ports.size()];
}

void SimSwitch::execute_actions(const ActionList& actions,
                                std::uint16_t in_port, const SimPacket& packet) {
  SimPacket working = packet;
  for (const Action& a : actions) {
    switch (a.type) {
      case Action::Type::kSetField:
        working.header.set(a.field, a.value);
        break;
      case Action::Type::kOutput: {
        std::uint16_t port = a.port;
        if (port == openflow::kPortInPort) port = in_port;
        if (port == openflow::kPortController) {
          emit_packet_in(in_port, working);
        } else if (port == openflow::kPortTable) {
          // OFPP_TABLE (PacketOut self-injection): run the flow table.
          receive_packet(in_port, working);
        } else if (port == openflow::kPortFlood || port == openflow::kPortAll) {
          for (const std::uint16_t p : net_->ports(id_)) {
            if (p != in_port || port == openflow::kPortAll) {
              net_->emit(id_, p, working);
            }
          }
        } else {
          net_->emit(id_, port, working);
        }
        break;
      }
      case Action::Type::kEcmpGroup: {
        if (!a.ecmp_ports.empty()) {
          net_->emit(id_, pick_ecmp_port(a.ecmp_ports, working), working);
        }
        break;
      }
    }
  }
}

void SimSwitch::emit_packet_in(std::uint16_t in_port, const SimPacket& packet) {
  // PacketIn rate limiting (§8.3.1: beyond the max rate, switches drop).
  const SimTime cost = seconds(model_.packetin_cost_s());
  const SimTime now = clock_->now();
  if (packetin_free_at_ > now + cost * 4) {
    ++stats_.packet_ins_dropped;  // queue too deep: switch drops PacketIns
    return;
  }
  packetin_free_at_ = std::max(packetin_free_at_, now) + cost;
  // PacketIn handling also steals update-engine time (Figure 7 coupling).
  engine_busy_until_ = std::max(engine_busy_until_, now) +
                       seconds(model_.packetin_coupling * model_.packetin_cost_s());
  ++stats_.packet_ins_sent;

  openflow::PacketIn pi;
  pi.buffer_id = 0xFFFFFFFF;
  pi.in_port = in_port;
  pi.reason = openflow::PacketInReason::kAction;
  pi.data = netbase::craft_packet(packet.header, packet.payload);
  pi.total_len = static_cast<std::uint16_t>(pi.data.size());
  SimTime deliver_at = packetin_free_at_ + model_.control_latency;
  // Fault injection: extra per-message jitter delays this PacketIn; unequal
  // draws across messages reorder deliveries.
  if (FaultPlan* plan = net_->fault_plan(); plan != nullptr) {
    deliver_at += plan->packetin_extra_delay(id_, now);
  }
  auto msg = openflow::make_message(0, std::move(pi));
  clock_->schedule_at(deliver_at, [this, msg] {
    if (sink_) sink_(msg);
  });
}

bool SimSwitch::fail_rule(std::uint64_t cookie) {
  return table_.remove_by_cookie(cookie);
}

std::size_t SimSwitch::fail_rules_to_port(std::uint16_t port) {
  std::size_t failed = 0;
  std::vector<std::pair<openflow::Match, std::uint16_t>> victims;
  for (const openflow::Rule& r : table_.rules()) {
    const auto ports = r.outcome().forwarding_set();
    if (ports.size() == 1 && ports.front() == port) {
      victims.emplace_back(r.match, r.priority);
    }
  }
  for (const auto& [match, priority] : victims) {
    failed += table_.remove_strict(match, priority) ? 1 : 0;
  }
  return failed;
}

}  // namespace monocle::switchsim
