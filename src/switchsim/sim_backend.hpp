// SimSwitchBackend: the in-process SwitchBackend over a simulated switch.
//
// Delivers controller→switch messages through Network::send_to_switch
// (applying the switch model's control latency) and wires the switch's
// control sink to the backend receiver.  Always "up" once started — the sim
// has no channel to lose; forced failures are modeled at the wire layer
// instead (ChannelBackend over a severed loopback pair, see
// tests/channel_test.cpp).  This is what the Testbed now builds for every
// switch, making the sim and a live deployment differ ONLY in which backend
// gets constructed.
#pragma once

#include "channel/switch_backend.hpp"
#include "switchsim/network.hpp"

namespace monocle::switchsim {

class SimSwitchBackend final : public channel::SwitchBackend {
 public:
  SimSwitchBackend(Network* net, SwitchId sw) : net_(net), sw_(sw) {}

  void start() override;
  void stop() override;

  void send(const openflow::Message& msg) override {
    if (started_) net_->send_to_switch(sw_, msg);
  }

  void set_receiver(Receiver receiver) override {
    receiver_ = std::move(receiver);
  }
  void set_state_handler(StateHandler handler) override {
    state_handler_ = std::move(handler);
  }

  [[nodiscard]] bool up() const override { return started_; }
  [[nodiscard]] std::uint64_t datapath_id() const override { return sw_; }

 private:
  Network* net_;
  SwitchId sw_;
  Receiver receiver_;
  StateHandler state_handler_;
  bool started_ = false;
};

}  // namespace monocle::switchsim
