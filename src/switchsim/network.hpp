// The simulated network: switches, links, hosts (paper's testbeds).
//
// Implements monocle::NetworkView so Monitors and the Multiplexer can reason
// about port-level topology, and provides fault injection (link failures)
// for the Figure 4 experiments.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "monocle/runtime.hpp"
#include "switchsim/fault_plan.hpp"
#include "switchsim/sim_switch.hpp"

namespace monocle::switchsim {

class Network final : public NetworkView {
 public:
  explicit Network(EventQueue* clock) : clock_(clock) {}

  /// Creates a switch; ids must be unique.
  SimSwitch* add_switch(SwitchId id, SwitchModel model);

  [[nodiscard]] SimSwitch* at(SwitchId id) const;

  /// Connects (`a`, `port_a`) <-> (`b`, `port_b`) with a bidirectional link.
  void connect(SwitchId a, std::uint16_t port_a, SwitchId b,
               std::uint16_t port_b);

  /// Attaches a host sink to (`sw`, `port`): packets emitted there are
  /// delivered to `sink` instead of another switch.
  void attach_host(SwitchId sw, std::uint16_t port,
                   std::function<void(const SimPacket&)> sink);

  /// Host-side injection: the packet enters `sw` on `port`.
  void send_from_host(SwitchId sw, std::uint16_t port, SimPacket packet);

  /// Sends a controller-side message to `sw` through its control channel
  /// (applies the model's control latency).
  void send_to_switch(SwitchId sw, const openflow::Message& msg);

  /// Fails/restores the link attached at (`sw`, `port`) in both directions.
  void fail_link(SwitchId sw, std::uint16_t port);
  void restore_link(SwitchId sw, std::uint16_t port);

  /// Attaches a fault-injection plan (not owned; nullptr detaches).  The
  /// plan is consulted on every emit (gray loss, flaps, congestion) and by
  /// switches for PacketIn jitter and brain death.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  [[nodiscard]] FaultPlan* fault_plan() const { return fault_plan_; }

  /// Called by switches to emit a data-plane packet on a port.
  void emit(SwitchId from, std::uint16_t port, const SimPacket& packet);

  /// --- NetworkView -------------------------------------------------------
  [[nodiscard]] std::optional<PortPeer> peer(
      SwitchId sw, std::uint16_t port) const override;
  [[nodiscard]] std::vector<std::uint16_t> ports(SwitchId sw) const override;

  [[nodiscard]] EventQueue* clock() const { return clock_; }
  [[nodiscard]] std::uint64_t packets_lost_to_failed_links() const {
    return lost_on_failed_links_;
  }

 private:
  using EndPoint = std::pair<SwitchId, std::uint16_t>;

  EventQueue* clock_;
  std::map<SwitchId, std::unique_ptr<SimSwitch>> switches_;
  std::map<EndPoint, EndPoint> links_;
  std::map<EndPoint, std::function<void(const SimPacket&)>> hosts_;
  std::set<EndPoint> failed_;
  std::uint64_t lost_on_failed_links_ = 0;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace monocle::switchsim
