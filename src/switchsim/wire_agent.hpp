// WireSwitchAgent: makes a SimSwitch speak the OpenFlow 1.0 wire protocol
// over a channel::Connection — the switch-side counterpart of the
// controller-side OfSession.
//
// The agent owns the switch half of the control-channel state machine: it
// sends HELLO on attach, answers FEATURES_REQUEST with the switch's
// datapath id and port list, answers ECHO_REQUESTs (so the controller's
// keepalive sees a live peer), decodes every other frame and feeds it to
// SimSwitch::on_control_message, and encodes everything the switch emits on
// its control sink back onto the wire.  With this in place a ChannelBackend
// + Transport pair drives a simulated switch through the exact same bytes a
// hardware switch would see — the deterministic end-to-end fixture behind
// tests/channel_test.cpp.
//
// The agent replaces the switch's control sink for its lifetime; creating a
// new agent on a fresh connection (reconnect) simply rebinds the sink.
#pragma once

#include <cstdint>
#include <memory>

#include "channel/transport.hpp"
#include "openflow/wire.hpp"
#include "switchsim/network.hpp"
#include "switchsim/sim_switch.hpp"

namespace monocle::switchsim {

class WireSwitchAgent {
 public:
  struct Stats {
    std::uint64_t frames_rx = 0;
    std::uint64_t frames_tx = 0;
    std::uint64_t echoes_answered = 0;
  };

  /// Binds `sw`'s control plane to `conn`.  `net` supplies the port list
  /// for FEATURES_REPLY.  Sends HELLO immediately.
  WireSwitchAgent(SimSwitch* sw, Network* net, channel::Connection* conn,
                  std::size_t max_frame_len =
                      openflow::FrameBuffer::kDefaultMaxFrameLen);

  /// Detaches from the connection.  The control sink stays installed but is
  /// guarded by a shared liveness flag (it may already belong to a NEWER
  /// agent after a reconnect, so it cannot be cleared unconditionally).
  ~WireSwitchAgent();

  WireSwitchAgent(const WireSwitchAgent&) = delete;
  WireSwitchAgent& operator=(const WireSwitchAgent&) = delete;

  /// True once the connection closed (the agent is inert afterwards).
  [[nodiscard]] bool closed() const { return closed_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_bytes(std::span<const std::uint8_t> bytes);
  void handle(const openflow::Message& msg);
  void send(const openflow::Message& msg);

  SimSwitch* sw_;
  Network* net_;
  channel::Connection* conn_;
  openflow::FrameBuffer frames_;
  /// Outlives the agent inside the control-sink lambda: flipped false on
  /// destruction so a sink not yet replaced by a newer agent no-ops
  /// instead of dereferencing freed memory.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool closed_ = false;
  Stats stats_;
};

}  // namespace monocle::switchsim
