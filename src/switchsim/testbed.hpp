// Testbed: wires a Network, per-switch Monocle proxies (Monitor chain +
// Multiplexer) and a scripted controller — the common scaffolding behind the
// paper's experiments, the examples and the integration tests.
//
// Every switch's control channel is a channel::SwitchBackend (here the
// in-process SimSwitchBackend); the Monitor/Multiplexer wiring goes through
// Multiplexer::bind_backend exactly as a live deployment's would, so the
// sim and examples/live_monitor.cpp differ only in backend construction.
//
// Message flow (paper Figure 1 / §7):
//   controller --> Monitor.on_controller_message --> backend.send
//   backend receiver --> Multiplexer.on_packet_in (probes)
//                    \-> Monitor.on_switch_message --> controller handler
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "monocle/catching.hpp"
#include "monocle/fleet.hpp"
#include "monocle/monitor.hpp"
#include "monocle/multiplexer.hpp"
#include "monocle/schedule.hpp"
#include "switchsim/event_queue.hpp"
#include "switchsim/network.hpp"
#include "switchsim/sim_backend.hpp"
#include "topo/topology.hpp"
#include "workloads/churn.hpp"

namespace monocle::switchsim {

/// Port assignment used when instantiating a topo::Topology as a Network:
/// node n's i-th adjacency (in edge insertion order) gets port i+1.
struct TopologyPorts {
  /// port_of[node][neighbor] -> port on node facing neighbor.
  std::map<std::pair<topo::NodeId, topo::NodeId>, std::uint16_t> port;
  [[nodiscard]] std::uint16_t of(topo::NodeId a, topo::NodeId b) const {
    return port.at({a, b});
  }
};

class Testbed {
 public:
  struct Options {
    Monitor::Config monitor;      ///< per-switch base config (switch_id set per switch)
    CatchStrategy strategy = CatchStrategy::kSingleField;
    bool with_monocle = true;     ///< false: controller talks straight to switches
    /// Optional per-node model override (e.g. Figure 8: Pica8 fabric with
    /// ideal hypervisor switches at the edge).
    std::function<SwitchModel(topo::NodeId)> model_for;
    /// Optional per-node Monocle enablement: nodes where this returns false
    /// are wired straight to the controller (Figure 8's hypervisor switches,
    /// which already provide reliable acknowledgments).  Only consulted when
    /// with_monocle is true.
    std::function<bool(topo::NodeId)> monocle_for;
    /// Fleet orchestration: monitors are owned by a monocle::Fleet and
    /// steady-state probing runs in coloring-driven rounds (fleet.monitor is
    /// overwritten with `monitor` above; the round schedule is built from
    /// the topology per fleet_schedule).  Requires with_monocle.
    bool use_fleet = false;
    Fleet::Config fleet;
    RoundScheduleOptions fleet_schedule;
  };

  /// Builds switches (dpid = node id + 1) and links from `topo`; every
  /// switch gets `model` unless overridden afterwards via models map.
  Testbed(EventQueue* clock, const topo::Topology& topo,
          const SwitchModel& model, Options options);

  /// Installs catching rules on every switch and starts steady-state
  /// monitoring (when enabled in the config).
  void start_monitoring();

  /// Controller-side send to a switch (passes through its Monitor when
  /// Monocle is enabled).
  void controller_send(SwitchId sw, const openflow::Message& msg);

  /// Drives a reproducible FlowMod churn stream (workloads::ChurnGenerator)
  /// into `sw`'s control channel: one update per `interval`, `count` total,
  /// each delivered through controller_send — i.e. through the Monitor's
  /// versioned-table path exactly as a controller's updates would be.
  /// Returns immediately; the stream plays out on the event queue.
  void drive_churn(SwitchId sw, std::shared_ptr<workloads::ChurnGenerator> gen,
                   netbase::SimTime interval, std::size_t count);

  /// Messages emerging on the controller side (barrier replies, PacketIns).
  void set_controller_handler(
      std::function<void(SwitchId, const openflow::Message&)> handler) {
    controller_handler_ = std::move(handler);
  }

  [[nodiscard]] SwitchId dpid_of(topo::NodeId n) const { return n + 1; }
  [[nodiscard]] Monitor* monitor(SwitchId sw) const;
  /// The control-channel backend of `sw` (a SimSwitchBackend here).
  [[nodiscard]] channel::SwitchBackend* backend(SwitchId sw) const;
  /// The fleet orchestrator, or nullptr unless Options::use_fleet.
  [[nodiscard]] Fleet* fleet() const { return fleet_.get(); }
  [[nodiscard]] SimSwitch* sw(SwitchId id) const { return net_->at(id); }
  [[nodiscard]] Network& network() { return *net_; }
  [[nodiscard]] Multiplexer& mux() { return *mux_; }
  [[nodiscard]] const CatchPlan& plan() const { return plan_; }
  [[nodiscard]] const TopologyPorts& topology_ports() const { return ports_; }
  [[nodiscard]] EventQueue& clock() { return *clock_; }
  /// First free port number on node `n` for host attachment.
  [[nodiscard]] std::uint16_t host_port(topo::NodeId n) const;

 private:
  EventQueue* clock_;
  std::unique_ptr<Network> net_;
  std::unique_ptr<Multiplexer> mux_;
  CatchPlan plan_;
  Options options_;
  TopologyPorts ports_;
  std::vector<SwitchId> dpids_;
  std::map<SwitchId, std::unique_ptr<SimSwitchBackend>> backends_;
  std::unique_ptr<Fleet> fleet_;  // owns the monitors when use_fleet
  std::map<SwitchId, std::unique_ptr<Monitor>> monitors_;
  std::map<topo::NodeId, std::uint16_t> next_port_;
  std::function<void(SwitchId, const openflow::Message&)> controller_handler_;
};

}  // namespace monocle::switchsim
