#include "switchsim/traffic.hpp"

namespace monocle::switchsim {

using netbase::Field;

TrafficSet::TrafficSet(EventQueue* clock, Network* net, SwitchId ingress_switch,
                       std::uint16_t ingress_port, Options options)
    : clock_(clock),
      net_(net),
      ingress_(ingress_switch),
      port_(ingress_port),
      options_(options),
      stats_(options.flows) {}

netbase::AbstractPacket TrafficSet::flow_header(std::size_t i) const {
  netbase::AbstractPacket h;
  h.set(Field::EthSrc, 0x0200000000A0ull);
  h.set(Field::EthDst, 0x0200000000B0ull);
  h.set(Field::EthType, netbase::kEthTypeIpv4);
  h.set(Field::IpSrc, options_.base_src + static_cast<std::uint32_t>(i));
  h.set(Field::IpDst, options_.base_dst + static_cast<std::uint32_t>(i));
  h.set(Field::IpProto, netbase::kIpProtoUdp);
  h.set(Field::TpSrc, 4000);
  h.set(Field::TpDst, 5000);
  return h.normalized();
}

void TrafficSet::start() {
  running_ = true;
  const auto gap = static_cast<SimTime>(1e9 / options_.rate_per_flow);
  for (std::size_t i = 0; i < options_.flows; ++i) {
    // Stagger flow starts uniformly across one inter-packet gap.
    clock_->schedule(gap * i / std::max<std::size_t>(1, options_.flows),
                     [this, i] { send_one(i); });
  }
}

void TrafficSet::send_one(std::size_t flow) {
  if (!running_) return;
  SimPacket pkt;
  pkt.header = flow_header(flow);
  // Payload identifies the flow so the sink can attribute deliveries.
  pkt.payload = {
      static_cast<std::uint8_t>(flow >> 24), static_cast<std::uint8_t>(flow >> 16),
      static_cast<std::uint8_t>(flow >> 8), static_cast<std::uint8_t>(flow)};
  ++stats_[flow].sent;
  net_->send_from_host(ingress_, port_, std::move(pkt));
  clock_->schedule(static_cast<SimTime>(1e9 / options_.rate_per_flow),
                   [this, flow] { send_one(flow); });
}

void TrafficSet::deliver(const SimPacket& packet) {
  // Attribute by destination address (robust to header rewrites en route).
  const auto dst = static_cast<std::uint32_t>(
      packet.header.get(Field::IpDst));
  if (dst < options_.base_dst) return;
  const std::size_t flow = dst - options_.base_dst;
  if (flow >= stats_.size()) return;
  FlowStats& fs = stats_[flow];
  ++fs.delivered;
  if (fs.first_delivery == 0) fs.first_delivery = clock_->now();
  fs.last_delivery = clock_->now();
}

std::uint64_t TrafficSet::total_sent() const {
  std::uint64_t n = 0;
  for (const auto& fs : stats_) n += fs.sent;
  return n;
}

std::uint64_t TrafficSet::total_delivered() const {
  std::uint64_t n = 0;
  for (const auto& fs : stats_) n += fs.delivered;
  return n;
}

}  // namespace monocle::switchsim
