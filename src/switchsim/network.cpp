#include "switchsim/network.hpp"

#include <algorithm>
#include <cassert>

namespace monocle::switchsim {

SimSwitch* Network::add_switch(SwitchId id, SwitchModel model) {
  assert(!switches_.contains(id));
  auto sw = std::make_unique<SimSwitch>(id, std::move(model), clock_, this);
  SimSwitch* ptr = sw.get();
  switches_.emplace(id, std::move(sw));
  return ptr;
}

SimSwitch* Network::at(SwitchId id) const {
  const auto it = switches_.find(id);
  return it == switches_.end() ? nullptr : it->second.get();
}

void Network::connect(SwitchId a, std::uint16_t port_a, SwitchId b,
                      std::uint16_t port_b) {
  assert(switches_.contains(a) && switches_.contains(b));
  links_[{a, port_a}] = {b, port_b};
  links_[{b, port_b}] = {a, port_a};
}

void Network::attach_host(SwitchId sw, std::uint16_t port,
                          std::function<void(const SimPacket&)> sink) {
  hosts_[{sw, port}] = std::move(sink);
}

void Network::send_from_host(SwitchId sw, std::uint16_t port,
                             SimPacket packet) {
  SimSwitch* s = at(sw);
  if (s == nullptr) return;
  const SimTime latency = s->model().link_latency;
  clock_->schedule(latency, [s, port, packet = std::move(packet)] {
    s->receive_packet(port, packet);
  });
}

void Network::send_to_switch(SwitchId sw, const openflow::Message& msg) {
  SimSwitch* s = at(sw);
  if (s == nullptr) return;
  clock_->schedule(s->model().control_latency,
                   [s, msg] { s->on_control_message(msg); });
}

void Network::fail_link(SwitchId sw, std::uint16_t port) {
  failed_.insert({sw, port});
  const auto it = links_.find({sw, port});
  if (it != links_.end()) failed_.insert(it->second);
}

void Network::restore_link(SwitchId sw, std::uint16_t port) {
  failed_.erase({sw, port});
  const auto it = links_.find({sw, port});
  if (it != links_.end()) failed_.erase(it->second);
}

void Network::emit(SwitchId from, std::uint16_t port, const SimPacket& packet) {
  const EndPoint ep{from, port};
  if (failed_.contains(ep)) {
    ++lost_on_failed_links_;
    return;
  }
  if (fault_plan_ != nullptr) {
    // Resolve the peer endpoint so gray/flap faults on the receiving side
    // drop the frame too; host deliveries consult only the emitter.
    SwitchId peer_sw = 0;
    std::uint16_t peer_port = 0;
    if (const auto link = links_.find(ep); link != links_.end()) {
      peer_sw = link->second.first;
      peer_port = link->second.second;
    }
    if (fault_plan_->should_drop(from, port, peer_sw, peer_port,
                                 clock_->now())) {
      return;
    }
  }
  const SimSwitch* s = at(from);
  const SimTime latency =
      s != nullptr ? s->model().link_latency : 20 * netbase::kMicrosecond;

  if (const auto host = hosts_.find(ep); host != hosts_.end()) {
    clock_->schedule(latency, [sink = host->second, packet] { sink(packet); });
    return;
  }
  const auto link = links_.find(ep);
  if (link == links_.end()) return;  // unconnected port: packet leaves the net
  const auto [peer_sw, peer_port] = link->second;
  SimSwitch* target = at(peer_sw);
  if (target == nullptr) return;
  clock_->schedule(latency, [target, peer_port = peer_port, packet] {
    target->receive_packet(peer_port, packet);
  });
}

std::optional<PortPeer> Network::peer(SwitchId sw, std::uint16_t port) const {
  const auto it = links_.find({sw, port});
  if (it == links_.end()) return std::nullopt;
  return PortPeer{it->second.first, it->second.second};
}

std::vector<std::uint16_t> Network::ports(SwitchId sw) const {
  std::vector<std::uint16_t> out;
  for (const auto& [ep, peer] : links_) {
    if (ep.first == sw) out.push_back(ep.second);
  }
  for (const auto& [ep, sink] : hosts_) {
    if (ep.first == sw) out.push_back(ep.second);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace monocle::switchsim
