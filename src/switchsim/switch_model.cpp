#include "switchsim/switch_model.hpp"

namespace monocle::switchsim {

SwitchModel SwitchModel::ideal() {
  SwitchModel m;
  m.name = "ideal";
  m.flowmod_rate = 2000.0;
  m.packetout_rate = 20000.0;
  m.packetin_rate = 20000.0;
  m.premature_ack = false;
  m.lag = DataplaneLag::kInstant;
  return m;
}

SwitchModel SwitchModel::hp5406zl() {
  SwitchModel m;
  m.name = "HP5406zl";
  m.flowmod_rate = 270.0;      // matches the §8.1.2 update pacing
  m.packetout_rate = 7006.0;   // §8.3.1
  m.packetin_rate = 5531.0;    // §8.3.1
  m.packetout_coupling = 1.0;  // Fig 6: ~0.91 at 5:2, decaying by 40:2
  m.packetin_coupling = 0.02;  // Fig 7: almost unaffected
  m.premature_ack = true;      // [14,16]: acks before data plane
  m.lag = DataplaneLag::kRateLimited;
  m.dataplane_rate = 235.0;    // trails the update engine; gap grows (Fig 5a)
  return m;
}

SwitchModel SwitchModel::pica8_emulated() {
  // The paper itself emulates the Pica8 with a proxy in front of an
  // OpenVSwitch (§7): update *semantics* (premature acks, reordering,
  // batched commits) come from [16], while the PacketIn/PacketOut paths are
  // software-switch fast.
  SwitchModel m;
  m.name = "Pica8(emulated)";
  m.flowmod_rate = 2000.0;    // OVS-fast control plane (same substrate as ideal)
  m.packetout_rate = 20000.0;
  m.packetin_rate = 20000.0;
  m.packetout_coupling = 0.05;
  m.packetin_coupling = 0.02;
  m.premature_ack = true;                         // [16]
  m.lag = DataplaneLag::kBatched;
  m.batch_interval = 100 * netbase::kMillisecond; // [16]: periodic commits
  m.reorder_batches = true;                       // [16]: rule reordering
  return m;
}

SwitchModel SwitchModel::dell_s4810() {
  SwitchModel m;
  m.name = "DELL S4810";
  m.flowmod_rate = 250.0;
  m.packetout_rate = 850.0;   // §8.3.1
  m.packetin_rate = 401.0;    // §8.3.1
  m.packetout_coupling = 0.2; // Fig 6: ≥85% at 5:2
  m.packetin_coupling = 0.05; // Fig 7: barely affected
  m.premature_ack = false;
  m.lag = DataplaneLag::kInstant;
  return m;
}

SwitchModel SwitchModel::dell_s4810_same_priority() {
  SwitchModel m = dell_s4810();
  m.name = "DELL S4810**";
  m.flowmod_rate = 1000.0;   // higher baseline with equal priorities (§8.3.1)
  m.packetin_coupling = 0.6; // Fig 7: drops by up to 60%
  return m;
}

SwitchModel SwitchModel::dell_8132f() {
  SwitchModel m;
  m.name = "DELL 8132F";
  m.flowmod_rate = 600.0;
  m.packetout_rate = 9128.0;  // §8.3.1
  m.packetin_rate = 1105.0;   // §8.3.1
  m.packetout_coupling = 1.0;
  m.packetin_coupling = 0.05;
  m.premature_ack = false;
  m.lag = DataplaneLag::kInstant;
  return m;
}

}  // namespace monocle::switchsim
