// Vertex coloring for catching-rule assignment (paper §6, §8.3.2).
//
// Strategy 1 needs a proper coloring of the topology (no two adjacent
// switches share an id); strategy 2 needs a proper coloring of the square
// graph.  The paper solves small instances exactly with an ILP and falls
// back to a greedy heuristic when the exact method runs out of resources
// (their ILP ran out of memory on Rocketfuel squares).  We mirror that:
// a DSATUR-based exact branch-and-bound with a node budget, falling back to
// greedy orderings.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topo/topology.hpp"

namespace monocle::topo {

// Role in the paper's pipeline: colorings decide how little header space
// network-wide monitoring costs AND how much of the fabric may probe at
// once.  CatchPlan::build (monocle/catching.hpp) turns a coloring of the
// topology (strategy 1) or its square (strategy 2) into per-switch reserved
// tag values and catching rules — Figure 9's reserved-value counts are
// exactly `color_count`.  The Fleet's RoundSchedule (monocle/schedule.hpp)
// reuses the square coloring as a probe-round partition: each color class
// probes concurrently without sharing a catcher.

/// A coloring: color per node, colors dense in [0, color_count).
struct Coloring {
  std::vector<int> color;
  int color_count = 0;
  bool exact = false;  ///< true if produced by the exact solver (proved optimal)
};

/// Greedy coloring in the given node order (first-fit).
Coloring greedy_coloring(const Topology& g, const std::vector<NodeId>& order);

/// Greedy coloring with largest-degree-first ordering.
Coloring largest_first_coloring(const Topology& g);

/// DSATUR heuristic (saturation-degree greedy) — usually near-optimal on
/// sparse network graphs.
Coloring dsatur_coloring(const Topology& g);

/// Exact chromatic-number search: DSATUR-style branch-and-bound seeded with
/// the heuristic solution and a greedy-clique lower bound.  Explores at most
/// `node_budget` search nodes; on exhaustion returns the best (heuristic or
/// improved) coloring with `exact == false`.  This is the stand-in for the
/// paper's ILP formulation.
Coloring exact_coloring(const Topology& g, std::uint64_t node_budget = 2'000'000);

/// Verifies that `c` is a proper coloring of `g`.
bool is_proper_coloring(const Topology& g, const Coloring& c);

/// Size of a greedily grown clique (lower bound for the chromatic number).
int greedy_clique_bound(const Topology& g);

}  // namespace monocle::topo
