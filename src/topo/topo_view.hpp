// TopoView: a monocle::NetworkView directly over a topo::Topology.
//
// Assigns ports with the Testbed's convention — node n's i-th adjacency (in
// edge insertion order) gets port i+1 — so harnesses that drive the
// Monitor/Multiplexer fast path without simulated switches (the fig11
// injection microbench, the zero-allocation test) see the same port-level
// world a Testbed over the same Topology would.  Lookups are O(1) flat
// vector indexing; peer()/ports() never allocate on the hot path beyond
// ports()'s result vector (a generation-time call).
#pragma once

#include <cstdint>
#include <vector>

#include "monocle/runtime.hpp"
#include "topo/topology.hpp"

namespace monocle::topo {

class TopoView final : public NetworkView {
 public:
  /// `dpid_of_node(n) = n + first_dpid` (the Testbed uses first_dpid = 1).
  explicit TopoView(const Topology& topo, SwitchId first_dpid = 1)
      : first_dpid_(first_dpid) {
    peers_.resize(topo.node_count());
    for (NodeId a = 0; a < topo.node_count(); ++a) {
      // Port p on node a (1-based) faces its (p-1)-th neighbor.
      for (const NodeId b : topo.neighbors(a)) {
        const auto port_on = [&](NodeId from, NodeId to) {
          const auto& adj = topo.neighbors(from);
          for (std::size_t i = 0; i < adj.size(); ++i) {
            if (adj[i] == to) return static_cast<std::uint16_t>(i + 1);
          }
          return static_cast<std::uint16_t>(0);
        };
        peers_[a].push_back(PortPeer{b + first_dpid, port_on(b, a)});
      }
    }
  }

  [[nodiscard]] std::optional<PortPeer> peer(
      SwitchId sw, std::uint16_t port) const override {
    if (sw < first_dpid_) return std::nullopt;
    const std::uint64_t node = sw - first_dpid_;
    if (node >= peers_.size()) return std::nullopt;
    if (port == 0 || port > peers_[node].size()) return std::nullopt;
    return peers_[node][port - 1];
  }

  [[nodiscard]] std::vector<std::uint16_t> ports(SwitchId sw) const override {
    std::vector<std::uint16_t> out;
    if (sw < first_dpid_) return out;
    const std::uint64_t node = sw - first_dpid_;
    if (node >= peers_.size()) return out;
    out.reserve(peers_[node].size());
    for (std::size_t i = 0; i < peers_[node].size(); ++i) {
      out.push_back(static_cast<std::uint16_t>(i + 1));
    }
    return out;
  }

  [[nodiscard]] SwitchId dpid_of(NodeId n) const { return n + first_dpid_; }
  [[nodiscard]] std::size_t switch_count() const { return peers_.size(); }

 private:
  SwitchId first_dpid_;
  std::vector<std::vector<PortPeer>> peers_;  // [node][port-1]
};

}  // namespace monocle::topo
