// Undirected network topology graph (paper §6).
//
// Catching-rule planning reduces to vertex coloring of the switch adjacency
// graph (strategy 1) or of its square (strategy 2: any two switches with a
// common neighbor must also differ).  Topology is a plain adjacency-list
// graph with the operations those algorithms need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace monocle::topo {

using NodeId = std::uint32_t;

/// Simple undirected graph; nodes are dense ids [0, node_count).
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::size_t node_count) : adj_(node_count) {}

  /// Adds `count` isolated nodes, returning the first new id.
  NodeId add_nodes(std::size_t count = 1) {
    const NodeId first = static_cast<NodeId>(adj_.size());
    adj_.resize(adj_.size() + count);
    return first;
  }

  /// Adds an undirected edge; duplicate edges and self-loops are ignored.
  void add_edge(NodeId a, NodeId b);

  [[nodiscard]] bool has_edge(NodeId a, NodeId b) const;

  [[nodiscard]] std::size_t node_count() const { return adj_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edge_count_; }

  [[nodiscard]] const std::vector<NodeId>& neighbors(NodeId n) const {
    return adj_[n];
  }
  [[nodiscard]] std::size_t degree(NodeId n) const { return adj_[n].size(); }
  [[nodiscard]] std::size_t max_degree() const;

  /// True if the graph is connected (or empty).
  [[nodiscard]] bool connected() const;

  /// The square graph: same nodes; an edge wherever distance <= 2.  This is
  /// exactly the paper's construction for strategy-2 coloring ("for each
  /// switch, add fake edges between all pairs of its peers").
  [[nodiscard]] Topology square() const;

  /// Optional display name (used by the Figure 9 harness).
  std::string name;

 private:
  std::vector<std::vector<NodeId>> adj_;
  std::size_t edge_count_ = 0;
};

}  // namespace monocle::topo
