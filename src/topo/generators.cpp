#include "topo/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

namespace monocle::topo {

Topology make_star(std::size_t leaves) {
  Topology g(leaves + 1);
  g.name = "star-" + std::to_string(leaves);
  for (std::size_t i = 1; i <= leaves; ++i) {
    g.add_edge(0, static_cast<NodeId>(i));
  }
  return g;
}

Topology make_triangle() {
  Topology g(3);
  g.name = "triangle";
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 2);
  return g;
}

Topology make_ring(std::size_t n) {
  Topology g(n);
  g.name = "ring-" + std::to_string(n);
  for (std::size_t i = 0; i < n; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>((i + 1) % n));
  }
  return g;
}

Topology make_line(std::size_t n) {
  Topology g(n);
  g.name = "line-" + std::to_string(n);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
  }
  return g;
}

Topology make_grid(std::size_t w, std::size_t h) {
  Topology g(w * h);
  g.name = "grid-" + std::to_string(w) + "x" + std::to_string(h);
  const auto at = [w](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * w + x);
  };
  for (std::size_t y = 0; y < h; ++y) {
    for (std::size_t x = 0; x < w; ++x) {
      if (x + 1 < w) g.add_edge(at(x, y), at(x + 1, y));
      if (y + 1 < h) g.add_edge(at(x, y), at(x, y + 1));
    }
  }
  return g;
}

Topology make_fattree(int k) {
  assert(k >= 2 && k % 2 == 0);
  const FatTreeIndex idx{k};
  Topology g(idx.switch_count());
  g.name = "fattree-k" + std::to_string(k);
  const int half = k / 2;
  for (int pod = 0; pod < k; ++pod) {
    for (int a = 0; a < half; ++a) {
      // Aggregation a in this pod connects to core switches [a*half, (a+1)*half).
      for (int c = 0; c < half; ++c) {
        g.add_edge(idx.agg(pod, a), idx.core(a * half + c));
      }
      // ... and to every edge switch in the pod.
      for (int e = 0; e < half; ++e) {
        g.add_edge(idx.agg(pod, a), idx.edge(pod, e));
      }
    }
  }
  return g;
}

Topology make_waxman(std::size_t n, double alpha, double beta,
                     std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::vector<std::pair<double, double>> pos(n);
  for (auto& p : pos) p = {unit(rng), unit(rng)};
  Topology g(n);
  g.name = "waxman-" + std::to_string(n);
  const double max_dist = std::sqrt(2.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double dx = pos[i].first - pos[j].first;
      const double dy = pos[i].second - pos[j].second;
      const double d = std::sqrt(dx * dx + dy * dy);
      const double p = alpha * std::exp(-d / (beta * max_dist));
      if (unit(rng) < p) {
        g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      }
    }
  }
  // Force connectivity with a chain over a random permutation.
  std::vector<NodeId> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = static_cast<NodeId>(i);
  std::shuffle(perm.begin(), perm.end(), rng);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(perm[i], perm[i + 1]);
  return g;
}

Topology make_barabasi_albert(std::size_t n, int m, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Topology g(n);
  g.name = "ba-" + std::to_string(n);
  if (n == 0) return g;
  // Endpoint pool: each edge contributes both endpoints, giving
  // degree-proportional sampling.
  std::vector<NodeId> pool;
  const std::size_t seed_nodes = std::max<std::size_t>(static_cast<std::size_t>(m), 2);
  for (std::size_t i = 0; i + 1 < std::min(seed_nodes, n); ++i) {
    g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(i + 1));
    pool.push_back(static_cast<NodeId>(i));
    pool.push_back(static_cast<NodeId>(i + 1));
  }
  for (std::size_t v = seed_nodes; v < n; ++v) {
    std::vector<NodeId> targets;
    int attempts = 0;
    while (targets.size() < static_cast<std::size_t>(m) && attempts < 10 * m) {
      ++attempts;
      const NodeId t = pool[std::uniform_int_distribution<std::size_t>(
          0, pool.size() - 1)(rng)];
      if (t != v &&
          std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const NodeId t : targets) {
      g.add_edge(static_cast<NodeId>(v), t);
      pool.push_back(static_cast<NodeId>(v));
      pool.push_back(t);
    }
  }
  return g;
}

Topology make_ring_with_chords(std::size_t n, std::size_t chords,
                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Topology g = make_ring(n);
  g.name = "ringchord-" + std::to_string(n);
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (std::size_t c = 0; c < chords; ++c) {
    g.add_edge(static_cast<NodeId>(pick(rng)), static_cast<NodeId>(pick(rng)));
  }
  return g;
}

Topology make_hub_and_spoke(std::size_t hubs, std::size_t leaves,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Topology g(hubs + leaves);
  g.name = "hub-" + std::to_string(hubs) + "-" + std::to_string(leaves);
  for (std::size_t i = 0; i < hubs; ++i) {
    for (std::size_t j = i + 1; j < hubs; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  std::uniform_int_distribution<std::size_t> pick(0, hubs - 1);
  for (std::size_t l = 0; l < leaves; ++l) {
    g.add_edge(static_cast<NodeId>(hubs + l), static_cast<NodeId>(pick(rng)));
  }
  return g;
}

std::vector<Topology> zoo_like_suite(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Topology> suite;
  suite.reserve(261);
  // Size distribution modeled on the Zoo: heavy mass in [10, 60], a tail to
  // a few hundred, one 754-node outlier (Kdl).
  std::lognormal_distribution<double> size_dist(3.2, 0.75);
  auto sample_size = [&](std::size_t lo, std::size_t hi) {
    const double s = size_dist(rng);
    return std::clamp<std::size_t>(static_cast<std::size_t>(s), lo, hi);
  };
  int i = 0;
  while (suite.size() < 261) {
    const std::uint64_t sub_seed = rng();
    const int family = i++ % 20;
    Topology g;
    if (family < 11) {
      // Sparse WAN backbone: ring with a few chords.
      const std::size_t n = sample_size(4, 300);
      g = make_ring_with_chords(n, std::max<std::size_t>(1, n / 6), sub_seed);
    } else if (family < 15) {
      // Geographic mesh.
      const std::size_t n = sample_size(8, 200);
      g = make_waxman(n, 0.25, 0.2, sub_seed);
    } else if (family < 18) {
      // Hub-and-spoke access network; hub degree can be large.
      const std::size_t hubs = 2 + (sub_seed % 4);
      const std::size_t n = sample_size(10, 120);
      g = make_hub_and_spoke(hubs, n, sub_seed);
    } else if (family == 18) {
      // Denser core: small clique with trees hanging off (drives the
      // chromatic number toward the Zoo's observed maximum of ~9).
      std::mt19937_64 r2(sub_seed);
      const std::size_t core = 4 + (sub_seed % 6);  // clique of 4..9
      const std::size_t n = sample_size(core + 4, 100);
      Topology dense(n);
      for (std::size_t a = 0; a < core; ++a) {
        for (std::size_t b = a + 1; b < core; ++b) {
          dense.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
        }
      }
      std::uniform_int_distribution<std::size_t> parent(0, core - 1);
      for (std::size_t v = core; v < n; ++v) {
        dense.add_edge(static_cast<NodeId>(v),
                       static_cast<NodeId>(parent(r2) % v));
      }
      dense.name = "densecore-" + std::to_string(n);
      g = std::move(dense);
    } else {
      // Star-like metro networks with a very high degree hub — these drive
      // the strategy-2 (square graph) color counts up to ~59.
      const std::size_t leaves = 10 + (sub_seed % 49);  // hub degree 10..58
      g = make_star(leaves);
    }
    suite.push_back(std::move(g));
  }
  // The Kdl-like outlier: 754 nodes, sparse.
  suite[17] = make_ring_with_chords(754, 160, seed ^ 0x9E3779B97F4A7C15ull);
  suite[17].name = "kdl-like-754";
  // Ensure one network hits hub degree 58 exactly (paper max 59 colors).
  suite[19] = make_star(58);
  suite[19].name = "metro-hub-58";
  for (std::size_t t = 0; t < suite.size(); ++t) {
    if (suite[t].name.empty()) suite[t].name = "zoo-" + std::to_string(t);
  }
  return suite;
}

Topology make_rocketfuel_as(std::size_t switches, std::uint64_t seed,
                            std::size_t max_degree) {
  assert(switches >= 4);
  std::mt19937_64 rng(seed);
  Topology g(switches);
  g.name = "rocketfuel-as-" + std::to_string(switches);

  // Tier-1 core: a small clique (4..8 with size) of transit hubs.
  const std::size_t core = std::clamp<std::size_t>(4 + switches / 250, 4, 8);
  for (std::size_t a = 0; a < core; ++a) {
    for (std::size_t b = a + 1; b < core; ++b) {
      g.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
    }
  }

  // Transit ASes (~65% of nodes): preferential attachment with m=2, degree-
  // capped like degree-truncated router-level maps.  The endpoint pool
  // yields degree-proportional sampling.
  const std::size_t transit_end =
      core + (switches - core) * 65 / 100;
  std::vector<NodeId> pool;
  for (std::size_t a = 0; a < core; ++a) {
    for (std::size_t i = 0; i + 1 < core; ++i) {
      pool.push_back(static_cast<NodeId>(a));
    }
  }
  auto attach = [&](NodeId v, int m) {
    int placed = 0;
    int attempts = 0;
    while (placed < m && attempts < 64) {
      ++attempts;
      const NodeId t = pool[std::uniform_int_distribution<std::size_t>(
          0, pool.size() - 1)(rng)];
      if (t == v || g.has_edge(v, t) || g.degree(t) >= max_degree) continue;
      g.add_edge(v, t);
      pool.push_back(v);
      pool.push_back(t);
      ++placed;
    }
    if (placed == 0) {
      // Degree caps exhausted every sampled target: fall back to the least
      // loaded core hub so the graph stays connected — preferring hubs
      // still under the cap; only when the cap is tighter than the core
      // can absorb does connectivity win over it.
      NodeId best = 0;
      bool best_capped = g.degree(best) >= max_degree;
      for (std::size_t c = 1; c < core; ++c) {
        const auto hub = static_cast<NodeId>(c);
        const bool capped = g.degree(hub) >= max_degree;
        if ((best_capped && !capped) ||
            (capped == best_capped && g.degree(hub) < g.degree(best))) {
          best = hub;
          best_capped = capped;
        }
      }
      g.add_edge(v, best);
    }
  };
  for (std::size_t v = core; v < transit_end; ++v) {
    attach(static_cast<NodeId>(v), 2);
  }
  // Stub ASes: the degree-1 fringe that dominates AS degree distributions.
  for (std::size_t v = transit_end; v < switches; ++v) {
    attach(static_cast<NodeId>(v), 1);
  }
  return g;
}

std::vector<Topology> rocketfuel_like_suite(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const std::size_t sizes[] = {121, 315, 604, 960, 2914, 3257, 4755, 6461, 7018, 11800};
  // Router-level ISP maps top out around degree ~257 (Rocketfuel's largest
  // hub; the paper's strategy-2 maximum of 258 colors follows from it) and
  // contain small dense PoP cores that preferential attachment alone lacks.
  constexpr std::size_t kMaxDegree = 257;
  std::vector<Topology> suite;
  suite.reserve(10);
  for (const std::size_t n : sizes) {
    Topology g = make_barabasi_albert(n, 2, rng());
    // Trim hubs by rewiring is complex; instead regenerate attachment-limited:
    // drop the raw BA edges above the cap by rebuilding with rejection.
    if (g.max_degree() > kMaxDegree) {
      std::mt19937_64 r2(rng());
      Topology capped(n);
      std::vector<NodeId> pool;
      capped.add_edge(0, 1);
      pool.push_back(0);
      pool.push_back(1);
      for (NodeId v = 2; v < n; ++v) {
        int placed = 0;
        int attempts = 0;
        while (placed < 2 && attempts < 64) {
          ++attempts;
          const NodeId t = pool[std::uniform_int_distribution<std::size_t>(
              0, pool.size() - 1)(r2)];
          if (t == v || capped.has_edge(v, t) || capped.degree(t) >= kMaxDegree) {
            continue;
          }
          capped.add_edge(v, t);
          pool.push_back(v);
          pool.push_back(t);
          ++placed;
        }
      }
      g = std::move(capped);
    }
    // Dense PoP core: a small clique among the first nodes (raises the
    // chromatic number toward Rocketfuel's observed <= 8).
    const std::size_t core = std::min<std::size_t>(4 + (n / 2000), 8);
    for (std::size_t a = 0; a < core; ++a) {
      for (std::size_t b = a + 1; b < core; ++b) {
        g.add_edge(static_cast<NodeId>(a), static_cast<NodeId>(b));
      }
    }
    g.name = "rocketfuel-like-" + std::to_string(n);
    suite.push_back(std::move(g));
  }
  return suite;
}

}  // namespace monocle::topo
