#include "topo/topology.hpp"

#include <algorithm>

namespace monocle::topo {

void Topology::add_edge(NodeId a, NodeId b) {
  if (a == b) return;
  if (a >= adj_.size() || b >= adj_.size()) return;
  if (has_edge(a, b)) return;
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++edge_count_;
}

bool Topology::has_edge(NodeId a, NodeId b) const {
  if (a >= adj_.size() || b >= adj_.size()) return false;
  const auto& smaller = adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  const NodeId target = adj_[a].size() <= adj_[b].size() ? b : a;
  return std::find(smaller.begin(), smaller.end(), target) != smaller.end();
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (const auto& nbrs : adj_) best = std::max(best, nbrs.size());
  return best;
}

bool Topology::connected() const {
  if (adj_.empty()) return true;
  std::vector<bool> seen(adj_.size(), false);
  std::vector<NodeId> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const NodeId n = stack.back();
    stack.pop_back();
    for (const NodeId m : adj_[n]) {
      if (!seen[m]) {
        seen[m] = true;
        ++visited;
        stack.push_back(m);
      }
    }
  }
  return visited == adj_.size();
}

Topology Topology::square() const {
  // Collect original + two-hop edges as pairs, then sort/unique: much faster
  // than per-insert duplicate checks on large power-law graphs (Rocketfuel
  // hubs create ~degree^2 clique edges).
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(edge_count_ * 4);
  auto push = [&edges](NodeId a, NodeId b) {
    if (a == b) return;
    edges.emplace_back(std::min(a, b), std::max(a, b));
  };
  for (NodeId n = 0; n < adj_.size(); ++n) {
    const auto& nbrs = adj_[n];
    for (const NodeId m : nbrs) push(n, m);
    // Clique over the neighbors of n (the paper's "fake edges between all
    // pairs of its peers").
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        push(nbrs[i], nbrs[j]);
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Topology sq(adj_.size());
  sq.name = name.empty() ? "" : name + "^2";
  for (const auto& [a, b] : edges) {
    sq.adj_[a].push_back(b);
    sq.adj_[b].push_back(a);
    ++sq.edge_count_;
  }
  return sq;
}

}  // namespace monocle::topo
