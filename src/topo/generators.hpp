// Topology generators.
//
// Includes the concrete experiment topologies (star, triangle, FatTree) and
// the synthetic stand-ins for the paper's datasets: an Internet-Topology-Zoo-
// like suite (261 WAN graphs, 4..754 nodes) and a Rocketfuel-like suite
// (10 power-law router-level graphs, up to ~11800 nodes).  See DESIGN.md for
// why these substitutions preserve the Figure 9 behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/topology.hpp"

namespace monocle::topo {

/// Star: node 0 is the hub, nodes 1..n are leaves.
Topology make_star(std::size_t leaves);

/// Triangle of three switches (the Figure 5 testbed shape).
Topology make_triangle();

/// Cycle of n nodes.
Topology make_ring(std::size_t n);

/// Path of n nodes.
Topology make_line(std::size_t n);

/// w x h grid.
Topology make_grid(std::size_t w, std::size_t h);

/// k-ary FatTree: k^2/4 core + k pods of (k/2 agg + k/2 edge) switches.
/// k=4 yields the paper's 20-switch network (§8.4).  Nodes are ordered:
/// core [0, k^2/4), then per pod: aggregation, then edge.
Topology make_fattree(int k);

/// Node index helpers for make_fattree.
struct FatTreeIndex {
  int k;
  [[nodiscard]] std::size_t core_count() const {
    return static_cast<std::size_t>(k) * k / 4;
  }
  [[nodiscard]] std::size_t switch_count() const {
    return core_count() + static_cast<std::size_t>(k) * k;
  }
  [[nodiscard]] NodeId core(int i) const { return static_cast<NodeId>(i); }
  [[nodiscard]] NodeId agg(int pod, int i) const {
    return static_cast<NodeId>(core_count() + static_cast<std::size_t>(pod) * k +
                               static_cast<std::size_t>(i));
  }
  [[nodiscard]] NodeId edge(int pod, int i) const {
    return static_cast<NodeId>(core_count() + static_cast<std::size_t>(pod) * k +
                               static_cast<std::size_t>(k) / 2 +
                               static_cast<std::size_t>(i));
  }
};

/// Waxman random graph (geometric), forced connected by a spanning chain.
Topology make_waxman(std::size_t n, double alpha, double beta,
                     std::uint64_t seed);

/// Barabasi–Albert preferential attachment with m edges per new node.
Topology make_barabasi_albert(std::size_t n, int m, std::uint64_t seed);

/// Ring with `chords` random chords (a common WAN shape in Topology Zoo).
Topology make_ring_with_chords(std::size_t n, std::size_t chords,
                               std::uint64_t seed);

/// Hub-and-spoke: `hubs` fully meshed hubs, leaves attached round-robin.
Topology make_hub_and_spoke(std::size_t hubs, std::size_t leaves,
                            std::uint64_t seed);

/// 261 synthetic Topology-Zoo-like graphs (sizes and densities matched to
/// the Zoo's distribution; includes the 754-node outlier and a few
/// high-degree-hub networks).
std::vector<Topology> zoo_like_suite(std::uint64_t seed);

/// 10 synthetic Rocketfuel-like power-law graphs, largest ~11800 nodes.
std::vector<Topology> rocketfuel_like_suite(std::uint64_t seed);

/// One Rocketfuel-like AS-level graph at a configurable size (the fig11
/// scale-out sweeps use 100–1000 switches).  Structure mirrors measured AS
/// maps: a power-law transit core grown by preferential attachment (m=2),
/// a ~35% fringe of degree-1 stub ASes attached degree-proportionally, and
/// a small densely meshed tier-1 clique.  `max_degree` caps hub growth
/// (router-level maps are degree-truncated the same way; the connectivity
/// fallback can exceed it only when the cap is tighter than the core
/// clique can absorb).  The graph is always connected.
Topology make_rocketfuel_as(std::size_t switches, std::uint64_t seed,
                            std::size_t max_degree = 48);

}  // namespace monocle::topo
