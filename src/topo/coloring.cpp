#include "topo/coloring.hpp"

#include <algorithm>
#include <numeric>

namespace monocle::topo {

Coloring greedy_coloring(const Topology& g, const std::vector<NodeId>& order) {
  Coloring out;
  out.color.assign(g.node_count(), -1);
  std::vector<int> used;  // scratch: colors used by neighbors
  for (const NodeId n : order) {
    used.clear();
    for (const NodeId m : g.neighbors(n)) {
      if (out.color[m] >= 0) used.push_back(out.color[m]);
    }
    std::sort(used.begin(), used.end());
    int c = 0;
    for (const int uc : used) {
      if (uc == c) {
        ++c;
      } else if (uc > c) {
        break;
      }
    }
    out.color[n] = c;
    out.color_count = std::max(out.color_count, c + 1);
  }
  return out;
}

Coloring largest_first_coloring(const Topology& g) {
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  return greedy_coloring(g, order);
}

Coloring dsatur_coloring(const Topology& g) {
  const std::size_t n = g.node_count();
  Coloring out;
  out.color.assign(n, -1);
  if (n == 0) return out;

  std::vector<int> saturation(n, 0);
  std::vector<std::vector<bool>> neighbor_colors(n);  // grown lazily
  std::vector<bool> colored(n, false);

  for (std::size_t step = 0; step < n; ++step) {
    // Pick the uncolored node with max saturation; tie-break on degree.
    NodeId best = 0;
    int best_sat = -1;
    std::size_t best_deg = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (colored[v]) continue;
      if (saturation[v] > best_sat ||
          (saturation[v] == best_sat && g.degree(v) > best_deg)) {
        best = v;
        best_sat = saturation[v];
        best_deg = g.degree(v);
      }
    }
    // Smallest color not used by neighbors.
    auto& nc = neighbor_colors[best];
    int c = 0;
    while (static_cast<std::size_t>(c) < nc.size() && nc[c]) ++c;
    out.color[best] = c;
    out.color_count = std::max(out.color_count, c + 1);
    colored[best] = true;
    for (const NodeId m : g.neighbors(best)) {
      if (colored[m]) continue;
      auto& mc = neighbor_colors[m];
      if (static_cast<std::size_t>(c) >= mc.size()) mc.resize(c + 1, false);
      if (!mc[c]) {
        mc[c] = true;
        ++saturation[m];
      }
    }
  }
  return out;
}

int greedy_clique_bound(const Topology& g) {
  // Grow a clique starting from each of the top-degree vertices.
  std::vector<NodeId> order(g.node_count());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  int best = g.node_count() > 0 ? 1 : 0;
  const std::size_t tries = std::min<std::size_t>(8, order.size());
  for (std::size_t t = 0; t < tries; ++t) {
    std::vector<NodeId> clique{order[t]};
    for (const NodeId cand : g.neighbors(order[t])) {
      bool adjacent_to_all = true;
      for (const NodeId member : clique) {
        if (member != cand && !g.has_edge(member, cand)) {
          adjacent_to_all = false;
          break;
        }
      }
      if (adjacent_to_all) clique.push_back(cand);
    }
    best = std::max(best, static_cast<int>(clique.size()));
  }
  return best;
}

namespace {

/// Branch-and-bound state for exact coloring.
struct ExactSearch {
  const Topology& g;
  std::uint64_t budget;
  std::uint64_t nodes = 0;
  int best_count;               // colors in the incumbent
  std::vector<int> best_color;  // incumbent
  std::vector<int> color;       // working assignment
  int lower_bound;
  bool exhausted = false;

  ExactSearch(const Topology& graph, const Coloring& incumbent, int lb,
              std::uint64_t node_budget)
      : g(graph),
        budget(node_budget),
        best_count(incumbent.color_count),
        best_color(incumbent.color),
        color(graph.node_count(), -1),
        lower_bound(lb) {}

  // Returns the uncolored vertex with maximum saturation (DSATUR branching).
  std::optional<NodeId> pick() const {
    std::optional<NodeId> best;
    int best_sat = -1;
    std::size_t best_deg = 0;
    std::vector<bool> seen_colors;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (color[v] >= 0) continue;
      seen_colors.assign(static_cast<std::size_t>(best_count) + 1, false);
      int sat = 0;
      for (const NodeId m : g.neighbors(v)) {
        if (color[m] >= 0 && !seen_colors[static_cast<std::size_t>(color[m])]) {
          seen_colors[static_cast<std::size_t>(color[m])] = true;
          ++sat;
        }
      }
      if (sat > best_sat || (sat == best_sat && g.degree(v) > best_deg)) {
        best = v;
        best_sat = sat;
        best_deg = g.degree(v);
      }
    }
    return best;
  }

  void search(int used_colors) {
    if (exhausted) return;
    if (++nodes > budget) {
      exhausted = true;
      return;
    }
    if (used_colors >= best_count) return;  // cannot improve
    const auto picked = pick();
    if (!picked) {
      // Complete, strictly better coloring.
      best_count = used_colors;
      best_color = color;
      return;
    }
    const NodeId v = *picked;
    std::vector<bool> forbidden(static_cast<std::size_t>(used_colors) + 1, false);
    for (const NodeId m : g.neighbors(v)) {
      if (color[m] >= 0 && color[m] <= used_colors) {
        forbidden[static_cast<std::size_t>(color[m])] = true;
      }
    }
    // Try existing colors, then (at most) one fresh color.
    const int try_up_to = std::min(used_colors, best_count - 1);
    for (int c = 0; c <= try_up_to && !exhausted; ++c) {
      if (c < used_colors && forbidden[static_cast<std::size_t>(c)]) continue;
      if (c == used_colors && used_colors + 1 >= best_count) break;
      color[v] = c;
      search(std::max(used_colors, c + 1));
      color[v] = -1;
      if (best_count == lower_bound) return;  // provably optimal
    }
  }
};

}  // namespace

Coloring exact_coloring(const Topology& g, std::uint64_t node_budget) {
  Coloring heuristic = dsatur_coloring(g);
  const Coloring lf = largest_first_coloring(g);
  if (lf.color_count < heuristic.color_count) heuristic = lf;
  const int lb = greedy_clique_bound(g);
  if (heuristic.color_count == lb || g.node_count() == 0) {
    heuristic.exact = true;
    return heuristic;
  }
  ExactSearch search(g, heuristic, lb, node_budget);
  search.search(0);
  Coloring out;
  out.color = std::move(search.best_color);
  out.color_count = search.best_count;
  out.exact = !search.exhausted;
  return out;
}

bool is_proper_coloring(const Topology& g, const Coloring& c) {
  if (c.color.size() != g.node_count()) return false;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (c.color[v] < 0 || c.color[v] >= c.color_count) return false;
    for (const NodeId m : g.neighbors(v)) {
      if (c.color[v] == c.color[m]) return false;
    }
  }
  return true;
}

}  // namespace monocle::topo
