// ChannelBackend: SwitchBackend over a real OpenFlow 1.0 control channel.
//
// Owns one OfSession and keeps it alive: dials through a caller-supplied
// non-blocking Dialer, handshakes, reports up/down transitions, queues a
// bounded number of messages while the channel is down and flushes them on
// reconnect, and re-dials with exponential backoff whenever the session
// dies (dead peer, handshake stall, refused dial).  The same class serves
// outgoing TCP connections (dialer = TcpTransport::dial), accepted ones
// (dialer pops a listener's accept queue) and in-process loopback pairs
// (dialer hands out LoopbackTransport endpoints) — reconnect policy is
// identical in all three.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "channel/of_session.hpp"
#include "channel/switch_backend.hpp"
#include "channel/transport.hpp"
#include "monocle/runtime.hpp"

namespace monocle::channel {

class ChannelBackend final : public SwitchBackend {
 public:
  /// Produces the next connection attempt's Connection, or nullptr when no
  /// connection is available right now (the backend backs off and retries).
  /// Must not block.
  using Dialer = std::function<Connection*()>;

  struct Config {
    OfSession::Config session;
    /// Reconnect backoff: first retry after `reconnect_initial`, doubling up
    /// to `reconnect_max` until a handshake completes (which resets it).
    netbase::SimTime reconnect_initial = 100 * netbase::kMillisecond;
    netbase::SimTime reconnect_max = 5 * netbase::kSecond;
    /// Messages queued while the channel is down; beyond this the OLDEST
    /// queued message is dropped (new state supersedes old).
    std::size_t max_queued = 256;
    /// When non-zero, a handshake whose FEATURES_REPLY reports a different
    /// datapath id is treated as a failed attempt (wrong switch answered).
    std::uint64_t expected_dpid = 0;
  };

  struct Stats {
    std::uint64_t connects = 0;     ///< successful handshakes
    std::uint64_t disconnects = 0;  ///< sessions lost after being up
    std::uint64_t dial_attempts = 0;
    std::uint64_t messages_queued = 0;
    std::uint64_t messages_dropped = 0;  ///< queue overflow while down
    /// Same events as messages_dropped, but never reset and counted at the
    /// overflow site specifically — the while-down queue silently shedding
    /// its oldest message is an operational signal (a long outage is losing
    /// controller state), so it gets its own counter and a log hook.
    std::uint64_t queue_overflow_drops = 0;
  };

  ChannelBackend(Config config, Runtime* runtime, Dialer dialer);
  ~ChannelBackend() override;

  ChannelBackend(const ChannelBackend&) = delete;
  ChannelBackend& operator=(const ChannelBackend&) = delete;

  // --- SwitchBackend -------------------------------------------------------
  void start() override;
  void stop() override;
  void send(const openflow::Message& msg) override;
  void set_receiver(Receiver receiver) override { receiver_ = std::move(receiver); }
  void set_state_handler(StateHandler handler) override {
    state_handler_ = std::move(handler);
  }
  [[nodiscard]] bool up() const override { return up_; }
  [[nodiscard]] std::uint64_t datapath_id() const override { return dpid_; }

  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Invoked with each message the while-down queue sheds on overflow,
  /// before it is destroyed — hosts log/alarm on it.  Optional.
  void set_overflow_handler(std::function<void(const openflow::Message&)> h) {
    overflow_handler_ = std::move(h);
  }
  /// The underlying session (tests inspect handshake state and barriers).
  [[nodiscard]] OfSession& session() { return session_; }
  /// Next retry delay the backoff would use (tests assert doubling).
  [[nodiscard]] netbase::SimTime current_backoff() const { return backoff_; }

 private:
  void try_connect();
  void schedule_retry();
  void on_session_up(const openflow::FeaturesReply& features);
  void on_session_dead();

  Config config_;
  Runtime* runtime_;
  Dialer dialer_;
  Receiver receiver_;
  StateHandler state_handler_;
  std::function<void(const openflow::Message&)> overflow_handler_;

  OfSession session_;
  bool running_ = false;
  bool up_ = false;
  std::uint64_t dpid_ = 0;
  netbase::SimTime backoff_;
  std::deque<openflow::Message> queue_;  // held while down
  // Zeroed on fire/cancel per the Runtime timer contract (runtime.hpp).
  std::uint64_t retry_timer_ = 0;
  Stats stats_;
};

}  // namespace monocle::channel
