#include "channel/wallclock_runtime.hpp"

#include <algorithm>
#include <thread>

namespace monocle::channel {

using netbase::SimTime;

WallclockRuntime::WallclockRuntime() : start_(std::chrono::steady_clock::now()) {}

SimTime WallclockRuntime::now() const {
  return static_cast<SimTime>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

std::uint64_t WallclockRuntime::schedule(SimTime delay,
                                         std::function<void()> fn) {
  // Per the Runtime contract: ids are non-zero and never reissued while
  // live (a 64-bit counter does not wrap in practice; skip live ids anyway).
  while (next_id_ == 0 || live_.contains(next_id_)) ++next_id_;
  const std::uint64_t id = next_id_++;
  live_.insert(id);
  queue_.push(Event{now() + delay, next_seq_++, id, std::move(fn)});
  return id;
}

void WallclockRuntime::cancel(std::uint64_t timer_id) { live_.erase(timer_id); }

void WallclockRuntime::post(std::function<void()> fn) {
  std::lock_guard lock(posted_mu_);
  posted_.push_back(std::move(fn));
}

void WallclockRuntime::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard lock(posted_mu_);
    batch.swap(posted_);  // run outside the lock: closures may post() again
  }
  for (auto& fn : batch) fn();
}

std::size_t WallclockRuntime::fire_due() {
  std::size_t fired = 0;
  const SimTime t = now();
  while (!queue_.empty() && queue_.top().when <= t) {
    Event ev = queue_.top();
    queue_.pop();
    if (live_.erase(ev.id) == 0) continue;  // cancelled
    ++fired;
    ev.fn();
  }
  return fired;
}

void WallclockRuntime::run(Transport* transport,
                           const std::function<bool()>& until) {
  // Cap the wait so the stop predicate and freshly scheduled timers are
  // observed promptly even on an idle channel.
  constexpr SimTime kMaxWait = 50 * netbase::kMillisecond;
  while (!until()) {
    drain_posted();  // cross-thread closures land before this tick's timers
    fire_due();
    SimTime wait = kMaxWait;
    // Skip cancelled heap tops so they don't clamp the wait to 0 forever.
    while (!queue_.empty() && !live_.contains(queue_.top().id)) queue_.pop();
    if (!queue_.empty()) {
      const SimTime t = now();
      const SimTime due = queue_.top().when;
      wait = due > t ? std::min(kMaxWait, due - t) : 0;
    }
    if (transport != nullptr) {
      transport->pump_wait(wait);
    } else if (wait > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(wait));
    }
  }
}

void WallclockRuntime::run_for(Transport* transport, SimTime duration) {
  const SimTime deadline = now() + duration;
  run(transport, [this, deadline] { return now() >= deadline; });
}

}  // namespace monocle::channel
