// Wall-clock Runtime: the live-deployment counterpart of the simulator's
// EventQueue.
//
// Implements the monocle::Runtime clock/timer contract against
// std::chrono::steady_clock and integrates transport I/O into the same
// loop: run() alternates firing due timers with pumping a Transport,
// waiting (in the transport's poll primitive, when it has one) until the
// next timer deadline.  This is what lets the Monitor/Fleet stack — written
// entirely against Runtime — drive live switches with zero changes: sim
// time and wall-clock backends share one scheduler abstraction.
//
// Single-threaded, like EventQueue: schedule()/cancel() must be called from
// the loop thread (timer callbacks and transport callbacks already are).
// The ONE cross-thread entry point is post(): other threads — a
// multi-worker fleet engine's workers, a telemetry thread — hand the loop a
// closure, and run() executes it on the loop thread within the next wait
// cap (50 ms worst case on an idle channel).  Everything else stays
// lock-free on the hot path.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <unordered_set>
#include <vector>

#include "channel/transport.hpp"
#include "monocle/runtime.hpp"
#include "netbase/time.hpp"

namespace monocle::channel {

class WallclockRuntime final : public Runtime {
 public:
  WallclockRuntime();

  /// Nanoseconds since construction (steady clock).
  [[nodiscard]] netbase::SimTime now() const override;

  std::uint64_t schedule(netbase::SimTime delay,
                         std::function<void()> fn) override;
  void cancel(std::uint64_t timer_id) override;

  /// Runs until `until()` returns true: fires due timers, pumps `transport`
  /// (nullable), and waits for I/O up to the next timer deadline (capped so
  /// stop predicates are re-checked promptly).
  void run(Transport* transport, const std::function<bool()>& until);

  /// run() bounded by wall-clock duration.
  void run_for(Transport* transport, netbase::SimTime duration);

  /// Thread-safe: enqueues `fn` to run on the loop thread at the top of the
  /// next run() iteration (observed within the loop's 50 ms wait cap).  The
  /// handoff lane for cross-thread work — schedule()/cancel() remain loop-
  /// thread-only, so a worker that must arm a timer on this runtime posts a
  /// closure that does the scheduling from the loop itself.
  void post(std::function<void()> fn);

  [[nodiscard]] std::size_t pending() const { return live_.size(); }

 private:
  struct Event {
    netbase::SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  /// Fires every timer due at `now`; returns the count fired.
  std::size_t fire_due();

  /// Runs (and clears) everything post()ed so far; loop thread only.
  void drain_posted();

  std::chrono::steady_clock::time_point start_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<std::uint64_t> live_;  // ids not yet fired or cancelled
  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;  // cross-thread closures
};

}  // namespace monocle::channel
