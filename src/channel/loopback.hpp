// In-process loopback transport: deterministic connection pairs for tests.
//
// A loopback pair is two Connection endpoints whose byte queues cross: bytes
// sent on one side are delivered to the other side's on_bytes callback on
// the next pump().  Delivery order is deterministic (endpoints are pumped in
// creation order) and chunking is controllable, so framing code can be
// exercised byte-at-a-time without sockets.  This is the transport behind
// tests/channel_test.cpp's end-to-end Monitor-over-wire runs.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "channel/transport.hpp"

namespace monocle::channel {

class LoopbackTransport final : public Transport {
 public:
  LoopbackTransport();
  ~LoopbackTransport() override;

  struct Endpoints {
    Connection* a = nullptr;
    Connection* b = nullptr;
  };

  /// Creates a connected pair.  Both pointers stay valid for the transport's
  /// lifetime (closed endpoints are retained, not reclaimed — loopback runs
  /// are short-lived tests).
  Endpoints make_pair();

  /// Caps bytes delivered per endpoint per pump; 0 (default) is unlimited.
  /// A limit of 1 exercises byte-at-a-time reassembly.
  void set_chunk_limit(std::size_t bytes) { chunk_limit_ = bytes; }

  /// Severs a pair from "outside" (cable cut): both endpoints close and BOTH
  /// see on_closed on the next pump, undelivered bytes are dropped.  Unlike
  /// Connection::close(), which models a deliberate local shutdown.
  void sever(const Endpoints& pair);

  std::size_t pump() override;

  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_moved_; }

 private:
  class End;

  std::vector<std::unique_ptr<End>> ends_;
  std::size_t chunk_limit_ = 0;
  std::uint64_t bytes_moved_ = 0;
};

}  // namespace monocle::channel
