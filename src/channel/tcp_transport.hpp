// Non-blocking TCP transport: poll(2)-driven listener + connections.
//
// The live-switch counterpart of LoopbackTransport.  All sockets are
// non-blocking; pump() (or pump_wait, which parks in poll(2) up to the
// caller's deadline) accepts pending connections, drains readable sockets
// into on_bytes callbacks, completes in-progress connects and flushes
// partial writes.  Multiple listeners are supported (one OpenFlow switch
// per port is the simplest way to tell OVS bridges apart before their
// FEATURES_REPLY arrives — see examples/live_monitor.cpp).
//
// POSIX-only; on other platforms the class compiles to stubs that fail to
// listen/dial (the rest of the channel layer — loopback, session, backends —
// is fully portable).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "channel/transport.hpp"

namespace monocle::channel {

class TcpTransport final : public Transport {
 public:
  TcpTransport();
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Starts listening on `port` (0 picks an ephemeral port — see
  /// listen_port); accepted connections are handed to `on_accept` from
  /// pump().  Returns false when the socket cannot be bound.
  bool listen(std::uint16_t port, std::function<void(Connection*)> on_accept,
              const std::string& bind_addr = "0.0.0.0");

  /// The actual port of the most recent successful listen() (resolves 0).
  [[nodiscard]] std::uint16_t listen_port() const { return last_listen_port_; }

  /// Starts a non-blocking connect to host:port (numeric IPv4).  Returns
  /// the connection immediately; connect failures surface as on_closed from
  /// a later pump().  nullptr only when the socket cannot be created.
  Connection* dial(const std::string& host, std::uint16_t port);

  std::size_t pump() override;
  std::size_t pump_wait(netbase::SimTime max_wait) override;

 private:
  class Conn;
  struct Listener;

  std::size_t pump_with_timeout(int timeout_ms);

  std::vector<std::unique_ptr<Listener>> listeners_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint16_t last_listen_port_ = 0;
};

}  // namespace monocle::channel
