#include "channel/of_session.hpp"

#include <utility>

namespace monocle::channel {

using openflow::Message;

OfSession::OfSession(Config config, Runtime* runtime, Hooks hooks)
    : config_(config), runtime_(runtime), hooks_(std::move(hooks)) {}

OfSession::~OfSession() { detach(); }

void OfSession::attach(Connection* conn) {
  detach();  // reset any previous connection state
  conn_ = conn;
  frames_.reset();
  frames_.set_max_frame_len(config_.max_frame_len);
  last_rx_ = runtime_->now();
  state_ = State::kHello;
  // Our HELLO must be on the wire BEFORE the callbacks go in: installing
  // them can synchronously replay input buffered since accept (a fast
  // switch's HELLO), and answering that with FEATURES_REQUEST ahead of our
  // own HELLO would violate OF 1.0 version negotiation.
  send(openflow::make_message(next_xid(), openflow::Hello{}));
  handshake_timer_ = runtime_->schedule(config_.handshake_timeout, [this] {
    handshake_timer_ = 0;
    if (state_ == State::kHello || state_ == State::kFeatures) die();
  });
  conn_->set_callbacks({
      [this](std::span<const std::uint8_t> bytes) { on_bytes(bytes); },
      [this] { die(); },
  });
}

void OfSession::detach() {
  runtime_->cancel(handshake_timer_);
  handshake_timer_ = 0;
  runtime_->cancel(echo_timer_);
  echo_timer_ = 0;
  barriers_.clear();
  frames_.reset();
  if (conn_ != nullptr) {
    conn_->set_callbacks({});
    conn_->close();
    conn_ = nullptr;
  }
  state_ = State::kIdle;
}

void OfSession::send(const Message& msg) {
  if (conn_ == nullptr || !conn_->is_open()) return;
  conn_->send(openflow::encode_message(msg));
  ++stats_.messages_tx;
}

std::uint32_t OfSession::send_barrier(
    std::function<void(std::uint32_t)> on_reply) {
  const std::uint32_t xid = next_xid();
  barriers_[xid] = std::move(on_reply);
  send(openflow::make_message(xid, openflow::BarrierRequest{}));
  return xid;
}

void OfSession::on_bytes(std::span<const std::uint8_t> bytes) {
  frames_.feed(bytes);
  while (const auto msg = frames_.next()) handle(*msg);
  if (frames_.corrupt()) {
    ++stats_.protocol_errors;
    die();
  }
}

void OfSession::handle(const Message& msg) {
  ++stats_.messages_rx;
  last_rx_ = runtime_->now();

  if (msg.is<openflow::Hello>()) {
    if (state_ == State::kHello) {
      state_ = State::kFeatures;
      send(openflow::make_message(next_xid(), openflow::FeaturesRequest{}));
    }
    return;
  }
  if (msg.is<openflow::EchoRequest>()) {
    // Always answered, in any state — the peer's keepalive must not depend
    // on ours.
    send(openflow::make_message(
        msg.xid, openflow::EchoReply{msg.as<openflow::EchoRequest>().payload}));
    return;
  }
  if (msg.is<openflow::EchoReply>()) {
    ++stats_.echo_replies;
    return;  // last_rx_ refresh above is the liveness signal
  }
  if (msg.is<openflow::FeaturesReply>()) {
    if (state_ == State::kFeatures) {
      features_ = msg.as<openflow::FeaturesReply>();
      state_ = State::kUp;
      runtime_->cancel(handshake_timer_);
      handshake_timer_ = 0;
      arm_echo();
      if (hooks_.on_up) hooks_.on_up(features_);
    }
    return;
  }
  if (msg.is<openflow::BarrierReply>()) {
    const auto it = barriers_.find(msg.xid);
    if (it != barriers_.end()) {
      auto cb = std::move(it->second);
      barriers_.erase(it);
      if (cb) cb(msg.xid);
      return;
    }
    // Not ours (e.g. a controller barrier proxied by the Monitor): pass up.
  }
  if (msg.is<openflow::ErrorMsg>()) ++stats_.protocol_errors;
  if (hooks_.on_message) hooks_.on_message(msg);
}

void OfSession::arm_echo() {
  echo_timer_ = runtime_->schedule(config_.echo_interval, [this] {
    echo_timer_ = 0;
    echo_tick();
  });
}

void OfSession::echo_tick() {
  if (state_ != State::kUp) return;
  if (runtime_->now() - last_rx_ >= config_.echo_timeout) {
    die();
    return;
  }
  ++stats_.echoes_sent;
  send(openflow::make_message(next_xid(),
                              openflow::EchoRequest{{'m', 'n', 'c', 'l'}}));
  arm_echo();
}

void OfSession::die() {
  if (state_ == State::kDead || state_ == State::kIdle) return;
  state_ = State::kDead;
  runtime_->cancel(handshake_timer_);
  handshake_timer_ = 0;
  runtime_->cancel(echo_timer_);
  echo_timer_ = 0;
  barriers_.clear();  // pending barrier callbacks are dropped, not invoked
  if (conn_ != nullptr) {
    conn_->set_callbacks({});
    conn_->close();
    conn_ = nullptr;
  }
  if (hooks_.on_dead) hooks_.on_dead();
}

}  // namespace monocle::channel
