// SwitchBackend: the one interface through which the monitoring stack talks
// to a switch.
//
// A backend hides HOW control messages reach one switch: the in-process
// simulator (switchsim::SimSwitchBackend delivers straight into a
// SimSwitch), or a real OpenFlow 1.0 control channel (ChannelBackend speaks
// the wire protocol over a Transport connection, with handshake, keepalive
// and reconnect).  Monitor, Multiplexer, Fleet and Testbed are written
// against this interface, so the same monitoring pipeline runs unchanged
// against simulated and live switches — the architectural seam behind the
// paper's "works on unmodified OpenFlow switches" claim (§3).
#pragma once

#include <cstdint>
#include <functional>

#include "openflow/messages.hpp"

namespace monocle::channel {

class SwitchBackend {
 public:
  /// Receives every switch→controller message the backend delivers.
  using Receiver = std::function<void(const openflow::Message&)>;
  /// Observes channel up/down transitions (handshake completed / peer lost).
  using StateHandler = std::function<void(bool up)>;

  virtual ~SwitchBackend() = default;

  /// Begins delivering messages (sim: wires the control sink; channel:
  /// dials and handshakes).  Handlers should be set before start().
  virtual void start() = 0;

  /// Terminal teardown: stops reconnecting, cancels timers, closes the
  /// channel.  No handler fires after stop() returns.
  virtual void stop() = 0;

  /// Sends a controller→switch message.  Backends with a real channel queue
  /// (bounded) while down and flush on reconnect; never blocks.
  virtual void send(const openflow::Message& msg) = 0;

  virtual void set_receiver(Receiver receiver) = 0;
  virtual void set_state_handler(StateHandler handler) = 0;

  /// True when messages currently flow (sim: started; channel: handshaked).
  [[nodiscard]] virtual bool up() const = 0;

  /// The switch's datapath id (sim: the switch id; channel: learned from
  /// FEATURES_REPLY — 0 until the first handshake completes).
  [[nodiscard]] virtual std::uint64_t datapath_id() const = 0;
};

}  // namespace monocle::channel
