#include "channel/loopback.hpp"

#include <algorithm>
#include <string>

namespace monocle::channel {

class LoopbackTransport::End final : public Connection {
 public:
  End(std::size_t index) : index_(index) {}

  void set_callbacks(Callbacks callbacks) override {
    callbacks_ = std::move(callbacks);
  }

  bool send(std::span<const std::uint8_t> bytes) override {
    if (!open_) return false;
    outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
    return true;
  }

  void close() override {
    if (!open_) return;
    open_ = false;
    locally_closed_ = true;
    // A deliberate local close still flushes what we already queued; the
    // peer's on_closed is delivered once the outbox drains (see pump()).
  }

  [[nodiscard]] bool is_open() const override { return open_; }

  [[nodiscard]] std::string describe() const override {
    return "loopback#" + std::to_string(index_);
  }

 private:
  friend class LoopbackTransport;

  /// This end's incoming stream is dead: the peer can never deliver more
  /// bytes (closed or severed, nothing left in its outbox).
  [[nodiscard]] bool inbound_dead() const {
    return peer_ != nullptr && !peer_->open_ && peer_->outbox_.empty();
  }

  std::size_t index_;
  End* peer_ = nullptr;
  Callbacks callbacks_;
  std::deque<std::uint8_t> outbox_;
  bool open_ = true;
  bool locally_closed_ = false;  // close() called here: no on_closed to us
  bool notified_ = false;        // on_closed already delivered to us
};

LoopbackTransport::LoopbackTransport() = default;

LoopbackTransport::~LoopbackTransport() = default;

LoopbackTransport::Endpoints LoopbackTransport::make_pair() {
  auto a = std::make_unique<End>(ends_.size());
  auto b = std::make_unique<End>(ends_.size() + 1);
  a->peer_ = b.get();
  b->peer_ = a.get();
  Endpoints pair{a.get(), b.get()};
  ends_.push_back(std::move(a));
  ends_.push_back(std::move(b));
  return pair;
}

void LoopbackTransport::sever(const Endpoints& pair) {
  for (Connection* c : {pair.a, pair.b}) {
    auto* end = static_cast<End*>(c);
    end->open_ = false;
    end->outbox_.clear();  // cable cut: in-flight bytes are lost
  }
}

std::size_t LoopbackTransport::pump() {
  std::size_t events = 0;
  // Index-based loop: callbacks may send() (growing outboxes) but new pairs
  // created during a pump are only serviced from the next pump on.
  const std::size_t count = ends_.size();
  for (std::size_t i = 0; i < count; ++i) {
    End& from = *ends_[i];
    End* to = from.peer_;
    if (!from.outbox_.empty() && to != nullptr && to->is_open()) {
      const std::size_t n = chunk_limit_ == 0
                                ? from.outbox_.size()
                                : std::min(chunk_limit_, from.outbox_.size());
      std::vector<std::uint8_t> chunk(from.outbox_.begin(),
                                      from.outbox_.begin() +
                                          static_cast<std::ptrdiff_t>(n));
      from.outbox_.erase(from.outbox_.begin(),
                         from.outbox_.begin() + static_cast<std::ptrdiff_t>(n));
      bytes_moved_ += n;
      ++events;
      // Invoke a copy: the callback may replace/clear the connection's
      // callbacks from inside (session death paths do exactly that).
      if (const auto on_bytes = to->callbacks_.on_bytes) on_bytes(chunk);
    }
  }
  // Close notifications: an end whose inbound stream died (peer closed or
  // the pair was severed) gets on_closed exactly once — unless it closed
  // itself, in which case the close was its own decision.
  for (std::size_t i = 0; i < count; ++i) {
    End& end = *ends_[i];
    if (end.notified_ || end.locally_closed_ || !end.inbound_dead()) continue;
    end.notified_ = true;
    end.open_ = false;
    ++events;
    if (const auto on_closed = end.callbacks_.on_closed) on_closed();
  }
  return events;
}

}  // namespace monocle::channel
