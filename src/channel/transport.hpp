// Byte-stream transport abstraction for the OpenFlow control channel.
//
// A Transport owns a set of Connections (TCP sockets, in-process loopback
// pipes) and moves their bytes when pumped.  Everything is non-blocking and
// callback-driven: pump() performs whatever I/O is ready and invokes the
// per-connection callbacks inline, so a single scheduler — the simulator's
// EventQueue or the live WallclockRuntime — drives protocol timers and
// transport I/O together (see TransportPump below).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "monocle/runtime.hpp"
#include "netbase/time.hpp"

namespace monocle::channel {

/// One ordered, reliable byte stream (a control-channel connection).
///
/// Connections are created and owned by their Transport; users hold raw
/// pointers.  A pointer stays valid until the connection has been closed AND
/// its on_closed callback delivered — after that the Transport may reclaim
/// it on any later pump, so owners must drop their pointer from on_closed
/// (or immediately after calling close()).
class Connection {
 public:
  struct Callbacks {
    /// Bytes arrived (invoked from Transport::pump; the span is only valid
    /// for the duration of the call).
    std::function<void(std::span<const std::uint8_t>)> on_bytes;
    /// The peer closed or the stream failed.  Delivered at most once; not
    /// delivered for a locally initiated close().
    std::function<void()> on_closed;
  };

  virtual ~Connection() = default;

  /// Installs the receive-side callbacks.  Transports invoke a copy of each
  /// callback, so replacing or clearing them from WITHIN a callback (e.g. a
  /// session tearing itself down on protocol corruption) is safe.
  virtual void set_callbacks(Callbacks callbacks) = 0;

  /// Queues `bytes` for delivery.  Never blocks; returns false when the
  /// connection is already closed (bytes are dropped).
  virtual bool send(std::span<const std::uint8_t> bytes) = 0;

  /// Closes the stream locally.  The peer sees on_closed after in-flight
  /// bytes drain; our own on_closed is NOT invoked.
  virtual void close() = 0;

  [[nodiscard]] virtual bool is_open() const = 0;

  /// Human-readable endpoint description for logs ("127.0.0.1:6653",
  /// "loopback#3").
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// A pumpable collection of Connections.
///
/// pump() is the single non-blocking entry point: it performs all pending
/// I/O (accepts, reads, writes, close notifications) and returns the number
/// of events handled.  pump_wait() may additionally block up to `max_wait`
/// for I/O readiness — transports with a real selectable waiting primitive
/// (poll/epoll) override it; the default pumps and naps briefly so callers
/// never busy-spin.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Performs all ready I/O without blocking; returns events handled.
  virtual std::size_t pump() = 0;

  /// Like pump(), but may wait up to `max_wait` (nanoseconds) for readiness
  /// when nothing is pending.
  virtual std::size_t pump_wait(netbase::SimTime max_wait);
};

/// Drives a Transport from a Runtime's timer service: schedules itself every
/// `interval` and pumps.  This is how the simulated and the wall-clock
/// control channels share one scheduler — the EventQueue pumps a loopback
/// transport between simulated events exactly like the WallclockRuntime
/// pumps a TCP transport between real timers.
class TransportPump {
 public:
  TransportPump(Runtime* runtime, Transport* transport,
                netbase::SimTime interval);
  ~TransportPump();

  TransportPump(const TransportPump&) = delete;
  TransportPump& operator=(const TransportPump&) = delete;

  /// Starts the periodic pump (idempotent).
  void start();

  /// Cancels the pending pump timer; nothing dangles after this returns.
  /// Safe to call from inside a connection callback running under pump():
  /// the in-flight tick will not re-arm.
  void stop();

  [[nodiscard]] bool running() const { return running_; }

 private:
  void tick();

  Runtime* runtime_;
  Transport* transport_;
  netbase::SimTime interval_;
  bool running_ = false;
  // Zeroed on fire/cancel per the Runtime timer contract (runtime.hpp).
  std::uint64_t timer_ = 0;
};

}  // namespace monocle::channel
