#include "channel/transport.hpp"

#include <chrono>
#include <thread>

namespace monocle::channel {

std::size_t Transport::pump_wait(netbase::SimTime max_wait) {
  const std::size_t events = pump();
  if (events == 0 && max_wait > 0) {
    // No selectable primitive: nap briefly so run loops don't busy-spin.
    const auto nap = std::min<netbase::SimTime>(max_wait, netbase::kMillisecond);
    std::this_thread::sleep_for(std::chrono::nanoseconds(nap));
  }
  return events;
}

TransportPump::TransportPump(Runtime* runtime, Transport* transport,
                             netbase::SimTime interval)
    : runtime_(runtime), transport_(transport), interval_(interval) {}

TransportPump::~TransportPump() { stop(); }

void TransportPump::start() {
  if (running_) return;
  running_ = true;
  timer_ = runtime_->schedule(interval_, [this] {
    timer_ = 0;
    tick();
  });
}

void TransportPump::stop() {
  running_ = false;  // an in-flight tick checks this before re-arming
  runtime_->cancel(timer_);
  timer_ = 0;
}

void TransportPump::tick() {
  transport_->pump();
  if (!running_) return;  // stop() was called from inside the pump
  timer_ = runtime_->schedule(interval_, [this] {
    timer_ = 0;
    tick();
  });
}

}  // namespace monocle::channel
