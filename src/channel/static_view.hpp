// StaticNetworkView: operator-declared port-level topology for live
// deployments.
//
// The simulator's Network derives NetworkView from its own link table; a
// live Monitor has no such luxury — cabling is external knowledge.  This
// view is populated explicitly (from CLI flags, a config file, or LLDP
// results) and handed to Monitor/Multiplexer/Fleet unchanged.  Ports that
// are registered but unlinked behave as host/edge ports (peer() returns
// nullopt), exactly as in the sim.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "monocle/runtime.hpp"

namespace monocle::channel {

class StaticNetworkView final : public NetworkView {
 public:
  /// Declares a bidirectional link (`a`, `port_a`) <-> (`b`, `port_b`);
  /// both endpoints' ports are registered implicitly.
  void add_link(SwitchId a, std::uint16_t port_a, SwitchId b,
                std::uint16_t port_b) {
    links_[{a, port_a}] = PortPeer{b, port_b};
    links_[{b, port_b}] = PortPeer{a, port_a};
    add_port(a, port_a);
    add_port(b, port_b);
  }

  /// Registers a (possibly unlinked) port, e.g. from a FEATURES_REPLY port
  /// list.
  void add_port(SwitchId sw, std::uint16_t port) {
    auto& ports = ports_[sw];
    if (std::find(ports.begin(), ports.end(), port) == ports.end()) {
      ports.push_back(port);
      std::sort(ports.begin(), ports.end());
    }
  }

  // --- NetworkView ---------------------------------------------------------
  [[nodiscard]] std::optional<PortPeer> peer(
      SwitchId sw, std::uint16_t port) const override {
    const auto it = links_.find({sw, port});
    if (it == links_.end()) return std::nullopt;
    return it->second;
  }

  [[nodiscard]] std::vector<std::uint16_t> ports(SwitchId sw) const override {
    const auto it = ports_.find(sw);
    return it == ports_.end() ? std::vector<std::uint16_t>{} : it->second;
  }

 private:
  std::map<std::pair<SwitchId, std::uint16_t>, PortPeer> links_;
  std::map<SwitchId, std::vector<std::uint16_t>> ports_;
};

}  // namespace monocle::channel
