// Controller-side OpenFlow 1.0 session state machine.
//
// An OfSession owns the protocol lifecycle of one control-channel connection
// (see docs/PROTOCOL.md for the full message sequence charts):
//
//   attach() -> HELLO sent -> peer HELLO -> FEATURES_REQUEST ->
//   FEATURES_REPLY -> kUp -> ECHO keepalive until dead/detached
//
// While up it provides XID allocation, barrier correlation (send_barrier
// pairs a BARRIER_REQUEST with the matching BARRIER_REPLY by xid) and ECHO
// keepalive with dead-peer detection.  Handshake stalls, echo silence,
// peer close and framing corruption all funnel into one on_dead
// notification; reconnect policy lives a layer up (ChannelBackend).
//
// Single-threaded: all entry points must run on the owning Runtime's thread
// (transport pumps and timers already do).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "channel/transport.hpp"
#include "monocle/runtime.hpp"
#include "netbase/time.hpp"
#include "openflow/messages.hpp"
#include "openflow/wire.hpp"

namespace monocle::channel {

/// First session-allocated transaction id ("MC\0\0"): keeps session traffic
/// (handshake, echoes, session barriers) visibly apart from controller xids,
/// which real controllers allocate from small integers up.
inline constexpr std::uint32_t kSessionXidBase = 0x4D430000;

class OfSession {
 public:
  enum class State : std::uint8_t {
    kIdle,      ///< never attached (or detached)
    kHello,     ///< HELLO sent, waiting for the peer's HELLO
    kFeatures,  ///< FEATURES_REQUEST sent, waiting for the reply
    kUp,        ///< handshake complete; keepalive running
    kDead,      ///< peer lost (silence, close, corruption) — reconnect to reuse
  };

  struct Config {
    /// Keepalive probe period while up.
    netbase::SimTime echo_interval = 2 * netbase::kSecond;
    /// Dead-peer bound: if nothing arrives for this long the peer is dead.
    /// Must exceed echo_interval (an idle but healthy peer answers echoes).
    netbase::SimTime echo_timeout = 6 * netbase::kSecond;
    /// Bound on the whole HELLO/FEATURES exchange.
    netbase::SimTime handshake_timeout = 5 * netbase::kSecond;
    /// Frame-length ceiling fed to the FrameBuffer (hostile peers).
    std::size_t max_frame_len = openflow::FrameBuffer::kDefaultMaxFrameLen;
  };

  struct Hooks {
    /// A non-session message arrived while connected (FlowRemoved, PacketIn,
    /// uncorrelated BarrierReply, Error, ...).
    std::function<void(const openflow::Message&)> on_message;
    /// Handshake completed; the reply carries datapath id and port list.
    std::function<void(const openflow::FeaturesReply&)> on_up;
    /// The session died (at most once per attach).  The connection has
    /// already been closed; callers drop their Connection pointer here.
    std::function<void()> on_dead;
  };

  struct Stats {
    std::uint64_t messages_rx = 0;
    std::uint64_t messages_tx = 0;
    std::uint64_t echoes_sent = 0;
    std::uint64_t echo_replies = 0;
    std::uint64_t protocol_errors = 0;  ///< framing corruption, error msgs
  };

  OfSession(Config config, Runtime* runtime, Hooks hooks);
  ~OfSession();

  OfSession(const OfSession&) = delete;
  OfSession& operator=(const OfSession&) = delete;

  /// Binds to `conn` and starts the handshake (sends HELLO).  Reusable after
  /// kDead/detach(): all per-connection state is reset.
  void attach(Connection* conn);

  /// Unbinds without firing on_dead: cancels timers, forgets pending
  /// barriers, resets the frame buffer.  The connection is closed.
  void detach();

  /// Encodes and sends `msg` as-is (the caller's xid is preserved).  Dropped
  /// silently when not attached to an open connection.
  void send(const openflow::Message& msg);

  /// Allocates a session transaction id (see kSessionXidBase).
  std::uint32_t next_xid() { return next_xid_++; }

  /// Sends a BARRIER_REQUEST with a fresh session xid and invokes
  /// `on_reply` when the matching BARRIER_REPLY arrives.  Pending callbacks
  /// are dropped (not invoked) if the session dies first.
  std::uint32_t send_barrier(std::function<void(std::uint32_t)> on_reply);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] bool up() const { return state_ == State::kUp; }
  /// Valid once up() (the last handshake's FEATURES_REPLY).
  [[nodiscard]] const openflow::FeaturesReply& features() const {
    return features_;
  }
  [[nodiscard]] std::size_t pending_barriers() const {
    return barriers_.size();
  }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void on_bytes(std::span<const std::uint8_t> bytes);
  void handle(const openflow::Message& msg);
  void die();
  void arm_echo();
  void echo_tick();

  Config config_;
  Runtime* runtime_;
  Hooks hooks_;

  Connection* conn_ = nullptr;
  State state_ = State::kIdle;
  openflow::FrameBuffer frames_;
  openflow::FeaturesReply features_;
  std::uint32_t next_xid_ = kSessionXidBase;
  std::unordered_map<std::uint32_t, std::function<void(std::uint32_t)>>
      barriers_;  // by xid
  netbase::SimTime last_rx_ = 0;
  // Zeroed on fire/cancel per the Runtime timer contract (runtime.hpp).
  std::uint64_t handshake_timer_ = 0;
  std::uint64_t echo_timer_ = 0;
  Stats stats_;
};

}  // namespace monocle::channel
