#include "channel/channel_backend.hpp"

#include <algorithm>
#include <utility>

namespace monocle::channel {

ChannelBackend::ChannelBackend(Config config, Runtime* runtime, Dialer dialer)
    : config_(config),
      runtime_(runtime),
      dialer_(std::move(dialer)),
      session_(
          config_.session, runtime,
          OfSession::Hooks{
              [this](const openflow::Message& m) {
                if (receiver_) receiver_(m);
              },
              [this](const openflow::FeaturesReply& fr) { on_session_up(fr); },
              [this] { on_session_dead(); },
          }),
      backoff_(config_.reconnect_initial) {}

ChannelBackend::~ChannelBackend() { stop(); }

void ChannelBackend::start() {
  if (running_) return;
  running_ = true;
  backoff_ = config_.reconnect_initial;
  try_connect();
}

void ChannelBackend::stop() {
  running_ = false;
  runtime_->cancel(retry_timer_);
  retry_timer_ = 0;
  up_ = false;
  session_.detach();  // closes the connection without firing on_dead
  queue_.clear();
}

void ChannelBackend::send(const openflow::Message& msg) {
  if (up_) {
    session_.send(msg);
    return;
  }
  if (queue_.size() >= config_.max_queued) {
    if (overflow_handler_) overflow_handler_(queue_.front());
    queue_.pop_front();
    ++stats_.messages_dropped;
    ++stats_.queue_overflow_drops;
  }
  queue_.push_back(msg);
  ++stats_.messages_queued;
}

void ChannelBackend::try_connect() {
  if (!running_) return;
  ++stats_.dial_attempts;
  Connection* conn = dialer_ ? dialer_() : nullptr;
  if (conn == nullptr) {
    schedule_retry();
    return;
  }
  session_.attach(conn);  // handshake failure lands in on_session_dead
}

void ChannelBackend::schedule_retry() {
  if (!running_ || retry_timer_ != 0) return;
  retry_timer_ = runtime_->schedule(backoff_, [this] {
    retry_timer_ = 0;
    try_connect();
  });
  backoff_ = std::min(backoff_ * 2, config_.reconnect_max);
}

void ChannelBackend::on_session_up(const openflow::FeaturesReply& features) {
  if (config_.expected_dpid != 0 &&
      features.datapath_id != config_.expected_dpid) {
    // The wrong switch answered (shared listener): drop and keep dialing.
    session_.detach();
    schedule_retry();
    return;
  }
  dpid_ = features.datapath_id;
  backoff_ = config_.reconnect_initial;
  up_ = true;
  ++stats_.connects;
  // Flush messages held back while the channel was down.
  while (!queue_.empty() && up_) {
    session_.send(queue_.front());
    queue_.pop_front();
  }
  if (state_handler_) state_handler_(true);
}

void ChannelBackend::on_session_dead() {
  const bool was_up = up_;
  up_ = false;
  if (was_up) {
    ++stats_.disconnects;
    if (state_handler_) state_handler_(false);
  }
  schedule_retry();
}

}  // namespace monocle::channel
