#include "channel/tcp_transport.hpp"

#include <algorithm>
#include <cstring>
#include <deque>

#if defined(__unix__) || defined(__APPLE__)
#define MONOCLE_HAVE_POSIX_SOCKETS 1
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#else
#define MONOCLE_HAVE_POSIX_SOCKETS 0
#endif

namespace monocle::channel {

#if MONOCLE_HAVE_POSIX_SOCKETS

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

class TcpTransport::Conn final : public Connection {
 public:
  Conn(int fd, std::string desc, bool connecting)
      : fd_(fd), desc_(std::move(desc)), connecting_(connecting) {}

  ~Conn() override { close_fd(); }

  void set_callbacks(Callbacks callbacks) override {
    callbacks_ = std::move(callbacks);
    // Bytes (or a close) may have arrived between accept and adoption —
    // e.g. a switch's HELLO fired the instant it connected, while the
    // connection still sat in a listener's accept queue.  Deliver them now.
    if (callbacks_.on_bytes && !inbox_.empty()) {
      const std::vector<std::uint8_t> pending(inbox_.begin(), inbox_.end());
      inbox_.clear();
      const auto on_bytes = callbacks_.on_bytes;  // copy: may be replaced
      on_bytes(pending);
    }
    if (!open_ && !locally_closed_ && !notified_ && callbacks_.on_closed) {
      notified_ = true;
      const auto on_closed = callbacks_.on_closed;
      on_closed();
    }
  }

  bool send(std::span<const std::uint8_t> bytes) override {
    if (!open_) return false;
    // Append-then-flush keeps ordering with any queued remainder; actual
    // writes happen here opportunistically and from pump() on POLLOUT.
    outbuf_.insert(outbuf_.end(), bytes.begin(), bytes.end());
    if (!connecting_) flush();
    return open_;
  }

  void close() override {
    locally_closed_ = true;
    open_ = false;
    close_fd();
  }

  [[nodiscard]] bool is_open() const override { return open_; }

  [[nodiscard]] std::string describe() const override { return desc_; }

 private:
  friend class TcpTransport;

  void close_fd() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  /// Writes as much of outbuf_ as the socket accepts; on a hard error the
  /// connection is marked dead (on_closed delivered from pump()).
  void flush() {
    while (!outbuf_.empty()) {
      // deque storage is segmented; write the first contiguous run.
      const std::uint8_t* data = &outbuf_[0];
      std::size_t run = 1;
      while (run < outbuf_.size() && &outbuf_[run] == data + run) ++run;
      const ssize_t n = ::send(fd_, data, run, MSG_NOSIGNAL);
      if (n > 0) {
        outbuf_.erase(outbuf_.begin(),
                      outbuf_.begin() + static_cast<std::ptrdiff_t>(n));
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      open_ = false;  // peer reset underneath us
      return;
    }
  }

  /// Ceiling on bytes buffered for a not-yet-adopted connection; a peer
  /// that floods past it before anyone listens is dropped.
  static constexpr std::size_t kMaxInbox = 1 << 20;

  int fd_;
  std::string desc_;
  bool connecting_;  // non-blocking connect still in progress
  Callbacks callbacks_;
  std::deque<std::uint8_t> outbuf_;
  std::deque<std::uint8_t> inbox_;  // received before callbacks were set
  bool open_ = true;
  bool locally_closed_ = false;
  bool notified_ = false;
};

struct TcpTransport::Listener {
  int fd = -1;
  std::uint16_t port = 0;
  std::function<void(Connection*)> on_accept;

  ~Listener() {
    if (fd >= 0) ::close(fd);
  }
};

TcpTransport::TcpTransport() = default;

TcpTransport::~TcpTransport() = default;

bool TcpTransport::listen(std::uint16_t port,
                          std::function<void(Connection*)> on_accept,
                          const std::string& bind_addr) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind_addr.c_str(), &addr.sin_addr) != 1 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  auto listener = std::make_unique<Listener>();
  listener->fd = fd;
  listener->port = ntohs(addr.sin_port);
  listener->on_accept = std::move(on_accept);
  last_listen_port_ = listener->port;
  listeners_.push_back(std::move(listener));
  return true;
}

Connection* TcpTransport::dial(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      !set_nonblocking(fd)) {
    ::close(fd);
    return nullptr;
  }
  set_nodelay(fd);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  const bool connecting = rc != 0 && errno == EINPROGRESS;
  if (rc != 0 && !connecting) {
    ::close(fd);
    return nullptr;
  }
  auto conn = std::make_unique<Conn>(
      fd, host + ":" + std::to_string(port), connecting);
  Connection* raw = conn.get();
  conns_.push_back(std::move(conn));
  return raw;
}

std::size_t TcpTransport::pump() { return pump_with_timeout(0); }

std::size_t TcpTransport::pump_wait(netbase::SimTime max_wait) {
  const int ms = static_cast<int>(
      std::min<netbase::SimTime>(max_wait / netbase::kMillisecond, 1000));
  return pump_with_timeout(ms);
}

std::size_t TcpTransport::pump_with_timeout(int timeout_ms) {
  // Reclaim connections that are fully dead (closed AND either locally
  // closed or already notified) — owners dropped their pointers by then.
  std::erase_if(conns_, [](const std::unique_ptr<Conn>& c) {
    return !c->open_ && (c->locally_closed_ || c->notified_);
  });

  std::vector<pollfd> fds;
  std::vector<Conn*> fd_conns;  // parallel to the conn entries of fds
  fds.reserve(listeners_.size() + conns_.size());
  for (const auto& listener : listeners_) {
    fds.push_back({listener->fd, POLLIN, 0});
  }
  for (const auto& conn : conns_) {
    if (!conn->open_ || conn->fd_ < 0) continue;
    short events = POLLIN;
    if (conn->connecting_ || !conn->outbuf_.empty()) events |= POLLOUT;
    fds.push_back({conn->fd_, events, 0});
    fd_conns.push_back(conn.get());
  }
  if (fds.empty()) return 0;
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready <= 0) return 0;

  std::size_t events = 0;
  // Accept new connections.
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    for (;;) {
      sockaddr_in peer{};
      socklen_t len = sizeof(peer);
      const int cfd =
          ::accept(listeners_[i]->fd, reinterpret_cast<sockaddr*>(&peer), &len);
      if (cfd < 0) break;
      if (!set_nonblocking(cfd)) {
        ::close(cfd);
        continue;
      }
      set_nodelay(cfd);
      char ip[INET_ADDRSTRLEN] = "?";
      ::inet_ntop(AF_INET, &peer.sin_addr, ip, sizeof(ip));
      auto conn = std::make_unique<Conn>(
          cfd, std::string(ip) + ":" + std::to_string(ntohs(peer.sin_port)),
          /*connecting=*/false);
      Conn* raw = conn.get();
      conns_.push_back(std::move(conn));
      ++events;
      if (listeners_[i]->on_accept) listeners_[i]->on_accept(raw);
    }
  }
  // Service connections.
  for (std::size_t i = 0; i < fd_conns.size(); ++i) {
    Conn& conn = *fd_conns[i];
    const short revents = fds[listeners_.size() + i].revents;
    if (!conn.open_) continue;
    if (conn.connecting_ && (revents & (POLLOUT | POLLERR | POLLHUP)) != 0) {
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(conn.fd_, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        conn.open_ = false;
      } else {
        conn.connecting_ = false;
        conn.flush();
        ++events;
      }
    } else if ((revents & POLLOUT) != 0) {
      conn.flush();
    }
    if (conn.open_ && (revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      std::uint8_t buf[65536];
      for (;;) {
        const ssize_t n = ::recv(conn.fd_, buf, sizeof(buf), 0);
        if (n > 0) {
          ++events;
          // Invoke a copy: the callback may replace/clear the connection's
          // callbacks from inside (session death paths do exactly that).
          if (const auto on_bytes = conn.callbacks_.on_bytes) {
            on_bytes(std::span<const std::uint8_t>(
                buf, static_cast<std::size_t>(n)));
          } else {
            // Not yet adopted (sitting in an accept queue): buffer for
            // set_callbacks, bounded against hostile floods.
            conn.inbox_.insert(conn.inbox_.end(), buf, buf + n);
            if (conn.inbox_.size() > Conn::kMaxInbox) conn.open_ = false;
          }
          if (!conn.open_) break;  // callback closed us / inbox overflow
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        conn.open_ = false;  // orderly shutdown (n == 0) or hard error
        break;
      }
    }
  }
  // Close-notification sweep over ALL connections, not just the polled
  // ones: a connection can die outside pump() too (Conn::flush marking a
  // hard ::send error from a timer-driven session write), and such a conn
  // is excluded from the poll set above.  Without an on_closed observer
  // the notification is deferred: the eventual adopter learns of the close
  // from set_callbacks (and the connection must stay alive for it — see
  // the reclaim filter above).
  for (std::size_t i = 0; i < conns_.size(); ++i) {
    Conn& conn = *conns_[i];
    if (conn.open_ || conn.locally_closed_ || conn.notified_) continue;
    conn.close_fd();
    if (const auto on_closed = conn.callbacks_.on_closed) {
      conn.notified_ = true;
      ++events;
      on_closed();
    }
  }
  return events;
}

#else  // !MONOCLE_HAVE_POSIX_SOCKETS

class TcpTransport::Conn final : public Connection {};
struct TcpTransport::Listener {};

TcpTransport::TcpTransport() = default;
TcpTransport::~TcpTransport() = default;

bool TcpTransport::listen(std::uint16_t, std::function<void(Connection*)>,
                          const std::string&) {
  return false;
}

Connection* TcpTransport::dial(const std::string&, std::uint16_t) {
  return nullptr;
}

std::size_t TcpTransport::pump() { return 0; }

std::size_t TcpTransport::pump_wait(netbase::SimTime) { return 0; }

std::size_t TcpTransport::pump_with_timeout(int) { return 0; }

#endif  // MONOCLE_HAVE_POSIX_SOCKETS

}  // namespace monocle::channel
