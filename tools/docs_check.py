#!/usr/bin/env python3
"""Documentation consistency check.

Scans README.md, docs/DESIGN.md and docs/PROTOCOL.md for backtick-quoted
repository paths and fails if any referenced file or directory does not
exist.  Keeps the docs honest as the tree is refactored; wired up as the
`docs_check` build target and a ctest entry under the `docs` label (see
CMakeLists.txt).

Path candidates are backtick tokens that contain a '/' and consist only of
path characters (optionally a '*' glob, tried relative to the repo root and
under src/).  Generated artifacts (BENCH_*.json), build/ outputs, flags and
code identifiers are ignored.
"""
import glob
import os
import re
import sys

DOCS = [
    "README.md",
    os.path.join("docs", "DESIGN.md"),
    os.path.join("docs", "PROTOCOL.md"),
]
TOKEN_RE = re.compile(r"`([^`\n]+)`")
PATHISH_RE = re.compile(r"^[A-Za-z0-9_.\-/*]+$")


def is_candidate(token: str) -> bool:
    if not PATHISH_RE.match(token):
        return False  # spaces, ::, <>, flags with =, shell snippets
    if "/" not in token:
        return False  # bare identifiers / lone filenames are too ambiguous
    base = os.path.basename(token.rstrip("/"))
    if base.startswith("BENCH_"):
        return False  # generated at bench runtime
    if token.startswith(("build/", "./build/", "-")):
        return False  # build outputs, flags
    return True


def resolves(root: str, token: str) -> bool:
    for prefix in ("", "src"):
        path = os.path.join(root, prefix, token) if prefix else os.path.join(
            root, token)
        if "*" in token:
            if glob.glob(path):
                return True
        elif os.path.exists(path):
            return True
    return False


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else os.getcwd()
    missing = []
    for doc in DOCS:
        doc_path = os.path.join(root, doc)
        if not os.path.exists(doc_path):
            missing.append((doc, "(document itself is missing)"))
            continue
        with open(doc_path, encoding="utf-8") as f:
            text = f.read()
        for token in TOKEN_RE.findall(text):
            token = token.strip().rstrip(".,;:")
            if is_candidate(token) and not resolves(root, token):
                missing.append((doc, token))
    if missing:
        print("docs_check: dangling file references:", file=sys.stderr)
        for doc, token in missing:
            print(f"  {doc}: `{token}`", file=sys.stderr)
        return 1
    print(f"docs_check: OK ({', '.join(DOCS)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
