// Global operator new/delete replacement that counts heap allocations.
//
// Linked ONLY into binaries that verify the zero-allocation probe fast path
// (tests/scaleout_test.cpp, bench/fig11_scaleout) — see CMakeLists.txt.  The
// replacements forward to malloc/free (so sanitizers keep full visibility)
// and bump monocle::netbase::alloc_counter() on every allocation; deletes
// are not counted, since the invariant under test is "no allocations per
// probe", and frees without mallocs cannot occur.
#include <cstdlib>
#include <new>

#include "netbase/alloc_counter.hpp"

namespace {

[[maybe_unused]] const bool g_armed = [] {
  monocle::netbase::alloc_counter().armed.store(true,
                                                std::memory_order_relaxed);
  return true;
}();

void* counted_alloc(std::size_t size) {
  monocle::netbase::alloc_counter().news.fetch_add(1,
                                                   std::memory_order_relaxed);
  if (size == 0) size = 1;
  return std::malloc(size);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  monocle::netbase::alloc_counter().news.fetch_add(1,
                                                   std::memory_order_relaxed);
  if (size == 0) size = 1;
  // aligned_alloc requires size to be a multiple of alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
