// Figure 8 reproduction: batched path updates in a larger network — plus
// the fleet steady-state extension.
//
// Paper (§8.4, Figure 8): a k=4 FatTree of 20 Pica8-emulated switches, with
// a hypervisor switch (reliable acknowledgments) under each of the 8 ToR
// switches.  The controller installs 2000 random paths in two phases (all
// rules except the ingress rule first, then the ingress rule), starting 40
// new path updates every 10 ms.  Monocle's probing competes with rule
// modifications for control bandwidth, yet the whole update finishes only
// ~350 ms later than on a network of 28 ideal switches.
//
// Fleet extension (not in the paper): the same 20-switch fabric monitored
// network-wide through monocle::Fleet, comparing the per-switch sequential
// round schedule (one switch probes at a time) against the coloring-driven
// schedule (all switches of one color class probe concurrently; conflict
// radius 2, so co-scheduled switches share no catcher).  Rounds are timed
// from injection to the last probe resolving; results also land in
// BENCH_fleet.json.
#include <algorithm>
#include <cstdio>
#include <map>
#include <random>
#include <vector>

#include "bench/bench_util.hpp"
#include "monocle/fleet.hpp"
#include "monocle/monitor.hpp"
#include "monocle/schedule.hpp"
#include "switchsim/testbed.hpp"
#include "topo/generators.hpp"
#include "workloads/forwarding.hpp"

namespace {

using namespace monocle;
using namespace monocle::switchsim;
using netbase::Field;
using netbase::kMillisecond;
using netbase::kSecond;
using netbase::SimTime;
using openflow::Action;
using openflow::FlowMod;
using openflow::FlowModCommand;
using openflow::Message;
using workloads::PathUpdate;

constexpr int kFatTreeK = 4;
constexpr std::size_t kHypervisors = 8;

/// FatTree + one hypervisor switch per edge switch.
topo::Topology build_topology() {
  topo::Topology t = topo::make_fattree(kFatTreeK);
  const topo::FatTreeIndex idx{kFatTreeK};
  const topo::NodeId first_hyp = t.add_nodes(kHypervisors);
  std::size_t h = 0;
  for (int pod = 0; pod < kFatTreeK; ++pod) {
    for (int e = 0; e < kFatTreeK / 2; ++e) {
      t.add_edge(idx.edge(pod, e), first_hyp + static_cast<topo::NodeId>(h++));
    }
  }
  t.name = "fattree-k4+hypervisors";
  return t;
}

struct PathState {
  PathUpdate update;
  std::size_t phase1_remaining = 0;
  bool phase2_sent = false;
  SimTime started = 0;
  SimTime completed = 0;
};

struct RunResult {
  std::vector<double> completion_s;  // per path, issue order
  double total_s = 0;
};

RunResult run(bool with_monocle, std::size_t n_paths, std::uint64_t seed) {
  EventQueue eq;
  const topo::Topology topo = build_topology();
  const std::size_t fabric_nodes = 20;

  Testbed::Options opts;
  opts.with_monocle = with_monocle;
  opts.monitor.steady_probe_rate = 0;
  // Re-injection cadence: with ~180 concurrently pending rules the probes
  // must stay within the switches' PacketIn budget (probes "compete for the
  // control plane bandwidth with rule modifications", §8.4).
  opts.monitor.update_probe_interval = 20 * kMillisecond;
  opts.monitor.generation_delay = 2 * kMillisecond;
  opts.monitor.update_give_up = 60 * kSecond;
  if (with_monocle) {
    // Monocle run: Pica8 fabric, ideal (reliable-ack) hypervisors, monitors
    // on the fabric only.
    opts.model_for = [fabric_nodes](topo::NodeId n) {
      return n < fabric_nodes ? SwitchModel::pica8_emulated()
                              : SwitchModel::ideal();
    };
    opts.monocle_for = [fabric_nodes](topo::NodeId n) {
      return n < fabric_nodes;
    };
  } else {
    // Comparison network: 28 ideal switches with reliable acknowledgments.
    opts.model_for = [](topo::NodeId) { return SwitchModel::ideal(); };
  }
  Testbed bed(&eq, topo, SwitchModel::ideal(), opts);
  if (with_monocle) bed.start_monitoring();
  eq.run_until(1 * kSecond);  // infrastructure settles

  // Random hypervisor-to-hypervisor paths.
  std::mt19937_64 rng(seed);
  const auto& ports = bed.topology_ports();
  std::vector<PathState> paths;
  paths.reserve(n_paths);
  std::uniform_int_distribution<topo::NodeId> pick_hyp(
      static_cast<topo::NodeId>(fabric_nodes),
      static_cast<topo::NodeId>(topo.node_count() - 1));
  while (paths.size() < n_paths) {
    const topo::NodeId a = pick_hyp(rng);
    topo::NodeId b = pick_hyp(rng);
    while (b == a) b = pick_hyp(rng);
    const auto nodes = workloads::shortest_path(topo, a, b);
    if (nodes.size() < 2) continue;
    PathState ps;
    ps.update.flow_id = static_cast<std::uint32_t>(paths.size());
    for (std::size_t h = 0; h < nodes.size(); ++h) {
      openflow::Rule r;
      r.priority = 100;
      r.cookie = (static_cast<std::uint64_t>(paths.size() + 1) << 16) | h;
      r.match.set_exact(Field::EthType, netbase::kEthTypeIpv4);
      r.match.set_prefix(Field::IpSrc,
                         0x0A100000u + static_cast<std::uint32_t>(paths.size()), 32);
      r.match.set_prefix(Field::IpDst,
                         0x0A200000u + static_cast<std::uint32_t>(paths.size()), 32);
      const std::uint16_t out = (h + 1 < nodes.size())
                                    ? ports.of(nodes[h], nodes[h + 1])
                                    : 63;  // egress to the destination host
      r.actions = {Action::output(out)};
      ps.update.hops.push_back({nodes[h], std::move(r)});
    }
    paths.push_back(std::move(ps));
  }

  // Confirmation bookkeeping: cookie -> path; hypervisor hops confirm via
  // barriers (xid = low 32 bits of cookie), fabric hops via Monocle's
  // confirmation callback (Monocle run) or barriers (ideal run).
  std::map<std::uint64_t, std::size_t> cookie_to_path;
  const SimTime t0 = eq.now();
  SimTime last_completion = t0;
  std::size_t completed = 0;

  auto send_hop = [&](std::size_t path_idx, std::size_t hop_idx) {
    const auto& hop = paths[path_idx].update.hops[hop_idx];
    const SwitchId sw = bed.dpid_of(hop.node);
    FlowMod fm;
    fm.command = FlowModCommand::kAdd;
    fm.priority = hop.rule.priority;
    fm.cookie = hop.rule.cookie;
    fm.match = hop.rule.match;
    fm.actions = hop.rule.actions;
    cookie_to_path[fm.cookie] = path_idx;
    bed.controller_send(sw, openflow::make_message(0, fm));
    const bool fabric = hop.node < fabric_nodes;
    if (!with_monocle || !fabric) {
      // Barrier-based confirmation (honest on ideal switches).
      bed.controller_send(
          sw, openflow::make_message(static_cast<std::uint32_t>(fm.cookie),
                                     openflow::BarrierRequest{}));
    }
  };

  std::function<void(std::uint64_t)> on_hop_confirmed =
      [&](std::uint64_t cookie) {
        const auto it = cookie_to_path.find(cookie);
        if (it == cookie_to_path.end()) return;
        PathState& ps = paths[it->second];
        const std::size_t hop_idx = cookie & 0xFFFF;
        if (hop_idx == 0) {
          // Phase 2 done: the path is live.
          if (ps.completed == 0) {
            ps.completed = eq.now();
            last_completion = std::max(last_completion, ps.completed);
            ++completed;
          }
          return;
        }
        if (--ps.phase1_remaining == 0 && !ps.phase2_sent) {
          ps.phase2_sent = true;
          send_hop(it->second, 0);
        }
      };

  bed.set_controller_handler([&](SwitchId, const Message& m) {
    if (m.is<openflow::BarrierReply>()) on_hop_confirmed(m.xid);
  });
  if (with_monocle) {
    for (std::size_t n = 0; n < fabric_nodes; ++n) {
      Monitor* mon = bed.monitor(bed.dpid_of(static_cast<topo::NodeId>(n)));
      if (mon != nullptr) {
        mon->hooks_for_test().on_update_confirmed =
            [&](std::uint64_t cookie, SimTime) { on_hop_confirmed(cookie); };
      }
    }
  }

  // Batched issue: 40 new path updates every 10 ms (phase 1 = all hops
  // except the ingress).
  for (std::size_t batch = 0; batch * 40 < n_paths; ++batch) {
    eq.schedule_at(t0 + batch * 10 * kMillisecond, [&, batch] {
      const std::size_t lo = batch * 40;
      const std::size_t hi = std::min(n_paths, lo + 40);
      for (std::size_t p = lo; p < hi; ++p) {
        paths[p].started = eq.now();
        paths[p].phase1_remaining = paths[p].update.hops.size() - 1;
        if (paths[p].phase1_remaining == 0) {
          paths[p].phase2_sent = true;
          send_hop(p, 0);
        } else {
          for (std::size_t h = 1; h < paths[p].update.hops.size(); ++h) {
            send_hop(p, h);
          }
        }
      }
    });
  }

  const SimTime horizon = t0 + 120 * kSecond;
  while (completed < n_paths && eq.now() < horizon && eq.run_one()) {
  }

  RunResult out;
  out.total_s = netbase::to_seconds(last_completion - t0);
  for (const PathState& ps : paths) {
    out.completion_s.push_back(
        ps.completed != 0 ? netbase::to_seconds(ps.completed - t0) : -1.0);
  }
  if (completed < n_paths) {
    std::fprintf(stderr, "warning: only %zu/%zu paths completed\n", completed,
                 n_paths);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Fleet steady-state phase: sequential vs coloring rounds
// ---------------------------------------------------------------------------

struct FleetRunResult {
  std::size_t shards = 0;
  std::size_t schedule_rounds = 0;   // rounds in one schedule rotation
  std::size_t rounds_driven = 0;     // rounds until full coverage
  std::vector<double> round_ms;      // per-round latency (inject -> drained)
  double coverage_s = 0;             // time to probe every rule once
  std::uint64_t probes = 0;
  std::size_t rules = 0;
  MonitorStats monitor_stats;        // summed across shards
};

/// Element-wise sum of the shards' probe-cache/delta observability counters.
MonitorStats sum_monitor_stats(const Fleet& fleet) {
  MonitorStats total;
  for (const auto& [sw, monitor] : fleet.shards()) {
    const MonitorStats& s = monitor->stats();
    total.probe_cache_hits += s.probe_cache_hits;
    total.probe_cache_misses += s.probe_cache_misses;
    total.probe_invalidations += s.probe_invalidations;
    total.deltas_applied += s.deltas_applied;
    total.delta_regens += s.delta_regens;
    total.scratch_regens += s.scratch_regens;
    total.stale_probes += s.stale_probes;
    total.stale_epoch_drops += s.stale_epoch_drops;
    total.generation_time += s.generation_time;
  }
  return total;
}

/// Times fleet probe rounds on a k=4 FatTree of Pica8-emulated switches:
/// each round is injected, then the sim runs until every probe of the round
/// resolved (caught or timed out).  Coverage = every monitorable rule
/// probed at least once.
FleetRunResult run_fleet(bool coloring, std::size_t rules_per_switch) {
  EventQueue eq;
  const topo::Topology topo = topo::make_fattree(kFatTreeK);

  Testbed::Options opts;
  opts.use_fleet = true;
  opts.monitor.probe_timeout = 150 * kMillisecond;
  opts.fleet.probes_per_switch = 4;
  opts.model_for = [](topo::NodeId) { return SwitchModel::pica8_emulated(); };
  Testbed bed(&eq, topo, SwitchModel::pica8_emulated(), opts);
  Fleet& fleet = *bed.fleet();

  std::vector<SwitchId> dpids;
  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    const SwitchId sw = bed.dpid_of(n);
    dpids.push_back(sw);
    // Round-robin routes over the switch's real ports so probes exercise
    // every link.
    for (const openflow::Rule& r : workloads::l3_host_routes_even(
             rules_per_switch, bed.network().ports(sw))) {
      bed.monitor(sw)->seed_rule(r);
      bed.sw(sw)->mutable_dataplane().add(r);
    }
  }
  if (!coloring) {
    fleet.set_schedule(monocle::RoundSchedule::sequential(dpids));
  }  // else: the coloring schedule built by the Testbed stays in place

  fleet.prepare();
  eq.run_until(300 * kMillisecond);  // catching rules settle

  FleetRunResult out;
  out.shards = fleet.shard_count();
  out.schedule_rounds = fleet.schedule().round_count();
  out.rules = fleet.monitorable_rule_count();
  const SimTime t0 = eq.now();
  // Drive rounds back-to-back (next round as soon as the previous drained)
  // until every rule was probed once; time each round individually.
  while (fleet.stats().probes_injected < out.rules) {
    const SimTime round_start = eq.now();
    if (fleet.start_round() == 0) continue;  // empty color class
    const SimTime horizon = round_start + 2 * kSecond;
    while (fleet.outstanding_probes() > 0 && eq.now() < horizon &&
           eq.run_one()) {
    }
    out.round_ms.push_back(netbase::to_millis(eq.now() - round_start));
    ++out.rounds_driven;
  }
  out.coverage_s = netbase::to_seconds(eq.now() - t0);
  out.probes = fleet.stats().probes_injected;
  out.monitor_stats = sum_monitor_stats(fleet);
  return out;
}

double max_round_ms(const FleetRunResult& r) {
  return r.round_ms.empty()
             ? 0.0
             : *std::max_element(r.round_ms.begin(), r.round_ms.end());
}

void print_fleet(const char* label, const FleetRunResult& r) {
  std::printf("  %-12s %zu shards, %4zu rules, %3zu-round schedule: "
              "%4zu rounds to full coverage in %6.1f ms; per-round latency "
              "mean %6.2f ms, max %6.2f ms\n",
              label, r.shards, r.rules, r.schedule_rounds, r.rounds_driven,
              r.coverage_s * 1e3, monocle::bench::mean(r.round_ms),
              max_round_ms(r));
  monocle::bench::print_monitor_stats("(shard caches)", r.monitor_stats);
}

void json_fleet(std::FILE* f, const char* key, const FleetRunResult& r,
                bool last) {
  std::fprintf(f,
               "    \"%s\": {\n"
               "      \"shards\": %zu,\n"
               "      \"rules\": %zu,\n"
               "      \"schedule_rounds\": %zu,\n"
               "      \"rounds_to_coverage\": %zu,\n"
               "      \"coverage_ms\": %.3f,\n"
               "      \"round_latency_ms_mean\": %.3f,\n"
               "      \"round_latency_ms_max\": %.3f,\n"
               "      \"probes_injected\": %llu\n"
               "    }%s\n",
               key, r.shards, r.rules, r.schedule_rounds, r.rounds_driven,
               r.coverage_s * 1e3, monocle::bench::mean(r.round_ms),
               max_round_ms(r),
               static_cast<unsigned long long>(r.probes), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const auto n_paths = static_cast<std::size_t>(
      monocle::bench::flag_int(argc, argv, "paths", 2000));

  std::printf("=== Figure 8: batched update of %zu paths in a FatTree ===\n",
              n_paths);
  std::printf("(paper: Monocle on 20 Pica8 switches + 8 hypervisors delays "
              "the full install by only ~350 ms vs 28 ideal switches)\n\n");

  const RunResult ideal = run(false, n_paths, 2026);
  const RunResult monocle_run = run(true, n_paths, 2026);

  std::printf("  %-10s %-10s %-10s\n", "Flow ID", "Ideal[s]", "Monocle[s]");
  for (std::size_t i = 0; i < n_paths; i += std::max<std::size_t>(1, n_paths / 10)) {
    std::printf("  %-10zu %-10.3f %-10.3f\n", i, ideal.completion_s[i],
                monocle_run.completion_s[i]);
  }
  std::printf("\n  total update time: ideal %.3f s, Monocle %.3f s "
              "(+%.0f ms; paper: +350 ms)\n",
              ideal.total_s, monocle_run.total_s,
              (monocle_run.total_s - ideal.total_s) * 1e3);

  // --- Fleet steady-state phase -----------------------------------------
  const auto rules_per_switch = static_cast<std::size_t>(
      monocle::bench::flag_int(argc, argv, "fleet-rules", 40));
  std::printf("\n=== Fleet steady state: sequential vs coloring rounds "
              "(%zu rules/switch) ===\n",
              rules_per_switch);
  const FleetRunResult sequential = run_fleet(false, rules_per_switch);
  const FleetRunResult colored = run_fleet(true, rules_per_switch);
  print_fleet("sequential", sequential);
  print_fleet("coloring", colored);
  const double seq_mean = monocle::bench::mean(sequential.round_ms);
  const double col_mean = monocle::bench::mean(colored.round_ms);
  // Acceptance: coloring rounds probe several switches concurrently yet a
  // round must not take longer than the one-switch sequential baseline
  // (co-scheduled switches share no catcher).  10% tolerance for the
  // virtual-time rate-limiter interleavings.
  const bool no_worse = col_mean <= seq_mean * 1.10;
  const double speedup = colored.coverage_s > 0
                             ? sequential.coverage_s / colored.coverage_s
                             : 1.0;  // degenerate 0-rule run
  std::printf("  per-round latency: coloring %.2f ms vs sequential %.2f ms "
              "-> %s; full-coverage speedup %.2fx\n",
              col_mean, seq_mean, no_worse ? "NO WORSE (pass)" : "WORSE (FAIL)",
              speedup);

  if (std::FILE* json = std::fopen("BENCH_fleet.json", "w")) {
    std::fprintf(json, "{\n  \"fig8_fleet\": {\n");
    json_fleet(json, "sequential", sequential, false);
    json_fleet(json, "coloring", colored, false);
    std::fprintf(json,
                 "    \"round_latency_no_worse\": %s,\n"
                 "    \"coverage_speedup\": %.3f\n  }\n}\n",
                 no_worse ? "true" : "false", speedup);
    std::fclose(json);
    std::printf("  (wrote BENCH_fleet.json)\n");
  }
  return no_worse ? 0 : 1;
}
