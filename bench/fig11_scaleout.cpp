// Figure 11 (extension): scale-out probe fast path on Rocketfuel-scale
// topologies.
//
// The paper scales Monocle network-wide by running one Monitor per switch
// behind the Multiplexer proxy (§7) but only demonstrates 20 switches
// (fig8).  This bench pushes the fleet to 500 shards on Rocketfuel-like
// AS-level graphs and measures the two things that make that viable:
//
//  1. Fleet coverage (full simulator): a Fleet over N pica8-emulated
//     switches drives coloring rounds to full coverage; we report the
//     simulated coverage latency and round counts, proving 500 shards
//     complete full-coverage rounds.
//
//  2. Probe fast path (loopback harness, no simulated switches): the
//     monitoring-stack glue a probe crosses per injection — craft/re-stamp,
//     Multiplexer routing, PacketOut construction, PacketIn decode,
//     classification — timed back-to-back in two modes: the pre-fig11
//     baseline (map-routed Multiplexer + per-probe crafting:
//     set_compat_map_routing(true), reuse_probe_wire=false) vs the flat
//     fast path (ordinal routing + cached-wire re-stamp + per-shard
//     arenas).  Reports probes/sec and, with the counting allocator linked
//     into this binary, heap allocations per probe.
//
//  3. Multi-worker round engine (PR 7): the same loopback fast path
//     partitioned over shard-affine workers (bench::MtFastPathRig over
//     monocle::RoundEngine), swept over worker counts at the largest shard
//     point.  Classifications must be byte-identical to the 1-worker driver
//     at every width; throughput is reported per worker.
//
// Acceptance (checked at 100 shards): >= 2x probes/sec over the baseline
// and 0 allocations/probe on the steady cycle.  Multi-worker: byte-identical
// classifications at every worker count, and >= 3x probes/sec with 8 workers
// at 500 shards on machines with >= 8 hardware threads.  Results land in
// BENCH_scaleout.json.
#include <chrono>
#include <tuple>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "bench/fastpath_harness.hpp"
#include "monocle/fleet.hpp"
#include "netbase/alloc_counter.hpp"
#include "switchsim/testbed.hpp"
#include "topo/generators.hpp"
#include "workloads/forwarding.hpp"

namespace {

using namespace monocle;
using namespace monocle::switchsim;
using netbase::kMillisecond;
using netbase::kSecond;
using netbase::SimTime;

// ---------------------------------------------------------------------------
// Phase 1: fleet coverage rounds in the full simulator
// ---------------------------------------------------------------------------

struct FleetScaleResult {
  std::size_t shards = 0;
  std::size_t rules = 0;
  std::size_t schedule_rounds = 0;
  std::size_t rounds_driven = 0;
  double coverage_ms = 0;  ///< simulated time to probe every rule once
  std::uint64_t probes = 0;
  double setup_wall_s = 0;  ///< build + catch plan + warm-up (wall clock)
  double drive_wall_s = 0;  ///< event-loop wall clock for the rounds
  MonitorStats monitor_stats;
};

MonitorStats sum_monitor_stats(const Fleet& fleet) {
  MonitorStats total;
  for (const auto& [sw, monitor] : fleet.shards()) {
    const MonitorStats& s = monitor->stats();
    total.probe_cache_hits += s.probe_cache_hits;
    total.probe_cache_misses += s.probe_cache_misses;
    total.probe_invalidations += s.probe_invalidations;
    total.deltas_applied += s.deltas_applied;
    total.delta_regens += s.delta_regens;
    total.scratch_regens += s.scratch_regens;
    total.stale_probes += s.stale_probes;
    total.stale_epoch_drops += s.stale_epoch_drops;
    total.generation_time += s.generation_time;
  }
  return total;
}

FleetScaleResult run_fleet_coverage(const topo::Topology& topo,
                                    std::size_t rules_per_switch) {
  const auto wall0 = std::chrono::steady_clock::now();
  EventQueue eq;
  Testbed::Options opts;
  opts.use_fleet = true;
  opts.monitor.probe_timeout = 150 * kMillisecond;
  opts.fleet.probes_per_switch = 4;
  opts.model_for = [](topo::NodeId) { return SwitchModel::pica8_emulated(); };
  Testbed bed(&eq, topo, SwitchModel::pica8_emulated(), opts);
  Fleet& fleet = *bed.fleet();

  for (topo::NodeId n = 0; n < topo.node_count(); ++n) {
    const SwitchId sw = bed.dpid_of(n);
    for (const openflow::Rule& r : workloads::l3_host_routes_even(
             rules_per_switch, bed.network().ports(sw))) {
      bed.monitor(sw)->seed_rule(r);
      bed.sw(sw)->mutable_dataplane().add(r);
    }
  }
  fleet.prepare();
  eq.run_until(300 * kMillisecond);  // catching rules settle

  FleetScaleResult out;
  out.shards = fleet.shard_count();
  out.rules = fleet.monitorable_rule_count();
  out.schedule_rounds = fleet.schedule().round_count();
  out.setup_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  const auto wall1 = std::chrono::steady_clock::now();
  const SimTime t0 = eq.now();
  // Back-to-back rounds (next as soon as the previous drained) until the
  // fleet has injected one probe's worth of coverage per monitorable rule.
  std::size_t empty_streak = 0;
  while (fleet.stats().probes_injected < out.rules) {
    const SimTime round_start = eq.now();
    if (fleet.start_round() == 0) {  // empty color class
      // A full rotation of empty rounds means nothing will ever inject
      // again (channels down, rules turned unmonitorable): report the
      // stall instead of spinning forever.
      if (++empty_streak > fleet.schedule().round_count()) {
        std::fprintf(stderr,
                     "warning: coverage stalled at %llu/%zu probes\n",
                     static_cast<unsigned long long>(
                         fleet.stats().probes_injected),
                     out.rules);
        break;
      }
      continue;
    }
    empty_streak = 0;
    const SimTime horizon = round_start + 2 * kSecond;
    while (fleet.outstanding_probes() > 0 && eq.now() < horizon &&
           eq.run_one()) {
    }
    ++out.rounds_driven;
  }
  out.coverage_ms = netbase::to_millis(eq.now() - t0);
  out.probes = fleet.stats().probes_injected;
  out.drive_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall1)
          .count();
  out.monitor_stats = sum_monitor_stats(fleet);
  return out;
}

// ---------------------------------------------------------------------------
// Phase 2: probe fast-path microbench over the loopback harness
// ---------------------------------------------------------------------------

struct FastPathResult {
  std::uint64_t probes = 0;
  double wall_s = 0;
  double probes_per_sec = 0;
  double allocs_per_probe = -1;  ///< -1: counting allocator not linked
};

/// One timed pass over `rig` (~target_probes probes); returns probes/sec
/// and accumulates the probe count into `probes_total`.
double timed_pass(bench::FastPathRig& rig, std::size_t target_probes,
                  std::uint64_t& probes_total) {
  std::uint64_t probes = 0;
  const auto wall0 = std::chrono::steady_clock::now();
  while (probes < target_probes) {
    const std::size_t injected = rig.round(4);
    if (injected == 0) break;  // no monitorable rules (degenerate topology)
    probes += injected;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  probes_total += probes;
  return wall_s > 0 ? probes / wall_s : 0;
}

/// Measures legacy and flat INTERLEAVED (rep by rep, best pass kept for
/// each): back-to-back passes see the same machine conditions, so the
/// reported ratio is the code's, not the scheduler's.  Allocations are
/// counted across ALL passes — the zero-allocation invariant must hold for
/// every probe, not just the best run.
std::pair<FastPathResult, FastPathResult> run_fast_path_pair(
    const topo::Topology& topo, std::size_t rules_per_switch,
    std::size_t target_probes) {
  bench::FastPathRig::Options legacy_opts;
  legacy_opts.rules_per_switch = rules_per_switch;
  legacy_opts.compat_map_routing = true;
  legacy_opts.reuse_probe_wire = false;
  bench::FastPathRig::Options flat_opts;
  flat_opts.rules_per_switch = rules_per_switch;
  bench::FastPathRig legacy_rig(topo, legacy_opts);
  bench::FastPathRig flat_rig(topo, flat_opts);
  for (int i = 0; i < 3; ++i) {  // warm wires/arenas/pools
    legacy_rig.round(4);
    flat_rig.round(4);
  }

  FastPathResult legacy;
  FastPathResult flat;
  std::uint64_t legacy_alloc_total = 0;
  std::uint64_t flat_alloc_total = 0;
  for (int rep = 0; rep < 5; ++rep) {
    const std::uint64_t a0 = netbase::heap_allocation_count();
    legacy.probes_per_sec = std::max(
        legacy.probes_per_sec, timed_pass(legacy_rig, target_probes,
                                          legacy.probes));
    const std::uint64_t a1 = netbase::heap_allocation_count();
    legacy_alloc_total += a1 - a0;
    flat.probes_per_sec = std::max(
        flat.probes_per_sec, timed_pass(flat_rig, target_probes, flat.probes));
    flat_alloc_total += netbase::heap_allocation_count() - a1;
  }
  if (netbase::alloc_counting_enabled()) {
    if (legacy.probes > 0) {
      legacy.allocs_per_probe =
          static_cast<double>(legacy_alloc_total) / legacy.probes;
    }
    if (flat.probes > 0) {
      flat.allocs_per_probe =
          static_cast<double>(flat_alloc_total) / flat.probes;
    }
  }
  return {legacy, flat};
}

// ---------------------------------------------------------------------------
// Phase 3: multi-worker round engine sweep (PR 7)
// ---------------------------------------------------------------------------

struct WorkerPoint {
  std::size_t workers = 0;
  std::uint64_t probes = 0;
  double probes_per_sec = 0;
  bool parity = true;  ///< classification signature == the 1-worker rig's
};

struct MtSweepResult {
  std::size_t shards = 0;
  std::vector<WorkerPoint> points;
  double speedup = 0;  ///< best multi-worker pps / 1-worker pps
  bool parity = true;
  MonitorStats stats;       ///< summed monitor counters at the widest point
  std::size_t best_workers = 0;
};

/// One timed pass over the multi-worker rig.  The round count depends only
/// on the (deterministic) per-round injection total, so every worker count
/// executes the exact same probe sequence — which is what makes the
/// classification-signature comparison meaningful.
double mt_timed_pass(bench::MtFastPathRig& rig, std::size_t target_probes,
                     std::uint64_t& probes_total) {
  std::uint64_t probes = 0;
  const auto wall0 = std::chrono::steady_clock::now();
  while (probes < target_probes) {
    const std::size_t injected = rig.round(4);
    if (injected == 0) break;
    probes += injected;
  }
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();
  probes_total += probes;
  return wall_s > 0 ? probes / wall_s : 0;
}

/// Sweeps the shard-affine round engine over worker counts on the largest
/// topology: fresh rig per count, identical probe sequence, best-of-3
/// timing, and a byte-identical classification check against workers=1.
MtSweepResult run_mt_sweep(const topo::Topology& topo,
                           std::size_t rules_per_switch,
                           std::size_t target_probes, bool quick) {
  MtSweepResult out;
  out.shards = topo.node_count();
  const std::vector<std::size_t> worker_counts =
      quick ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};

  std::vector<std::uint64_t> reference_sig;
  for (const std::size_t workers : worker_counts) {
    bench::MtFastPathRig::Options opts;
    opts.workers = workers;
    opts.rules_per_switch = rules_per_switch;
    bench::MtFastPathRig rig(topo, opts);
    for (int i = 0; i < 3; ++i) rig.round(4);  // warm wires/arenas/queues

    WorkerPoint p;
    p.workers = workers;
    for (int rep = 0; rep < 3; ++rep) {
      p.probes_per_sec = std::max(
          p.probes_per_sec, mt_timed_pass(rig, target_probes, p.probes));
    }
    rig.stop();  // quiesce before reading classifications/stats

    const std::vector<std::uint64_t> sig = rig.classification_signature();
    if (reference_sig.empty()) {
      reference_sig = sig;
    } else {
      p.parity = sig == reference_sig;
      out.parity = out.parity && p.parity;
    }
    if (workers == worker_counts.back()) out.stats = rig.summed_stats();
    std::printf("  %zu worker%s: %10.0f probes/s  (%.2fM/s/worker)%s\n",
                workers, workers == 1 ? " " : "s",
                p.probes_per_sec,
                p.probes_per_sec / static_cast<double>(workers) / 1e6,
                p.parity ? "" : "  PARITY MISMATCH vs 1 worker");
    out.points.push_back(p);
  }

  const double base = out.points.front().probes_per_sec;
  for (const WorkerPoint& p : out.points) {
    if (p.probes_per_sec > base * out.speedup) {
      out.speedup = base > 0 ? p.probes_per_sec / base : 0;
      out.best_workers = p.workers;
    }
  }
  return out;
}

struct ShardPoint {
  std::size_t shards = 0;
  FleetScaleResult fleet;
  FastPathResult legacy;
  FastPathResult fast;
  double speedup = 0;
};

void json_point(std::FILE* f, const ShardPoint& p, bool last) {
  std::fprintf(
      f,
      "    \"shards_%zu\": {\n"
      "      \"switches\": %zu,\n"
      "      \"rules\": %zu,\n"
      "      \"schedule_rounds\": %zu,\n"
      "      \"rounds_to_coverage\": %zu,\n"
      "      \"coverage_ms\": %.3f,\n"
      "      \"probes_injected\": %llu,\n"
      "      \"fastpath_probes\": %llu,\n"
      "      \"fastpath_legacy_pps\": %.0f,\n"
      "      \"fastpath_flat_pps\": %.0f,\n"
      "      \"fastpath_speedup\": %.3f,\n"
      "      \"legacy_allocs_per_probe\": %.3f,\n"
      "      \"flat_allocs_per_probe\": %.3f\n"
      "    }%s\n",
      p.shards, p.fleet.shards, p.fleet.rules, p.fleet.schedule_rounds,
      p.fleet.rounds_driven, p.fleet.coverage_ms,
      static_cast<unsigned long long>(p.fleet.probes),
      static_cast<unsigned long long>(p.fast.probes), p.legacy.probes_per_sec,
      p.fast.probes_per_sec, p.speedup, p.legacy.allocs_per_probe,
      p.fast.allocs_per_probe, last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = monocle::bench::flag_present(argc, argv, "quick");
  const auto rules_per_switch = static_cast<std::size_t>(
      monocle::bench::flag_int(argc, argv, "rules", quick ? 6 : 8));
  std::vector<std::size_t> shard_counts = quick
                                              ? std::vector<std::size_t>{20, 100}
                                              : std::vector<std::size_t>{20, 100,
                                                                         500};

  std::printf("=== Figure 11: scale-out probe fast path "
              "(Rocketfuel-like AS graphs, %zu rules/switch%s) ===\n",
              rules_per_switch, quick ? ", --quick" : "");
  if (!monocle::netbase::alloc_counting_enabled()) {
    std::printf("  (allocation counting unavailable: interposer not linked)\n");
  }

  std::vector<ShardPoint> points;
  for (const std::size_t shards : shard_counts) {
    const topo::Topology topo = topo::make_rocketfuel_as(shards, 2026);
    std::printf("\n--- %zu shards (%zu edges, max degree %zu) ---\n", shards,
                topo.edge_count(), topo.max_degree());

    ShardPoint p;
    p.shards = shards;
    p.fleet = run_fleet_coverage(topo, rules_per_switch);
    std::printf("  fleet coverage: %zu rules over %zu shards, %zu-round "
                "schedule, %zu rounds -> full coverage in %.1f ms simulated "
                "(setup %.1fs, drive %.1fs wall)\n",
                p.fleet.rules, p.fleet.shards, p.fleet.schedule_rounds,
                p.fleet.rounds_driven, p.fleet.coverage_ms,
                p.fleet.setup_wall_s, p.fleet.drive_wall_s);

    const std::size_t target = quick ? 120000 : 250000;
    std::tie(p.legacy, p.fast) =
        run_fast_path_pair(topo, rules_per_switch, target);
    p.speedup = p.legacy.probes_per_sec > 0
                    ? p.fast.probes_per_sec / p.legacy.probes_per_sec
                    : 0;
    monocle::bench::print_monitor_stats("(fleet caches)", p.fleet.monitor_stats,
                                        p.fast.allocs_per_probe);
    std::printf("  fast path: legacy %8.0f probes/s (%.2f allocs/probe)  "
                "flat %8.0f probes/s (%.2f allocs/probe)  -> %.2fx\n",
                p.legacy.probes_per_sec, p.legacy.allocs_per_probe,
                p.fast.probes_per_sec, p.fast.allocs_per_probe, p.speedup);
    points.push_back(p);
  }

  // Multi-worker round-engine sweep at the largest shard point: the same
  // probe sequence partitioned over shard-affine workers, with a
  // byte-identical classification check against the 1-worker driver.
  const std::size_t largest = shard_counts.back();
  std::printf("\n--- worker sweep at %zu shards (shard-affine round engine, "
              "%u hw threads) ---\n",
              largest, std::thread::hardware_concurrency());
  const topo::Topology mt_topo = topo::make_rocketfuel_as(largest, 2026);
  const MtSweepResult mt = run_mt_sweep(
      mt_topo, rules_per_switch, quick ? 120000 : 250000, quick);
  const WorkerPoint& widest = mt.points.back();
  monocle::bench::print_monitor_stats("(mt sweep)", mt.stats, -1.0,
                                      widest.workers, widest.probes_per_sec);
  std::printf("  mt speedup: %.2fx at %zu workers (parity %s)\n", mt.speedup,
              mt.best_workers, mt.parity ? "ok" : "BROKEN");

  // Acceptance at the 100-shard point: >=2x probes/sec on the fast path and
  // a zero-allocation steady cycle.
  bool pass = true;
  // Multi-worker acceptance: classifications must match the single-worker
  // driver bit for bit at EVERY worker count, and on a machine with the
  // cores to show it (>=8), 8 workers must deliver >=3x the 1-worker
  // throughput at the 500-shard point.
  if (!mt.parity) {
    std::printf("\nFAIL: multi-worker classifications diverge from the "
                "1-worker driver\n");
    pass = false;
  }
  if (!quick && largest >= 500 &&
      std::thread::hardware_concurrency() >= 8 && mt.speedup < 3.0) {
    std::printf("\nFAIL: mt speedup %.2fx < 3x at %zu shards with %zu "
                "workers\n",
                mt.speedup, largest, mt.points.back().workers);
    pass = false;
  }
  for (const ShardPoint& p : points) {
    if (p.shards != 100) continue;
    if (p.speedup < 2.0) {
      std::printf("\nFAIL: fast-path speedup %.2fx < 2x at 100 shards\n",
                  p.speedup);
      pass = false;
    }
    if (p.fast.allocs_per_probe > 0) {
      std::printf("\nFAIL: %.3f allocs/probe on the flat fast path\n",
                  p.fast.allocs_per_probe);
      pass = false;
    }
  }
  if (pass) {
    std::printf("\nPASS: >=2x fast-path probes/sec and 0 allocs/probe at 100 "
                "shards%s\n",
                points.back().shards >= 500
                    ? "; 500-shard fleet completed full-coverage rounds"
                    : "");
  }

  if (std::FILE* json = std::fopen("BENCH_scaleout.json", "w")) {
    std::fprintf(json, "{\n  \"fig11_scaleout\": {\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      json_point(json, points[i], /*last=*/i + 1 == points.size());
    }
    std::fprintf(json, "  },\n  \"mt_sweep\": {\n    \"shards\": %zu,\n",
                 mt.shards);
    for (const WorkerPoint& p : mt.points) {
      std::fprintf(json, "    \"mt_workers_%zu_pps\": %.0f,\n", p.workers,
                   p.probes_per_sec);
    }
    std::fprintf(json,
                 "    \"mt_speedup\": %.3f,\n"
                 "    \"mt_parity\": %s\n  },\n",
                 mt.speedup, mt.parity ? "true" : "false");
    std::fprintf(json, "  \"pass\": %s\n}\n", pass ? "true" : "false");
    std::fclose(json);
    std::printf("  (wrote BENCH_scaleout.json)\n");
  }
  return pass ? 0 : 1;
}
