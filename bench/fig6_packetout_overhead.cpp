// Figure 6 reproduction: impact of PacketOut messages on the rule
// modification rate, normalized to the no-PacketOut baseline.
//
// Paper (§8.3.1, Figure 6): mixing k PacketOuts per 2 FlowMods (the 2 = one
// delete + one add, keeping table size stable) barely affects switches up to
// 5:2 (all retain >= 85%); the equal-priority Dell S4810 (**) degrades
// fastest because its baseline modification rate is much higher.  Also
// prints the measured maximum PacketOut/PacketIn rates (paper: HP 7006/5531,
// Dell S4810 850/401, Dell 8132F 9128/1105).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "netbase/packet_crafter.hpp"
#include "switchsim/event_queue.hpp"
#include "switchsim/network.hpp"

namespace {

using namespace monocle;
using namespace monocle::switchsim;
using netbase::Field;
using openflow::Action;
using openflow::FlowMod;
using openflow::FlowModCommand;

FlowMod make_add(std::uint32_t i) {
  FlowMod fm;
  fm.command = FlowModCommand::kAdd;
  fm.priority = static_cast<std::uint16_t>(10 + (i % 100));
  fm.cookie = i + 1;
  fm.match.set_exact(Field::EthType, netbase::kEthTypeIpv4);
  fm.match.set_prefix(Field::IpDst, 0x0A000000u + i, 32);
  fm.actions = {Action::output(1)};
  return fm;
}

/// Sends `n_flowmods` (as delete+add pairs) interleaved with `k` PacketOuts
/// per 2 FlowMods; returns the FlowMod completion rate (mods/s of engine
/// time).
double measure_flowmod_rate(const SwitchModel& model, int k, int n_flowmods) {
  EventQueue eq;
  Network net(&eq);
  SimSwitch* sw = net.add_switch(1, model);
  net.add_switch(2, SwitchModel::ideal());
  net.connect(1, 1, 2, 1);

  openflow::PacketOut po;
  po.actions = {Action::output(1)};
  po.data = netbase::craft_packet(netbase::AbstractPacket{},
                                  std::vector<std::uint8_t>{});

  std::uint32_t xid = 0;
  for (int i = 0; i < n_flowmods; i += 2) {
    // The paper's k:2 pattern: delete an existing rule, add a new one.
    FlowMod del = make_add(static_cast<std::uint32_t>(i));
    del.command = FlowModCommand::kDeleteStrict;
    net.send_to_switch(1, openflow::make_message(xid++, del));
    net.send_to_switch(1, openflow::make_message(
                               xid++, make_add(static_cast<std::uint32_t>(i))));
    for (int j = 0; j < k; ++j) {
      net.send_to_switch(1, openflow::make_message(xid++, po));
    }
  }
  eq.run_all();
  const double engine_seconds =
      static_cast<double>(sw->engine_free_at()) / 1e9;
  return static_cast<double>(n_flowmods) / engine_seconds;
}

void print_max_rates(const SwitchModel& model) {
  // Max PacketOut rate: issue 20000 PacketOuts, record drain time (the
  // paper's methodology).
  EventQueue eq;
  Network net(&eq);
  net.add_switch(1, model);
  net.add_switch(2, SwitchModel::ideal());
  net.connect(1, 1, 2, 1);
  std::uint64_t received = 0;
  net.attach_host(2, 2, [&](const SimPacket&) { ++received; });
  FlowMod fwd = make_add(0);
  fwd.match = openflow::Match{};
  fwd.actions = {Action::output(2)};
  net.send_to_switch(2, openflow::make_message(0, fwd));

  openflow::PacketOut po;
  po.actions = {Action::output(1)};
  po.data = netbase::craft_packet(netbase::AbstractPacket{},
                                  std::vector<std::uint8_t>{});
  const int kOuts = 20000;
  for (int i = 0; i < kOuts; ++i) {
    net.send_to_switch(1, openflow::make_message(static_cast<std::uint32_t>(i), po));
  }
  const auto t0 = 0.0;
  eq.run_all();
  const double elapsed = static_cast<double>(eq.now()) / 1e9 - t0;
  std::printf("  %-14s max PacketOut rate: %7.0f /s (delivered %llu)\n",
              model.name.c_str(), kOuts / elapsed,
              static_cast<unsigned long long>(received));
}

}  // namespace

int main(int argc, char** argv) {
  const int n = static_cast<int>(
      monocle::bench::flag_int(argc, argv, "flowmods", 400));

  std::printf("=== Figure 6: PacketOut impact on FlowMod rate ===\n");
  std::printf("(paper: all switches keep >=85%% of their modification rate "
              "with up to 5 PacketOuts per FlowMod pair)\n\n");

  const SwitchModel models[] = {
      SwitchModel::dell_8132f(),
      SwitchModel::hp5406zl(),
      SwitchModel::dell_s4810(),
      SwitchModel::dell_s4810_same_priority(),
  };
  const int ratios[] = {0, 1, 2, 3, 4, 5, 10, 20, 40};

  std::printf("%-16s", "PacketOut:FlowMod");
  for (const int k : ratios) std::printf("  %4d:2", k);
  std::printf("\n");
  for (const auto& model : models) {
    const double baseline = measure_flowmod_rate(model, 0, n);
    std::printf("%-16s", model.name.c_str());
    for (const int k : ratios) {
      const double rate = measure_flowmod_rate(model, k, n);
      std::printf("  %6.3f", rate / baseline);
    }
    std::printf("   (baseline %.0f mods/s)\n", baseline);
  }

  std::printf("\n--- Section 8.3.1: maximum message rates ---\n");
  std::printf("(paper: HP 7006 PacketOut/s & 5531 PacketIn/s; Dell S4810 "
              "850/401; Dell 8132F 9128/1105)\n");
  for (const auto& model : models) print_max_rates(model);
  return 0;
}
